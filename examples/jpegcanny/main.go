// Example jpegcanny reproduces the paper's first application end to end:
// two JPEG decoders and a Canny edge detector (15 tasks) on the 4-CPU
// CAKE tile, decoding real synthetic bitstreams whose outputs are
// verified bit-exactly, under the shared and the partitioned L2.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

func main() {
	small := flag.Bool("small", true, "run the fast small-scale variant")
	flag.Parse()

	scale := workloads.Small
	if !*small {
		scale = workloads.Paper
	}

	// Functional check first: the decoders must produce bit-exact output.
	var handles workloads.JPEGCannyHandles
	w := workloads.JPEGCanny(scale, &handles)
	app, err := w.Factory()
	if err != nil {
		log.Fatal(err)
	}
	cfg := experiments.Default()
	if *small {
		cfg = experiments.Small()
	}
	if _, err := core.RunApp(app, core.RunConfig{Platform: cfg.Platform}); err != nil {
		log.Fatal(err)
	}
	for name, verify := range map[string]func() error{
		"jpeg1": handles.JPEG1.Verify,
		"jpeg2": handles.JPEG2.Verify,
		"canny": handles.Canny.Verify,
	} {
		if err := verify(); err != nil {
			log.Fatalf("%s output wrong: %v", name, err)
		}
		fmt.Printf("%s: decoded output verified bit-exactly\n", name)
	}

	// Then the paper's study: Table 1, Figure 2, Figure 3.
	study, err := experiments.App1(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(experiments.AllocationTable(study, "Table 1: allocated L2 units"))
	fmt.Println(experiments.Figure2(study))
	chart, rep := experiments.Figure3(study)
	fmt.Println(chart)
	fmt.Printf("misses: shared %d -> partitioned %d (%.2fx fewer; paper: 5x)\n",
		study.Shared.TotalMisses(), study.Part.TotalMisses(), study.MissRatio())
	fmt.Printf("CPI: %.2f -> %.2f; compositional: %v\n",
		study.Shared.CPIMean, study.Part.CPIMean, rep.Compositional(0.02))
}
