// Quickstart: build a tiny two-task YAPI application, run it on the CAKE
// platform with a conventional shared L2 and then with an optimized
// partitioned L2, and print the effect — the whole public API in ~80
// lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/kpn"
	"repro/internal/platform"
)

func main() {
	// A Workload is a factory so every experiment runs the exact same
	// application. The producer loops over a 32 KiB table (reusable
	// state worth caching); the consumer streams through 1 MiB (cache-
	// hostile traffic that floods a shared L2).
	workload := core.Workload{
		Name: "quickstart",
		Factory: func() (*core.App, error) {
			b := core.NewBuilder("quickstart")
			pipe := b.AddFIFO("pipe", 4, 8)
			b.AddTask(core.TaskConfig{
				Name: "producer", CPU: 0, HeapSize: 32 * 1024,
				Body: func(c *kpn.Ctx) {
					for round := 0; round < 40; round++ {
						var sum uint32
						for off := uint64(0); off < 32*1024; off += 64 {
							sum += c.Load32(c.Heap(), off)
							c.Exec(4)
						}
						pipe.Write32(c, sum)
					}
					pipe.Close(c)
				},
			})
			b.AddTask(core.TaskConfig{
				Name: "consumer", CPU: 1, HeapSize: 1024 * 1024,
				Body: func(c *kpn.Ctx) {
					pos := uint64(0)
					for {
						if _, ok := pipe.Read32(c); !ok {
							return
						}
						for i := 0; i < 2048; i++ {
							c.Store32(c.Heap(), pos%(1024*1024-64), uint32(pos))
							pos += 64
							c.Exec(2)
						}
					}
				},
			})
			return b.Build()
		},
	}

	pc := platform.Default()
	pc.NumCPUs = 2
	// The toy working set is tiny next to the CAKE tile's 512 KB L2, so
	// scale the cache down to 128 KB to make the phenomenon visible.
	pc.Topology = pc.Topology.WithLevel("l2", func(l *cache.LevelSpec) { l.Sets = 512 })

	// 1. Baseline: conventional shared L2.
	shared, err := core.Run(workload, core.RunConfig{Platform: pc})
	if err != nil {
		log.Fatal(err)
	}

	// 2. The paper's method: profile miss curves, solve the section 3.2
	//    program, install the partition tables.
	opt, err := core.Optimize(workload, core.OptimizeConfig{Platform: pc})
	if err != nil {
		log.Fatal(err)
	}
	part, err := core.Run(workload, core.RunConfig{
		Platform: pc, Strategy: core.Partitioned, Alloc: opt.Allocation,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("shared L2:      %6d misses, miss rate %.2f%%, CPI %.2f\n",
		shared.TotalMisses(), shared.L2MissRate*100, shared.CPIMean)
	fmt.Printf("partitioned L2: %6d misses, miss rate %.2f%%, CPI %.2f\n",
		part.TotalMisses(), part.L2MissRate*100, part.CPIMean)
	fmt.Printf("allocation: producer=%d units, consumer=%d units (1 unit = 2 KiB)\n",
		opt.Allocation["producer"], opt.Allocation["consumer"])
	rep := core.CompareExpectedSimulated(opt.Expected, part)
	fmt.Printf("compositionality: max |expected-simulated| = %.3f%% of total misses\n",
		rep.MaxRelDiff*100)
}
