// Example mpeg2 reproduces the paper's second application: the 13-task
// parallel MPEG-2 decoder with closed-loop motion compensation, verified
// bit-exactly, studied under the shared and partitioned L2 and under the
// paper's extra 1 MB shared-cache data point.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps/mpeg2"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

func main() {
	small := flag.Bool("small", true, "run the fast small-scale variant")
	flag.Parse()

	scale := workloads.Small
	cfg := experiments.Small()
	if !*small {
		scale = workloads.Paper
		cfg = experiments.Default()
	}

	// Functional verification.
	var pipe *mpeg2.Pipeline
	w := workloads.MPEG2(scale, &pipe)
	app, err := w.Factory()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := core.RunApp(app, core.RunConfig{Platform: cfg.Platform}); err != nil {
		log.Fatal(err)
	}
	if err := pipe.Verify(); err != nil {
		log.Fatalf("decoded video wrong: %v", err)
	}
	fmt.Printf("mpeg2: %d pictures (%dx%d) decoded and verified bit-exactly\n",
		pipe.Pictures, pipe.Width, pipe.Height)

	// The study: Table 2, Figure 2/3, and the 1 MB shared variant.
	study, err := experiments.App2(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(experiments.AllocationTable(study, "Table 2: allocated L2 units"))
	fmt.Println(experiments.Figure2(study))
	fmt.Printf("misses: shared %d -> partitioned %d (%.2fx fewer; paper: 6.5x)\n",
		study.Shared.TotalMisses(), study.Part.TotalMisses(), study.MissRatio())

	big := cfg.Platform
	big.Topology = big.Topology.WithLevel("l2", func(l *cache.LevelSpec) { l.Sets *= 2 })
	bigRes, err := core.Run(workloads.MPEG2(scale, nil), core.RunConfig{Platform: big})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1MB shared L2: %d misses (%.2f%%), CPI %.2f — the paper's extra data point\n",
		bigRes.TotalMisses(), bigRes.L2MissRate*100, bigRes.CPIMean)
}
