// Example custom shows how a downstream user builds their own task graph
// against the library: a three-stage software-defined-radio-like pipeline
// (sampler -> filter bank -> demodulator) with a frame buffer, registered
// in the workload registry so declarative Scenario specs can address it
// by name, run through the scenario batch runner, then profiled and
// partitioned with both solvers (MCKP and branch-and-bound ILP), plus
// the section 3.1 assignment model on the measured task times.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/kpn"
	"repro/internal/platform"
	"repro/internal/scenario"
	"repro/internal/workloads"
)

func buildApp() (*core.App, error) {
	b := core.NewBuilder("sdr")
	iq := b.AddFIFO("iq", 256, 8)       // sampler -> filter
	sym := b.AddFIFO("symbols", 64, 16) // filter -> demod
	spectrum := b.AddFrame("spectrum", 256, 64, 1)

	const bursts = 300
	b.AddTask(core.TaskConfig{
		Name: "sampler", CPU: 0, HeapSize: 8 * 1024,
		Body: func(c *kpn.Ctx) {
			buf := make([]byte, 256)
			for i := 0; i < bursts; i++ {
				for j := range buf {
					buf[j] = byte(i + j)
				}
				c.Exec(128)
				iq.Write(c, buf)
			}
			iq.Close(c)
		},
	})
	b.AddTask(core.TaskConfig{
		Name: "filter", CPU: 1, HeapSize: 64 * 1024,
		Body: func(c *kpn.Ctx) {
			in := make([]byte, 256)
			out := make([]byte, 64)
			for iq.Read(c, in) {
				// FIR over a 48 KiB coefficient bank (loop reuse the
				// partitioner protects).
				var acc uint32
				for off := uint64(0); off < 48*1024; off += 64 {
					acc += c.Load32(c.Heap(), off)
					c.Exec(3)
				}
				for j := range out {
					out[j] = in[j*4] ^ byte(acc)
				}
				sym.Write(c, out)
			}
			sym.Close(c)
		},
	})
	b.AddTask(core.TaskConfig{
		Name: "demod", CPU: 2, HeapSize: 16 * 1024,
		Body: func(c *kpn.Ctx) {
			in := make([]byte, 64)
			row := 0
			line := make([]byte, 256)
			for sym.Read(c, in) {
				for j := range line {
					line[j] = in[j%64]
				}
				spectrum.StoreRow(c, row%64, line)
				row++
				c.Exec(256)
			}
		},
	})
	return b.Build()
}

func main() {
	// Register the workload: from here on, "sdr" is addressable from any
	// scenario spec (a JSON file, a serve-mode submission, or the
	// programmatic Scenario below), like the built-in applications.
	if err := workloads.Register("sdr", func(workloads.BuildConfig) core.Workload {
		return core.Workload{Name: "sdr", Factory: buildApp}
	}); err != nil {
		log.Fatal(err)
	}
	w, err := workloads.Build("sdr", workloads.BuildConfig{})
	if err != nil {
		log.Fatal(err)
	}
	pc := platform.Default()

	// The declarative route: a full study of the registered workload as
	// one serializable spec on the memoizing batch runner.
	rn := scenario.NewRunner(0)
	doc, err := rn.Run(scenario.Scenario{Workload: "sdr", Runs: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario study (key %s): shared %d vs partitioned %d misses, compositional: %v\n",
		doc.Key, doc.Shared.TotalMisses, doc.Partitioned.TotalMisses, doc.Compose.Compositional(0.02))

	shared, err := core.Run(w, core.RunConfig{Platform: pc})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared: %d misses, CPI %.2f\n", shared.TotalMisses(), shared.CPIMean)

	// Optimize with both solvers; they must agree (the ILP is the
	// paper's literal formulation, the MCKP DP the fast exact solver).
	for _, solver := range []core.Solver{core.SolverMCKP, core.SolverILP} {
		opt, err := core.Optimize(w, core.OptimizeConfig{Platform: pc, Solver: solver, Runs: 1})
		if err != nil {
			log.Fatal(err)
		}
		part, err := core.Run(w, core.RunConfig{
			Platform: pc, Strategy: core.Partitioned, Alloc: opt.Allocation,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s:   %d misses, CPI %.2f, filter partition %d units\n",
			solver, part.TotalMisses(), part.CPIMean, opt.Allocation["filter"])
	}

	// Section 3.1: what would the best static assignment be?
	res, err := core.Run(w, core.RunConfig{Platform: pc})
	if err != nil {
		log.Fatal(err)
	}
	best, err := core.AssignExhaustive(res.TaskCycles, pc.NumCPUs)
	if err != nil {
		log.Fatal(err)
	}
	loads, _ := core.ProcessorLoads(res.TaskCycles, best, pc.NumCPUs)
	fmt.Printf("optimal static assignment %v, makespan %d cycles\n", best, core.Makespan(loads))
}
