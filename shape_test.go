package repro

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

// TestPaperShape is the reproduction guard: it runs both applications at
// paper scale and asserts the qualitative results of section 5 — the
// partitioned system wins by a multiple, the miss rates drop accordingly,
// CPI improves more for application 1 than for application 2, and the
// model's expectations match simulation within the paper's 2% bound.
// It takes ~30 s; skipped under -short.
func TestPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale shape test skipped in -short mode")
	}
	cfg := experiments.Config{
		Scale:       workloads.Paper,
		Platform:    experiments.Default().Platform,
		ProfileRuns: 1,
	}

	s1, err := experiments.App1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := experiments.App2(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Paper: "5 times less misses" for app 1. Require at least 3x.
	if r := s1.MissRatio(); r < 3.0 {
		t.Errorf("app1 miss ratio = %.2f, want >= 3 (paper: 5)", r)
	}
	// Paper: "6.5 times less misses" for app 2. Require at least 2x.
	if r := s2.MissRatio(); r < 2.0 {
		t.Errorf("app2 miss ratio = %.2f, want >= 2 (paper: 6.5)", r)
	}
	// Miss rates must drop by a multiple in both apps.
	if s1.Part.L2MissRate*2 > s1.Shared.L2MissRate {
		t.Errorf("app1 miss rate %.4f -> %.4f: no multiple improvement",
			s1.Shared.L2MissRate, s1.Part.L2MissRate)
	}
	if s2.Part.L2MissRate*1.5 > s2.Shared.L2MissRate {
		t.Errorf("app2 miss rate %.4f -> %.4f: insufficient improvement",
			s2.Shared.L2MissRate, s2.Part.L2MissRate)
	}
	// CPI: both improve; app1's relative gain exceeds app2's (the paper:
	// 20% vs 4%, "the used mpeg2 implementation was ... more L1 and
	// processor bounded").
	gain1 := 1 - s1.Part.CPIMean/s1.Shared.CPIMean
	gain2 := 1 - s2.Part.CPIMean/s2.Shared.CPIMean
	if gain1 <= 0 || gain2 <= 0 {
		t.Errorf("CPI did not improve: app1 %.3f, app2 %.3f", gain1, gain2)
	}
	if gain1 <= gain2 {
		t.Errorf("app1 CPI gain %.3f not larger than app2's %.3f (paper: 20%% vs 4%%)",
			gain1, gain2)
	}
	// Figure 3: compositional within the paper's 2% bound.
	if !s1.Compose.Compositional(0.02) {
		t.Errorf("app1 not compositional: max rel diff %.4f", s1.Compose.MaxRelDiff)
	}
	if !s2.Compose.Compositional(0.02) {
		t.Errorf("app2 not compositional: max rel diff %.4f", s2.Compose.MaxRelDiff)
	}

	// The 1 MB shared L2 approaches the partitioned 512 KB system for
	// MPEG-2 (paper: 0.6% vs 0.8% miss rate).
	big := cfg.Platform
	big.Topology = big.Topology.WithLevel("l2", func(l *cache.LevelSpec) { l.Sets *= 2 })
	bigRes, err := core.Run(workloads.MPEG2(cfg.Scale, nil), core.RunConfig{Platform: big})
	if err != nil {
		t.Fatal(err)
	}
	if bigRes.TotalMisses() > s2.Shared.TotalMisses() {
		t.Error("1MB shared worse than 512KB shared")
	}
	lo, hi := s2.Part.TotalMisses(), bigRes.TotalMisses()
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(hi) > 1.5*float64(lo) {
		t.Errorf("1MB shared (%d) and partitioned 512KB (%d) should be close", bigRes.TotalMisses(), s2.Part.TotalMisses())
	}
}
