package workloads

import (
	"repro/internal/apps/jpeg"
	"repro/internal/apps/sections"
	"repro/internal/core"
)

// JPEG1Only returns the first JPEG decoder of application 1 running
// alone. It exists for the compositionality ablation (experiment X1):
// under the shared cache the decoder's miss count changes drastically
// when the co-running tasks are removed; under partitioning it barely
// moves — the paper's definition of a compositional system.
func JPEG1Only(scale Scale) core.Workload {
	return jpeg1Only(scale, 0)
}

// jpeg1Only builds the solo decoder with the input seed offset by seed.
func jpeg1Only(scale Scale, seed uint64) core.Workload {
	return core.Workload{
		Name: "jpeg1-only",
		Factory: func() (*core.App, error) {
			b := core.NewBuilder("jpeg1-only")
			b.Sections(sections.DataSize, sections.BSSSize)
			cfg := jpeg.Config{Suffix: "1", Width: 512, Height: 384, Frames: 2,
				Quality: 2, Seed: 101 + seed, CPUs: [4]int{0, 1, 2, 3}}
			if scale == Small {
				cfg.Width, cfg.Height = 96, 64
			}
			if _, err := jpeg.Build(b, cfg); err != nil {
				return nil, err
			}
			sections.PreloadData(b.ApplData())
			return b.Build()
		},
	}
}
