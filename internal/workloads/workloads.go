// Package workloads assembles the two evaluation applications of the
// paper (section 5): (1) two JPEG decoders working on different picture
// formats plus one line-based Canny edge detector — 15 tasks — and (2) a
// parallel MPEG-2 video decoder — 13 tasks. Both come in a paper-scale
// variant for the experiments and a small variant for fast tests.
package workloads

import (
	"fmt"

	"repro/internal/apps/canny"
	"repro/internal/apps/jpeg"
	"repro/internal/apps/mpeg2"
	"repro/internal/apps/sections"
	"repro/internal/core"
)

// Scale selects workload size.
type Scale uint8

// Workload scales.
const (
	// Small keeps unit tests fast.
	Small Scale = iota
	// Paper is the experiment scale: picture sizes large enough that the
	// applications' combined working set exceeds the 512 KB L2, as the
	// real video workloads of the paper did.
	Paper
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	if s == Small {
		return "small"
	}
	return "paper"
}

// ParseScale resolves the spelled-out scale of a scenario spec or flag.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return Small, nil
	case "paper", "":
		return Paper, nil
	}
	return 0, fmt.Errorf("workloads: unknown scale %q (want small or paper)", s)
}

// JPEGCannyHandles exposes the pipelines for functional verification.
type JPEGCannyHandles struct {
	JPEG1 *jpeg.Pipeline
	JPEG2 *jpeg.Pipeline
	Canny *canny.Pipeline
}

// JPEGCanny returns the first application as a reproducible workload.
// If handles is non-nil, it receives the pipeline handles of each built
// instance (overwritten on every Factory call).
func JPEGCanny(scale Scale, handles *JPEGCannyHandles) core.Workload {
	return jpegCanny(scale, 0, handles)
}

// jpegCanny builds application 1 with the input seeds offset by seed
// (seed 0 is the canonical paper workload).
func jpegCanny(scale Scale, seed uint64, handles *JPEGCannyHandles) core.Workload {
	return core.Workload{
		Name: "2jpeg+canny",
		Factory: func() (*core.App, error) {
			b := core.NewBuilder("2jpeg+canny")
			b.Sections(sections.DataSize, sections.BSSSize)

			cfg1 := jpeg.Config{Suffix: "1", Width: 512, Height: 384, Frames: 2,
				Quality: 2, Seed: 101 + seed, CPUs: [4]int{0, 1, 2, 3}}
			cfg2 := jpeg.Config{Suffix: "2", Width: 384, Height: 256, Frames: 3,
				Quality: 3, Seed: 202 + seed, CPUs: [4]int{1, 2, 3, 0}}
			ccfg := canny.Config{Width: 512, Height: 384, Frames: 2, Threshold: 60,
				Seed: 303 + seed, CPUs: [7]int{0, 1, 2, 3, 0, 1, 2}}
			if scale == Small {
				cfg1.Width, cfg1.Height = 96, 64
				cfg2.Width, cfg2.Height = 64, 48
				ccfg.Width, ccfg.Height = 96, 64
			}

			p1, err := jpeg.Build(b, cfg1)
			if err != nil {
				return nil, err
			}
			p2, err := jpeg.Build(b, cfg2)
			if err != nil {
				return nil, err
			}
			pc, err := canny.Build(b, ccfg)
			if err != nil {
				return nil, err
			}
			if handles != nil {
				handles.JPEG1, handles.JPEG2, handles.Canny = p1, p2, pc
			}
			sections.PreloadData(b.ApplData())
			return b.Build()
		},
	}
}

// MPEG2 returns the second application as a reproducible workload.
func MPEG2(scale Scale, handle **mpeg2.Pipeline) core.Workload {
	return mpeg2Workload(scale, 0, handle)
}

// mpeg2Workload builds application 2 with the input seed offset by seed.
func mpeg2Workload(scale Scale, seed uint64, handle **mpeg2.Pipeline) core.Workload {
	return core.Workload{
		Name: "mpeg2",
		Factory: func() (*core.App, error) {
			b := core.NewBuilder("mpeg2")
			b.Sections(sections.DataSize, sections.BSSSize)
			cfg := mpeg2.Config{Width: 256, Height: 192, Pictures: 10, QScale: 2,
				Seed: 404 + seed, CPUs: [13]int{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 1}}
			if scale == Small {
				cfg.Width, cfg.Height, cfg.Pictures = 64, 48, 2
			}
			p, err := mpeg2.Build(b, cfg)
			if err != nil {
				return nil, err
			}
			if handle != nil {
				*handle = p
			}
			sections.PreloadData(b.ApplData())
			return b.Build()
		},
	}
}
