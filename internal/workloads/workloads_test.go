package workloads

import (
	"testing"

	"repro/internal/apps/mpeg2"
	"repro/internal/core"
	"repro/internal/platform"
)

func TestJPEGCannySmallRunsAndVerifies(t *testing.T) {
	var h JPEGCannyHandles
	w := JPEGCanny(Small, &h)
	app, err := w.Factory()
	if err != nil {
		t.Fatal(err)
	}
	if app.NumTasks() != 15 {
		t.Fatalf("tasks = %d, want 15 (2 jpeg × 4 + canny × 7)", app.NumTasks())
	}
	if _, err := core.RunApp(app, core.RunConfig{Platform: platform.Default()}); err != nil {
		t.Fatal(err)
	}
	if err := h.JPEG1.Verify(); err != nil {
		t.Errorf("jpeg1: %v", err)
	}
	if err := h.JPEG2.Verify(); err != nil {
		t.Errorf("jpeg2: %v", err)
	}
	if err := h.Canny.Verify(); err != nil {
		t.Errorf("canny: %v", err)
	}
}

func TestMPEG2SmallRunsAndVerifies(t *testing.T) {
	var p *mpeg2.Pipeline
	w := MPEG2(Small, &p)
	app, err := w.Factory()
	if err != nil {
		t.Fatal(err)
	}
	if app.NumTasks() != 13 {
		t.Fatalf("tasks = %d, want 13", app.NumTasks())
	}
	if _, err := core.RunApp(app, core.RunConfig{Platform: platform.Default()}); err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Errorf("mpeg2: %v", err)
	}
}

func TestFactoryIsReproducible(t *testing.T) {
	w := JPEGCanny(Small, nil)
	a1, err := w.Factory()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := w.Factory()
	if err != nil {
		t.Fatal(err)
	}
	// Identical region layout across factory calls.
	r1, r2 := a1.AS.Regions(), a2.AS.Regions()
	if len(r1) != len(r2) {
		t.Fatalf("region counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Name != r2[i].Name || r1[i].Base != r2[i].Base || r1[i].Size != r2[i].Size {
			t.Fatalf("region %d differs: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestEntitiesCoverAllRegions(t *testing.T) {
	for _, w := range []core.Workload{JPEGCanny(Small, nil), MPEG2(Small, nil)} {
		app, err := w.Factory()
		if err != nil {
			t.Fatal(err)
		}
		covered := map[int32]bool{}
		for _, e := range app.Entities() {
			for _, r := range e.Regions {
				covered[int32(r)] = true
			}
		}
		for _, r := range app.AS.Regions() {
			if !covered[int32(r.ID)] {
				t.Errorf("%s: region %s not covered by any entity", w.Name, r.Name)
			}
		}
	}
}
