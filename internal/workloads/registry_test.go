package workloads

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRegistryBuiltins(t *testing.T) {
	names := Names()
	for _, want := range []string{"2jpeg+canny", "mpeg2", "jpeg1-only", "2jpeg+canny(split i/d)"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in %q not registered (have %v)", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %v", names)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	if err := Register("", func(BuildConfig) core.Workload { return core.Workload{} }); err == nil {
		t.Error("empty name must be rejected")
	}
	if err := Register("mpeg2", func(BuildConfig) core.Workload { return core.Workload{} }); err == nil {
		t.Error("duplicate name must be rejected")
	}
	if err := Register("x-nil", nil); err == nil {
		t.Error("nil builder must be rejected")
	}
}

func TestBuildUnknownListsAlternatives(t *testing.T) {
	_, err := Build("nope", BuildConfig{})
	if err == nil || !strings.Contains(err.Error(), "mpeg2") {
		t.Errorf("unknown-workload error must list registered names, got %v", err)
	}
}

func TestBuildSeedAndSplit(t *testing.T) {
	w, err := Build("2jpeg+canny(split i/d)", BuildConfig{Scale: Small, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "2jpeg+canny(split i/d)" {
		t.Errorf("unexpected name %q", w.Name)
	}
	app, err := w.Factory()
	if err != nil {
		t.Fatal(err)
	}
	if !app.SplitTaskSections {
		t.Error("split variant must set SplitTaskSections")
	}
}
