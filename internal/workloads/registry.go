package workloads

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// BuildConfig parameterizes a registered workload build.
type BuildConfig struct {
	Scale Scale
	// Seed perturbs the workload's input data (it offsets the per-stage
	// PRNG seeds of the synthetic inputs). Seed 0 is the canonical
	// workload of the paper reproduction; two builds with the same
	// BuildConfig are bit-identical.
	Seed uint64
}

// Builder constructs a workload from a BuildConfig. Builders must be
// pure: the returned Workload's Factory may be called many times,
// possibly concurrently (each call must yield an independent App).
type Builder func(BuildConfig) core.Workload

var (
	regMu    sync.RWMutex
	registry = map[string]Builder{}
)

// Register adds a workload builder under a unique name. Third-party
// applications register here to become addressable from scenario specs
// and the serve API. It returns an error when the name is empty or taken.
func Register(name string, b Builder) error {
	if name == "" {
		return fmt.Errorf("workloads: empty workload name")
	}
	if b == nil {
		return fmt.Errorf("workloads: nil builder for %q", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("workloads: workload %q already registered", name)
	}
	registry[name] = b
	return nil
}

// MustRegister is Register that panics on error, for init-time use.
func MustRegister(name string, b Builder) {
	if err := Register(name, b); err != nil {
		panic(err)
	}
}

// Lookup returns the builder registered under name.
func Lookup(name string) (Builder, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	return b, ok
}

// Build resolves a name and constructs the workload. Unknown names list
// the registered alternatives, so a typo in a scenario spec is
// actionable.
func Build(name string, bc BuildConfig) (core.Workload, error) {
	b, ok := Lookup(name)
	if !ok {
		return core.Workload{}, fmt.Errorf("workloads: unknown workload %q (registered: %v)", name, Names())
	}
	return b(bc), nil
}

// Names lists the registered workload names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SplitID derives the split-instruction/data variant of a workload: the
// same task graph with every task's code and data profiled and
// partitioned as separate entities (the section 4.2 organization of
// experiment X4).
func SplitID(w core.Workload) core.Workload {
	base := w.Factory
	return core.Workload{
		Name: w.Name + "(split i/d)",
		Factory: func() (*core.App, error) {
			app, err := base()
			if err != nil {
				return nil, err
			}
			app.SplitTaskSections = true
			return app, nil
		},
	}
}

func init() {
	MustRegister("2jpeg+canny", func(bc BuildConfig) core.Workload {
		return jpegCanny(bc.Scale, bc.Seed, nil)
	})
	MustRegister("mpeg2", func(bc BuildConfig) core.Workload {
		return mpeg2Workload(bc.Scale, bc.Seed, nil)
	})
	MustRegister("jpeg1-only", func(bc BuildConfig) core.Workload {
		return jpeg1Only(bc.Scale, bc.Seed)
	})
	MustRegister("2jpeg+canny(split i/d)", func(bc BuildConfig) core.Workload {
		return SplitID(jpegCanny(bc.Scale, bc.Seed, nil))
	})
}
