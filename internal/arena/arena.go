// Package arena provides a typed bump allocator for per-simulation
// mutable state.
//
// A batch sweep runs many short-lived platform instances per process;
// each one allocates the same shapes — cache tag/LRU/dirty arrays, line
// register files, dirty lists — uses them for one simulation, and drops
// them, leaving the garbage collector to sweep megabytes of dead state
// per point. An Arena amortizes that: slabs are allocated once, handed
// out by bumping an offset, and Reset rewinds the offsets so the next
// simulation reuses the same memory with zero new allocations.
//
// Make returns zeroed memory, exactly like the builtin make, so callers
// switch between arena and heap allocation (a nil *Arena) without any
// behavioral difference. Slabs are segregated by element type, so a
// returned slice is properly typed with no unsafe aliasing.
//
// An Arena is NOT safe for concurrent use. The simulation engine runs
// tasks in strict handoff — exactly one goroutine of a platform instance
// executes at any instant, with channel synchronization between handoffs
// — so one arena per platform is race-free; concurrent simulations each
// take their own arena.
package arena

import "reflect"

// Arena is a bump allocator of typed slabs. The zero value is not
// usable; call New.
type Arena struct {
	slabs map[reflect.Type]resettable
}

type resettable interface{ reset() }

// New returns an empty arena.
func New() *Arena {
	return &Arena{slabs: make(map[reflect.Type]resettable)}
}

// Reset rewinds every slab so subsequently Made slices reuse the
// arena's existing blocks. The caller must guarantee that no slice
// handed out before the Reset is used afterwards: Make zeroes on
// allocation, so stale slices would observe (and corrupt) the next
// user's state.
func (a *Arena) Reset() {
	for _, s := range a.slabs {
		s.reset()
	}
}

// slab holds the blocks of one element type. blocks[cur] is the block
// currently being bumped at offset used; earlier blocks are full (or
// were too small for a request that skipped past them).
type slab[T any] struct {
	blocks [][]T
	cur    int
	used   int
}

func (s *slab[T]) reset() { s.cur, s.used = 0, 0 }

// minBlockElems is the smallest block, in elements. Blocks double from
// there (or jump straight to a large request's size), so a slab reaches
// any working-set size in O(log n) allocations.
const minBlockElems = 256

func (s *slab[T]) alloc(n int) []T {
	for {
		if s.cur < len(s.blocks) {
			if b := s.blocks[s.cur]; s.used+n <= len(b) {
				out := b[s.used : s.used+n : s.used+n]
				s.used += n
				clear(out)
				return out
			}
			// The current block cannot fit the request; advance. Later
			// blocks are at least as large (blocks grow monotonically),
			// so a fitting one is found or a new one is appended.
			s.cur++
			s.used = 0
			continue
		}
		size := minBlockElems
		if len(s.blocks) > 0 {
			size = 2 * len(s.blocks[len(s.blocks)-1])
		}
		if size < n {
			size = n
		}
		s.blocks = append(s.blocks, make([]T, size))
		s.cur = len(s.blocks) - 1
		s.used = 0
	}
}

// Make allocates a zeroed slice of n elements with both length and
// capacity n, from the arena when a is non-nil, from the heap (the
// builtin make) when a is nil. The capacity is exact, so an append
// beyond it copies out of the arena instead of overrunning a
// neighboring allocation.
func Make[T any](a *Arena, n int) []T {
	if a == nil {
		return make([]T, n)
	}
	if n == 0 {
		return []T{}
	}
	key := reflect.TypeFor[T]()
	s, ok := a.slabs[key].(*slab[T])
	if !ok {
		s = &slab[T]{}
		a.slabs[key] = s
	}
	return s.alloc(n)
}
