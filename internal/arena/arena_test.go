package arena

import "testing"

func TestMakeZeroesAndSizes(t *testing.T) {
	a := New()
	s := Make[uint64](a, 10)
	if len(s) != 10 || cap(s) != 10 {
		t.Fatalf("len=%d cap=%d, want 10/10", len(s), cap(s))
	}
	for i := range s {
		if s[i] != 0 {
			t.Fatalf("s[%d]=%d, want 0", i, s[i])
		}
		s[i] = uint64(i + 1)
	}
	// A second slice must not alias the first.
	s2 := Make[uint64](a, 10)
	for i := range s2 {
		if s2[i] != 0 {
			t.Fatalf("second slice aliases the first at %d: %d", i, s2[i])
		}
	}
	for i := range s {
		if s[i] != uint64(i+1) {
			t.Fatalf("first slice corrupted at %d: %d", i, s[i])
		}
	}
}

func TestMakeNilArenaFallsBackToHeap(t *testing.T) {
	s := Make[int32](nil, 7)
	if len(s) != 7 || cap(s) != 7 {
		t.Fatalf("len=%d cap=%d, want 7/7", len(s), cap(s))
	}
}

func TestResetReusesBlocksAndZeroes(t *testing.T) {
	a := New()
	s := Make[int](a, minBlockElems)
	for i := range s {
		s[i] = -1
	}
	a.Reset()
	r := Make[int](a, minBlockElems)
	if &r[0] != &s[0] {
		t.Fatalf("after Reset the first allocation did not reuse the first block")
	}
	for i := range r {
		if r[i] != 0 {
			t.Fatalf("reused memory not zeroed at %d: %d", i, r[i])
		}
	}
}

func TestLargeRequestGetsOwnBlock(t *testing.T) {
	a := New()
	Make[byte](a, 3)
	big := Make[byte](a, 10*minBlockElems)
	if len(big) != 10*minBlockElems {
		t.Fatalf("len=%d", len(big))
	}
	// The small tail of the skipped block is not returned to; the next
	// allocation bumps the big block.
	next := Make[byte](a, 5)
	if len(next) != 5 {
		t.Fatalf("len=%d", len(next))
	}
}

func TestTypesAreSegregated(t *testing.T) {
	a := New()
	u := Make[uint64](a, 4)
	b := Make[bool](a, 4)
	u[0] = ^uint64(0)
	if b[0] {
		t.Fatal("bool slab aliases uint64 slab")
	}
}

func TestSteadyStateAllocFree(t *testing.T) {
	a := New()
	// Warm the slab, then a reset+make cycle must not allocate.
	Make[uint64](a, 64)
	allocs := testing.AllocsPerRun(100, func() {
		a.Reset()
		_ = Make[uint64](a, 64)
	})
	if allocs != 0 {
		t.Fatalf("steady-state reset+make allocates %.1f objects, want 0", allocs)
	}
}
