package platform

import (
	"testing"

	"repro/internal/kpn"
	"repro/internal/mem"
)

// buildPipelineApp constructs a fresh 3-task pipeline with both compute
// and memory phases; used to check the engine is fully deterministic.
func buildPipelineApp() (*mem.AddressSpace, []*kpn.Process) {
	as := mem.NewAddressSpace()
	f1 := kpn.MustNewFIFO(as, "f1", 16, 4)
	f2 := kpn.MustNewFIFO(as, "f2", 16, 4)
	mk := func(name string, body func(*kpn.Ctx)) *kpn.Process {
		return &kpn.Process{
			Name:    name,
			Body:    body,
			Code:    as.MustAlloc(name+".code", mem.KindCode, name, 8192),
			Heap:    as.MustAlloc(name+".heap", mem.KindHeap, name, 32768),
			HotCode: 2048,
		}
	}
	src := mk("src", func(c *kpn.Ctx) {
		tok := make([]byte, 16)
		for i := 0; i < 200; i++ {
			for j := range tok {
				tok[j] = byte(i + j)
			}
			c.Exec(50)
			f1.Write(c, tok)
		}
		f1.Close(c)
	})
	mid := mk("mid", func(c *kpn.Ctx) {
		tok := make([]byte, 16)
		for f1.Read(c, tok) {
			for off := uint64(0); off < 8192; off += 256 {
				c.Load32(c.Heap(), off)
			}
			c.Exec(80)
			f2.Write(c, tok)
		}
		f2.Close(c)
	})
	sink := mk("sink", func(c *kpn.Ctx) {
		tok := make([]byte, 16)
		for f2.Read(c, tok) {
			c.Store32(c.Heap(), uint64(tok[0])*64, uint32(tok[1]))
			c.Exec(30)
		}
	})
	return as, []*kpn.Process{src, mid, sink}
}

// TestEngineDeterministic runs the identical system twice and demands
// bit-identical results: cycle counts, cache statistics, bus statistics.
// Determinism is what makes the profile→optimize→validate flow and every
// experiment in this repository reproducible.
func TestEngineDeterministic(t *testing.T) {
	type snapshot struct {
		makespan uint64
		instrs   uint64
		l2       uint64
		l2miss   uint64
		bus      uint64
		switches uint64
	}
	runOnce := func() snapshot {
		as, procs := buildPipelineApp()
		cfg := Default()
		cfg.NumCPUs = 2
		cfg.Sched.Quantum = 3_000
		pl, err := New(cfg, as, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range procs {
			if err := pl.AddTask(p, i%2); err != nil {
				t.Fatal(err)
			}
		}
		res, err := pl.Run(1_000_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return snapshot{
			makespan: res.Makespan,
			instrs:   res.TotalInstrs,
			l2:       res.L2.Accesses,
			l2miss:   res.L2.Misses,
			bus:      res.BusStats.Requests,
			switches: res.Switches,
		}
	}
	a := runOnce()
	for trial := 0; trial < 3; trial++ {
		b := runOnce()
		if a != b {
			t.Fatalf("run %d diverged: %+v vs %+v", trial, a, b)
		}
	}
}

// TestMigrationDeterministic checks determinism also holds with dynamic
// scheduling enabled (the engine itself stays sequential).
func TestMigrationDeterministic(t *testing.T) {
	runOnce := func() (uint64, uint64) {
		as, procs := buildPipelineApp()
		cfg := Default()
		cfg.NumCPUs = 2
		cfg.Sched.Quantum = 3_000
		cfg.Sched.AllowMigration = true
		pl, err := New(cfg, as, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range procs {
			if err := pl.AddTask(p, 0); err != nil {
				t.Fatal(err)
			}
		}
		res, err := pl.Run(1_000_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan, res.L2.Misses
	}
	m1, s1 := runOnce()
	m2, s2 := runOnce()
	if m1 != m2 || s1 != s2 {
		t.Fatalf("migration runs diverged: %d/%d vs %d/%d", m1, s1, m2, s2)
	}
}
