package platform

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/kpn"
	"repro/internal/mem"
	"repro/internal/rtos"
)

// buildStress assembles a deterministic multi-task application exercising
// every access shape the line-merged fast path coalesces: long same-line
// byte runs, 9-point stencils hopping between heap rows, odd-size and
// unaligned bulk transfers, word-granular FIFO streaming (L1 bypass),
// single-line hot code, and frame-buffer rows. Sized so that quanta of a
// few cycles force yields in the middle of coalesced runs.
func buildStress(as *mem.AddressSpace) (tasks []*kpn.Process, entities []rtos.AllocEntry) {
	f1 := kpn.MustNewFIFO(as, "s.f1", 4, 8)
	f2 := kpn.MustNewFIFO(as, "s.f2", 12, 4) // token straddles lines over time
	fr := kpn.MustNewFrame(as, "s.frame", 48, 16, 1)

	mk := func(name string, hot uint64, body func(*kpn.Ctx)) *kpn.Process {
		p := &kpn.Process{
			Name:    name,
			Body:    body,
			Code:    as.MustAlloc(name+".code", mem.KindCode, name, 1024),
			Heap:    as.MustAlloc(name+".heap", mem.KindHeap, name, 8192),
			HotCode: hot,
		}
		tasks = append(tasks, p)
		return p
	}

	prod := mk("prod", 64, func(c *kpn.Ctx) { // single-line hot loop
		h := c.Heap()
		buf := make([]byte, 12)
		for i := uint32(0); i < 150; i++ {
			// Byte run across a line boundary.
			for j := uint64(0); j < 70; j++ {
				c.Store8(h, uint64(i%8)*64+j, byte(i+uint32(j)))
			}
			c.Exec(40)
			f1.Write32(c, i*i)
			for j := range buf {
				buf[j] = byte(i) + byte(j)
			}
			// Unaligned odd-size bulk store.
			c.StoreBytes(h, 1+uint64(i%5), buf[:7+i%5])
			f2.Write(c, buf)
		}
		f1.Close(c)
		f2.Close(c)
	})
	_ = prod

	mk("stencil", 128, func(c *kpn.Ctx) {
		h := c.Heap()
		for {
			v, ok := f1.Read32(c)
			if !ok {
				break
			}
			row := uint64(v%16) * 96
			// 9-point stencil: three same-line runs per pixel.
			for x := uint64(1); x < 47; x++ {
				s := uint32(c.Load8(c.Heap(), row+x-1)) + uint32(c.Load8(h, row+x)) + uint32(c.Load8(h, row+x+1))
				s += uint32(c.Load8(h, row+96+x-1)) + uint32(c.Load8(h, row+96+x)) + uint32(c.Load8(h, row+96+x+1))
				c.Exec(14)
				c.Store8(h, row+192+x, byte(s))
			}
		}
	})

	mk("sink", 0, func(c *kpn.Ctx) {
		line := make([]byte, 48)
		tok := make([]byte, 12)
		y := 0
		for f2.Read(c, tok) {
			for i, b := range tok {
				line[(y+i)%48] = b
			}
			fr.StoreRow(c, y%16, line)
			fr.LoadRow(c, (y+5)%16, line)
			// Per-pixel frame traffic (bypass, 1-byte).
			for x := 0; x < 48; x += 3 {
				fr.Store8(c, x, y%16, fr.Load8(c, x, y%16)+1)
			}
			c.Exec(60)
			y++
		}
	})

	entities = []rtos.AllocEntry{
		{Name: "prod", Units: 2, Regions: []mem.RegionID{tasks[0].Code.ID, tasks[0].Heap.ID}},
		{Name: "stencil", Units: 4, Regions: []mem.RegionID{tasks[1].Code.ID, tasks[1].Heap.ID}},
		{Name: "sink", Units: 2, Regions: []mem.RegionID{tasks[2].Code.ID, tasks[2].Heap.ID}},
		{Name: "s.f1", Units: 1, Regions: []mem.RegionID{f1.Region.ID}},
		{Name: "s.f2", Units: 1, Regions: []mem.RegionID{f2.Region.ID}},
		{Name: "s.frame", Units: 2, Regions: []mem.RegionID{fr.Region.ID}},
	}
	return tasks, entities
}

// snapshot renders every observable quantity of a finished run — the
// comparison key of the differential oracle test.
func snapshot(pl *Platform, res *RunResult) string {
	s := fmt.Sprintf("makespan=%d instrs=%d switches=%d cpis=%v\n",
		res.Makespan, res.TotalInstrs, res.Switches, res.CPIs)
	s += fmt.Sprintf("l2=%+v bus=%+v banks=%v\n", res.L2, res.BusStats, pl.Bus().BankAccesses())
	for i, core := range pl.Cores() {
		s += fmt.Sprintf("core%d: now=%d instr=%d stall=%d switch=%d idle=%d\n",
			i, core.Now(), core.Instructions(), core.StallCycles(), core.SwitchCycles(), core.IdleCycles())
	}
	for i := 0; i < pl.cfg.NumCPUs; i++ {
		s += fmt.Sprintf("l1.%d=%+v\n", i, pl.L1(i).Stats())
	}
	for i, h := range pl.hiers {
		s += fmt.Sprintf("hier%d: fills=%d wbL2=%d wbMem=%d merged=%d\n",
			i, h.DemandFills, h.WritebacksToL2, h.WritebacksToMem, h.MergedBursts)
	}
	for id := mem.RegionID(0); int(id) < pl.AddressSpace().NumRegions(); id++ {
		r := pl.AddressSpace().Region(id)
		s += fmt.Sprintf("region %s: l2=%+v", r.Name, pl.L2().RegionStats(id))
		for i := 0; i < pl.cfg.NumCPUs; i++ {
			s += fmt.Sprintf(" l1.%d=%+v", i, pl.L1(i).RegionStats(id))
		}
		s += "\n"
	}
	if pl.L2().PartitionTable() != nil {
		for pid := range pl.L2().PartitionTable().Partitions() {
			s += fmt.Sprintf("part %d: %+v\n", pid, pl.L2().PartitionStats(pid))
		}
	}
	for _, t := range pl.Scheduler().Tasks() {
		s += fmt.Sprintf("task %s: consumed=%d\n", t.Name, t.ConsumedCycles())
	}
	return s
}

// runStress executes the stress application once under the given engine
// and returns the full observable snapshot.
func runStress(t *testing.T, cfg Config, partitioned bool) string {
	t.Helper()
	as := mem.NewAddressSpace()
	rtData := as.MustAlloc("rt.data", mem.KindRTData, "", 256)
	rtBSS := as.MustAlloc("rt.bss", mem.KindRTBSS, "", 128)
	tasks, entities := buildStress(as)
	pl, err := New(cfg, as, rtData, rtBSS)
	if err != nil {
		t.Fatal(err)
	}
	for i, task := range tasks {
		if err := pl.AddTask(task, i%cfg.NumCPUs); err != nil {
			t.Fatal(err)
		}
	}
	if partitioned {
		alloc, err := rtos.BuildAllocation(cfg.PartitionGeom().Sets, 2, entities)
		if err != nil {
			t.Fatal(err)
		}
		pl.InstallAllocation(alloc)
	}
	res, err := pl.Run(2_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return snapshot(pl, res)
}

// TestEngineDifferentialStress proves the line-merged fast path
// bit-identical to the word-granular oracle on an adversarial synthetic
// workload, across quanta small enough to split coalesced runs, non-zero
// L1 hit latencies (so hits drain the slice budget), partitioned and
// shared L2, and one- and two-CPU tiles.
func TestEngineDifferentialStress(t *testing.T) {
	for _, tc := range []struct {
		name        string
		quantum     int64
		l1HitLat    uint64
		cpus        int
		partitioned bool
	}{
		{"default", 5000, 0, 2, false},
		{"tiny-quantum", 7, 0, 2, false},
		{"hitlat1-q13", 13, 1, 2, false},
		{"hitlat3-q50", 50, 3, 1, false},
		{"partitioned", 5000, 0, 2, true},
		{"partitioned-hitlat1-q19", 19, 1, 2, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Default()
			cfg.NumCPUs = tc.cpus
			cfg.Sched.Quantum = tc.quantum
			cfg.Topology = cfg.Topology.WithLevel("l1", func(l *cache.LevelSpec) { l.HitLat = tc.l1HitLat })
			cfg.SwitchTouches = 8

			cfg.Engine = EngineLineMerged
			fast := runStress(t, cfg, tc.partitioned)
			cfg.Engine = EngineWordExact
			oracle := runStress(t, cfg, tc.partitioned)
			if fast != oracle {
				t.Errorf("fast path diverges from word-exact oracle:\n--- merged ---\n%s--- word ---\n%s", fast, oracle)
			}
		})
	}
}

// TestRTSectionOneWord regresses the modulo-zero hazard: rt sections of
// exactly one word (and smaller) must not panic the OS-traffic model.
func TestRTSectionOneWord(t *testing.T) {
	for _, size := range []uint64{1, 4} {
		as := mem.NewAddressSpace()
		rtData := as.MustAlloc("rt.data", mem.KindRTData, "", size)
		rtBSS := as.MustAlloc("rt.bss", mem.KindRTBSS, "", size)
		cfg := testConfig()
		cfg.NumCPUs = 1
		cfg.Sched.Quantum = 200 // force switches
		pl, err := New(cfg, as, rtData, rtBSS)
		if err != nil {
			t.Fatal(err)
		}
		mk := func(name string) *kpn.Process {
			return mkTask(as, name, func(c *kpn.Ctx) { c.Exec(2000) })
		}
		pl.AddTask(mk("a"), 0)
		pl.AddTask(mk("b"), 0)
		if _, err := pl.Run(100_000_000); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if size == 4 {
			if s := pl.L2().RegionStats(rtData.ID); s.Accesses == 0 {
				t.Errorf("size 4: no rt-data traffic recorded")
			}
		}
	}
}

func TestRTOffset(t *testing.T) {
	for _, tc := range []struct {
		cursor, size uint64
		off          uint64
		ok           bool
	}{
		{0, 0, 0, false},
		{10, 3, 0, false},
		{10, 4, 0, true},
		{10, 8, 10 % 4, true},
		{1000, 4096, 1000 % 4092, true},
	} {
		off, ok := rtOffset(tc.cursor, tc.size)
		if off != tc.off || ok != tc.ok {
			t.Errorf("rtOffset(%d,%d) = %d,%v want %d,%v", tc.cursor, tc.size, off, ok, tc.off, tc.ok)
		}
	}
}
