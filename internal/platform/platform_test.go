package platform

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/kpn"
	"repro/internal/mem"
	"repro/internal/rtos"
)

func testConfig() Config {
	cfg := Default()
	cfg.NumCPUs = 2
	cfg.Sched.Quantum = 5_000
	return cfg
}

func mkTask(as *mem.AddressSpace, name string, body func(*kpn.Ctx)) *kpn.Process {
	return &kpn.Process{
		Name:    name,
		Body:    body,
		Code:    as.MustAlloc(name+".code", mem.KindCode, name, 8192),
		Heap:    as.MustAlloc(name+".heap", mem.KindHeap, name, 32768),
		HotCode: 1024,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.NumCPUs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero CPUs accepted")
	}
	bad = Default()
	bad.BaseCPI = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero CPI accepted")
	}
	bad = Default()
	bad.Topology = bad.Topology.WithLevel("l2", func(l *cache.LevelSpec) { l.Sets = 3 })
	if err := bad.Validate(); err == nil {
		t.Error("bad L2 accepted")
	}
}

func TestSingleTaskRuns(t *testing.T) {
	as := mem.NewAddressSpace()
	pl, err := New(testConfig(), as, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint32
	task := mkTask(as, "t0", func(c *kpn.Ctx) {
		h := c.Heap()
		for i := uint64(0); i < 100; i++ {
			c.Store32(h, i*4, uint32(i))
		}
		for i := uint64(0); i < 100; i++ {
			sum += c.Load32(h, i*4)
			c.Exec(4)
		}
	})
	if err := pl.AddTask(task, 0); err != nil {
		t.Fatal(err)
	}
	res, err := pl.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 4950 {
		t.Errorf("functional result = %d, want 4950", sum)
	}
	if res.Makespan == 0 || res.TotalInstrs != 400 {
		t.Errorf("makespan=%d instrs=%d", res.Makespan, res.TotalInstrs)
	}
	if res.L2.Accesses == 0 {
		t.Error("no L2 traffic observed")
	}
}

func TestPipelineAcrossCPUs(t *testing.T) {
	as := mem.NewAddressSpace()
	pl, err := New(testConfig(), as, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := kpn.MustNewFIFO(as, "pipe", 4, 8)
	const n = 500
	var got []uint32
	prod := mkTask(as, "prod", func(c *kpn.Ctx) {
		for i := uint32(0); i < n; i++ {
			c.Exec(20)
			f.Write32(c, i*3)
		}
		f.Close(c)
	})
	cons := mkTask(as, "cons", func(c *kpn.Ctx) {
		for {
			v, ok := f.Read32(c)
			if !ok {
				return
			}
			c.Exec(10)
			got = append(got, v)
		}
	})
	pl.AddTask(prod, 0)
	pl.AddTask(cons, 1)
	res, err := pl.Run(100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("consumed %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint32(i*3) {
			t.Fatalf("token %d = %d", i, v)
		}
	}
	// Both CPUs did work.
	if pl.Cores()[0].Instructions() == 0 || pl.Cores()[1].Instructions() == 0 {
		t.Error("a CPU retired no instructions")
	}
	if res.CPIMean() <= 0 {
		t.Error("CPI mean not positive")
	}
}

func TestDeadlockReported(t *testing.T) {
	as := mem.NewAddressSpace()
	pl, _ := New(testConfig(), as, nil, nil)
	f := kpn.MustNewFIFO(as, "never", 4, 1)
	stuck := mkTask(as, "stuck", func(c *kpn.Ctx) {
		var b [4]byte
		f.Read(c, b[:])
	})
	pl.AddTask(stuck, 0)
	_, err := pl.Run(1_000_000)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if !strings.Contains(err.Error(), "stuck on never") {
		t.Errorf("deadlock summary missing blocked task: %v", err)
	}
}

func TestTaskPanicReported(t *testing.T) {
	as := mem.NewAddressSpace()
	pl, _ := New(testConfig(), as, nil, nil)
	boom := mkTask(as, "boom", func(c *kpn.Ctx) {
		panic("kaboom")
	})
	pl.AddTask(boom, 0)
	if _, err := pl.Run(1_000_000); err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunawayGuard(t *testing.T) {
	as := mem.NewAddressSpace()
	pl, _ := New(testConfig(), as, nil, nil)
	long := mkTask(as, "long", func(c *kpn.Ctx) {
		c.Exec(10_000_000)
	})
	pl.AddTask(long, 0)
	if _, err := pl.Run(10_000); err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("err = %v", err)
	}
}

func TestSharedRegionsBypassL1(t *testing.T) {
	as := mem.NewAddressSpace()
	pl, _ := New(testConfig(), as, nil, nil)
	f := kpn.MustNewFIFO(as, "f", 64, 4)
	prod := mkTask(as, "p", func(c *kpn.Ctx) {
		tok := make([]byte, 64)
		for i := 0; i < 32; i++ {
			f.Write(c, tok)
		}
		f.Close(c)
	})
	cons := mkTask(as, "c", func(c *kpn.Ctx) {
		tok := make([]byte, 64)
		for f.Read(c, tok) {
		}
	})
	pl.AddTask(prod, 0)
	pl.AddTask(cons, 1)
	if _, err := pl.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	// FIFO traffic must never enter either L1.
	for i := 0; i < 2; i++ {
		if s := pl.L1(i).RegionStats(f.Region.ID); s.Accesses != 0 {
			t.Errorf("L1 %d saw %d FIFO accesses", i, s.Accesses)
		}
	}
	if s := pl.L2().RegionStats(f.Region.ID); s.Accesses == 0 {
		t.Error("L2 saw no FIFO accesses")
	}
}

func TestOSTrafficOnSwitches(t *testing.T) {
	as := mem.NewAddressSpace()
	rtData := as.MustAlloc("rt.data", mem.KindRTData, "", 4096)
	rtBSS := as.MustAlloc("rt.bss", mem.KindRTBSS, "", 4096)
	cfg := testConfig()
	cfg.NumCPUs = 1
	cfg.Sched.Quantum = 500 // force many switches between two tasks
	pl, _ := New(cfg, as, rtData, rtBSS)
	mk := func(name string) *kpn.Process {
		return mkTask(as, name, func(c *kpn.Ctx) { c.Exec(20_000) })
	}
	pl.AddTask(mk("a"), 0)
	pl.AddTask(mk("b"), 0)
	if _, err := pl.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if s := pl.L2().RegionStats(rtData.ID); s.Accesses == 0 {
		t.Error("no rt-data traffic despite task switches")
	}
	if s := pl.L2().RegionStats(rtBSS.ID); s.Accesses == 0 {
		t.Error("no rt-bss traffic despite task switches")
	}
}

func TestInstallAllocationPartitionsL2(t *testing.T) {
	as := mem.NewAddressSpace()
	pl, _ := New(testConfig(), as, nil, nil)
	task := mkTask(as, "t", func(c *kpn.Ctx) {
		for i := uint64(0); i < 1000; i++ {
			c.Load32(c.Heap(), (i*64)%32768)
		}
	})
	pl.AddTask(task, 0)

	alloc, err := rtos.BuildAllocation(2048, 2, []rtos.AllocEntry{
		{Name: "t", Units: 4, Regions: []mem.RegionID{task.Code.ID, task.Heap.ID}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pl.InstallAllocation(alloc)
	if pl.L2().PartitionTable() == nil {
		t.Fatal("no partition table installed")
	}
	if _, err := pl.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	// All of the task's traffic must land in its partition.
	pid := alloc.ByName["t"]
	ps := pl.L2().PartitionStats(pid)
	if ps.Accesses == 0 {
		t.Error("task partition saw no accesses")
	}
	pl.InstallAllocation(nil)
	if pl.L2().PartitionTable() != nil {
		t.Error("InstallAllocation(nil) did not revert to shared")
	}
}

func TestMinTimeOrderKeepsClocksClose(t *testing.T) {
	as := mem.NewAddressSpace()
	cfg := testConfig()
	pl, _ := New(cfg, as, nil, nil)
	// Two independent equal tasks: clocks must stay within ~a quantum of
	// each other while both are live, so final skew is small.
	mk := func(name string) *kpn.Process {
		return mkTask(as, name, func(c *kpn.Ctx) { c.Exec(200_000) })
	}
	pl.AddTask(mk("a"), 0)
	pl.AddTask(mk("b"), 1)
	if _, err := pl.Run(1_000_000_000); err != nil {
		t.Fatal(err)
	}
	t0, t1 := pl.Cores()[0].Now(), pl.Cores()[1].Now()
	diff := int64(t0) - int64(t1)
	if diff < 0 {
		diff = -diff
	}
	if diff > 2*cfg.Sched.Quantum+20_000 {
		t.Errorf("clock skew %d too large (t0=%d t1=%d)", diff, t0, t1)
	}
}

func TestCPIMeanSkipsIdleCores(t *testing.T) {
	r := RunResult{CPIs: []float64{2.0, 0, 1.0, 0}}
	if got := r.CPIMean(); got != 1.5 {
		t.Errorf("CPIMean = %v, want 1.5", got)
	}
	if (RunResult{}).CPIMean() != 0 {
		t.Error("empty CPIMean should be 0")
	}
}
