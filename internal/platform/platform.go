// Package platform assembles and drives one CAKE tile (Stravers &
// Hoogerbrugge, VLSI-TSA 2001; Figure 1 of the paper): N VLIW processors
// with private L1 caches, a shared partitionable unified L2, a snooping
// interconnect and interleaved memory banks, all executing one YAPI
// application under the rtos scheduler.
//
// The engine is execution-driven and cycle-approximate: tasks run as
// cooperative goroutines whose every load, store and instruction fetch is
// charged through the cache hierarchy at the local time of the processor
// executing them. The engine always advances the runnable processor with
// the smallest local clock, so cross-processor event ordering is accurate
// to within one scheduling quantum.
package platform

import (
	"fmt"
	"sync"

	"repro/internal/arena"
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/kpn"
	"repro/internal/mem"
	"repro/internal/rtos"
	"repro/internal/trace"
)

// Engine selects the execution engine's access-charging path.
type Engine uint8

// Execution engines. Both produce bit-identical results — statistics,
// per-entity misses, makespan, CPI, energy, bus traffic — which the
// differential tests in internal/platform and internal/experiments
// enforce; EngineWordExact exists as the reference oracle and for
// debugging the fast path.
const (
	// EngineLineMerged (the default) coalesces each task's consecutive
	// same-line accesses through a per-task line register and commits
	// them to the hierarchy in batched calls. Exact by the strict-handoff
	// argument: nothing can touch a core's L1 between two consecutive
	// accesses of the task running on it.
	EngineLineMerged Engine = iota
	// EngineWordExact charges every access individually through the full
	// hierarchy walk, word by word.
	EngineWordExact
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	if e == EngineWordExact {
		return "word"
	}
	return "merged"
}

// ParseEngine resolves the CLI spelling of an engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "merged", "":
		return EngineLineMerged, nil
	case "word":
		return EngineWordExact, nil
	}
	return 0, fmt.Errorf("platform: unknown execution engine %q (want merged or word)", s)
}

// Config describes a tile. The memory system is a declarative
// cache.Topology — a validated tree of cache levels from the CPU-side
// leaves to the shared root — instead of a hard-wired L1+L2 pair; the
// classic two-level tile is cache.TwoLevel, which Default uses.
type Config struct {
	NumCPUs int
	BaseCPI float64
	// Topology is the memory-hierarchy tree (leaf to root). Its resolved
	// partition level is where OS partition tables install, where the
	// profiler taps by default, and whose statistics RunResult.L2
	// reports.
	Topology cache.Topology
	Bus      bus.Config
	Sched    rtos.SchedConfig

	// SwitchTouches is the number of run-time-system data words touched
	// on every task switch (scheduler state, translation tables), which
	// is what makes the rt-data/rt-bss rows of Tables 1 and 2 matter.
	SwitchTouches int

	// Engine selects the execution engine: the exact line-merged fast
	// path (zero value) or the word-granular reference oracle.
	Engine Engine
}

// Default returns the experimental platform of section 5: four
// TriMedia-class processors, 512 KB 4-way L2 with 64 B lines, and private
// 16 KB 4-way L1s — the compatibility two-level topology.
func Default() Config {
	return Config{
		NumCPUs: 4,
		BaseCPI: 1.0,
		Topology: cache.TwoLevel(
			cache.Config{Name: "l1", Sets: 64, Ways: 4, LineSize: 64},
			cache.Config{Name: "l2", Sets: 2048, Ways: 4, LineSize: 64},
			0, 11),
		Bus:   bus.DefaultConfig(),
		Sched: rtos.DefaultSchedConfig(),

		SwitchTouches: 32,
	}
}

// PartitionGeom returns the geometry of the topology's partition level —
// the shared cache the allocator budgets, the profiler taps and the
// partition tables install at.
func (c Config) PartitionGeom() cache.Config {
	return c.Topology.Partition().Config()
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumCPUs <= 0 {
		return fmt.Errorf("platform: %d CPUs", c.NumCPUs)
	}
	if c.BaseCPI <= 0 {
		return fmt.Errorf("platform: base CPI %v", c.BaseCPI)
	}
	if err := c.Topology.Validate(c.NumCPUs); err != nil {
		return err
	}
	if err := c.Bus.Validate(); err != nil {
		return err
	}
	if c.Engine > EngineWordExact {
		return fmt.Errorf("platform: unknown engine %d", c.Engine)
	}
	return c.Sched.Validate()
}

// Platform is one assembled tile.
type Platform struct {
	cfg   Config
	as    *mem.AddressSpace
	cores []*cpu.Core
	tree  *cache.Tree
	bus   *bus.Bus
	hiers []*cache.Hierarchy
	sched *rtos.Scheduler
	arena *arena.Arena

	rtData *mem.Region
	rtBSS  *mem.Region
	rtOff  uint64
}

// arenaPool recycles per-simulation arenas across platform instances:
// a batch sweep assembles thousands of short-lived tiles, and reusing
// each arena's slabs makes the per-simulation state block
// allocation-free in steady state. Release returns a platform's arena
// here; error paths deliberately do not (a killed task goroutine may
// still reference arena memory, so a possibly-referenced arena is left
// to the garbage collector instead of being recycled).
var arenaPool = sync.Pool{New: func() any { return arena.New() }}

// New assembles a tile over an existing address space (the application's
// regions live there). rtData and rtBSS are the run-time system's shared
// sections; they may be nil, disabling OS memory traffic.
//
// The immutable topology descriptor is interned (shared read-only across
// all platforms of the same spec); the per-simulation state — cache line
// state, entity counters, the tasks' line-register files — comes from a
// pooled bump arena that Release recycles.
func New(cfg Config, as *mem.AddressSpace, rtData, rtBSS *mem.Region) (*Platform, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Platform{cfg: cfg, as: as, rtData: rtData, rtBSS: rtBSS}
	p.bus = bus.New(cfg.Bus)
	desc, err := cfg.Topology.Describe(cfg.NumCPUs)
	if err != nil {
		return nil, err
	}
	p.arena = arenaPool.Get().(*arena.Arena)
	tree := desc.Instantiate(p.arena)
	p.tree = tree
	for k := 0; k < tree.NumLevels(); k++ {
		for _, c := range tree.LevelCaches(k) {
			c.PresizeRegions(as.NumRegions(), p.arena)
		}
	}
	// Precompute private-level cacheability per region: the hierarchy
	// consults it on every single access, and resolving region + kind
	// through the address space there is measurable on the hot path.
	// Regions are all allocated before the platform is assembled, so a
	// dense table indexed by region id suffices (ids past the table are
	// conservative bypass, matching the nil-region behavior of the
	// closure it replaces).
	privOK := arena.Make[bool](p.arena, as.NumRegions())
	for _, r := range as.Regions() {
		privOK[r.ID] = !r.Kind.Shared()
	}
	privCacheable := func(id mem.RegionID) bool {
		return id >= 0 && int(id) < len(privOK) && privOK[id]
	}
	for i := 0; i < cfg.NumCPUs; i++ {
		core := cpu.New(cpu.Config{ID: i, Name: fmt.Sprintf("cpu%d", i), BaseCPI: cfg.BaseCPI})
		h := tree.Hierarchy(i, p.bus)
		h.PrivCacheable = privCacheable
		h.RegionOf = as.FindID
		p.cores = append(p.cores, core)
		p.hiers = append(p.hiers, h)
	}
	sched, err := rtos.NewScheduler(cfg.Sched, p.cores)
	if err != nil {
		return nil, err
	}
	p.sched = sched
	return p, nil
}

// Cores returns the tile's processors.
func (p *Platform) Cores() []*cpu.Core { return p.cores }

// Tree returns the instantiated cache topology.
func (p *Platform) Tree() *cache.Tree { return p.tree }

// L2 returns the partition level's shared cache — the cache the OS
// partitions, the profiler taps by default and RunResult.L2 reports
// (named for the classic two-level tile, where it is the L2).
func (p *Platform) L2() *cache.Cache { return p.tree.PartitionCache() }

// L1 returns processor i's leaf cache when the topology's leaf level is
// below the first shared level (private or cluster scope), else nil.
func (p *Platform) L1(i int) *cache.Cache { return p.hiers[i].Leaf() }

// SharedCache resolves a named shared-scope level's cache; the empty
// name selects the partition level.
func (p *Platform) SharedCache(name string) (*cache.Cache, error) {
	return p.tree.SharedCache(name)
}

// Bus returns the interconnect.
func (p *Platform) Bus() *bus.Bus { return p.bus }

// Scheduler returns the run-time system scheduler.
func (p *Platform) Scheduler() *rtos.Scheduler { return p.sched }

// AddressSpace returns the simulated address space.
func (p *Platform) AddressSpace() *mem.AddressSpace { return p.as }

// AddTask registers a task with a static processor assignment and stamps
// it with the configured execution engine (tasks must be added before the
// run starts for the stamp to take effect).
func (p *Platform) AddTask(proc *kpn.Process, cpuIdx int) error {
	proc.WordExact = p.cfg.Engine == EngineWordExact
	proc.MaxLeafSets = p.tree.MaxLeafSets()
	proc.Arena = p.arena
	return p.sched.Add(proc, cpuIdx)
}

// Release returns the platform's arena to the pool for the next
// simulation. Call it only after the run completed successfully and
// every result has been copied out of the platform: the caches' line
// state, entity counters and the tasks' line-register files all live in
// the arena, and the platform must not be used afterwards. Skipping
// Release is always safe (the arena is garbage-collected); core.RunApp
// skips it on error paths, where killed task goroutines may still hold
// arena references.
func (p *Platform) Release() {
	a := p.arena
	if a == nil {
		return
	}
	p.arena = nil
	a.Reset()
	arenaPool.Put(a)
}

// InstallAllocation installs a partition table at the topology's
// partition level (flushing that cache), or reverts to the conventional
// shared cache when a is nil.
func (p *Platform) InstallAllocation(a *rtos.CacheAllocation) {
	pc := p.tree.PartitionCache()
	if a == nil {
		pc.SetPartitionTable(nil)
		return
	}
	pc.SetPartitionTable(a.Table)
}

// RunResult summarizes one application execution.
type RunResult struct {
	Makespan    uint64 // max local time over processors
	TotalInstrs uint64
	L2          cache.Stats
	BusStats    bus.Stats
	CPIs        []float64
	Switches    uint64
}

// CPIMean returns the arithmetic mean of the per-processor CPIs, skipping
// processors that retired no instructions.
func (r RunResult) CPIMean() float64 {
	var sum float64
	n := 0
	for _, c := range r.CPIs {
		if c > 0 {
			sum += c
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Run starts every task and drives the system until all tasks finish.
// maxCycles bounds any single processor's local clock as a runaway guard.
func (p *Platform) Run(maxCycles uint64) (*RunResult, error) {
	for _, t := range p.sched.Tasks() {
		if t.State() == kpn.Created {
			t.Start()
		}
	}
	for !p.sched.AllDone() {
		ci := p.pickCPU()
		if ci < 0 {
			summary := p.blockedSummary()
			p.teardown()
			return nil, fmt.Errorf("platform: deadlock: %s", summary)
		}
		core := p.cores[ci]
		task := p.sched.PickNext(ci)
		p.noteRunWithOSTraffic(task, ci)
		y := task.RunSlice(core, p.hiers[ci], p.cfg.Sched.Quantum)
		p.sched.NoteYield(core)
		if y.Reason == kpn.YieldFailed {
			p.teardown()
			return nil, fmt.Errorf("platform: task %q failed: %w", task.Name, y.Err)
		}
		if core.Now() > maxCycles {
			p.teardown()
			return nil, fmt.Errorf("platform: cpu%d exceeded %d cycles", ci, maxCycles)
		}
	}
	if f := p.sched.AnyFailed(); f != nil {
		return nil, fmt.Errorf("platform: task %q failed: %w", f.Name, f.LastYield().Err)
	}
	return p.result(), nil
}

// pickCPU returns the runnable processor with the smallest local clock,
// or -1 when none is runnable.
func (p *Platform) pickCPU() int {
	best := -1
	for i, core := range p.cores {
		if !p.sched.HasRunnable(i) {
			continue
		}
		if best < 0 || core.Now() < p.cores[best].Now() {
			best = i
		}
	}
	return best
}

// noteRunWithOSTraffic commits the scheduling decision and, when the CPU
// actually switched tasks, models the run-time system touching its
// scheduler state and translation tables in rt-data/rt-bss.
func (p *Platform) noteRunWithOSTraffic(task *kpn.Process, ci int) bool {
	core := p.cores[ci]
	before := p.sched.Switches()
	p.sched.NoteRun(task, ci)
	switched := p.sched.Switches() != before
	if switched && p.cfg.SwitchTouches > 0 {
		h := p.hiers[ci]
		n := uint64(p.cfg.SwitchTouches)
		for i := uint64(0); i < n; i++ {
			if p.rtData != nil {
				if off, ok := rtOffset(p.rtOff+i*4, p.rtData.Size); ok {
					h.AccessAt(trace.Access{Addr: p.rtData.Base + off, Size: 4,
						Op: trace.Read, Region: p.rtData.ID}, core.Now())
				}
			}
			if p.rtBSS != nil && i%2 == 0 {
				if off, ok := rtOffset(p.rtOff+i*8, p.rtBSS.Size); ok {
					h.AccessAt(trace.Access{Addr: p.rtBSS.Base + off, Size: 4,
						Op: trace.Write, Region: p.rtBSS.ID}, core.Now())
				}
			}
		}
		p.rtOff += 64
	}
	return switched
}

// rtOffset folds a rolling cursor into an rt section so a 4-byte word at
// the returned offset stays in bounds. Sections of exactly one word pin
// the cursor to 0 (the naive modulo would divide by zero); sections too
// small for a word skip the access.
func rtOffset(cursor, size uint64) (uint64, bool) {
	if size < 4 {
		return 0, false
	}
	if size == 4 {
		return 0, true
	}
	return cursor % (size - 4), true
}

func (p *Platform) result() *RunResult {
	r := &RunResult{
		L2:       p.tree.PartitionCache().Stats(),
		BusStats: p.bus.Stats(),
		Switches: p.sched.Switches(),
	}
	for _, c := range p.cores {
		if c.Now() > r.Makespan {
			r.Makespan = c.Now()
		}
		r.TotalInstrs += c.Instructions()
		r.CPIs = append(r.CPIs, c.CPI())
	}
	return r
}

// teardown kills remaining task goroutines after an aborted run.
func (p *Platform) teardown() {
	for _, t := range p.sched.Tasks() {
		t.Kill()
	}
}

func (p *Platform) blockedSummary() string {
	s := ""
	for _, t := range p.sched.Tasks() {
		if t.State() == kpn.Blocked {
			on := "?"
			if y := t.LastYield(); y.On != nil {
				on = y.On.Name
			}
			if s != "" {
				s += ", "
			}
			s += fmt.Sprintf("%s on %s", t.Name, on)
		}
	}
	if s == "" {
		return "no blocked tasks"
	}
	return s
}
