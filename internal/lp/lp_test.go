package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestRelString(t *testing.T) {
	if LE.String() != "<=" || EQ.String() != "=" || GE.String() != ">=" {
		t.Error("rel strings wrong")
	}
	if Rel(9).String() != "rel(9)" {
		t.Error("unknown rel string")
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || Status(9).String() != "status(9)" {
		t.Error("status strings wrong")
	}
}

func TestSimpleLE(t *testing.T) {
	// min -x-y  s.t. x+y <= 4, x <= 2  -> x=2,y=2, value -4
	p := &Problem{
		Objective: []float64{-1, -1},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: LE, RHS: 4},
			{Coef: []float64{1, 0}, Rel: LE, RHS: 2},
		},
	}
	s := solve(t, p)
	if s.Status != Optimal || !approx(s.Value, -4) {
		t.Fatalf("solution = %+v", s)
	}
	if !approx(s.X[0], 2) || !approx(s.X[1], 2) {
		t.Errorf("x = %v", s.X)
	}
}

func TestEquality(t *testing.T) {
	// min x+2y s.t. x+y = 3, x <= 1 -> x=1, y=2, value 5
	p := &Problem{
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: EQ, RHS: 3},
			{Coef: []float64{1, 0}, Rel: LE, RHS: 1},
		},
	}
	s := solve(t, p)
	if s.Status != Optimal || !approx(s.Value, 5) {
		t.Fatalf("solution = %+v", s)
	}
}

func TestGE(t *testing.T) {
	// min 2x+3y s.t. x+y >= 4, x >= 1 -> x=4,y=0, value 8
	p := &Problem{
		Objective: []float64{2, 3},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: GE, RHS: 4},
			{Coef: []float64{1, 0}, Rel: GE, RHS: 1},
		},
	}
	s := solve(t, p)
	if s.Status != Optimal || !approx(s.Value, 8) {
		t.Fatalf("solution = %+v", s)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coef: []float64{1}, Rel: LE, RHS: 1},
			{Coef: []float64{1}, Rel: GE, RHS: 2},
		},
	}
	s := solve(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coef: []float64{1}, Rel: GE, RHS: 0},
		},
	}
	s := solve(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3)
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coef: []float64{-1}, Rel: LE, RHS: -3},
		},
	}
	s := solve(t, p)
	if s.Status != Optimal || !approx(s.Value, 3) {
		t.Fatalf("solution = %+v", s)
	}
}

func TestDimensionMismatch(t *testing.T) {
	p := &Problem{
		Objective:   []float64{1, 2},
		Constraints: []Constraint{{Coef: []float64{1}, Rel: LE, RHS: 1}},
	}
	if _, err := p.Solve(); err == nil {
		t.Fatal("dimension mismatch not detected")
	}
}

func TestDegenerate(t *testing.T) {
	// Classic degenerate LP; Bland's rule must terminate.
	p := &Problem{
		Objective: []float64{-0.75, 150, -0.02, 6},
		Constraints: []Constraint{
			{Coef: []float64{0.25, -60, -0.04, 9}, Rel: LE, RHS: 0},
			{Coef: []float64{0.5, -90, -0.02, 3}, Rel: LE, RHS: 0},
			{Coef: []float64{0, 0, 1, 0}, Rel: LE, RHS: 1},
		},
	}
	s := solve(t, p)
	if s.Status != Optimal || !approx(s.Value, -0.05) {
		t.Fatalf("solution = %+v, want value -0.05", s)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// x+y=2 stated twice: phase 1 must cope with the redundant row.
	p := &Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: EQ, RHS: 2},
			{Coef: []float64{2, 2}, Rel: EQ, RHS: 4},
		},
	}
	s := solve(t, p)
	if s.Status != Optimal || !approx(s.Value, 2) {
		t.Fatalf("solution = %+v", s)
	}
}

func TestMCKPRelaxationShape(t *testing.T) {
	// Tiny instance of the paper's program: 2 entities, sizes {1,2} with
	// misses {10,4} and {8,2}, capacity 3.
	// Vars: x11 x12 x21 x22. Expect the integral optimum (x12=1, x21=1 ->
	// 4+8=12 or x11=1,x22=1 -> 10+2=12): LP value <= 12.
	p := &Problem{
		Objective: []float64{10, 4, 8, 2},
		Constraints: []Constraint{
			{Coef: []float64{1, 1, 0, 0}, Rel: EQ, RHS: 1},
			{Coef: []float64{0, 0, 1, 1}, Rel: EQ, RHS: 1},
			{Coef: []float64{1, 2, 1, 2}, Rel: LE, RHS: 3},
			{Coef: []float64{1, 0, 0, 0}, Rel: LE, RHS: 1},
			{Coef: []float64{0, 1, 0, 0}, Rel: LE, RHS: 1},
			{Coef: []float64{0, 0, 1, 0}, Rel: LE, RHS: 1},
			{Coef: []float64{0, 0, 0, 1}, Rel: LE, RHS: 1},
		},
	}
	s := solve(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if s.Value > 12+1e-6 {
		t.Errorf("LP bound %v exceeds integral optimum 12", s.Value)
	}
}

// Property: simplex optimum matches brute-force vertex enumeration on
// random small bounded LPs (2 vars, box-bounded).
func TestMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}
		// Constraints: x <= bx, y <= by, a1 x + a2 y <= r (all coeffs > 0
		// so the region is bounded and nonempty).
		bx, by := rng.Float64()*5+0.5, rng.Float64()*5+0.5
		a1, a2 := rng.Float64()+0.1, rng.Float64()+0.1
		r := rng.Float64()*6 + 0.5
		p := &Problem{
			Objective: c,
			Constraints: []Constraint{
				{Coef: []float64{1, 0}, Rel: LE, RHS: bx},
				{Coef: []float64{0, 1}, Rel: LE, RHS: by},
				{Coef: []float64{a1, a2}, Rel: LE, RHS: r},
			},
		}
		s, err := p.Solve()
		if err != nil || s.Status != Optimal {
			return false
		}
		// Brute force over a fine grid (coarse lower bound check).
		best := math.Inf(1)
		const steps = 60
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				x := bx * float64(i) / steps
				y := by * float64(j) / steps
				if a1*x+a2*y <= r+1e-12 {
					if v := c[0]*x + c[1]*y; v < best {
						best = v
					}
				}
			}
		}
		// Simplex must be at least as good as any grid point.
		return s.Value <= best+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the solution returned always satisfies every constraint.
func TestSolutionFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4) + 2
		m := rng.Intn(4) + 1
		p := &Problem{Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.Float64() * 3 // nonneg: bounded below
		}
		for i := 0; i < m; i++ {
			c := Constraint{Coef: make([]float64, n), Rel: GE, RHS: rng.Float64() * 4}
			for j := range c.Coef {
				c.Coef[j] = rng.Float64() + 0.05
			}
			p.Constraints = append(p.Constraints, c)
		}
		s, err := p.Solve()
		if err != nil {
			return false
		}
		if s.Status != Optimal {
			return false // these instances are always feasible & bounded
		}
		for _, c := range p.Constraints {
			lhs := 0.0
			for j := range c.Coef {
				lhs += c.Coef[j] * s.X[j]
			}
			if lhs < c.RHS-1e-6 {
				return false
			}
		}
		for _, x := range s.X {
			if x < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
