// Package lp is a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    c·x
//	subject to  A x (≤ | = | ≥) b,   x ≥ 0
//
// It is the LP-relaxation engine beneath the branch-and-bound ILP solver
// (internal/ilp) used to solve the paper's cache-partitioning program
// exactly. Bland's rule is used for anti-cycling; the implementation is
// dense, which is ample for the few-hundred-variable programs of the
// reproduction.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Rel is a constraint relation.
type Rel uint8

// Constraint relations.
const (
	LE Rel = iota // ≤
	EQ            // =
	GE            // ≥
)

// String implements fmt.Stringer.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case EQ:
		return "="
	case GE:
		return ">="
	}
	return fmt.Sprintf("rel(%d)", uint8(r))
}

// Constraint is one row: Coef·x Rel RHS.
type Constraint struct {
	Coef []float64
	Rel  Rel
	RHS  float64
}

// Problem is a minimization LP over n nonnegative variables.
type Problem struct {
	Objective   []float64 // length n
	Constraints []Constraint
}

// Status describes the solver outcome.
type Status uint8

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Solution is an optimal point.
type Solution struct {
	Status Status
	X      []float64
	Value  float64
}

// Errors returned by Solve.
var (
	ErrDimension = errors.New("lp: constraint dimension mismatch")
	ErrIteration = errors.New("lp: iteration limit exceeded")
)

const eps = 1e-9

// Solve runs two-phase simplex and returns the solution. Status is
// Infeasible or Unbounded when no optimum exists (X is nil then).
func (p *Problem) Solve() (*Solution, error) {
	n := len(p.Objective)
	for i, c := range p.Constraints {
		if len(c.Coef) != n {
			return nil, fmt.Errorf("%w: row %d has %d coefficients, want %d",
				ErrDimension, i, len(c.Coef), n)
		}
	}
	t := newTableau(p)
	// Phase 1: drive artificial variables out.
	if t.numArtificial > 0 {
		t.setPhase1Objective()
		if err := t.iterate(); err != nil {
			return nil, err
		}
		if t.objectiveValue() > eps {
			return &Solution{Status: Infeasible}, nil
		}
		if err := t.dropArtificials(); err != nil {
			return nil, err
		}
	}
	// Phase 2: the real objective.
	t.setPhase2Objective(p.Objective)
	switch err := t.iterate(); {
	case errors.Is(err, errUnbounded):
		return &Solution{Status: Unbounded}, nil
	case err != nil:
		return nil, err
	}
	x := t.extract(n)
	val := 0.0
	for j, c := range p.Objective {
		val += c * x[j]
	}
	return &Solution{Status: Optimal, X: x, Value: val}, nil
}

var errUnbounded = errors.New("lp: unbounded")

// tableau holds the simplex state. Columns: n structural, then slack /
// surplus, then artificial, then RHS. Row 0 is the objective (stored as
// reduced costs, minimization).
type tableau struct {
	m, n          int // constraints, structural variables
	cols          int // total variable columns (excl. RHS)
	numArtificial int
	artStart      int
	a             [][]float64 // (m+1) x (cols+1); row 0 = objective
	basis         []int       // basic variable per row 1..m
	phase1        bool
}

func newTableau(p *Problem) *tableau {
	m, n := len(p.Constraints), len(p.Objective)
	slacks := 0
	arts := 0
	for _, c := range p.Constraints {
		rhs := c.RHS
		rel := c.Rel
		if rhs < 0 {
			rel = flip(rel)
		}
		switch rel {
		case LE:
			slacks++
		case GE:
			slacks++
			arts++
		case EQ:
			arts++
		}
	}
	t := &tableau{
		m: m, n: n,
		cols:          n + slacks + arts,
		numArtificial: arts,
		artStart:      n + slacks,
		basis:         make([]int, m),
	}
	t.a = make([][]float64, m+1)
	for i := range t.a {
		t.a[i] = make([]float64, t.cols+1)
	}
	si, ai := n, t.artStart
	for i, c := range p.Constraints {
		row := t.a[i+1]
		sign := 1.0
		rel := c.Rel
		if c.RHS < 0 {
			sign = -1
			rel = flip(rel)
		}
		for j, v := range c.Coef {
			row[j] = sign * v
		}
		row[t.cols] = sign * c.RHS
		switch rel {
		case LE:
			row[si] = 1
			t.basis[i] = si
			si++
		case GE:
			row[si] = -1
			si++
			row[ai] = 1
			t.basis[i] = ai
			ai++
		case EQ:
			row[ai] = 1
			t.basis[i] = ai
			ai++
		}
	}
	return t
}

func flip(r Rel) Rel {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	}
	return EQ
}

// setPhase1Objective sets row 0 to minimize the sum of artificials,
// expressed in terms of the nonbasic variables.
func (t *tableau) setPhase1Objective() {
	t.phase1 = true
	obj := t.a[0]
	for j := range obj {
		obj[j] = 0
	}
	for j := t.artStart; j < t.artStart+t.numArtificial; j++ {
		obj[j] = 1
	}
	// Price out basic artificials.
	for i, b := range t.basis {
		if b >= t.artStart {
			row := t.a[i+1]
			for j := 0; j <= t.cols; j++ {
				obj[j] -= row[j]
			}
		}
	}
}

// setPhase2Objective installs the real objective priced out over the
// current basis.
func (t *tableau) setPhase2Objective(c []float64) {
	t.phase1 = false
	obj := t.a[0]
	for j := range obj {
		obj[j] = 0
	}
	copy(obj, c)
	for i, b := range t.basis {
		if b < len(c) && c[b] != 0 {
			row := t.a[i+1]
			cb := c[b]
			for j := 0; j <= t.cols; j++ {
				obj[j] -= cb * row[j]
			}
		}
	}
}

// objectiveValue returns the current objective (min sense).
func (t *tableau) objectiveValue() float64 { return -t.a[0][t.cols] }

// iterate performs simplex pivots until optimal or unbounded.
func (t *tableau) iterate() error {
	limit := 200 * (t.m + t.cols + 10)
	for iter := 0; iter < limit; iter++ {
		// Entering: Bland's rule (lowest index with negative reduced cost).
		enter := -1
		for j := 0; j < t.cols; j++ {
			if t.phase1 == false && j >= t.artStart && j < t.artStart+t.numArtificial {
				continue // artificials are barred in phase 2
			}
			if t.a[0][j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil // optimal
		}
		// Leaving: min ratio, ties by lowest basis index (Bland).
		leave := -1
		best := math.Inf(1)
		for i := 1; i <= t.m; i++ {
			col := t.a[i][enter]
			if col > eps {
				ratio := t.a[i][t.cols] / col
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || t.basis[i-1] < t.basis[leave-1])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return errUnbounded
		}
		t.pivot(leave, enter)
	}
	return ErrIteration
}

func (t *tableau) pivot(row, col int) {
	pr := t.a[row]
	pv := pr[col]
	for j := 0; j <= t.cols; j++ {
		pr[j] /= pv
	}
	for i := 0; i <= t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := 0; j <= t.cols; j++ {
			ri[j] -= f * pr[j]
		}
	}
	t.basis[row-1] = col
}

// dropArtificials pivots any artificial variable out of the basis after a
// feasible phase 1, so phase 2 never reintroduces them.
func (t *tableau) dropArtificials() error {
	for i := 1; i <= t.m; i++ {
		if t.basis[i-1] < t.artStart {
			continue
		}
		// Degenerate basic artificial (value 0): pivot in any real
		// column with a nonzero entry, else the row is redundant.
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: zero it (keeps indices stable).
			for j := 0; j <= t.cols; j++ {
				t.a[i][j] = 0
			}
		}
	}
	return nil
}

// extract reads the first n variable values off the basis.
func (t *tableau) extract(n int) []float64 {
	x := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			x[b] = t.a[i+1][t.cols]
			if x[b] < 0 && x[b] > -eps {
				x[b] = 0
			}
		}
	}
	return x
}
