package mem

import (
	"errors"
	"testing"
)

// TestAllocAt covers the exact-placement allocator trace replay rebuilds
// address spaces with: regions land at their recorded bases (gaps
// allowed), IDs stay dense in call order, and the bump pointer advances
// so later Allocs never overlap a placed region.
func TestAllocAt(t *testing.T) {
	as := NewAddressSpace()
	r1, err := as.AllocAt("t0.code", KindCode, "t0", 0x1000, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Base != 0x1000 || r1.Size != 4096 || r1.ID != 0 {
		t.Fatalf("bad placed region: %+v", r1)
	}
	// A gap before the next base is fine: recorded layouts may skip
	// alignment padding the original allocator inserted.
	r2, err := as.AllocAt("t0.heap", KindHeap, "t0", 0x10000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Base != 0x10000 || r2.ID != 1 {
		t.Fatalf("bad gapped region: %+v", r2)
	}
	// The bump pointer followed: a regular Alloc lands past the gap.
	r3 := as.MustAlloc("shared", KindData, "", 128)
	if r3.Base < 0x10000+64 {
		t.Fatalf("Alloc after AllocAt overlaps placed space: %+v", r3)
	}
}

func TestAllocAtRejectsOverlap(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.AllocAt("a", KindData, "", 0x2000, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := as.AllocAt("b", KindData, "", 0x2800, 64); err == nil {
		t.Error("base inside an allocated region must be rejected")
	}
	if _, err := as.AllocAt("c", KindData, "", 0x800, 64); err == nil {
		t.Error("base below the reserved first page must be rejected")
	}
}

func TestAllocAtLimits(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.AllocAt("z", KindData, "", 0x1000, 0); !errors.Is(err, ErrZeroSize) {
		t.Errorf("want ErrZeroSize, got %v", err)
	}
	if _, err := as.AllocAt("big", KindData, "", (1<<32)-64, 128); !errors.Is(err, ErrExhausted) {
		t.Errorf("past the 4 GiB limit: want ErrExhausted, got %v", err)
	}
	if _, err := as.AllocAt("wrap", KindData, "", ^uint64(0)-10, 100); !errors.Is(err, ErrExhausted) {
		t.Errorf("base+size wraparound: want ErrExhausted, got %v", err)
	}
}
