// Package mem models the simulated linear address space of a CAKE tile.
//
// Every memory-active entity of an application — task code, task stack,
// task heap, the shared data/bss sections, the run-time system sections,
// inter-task FIFO buffers and frame buffers — is allocated a named Region
// of the address space. Regions carry backing storage so that the
// workloads in internal/apps compute on real bytes, and a region id so
// that the partitionable L2 cache in internal/cache can translate the
// index bits of each access according to the owning entity (the interval
// table scheme of Molnos et al., DATE 2005, section 4.2).
package mem

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/arena"
)

// Kind classifies a region by the role it plays in the application,
// mirroring the entity classes of the paper: task-private sections,
// shared static sections, and communication buffers.
type Kind uint8

// Region kinds. Code, Stack and Heap are private to one task; Data, BSS,
// RTData and RTBSS are shared static sections; FIFO and Frame are the
// inter-task communication buffers that receive their own exclusive
// cache partitions.
const (
	KindCode Kind = iota
	KindData
	KindBSS
	KindStack
	KindHeap
	KindFIFO
	KindFrame
	KindRTData
	KindRTBSS
	kindCount
)

var kindNames = [...]string{
	KindCode:   "code",
	KindData:   "data",
	KindBSS:    "bss",
	KindStack:  "stack",
	KindHeap:   "heap",
	KindFIFO:   "fifo",
	KindFrame:  "frame",
	KindRTData: "rt-data",
	KindRTBSS:  "rt-bss",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Shared reports whether regions of this kind are accessed by more than
// one task and therefore need their own exclusive cache partition for the
// system to be compositional (paper, section 3).
func (k Kind) Shared() bool {
	switch k {
	case KindData, KindBSS, KindFIFO, KindFrame, KindRTData, KindRTBSS:
		return true
	}
	return false
}

// RegionID identifies a region within one AddressSpace. IDs are dense,
// starting at 0, so they index slices in the cache statistics.
type RegionID int32

// NoRegion is returned by lookups for addresses outside every region.
const NoRegion RegionID = -1

// Region is a contiguous, named range of the simulated address space.
type Region struct {
	ID    RegionID
	Name  string
	Kind  Kind
	Owner string // task name for private regions, "" for shared ones
	Base  uint64
	Size  uint64

	data  []byte        // backing storage, allocated lazily
	space *AddressSpace // owning space; its arena provides the backing
}

// End returns the first address past the region.
func (r *Region) End() uint64 { return r.Base + r.Size }

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+r.Size
}

// String implements fmt.Stringer.
func (r *Region) String() string {
	return fmt.Sprintf("%s[%s %#x+%#x]", r.Name, r.Kind, r.Base, r.Size)
}

func (r *Region) backing() []byte {
	if r.data == nil {
		if r.space != nil {
			// One bump allocation from the space's arena instead of an
			// individual heap object per ring/stack/heap: the address
			// space is itself per-simulation state, so its regions'
			// backing shares the simulation's lifetime. First touch is
			// serialized by the engine's strict handoff (or happens
			// during single-threaded workload construction).
			r.data = arena.Make[byte](r.space.bytes, int(r.Size))
		} else {
			r.data = make([]byte, r.Size)
		}
	}
	return r.data
}

// Errors returned by AddressSpace and Region operations.
var (
	ErrOutOfRange = errors.New("mem: access outside region bounds")
	ErrZeroSize   = errors.New("mem: zero-sized region")
	ErrExhausted  = errors.New("mem: address space exhausted")
)

// Load8 reads one byte at the given offset into the region.
func (r *Region) Load8(off uint64) (byte, error) {
	if off >= r.Size {
		return 0, fmt.Errorf("%w: %s off=%#x", ErrOutOfRange, r.Name, off)
	}
	return r.backing()[off], nil
}

// Store8 writes one byte at the given offset into the region.
func (r *Region) Store8(off uint64, v byte) error {
	if off >= r.Size {
		return fmt.Errorf("%w: %s off=%#x", ErrOutOfRange, r.Name, off)
	}
	r.backing()[off] = v
	return nil
}

// Load32 reads a little-endian 32-bit word at the given offset.
func (r *Region) Load32(off uint64) (uint32, error) {
	if off+4 > r.Size {
		return 0, fmt.Errorf("%w: %s off=%#x", ErrOutOfRange, r.Name, off)
	}
	b := r.backing()[off : off+4]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// Store32 writes a little-endian 32-bit word at the given offset.
func (r *Region) Store32(off uint64, v uint32) error {
	if off+4 > r.Size {
		return fmt.Errorf("%w: %s off=%#x", ErrOutOfRange, r.Name, off)
	}
	b := r.backing()[off : off+4]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	return nil
}

// Bytes exposes the backing storage of the region. The returned slice
// aliases the region contents; it is intended for bulk initialization and
// verification in tests and workload generators, not for modelling
// accesses (which must go through a platform context so they are traced).
func (r *Region) Bytes() []byte { return r.backing() }

// AddressSpace is an append-only allocator of non-overlapping regions in
// one linear address range, as seen by the shared L2 cache of a tile.
type AddressSpace struct {
	regions []*Region
	next    uint64
	align   uint64
	limit   uint64
	bytes   *arena.Arena // backing storage for all regions
}

// DefaultAlign is the region alignment used by NewAddressSpace: one
// typical L2 line, so distinct regions never share a cache line.
const DefaultAlign = 64

// NewAddressSpace returns an empty address space starting at a non-zero
// base (so that address 0 is never valid) with DefaultAlign alignment and
// a 4 GiB limit, matching the 32-bit linear addressing of the CAKE tile.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{next: 0x1000, align: DefaultAlign, limit: 1 << 32, bytes: arena.New()}
}

// SetAlign changes the region alignment. It must be called before any
// allocation and align must be a power of two.
func (as *AddressSpace) SetAlign(align uint64) {
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d is not a power of two", align))
	}
	if len(as.regions) > 0 {
		panic("mem: SetAlign after allocation")
	}
	as.align = align
}

// BuddyAlignCap caps the power-of-two alignment of large regions at the
// way size of the default L2 (2048 sets × 64 B): regions of at least this
// size cover every cache set anyway.
const BuddyAlignCap = 128 * 1024

// Alloc carves a new region of the given size out of the address space.
// The owner is the task name for private regions and "" for shared ones.
//
// Like the buddy allocators and loaders of real embedded systems, regions
// are aligned to their size rounded up to a power of two (capped at
// BuddyAlignCap). This is what makes the conventional shared cache
// non-compositional in exactly the paper's sense: independently allocated
// buffers and tables land on overlapping set ranges "depending on their
// addresses", flushing each other in ways no task can predict. The
// partitioning scheme removes the dependence by re-indexing per entity.
func (as *AddressSpace) Alloc(name string, kind Kind, owner string, size uint64) (*Region, error) {
	if size == 0 {
		return nil, fmt.Errorf("%w: %q", ErrZeroSize, name)
	}
	align := as.align
	for align < size && align < BuddyAlignCap {
		align <<= 1
	}
	base := (as.next + align - 1) &^ (align - 1)
	if base+size < base || base+size > as.limit {
		return nil, fmt.Errorf("%w: allocating %q (%d bytes)", ErrExhausted, name, size)
	}
	r := &Region{
		ID:    RegionID(len(as.regions)),
		Name:  name,
		Kind:  kind,
		Owner: owner,
		Base:  base,
		Size:  size,
		space: as,
	}
	as.regions = append(as.regions, r)
	as.next = base + size
	return r, nil
}

// AllocAt places a region at an explicit base address instead of
// deriving one from the buddy policy. This is the reconstruction path
// of trace replay and trace import: a recorded address space must be
// rebuilt with the exact bases (and therefore the exact cache-index
// behavior) it had when captured, even when the recording came from
// another system that laid regions out differently. Regions must still
// be appended in increasing address order, must not overlap, and must
// respect the space's limit; ids stay dense allocation-order indices.
func (as *AddressSpace) AllocAt(name string, kind Kind, owner string, base, size uint64) (*Region, error) {
	if size == 0 {
		return nil, fmt.Errorf("%w: %q", ErrZeroSize, name)
	}
	if base < as.next {
		return nil, fmt.Errorf("mem: AllocAt %q at %#x overlaps allocated space (next free %#x)", name, base, as.next)
	}
	if base+size < base || base+size > as.limit {
		return nil, fmt.Errorf("%w: allocating %q (%d bytes at %#x)", ErrExhausted, name, size, base)
	}
	r := &Region{
		ID:    RegionID(len(as.regions)),
		Name:  name,
		Kind:  kind,
		Owner: owner,
		Base:  base,
		Size:  size,
		space: as,
	}
	as.regions = append(as.regions, r)
	as.next = base + size
	return r, nil
}

// MustAlloc is Alloc that panics on error; it is used during application
// construction where allocation failure is a programming error.
func (as *AddressSpace) MustAlloc(name string, kind Kind, owner string, size uint64) *Region {
	r, err := as.Alloc(name, kind, owner, size)
	if err != nil {
		panic(err)
	}
	return r
}

// Regions returns all regions in allocation (and therefore address) order.
// The returned slice must not be modified.
func (as *AddressSpace) Regions() []*Region { return as.regions }

// NumRegions returns the number of allocated regions.
func (as *AddressSpace) NumRegions() int { return len(as.regions) }

// Region returns the region with the given id, or nil if out of range.
func (as *AddressSpace) Region(id RegionID) *Region {
	if id < 0 || int(id) >= len(as.regions) {
		return nil
	}
	return as.regions[id]
}

// ByName returns the first region with the given name, or nil.
func (as *AddressSpace) ByName(name string) *Region {
	for _, r := range as.regions {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Find returns the region containing addr, or nil. Regions are allocated
// in increasing address order, so a binary search suffices.
func (as *AddressSpace) Find(addr uint64) *Region {
	i := sort.Search(len(as.regions), func(i int) bool {
		return as.regions[i].End() > addr
	})
	if i < len(as.regions) && as.regions[i].Contains(addr) {
		return as.regions[i]
	}
	return nil
}

// FindID returns the id of the region containing addr, or NoRegion.
func (as *AddressSpace) FindID(addr uint64) RegionID {
	if r := as.Find(addr); r != nil {
		return r.ID
	}
	return NoRegion
}

// TotalAllocated returns the sum of all region sizes in bytes.
func (as *AddressSpace) TotalAllocated() uint64 {
	var t uint64
	for _, r := range as.regions {
		t += r.Size
	}
	return t
}
