package mem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindCode:   "code",
		KindData:   "data",
		KindBSS:    "bss",
		KindStack:  "stack",
		KindHeap:   "heap",
		KindFIFO:   "fifo",
		KindFrame:  "frame",
		KindRTData: "rt-data",
		KindRTBSS:  "rt-bss",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestKindShared(t *testing.T) {
	shared := []Kind{KindData, KindBSS, KindFIFO, KindFrame, KindRTData, KindRTBSS}
	private := []Kind{KindCode, KindStack, KindHeap}
	for _, k := range shared {
		if !k.Shared() {
			t.Errorf("%v.Shared() = false, want true", k)
		}
	}
	for _, k := range private {
		if k.Shared() {
			t.Errorf("%v.Shared() = true, want false", k)
		}
	}
}

func TestAllocBasics(t *testing.T) {
	as := NewAddressSpace()
	r1 := as.MustAlloc("t0.code", KindCode, "t0", 4096)
	r2 := as.MustAlloc("t0.stack", KindStack, "t0", 8192)

	if r1.ID != 0 || r2.ID != 1 {
		t.Fatalf("ids = %d,%d, want 0,1", r1.ID, r2.ID)
	}
	if r1.Base == 0 {
		t.Error("region base must not be zero")
	}
	if r1.End() > r2.Base {
		t.Errorf("regions overlap: r1 ends %#x, r2 starts %#x", r1.End(), r2.Base)
	}
	if r1.Base%DefaultAlign != 0 || r2.Base%DefaultAlign != 0 {
		t.Errorf("bases not aligned: %#x %#x", r1.Base, r2.Base)
	}
	if as.NumRegions() != 2 {
		t.Errorf("NumRegions = %d, want 2", as.NumRegions())
	}
	if as.TotalAllocated() != 4096+8192 {
		t.Errorf("TotalAllocated = %d", as.TotalAllocated())
	}
}

func TestAllocZeroSize(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.Alloc("x", KindData, "", 0); !errors.Is(err, ErrZeroSize) {
		t.Fatalf("zero alloc err = %v, want ErrZeroSize", err)
	}
}

func TestAllocExhausted(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.Alloc("big", KindData, "", 1<<33); !errors.Is(err, ErrExhausted) {
		t.Fatalf("huge alloc err = %v, want ErrExhausted", err)
	}
	// Almost all of the space, then one more that cannot fit.
	if _, err := as.Alloc("most", KindData, "", (1<<32)-1<<20); err != nil {
		t.Fatalf("large alloc failed: %v", err)
	}
	if _, err := as.Alloc("more", KindData, "", 2<<20); !errors.Is(err, ErrExhausted) {
		t.Fatalf("overflow alloc err = %v, want ErrExhausted", err)
	}
}

func TestMustAllocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAlloc did not panic on error")
		}
	}()
	as := NewAddressSpace()
	as.MustAlloc("x", KindData, "", 0)
}

func TestSetAlign(t *testing.T) {
	as := NewAddressSpace()
	as.SetAlign(4096)
	r := as.MustAlloc("a", KindCode, "t", 100)
	if r.Base%4096 != 0 {
		t.Errorf("base %#x not 4096-aligned", r.Base)
	}
}

func TestSetAlignPanics(t *testing.T) {
	t.Run("non-power-of-two", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic for non-power-of-two alignment")
			}
		}()
		NewAddressSpace().SetAlign(3)
	})
	t.Run("after-alloc", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic for SetAlign after allocation")
			}
		}()
		as := NewAddressSpace()
		as.MustAlloc("a", KindCode, "t", 64)
		as.SetAlign(128)
	})
}

func TestFind(t *testing.T) {
	as := NewAddressSpace()
	var regs []*Region
	for i := 0; i < 20; i++ {
		regs = append(regs, as.MustAlloc("r", KindData, "", uint64(64*(i+1))))
	}
	for _, r := range regs {
		if got := as.Find(r.Base); got != r {
			t.Errorf("Find(base %#x) = %v, want %v", r.Base, got, r)
		}
		if got := as.Find(r.End() - 1); got != r {
			t.Errorf("Find(end-1 %#x) = %v, want %v", r.End()-1, got, r)
		}
	}
	if as.Find(0) != nil {
		t.Error("Find(0) should be nil")
	}
	if as.Find(1<<40) != nil {
		t.Error("Find(huge) should be nil")
	}
	if as.FindID(regs[3].Base+1) != regs[3].ID {
		t.Error("FindID mismatch")
	}
	if as.FindID(0) != NoRegion {
		t.Error("FindID(0) should be NoRegion")
	}
}

func TestRegionLookupAccessors(t *testing.T) {
	as := NewAddressSpace()
	r := as.MustAlloc("only", KindFIFO, "", 256)
	if as.Region(r.ID) != r {
		t.Error("Region(id) mismatch")
	}
	if as.Region(-1) != nil || as.Region(99) != nil {
		t.Error("Region out-of-range should be nil")
	}
	if as.ByName("only") != r {
		t.Error("ByName mismatch")
	}
	if as.ByName("absent") != nil {
		t.Error("ByName(absent) should be nil")
	}
}

func TestLoadStore(t *testing.T) {
	as := NewAddressSpace()
	r := as.MustAlloc("d", KindData, "", 64)

	if err := r.Store8(10, 0xAB); err != nil {
		t.Fatal(err)
	}
	if v, err := r.Load8(10); err != nil || v != 0xAB {
		t.Fatalf("Load8 = %#x, %v", v, err)
	}
	if err := r.Store32(20, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	if v, err := r.Load32(20); err != nil || v != 0xDEADBEEF {
		t.Fatalf("Load32 = %#x, %v", v, err)
	}
	// Little-endian layout.
	if b, _ := r.Load8(20); b != 0xEF {
		t.Errorf("byte 0 of stored word = %#x, want 0xEF", b)
	}

	if _, err := r.Load8(64); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Load8 OOB err = %v", err)
	}
	if err := r.Store8(64, 1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Store8 OOB err = %v", err)
	}
	if _, err := r.Load32(61); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Load32 straddling end err = %v", err)
	}
	if err := r.Store32(61, 1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Store32 straddling end err = %v", err)
	}
}

func TestBytesAliasesBacking(t *testing.T) {
	as := NewAddressSpace()
	r := as.MustAlloc("d", KindData, "", 16)
	r.Bytes()[3] = 7
	if v, _ := r.Load8(3); v != 7 {
		t.Errorf("Bytes() does not alias backing store: got %d", v)
	}
}

func TestRegionString(t *testing.T) {
	as := NewAddressSpace()
	r := as.MustAlloc("t1.code", KindCode, "t1", 128)
	s := r.String()
	if s == "" || s[0] != 't' {
		t.Errorf("String() = %q", s)
	}
}

// Property: no two regions ever overlap and Find is exact, for random
// allocation sequences.
func TestAllocNoOverlapProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		as := NewAddressSpace()
		count := int(n%32) + 1
		for i := 0; i < count; i++ {
			size := uint64(rng.Intn(1<<16) + 1)
			if _, err := as.Alloc("r", Kind(rng.Intn(int(kindCount))), "", size); err != nil {
				return false
			}
		}
		regs := as.Regions()
		for i := 1; i < len(regs); i++ {
			if regs[i-1].End() > regs[i].Base {
				return false
			}
		}
		// Random probes resolve to the right region.
		for i := 0; i < 100; i++ {
			ri := regs[rng.Intn(len(regs))]
			off := uint64(rng.Int63n(int64(ri.Size)))
			if as.Find(ri.Base+off) != ri {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Load32 after Store32 round-trips at any legal offset.
func TestLoadStoreRoundTripProperty(t *testing.T) {
	as := NewAddressSpace()
	r := as.MustAlloc("d", KindData, "", 4096)
	f := func(off uint16, v uint32) bool {
		o := uint64(off) % (4096 - 4)
		if err := r.Store32(o, v); err != nil {
			return false
		}
		got, err := r.Load32(o)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
