package store

import (
	"errors"
	"testing"
	"time"
)

// flaky is a scripted inner store: each operation consumes the next
// error from its queue (nil = succeed against the backing memory).
type flaky struct {
	*Memory
	script []error // consumed front-first by every Get/Put/Delete
}

func (f *flaky) next() error {
	if len(f.script) == 0 {
		return nil
	}
	err := f.script[0]
	f.script = f.script[1:]
	return err
}

func (f *flaky) Get(key string) ([]byte, error) {
	if err := f.next(); err != nil {
		return nil, err
	}
	return f.Memory.Get(key)
}

func (f *flaky) Put(key string, val []byte) error {
	if err := f.next(); err != nil {
		return err
	}
	return f.Memory.Put(key, val)
}

func (f *flaky) Delete(key string) error {
	if err := f.next(); err != nil {
		return err
	}
	return f.Memory.Delete(key)
}

var errIO = errors.New("transient i/o error")

// fastOpts keeps test retries quick.
func fastOpts() ResilientOptions {
	return ResilientOptions{Attempts: 3, Backoff: time.Microsecond, TripAfter: 3}
}

// TestResilientRetriesTransientErrors checks an operation that fails
// then succeeds within the attempt budget reports success, counts its
// retries, and leaves the breaker untouched.
func TestResilientRetriesTransientErrors(t *testing.T) {
	inner := &flaky{Memory: NewMemory(0), script: []error{errIO, errIO, nil}}
	r := NewResilient(inner, fastOpts())
	if err := r.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put failed despite a successful third attempt: %v", err)
	}
	if got, err := r.Get("k"); err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if r.Mode() != "disk" {
		t.Errorf("Mode = %q, want disk", r.Mode())
	}
	if st := r.Stats(); st.Retries != 2 {
		t.Errorf("Retries = %d, want 2", st.Retries)
	}
}

// TestResilientNotFoundIsNotRetried checks ErrNotFound returns
// immediately — it is a lookup result, not a medium failure.
func TestResilientNotFoundIsNotRetried(t *testing.T) {
	inner := &flaky{Memory: NewMemory(0)}
	r := NewResilient(inner, fastOpts())
	if _, err := r.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get = %v, want ErrNotFound", err)
	}
	if st := r.Stats(); st.Retries != 0 {
		t.Errorf("a miss must not be retried, Retries = %d", st.Retries)
	}
	if r.Degraded() {
		t.Error("a miss must not feed the breaker")
	}
}

// TestResilientTripsToDegraded checks TripAfter consecutive post-retry
// failures trip the breaker permanently: later operations short-circuit
// with ErrDegraded without touching the medium.
func TestResilientTripsToDegraded(t *testing.T) {
	// Every attempt of every operation fails: 3 ops × 3 attempts.
	script := make([]error, 9)
	for i := range script {
		script[i] = errIO
	}
	inner := &flaky{Memory: NewMemory(0), script: script}
	r := NewResilient(inner, fastOpts())

	for i := 0; i < 3; i++ {
		if err := r.Put("k", []byte("v")); !errors.Is(err, errIO) {
			t.Fatalf("op %d = %v, want the inner error", i, err)
		}
	}
	if !r.Degraded() || r.Mode() != "degraded" {
		t.Fatalf("breaker did not trip: degraded=%v mode=%q", r.Degraded(), r.Mode())
	}
	// The script is exhausted; a post-trip operation reaching the medium
	// would now succeed — so ErrDegraded proves the short-circuit.
	if err := r.Put("k", []byte("v")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("post-trip Put = %v, want ErrDegraded", err)
	}
	if _, err := r.Get("k"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("post-trip Get = %v, want ErrDegraded", err)
	}
	if r.Len() != 0 {
		t.Errorf("degraded Len = %d, want 0", r.Len())
	}
}

// TestResilientSuccessResetsBreaker checks the trip counter requires
// *consecutive* failures: a success in between starts the count over.
func TestResilientSuccessResetsBreaker(t *testing.T) {
	// Two fully-failed ops (3 attempts each), one success, two more
	// fully-failed ops: never 3 consecutive, so never degraded.
	var script []error
	for i := 0; i < 6; i++ {
		script = append(script, errIO)
	}
	script = append(script, nil)
	for i := 0; i < 6; i++ {
		script = append(script, errIO)
	}
	inner := &flaky{Memory: NewMemory(0), script: script}
	r := NewResilient(inner, fastOpts())

	r.Put("k", []byte("v"))
	r.Put("k", []byte("v"))
	if err := r.Put("k", []byte("v")); err != nil {
		t.Fatalf("the successful op failed: %v", err)
	}
	r.Put("k", []byte("v"))
	r.Put("k", []byte("v"))
	if r.Degraded() {
		t.Error("breaker tripped without TripAfter consecutive failures")
	}
}
