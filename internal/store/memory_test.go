package store

import (
	"errors"
	"fmt"
	"testing"
)

// TestMemoryRoundTrip checks basic Get/Put/Delete/Len semantics.
func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory(0)
	if _, err := m.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty store Get = %v, want ErrNotFound", err)
	}
	if err := m.Put("a", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	got, err := m.Get("a")
	if err != nil || string(got) != "alpha" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := m.Put("a", []byte("alpha2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Get("a"); string(got) != "alpha2" {
		t.Fatalf("overwrite not visible: %q", got)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	if err := m.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key Get = %v, want ErrNotFound", err)
	}
	if err := m.Delete("never-existed"); err != nil {
		t.Fatalf("deleting a missing key must be a no-op, got %v", err)
	}
	st := m.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Puts != 2 {
		t.Errorf("stats %+v, want 2 hits, 2 misses, 2 puts", st)
	}
}

// TestMemoryLRUEviction checks the bound is enforced in recency order:
// a Get refreshes a record, so the least-recently-used one goes first.
func TestMemoryLRUEviction(t *testing.T) {
	m := NewMemory(3)
	for _, k := range []string{"a", "b", "c"} {
		m.Put(k, []byte(k))
	}
	// Touch "a" so "b" becomes the LRU record.
	if _, err := m.Get("a"); err != nil {
		t.Fatal(err)
	}
	m.Put("d", []byte("d")) // evicts "b"
	if _, err := m.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LRU record survived eviction: %v", err)
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, err := m.Get(k); err != nil {
			t.Errorf("record %q evicted out of order: %v", k, err)
		}
	}
	if ev := m.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

// TestMemoryTrim checks on-demand eviction down to a target, in LRU
// order, and that Trim(0) empties the store.
func TestMemoryTrim(t *testing.T) {
	m := NewMemory(0)
	for i := 0; i < 10; i++ {
		m.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	// Refresh the three oldest so they survive the trim.
	for i := 0; i < 3; i++ {
		m.Get(fmt.Sprintf("k%d", i))
	}
	m.Trim(3)
	if m.Len() != 3 {
		t.Fatalf("Len after Trim(3) = %d", m.Len())
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Get(fmt.Sprintf("k%d", i)); err != nil {
			t.Errorf("recently-used k%d was evicted", i)
		}
	}
	m.Trim(-1) // negative clamps to empty
	if m.Len() != 0 {
		t.Fatalf("Len after Trim(-1) = %d", m.Len())
	}
	if ev := m.Stats().Evictions; ev != 10 {
		t.Errorf("evictions = %d, want 10", ev)
	}
}
