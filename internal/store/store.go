// Package store is the pluggable result-store layer behind the
// scenario runner's memo: a key/value interface over opaque record
// bytes, with an in-memory LRU implementation (the refactored
// in-process memo) and a crash-safe on-disk content-addressed
// implementation (durable warm hits across process restarts). A
// Resilient wrapper adds bounded retry with backoff and automatic
// degradation — a store whose medium repeatedly fails trips into a
// permanent no-op "degraded" mode so a broken volume can never take
// serving down.
//
// Keys are arbitrary strings (the runner uses content addresses of the
// form "<stage-kind>|<hash>"); values are opaque byte slices that
// callers must treat as immutable after Put and after Get — both
// implementations share the underlying arrays instead of copying.
package store

import "errors"

// ErrNotFound is returned by Get when the key has no (intact) record.
// A corrupt on-disk record reads as ErrNotFound after quarantine — the
// caller recomputes; corruption is never served and never fatal.
var ErrNotFound = errors.New("store: not found")

// ErrDegraded is returned by every operation of a Resilient store that
// has tripped into memory-only degradation. Callers treat it as "no
// durable layer", not as a per-operation failure.
var ErrDegraded = errors.New("store: degraded (disabled after repeated failures)")

// Store is a result store: a flat key/value space of immutable record
// bytes. Implementations are safe for concurrent use.
type Store interface {
	// Get returns the record bytes for key, ErrNotFound when absent (or
	// quarantined as corrupt), or the medium's error.
	Get(key string) ([]byte, error)
	// Put durably stores val under key, overwriting any previous record.
	Put(key string, val []byte) error
	// Delete removes the record; deleting an absent key is a no-op.
	Delete(key string) error
	// Len reports the number of intact records (a Disk store counts
	// record files; quarantined records are excluded).
	Len() int
	// Close releases the store's resources. The store must not be used
	// afterwards.
	Close() error
}

// Stats are the operational counters of a store. All counters are
// monotonic, so deltas of snapshots attribute activity to a window.
type Stats struct {
	Gets        uint64 `json:"gets"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts"`
	GetErrors   uint64 `json:"get_errors,omitempty"`
	PutErrors   uint64 `json:"put_errors,omitempty"`
	Quarantined uint64 `json:"quarantined,omitempty"`
	Retries     uint64 `json:"retries,omitempty"`
	Evictions   uint64 `json:"evictions,omitempty"`
}

// StatsProvider is implemented by stores that report Stats (Disk,
// Resilient, Memory).
type StatsProvider interface {
	Stats() Stats
}

// Trimmer is implemented by bounded stores that can evict down to a
// target size on demand (Memory's LRU).
type Trimmer interface {
	// Trim evicts least-recently-used records until at most max remain.
	Trim(max int)
}

// Moder is implemented by stores with an operational mode — Resilient
// reports "disk" until its breaker trips, then "degraded".
type Moder interface {
	Mode() string
}
