package store

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Memory is the in-process Store: a map with LRU recency tracking and
// real bounded eviction. A limit of 0 means unbounded; Trim evicts
// least-recently-used records down to a target on demand. Only
// completed results ever reach a store (the runner's single-flight
// layer tracks in-flight work separately), so eviction can never drop
// an in-flight computation.
type Memory struct {
	mu    sync.Mutex
	limit int
	lru   *list.List // front = most recently used; values are *memRecord
	byKey map[string]*list.Element

	gets, hits, misses, puts, evictions uint64
}

type memRecord struct {
	key string
	val []byte
}

// NewMemory returns an in-memory store evicting LRU records beyond
// limit entries (0 = unbounded).
func NewMemory(limit int) *Memory {
	return &Memory{limit: limit, lru: list.New(), byKey: make(map[string]*list.Element)}
}

// Get implements Store; a hit refreshes the record's recency.
func (m *Memory) Get(key string) ([]byte, error) {
	atomic.AddUint64(&m.gets, 1)
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.byKey[key]
	if !ok {
		atomic.AddUint64(&m.misses, 1)
		return nil, ErrNotFound
	}
	atomic.AddUint64(&m.hits, 1)
	m.lru.MoveToFront(e)
	return e.Value.(*memRecord).val, nil
}

// Put implements Store.
func (m *Memory) Put(key string, val []byte) error {
	atomic.AddUint64(&m.puts, 1)
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.byKey[key]; ok {
		e.Value.(*memRecord).val = val
		m.lru.MoveToFront(e)
		return nil
	}
	m.byKey[key] = m.lru.PushFront(&memRecord{key: key, val: val})
	if m.limit > 0 {
		m.trimLocked(m.limit)
	}
	return nil
}

// Delete implements Store.
func (m *Memory) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.byKey[key]; ok {
		m.lru.Remove(e)
		delete(m.byKey, key)
	}
	return nil
}

// Len implements Store.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Len()
}

// Close implements Store.
func (m *Memory) Close() error { return nil }

// Trim implements Trimmer: evict LRU records until at most max remain
// (max <= 0 empties the store).
func (m *Memory) Trim(max int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.trimLocked(max)
}

func (m *Memory) trimLocked(max int) {
	if max < 0 {
		max = 0
	}
	for m.lru.Len() > max {
		e := m.lru.Back()
		m.lru.Remove(e)
		delete(m.byKey, e.Value.(*memRecord).key)
		atomic.AddUint64(&m.evictions, 1)
	}
}

// Stats implements StatsProvider.
func (m *Memory) Stats() Stats {
	return Stats{
		Gets:      atomic.LoadUint64(&m.gets),
		Hits:      atomic.LoadUint64(&m.hits),
		Misses:    atomic.LoadUint64(&m.misses),
		Puts:      atomic.LoadUint64(&m.puts),
		Evictions: atomic.LoadUint64(&m.evictions),
	}
}
