package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/faults"
)

// Disk is the crash-safe on-disk content-addressed store. Each record
// is one file in a fan-out directory keyed by the hash of the record's
// key:
//
//	<root>/objects/<hh>/<hash>.rec   the records (hh = hash[:2])
//	<root>/tmp/                      staging for atomic writes
//	<root>/quarantine/               corrupt records, moved aside
//
// Writes are atomic and durable: the framed record is written to a
// temp file on the same volume, fsynced, renamed into place, and the
// parent directory is fsynced — a crash at any point leaves either the
// old record or the new one, never a torn file at the final path. Every
// record is framed with a magic/version header, its full key, and a
// CRC-32C trailer verified on read; a record that fails verification
// (truncated, bit-flipped, or belonging to a different key) is moved to
// the quarantine sidecar, counted, and reported as ErrNotFound so the
// caller transparently recomputes — corruption is never served and
// never fatal.
type Disk struct {
	root string

	gets, hits, misses, puts uint64
	getErrors, putErrors     uint64
	quarantined              uint64
}

// Record framing constants. diskMagic identifies a compmem result
// record; diskVersion is the wire-format version (bumping it orphans
// existing records, which then read as misses — never as corruption).
const (
	diskVersion   = 1
	recHeaderLen  = 12 // magic(4) + version(2) + keyLen(2) + payloadLen(4)
	recTrailerLen = 4  // CRC-32C over header+key+payload
)

const (
	maxKeyLen   = 1<<16 - 1
	maxValueLen = 1<<31 - 1
)

var (
	diskMagic = [4]byte{'C', 'M', 'R', 'S'} // CompMem Result Store
	crcTable  = crc32.MakeTable(crc32.Castagnoli)
)

// OpenDisk opens (creating if needed) a disk store rooted at dir.
// Leftover staging files from a previous crash are removed.
func OpenDisk(dir string) (*Disk, error) {
	d := &Disk{root: dir}
	for _, sub := range []string{d.objectsDir(), d.tmpDir(), d.quarantineDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("store: opening %s: %w", dir, err)
		}
	}
	// A crash mid-Put can leave staging files; they were never visible
	// at a record path, so dropping them is always safe.
	if stale, err := os.ReadDir(d.tmpDir()); err == nil {
		for _, e := range stale {
			os.Remove(filepath.Join(d.tmpDir(), e.Name()))
		}
	}
	return d, nil
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.root }

func (d *Disk) objectsDir() string    { return filepath.Join(d.root, "objects") }
func (d *Disk) tmpDir() string        { return filepath.Join(d.root, "tmp") }
func (d *Disk) quarantineDir() string { return filepath.Join(d.root, "quarantine") }

// recordPath fans records out by the hex SHA-256 of the key, so the
// layout is uniform regardless of key shape and no directory grows
// unboundedly.
func (d *Disk) recordPath(key string) (dir, path string) {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	dir = filepath.Join(d.objectsDir(), name[:2])
	return dir, filepath.Join(dir, name[2:]+".rec")
}

// frame builds the on-disk record: header, key, payload, CRC trailer.
func frame(key string, val []byte) ([]byte, error) {
	if len(key) > maxKeyLen {
		return nil, fmt.Errorf("store: key of %d bytes exceeds %d", len(key), maxKeyLen)
	}
	if len(val) > maxValueLen {
		return nil, fmt.Errorf("store: value of %d bytes exceeds %d", len(val), maxValueLen)
	}
	rec := make([]byte, recHeaderLen+len(key)+len(val)+recTrailerLen)
	copy(rec[0:4], diskMagic[:])
	binary.BigEndian.PutUint16(rec[4:6], diskVersion)
	binary.BigEndian.PutUint16(rec[6:8], uint16(len(key)))
	binary.BigEndian.PutUint32(rec[8:12], uint32(len(val)))
	copy(rec[recHeaderLen:], key)
	copy(rec[recHeaderLen+len(key):], val)
	crc := crc32.Checksum(rec[:len(rec)-recTrailerLen], crcTable)
	binary.BigEndian.PutUint32(rec[len(rec)-recTrailerLen:], crc)
	return rec, nil
}

// parse verifies a framed record against the key it was looked up
// under and returns its payload. Any inconsistency — short file, bad
// magic, impossible lengths, key mismatch, checksum failure — is
// corruption (a version mismatch alone is not: it reads as a miss, see
// Get). The payload shares rec's backing array.
func parse(rec []byte, key string) (payload []byte, version uint16, err error) {
	if len(rec) < recHeaderLen+recTrailerLen {
		return nil, 0, fmt.Errorf("truncated record: %d bytes", len(rec))
	}
	if [4]byte(rec[0:4]) != diskMagic {
		return nil, 0, fmt.Errorf("bad magic %q", rec[0:4])
	}
	version = binary.BigEndian.Uint16(rec[4:6])
	keyLen := int(binary.BigEndian.Uint16(rec[6:8]))
	payLen := int(binary.BigEndian.Uint32(rec[8:12]))
	if recHeaderLen+keyLen+payLen+recTrailerLen != len(rec) {
		return nil, version, fmt.Errorf("length mismatch: header says %d+%d in a %d-byte file", keyLen, payLen, len(rec))
	}
	body := rec[:len(rec)-recTrailerLen]
	want := binary.BigEndian.Uint32(rec[len(rec)-recTrailerLen:])
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, version, fmt.Errorf("checksum mismatch: %08x != %08x", got, want)
	}
	if recKey := string(rec[recHeaderLen : recHeaderLen+keyLen]); recKey != key {
		return nil, version, fmt.Errorf("key mismatch: record holds %q", recKey)
	}
	return rec[recHeaderLen+keyLen : recHeaderLen+keyLen+payLen], version, nil
}

// Get implements Store. Corrupt records are quarantined and read as
// ErrNotFound; records of an unknown wire version read as ErrNotFound
// without quarantine (they are intact, just unreadable by this build —
// the recompute overwrites them).
func (d *Disk) Get(key string) ([]byte, error) {
	atomic.AddUint64(&d.gets, 1)
	if err := faults.Point(faults.SiteStoreGet); err != nil {
		atomic.AddUint64(&d.getErrors, 1)
		return nil, err
	}
	_, path := d.recordPath(key)
	rec, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			atomic.AddUint64(&d.misses, 1)
			return nil, ErrNotFound
		}
		atomic.AddUint64(&d.getErrors, 1)
		return nil, fmt.Errorf("store: reading %s: %w", path, err)
	}
	payload, version, perr := parse(rec, key)
	if perr != nil {
		d.quarantine(path, perr)
		atomic.AddUint64(&d.misses, 1)
		return nil, ErrNotFound
	}
	if version != diskVersion {
		atomic.AddUint64(&d.misses, 1)
		return nil, ErrNotFound
	}
	atomic.AddUint64(&d.hits, 1)
	return payload, nil
}

// quarantine moves a corrupt record into the sidecar directory (never
// deleting evidence) and drops a .reason file beside it; if even the
// move fails the record is removed so it cannot be re-read, and if that
// fails too the next Put's rename will overwrite it. Never fatal.
func (d *Disk) quarantine(path string, cause error) {
	atomic.AddUint64(&d.quarantined, 1)
	dest := filepath.Join(d.quarantineDir(), filepath.Base(path))
	if err := os.Rename(path, dest); err != nil {
		os.Remove(path)
		return
	}
	os.WriteFile(dest+".reason", []byte(cause.Error()+"\n"), 0o644)
}

// Put implements Store: an atomic, durable write (temp file + fsync +
// rename + parent-directory fsync).
func (d *Disk) Put(key string, val []byte) error {
	atomic.AddUint64(&d.puts, 1)
	rec, err := frame(key, val)
	if err != nil {
		atomic.AddUint64(&d.putErrors, 1)
		return err
	}
	if ferr := faults.Point(faults.SiteStorePut); ferr != nil {
		if !faults.IsTruncate(ferr) {
			atomic.AddUint64(&d.putErrors, 1)
			return ferr
		}
		// Injected torn write: frame a record cut mid-payload and report
		// success — the shape a crash between rename and data flush
		// leaves on non-atomic filesystems, which Get must quarantine.
		rec = rec[:recHeaderLen+(len(rec)-recHeaderLen)/2]
	}
	dir, path := d.recordPath(key)
	if err := d.writeAtomic(dir, path, rec); err != nil {
		atomic.AddUint64(&d.putErrors, 1)
		return err
	}
	return nil
}

func (d *Disk) writeAtomic(dir, path string, rec []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f, err := os.CreateTemp(d.tmpDir(), "put-*")
	if err != nil {
		return fmt.Errorf("store: staging: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(rec); err != nil {
		return cleanup(fmt.Errorf("store: writing %s: %w", tmp, err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("store: syncing %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publishing %s: %w", path, err)
	}
	// fsync the parent so the rename itself survives a crash.
	if dh, err := os.Open(dir); err == nil {
		dh.Sync()
		dh.Close()
	}
	return nil
}

// Delete implements Store.
func (d *Disk) Delete(key string) error {
	_, path := d.recordPath(key)
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: deleting %s: %w", path, err)
	}
	return nil
}

// Len implements Store: the number of record files on disk
// (quarantined records excluded).
func (d *Disk) Len() int {
	n := 0
	filepath.WalkDir(d.objectsDir(), func(path string, e fs.DirEntry, err error) error {
		if err == nil && !e.IsDir() && strings.HasSuffix(e.Name(), ".rec") {
			n++
		}
		return nil
	})
	return n
}

// QuarantineLen counts quarantined record files (excluding their
// .reason sidecars).
func (d *Disk) QuarantineLen() int {
	entries, err := os.ReadDir(d.quarantineDir())
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".rec") {
			n++
		}
	}
	return n
}

// Close implements Store.
func (d *Disk) Close() error { return nil }

// Stats implements StatsProvider.
func (d *Disk) Stats() Stats {
	return Stats{
		Gets:        atomic.LoadUint64(&d.gets),
		Hits:        atomic.LoadUint64(&d.hits),
		Misses:      atomic.LoadUint64(&d.misses),
		Puts:        atomic.LoadUint64(&d.puts),
		GetErrors:   atomic.LoadUint64(&d.getErrors),
		PutErrors:   atomic.LoadUint64(&d.putErrors),
		Quarantined: atomic.LoadUint64(&d.quarantined),
	}
}
