package store

import (
	"errors"
	"sync/atomic"
	"time"
)

// ResilientOptions tunes the retry and degradation behavior of a
// Resilient store. The zero value means all defaults.
type ResilientOptions struct {
	// Attempts is how many times an operation is tried in total before
	// it counts as failed; 0 means 3.
	Attempts int
	// Backoff is the sleep before the first retry, doubling per retry;
	// 0 means 2ms. (Set it low in tests.)
	Backoff time.Duration
	// TripAfter is how many *consecutive* failed operations (each
	// post-retry) trip the store into permanent degradation; 0 means 3.
	TripAfter int
}

func (o ResilientOptions) withDefaults() ResilientOptions {
	if o.Attempts <= 0 {
		o.Attempts = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 2 * time.Millisecond
	}
	if o.TripAfter <= 0 {
		o.TripAfter = 3
	}
	return o
}

// Resilient hardens a Store for serving: transient I/O errors are
// retried with exponential backoff, and a medium that keeps failing —
// TripAfter consecutive operations failing even after retries — trips
// the store into permanent degradation, where every operation returns
// ErrDegraded without touching the medium. Callers treat ErrDegraded
// as "no durable layer": serving continues memory-only, and a broken
// volume can never take the process down or stall it with endless
// retry sleeps.
//
// ErrNotFound is a result, not a failure: it is returned immediately,
// never retried, and never counts toward the breaker.
type Resilient struct {
	inner Store
	opts  ResilientOptions

	consecutive int64  // consecutive failed ops; reset by any success
	degraded    int32  // set once, never cleared
	retries     uint64 // attempts beyond the first, across all ops
	failures    uint64 // operations failed post-retry
}

// NewResilient wraps inner with retry and degradation.
func NewResilient(inner Store, opts ResilientOptions) *Resilient {
	return &Resilient{inner: inner, opts: opts.withDefaults()}
}

// Mode implements Moder: "disk" while healthy, "degraded" after the
// breaker trips.
func (r *Resilient) Mode() string {
	if atomic.LoadInt32(&r.degraded) == 1 {
		return "degraded"
	}
	return "disk"
}

// Degraded reports whether the breaker has tripped.
func (r *Resilient) Degraded() bool { return atomic.LoadInt32(&r.degraded) == 1 }

// do runs op with retry/backoff and feeds the breaker.
func (r *Resilient) do(op func() error) error {
	if r.Degraded() {
		return ErrDegraded
	}
	var err error
	for attempt := 0; attempt < r.opts.Attempts; attempt++ {
		if attempt > 0 {
			atomic.AddUint64(&r.retries, 1)
			time.Sleep(r.opts.Backoff << (attempt - 1))
		}
		err = op()
		if err == nil || errors.Is(err, ErrNotFound) {
			atomic.StoreInt64(&r.consecutive, 0)
			return err
		}
	}
	atomic.AddUint64(&r.failures, 1)
	if atomic.AddInt64(&r.consecutive, 1) >= int64(r.opts.TripAfter) {
		atomic.StoreInt32(&r.degraded, 1)
	}
	return err
}

// Get implements Store.
func (r *Resilient) Get(key string) ([]byte, error) {
	var val []byte
	err := r.do(func() error {
		var e error
		val, e = r.inner.Get(key)
		return e
	})
	return val, err
}

// Put implements Store.
func (r *Resilient) Put(key string, val []byte) error {
	return r.do(func() error { return r.inner.Put(key, val) })
}

// Delete implements Store.
func (r *Resilient) Delete(key string) error {
	return r.do(func() error { return r.inner.Delete(key) })
}

// Len implements Store.
func (r *Resilient) Len() int {
	if r.Degraded() {
		return 0
	}
	return r.inner.Len()
}

// Close implements Store (the medium is closed even when degraded).
func (r *Resilient) Close() error { return r.inner.Close() }

// Stats implements StatsProvider: the medium's counters plus the
// wrapper's retry count.
func (r *Resilient) Stats() Stats {
	var s Stats
	if sp, ok := r.inner.(StatsProvider); ok {
		s = sp.Stats()
	}
	s.Retries += atomic.LoadUint64(&r.retries)
	return s
}
