package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
)

// refreshCRC recomputes a record's trailer so a deliberately edited
// record stays internally consistent (used to fabricate intact records
// of a foreign wire version).
func refreshCRC(rec []byte) {
	crc := crc32.Checksum(rec[:len(rec)-recTrailerLen], crcTable)
	binary.BigEndian.PutUint32(rec[len(rec)-recTrailerLen:], crc)
}

// onlyRecord returns the path of the store's single record file.
func onlyRecord(t *testing.T, d *Disk) string {
	t.Helper()
	var paths []string
	filepath.Walk(d.objectsDir(), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, ".rec") {
			paths = append(paths, path)
		}
		return nil
	})
	if len(paths) != 1 {
		t.Fatalf("want exactly 1 record on disk, found %d: %v", len(paths), paths)
	}
	return paths[0]
}

// TestDiskRoundTrip checks Put/Get/Delete/Len against a real directory.
func TestDiskRoundTrip(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty store Get = %v, want ErrNotFound", err)
	}
	val := []byte(`{"v":1,"kind":"run","data":{"x":0.5}}`)
	if err := d.Put("run|abc", val); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get("run|abc")
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
	if err := d.Delete("run|abc"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get("run|abc"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key Get = %v, want ErrNotFound", err)
	}
	if err := d.Delete("never-existed"); err != nil {
		t.Fatalf("deleting a missing key must be a no-op, got %v", err)
	}
}

// TestDiskReopen checks records written by one store instance are
// served by a fresh instance over the same directory — the restart
// contract — and that stale staging files are swept on open.
func TestDiskReopen(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Put("profile|x", []byte("curves")); err != nil {
		t.Fatal(err)
	}
	d1.Close()

	// Simulate a crash mid-Put: a leftover staging file.
	stale := filepath.Join(dir, "tmp", "put-crashed")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.Get("profile|x")
	if err != nil || string(got) != "curves" {
		t.Fatalf("record did not survive reopen: %q, %v", got, err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale staging file survived reopen")
	}
}

// TestDiskQuarantine checks every corruption shape — truncation,
// bit-flip, bad magic, key mismatch — is moved to quarantine with a
// reason sidecar and read as ErrNotFound, and that a recompute (Put)
// then heals the slot.
func TestDiskQuarantine(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(rec []byte) []byte
	}{
		{"truncated", func(rec []byte) []byte { return rec[:len(rec)/2] }},
		{"bit-flip", func(rec []byte) []byte {
			rec[recHeaderLen+3] ^= 0x40 // flip a key byte; CRC catches it
			return rec
		}},
		{"bad-magic", func(rec []byte) []byte {
			copy(rec[0:4], "XXXX")
			return rec
		}},
		{"short-file", func(rec []byte) []byte { return rec[:recHeaderLen-2] }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			d, err := OpenDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Put("run|k", []byte("payload")); err != nil {
				t.Fatal(err)
			}
			path := onlyRecord(t, d)
			rec, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(rec), 0o644); err != nil {
				t.Fatal(err)
			}

			if _, err := d.Get("run|k"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("corrupt record Get = %v, want ErrNotFound", err)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt record still present at its record path")
			}
			if n := d.QuarantineLen(); n != 1 {
				t.Errorf("QuarantineLen = %d, want 1", n)
			}
			if got := d.Stats().Quarantined; got != 1 {
				t.Errorf("Stats().Quarantined = %d, want 1", got)
			}
			reason, err := os.ReadFile(filepath.Join(d.quarantineDir(), filepath.Base(path)+".reason"))
			if err != nil || len(reason) == 0 {
				t.Errorf("missing .reason sidecar: %q, %v", reason, err)
			}

			// The slot self-heals: a recompute overwrites it cleanly.
			if err := d.Put("run|k", []byte("recomputed")); err != nil {
				t.Fatal(err)
			}
			got, err := d.Get("run|k")
			if err != nil || string(got) != "recomputed" {
				t.Fatalf("healed slot Get = %q, %v", got, err)
			}
		})
	}
}

// TestDiskKeyMismatchQuarantines checks a record served under the wrong
// key (a hash collision, or a tampered file moved between slots) is
// quarantined rather than returned.
func TestDiskKeyMismatchQuarantines(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("run|a", []byte("for-a")); err != nil {
		t.Fatal(err)
	}
	// Move a's record into b's slot: framing is intact (magic, CRC all
	// valid) but the embedded key disagrees with the lookup key.
	src := onlyRecord(t, d)
	_, dst := d.recordPath("run|b")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get("run|b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("key-mismatched record Get = %v, want ErrNotFound", err)
	}
	if n := d.QuarantineLen(); n != 1 {
		t.Errorf("QuarantineLen = %d, want 1", n)
	}
}

// TestDiskVersionMismatchIsMissNotCorruption checks a record of a
// different wire version reads as a plain miss: no quarantine (the
// record is intact, just unreadable by this build) and the recompute
// overwrites it.
func TestDiskVersionMismatchIsMissNotCorruption(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("run|k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	path := onlyRecord(t, d)
	rec, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Re-frame with a future version and a recomputed CRC, so the record
	// is internally consistent — only the version differs.
	rec[4], rec[5] = 0x00, 0x63 // version 99
	refreshCRC(rec)
	if err := os.WriteFile(path, rec, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := d.Get("run|k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("future-version record Get = %v, want ErrNotFound", err)
	}
	if n := d.QuarantineLen(); n != 0 {
		t.Errorf("version mismatch must not quarantine, QuarantineLen = %d", n)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("version-mismatched record must stay in place until overwritten: %v", err)
	}
	if err := d.Put("run|k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if got, err := d.Get("run|k"); err != nil || string(got) != "new" {
		t.Fatalf("overwritten slot Get = %q, %v", got, err)
	}
}

// TestDiskTornWriteFaultQuarantinesOnRead checks the injected torn
// write end to end: a Truncate fault at store.put writes a half record
// reporting success, and the next Get detects, quarantines, and misses.
func TestDiskTornWriteFaultQuarantinesOnRead(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	restore := faults.Activate(faults.New(7).TruncateAt(faults.SiteStorePut, 0))
	err = d.Put("run|torn", []byte("this payload will be cut in half"))
	restore()
	if err != nil {
		t.Fatalf("torn write must report success, got %v", err)
	}
	if d.Len() != 1 {
		t.Fatalf("torn record not on disk: Len = %d", d.Len())
	}
	if _, err := d.Get("run|torn"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn record Get = %v, want ErrNotFound", err)
	}
	if n := d.QuarantineLen(); n != 1 {
		t.Errorf("QuarantineLen = %d, want 1", n)
	}
	// Untorn retry heals the slot.
	if err := d.Put("run|torn", []byte("whole")); err != nil {
		t.Fatal(err)
	}
	if got, err := d.Get("run|torn"); err != nil || string(got) != "whole" {
		t.Fatalf("healed Get = %q, %v", got, err)
	}
}

// TestDiskInjectedErrors checks Error faults at both store sites are
// returned (not swallowed) and counted.
func TestDiskInjectedErrors(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	restore := faults.Activate(faults.New(7).
		ErrorAt(faults.SiteStorePut, 0).
		ErrorAt(faults.SiteStoreGet, 0))
	defer restore()

	var ie *faults.InjectedError
	if err := d.Put("k", []byte("v")); !errors.As(err, &ie) {
		t.Fatalf("Put under an error fault = %v, want InjectedError", err)
	}
	if _, err := d.Get("k"); !errors.As(err, &ie) {
		t.Fatalf("Get under an error fault = %v, want InjectedError", err)
	}
	st := d.Stats()
	if st.GetErrors != 1 || st.PutErrors != 1 {
		t.Errorf("stats %+v, want 1 get error and 1 put error", st)
	}
}

// TestDiskFanOut checks the objects layout: records land under
// two-hex-character fan-out directories.
func TestDiskFanOut(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dir, path := d.recordPath("some|key")
	base := filepath.Base(dir)
	if len(base) != 2 {
		t.Errorf("fan-out dir %q, want two hex chars", base)
	}
	if !strings.HasSuffix(path, ".rec") {
		t.Errorf("record path %q, want .rec suffix", path)
	}
	if err := d.Put("some|key", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("record not at its computed path: %v", err)
	}
}
