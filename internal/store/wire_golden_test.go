package store

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// TestWireFormatGolden pins the persisted record framing byte for byte.
// Records written by one build must be readable by every later build of
// the same diskVersion, so any change to the header layout, key/payload
// placement, CRC polynomial, or byte order must fail here — and must
// come with a diskVersion bump (old records then read as misses, never
// as garbage).
func TestWireFormatGolden(t *testing.T) {
	rec, err := frame("run|k", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	const want = "434d5253" + // magic "CMRS"
		"0001" + // version 1, big-endian
		"0005" + // key length 5
		"00000007" + // payload length 7
		"72756e7c6b" + // "run|k"
		"7061796c6f6164" + // "payload"
		"ab005b40" // CRC-32C over everything above
	if got := hex.EncodeToString(rec); got != want {
		t.Fatalf("record framing drifted:\n got %s\nwant %s", got, want)
	}
	payload, version, err := parse(rec, "run|k")
	if err != nil || version != diskVersion || !bytes.Equal(payload, []byte("payload")) {
		t.Fatalf("parse(frame(...)) = %q, v%d, %v", payload, version, err)
	}
}

// TestRecordPathGolden pins the record's on-disk address: the fan-out
// layout is derived from SHA-256 of the key, so a changed hash or
// layout orphans every existing store directory.
func TestRecordPathGolden(t *testing.T) {
	d := &Disk{root: "/r"}
	_, path := d.recordPath("run|k")
	// sha256("run|k") = e17895... — first two hex chars are the fan-out
	// directory, the rest names the file.
	const want = "/r/objects/e1/78959302f475ed9d080a638c370335b870fcaf7612403676383084e1b6b0c6.rec"
	if path != want {
		t.Fatalf("record path drifted:\n got %s\nwant %s", path, want)
	}
}
