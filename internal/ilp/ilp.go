// Package ilp solves 0/1 integer linear programs by LP-based branch and
// bound, using the dense simplex solver of internal/lp for relaxations.
//
// This is the literal form of the paper's section 3.2 optimization: the
// binary variables x_{p,i} select cache size z_p for task i, one size per
// task, with the sizes summing to at most the available cache and the
// total expected misses minimized. The exact multiple-choice-knapsack DP
// (internal/mckp) solves the same program faster; the two implementations
// cross-validate each other in tests.
package ilp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/lp"
)

// Problem is a 0/1 minimization ILP: minimize c·x subject to the linear
// constraints, x_j ∈ {0,1}.
type Problem struct {
	Objective   []float64
	Constraints []lp.Constraint
}

// Solution is the integer optimum.
type Solution struct {
	X     []int
	Value float64
	Nodes int // branch-and-bound nodes explored
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("ilp: infeasible")
	ErrNodeLimit  = errors.New("ilp: node limit exceeded")
)

const intTol = 1e-6

// MaxNodes bounds the search; the paper-scale programs need far fewer.
const MaxNodes = 200_000

type node struct {
	fixed []int8 // -1 free, 0/1 fixed
}

// Solve runs branch and bound and returns the optimal 0/1 assignment.
func Solve(p *Problem) (*Solution, error) {
	n := len(p.Objective)
	root := &node{fixed: make([]int8, n)}
	for i := range root.fixed {
		root.fixed[i] = -1
	}
	best := &Solution{Value: math.Inf(1)}
	stack := []*node{root}
	nodes := 0
	for len(stack) > 0 {
		nodes++
		if nodes > MaxNodes {
			return nil, ErrNodeLimit
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		sol, err := solveRelaxation(p, nd.fixed)
		if err != nil {
			return nil, err
		}
		if sol.Status == lp.Infeasible {
			continue
		}
		if sol.Status == lp.Unbounded {
			// With all variables in [0,1] the relaxation is never
			// unbounded; reaching this means a modelling error.
			return nil, fmt.Errorf("ilp: relaxation unbounded")
		}
		if sol.Value >= best.Value-1e-9 {
			continue // bound
		}
		branch := mostFractional(sol.X)
		if branch < 0 {
			// Integral: new incumbent.
			x := make([]int, n)
			for j, v := range sol.X {
				if v > 0.5 {
					x[j] = 1
				}
			}
			best = &Solution{X: x, Value: sol.Value, Nodes: nodes}
			continue
		}
		// Depth-first; explore the rounding-nearest child last so it is
		// popped first (better incumbents earlier).
		far, near := int8(0), int8(1)
		if sol.X[branch] < 0.5 {
			far, near = 1, 0
		}
		stack = append(stack, nd.child(branch, far), nd.child(branch, near))
	}
	if math.IsInf(best.Value, 1) {
		return nil, ErrInfeasible
	}
	best.Nodes = nodes
	return best, nil
}

func (nd *node) child(j int, v int8) *node {
	f := make([]int8, len(nd.fixed))
	copy(f, nd.fixed)
	f[j] = v
	return &node{fixed: f}
}

// mostFractional returns the index of the variable farthest from an
// integer, or -1 when all are integral.
func mostFractional(x []float64) int {
	best, bestDist := -1, intTol
	for j, v := range x {
		d := math.Abs(v - math.Round(v))
		if d > bestDist {
			best, bestDist = j, d
		}
	}
	return best
}

// solveRelaxation solves the LP relaxation with x in [0,1] and the fixed
// variables pinned by equality rows.
func solveRelaxation(p *Problem, fixed []int8) (*lp.Solution, error) {
	n := len(p.Objective)
	rel := &lp.Problem{Objective: p.Objective}
	rel.Constraints = append(rel.Constraints, p.Constraints...)
	for j := 0; j < n; j++ {
		row := make([]float64, n)
		row[j] = 1
		switch fixed[j] {
		case -1:
			rel.Constraints = append(rel.Constraints, lp.Constraint{Coef: row, Rel: lp.LE, RHS: 1})
		default:
			rel.Constraints = append(rel.Constraints, lp.Constraint{Coef: row, Rel: lp.EQ, RHS: float64(fixed[j])})
		}
	}
	return rel.Solve()
}

// PartitioningProblem builds the paper's exact formulation: groups[i]
// lists the candidate (weight, cost) alternatives of entity i; one
// alternative per entity must be chosen; total weight ≤ capacity.
// It returns the problem plus the variable index of (entity i, choice p).
func PartitioningProblem(groups [][]Alternative, capacity int) (*Problem, func(i, p int) int) {
	nvars := 0
	offs := make([]int, len(groups))
	for i, g := range groups {
		offs[i] = nvars
		nvars += len(g)
	}
	prob := &Problem{Objective: make([]float64, nvars)}
	capRow := make([]float64, nvars)
	for i, g := range groups {
		oneRow := make([]float64, nvars)
		for pi, alt := range g {
			j := offs[i] + pi
			prob.Objective[j] = alt.Cost
			oneRow[j] = 1
			capRow[j] = float64(alt.Weight)
		}
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coef: oneRow, Rel: lp.EQ, RHS: 1})
	}
	prob.Constraints = append(prob.Constraints, lp.Constraint{Coef: capRow, Rel: lp.LE, RHS: float64(capacity)})
	return prob, func(i, p int) int { return offs[i] + p }
}

// Alternative is one candidate allocation of the partitioning program.
type Alternative struct {
	Weight int
	Cost   float64
}
