package ilp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lp"
	"repro/internal/mckp"
)

func TestSimpleBinaryKnapsack(t *testing.T) {
	// max 5a+4b+3c s.t. 2a+3b+c <= 3  ->  min -5a-4b-3c.
	// Best: a=1,c=1 -> value -8.
	p := &Problem{
		Objective: []float64{-5, -4, -3},
		Constraints: []lp.Constraint{
			{Coef: []float64{2, 3, 1}, Rel: lp.LE, RHS: 3},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Value+8) > 1e-6 {
		t.Fatalf("value = %v, want -8", s.Value)
	}
	if s.X[0] != 1 || s.X[1] != 0 || s.X[2] != 1 {
		t.Errorf("x = %v", s.X)
	}
}

func TestEqualityGroups(t *testing.T) {
	// Two groups of two, pick one each, capacity binding.
	groups := [][]Alternative{
		{{Weight: 1, Cost: 10}, {Weight: 2, Cost: 4}},
		{{Weight: 1, Cost: 8}, {Weight: 2, Cost: 2}},
	}
	p, _ := PartitioningProblem(groups, 3)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Value-12) > 1e-6 {
		t.Fatalf("value = %v, want 12", s.Value)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		Objective: []float64{1, 1},
		Constraints: []lp.Constraint{
			{Coef: []float64{1, 1}, Rel: lp.GE, RHS: 3}, // max possible is 2
		},
	}
	if _, err := Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want infeasible", err)
	}
}

func TestAllIntegralRelaxation(t *testing.T) {
	// Totally unimodular instance: relaxation is already integral, so
	// the node count stays tiny.
	p := &Problem{
		Objective: []float64{1, 2},
		Constraints: []lp.Constraint{
			{Coef: []float64{1, 0}, Rel: lp.GE, RHS: 1},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.X[0] != 1 || s.X[1] != 0 {
		t.Errorf("x = %v", s.X)
	}
	if s.Nodes > 3 {
		t.Errorf("nodes = %d, expected immediate integral optimum", s.Nodes)
	}
}

func TestPartitioningProblemIndexer(t *testing.T) {
	groups := [][]Alternative{
		{{1, 1}, {2, 2}, {4, 3}},
		{{1, 5}},
	}
	p, idx := PartitioningProblem(groups, 10)
	if len(p.Objective) != 4 {
		t.Fatalf("nvars = %d", len(p.Objective))
	}
	if idx(0, 2) != 2 || idx(1, 0) != 3 {
		t.Error("indexer wrong")
	}
	if p.Objective[idx(1, 0)] != 5 {
		t.Error("objective mapping wrong")
	}
	// 2 group equalities + 1 capacity row.
	if len(p.Constraints) != 3 {
		t.Errorf("constraints = %d", len(p.Constraints))
	}
}

// Property: branch and bound matches the exact MCKP DP on random
// partitioning instances — the paper's program solved two independent ways.
func TestMatchesMCKPProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4) + 1
		groups := make([][]Alternative, n)
		items := make([]mckp.Item, n)
		for i := 0; i < n; i++ {
			k := rng.Intn(3) + 1
			for c := 0; c < k; c++ {
				w := rng.Intn(4) + 1
				cost := float64(rng.Intn(50))
				groups[i] = append(groups[i], Alternative{Weight: w, Cost: cost})
				items[i].Choices = append(items[i].Choices, mckp.Choice{Weight: w, Cost: cost})
			}
		}
		capacity := rng.Intn(10) + 1
		p, _ := PartitioningProblem(groups, capacity)
		bb, errBB := Solve(p)
		dp, errDP := mckp.Solve(items, capacity)
		if (errBB == nil) != (errDP == nil) {
			return false
		}
		if errBB != nil {
			return errors.Is(errBB, ErrInfeasible) && errors.Is(errDP, mckp.ErrInfeasible)
		}
		return math.Abs(bb.Value-dp.Cost) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: solutions are feasible and binary.
func TestSolutionBinaryFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5) + 2
		p := &Problem{Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.Float64()*10 - 5
		}
		coef := make([]float64, n)
		for j := range coef {
			coef[j] = float64(rng.Intn(4) + 1)
		}
		p.Constraints = []lp.Constraint{{Coef: coef, Rel: lp.LE, RHS: float64(rng.Intn(8) + 1)}}
		s, err := Solve(p)
		if err != nil {
			return false // always feasible: x = 0 works
		}
		lhs := 0.0
		for j, x := range s.X {
			if x != 0 && x != 1 {
				return false
			}
			lhs += coef[j] * float64(x)
		}
		return lhs <= p.Constraints[0].RHS+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
