// Package core implements the paper's contribution: compositional memory
// systems for multimedia communicating tasks.
//
// It provides the YAPI application model (tasks + FIFOs + frame buffers +
// shared static sections) as cache-allocation *entities*, the two cache
// strategies of the evaluation (conventional shared L2 vs exclusively
// partitioned L2), the miss-curve profiler, the (M)ILP/MCKP optimization
// method of section 3.2 that chooses the partitioning ratio, the
// throughput and power models of section 3.1, and the compositionality
// analysis of Figure 3.
package core

import (
	"fmt"

	"repro/internal/kpn"
	"repro/internal/mem"
)

// Task binds a process to its static processor assignment.
type Task struct {
	Proc *kpn.Process
	CPU  int
}

// App is a fully constructed YAPI application instance. An App can be run
// exactly once (its task goroutines terminate); experiments therefore
// work with factories (see Workload).
type App struct {
	Name    string
	AS      *mem.AddressSpace
	Tasks   []*Task
	FIFOs   []*kpn.FIFO
	Frames  []*kpn.Frame
	Buffers []*mem.Region // raw streaming buffers: coded inputs, VBV

	// Shared static sections (paper, section 5: "the application and
	// run time system static allocated data (data and bss) is shared
	// between tasks so ... exclusive cache partitions are allocated for
	// them as well").
	ApplData *mem.Region
	ApplBSS  *mem.Region
	RTData   *mem.Region
	RTBSS    *mem.Region

	// SplitTaskSections switches the entity model to separate
	// instruction and data partitions per task (see Entities).
	SplitTaskSections bool
}

// Workload is a reproducible application: calling Factory yields a fresh,
// identical App instance (same graph, same synthetic input).
type Workload struct {
	Name    string
	Factory func() (*App, error)
}

// TaskConfig describes one task for the Builder.
type TaskConfig struct {
	Name     string
	CPU      int
	CodeSize uint64 // bytes of code; 0 = 8 KiB
	HotCode  uint64 // inner-loop footprint; 0 = whole code region
	HeapSize uint64 // task-private tables and scratch; 0 = 16 KiB
	Body     func(*kpn.Ctx)
}

// Builder incrementally constructs an App and its address space.
type Builder struct {
	app   *App
	built bool
	err   error
}

// NewBuilder starts an application. The run-time system sections are
// allocated first, at the bottom of the address space, as a loader would.
func NewBuilder(name string) *Builder {
	as := mem.NewAddressSpace()
	app := &App{Name: name, AS: as}
	app.RTData = as.MustAlloc("rt data", mem.KindRTData, "", 8*1024)
	app.RTBSS = as.MustAlloc("rt bss", mem.KindRTBSS, "", 16*1024)
	return &Builder{app: app}
}

// Sections allocates the application's shared data and bss sections. It
// must be called once, before any task body runs; tasks reach the
// sections via App.ApplData / App.ApplBSS.
func (b *Builder) Sections(dataBytes, bssBytes uint64) *Builder {
	if b.app.ApplData != nil {
		b.fail(fmt.Errorf("core: Sections called twice"))
		return b
	}
	b.app.ApplData = b.app.AS.MustAlloc("appl data", mem.KindData, "", dataBytes)
	b.app.ApplBSS = b.app.AS.MustAlloc("appl bss", mem.KindBSS, "", bssBytes)
	return b
}

// AddTask creates a task with its private code/stack/heap regions.
func (b *Builder) AddTask(tc TaskConfig) *kpn.Process {
	if tc.CodeSize == 0 {
		tc.CodeSize = 8 * 1024
	}
	if tc.HeapSize == 0 {
		tc.HeapSize = 16 * 1024
	}
	as := b.app.AS
	p := &kpn.Process{
		Name:    tc.Name,
		Body:    tc.Body,
		Code:    as.MustAlloc(tc.Name+".code", mem.KindCode, tc.Name, tc.CodeSize),
		Stack:   as.MustAlloc(tc.Name+".stack", mem.KindStack, tc.Name, 4*1024),
		Heap:    as.MustAlloc(tc.Name+".heap", mem.KindHeap, tc.Name, tc.HeapSize),
		HotCode: tc.HotCode,
	}
	b.app.Tasks = append(b.app.Tasks, &Task{Proc: p, CPU: tc.CPU})
	return p
}

// AddFIFO creates an inter-task FIFO with its own buffer region.
func (b *Builder) AddFIFO(name string, tokenBytes, capTokens int) *kpn.FIFO {
	f, err := kpn.NewFIFO(b.app.AS, name, tokenBytes, capTokens)
	if err != nil {
		b.fail(err)
		return nil
	}
	b.app.FIFOs = append(b.app.FIFOs, f)
	return f
}

// AddBuffer allocates a raw streaming buffer with its own region and
// allocation entity: coded input streams, VBV picture buffers — data that
// is written and read sequentially, exactly once per pass, and must not
// pollute any task's partition.
func (b *Builder) AddBuffer(name string, size uint64) *mem.Region {
	r, err := b.app.AS.Alloc(name, mem.KindFrame, "", size)
	if err != nil {
		b.fail(err)
		return nil
	}
	b.app.Buffers = append(b.app.Buffers, r)
	return r
}

// AddFrame creates a frame buffer with its own region.
func (b *Builder) AddFrame(name string, w, h, pixelBytes int) *kpn.Frame {
	f, err := kpn.NewFrame(b.app.AS, name, w, h, pixelBytes)
	if err != nil {
		b.fail(err)
		return nil
	}
	b.app.Frames = append(b.app.Frames, f)
	return f
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// ApplData returns the shared initialized-data section, allocating the
// default-sized sections on first use.
func (b *Builder) ApplData() *mem.Region {
	if b.app.ApplData == nil {
		b.Sections(8*1024, 16*1024)
	}
	return b.app.ApplData
}

// ApplBSS returns the shared uninitialized-data section, allocating the
// default-sized sections on first use.
func (b *Builder) ApplBSS() *mem.Region {
	if b.app.ApplData == nil {
		b.Sections(8*1024, 16*1024)
	}
	return b.app.ApplBSS
}

// Build finalizes the App.
func (b *Builder) Build() (*App, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.built {
		return nil, fmt.Errorf("core: Build called twice")
	}
	if len(b.app.Tasks) == 0 {
		return nil, fmt.Errorf("core: application %q has no tasks", b.app.Name)
	}
	if b.app.ApplData == nil {
		b.Sections(8*1024, 16*1024)
	}
	b.built = true
	return b.app, nil
}

// TaskByName returns the named task, or nil.
func (a *App) TaskByName(name string) *Task {
	for _, t := range a.Tasks {
		if t.Proc.Name == name {
			return t
		}
	}
	return nil
}

// NumTasks returns the number of tasks.
func (a *App) NumTasks() int { return len(a.Tasks) }
