package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/rtos"
)

// EntityKind classifies cache-allocation entities — the rows of Tables 1
// and 2 of the paper.
type EntityKind uint8

// Entity kinds.
const (
	EntityTask EntityKind = iota
	EntityFIFO
	EntityFrame
	EntitySection
)

// String implements fmt.Stringer.
func (k EntityKind) String() string {
	switch k {
	case EntityTask:
		return "task"
	case EntityFIFO:
		return "fifo"
	case EntityFrame:
		return "frame"
	case EntitySection:
		return "section"
	}
	return fmt.Sprintf("entitykind(%d)", uint8(k))
}

// UnitBytes is the capacity of one allocation unit of the default L2
// (rtos.AllocUnit sets × 4 ways × 64 B lines).
const UnitBytes = rtos.AllocUnit * 4 * 64

// Entity is one memory-active part of the application that can receive an
// exclusive L2 partition: a task's private footprint, a single FIFO or
// frame buffer, or a shared static section.
type Entity struct {
	Name    string
	Kind    EntityKind
	Regions []mem.RegionID
	Bytes   uint64 // total footprint in bytes

	// Pinned is the fixed unit count for entities whose allocation the
	// optimizer must not change: FIFOs get exactly their own size (the
	// paper's rule making every FIFO access after warm-up a hit).
	// 0 means the optimizer chooses.
	Pinned int
}

// PinnedUnits returns the allocation units needed to hold n bytes
// entirely (used for FIFO pinning).
func PinnedUnits(n uint64) int {
	u := int((n + UnitBytes - 1) / UnitBytes)
	if u < 1 {
		u = 1
	}
	return u
}

// Entities enumerates the application's allocation entities in
// deterministic order: tasks, FIFOs, frames, then the four shared
// sections. This is exactly the entity split of Tables 1 and 2.
//
// With SplitTaskSections set, every task contributes two entities
// instead of one — "<task>.text" (instructions) and "<task>.data" (stack
// and heap) — the alternative cache organization the paper's interval-
// table scheme "easily allows" (section 4.2: "separating tasks'
// instructions, static initialized variables (data) and static
// uninitialized variables (bss) in the cache").
func (a *App) Entities() []Entity {
	var es []Entity
	for _, t := range a.Tasks {
		p := t.Proc
		if a.SplitTaskSections {
			text := Entity{Name: p.Name + ".text", Kind: EntityTask,
				Regions: []mem.RegionID{p.Code.ID}, Bytes: p.Code.Size}
			data := Entity{Name: p.Name + ".data", Kind: EntityTask}
			for _, r := range []*mem.Region{p.Stack, p.Heap} {
				if r != nil {
					data.Regions = append(data.Regions, r.ID)
					data.Bytes += r.Size
				}
			}
			es = append(es, text, data)
			continue
		}
		e := Entity{Name: p.Name, Kind: EntityTask}
		for _, r := range []*mem.Region{p.Code, p.Stack, p.Heap} {
			if r != nil {
				e.Regions = append(e.Regions, r.ID)
				e.Bytes += r.Size
			}
		}
		es = append(es, e)
	}
	for _, f := range a.FIFOs {
		es = append(es, Entity{
			Name:    f.Name,
			Kind:    EntityFIFO,
			Regions: []mem.RegionID{f.Region.ID},
			Bytes:   f.Region.Size,
			Pinned:  PinnedUnits(f.Region.Size),
		})
	}
	for _, f := range a.Frames {
		es = append(es, Entity{
			Name:    f.Name,
			Kind:    EntityFrame,
			Regions: []mem.RegionID{f.Region.ID},
			Bytes:   f.Region.Size,
		})
	}
	for _, r := range a.Buffers {
		es = append(es, Entity{
			Name:    r.Name,
			Kind:    EntityFrame,
			Regions: []mem.RegionID{r.ID},
			Bytes:   r.Size,
		})
	}
	for _, r := range []*mem.Region{a.ApplData, a.ApplBSS, a.RTData, a.RTBSS} {
		if r == nil {
			continue
		}
		es = append(es, Entity{
			Name:    r.Name,
			Kind:    EntitySection,
			Regions: []mem.RegionID{r.ID},
			Bytes:   r.Size,
		})
	}
	return es
}

// EntityByName finds an entity in a slice, or nil.
func EntityByName(es []Entity, name string) *Entity {
	for i := range es {
		if es[i].Name == name {
			return &es[i]
		}
	}
	return nil
}

// Allocation maps entity names to allocation units — the output of the
// optimization method and the content of Tables 1 and 2.
type Allocation map[string]int

// TotalUnits sums the units of the allocation.
func (al Allocation) TotalUnits() int {
	t := 0
	for _, u := range al {
		t += u
	}
	return t
}

// BuildCacheAllocation turns an entity-level Allocation into the OS-level
// partition table for an L2 with l2Sets sets. rtUnits is the run-time
// system partition (the rt sections are mapped into it alongside any
// entity not present in the allocation). The rt-data/rt-bss sections get
// their own partitions when the allocation names them.
func (a *App) BuildCacheAllocation(l2Sets, rtUnits int, al Allocation) (*rtos.CacheAllocation, error) {
	var entries []rtos.AllocEntry
	for _, e := range a.Entities() {
		units, ok := al[e.Name]
		if !ok {
			continue
		}
		entries = append(entries, rtos.AllocEntry{Name: e.Name, Units: units, Regions: e.Regions})
	}
	return rtos.BuildAllocation(l2Sets, rtUnits, entries)
}

// EntityResult pairs an entity with its measured cache behaviour.
type EntityResult struct {
	Name     string
	Kind     EntityKind
	Units    int // allocated units (0 under the shared strategy)
	Accesses uint64
	Misses   uint64
}

// AggregateEntities sums the L2 per-region statistics into per-entity
// statistics.
func (a *App) AggregateEntities(l2 *cache.Cache, al Allocation) []EntityResult {
	var out []EntityResult
	for _, e := range a.Entities() {
		er := EntityResult{Name: e.Name, Kind: e.Kind}
		if al != nil {
			er.Units = al[e.Name]
		}
		for _, r := range e.Regions {
			s := l2.RegionStats(r)
			er.Accesses += s.Accesses
			er.Misses += s.Misses
		}
		out = append(out, er)
	}
	return out
}
