package core

import (
	"strings"
	"testing"

	"repro/internal/kpn"
)

func tinyApp(t *testing.T) (*App, *kpn.FIFO) {
	t.Helper()
	b := NewBuilder("tiny")
	b.Sections(4096, 8192)
	f := b.AddFIFO("pipe", 4, 4)
	b.AddTask(TaskConfig{Name: "prod", CPU: 0, Body: func(c *kpn.Ctx) {
		for i := uint32(0); i < 50; i++ {
			c.Exec(10)
			f.Write32(c, i)
		}
		f.Close(c)
	}})
	b.AddTask(TaskConfig{Name: "cons", CPU: 1, Body: func(c *kpn.Ctx) {
		for {
			if _, ok := f.Read32(c); !ok {
				return
			}
			c.Exec(5)
		}
	}})
	app, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return app, f
}

func TestBuilderLaysOutRTFirst(t *testing.T) {
	app, _ := tinyApp(t)
	regs := app.AS.Regions()
	if regs[0].Name != "rt data" || regs[1].Name != "rt bss" {
		t.Errorf("first regions = %s, %s", regs[0].Name, regs[1].Name)
	}
	if app.RTData == nil || app.RTBSS == nil || app.ApplData == nil || app.ApplBSS == nil {
		t.Fatal("sections missing")
	}
}

func TestBuilderDefaults(t *testing.T) {
	b := NewBuilder("d")
	p := b.AddTask(TaskConfig{Name: "t", Body: func(*kpn.Ctx) {}})
	if p.Code.Size != 8*1024 || p.Heap.Size != 16*1024 || p.Stack == nil {
		t.Errorf("default regions wrong: code=%d heap=%d", p.Code.Size, p.Heap.Size)
	}
	app, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if app.ApplData == nil {
		t.Error("Build did not create default sections")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("e")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "no tasks") {
		t.Errorf("empty build err = %v", err)
	}

	b2 := NewBuilder("e2")
	b2.Sections(1024, 1024)
	b2.Sections(1024, 1024) // twice
	b2.AddTask(TaskConfig{Name: "t", Body: func(*kpn.Ctx) {}})
	if _, err := b2.Build(); err == nil {
		t.Error("double Sections accepted")
	}

	b3 := NewBuilder("e3")
	b3.AddFIFO("bad", 0, 0) // invalid
	b3.AddTask(TaskConfig{Name: "t", Body: func(*kpn.Ctx) {}})
	if _, err := b3.Build(); err == nil {
		t.Error("bad FIFO accepted")
	}

	b4 := NewBuilder("e4")
	b4.AddFrame("bad", 0, 0, 0)
	b4.AddTask(TaskConfig{Name: "t", Body: func(*kpn.Ctx) {}})
	if _, err := b4.Build(); err == nil {
		t.Error("bad frame accepted")
	}

	b5 := NewBuilder("e5")
	b5.AddTask(TaskConfig{Name: "t", Body: func(*kpn.Ctx) {}})
	if _, err := b5.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := b5.Build(); err == nil {
		t.Error("double Build accepted")
	}
}

func TestTaskByName(t *testing.T) {
	app, _ := tinyApp(t)
	if app.TaskByName("prod") == nil || app.TaskByName("nope") != nil {
		t.Error("TaskByName wrong")
	}
	if app.NumTasks() != 2 {
		t.Errorf("NumTasks = %d", app.NumTasks())
	}
}

func TestEntities(t *testing.T) {
	app, f := tinyApp(t)
	es := app.Entities()
	// 2 tasks + 1 fifo + 4 sections.
	if len(es) != 7 {
		t.Fatalf("entities = %d, want 7", len(es))
	}
	prod := EntityByName(es, "prod")
	if prod == nil || prod.Kind != EntityTask || len(prod.Regions) != 3 {
		t.Errorf("prod entity = %+v", prod)
	}
	fe := EntityByName(es, "pipe")
	if fe == nil || fe.Kind != EntityFIFO || fe.Pinned != 1 {
		t.Errorf("fifo entity = %+v", fe)
	}
	if fe.Regions[0] != f.Region.ID {
		t.Error("fifo entity region mismatch")
	}
	sec := EntityByName(es, "appl data")
	if sec == nil || sec.Kind != EntitySection {
		t.Errorf("section entity = %+v", sec)
	}
	if EntityByName(es, "ghost") != nil {
		t.Error("ghost entity found")
	}
}

func TestEntityKindString(t *testing.T) {
	if EntityTask.String() != "task" || EntityFIFO.String() != "fifo" ||
		EntityFrame.String() != "frame" || EntitySection.String() != "section" {
		t.Error("entity kind strings wrong")
	}
	if EntityKind(9).String() != "entitykind(9)" {
		t.Error("unknown kind string")
	}
}

func TestPinnedUnits(t *testing.T) {
	cases := map[uint64]int{1: 1, UnitBytes: 1, UnitBytes + 1: 2, 4 * UnitBytes: 4}
	for b, want := range cases {
		if got := PinnedUnits(b); got != want {
			t.Errorf("PinnedUnits(%d) = %d, want %d", b, got, want)
		}
	}
}

func TestAllocationTotalUnits(t *testing.T) {
	al := Allocation{"a": 2, "b": 4}
	if al.TotalUnits() != 6 {
		t.Error("TotalUnits wrong")
	}
}

func TestBuildCacheAllocation(t *testing.T) {
	app, _ := tinyApp(t)
	al := Allocation{"prod": 2, "cons": 1, "pipe": 1, "appl data": 1,
		"appl bss": 1, "rt data": 1, "rt bss": 1}
	ca, err := app.BuildCacheAllocation(2048, 4, al)
	if err != nil {
		t.Fatal(err)
	}
	if ca.UnitsOf("prod") != 2 {
		t.Errorf("prod units = %d", ca.UnitsOf("prod"))
	}
	// Regions of prod map to prod's partition.
	prodEnt := EntityByName(app.Entities(), "prod")
	for _, r := range prodEnt.Regions {
		if ca.Table.PartitionOf(r) != ca.ByName["prod"] {
			t.Error("prod region in wrong partition")
		}
	}
	// Entities missing from the allocation fall into the rt partition.
	al2 := Allocation{"prod": 2}
	ca2, err := app.BuildCacheAllocation(2048, 4, al2)
	if err != nil {
		t.Fatal(err)
	}
	consEnt := EntityByName(app.Entities(), "cons")
	if ca2.Table.PartitionOf(consEnt.Regions[0]) != ca2.Table.DefaultID() {
		t.Error("unallocated entity not in default partition")
	}
}

func TestStrategyString(t *testing.T) {
	if Shared.String() != "shared" || Partitioned.String() != "partitioned" {
		t.Error("strategy strings wrong")
	}
}

func TestSolverString(t *testing.T) {
	if SolverMCKP.String() != "mckp" || SolverILP.String() != "ilp" {
		t.Error("solver strings wrong")
	}
}
