package core

import (
	"testing"
	"testing/quick"

	"repro/internal/apps/synth"
)

func TestProcessorLoads(t *testing.T) {
	tc := map[string]uint64{"a": 100, "b": 200, "c": 50}
	as := Assignment{"a": 0, "b": 1, "c": 0}
	loads, err := ProcessorLoads(tc, as, 2)
	if err != nil {
		t.Fatal(err)
	}
	if loads[0] != 150 || loads[1] != 200 {
		t.Errorf("loads = %v", loads)
	}
	if Makespan(loads) != 200 {
		t.Error("makespan wrong")
	}
}

func TestProcessorLoadsErrors(t *testing.T) {
	tc := map[string]uint64{"a": 1}
	if _, err := ProcessorLoads(tc, Assignment{}, 2); err == nil {
		t.Error("missing assignment accepted")
	}
	if _, err := ProcessorLoads(tc, Assignment{"a": 5}, 2); err == nil {
		t.Error("out-of-range CPU accepted")
	}
}

func TestThroughput(t *testing.T) {
	if Throughput(0) != 0 {
		t.Error("zero makespan throughput")
	}
	if Throughput(1e6) != 1.0 {
		t.Errorf("throughput = %v", Throughput(1e6))
	}
}

func TestAssignLPTBalances(t *testing.T) {
	tc := map[string]uint64{"t1": 10, "t2": 10, "t3": 10, "t4": 10}
	as := AssignLPT(tc, 2)
	loads, _ := ProcessorLoads(tc, as, 2)
	if loads[0] != 20 || loads[1] != 20 {
		t.Errorf("LPT loads = %v", loads)
	}
}

func TestAssignExhaustiveOptimal(t *testing.T) {
	tc := map[string]uint64{"a": 7, "b": 5, "c": 4, "d": 4, "e": 3}
	as, err := AssignExhaustive(tc, 2)
	if err != nil {
		t.Fatal(err)
	}
	loads, _ := ProcessorLoads(tc, as, 2)
	// Total 23 -> best split 12/11.
	if Makespan(loads) != 12 {
		t.Errorf("exhaustive makespan = %d, want 12", Makespan(loads))
	}
}

func TestAssignExhaustiveLimit(t *testing.T) {
	tc := map[string]uint64{}
	for i := 0; i < 30; i++ {
		tc[string(rune('a'+i))] = uint64(i)
	}
	if _, err := AssignExhaustive(tc, 4); err == nil {
		t.Error("oversized search accepted")
	}
}

func TestAssignLocalSearchImproves(t *testing.T) {
	tc := map[string]uint64{"a": 9, "b": 8, "c": 7, "d": 2}
	bad := Assignment{"a": 0, "b": 0, "c": 0, "d": 1} // makespan 24
	improved := AssignLocalSearch(tc, 2, bad)
	loads, _ := ProcessorLoads(tc, improved, 2)
	// Optimum: {9,2} vs {8,7} -> makespan 15.
	if Makespan(loads) != 15 {
		t.Errorf("local search makespan = %d, want 15 (optimal)", Makespan(loads))
	}
	// The start assignment must not be mutated.
	if bad["a"] != 0 || bad["b"] != 0 {
		t.Error("local search mutated its input")
	}
}

// Property: LPT's makespan is within 4/3 + eps of the exhaustive optimum
// (Graham's bound) on random small instances, and local search never
// makes LPT worse.
func TestAssignmentQualityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := synth.NewRand(seed)
		n := rng.Intn(7) + 2
		cpus := rng.Intn(3) + 2
		tc := map[string]uint64{}
		for i := 0; i < n; i++ {
			tc[string(rune('a'+i))] = uint64(rng.Intn(100) + 1)
		}
		opt, err := AssignExhaustive(tc, cpus)
		if err != nil {
			return false
		}
		lopt, _ := ProcessorLoads(tc, opt, cpus)
		lpt := AssignLPT(tc, cpus)
		llpt, _ := ProcessorLoads(tc, lpt, cpus)
		if float64(Makespan(llpt)) > float64(Makespan(lopt))*4.0/3.0+1 {
			return false
		}
		ls := AssignLocalSearch(tc, cpus, lpt)
		lls, _ := ProcessorLoads(tc, ls, cpus)
		return Makespan(lls) <= Makespan(llpt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
