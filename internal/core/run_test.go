package core

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/kpn"
	"repro/internal/mem"
	"repro/internal/platform"
)

func smallPlatform() platform.Config {
	pc := platform.Default()
	pc.NumCPUs = 2
	// A deliberately small L2 (128 KB) so cache effects appear even on
	// tiny test workloads.
	pc.Topology = pc.Topology.WithLevel("l2", func(l *cache.LevelSpec) { l.Sets = 512 })
	return pc
}

// loopStreamWorkload builds a 2-task app where one task loops over a
// reusable table while the other streams, the canonical interference
// pattern of the paper.
func loopStreamWorkload() Workload {
	return Workload{
		Name: "loop+stream",
		Factory: func() (*App, error) {
			b := NewBuilder("loop+stream")
			b.Sections(4096, 8192)
			f := b.AddFIFO("sync", 4, 4)
			b.AddTask(TaskConfig{
				Name: "looper", CPU: 0, HeapSize: 48 * 1024,
				Body: func(c *kpn.Ctx) {
					h := c.Heap()
					for iter := 0; iter < 60; iter++ {
						for off := uint64(0); off < 32*1024; off += 64 {
							c.Load32(h, off)
							c.Exec(4)
						}
						f.Write32(c, uint32(iter))
					}
					f.Close(c)
				}})
			b.AddTask(TaskConfig{
				Name: "streamer", CPU: 1, HeapSize: 2 * 1024 * 1024,
				Body: func(c *kpn.Ctx) {
					h := c.Heap()
					pos := uint64(0)
					for {
						if _, ok := f.Read32(c); !ok {
							return
						}
						// Flood all 512 L2 sets several times per token.
						for i := 0; i < 2048; i++ {
							c.Store32(h, pos%(2*1024*1024-64), uint32(pos))
							pos += 64
							c.Exec(2)
						}
					}
				}})
			return b.Build()
		},
	}
}

func TestRunSharedVsPartitioned(t *testing.T) {
	w := loopStreamWorkload()
	shared, err := Run(w, RunConfig{Platform: smallPlatform()})
	if err != nil {
		t.Fatal(err)
	}
	// The streamer has no reuse, but its partition must still cover the
	// L1 so dirty victims written back from L1 find their line in L2.
	alloc := Allocation{
		"looper": 32, "streamer": 16, "sync": 1,
		"appl data": 1, "appl bss": 1, "rt data": 1, "rt bss": 1,
	}
	part, err := Run(w, RunConfig{
		Platform: smallPlatform(), Strategy: Partitioned, Alloc: alloc, RTUnits: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	le := part.Entity("looper")
	ls := shared.Entity("looper")
	if le == nil || ls == nil {
		t.Fatal("looper entity missing")
	}
	// The streamer flushes the looper's table out of the shared L2;
	// partitioning must protect it (the core claim of the paper).
	if le.Misses*4 > ls.Misses {
		t.Errorf("partitioned looper misses %d not ≪ shared %d", le.Misses, ls.Misses)
	}
	if part.TotalMisses() >= shared.TotalMisses() {
		t.Errorf("partitioned total misses %d >= shared %d",
			part.TotalMisses(), shared.TotalMisses())
	}
	if shared.L2MissRate <= part.L2MissRate {
		t.Errorf("miss rate did not improve: %.4f -> %.4f", shared.L2MissRate, part.L2MissRate)
	}
	if part.Strategy != Partitioned || shared.Strategy != Shared {
		t.Error("strategies mislabelled")
	}
}

func TestRunRecordsTaskCycles(t *testing.T) {
	res, err := Run(loopStreamWorkload(), RunConfig{Platform: smallPlatform()})
	if err != nil {
		t.Fatal(err)
	}
	if res.TaskCycles["looper"] == 0 || res.TaskCycles["streamer"] == 0 {
		t.Errorf("task cycles = %v", res.TaskCycles)
	}
	if res.TaskCPU["looper"] != 0 || res.TaskCPU["streamer"] != 1 {
		t.Errorf("task cpus = %v", res.TaskCPU)
	}
	if res.Energy <= 0 {
		t.Error("no energy accounted")
	}
	if res.CPIMean <= 0 {
		t.Error("no CPI")
	}
}

func TestRunPartitionedWithoutAllocFails(t *testing.T) {
	_, err := Run(loopStreamWorkload(), RunConfig{Platform: smallPlatform(), Strategy: Partitioned})
	if err == nil || !strings.Contains(err.Error(), "without allocation") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunCPUFoldsOntoAvailable(t *testing.T) {
	// Task CPU indices beyond NumCPUs wrap instead of failing, so the
	// same workload runs on any platform size.
	w := Workload{
		Name: "wrap",
		Factory: func() (*App, error) {
			b := NewBuilder("wrap")
			b.AddTask(TaskConfig{Name: "t", CPU: 7, Body: func(c *kpn.Ctx) { c.Exec(10) }})
			return b.Build()
		},
	}
	pc := smallPlatform() // 2 CPUs
	res, err := Run(w, RunConfig{Platform: pc})
	if err != nil {
		t.Fatal(err)
	}
	if res.TaskCPU["t"] != 1 {
		t.Errorf("cpu = %d, want 7 mod 2 = 1", res.TaskCPU["t"])
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Entities: []EntityResult{
		{Name: "a", Misses: 10},
		{Name: "b", Misses: 5},
	}}
	if r.TotalMisses() != 15 {
		t.Error("TotalMisses wrong")
	}
	if r.Entity("b").Misses != 5 || r.Entity("zz") != nil {
		t.Error("Entity lookup wrong")
	}
}

func TestPowerModelDefaults(t *testing.T) {
	m := DefaultPowerModel()
	if m.zero() {
		t.Error("default model is zero")
	}
	if (PowerModel{}).zero() != true {
		t.Error("zero detection wrong")
	}
}

func TestL2ObserverReceivesStream(t *testing.T) {
	var observed uint64
	_, err := Run(loopStreamWorkload(), RunConfig{
		Platform: smallPlatform(),
		L2Observer: func(lineAddr uint64, write bool, region mem.RegionID) {
			observed++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if observed == 0 {
		t.Error("observer saw no L2-bound accesses")
	}
}
