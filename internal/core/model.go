package core

import (
	"fmt"
	"sort"
)

// This file implements the analytical throughput model of section 3.1.
//
// With static assignment of tasks to processors, tasks on one processor
// execute sequentially regardless of scheduling decisions, so the
// processor's time per application period is
//
//	Y(P_k) = Σ_{tasks i on P_k} T_i(c(i)) + t_switch + t_idle
//
// and the throughput of the periodic application is 1/max_k Y(P_k). The
// T_i are measured per task by the simulator (Result.TaskCycles); the
// model then lets us search the task-to-processor assignment space.

// Assignment maps task names to processor indices.
type Assignment map[string]int

// ProcessorLoads sums the task times per processor (the Σ T_i term).
func ProcessorLoads(taskCycles map[string]uint64, assign Assignment, numCPUs int) ([]uint64, error) {
	loads := make([]uint64, numCPUs)
	for name, cyc := range taskCycles {
		k, ok := assign[name]
		if !ok {
			return nil, fmt.Errorf("core: task %q has no assignment", name)
		}
		if k < 0 || k >= numCPUs {
			return nil, fmt.Errorf("core: task %q assigned to CPU %d of %d", name, k, numCPUs)
		}
		loads[k] += cyc
	}
	return loads, nil
}

// Makespan returns max_k Y(P_k) given per-processor loads.
func Makespan(loads []uint64) uint64 {
	var m uint64
	for _, l := range loads {
		if l > m {
			m = l
		}
	}
	return m
}

// Throughput converts a makespan (cycles per application period) into
// application executions per mega-cycle, the paper's "number of complete
// executions in a time unit".
func Throughput(makespan uint64) float64 {
	if makespan == 0 {
		return 0
	}
	return 1e6 / float64(makespan)
}

// sortedNames returns task names by decreasing cycle count (ties by name,
// for determinism).
func sortedNames(taskCycles map[string]uint64) []string {
	names := make([]string, 0, len(taskCycles))
	for n := range taskCycles {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if taskCycles[names[i]] != taskCycles[names[j]] {
			return taskCycles[names[i]] > taskCycles[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// AssignLPT builds an assignment with the longest-processing-time-first
// heuristic: tasks in decreasing T_i, each to the least-loaded processor.
func AssignLPT(taskCycles map[string]uint64, numCPUs int) Assignment {
	assign := make(Assignment, len(taskCycles))
	loads := make([]uint64, numCPUs)
	for _, name := range sortedNames(taskCycles) {
		best := 0
		for k := 1; k < numCPUs; k++ {
			if loads[k] < loads[best] {
				best = k
			}
		}
		assign[name] = best
		loads[best] += taskCycles[name]
	}
	return assign
}

// ExhaustiveLimit bounds the exact search: numCPUs^tasks assignments.
const ExhaustiveLimit = 20_000_000

// AssignExhaustive finds the makespan-optimal assignment by enumeration.
// It returns an error when the search space exceeds ExhaustiveLimit.
func AssignExhaustive(taskCycles map[string]uint64, numCPUs int) (Assignment, error) {
	names := sortedNames(taskCycles)
	space := 1
	for range names {
		space *= numCPUs
		if space > ExhaustiveLimit {
			return nil, fmt.Errorf("core: exhaustive assignment space exceeds %d", ExhaustiveLimit)
		}
	}
	bestMakespan := ^uint64(0)
	best := make([]int, len(names))
	cur := make([]int, len(names))
	loads := make([]uint64, numCPUs)
	var rec func(i int)
	rec = func(i int) {
		if Makespan(loads) >= bestMakespan {
			return // branch and bound: loads only grow
		}
		if i == len(names) {
			bestMakespan = Makespan(loads)
			copy(best, cur)
			return
		}
		limit := numCPUs
		if i == 0 {
			limit = 1 // symmetry break: first task on CPU 0
		}
		for k := 0; k < limit; k++ {
			cur[i] = k
			loads[k] += taskCycles[names[i]]
			rec(i + 1)
			loads[k] -= taskCycles[names[i]]
		}
	}
	rec(0)
	assign := make(Assignment, len(names))
	for i, n := range names {
		assign[n] = best[i]
	}
	return assign, nil
}

// AssignLocalSearch improves an assignment by task moves and pairwise
// swaps until no single change lowers the makespan.
func AssignLocalSearch(taskCycles map[string]uint64, numCPUs int, start Assignment) Assignment {
	assign := make(Assignment, len(start))
	for n, k := range start {
		assign[n] = k
	}
	names := sortedNames(taskCycles)
	improved := true
	for improved {
		improved = false
		loads, _ := ProcessorLoads(taskCycles, assign, numCPUs)
		cur := Makespan(loads)
		// Moves.
		for _, n := range names {
			orig := assign[n]
			for k := 0; k < numCPUs; k++ {
				if k == orig {
					continue
				}
				assign[n] = k
				l, _ := ProcessorLoads(taskCycles, assign, numCPUs)
				if Makespan(l) < cur {
					cur = Makespan(l)
					improved = true
					orig = k
				} else {
					assign[n] = orig
				}
			}
		}
		// Swaps.
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				a, b := names[i], names[j]
				if assign[a] == assign[b] {
					continue
				}
				assign[a], assign[b] = assign[b], assign[a]
				l, _ := ProcessorLoads(taskCycles, assign, numCPUs)
				if Makespan(l) < cur {
					cur = Makespan(l)
					improved = true
				} else {
					assign[a], assign[b] = assign[b], assign[a]
				}
			}
		}
	}
	return assign
}
