package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/platform"
)

// Strategy selects the cache organization of a run.
type Strategy uint8

// Strategies of the evaluation: the conventional shared L2 (baseline) and
// the exclusively partitioned L2 (the paper's method).
const (
	Shared Strategy = iota
	Partitioned
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	if s == Shared {
		return "shared"
	}
	return "partitioned"
}

// RunConfig parameterizes one application execution.
type RunConfig struct {
	Platform  platform.Config
	Strategy  Strategy
	Alloc     Allocation // required for Partitioned
	RTUnits   int        // run-time system partition size; 0 = 4 units
	MaxCycles uint64     // runaway guard; 0 = 20 G cycles
	Power     PowerModel // zero value = DefaultPowerModel

	// L2Observer, when non-nil, taps the access stream bound for the
	// observed shared level (the profiler attaches here).
	L2Observer func(lineAddr uint64, write bool, region mem.RegionID)
	// ObserveLevel names the shared topology level L2Observer taps; the
	// empty string selects the partition level (the classic L2).
	ObserveLevel string
}

// Result is the outcome of one application execution.
type Result struct {
	App      string
	Strategy Strategy
	Platform *platform.RunResult
	Entities []EntityResult

	L2MissRate float64
	CPIMean    float64
	Energy     float64

	// TaskCycles holds each task's execution+stall cycles, the measured
	// T_i of the throughput model.
	TaskCycles map[string]uint64
	// TaskCPU records the static assignment used.
	TaskCPU map[string]int
}

// TotalMisses sums entity misses (equals the L2 misses attributable to
// application entities; OS traffic outside rt sections is negligible).
func (r *Result) TotalMisses() uint64 {
	var t uint64
	for _, e := range r.Entities {
		t += e.Misses
	}
	return t
}

// Entity returns the named entity result, or nil.
func (r *Result) Entity(name string) *EntityResult {
	for i := range r.Entities {
		if r.Entities[i].Name == name {
			return &r.Entities[i]
		}
	}
	return nil
}

// PowerModel is the paper's section 3.1 cost: consumed power depends on
// the time and the memory traffic needed to complete all tasks. Energy =
// CycleCost·busy-cycles + L2Cost·L2-accesses + MemCost·line-transfers,
// in arbitrary energy units.
type PowerModel struct {
	CycleCost float64
	L2Cost    float64
	MemCost   float64
}

// DefaultPowerModel weights off-chip transfers an order of magnitude above
// L2 accesses, which in turn dominate core cycles — the usual embedded
// memory-energy hierarchy.
func DefaultPowerModel() PowerModel {
	return PowerModel{CycleCost: 1, L2Cost: 6, MemCost: 60}
}

func (m PowerModel) zero() bool { return m.CycleCost == 0 && m.L2Cost == 0 && m.MemCost == 0 }

// Run builds a fresh App from the workload and executes it under the
// given configuration.
func Run(w Workload, rc RunConfig) (*Result, error) {
	app, err := w.Factory()
	if err != nil {
		return nil, fmt.Errorf("core: building %q: %w", w.Name, err)
	}
	return RunApp(app, rc)
}

// RunApp executes an already-built App (which must not have run before).
func RunApp(app *App, rc RunConfig) (*Result, error) {
	if rc.MaxCycles == 0 {
		rc.MaxCycles = 20_000_000_000
	}
	if rc.RTUnits == 0 {
		rc.RTUnits = 4
	}
	if rc.Power.zero() {
		rc.Power = DefaultPowerModel()
	}
	pl, err := platform.New(rc.Platform, app.AS, app.RTData, app.RTBSS)
	if err != nil {
		return nil, err
	}
	for _, t := range app.Tasks {
		cpuIdx := t.CPU
		if cpuIdx >= rc.Platform.NumCPUs {
			cpuIdx = cpuIdx % rc.Platform.NumCPUs
		}
		if err := pl.AddTask(t.Proc, cpuIdx); err != nil {
			return nil, err
		}
	}
	var al Allocation
	if rc.Strategy == Partitioned {
		if rc.Alloc == nil {
			return nil, fmt.Errorf("core: partitioned run of %q without allocation", app.Name)
		}
		al = rc.Alloc
		ca, err := app.BuildCacheAllocation(rc.Platform.PartitionGeom().Sets, rc.RTUnits, al)
		if err != nil {
			return nil, err
		}
		pl.InstallAllocation(ca)
	}
	if rc.L2Observer != nil {
		obs, err := pl.SharedCache(rc.ObserveLevel)
		if err != nil {
			return nil, fmt.Errorf("core: observing %q: %w", rc.ObserveLevel, err)
		}
		obs.Observer = rc.L2Observer
	}
	pres, err := pl.Run(rc.MaxCycles)
	if err != nil {
		return nil, fmt.Errorf("core: running %q (%v): %w", app.Name, rc.Strategy, err)
	}
	res := &Result{
		App:        app.Name,
		Strategy:   rc.Strategy,
		Platform:   pres,
		Entities:   app.AggregateEntities(pl.L2(), al),
		TaskCycles: make(map[string]uint64, len(app.Tasks)),
		TaskCPU:    make(map[string]int, len(app.Tasks)),
	}
	for _, t := range app.Tasks {
		res.TaskCycles[t.Proc.Name] = t.Proc.ConsumedCycles()
		res.TaskCPU[t.Proc.Name] = t.CPU % rc.Platform.NumCPUs
	}
	res.L2MissRate = pres.L2.MissRate()
	res.CPIMean = pres.CPIMean()

	var busy uint64
	for _, c := range pl.Cores() {
		busy += c.BusyCycles()
	}
	res.Energy = rc.Power.CycleCost*float64(busy) +
		rc.Power.L2Cost*float64(pres.L2.Accesses) +
		rc.Power.MemCost*float64(pl.Bus().Traffic())
	// Every result is now copied out of the platform (entities, task
	// cycles, stats, energy inputs), so its arena can be recycled for
	// the next simulation. Error paths above deliberately skip this:
	// killed task goroutines may still reference arena memory.
	pl.Release()
	return res, nil
}
