package core

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/ilp"
	"repro/internal/mckp"
	"repro/internal/mem"
	"repro/internal/parallel"
	"repro/internal/platform"
	"repro/internal/profile"
	"repro/internal/rtos"
)

// Solver selects the optimization engine for the section 3.2 program.
type Solver uint8

// Available solvers: the exact multiple-choice-knapsack DP (production)
// and the LP-based branch-and-bound ILP (the paper's literal
// formulation); both return the same optimum.
const (
	SolverMCKP Solver = iota
	SolverILP
)

// String implements fmt.Stringer.
func (s Solver) String() string {
	if s == SolverILP {
		return "ilp"
	}
	return "mckp"
}

// ParseSolver resolves the CLI/spec spelling of a solver.
func ParseSolver(s string) (Solver, error) {
	switch s {
	case "mckp", "":
		return SolverMCKP, nil
	case "ilp":
		return SolverILP, nil
	}
	return 0, fmt.Errorf("core: unknown solver %q (want mckp or ilp)", s)
}

// OptimizeConfig parameterizes profiling and optimization.
type OptimizeConfig struct {
	Platform  platform.Config
	Sizes     []int // candidate unit sizes; nil = {1,2,...,128}
	Runs      int   // profiling repetitions for m̄ averaging; 0 = 3
	RTUnits   int   // run-time system partition; 0 = 4
	Solver    Solver
	MaxCycles uint64
	// Engine selects the miss-curve measurement engine; the zero value
	// is the single-pass stack-distance simulator, profile.EngineBank
	// the bank-of-caches reference oracle.
	Engine profile.Engine
	// Workers bounds the concurrency of the profiling repetitions;
	// 0 = GOMAXPROCS, 1 = sequential.
	Workers int
	// ProfileLevel names the shared topology level whose miss curves are
	// profiled; the empty string selects the partition level. The
	// allocation budget always comes from the partition level — this
	// knob only moves the measurement tap.
	ProfileLevel string
}

// profileGeom resolves the geometry of the profiled shared level.
func (oc OptimizeConfig) profileGeom() (cache.Config, error) {
	t := oc.Platform.Topology
	if oc.ProfileLevel == "" {
		return oc.Platform.PartitionGeom(), nil
	}
	i := t.Index(oc.ProfileLevel)
	if i < 0 {
		return cache.Config{}, fmt.Errorf("core: profile level %q not in topology (levels: %v)", oc.ProfileLevel, t.LevelNames())
	}
	l := t.Levels[i]
	if l.Scope != cache.ScopeShared {
		return cache.Config{}, fmt.Errorf("core: profile level %q is %s, not shared", oc.ProfileLevel, l.Scope)
	}
	return l.Config(), nil
}

func (oc *OptimizeConfig) fillDefaults() {
	if oc.Sizes == nil {
		oc.Sizes = []int{1, 2, 4, 8, 16, 32, 64, 128}
	}
	if oc.Runs == 0 {
		oc.Runs = 3
	}
	if oc.RTUnits == 0 {
		oc.RTUnits = 4
	}
}

// OptimizeResult carries the chosen allocation and everything needed to
// reproduce Tables 1-2 and Figure 3.
type OptimizeResult struct {
	Allocation Allocation
	Curves     []profile.Curve
	// Expected holds m̄_i at the chosen allocation per entity — the
	// model prediction that Figure 3 compares against simulation.
	Expected map[string]float64
	Budget   int // optimizable units after rt and pinned FIFOs
	Solver   Solver
}

// Profile runs the workload oc.Runs times under the shared-cache strategy
// with the profiler tapping the L2, and returns the averaged miss curves.
// Scheduling quanta are jittered across runs to perturb task
// interleavings, which is what makes averaging meaningful for the shared
// sections (task-private streams are identical across runs by Kahn
// determinism).
//
// The repetitions are independent simulations — each owns its app,
// platform and profiler — so they fan out over a bounded worker pool
// (oc.Workers). Runs are averaged in repetition order, so the result is
// identical to the sequential path.
func Profile(w Workload, oc OptimizeConfig) ([]profile.Curve, error) {
	oc.fillDefaults()
	app, err := w.Factory()
	if err != nil {
		return nil, err
	}
	entities := app.Entities()
	names := make([]string, len(entities))
	regionOf := make(map[mem.RegionID]int)
	for i, e := range entities {
		names[i] = e.Name
		for _, r := range e.Regions {
			regionOf[r] = i
		}
	}
	geom, err := oc.profileGeom()
	if err != nil {
		return nil, err
	}
	pcfg := profile.Config{
		Sizes:    oc.Sizes,
		UnitSets: rtos.AllocUnit,
		Ways:     geom.Ways,
		LineSize: geom.LineSize,
		Engine:   oc.Engine,
	}
	// Apps are built serially: a workload factory may publish handles to
	// the app it builds (workloads.JPEGCanny / MPEG2 take an optional
	// handle pointer), so only the simulations themselves fan out.
	apps := make([]*App, oc.Runs)
	apps[0] = app
	for r := 1; r < oc.Runs; r++ {
		if apps[r], err = w.Factory(); err != nil {
			return nil, err
		}
	}
	runs := make([][]profile.Curve, oc.Runs)
	jitter := []float64{1.0, 0.85, 1.2, 0.7, 1.4, 0.95, 1.1}
	err = parallel.Do(parallel.Workers(oc.Workers), oc.Runs, func(r int) error {
		prof, err := profile.New(pcfg, names, regionOf)
		if err != nil {
			return err
		}
		rc := RunConfig{
			Platform:     oc.Platform,
			Strategy:     Shared,
			MaxCycles:    oc.MaxCycles,
			L2Observer:   prof.Observe,
			ObserveLevel: oc.ProfileLevel,
		}
		rc.Platform.Sched.Quantum = int64(float64(oc.Platform.Sched.Quantum) * jitter[r%len(jitter)])
		if _, err := RunApp(apps[r], rc); err != nil {
			return fmt.Errorf("core: profiling run %d: %w", r, err)
		}
		runs[r] = prof.Curves()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return profile.Average(runs)
}

// Optimize implements the proposed optimization method of section 3.2:
// profile per-entity miss curves, pin every FIFO to its own size, then
// choose the remaining entities' cache sizes so the expected total number
// of misses is minimal within the available capacity.
func Optimize(w Workload, oc OptimizeConfig) (*OptimizeResult, error) {
	oc.fillDefaults()
	curves, err := Profile(w, oc)
	if err != nil {
		return nil, err
	}
	app, err := w.Factory()
	if err != nil {
		return nil, err
	}
	return OptimizeFromCurves(app, curves, oc)
}

// OptimizeFromCurves runs only the solver stage, for callers that already
// profiled (the experiment harness reuses one profile across solvers).
func OptimizeFromCurves(app *App, curves []profile.Curve, oc OptimizeConfig) (*OptimizeResult, error) {
	oc.fillDefaults()
	entities := app.Entities()
	totalUnits := oc.Platform.PartitionGeom().Sets / rtos.AllocUnit
	budget := totalUnits - oc.RTUnits

	alloc := make(Allocation)
	expected := make(map[string]float64)
	var items []mckp.Item
	var itemEnt []*Entity
	for i := range entities {
		e := &entities[i]
		curve := profile.CurveByEntity(curves, e.Name)
		if curve == nil {
			return nil, fmt.Errorf("core: no curve for entity %q", e.Name)
		}
		if e.Pinned > 0 {
			// FIFOs: cache of the same size as the buffer, so all
			// non-cold accesses hit (paper, section 4.1).
			units := ceilPow2(e.Pinned)
			alloc[e.Name] = units
			expected[e.Name] = curve.At(units)
			budget -= units
			continue
		}
		// Candidates come from oc.Sizes (so a caller can restrict the
		// granularity, e.g. to whole ways) with costs read off the
		// profiled curve, capped at the entity's own footprint: beyond
		// it the curve is flat and larger partitions waste capacity.
		capUnits := ceilPow2(PinnedUnits(e.Bytes))
		item := mckp.Item{Name: e.Name}
		sizes := append([]int(nil), oc.Sizes...)
		sort.Ints(sizes)
		for _, s := range sizes {
			if s > capUnits && len(item.Choices) > 0 {
				break
			}
			item.Choices = append(item.Choices, mckp.Choice{Weight: s, Cost: curve.At(s)})
		}
		items = append(items, item)
		itemEnt = append(itemEnt, e)
	}
	if budget < 0 {
		return nil, fmt.Errorf("core: FIFO pinning alone over-commits the cache by %d units", -budget)
	}

	pick := make([]int, len(items))
	switch oc.Solver {
	case SolverMCKP:
		sol, err := mckp.Solve(items, budget)
		if err != nil {
			return nil, fmt.Errorf("core: mckp: %w", err)
		}
		copy(pick, sol.Pick)
	case SolverILP:
		groups := make([][]ilp.Alternative, len(items))
		for i, it := range items {
			for _, c := range it.Choices {
				groups[i] = append(groups[i], ilp.Alternative{Weight: c.Weight, Cost: c.Cost})
			}
		}
		prob, index := ilp.PartitioningProblem(groups, budget)
		sol, err := ilp.Solve(prob)
		if err != nil {
			return nil, fmt.Errorf("core: ilp: %w", err)
		}
		for i, g := range groups {
			for p := range g {
				if sol.X[index(i, p)] == 1 {
					pick[i] = p
				}
			}
		}
	default:
		return nil, fmt.Errorf("core: unknown solver %v", oc.Solver)
	}
	for i, it := range items {
		ch := it.Choices[pick[i]]
		alloc[itemEnt[i].Name] = ch.Weight
		expected[itemEnt[i].Name] = ch.Cost
	}
	return &OptimizeResult{
		Allocation: alloc,
		Curves:     curves,
		Expected:   expected,
		Budget:     budget,
		Solver:     oc.Solver,
	}, nil
}

// ceilPow2 rounds n up to a power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
