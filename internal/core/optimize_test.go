package core

import (
	"testing"

	"repro/internal/profile"
	"repro/internal/rtos"
)

func optCfg() OptimizeConfig {
	return OptimizeConfig{
		Platform: smallPlatform(), // 512-set L2 = 64 units
		Sizes:    []int{1, 2, 4, 8, 16, 32},
		Runs:     2,
		RTUnits:  2,
	}
}

func TestProfileProducesCurves(t *testing.T) {
	curves, err := Profile(loopStreamWorkload(), optCfg())
	if err != nil {
		t.Fatal(err)
	}
	lc := profile.CurveByEntity(curves, "looper")
	if lc == nil {
		t.Fatal("no looper curve")
	}
	if lc.Accesses == 0 {
		t.Error("looper curve has no accesses")
	}
	// The looper's 32 KiB table thrashes in 1 unit (2 KiB) and fits in
	// 32 units (64 KiB): the curve must fall significantly.
	if lc.Misses[0] < 4*lc.Misses[len(lc.Misses)-1] {
		t.Errorf("looper curve too flat: %v", lc.Misses)
	}
}

func TestOptimizeEndToEnd(t *testing.T) {
	w := loopStreamWorkload()
	oc := optCfg()
	opt, err := Optimize(w, oc)
	if err != nil {
		t.Fatal(err)
	}
	// Feasibility.
	total := opt.Allocation.TotalUnits()
	if total > 64-oc.RTUnits {
		t.Fatalf("allocation %d units exceeds budget", total)
	}
	// FIFO pinned to its size.
	if opt.Allocation["sync"] != 1 {
		t.Errorf("FIFO allocation = %d, want pinned 1", opt.Allocation["sync"])
	}
	// The looper should receive a big partition (its curve falls), the
	// streamer's allocation should not exceed the looper's.
	if opt.Allocation["looper"] < 8 {
		t.Errorf("looper allocation = %d, want >= 8", opt.Allocation["looper"])
	}
	// Every entity has an allocation and an expectation.
	app, _ := w.Factory()
	for _, e := range app.Entities() {
		if opt.Allocation[e.Name] == 0 {
			t.Errorf("entity %q has no allocation", e.Name)
		}
		if _, ok := opt.Expected[e.Name]; !ok {
			t.Errorf("entity %q has no expectation", e.Name)
		}
	}

	// The optimized partitioned system must beat the shared baseline.
	shared, err := Run(w, RunConfig{Platform: oc.Platform})
	if err != nil {
		t.Fatal(err)
	}
	part, err := Run(w, RunConfig{
		Platform: oc.Platform, Strategy: Partitioned,
		Alloc: opt.Allocation, RTUnits: oc.RTUnits,
	})
	if err != nil {
		t.Fatal(err)
	}
	if part.TotalMisses() >= shared.TotalMisses() {
		t.Errorf("optimized partitioning (%d misses) not better than shared (%d)",
			part.TotalMisses(), shared.TotalMisses())
	}

	// Figure 3: the model's expectations must match the partitioned
	// simulation closely (the paper reports <= 2%; allow slack for the
	// small test workload).
	rep := CompareExpectedSimulated(opt.Expected, part)
	if rep.MaxRelDiff > 0.10 {
		t.Errorf("compositionality violated: max rel diff %.3f", rep.MaxRelDiff)
	}
}

func TestOptimizeILPAgreesWithMCKP(t *testing.T) {
	w := loopStreamWorkload()
	oc := optCfg()
	oc.Runs = 1
	curves, err := Profile(w, oc)
	if err != nil {
		t.Fatal(err)
	}
	app1, _ := w.Factory()
	mc, err := OptimizeFromCurves(app1, curves, oc)
	if err != nil {
		t.Fatal(err)
	}
	oc.Solver = SolverILP
	app2, _ := w.Factory()
	il, err := OptimizeFromCurves(app2, curves, oc)
	if err != nil {
		t.Fatal(err)
	}
	var mcCost, ilCost float64
	for n, e := range mc.Expected {
		mcCost += e
		_ = n
	}
	for _, e := range il.Expected {
		ilCost += e
	}
	if diff := mcCost - ilCost; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("solver disagreement: mckp %.1f vs ilp %.1f", mcCost, ilCost)
	}
}

func TestOptimizeFromCurvesMissingEntity(t *testing.T) {
	w := loopStreamWorkload()
	app, _ := w.Factory()
	_, err := OptimizeFromCurves(app, nil, optCfg())
	if err == nil {
		t.Fatal("missing curves accepted")
	}
}

func TestOptimizeDefaultsFilled(t *testing.T) {
	oc := OptimizeConfig{Platform: smallPlatform()}
	oc.fillDefaults()
	if len(oc.Sizes) == 0 || oc.Runs == 0 || oc.RTUnits == 0 {
		t.Error("defaults not filled")
	}
}

func TestCeilPow2(t *testing.T) {
	for in, want := range map[int]int{1: 1, 2: 2, 3: 4, 9: 16, 16: 16} {
		if got := ceilPow2(in); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestUnitBytesConsistent(t *testing.T) {
	// One unit of the default platform geometry: 8 sets × 4 ways × 64 B.
	if UnitBytes != rtos.AllocUnit*4*64 {
		t.Errorf("UnitBytes = %d", UnitBytes)
	}
}
