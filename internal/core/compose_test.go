package core

import (
	"math"
	"testing"
)

func TestCompareExpectedSimulated(t *testing.T) {
	res := &Result{Entities: []EntityResult{
		{Name: "a", Misses: 100},
		{Name: "b", Misses: 300},
		{Name: "c", Misses: 600},
	}}
	expected := map[string]float64{"a": 110, "b": 300, "c": 590}
	rep := CompareExpectedSimulated(expected, res)
	if rep.TotalSimulated != 1000 {
		t.Fatalf("total = %d", rep.TotalSimulated)
	}
	if len(rep.Entries) != 3 {
		t.Fatalf("entries = %d", len(rep.Entries))
	}
	// a: |110-100|/1000 = 0.01; c: 0.01; b: 0.
	if math.Abs(rep.MaxRelDiff-0.01) > 1e-9 {
		t.Errorf("max rel diff = %v", rep.MaxRelDiff)
	}
	wantMean := (0.01 + 0 + 0.01) / 3
	if math.Abs(rep.MeanRelDiff-wantMean) > 1e-9 {
		t.Errorf("mean rel diff = %v", rep.MeanRelDiff)
	}
	if !rep.Compositional(0.02) {
		t.Error("should be compositional at the paper's threshold")
	}
	if rep.Compositional(0.005) {
		t.Error("should not be compositional at a tighter threshold")
	}
}

func TestCompareSkipsUnknownEntities(t *testing.T) {
	res := &Result{Entities: []EntityResult{{Name: "a", Misses: 10}}}
	rep := CompareExpectedSimulated(map[string]float64{"a": 10, "ghost": 99}, res)
	if len(rep.Entries) != 1 {
		t.Errorf("entries = %d, want 1", len(rep.Entries))
	}
}

func TestCompareEmptyTotal(t *testing.T) {
	res := &Result{Entities: []EntityResult{{Name: "a", Misses: 0}}}
	rep := CompareExpectedSimulated(map[string]float64{"a": 5}, res)
	if math.IsNaN(rep.MaxRelDiff) || math.IsInf(rep.MaxRelDiff, 0) {
		t.Error("division by zero in rel diff")
	}
}

func TestCompareDeterministicOrder(t *testing.T) {
	res := &Result{Entities: []EntityResult{
		{Name: "z", Misses: 1}, {Name: "a", Misses: 1},
	}}
	rep := CompareExpectedSimulated(map[string]float64{"z": 1, "a": 1}, res)
	if rep.Entries[0].Name != "a" || rep.Entries[1].Name != "z" {
		t.Error("entries not sorted by name")
	}
}
