package core

import "sort"

// ComposeEntry compares, for one entity, the misses the model expected
// (isolated-profile prediction at the allocated size) with the misses
// simulated in the full partitioned system — one bar pair of Figure 3.
type ComposeEntry struct {
	Name      string
	Expected  float64
	Simulated uint64
	// RelDiff is |expected − simulated| relative to the overall
	// simulated miss count, the paper's compositionality metric ("the
	// largest difference for a task between the expected and simulated
	// number of misses relative to the overall simulated number of
	// misses is 2%").
	RelDiff float64
}

// ComposeReport is the Figure 3 analysis for one application.
type ComposeReport struct {
	Entries        []ComposeEntry
	TotalSimulated uint64
	MaxRelDiff     float64
	MeanRelDiff    float64
}

// Compositional reports whether the system meets the paper's criterion at
// the given threshold (the paper observes 0.02).
func (r *ComposeReport) Compositional(threshold float64) bool {
	return r.MaxRelDiff <= threshold
}

// CompareExpectedSimulated builds the Figure 3 report from the optimizer's
// expectations and a partitioned-run result.
func CompareExpectedSimulated(expected map[string]float64, res *Result) *ComposeReport {
	rep := &ComposeReport{TotalSimulated: res.TotalMisses()}
	total := float64(rep.TotalSimulated)
	if total == 0 {
		total = 1
	}
	names := make([]string, 0, len(expected))
	for n := range expected {
		names = append(names, n)
	}
	sort.Strings(names)
	var sum float64
	for _, name := range names {
		er := res.Entity(name)
		if er == nil {
			continue
		}
		exp := expected[name]
		diff := exp - float64(er.Misses)
		if diff < 0 {
			diff = -diff
		}
		e := ComposeEntry{
			Name:      name,
			Expected:  exp,
			Simulated: er.Misses,
			RelDiff:   diff / total,
		}
		rep.Entries = append(rep.Entries, e)
		sum += e.RelDiff
		if e.RelDiff > rep.MaxRelDiff {
			rep.MaxRelDiff = e.RelDiff
		}
	}
	if len(rep.Entries) > 0 {
		rep.MeanRelDiff = sum / float64(len(rep.Entries))
	}
	return rep
}
