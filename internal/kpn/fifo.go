package kpn

import (
	"fmt"

	"repro/internal/mem"
)

// FIFO is a bounded YAPI channel. Tokens are fixed-size byte blocks held
// in a ring buffer inside a dedicated region of the simulated address
// space, so every production and consumption generates the memory traffic
// the L2 cache sees on the real platform. Reads on an empty open FIFO and
// writes on a full FIFO block the calling task (Kahn semantics with the
// bounded-FIFO extension of practical YAPI).
type FIFO struct {
	Name       string
	Region     *mem.Region
	TokenBytes int
	Cap        int // capacity in tokens

	head     uint64 // consumed tokens (monotonic)
	tail     uint64 // produced tokens (monotonic)
	closed   bool
	produced uint64
	consumed uint64
	maxDepth int
}

// NewFIFO creates a FIFO backed by its own region inside as. The region
// name is the FIFO name, kind KindFIFO, so the cache partitioner can give
// the buffer its own exclusive sets.
func NewFIFO(as *mem.AddressSpace, name string, tokenBytes, capTokens int) (*FIFO, error) {
	if tokenBytes <= 0 || capTokens <= 0 {
		return nil, fmt.Errorf("kpn: fifo %q: token %dB cap %d invalid", name, tokenBytes, capTokens)
	}
	r, err := as.Alloc(name, mem.KindFIFO, "", uint64(tokenBytes*capTokens))
	if err != nil {
		return nil, err
	}
	return &FIFO{Name: name, Region: r, TokenBytes: tokenBytes, Cap: capTokens}, nil
}

// MustNewFIFO is NewFIFO that panics on error.
func MustNewFIFO(as *mem.AddressSpace, name string, tokenBytes, capTokens int) *FIFO {
	f, err := NewFIFO(as, name, tokenBytes, capTokens)
	if err != nil {
		panic(err)
	}
	return f
}

// Len returns the number of tokens currently buffered.
func (f *FIFO) Len() int { return int(f.tail - f.head) }

// Empty reports whether no token is buffered.
func (f *FIFO) Empty() bool { return f.tail == f.head }

// Full reports whether the buffer is at capacity.
func (f *FIFO) Full() bool { return f.Len() >= f.Cap }

// Closed reports whether the producer has signalled end of stream.
func (f *FIFO) Closed() bool { return f.closed }

// Produced returns the total number of tokens ever written.
func (f *FIFO) Produced() uint64 { return f.produced }

// Consumed returns the total number of tokens ever read.
func (f *FIFO) Consumed() uint64 { return f.consumed }

// MaxDepth returns the high-water mark in tokens.
func (f *FIFO) MaxDepth() int { return f.maxDepth }

// Close marks the end of the stream. Subsequent reads drain the buffer
// and then return false. Closing twice is a no-op; writing after Close
// panics. The closing task passes its Ctx so trace capture records the
// close at its exact position in the task's stream (the point at which
// blocked readers become eligible to observe EOF); c may be nil in
// engine-external teardown (tests).
func (f *FIFO) Close(c *Ctx) {
	f.closed = true
	if c != nil && c.rec != nil && c.recMute == 0 {
		c.rec.RecordFIFOClose(f)
	}
}

// Write blocks until space is available, then copies one token into the
// ring buffer, charging the memory accesses to the FIFO's region.
// Capture records it as a single event — the internal StoreBytes is
// suppressed — and replay re-issues the real Write, regenerating the
// identical blocking condition, ring-slot traffic and statistics.
func (f *FIFO) Write(c *Ctx, tok []byte) {
	if len(tok) != f.TokenBytes {
		panic(fmt.Sprintf("kpn: fifo %q: write of %d bytes, token is %d", f.Name, len(tok), f.TokenBytes))
	}
	if f.closed {
		panic(fmt.Sprintf("kpn: fifo %q: write after close", f.Name))
	}
	c.muteRecord()
	c.WaitFor(func() bool { return !f.Full() }, f)
	slot := (f.tail % uint64(f.Cap)) * uint64(f.TokenBytes)
	c.StoreBytes(f.Region, slot, tok)
	c.unmuteRecord()
	f.tail++
	f.produced++
	if d := f.Len(); d > f.maxDepth {
		f.maxDepth = d
	}
	if c.rec != nil && c.recMute == 0 {
		c.rec.RecordFIFOWrite(f)
	}
}

// Read blocks until a token is available, copies it into tok and returns
// true; it returns false when the FIFO is closed and drained (EOF).
// Like Write, capture records it as one event (carrying the EOF flag,
// which replay verifies) with the internal LoadBytes suppressed.
func (f *FIFO) Read(c *Ctx, tok []byte) bool {
	if len(tok) != f.TokenBytes {
		panic(fmt.Sprintf("kpn: fifo %q: read of %d bytes, token is %d", f.Name, len(tok), f.TokenBytes))
	}
	c.muteRecord()
	c.WaitFor(func() bool { return !f.Empty() || f.closed }, f)
	ok := !f.Empty()
	if ok {
		slot := (f.head % uint64(f.Cap)) * uint64(f.TokenBytes)
		c.LoadBytes(f.Region, slot, tok)
		f.head++
		f.consumed++
	}
	c.unmuteRecord()
	if c.rec != nil && c.recMute == 0 {
		c.rec.RecordFIFORead(f, ok)
	}
	return ok
}

// Write32 writes one 4-byte token holding v (for FIFOs with TokenBytes 4).
func (f *FIFO) Write32(c *Ctx, v uint32) {
	var b [4]byte
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	f.Write(c, b[:])
}

// Read32 reads one 4-byte token; ok is false at EOF.
func (f *FIFO) Read32(c *Ctx) (v uint32, ok bool) {
	var b [4]byte
	if !f.Read(c, b[:]) {
		return 0, false
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, true
}

// Frame is a YAPI frame buffer: a 2-D pixel array in its own region,
// produced completely by one task before being consumed by another (the
// paper's observation that frame access is intrinsically sequential, so an
// exclusive partition preserves compositionality).
type Frame struct {
	Name   string
	Region *mem.Region
	Width  int
	Height int
	Pixel  int // bytes per pixel
}

// NewFrame allocates a frame buffer region (kind KindFrame).
func NewFrame(as *mem.AddressSpace, name string, w, h, pixelBytes int) (*Frame, error) {
	if w <= 0 || h <= 0 || pixelBytes <= 0 {
		return nil, fmt.Errorf("kpn: frame %q: %dx%dx%d invalid", name, w, h, pixelBytes)
	}
	r, err := as.Alloc(name, mem.KindFrame, "", uint64(w*h*pixelBytes))
	if err != nil {
		return nil, err
	}
	return &Frame{Name: name, Region: r, Width: w, Height: h, Pixel: pixelBytes}, nil
}

// MustNewFrame is NewFrame that panics on error.
func MustNewFrame(as *mem.AddressSpace, name string, w, h, pixelBytes int) *Frame {
	f, err := NewFrame(as, name, w, h, pixelBytes)
	if err != nil {
		panic(err)
	}
	return f
}

func (fr *Frame) offset(x, y int) uint64 {
	if x < 0 || y < 0 || x >= fr.Width || y >= fr.Height {
		panic(fmt.Sprintf("kpn: frame %q: pixel (%d,%d) outside %dx%d", fr.Name, x, y, fr.Width, fr.Height))
	}
	return uint64((y*fr.Width + x) * fr.Pixel)
}

// Load8 reads the byte at pixel (x,y) (for 1-byte-per-pixel frames).
func (fr *Frame) Load8(c *Ctx, x, y int) byte {
	return c.Load8(fr.Region, fr.offset(x, y))
}

// Store8 writes the byte at pixel (x,y).
func (fr *Frame) Store8(c *Ctx, x, y int, v byte) {
	c.Store8(fr.Region, fr.offset(x, y), v)
}

// Load32 reads the 32-bit pixel at (x,y) (for 4-byte-per-pixel frames).
func (fr *Frame) Load32(c *Ctx, x, y int) uint32 {
	return c.Load32(fr.Region, fr.offset(x, y))
}

// Store32 writes the 32-bit pixel at (x,y).
func (fr *Frame) Store32(c *Ctx, x, y int, v uint32) {
	c.Store32(fr.Region, fr.offset(x, y), v)
}

// LoadRow copies a whole pixel row into dst (len = Width*Pixel bytes).
func (fr *Frame) LoadRow(c *Ctx, y int, dst []byte) {
	c.LoadBytes(fr.Region, fr.offset(0, y), dst)
}

// StoreRow writes a whole pixel row from src.
func (fr *Frame) StoreRow(c *Ctx, y int, src []byte) {
	c.StoreBytes(fr.Region, fr.offset(0, y), src)
}
