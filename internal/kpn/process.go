// Package kpn implements the YAPI-style application model of the paper: a
// Kahn process network of parallel tasks communicating through bounded
// FIFOs and frame buffers (de Kock et al., DAC 2000).
//
// Every task runs as a goroutine in strict handoff with the platform
// engine: exactly one task executes at any instant, resumed and yielded
// over private channels, so simulation is deterministic. Task code
// performs all memory traffic through a Ctx, which moves real bytes in
// the simulated address space (internal/mem) and charges cycles through
// the memory hierarchy of the processor the task currently occupies.
package kpn

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Memory is the timing-model side of the memory system; it is implemented
// by cache.Hierarchy and by test stubs.
type Memory interface {
	AccessAt(a trace.Access, now uint64) uint64
}

// State enumerates the lifecycle of a process.
type State uint8

// Process states.
const (
	Created State = iota
	Ready
	Running
	Blocked
	Done
	Failed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Created:
		return "created"
	case Ready:
		return "ready"
	case Blocked:
		return "blocked"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// YieldReason says why a task returned control to the engine.
type YieldReason uint8

// Yield reasons.
const (
	YieldQuantum YieldReason = iota // slice budget exhausted
	YieldBlocked                    // waiting on a FIFO condition
	YieldDone                       // body returned
	YieldFailed                     // body panicked
)

// Yield is the message a task sends back to the engine.
type Yield struct {
	Reason YieldReason
	CanRun func() bool // when Blocked: condition to re-test
	On     *FIFO       // when Blocked: the FIFO waited on (diagnostics)
	Err    error       // when Failed
}

type resumeMsg struct {
	core   *cpu.Core
	mem    Memory
	budget int64
	kill   bool
}

type killSignal struct{}

// Process is one YAPI task.
type Process struct {
	Name string
	Body func(*Ctx)

	// Private sections, allocated by the application builder. Code is
	// required (instruction fetches are modelled); Heap holds the
	// task's tables and scratch arrays; Stack is charged by the Exec
	// model only.
	Code  *mem.Region
	Stack *mem.Region
	Heap  *mem.Region

	// HotCode is the size in bytes of the task's inner-loop footprint;
	// instruction fetches cycle through it. 0 means the whole Code
	// region.
	HotCode uint64

	state  State
	ctx    *Ctx
	resume chan resumeMsg
	yield  chan Yield
	last   Yield
}

// State returns the process state.
func (p *Process) State() State { return p.state }

// LastYield returns the most recent yield message.
func (p *Process) LastYield() Yield { return p.last }

// Ctx returns the process's execution context (valid after Start).
func (p *Process) Ctx() *Ctx { return p.ctx }

// ConsumedCycles returns the execution plus memory-stall cycles this task
// consumed so far — the T_i(z_i) term of the paper's throughput model
// (section 3.1). It excludes switch and idle overhead, which the model
// accounts separately.
func (p *Process) ConsumedCycles() uint64 {
	if p.ctx == nil {
		return 0
	}
	return p.ctx.consumed
}

// Start launches the task goroutine; the task does not execute until the
// first RunSlice.
func (p *Process) Start() {
	if p.state != Created {
		panic(fmt.Sprintf("kpn: Start on process %q in state %v", p.Name, p.state))
	}
	if p.Body == nil {
		panic(fmt.Sprintf("kpn: process %q has no body", p.Name))
	}
	if p.Code == nil {
		panic(fmt.Sprintf("kpn: process %q has no code region", p.Name))
	}
	p.resume = make(chan resumeMsg)
	p.yield = make(chan Yield)
	p.ctx = newCtx(p)
	p.state = Ready
	go p.run()
}

func (p *Process) run() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSignal); ok {
				return // engine tear-down
			}
			p.yield <- Yield{Reason: YieldFailed, Err: fmt.Errorf("kpn: process %q: %v", p.Name, r)}
			return
		}
		p.yield <- Yield{Reason: YieldDone}
	}()
	p.ctx.awaitResume()
	p.Body(p.ctx)
}

// RunSlice resumes the task on the given core with the given cycle budget
// and blocks until it yields. It must only be called when Runnable.
func (p *Process) RunSlice(core *cpu.Core, memory Memory, budget int64) Yield {
	switch p.state {
	case Ready, Blocked:
	default:
		panic(fmt.Sprintf("kpn: RunSlice on process %q in state %v", p.Name, p.state))
	}
	p.state = Running
	p.resume <- resumeMsg{core: core, mem: memory, budget: budget}
	y := <-p.yield
	p.last = y
	switch y.Reason {
	case YieldQuantum:
		p.state = Ready
	case YieldBlocked:
		p.state = Blocked
	case YieldDone:
		p.state = Done
	case YieldFailed:
		p.state = Failed
	}
	return y
}

// Runnable reports whether the process can make progress: Ready, or
// Blocked with a now-satisfied condition.
func (p *Process) Runnable() bool {
	switch p.state {
	case Ready:
		return true
	case Blocked:
		return p.last.CanRun == nil || p.last.CanRun()
	}
	return false
}

// Kill tears down a not-yet-finished process goroutine (used on abnormal
// engine shutdown). It is a no-op for Done/Failed processes.
func (p *Process) Kill() {
	switch p.state {
	case Ready, Blocked:
		p.resume <- resumeMsg{kill: true}
		p.state = Failed
	}
}

// Ctx is the execution context handed to a task body. All methods must be
// called from the task goroutine only.
type Ctx struct {
	proc *Process

	core   *cpu.Core
	memsys Memory
	budget int64

	fetchCursor uint64
	instrAccum  uint64
	lineSize    uint64
	consumed    uint64 // execution + stall cycles attributed to this task
}

func newCtx(p *Process) *Ctx {
	return &Ctx{proc: p, lineSize: 64}
}

// awaitResume parks the goroutine until the engine grants a slice.
func (c *Ctx) awaitResume() {
	m := <-c.proc.resume
	if m.kill {
		panic(killSignal{})
	}
	c.core = m.core
	c.memsys = m.mem
	c.budget = m.budget
}

// yieldAndWait hands control back and parks until the next slice.
func (c *Ctx) yieldAndWait(y Yield) {
	c.proc.yield <- y
	c.awaitResume()
}

// maybeYield yields when the slice budget is exhausted.
func (c *Ctx) maybeYield() {
	if c.budget <= 0 {
		c.yieldAndWait(Yield{Reason: YieldQuantum})
	}
}

// WaitFor blocks the task until cond holds. It is the primitive beneath
// FIFO read/write and is exported for custom synchronization in tests.
func (c *Ctx) WaitFor(cond func() bool, on *FIFO) {
	for !cond() {
		c.yieldAndWait(Yield{Reason: YieldBlocked, CanRun: cond, On: on})
	}
}

// Process returns the owning process.
func (c *Ctx) Process() *Process { return c.proc }

// Core returns the core currently executing the task (valid inside the
// body between resumes; the scheduler may migrate the task).
func (c *Ctx) Core() *cpu.Core { return c.core }

// Heap returns the task's heap region.
func (c *Ctx) Heap() *mem.Region { return c.proc.Heap }

// Now returns the local time of the current core.
func (c *Ctx) Now() uint64 { return c.core.Now() }

// Exec retires n instructions: advances time by n*BaseCPI and issues one
// instruction fetch per cache line's worth of instructions (4-byte
// instruction words), cycling through the task's hot code footprint.
func (c *Ctx) Exec(n uint64) {
	hot := c.proc.HotCode
	if hot == 0 || hot > c.proc.Code.Size {
		hot = c.proc.Code.Size
	}
	instrPerLine := c.lineSize / 4
	for n > 0 {
		step := instrPerLine - c.instrAccum%instrPerLine
		if step > n {
			step = n
		}
		cyc := c.core.Exec(step)
		c.budget -= int64(cyc)
		c.consumed += cyc
		c.instrAccum += step
		n -= step
		if c.instrAccum%instrPerLine == 0 {
			a := trace.Access{
				Addr:   c.proc.Code.Base + c.fetchCursor,
				Size:   uint8(c.lineSize),
				Op:     trace.Fetch,
				Region: c.proc.Code.ID,
			}
			c.charge(a)
			c.fetchCursor += c.lineSize
			if c.fetchCursor >= hot {
				c.fetchCursor = 0
			}
		}
		c.maybeYield()
	}
}

// charge sends one access through the memory system and stalls the core.
func (c *Ctx) charge(a trace.Access) {
	lat := c.memsys.AccessAt(a, c.core.Now())
	c.core.Stall(lat)
	c.budget -= int64(lat)
	c.consumed += lat
}

// access issues a data access and yields if the budget ran out.
func (c *Ctx) access(a trace.Access) {
	c.charge(a)
	c.maybeYield()
}

// Load32 reads a 32-bit word from a region, charging the access.
func (c *Ctx) Load32(r *mem.Region, off uint64) uint32 {
	v, err := r.Load32(off)
	if err != nil {
		panic(err)
	}
	c.access(trace.Access{Addr: r.Base + off, Size: 4, Op: trace.Read, Region: r.ID})
	return v
}

// Store32 writes a 32-bit word to a region, charging the access.
func (c *Ctx) Store32(r *mem.Region, off uint64, v uint32) {
	if err := r.Store32(off, v); err != nil {
		panic(err)
	}
	c.access(trace.Access{Addr: r.Base + off, Size: 4, Op: trace.Write, Region: r.ID})
}

// Load8 reads one byte from a region, charging the access.
func (c *Ctx) Load8(r *mem.Region, off uint64) byte {
	v, err := r.Load8(off)
	if err != nil {
		panic(err)
	}
	c.access(trace.Access{Addr: r.Base + off, Size: 1, Op: trace.Read, Region: r.ID})
	return v
}

// Store8 writes one byte to a region, charging the access.
func (c *Ctx) Store8(r *mem.Region, off uint64, v byte) {
	if err := r.Store8(off, v); err != nil {
		panic(err)
	}
	c.access(trace.Access{Addr: r.Base + off, Size: 1, Op: trace.Write, Region: r.ID})
}

// LoadBytes copies len(dst) bytes out of a region with word-granular
// charged accesses, the pattern of a memcpy loop.
func (c *Ctx) LoadBytes(r *mem.Region, off uint64, dst []byte) {
	backing := r.Bytes()
	if off+uint64(len(dst)) > r.Size {
		panic(fmt.Sprintf("kpn: LoadBytes out of range: %s off=%d len=%d", r.Name, off, len(dst)))
	}
	copy(dst, backing[off:off+uint64(len(dst))])
	c.chargeBulk(r, off, uint64(len(dst)), trace.Read)
}

// StoreBytes copies src into a region with word-granular charged accesses.
func (c *Ctx) StoreBytes(r *mem.Region, off uint64, src []byte) {
	backing := r.Bytes()
	if off+uint64(len(src)) > r.Size {
		panic(fmt.Sprintf("kpn: StoreBytes out of range: %s off=%d len=%d", r.Name, off, len(src)))
	}
	copy(backing[off:off+uint64(len(src))], src)
	c.chargeBulk(r, off, uint64(len(src)), trace.Write)
}

// chargeBulk issues one 4-byte access per word of a bulk transfer.
func (c *Ctx) chargeBulk(r *mem.Region, off, n uint64, op trace.Op) {
	for done := uint64(0); done < n; done += 4 {
		sz := n - done
		if sz > 4 {
			sz = 4
		}
		c.access(trace.Access{Addr: r.Base + off + done, Size: uint8(sz), Op: op, Region: r.ID})
	}
}
