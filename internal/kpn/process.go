// Package kpn implements the YAPI-style application model of the paper: a
// Kahn process network of parallel tasks communicating through bounded
// FIFOs and frame buffers (de Kock et al., DAC 2000).
//
// Every task runs as a goroutine in strict handoff with the platform
// engine: exactly one task executes at any instant, resumed and yielded
// over private channels, so simulation is deterministic. Task code
// performs all memory traffic through a Ctx, which moves real bytes in
// the simulated address space (internal/mem) and charges cycles through
// the memory hierarchy of the processor the task currently occupies.
package kpn

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Memory is the timing-model side of the memory system; it is implemented
// by cache.Hierarchy and by test stubs.
type Memory interface {
	AccessAt(a trace.Access, now uint64) uint64
}

// LineMemory extends Memory with the contract of the exact line-merged
// fast path (implemented by cache.Hierarchy). Because tasks run in strict
// handoff — exactly one task executes at any instant — accesses of one
// task to a line it touched before (with no intervening walk into that
// line's private-cache set) are provably served as repeats of the first
// access: L1 hits, or merged bypass bursts. The Ctx tracks such lines in
// a per-set register file, charges repeat latencies as they occur, and
// retires each line's cache-state commit in one CommitRepeats call
// instead of one AccessAt walk per word. Memory implementations without
// these hooks (test stubs) are driven word-granularly, which is also the
// reference-oracle behavior behind Process.WordExact.
type LineMemory interface {
	Memory
	// FastSpec returns the register-file geometry: line shift, number of
	// private-cache sets (0 disables cacheable batching), and the
	// per-repeat latency of the cacheable and bypass repeat classes.
	FastSpec() (shift uint, sets int, hitLat, mergeLat uint64)
	// CacheableLine reports whether the region's lines may live in the
	// private cache (false selects the bypass burst-merge class).
	CacheableLine(region mem.RegionID) bool
	// ChargeLine walks the hierarchy for one single-line access and
	// reports what the register file needs to track residency: the
	// repeat class, whether the private cache filled, and the line a
	// fill evicted (victim line address + 1; 0 = none).
	ChargeLine(lineAddr uint64, write bool, region mem.RegionID, now uint64) (lat uint64, cacheable, filled bool, evicted uint64)
	// CommitRepeats commits reads+writes coalesced repeats of the line in
	// one call, leaving cache state and statistics exactly as the
	// word-granular walk would.
	CommitRepeats(lineAddr uint64, region mem.RegionID, reads, writes uint64, merge bool)
}

// Recorder observes the Ctx-level operation stream of one task — the
// exact vocabulary a recorded trace needs to reproduce the task's
// timing behavior without re-running its computation (internal/tracefile
// implements it for trace capture).
//
// The vocabulary is chosen for bit-exact replay:
//
//   - Exec counts are recorded per call and never coalesced or split:
//     the engine tests the slice budget after every internal step and
//     accumulates fractional cycles, so yield points — and with them the
//     whole schedule — are sensitive to call boundaries.
//   - Instruction fetches are NOT recorded: Exec regenerates them
//     deterministically from the task's code region and hot-code cursor.
//   - FIFO operations are recorded as single events and the buffer
//     traffic inside them is suppressed: replay re-issues the real FIFO
//     operation, which regenerates identical ring-slot traffic, blocking
//     conditions and depth statistics.
//
// All methods are called from the task goroutine, strictly in program
// order.
type Recorder interface {
	RecordExec(n uint64)
	RecordAccess(a trace.Access)
	RecordBulk(region mem.RegionID, off, n uint64, op trace.Op)
	RecordFIFOWrite(f *FIFO)
	RecordFIFORead(f *FIFO, ok bool)
	RecordFIFOClose(f *FIFO)
}

// State enumerates the lifecycle of a process.
type State uint8

// Process states.
const (
	Created State = iota
	Ready
	Running
	Blocked
	Done
	Failed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Created:
		return "created"
	case Ready:
		return "ready"
	case Blocked:
		return "blocked"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// YieldReason says why a task returned control to the engine.
type YieldReason uint8

// Yield reasons.
const (
	YieldQuantum YieldReason = iota // slice budget exhausted
	YieldBlocked                    // waiting on a FIFO condition
	YieldDone                       // body returned
	YieldFailed                     // body panicked
)

// Yield is the message a task sends back to the engine.
type Yield struct {
	Reason YieldReason
	CanRun func() bool // when Blocked: condition to re-test
	On     *FIFO       // when Blocked: the FIFO waited on (diagnostics)
	Err    error       // when Failed
}

type resumeMsg struct {
	core   *cpu.Core
	mem    Memory
	budget int64
	kill   bool
}

type killSignal struct{}

// ctxLineSize is the instruction-fetch granularity of the execution
// model: one 64 B line of 4 B instruction words.
const ctxLineSize = 64

// Process is one YAPI task.
type Process struct {
	Name string
	Body func(*Ctx)

	// Private sections, allocated by the application builder. Code is
	// required (instruction fetches are modelled); Heap holds the
	// task's tables and scratch arrays; Stack is charged by the Exec
	// model only.
	Code  *mem.Region
	Stack *mem.Region
	Heap  *mem.Region

	// HotCode is the size in bytes of the task's inner-loop footprint;
	// instruction fetches cycle through it. 0 means the whole Code
	// region.
	HotCode uint64

	// WordExact forces the reference oracle: every access is charged
	// word-granularly through a full Memory.AccessAt walk, with no
	// line-run coalescing. Must be set before Start. The platform engine
	// sets it from platform.Config.Engine; differential tests prove the
	// default fast path bit-identical to this path.
	WordExact bool

	// Recorder, when non-nil, observes the task's Ctx-level operation
	// stream (trace capture). Must be set before Start.
	Recorder Recorder

	// MaxLeafSets is a sizing hint: the largest leaf-cache set count the
	// task can encounter on any processor of its platform. When set
	// (platform.AddTask stamps it from the instantiated topology), the
	// line-register file is sized for the largest geometry up front and a
	// resume that hands the task a smaller leaf merely re-slices it —
	// heterogeneous per-CPU geometries no longer reallocate the file on
	// every migration between differently-sized leaves. 0 means unknown:
	// the file grows to each new maximum as geometries are encountered.
	MaxLeafSets int

	// Arena, when non-nil, provides the task's per-simulation mutable
	// state (the line-register file and its dirty list) from the
	// platform's bump arena instead of the heap. platform.AddTask stamps
	// it. Safe despite the arena not being lock-protected: tasks execute
	// in strict handoff (exactly one goroutine of the platform runs at
	// any instant, with channel synchronization between handoffs), so
	// arena access is serialized.
	Arena *arena.Arena

	state  State
	ctx    *Ctx
	resume chan resumeMsg
	yield  chan Yield
	last   Yield
}

// State returns the process state.
func (p *Process) State() State { return p.state }

// LastYield returns the most recent yield message.
func (p *Process) LastYield() Yield { return p.last }

// Ctx returns the process's execution context (valid after Start).
func (p *Process) Ctx() *Ctx { return p.ctx }

// ConsumedCycles returns the execution plus memory-stall cycles this task
// consumed so far — the T_i(z_i) term of the paper's throughput model
// (section 3.1). It excludes switch and idle overhead, which the model
// accounts separately.
func (p *Process) ConsumedCycles() uint64 {
	if p.ctx == nil {
		return 0
	}
	return p.ctx.consumed
}

// Start launches the task goroutine; the task does not execute until the
// first RunSlice.
func (p *Process) Start() {
	if p.state != Created {
		panic(fmt.Sprintf("kpn: Start on process %q in state %v", p.Name, p.state))
	}
	if p.Body == nil {
		panic(fmt.Sprintf("kpn: process %q has no body", p.Name))
	}
	if p.Code == nil {
		panic(fmt.Sprintf("kpn: process %q has no code region", p.Name))
	}
	p.resume = make(chan resumeMsg)
	p.yield = make(chan Yield)
	p.ctx = newCtx(p)
	p.state = Ready
	go p.run()
}

func (p *Process) run() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSignal); ok {
				return // engine tear-down
			}
			// Retire any pending commits the body left behind so counters
			// stay consistent. flushEntry zeroes each register before
			// committing, so a panic raised by the flush itself cannot
			// recurse here.
			p.ctx.flushAll()
			p.yield <- Yield{Reason: YieldFailed, Err: fmt.Errorf("kpn: process %q: %v", p.Name, r)}
			return
		}
		p.ctx.flushAll()
		p.yield <- Yield{Reason: YieldDone}
	}()
	p.ctx.awaitResume()
	p.Body(p.ctx)
}

// RunSlice resumes the task on the given core with the given cycle budget
// and blocks until it yields. It must only be called when Runnable.
func (p *Process) RunSlice(core *cpu.Core, memory Memory, budget int64) Yield {
	switch p.state {
	case Ready, Blocked:
	default:
		panic(fmt.Sprintf("kpn: RunSlice on process %q in state %v", p.Name, p.state))
	}
	p.state = Running
	p.resume <- resumeMsg{core: core, mem: memory, budget: budget}
	y := <-p.yield
	p.last = y
	switch y.Reason {
	case YieldQuantum:
		p.state = Ready
	case YieldBlocked:
		p.state = Blocked
	case YieldDone:
		p.state = Done
	case YieldFailed:
		p.state = Failed
	}
	return y
}

// Runnable reports whether the process can make progress: Ready, or
// Blocked with a now-satisfied condition.
func (p *Process) Runnable() bool {
	switch p.state {
	case Ready:
		return true
	case Blocked:
		return p.last.CanRun == nil || p.last.CanRun()
	}
	return false
}

// Kill tears down a not-yet-finished process goroutine (used on abnormal
// engine shutdown). It is a no-op for Done/Failed processes.
func (p *Process) Kill() {
	switch p.state {
	case Ready, Blocked:
		p.resume <- resumeMsg{kill: true}
		p.state = Failed
	}
}

// Ctx is the execution context handed to a task body. All methods must be
// called from the task goroutine only.
type Ctx struct {
	proc *Process

	core   *cpu.Core
	memsys Memory
	budget int64

	fetchCursor uint64
	instrAccum  uint64
	consumed    uint64 // execution + stall cycles attributed to this task

	// rec observes the task's operation stream during trace capture;
	// recMute suppresses access/bulk records while a FIFO operation —
	// recorded as a single event — issues its internal buffer traffic.
	rec     Recorder
	recMute int

	// Line-register file of the exact fast path: slotWays registers per
	// L1 set (mirroring the L1's associativity) plus one register for
	// the bypass line buffer. A register is armed by the slow-path walk
	// that brought (or found) its line in the L1; subsequent accesses to
	// a registered line are guaranteed repeats (L1 hits, or merged
	// bypass bursts): their latency is charged immediately — so core
	// time, slice budget and bus arbitration stay cycle-exact
	// continuously — while the per-line cache-state commit (LRU stamp,
	// dirty bit, statistics) is buffered and retired in one
	// CommitRepeats call.
	//
	// Residency proof: a registered line can only leave the L1 through a
	// fill into its set, every fill happens inside a slow-path walk of
	// this task (strict handoff: nothing else touches this core's L1
	// mid-slice), and each walk reports its victim, which drops the
	// victim's register. Commit exactness: LRU victim selection compares
	// stamps within one set only, so only per-set commit order matters;
	// each set's pending registers are retired in last-touch order
	// before any walk into that set stamps the L1 behind them. The
	// bypass register is retired before any walk (a bypass walk moves
	// the hardware line buffer; the commit is a pure counter, so early
	// retirement is exact). Everything is retired and invalidated at
	// yields — after a resume the task may be on another core, and other
	// tasks touch the caches in between.
	lmem     LineMemory       // memsys's fast-path view; nil = word-granular
	hier     *cache.Hierarchy // memsys's concrete type, when it is one: devirtualized dispatch
	coalesce bool             // false under Process.WordExact
	shift    uint             // line shift of the register file
	setMask  uint64           // L1 set mask
	hitLat   uint64           // per-repeat latency, cacheable class
	mergeLat uint64           // per-repeat latency, bypass class
	slots    []lineRun        // slotWays per set; nil = cacheable batching off
	keys     []uint64         // packed epoch|line|region per slot, for the scan
	slotsBuf []lineRun
	keysBuf  []uint64
	bypass   lineRun
	dirty    []int32 // slot indices with pending commits; -1 = bypass
	epoch    uint64  // registers are valid only when their epoch matches
	seq      uint64  // per-register last-touch order within a slice
}

// Packed register keys: epoch (18 bits, wrapping with a full key clear) |
// line (26 bits: the 4 GiB address space holds 2^26 64 B lines) | region
// (20 bits, guarded). One compare identifies line, region and validity.
const (
	keyRegionBits = 20
	keyLineBits   = 26
	keyEpochMask  = 1<<(64-keyRegionBits-keyLineBits) - 1
)

// packKey builds the scan key, or 0 when the access is outside the
// packable range (then registers never match and every access walks).
func (c *Ctx) packKey(line uint64, region mem.RegionID) uint64 {
	if line >= 1<<keyLineBits || uint64(region) >= 1<<keyRegionBits {
		return 0
	}
	return (c.epoch&keyEpochMask)<<(keyLineBits+keyRegionBits) | line<<keyRegionBits | uint64(region)
}

// slotWays is the associativity of the line-register file. Matching the
// platform L1's associativity keeps a task's simultaneous hot lines per
// set (code line plus stencil rows) registered together; a deeper file
// would track lines the L1 itself cannot hold.
const slotWays = 4

// lineRun is one line register: the armed line plus its pending
// (uncommitted) repeat counts.
type lineRun struct {
	line    uint64
	region  mem.RegionID
	idx     int32 // flat slot index, -1 for the bypass register
	merge   bool
	pending bool
	epoch   uint64
	touch   uint64 // last-touch sequence, orders per-set commits
	lat0    uint64 // latency of one repeat
	reads   uint64
	writes  uint64
}

func newCtx(p *Process) *Ctx {
	return &Ctx{proc: p, coalesce: !p.WordExact, rec: p.Recorder, epoch: 1, bypass: lineRun{idx: -1}}
}

// muteRecord suppresses access/bulk recording (used by FIFO operations,
// which are recorded as single events); unmuteRecord restores it. Both
// are single nil checks when no recorder is attached.
func (c *Ctx) muteRecord() {
	if c.rec != nil {
		c.recMute++
	}
}

func (c *Ctx) unmuteRecord() {
	if c.rec != nil {
		c.recMute--
	}
}

// awaitResume parks the goroutine until the engine grants a slice.
func (c *Ctx) awaitResume() {
	m := <-c.proc.resume
	if m.kill {
		panic(killSignal{})
	}
	c.core = m.core
	if m.mem != c.memsys {
		c.memsys = m.mem
		// Resolve the concrete hierarchy once per memory change, so the
		// per-access charging paths dispatch directly instead of through
		// the Memory/LineMemory interface tables (test stubs keep the
		// interface fallback).
		c.hier, _ = m.mem.(*cache.Hierarchy)
		c.lmem = nil
		c.slots = nil
		if c.coalesce {
			if lm, ok := m.mem.(LineMemory); ok {
				c.lmem = lm
				var sets int
				c.shift, sets, c.hitLat, c.mergeLat = lm.FastSpec()
				if sets > 0 {
					need := sets * slotWays
					if len(c.slotsBuf) < need {
						// Size for the largest leaf geometry the task can
						// meet (the platform's hint), so later resumes on a
						// differently-sized leaf re-slice instead of
						// reallocating. Registers keep their flat idx for
						// the whole backing array, so a larger view later
						// exposes correctly initialized slots; stale keys
						// in the hidden tail cannot match (they carry an
						// older epoch) and the wrap wipe below clears the
						// full backing.
						full := need
						if hint := c.proc.MaxLeafSets * slotWays; hint > full {
							full = hint
						}
						c.slotsBuf = arena.Make[lineRun](c.proc.Arena, full)
						for i := range c.slotsBuf {
							c.slotsBuf[i].idx = int32(i)
						}
						c.keysBuf = arena.Make[uint64](c.proc.Arena, full)
						// The dirty list is bounded: every visible register
						// pends at most once between flushes (need entries),
						// plus the bypass register. Pre-capping it here makes
						// the appends in access/bufferOn allocation-free.
						c.dirty = arena.Make[int32](c.proc.Arena, full+1)[:0]
					}
					c.slots = c.slotsBuf[:need]
					c.keys = c.keysBuf[:need]
					c.setMask = uint64(sets - 1)
				}
			}
		}
	}
	// Invalidate every register: the task may now be on a different
	// core, and other tasks and the OS touched the caches in between.
	// The packed keys embed the (wrapping) epoch; when the masked epoch
	// revisits a value, the keys of the eponymous earlier epoch are
	// wiped so they cannot resurrect.
	c.epoch++
	if c.epoch&keyEpochMask == 0 {
		for i := range c.keysBuf {
			c.keysBuf[i] = 0
		}
	}
	c.budget = m.budget
}

// yieldAndWait hands control back and parks until the next slice, with
// every pending commit retired first — other tasks observe the caches
// while this one is parked.
func (c *Ctx) yieldAndWait(y Yield) {
	c.flushAll()
	c.proc.yield <- y
	c.awaitResume()
}

// maybeYield yields when the slice budget is exhausted. Repeats charge
// their latency immediately, so the budget is always current.
func (c *Ctx) maybeYield() {
	if c.budget <= 0 {
		c.yieldAndWait(Yield{Reason: YieldQuantum})
	}
}

// WaitFor blocks the task until cond holds. It is the primitive beneath
// FIFO read/write and is exported for custom synchronization in tests.
func (c *Ctx) WaitFor(cond func() bool, on *FIFO) {
	for !cond() {
		c.yieldAndWait(Yield{Reason: YieldBlocked, CanRun: cond, On: on})
	}
}

// Process returns the owning process.
func (c *Ctx) Process() *Process { return c.proc }

// Core returns the core currently executing the task (valid inside the
// body between resumes; the scheduler may migrate the task).
func (c *Ctx) Core() *cpu.Core { return c.core }

// Heap returns the task's heap region.
func (c *Ctx) Heap() *mem.Region { return c.proc.Heap }

// Now returns the local time of the current core (always current: the
// fast path charges every access's latency as it is issued).
func (c *Ctx) Now() uint64 { return c.core.Now() }

// Exec retires n instructions: advances time by n*BaseCPI and issues one
// instruction fetch per cache line's worth of instructions (4-byte
// instruction words), cycling through the task's hot code footprint.
func (c *Ctx) Exec(n uint64) {
	if c.rec != nil && c.recMute == 0 {
		c.rec.RecordExec(n)
	}
	hot := c.proc.HotCode
	if hot == 0 || hot > c.proc.Code.Size {
		hot = c.proc.Code.Size
	}
	const instrPerLine = ctxLineSize / 4
	for n > 0 {
		step := instrPerLine - c.instrAccum&(instrPerLine-1)
		if step > n {
			step = n
		}
		cyc := c.core.Exec(step)
		c.budget -= int64(cyc)
		c.consumed += cyc
		c.instrAccum += step
		n -= step
		if c.instrAccum&(instrPerLine-1) == 0 {
			a := trace.Access{
				Addr:   c.proc.Code.Base + c.fetchCursor,
				Size:   uint8(ctxLineSize),
				Op:     trace.Fetch,
				Region: c.proc.Code.ID,
			}
			c.access(a)
			c.fetchCursor += ctxLineSize
			if c.fetchCursor >= hot {
				c.fetchCursor = 0
			}
		}
		c.maybeYield()
	}
}

// charge sends one access through the memory system and stalls the core —
// the word-granular reference path. The platform's concrete hierarchy is
// called directly when awaitResume resolved one.
func (c *Ctx) charge(a trace.Access) {
	var lat uint64
	if h := c.hier; h != nil {
		lat = h.AccessAt(a, c.core.Now())
	} else {
		lat = c.memsys.AccessAt(a, c.core.Now())
	}
	c.core.Stall(lat)
	c.budget -= int64(lat)
	c.consumed += lat
}

// chargeFiltered charges one access through the line-register file: a
// single-line access to an armed register is a guaranteed repeat (latency
// charged now, cache-state commit deferred); anything else takes the slow
// path and re-arms a register on the last line it touched. It never
// yields; callers test the budget afterwards, exactly as the
// word-granular loop does.
func (c *Ctx) chargeFiltered(a trace.Access) {
	if c.lmem == nil {
		c.charge(a)
		return
	}
	size := uint64(a.Size)
	if size == 0 {
		size = 1
	}
	first := a.Addr >> c.shift
	last := (a.Addr + size - 1) >> c.shift
	if first == last {
		key := c.packKey(first, a.Region)
		if e := c.lookup(first, a.Region, key); e != nil {
			c.bufferOn(e, 1, a.Op == trace.Write)
			return
		}
		c.slowCharge1(first, a.Op == trace.Write, a.Region, key)
		return
	}
	c.slowChargeWide(a, first, last)
}

// lookup returns the armed register covering a single-line access, or
// nil. key is the access's packed key (0 = unpackable, never matches).
func (c *Ctx) lookup(line uint64, region mem.RegionID, key uint64) *lineRun {
	if b := &c.bypass; b.epoch == c.epoch && b.line == line && b.region == region {
		return b
	}
	if c.slots != nil && key != 0 {
		base := (line & c.setMask) * slotWays
		for i := base; i < base+slotWays; i++ {
			if c.keys[i] == key {
				return &c.slots[i]
			}
		}
	}
	return nil
}

// slowCharge1 walks the hierarchy for one single-line access that missed
// the register file, and updates the file from the walk's outcome: the
// accessed line is armed; on an L1 fill the reported victim's register is
// dropped. Pending commits that the walk must observe in order — the
// accessed set's, plus the bypass register's (a bypass walk moves the
// hardware line buffer) — are retired first.
func (c *Ctx) slowCharge1(line uint64, write bool, region mem.RegionID, key uint64) {
	if c.bypass.pending {
		c.flushEntry(&c.bypass)
	}
	var base uint64
	if c.slots != nil {
		base = (line & c.setMask) * slotWays
		c.flushSlot(base)
	}
	var lat uint64
	var cacheable, filled bool
	var evicted uint64
	if h := c.hier; h != nil {
		lat, cacheable, filled, evicted = h.ChargeLine(line, write, region, c.core.Now())
	} else {
		lat, cacheable, filled, evicted = c.lmem.ChargeLine(line, write, region, c.core.Now())
	}
	c.core.Stall(lat)
	c.budget -= int64(lat)
	c.consumed += lat
	if cacheable {
		if c.slots != nil {
			if filled && evicted != 0 {
				c.dropLine(base, evicted-1)
			}
			c.arm(base, line, region, key)
		}
	} else {
		b := &c.bypass
		b.line, b.region, b.epoch, b.lat0, b.merge = line, region, c.epoch, c.mergeLat, true
	}
}

// slowChargeWide charges a line-straddling access through the generic
// walk, conservatively retiring and dropping every register the walk
// could interact with, and arms the last line touched.
func (c *Ctx) slowChargeWide(a trace.Access, first, last uint64) {
	if c.bypass.pending {
		c.flushEntry(&c.bypass)
	}
	var cacheable bool
	if h := c.hier; h != nil {
		cacheable = h.CacheableLine(a.Region)
	} else {
		cacheable = c.lmem.CacheableLine(a.Region)
	}
	if cacheable && c.slots != nil {
		for ln := first; ln <= last; ln++ {
			base := (ln & c.setMask) * slotWays
			c.flushSlot(base)
			for i := base; i < base+slotWays; i++ {
				c.slots[i].epoch = 0
				c.keys[i] = 0
			}
		}
	} else if !cacheable {
		c.bypass.epoch = 0
	}
	c.charge(a)
	if cacheable {
		if c.slots != nil {
			c.arm((last&c.setMask)*slotWays, last, a.Region, c.packKey(last, a.Region))
		}
	} else {
		b := &c.bypass
		b.line, b.region, b.epoch, b.lat0, b.merge = last, a.Region, c.epoch, c.mergeLat, true
	}
}

// flushSlot retires a set's pending commits in last-touch order — the
// per-set LRU order the word-granular path would have stamped.
func (c *Ctx) flushSlot(base uint64) {
	for {
		var best *lineRun
		for i := base; i < base+slotWays; i++ {
			s := &c.slots[i]
			if s.pending && (best == nil || s.touch < best.touch) {
				best = s
			}
		}
		if best == nil {
			return
		}
		c.flushEntry(best)
	}
}

// dropLine invalidates every register holding an evicted line. An L1
// line wider than the address space's region alignment can span two
// regions and thus carry two registers; all of them leave with the line.
func (c *Ctx) dropLine(base, line uint64) {
	for i := base; i < base+slotWays; i++ {
		s := &c.slots[i]
		if s.epoch == c.epoch && s.line == line {
			s.epoch = 0
			c.keys[i] = 0
		}
	}
}

// arm registers a line in its set, replacing a stale or least-recently
// touched register. The set's pending commits were already retired by the
// preceding flushSlot. Unpackable accesses (key 0) are not armed — the
// scan could never find them.
func (c *Ctx) arm(base, line uint64, region mem.RegionID, key uint64) {
	if key == 0 {
		return
	}
	victim := &c.slots[base]
	for i := base; i < base+slotWays; i++ {
		s := &c.slots[i]
		if s.epoch != c.epoch {
			victim = s
			break
		}
		if s.touch < victim.touch {
			victim = s
		}
	}
	victim.line, victim.region, victim.epoch, victim.lat0, victim.merge = line, region, c.epoch, c.hitLat, false
	victim.touch = c.seq
	c.seq++
	c.keys[victim.idx] = key
}

// bufferOn charges up to m guaranteed repeats on an armed register —
// stall, budget and consumed cycles immediately; reads/writes counts
// deferred — stopping at the repeat on which the slice budget reaches
// zero so the caller's maybeYield fires on exactly the word the
// word-granular loop would yield on. Returns how many were charged.
func (c *Ctx) bufferOn(e *lineRun, m uint64, write bool) uint64 {
	take := m
	if e.lat0 > 0 && m > 1 {
		if c.budget <= 0 {
			take = 1
		} else if until := (uint64(c.budget) + e.lat0 - 1) / e.lat0; take > until {
			take = until
		}
	}
	if !e.pending {
		e.pending = true
		c.dirty = append(c.dirty, e.idx)
	}
	e.touch = c.seq
	c.seq++
	if write {
		e.writes += take
	} else {
		e.reads += take
	}
	if e.lat0 != 0 {
		lat := take * e.lat0
		c.core.Stall(lat)
		c.budget -= int64(lat)
		c.consumed += lat
	}
	return take
}

// flushEntry retires a register's pending commit. Counts are zeroed
// before committing so a panic from the commit (a violated residency
// proof) cannot double-commit from the failure path.
func (c *Ctx) flushEntry(e *lineRun) {
	if !e.pending {
		return
	}
	reads, writes := e.reads, e.writes
	e.reads, e.writes, e.pending = 0, 0, false
	if h := c.hier; h != nil {
		h.CommitRepeats(e.line, e.region, reads, writes, e.merge)
		return
	}
	c.lmem.CommitRepeats(e.line, e.region, reads, writes, e.merge)
}

// flushAll retires every pending commit. Commit order across sets is
// free — LRU order only matters within a set — but registers of the same
// set must retire in last-touch order, so each pending register is
// flushed through its set's ordered flush.
func (c *Ctx) flushAll() {
	for _, idx := range c.dirty {
		if idx < 0 {
			c.flushEntry(&c.bypass)
		} else if c.slots[idx].pending {
			c.flushSlot(uint64(idx) &^ (slotWays - 1))
		}
	}
	c.dirty = c.dirty[:0]
}

// access issues one access and yields if the budget ran out. The
// registered-repeat case — the bulk of all traffic — is handled inline
// with no further calls; everything else falls through to the filter. A
// zero-latency repeat skips the yield test: it cannot exhaust the budget,
// which is positive on entry from every charging path (each yields before
// returning with it non-positive) — except from Exec's fetch site, which
// runs its own budget test right after.
func (c *Ctx) access(a trace.Access) {
	if c.lmem != nil {
		size := uint64(a.Size)
		if size == 0 {
			size = 1
		}
		line := a.Addr >> c.shift
		if (a.Addr+size-1)>>c.shift == line && line < 1<<keyLineBits && uint64(a.Region) < 1<<keyRegionBits {
			key := (c.epoch&keyEpochMask)<<(keyLineBits+keyRegionBits) | line<<keyRegionBits | uint64(a.Region)
			var e *lineRun
			if c.slots != nil {
				base := (line & c.setMask) * slotWays
				k := c.keys[base : base+slotWays : base+slotWays]
				switch key {
				case k[0]:
					e = &c.slots[base]
				case k[1]:
					e = &c.slots[base+1]
				case k[2]:
					e = &c.slots[base+2]
				case k[3]:
					e = &c.slots[base+3]
				}
			}
			if e == nil {
				if b := &c.bypass; b.epoch == c.epoch && b.line == line && b.region == a.Region {
					e = b
				}
			}
			if e != nil {
				e.touch = c.seq
				c.seq++
				if a.Op == trace.Write {
					e.writes++
				} else {
					e.reads++
				}
				if !e.pending {
					e.pending = true
					c.dirty = append(c.dirty, e.idx)
				}
				if e.lat0 != 0 {
					c.core.Stall(e.lat0)
					c.budget -= int64(e.lat0)
					c.consumed += e.lat0
					c.maybeYield()
				}
				return
			}
			c.slowCharge1(line, a.Op == trace.Write, a.Region, key)
			c.maybeYield()
			return
		}
	}
	c.chargeFiltered(a)
	c.maybeYield()
}

// recordAccess records one data access during trace capture.
func (c *Ctx) recordAccess(a trace.Access) {
	if c.rec != nil && c.recMute == 0 {
		c.rec.RecordAccess(a)
	}
}

// Load32 reads a 32-bit word from a region, charging the access.
func (c *Ctx) Load32(r *mem.Region, off uint64) uint32 {
	v, err := r.Load32(off)
	if err != nil {
		panic(err)
	}
	a := trace.Access{Addr: r.Base + off, Size: 4, Op: trace.Read, Region: r.ID}
	c.recordAccess(a)
	c.access(a)
	return v
}

// Store32 writes a 32-bit word to a region, charging the access.
func (c *Ctx) Store32(r *mem.Region, off uint64, v uint32) {
	if err := r.Store32(off, v); err != nil {
		panic(err)
	}
	a := trace.Access{Addr: r.Base + off, Size: 4, Op: trace.Write, Region: r.ID}
	c.recordAccess(a)
	c.access(a)
}

// Load8 reads one byte from a region, charging the access.
func (c *Ctx) Load8(r *mem.Region, off uint64) byte {
	v, err := r.Load8(off)
	if err != nil {
		panic(err)
	}
	a := trace.Access{Addr: r.Base + off, Size: 1, Op: trace.Read, Region: r.ID}
	c.recordAccess(a)
	c.access(a)
	return v
}

// Store8 writes one byte to a region, charging the access.
func (c *Ctx) Store8(r *mem.Region, off uint64, v byte) {
	if err := r.Store8(off, v); err != nil {
		panic(err)
	}
	a := trace.Access{Addr: r.Base + off, Size: 1, Op: trace.Write, Region: r.ID}
	c.recordAccess(a)
	c.access(a)
}

// LoadBytes copies len(dst) bytes out of a region with word-granular
// charged accesses, the pattern of a memcpy loop.
func (c *Ctx) LoadBytes(r *mem.Region, off uint64, dst []byte) {
	backing := r.Bytes()
	if off+uint64(len(dst)) > r.Size {
		panic(fmt.Sprintf("kpn: LoadBytes out of range: %s off=%d len=%d", r.Name, off, len(dst)))
	}
	copy(dst, backing[off:off+uint64(len(dst))])
	if c.rec != nil && c.recMute == 0 {
		c.rec.RecordBulk(r.ID, off, uint64(len(dst)), trace.Read)
	}
	c.chargeBulk(r, off, uint64(len(dst)), trace.Read)
}

// StoreBytes copies src into a region with word-granular charged accesses.
func (c *Ctx) StoreBytes(r *mem.Region, off uint64, src []byte) {
	backing := r.Bytes()
	if off+uint64(len(src)) > r.Size {
		panic(fmt.Sprintf("kpn: StoreBytes out of range: %s off=%d len=%d", r.Name, off, len(src)))
	}
	copy(backing[off:off+uint64(len(src))], src)
	if c.rec != nil && c.recMute == 0 {
		c.rec.RecordBulk(r.ID, off, uint64(len(src)), trace.Write)
	}
	c.chargeBulk(r, off, uint64(len(src)), trace.Write)
}

// ChargeAccess charges one access through the engine's normal charging
// path — line-register file, hierarchy walk, budget test — without
// touching backing storage. It is the trace-replay primitive for
// recorded Load8/Load32/Store8/Store32 events. It records like the
// functional accessors do, so capturing a replayed task re-records the
// identical stream (replayed workloads are first-class).
func (c *Ctx) ChargeAccess(a trace.Access) {
	c.recordAccess(a)
	c.access(a)
}

// ChargeBulk charges the word-decomposed traffic of a bulk transfer of
// n bytes at off in r — exactly what LoadBytes/StoreBytes charge,
// including the line-merged batching of the fast path — without moving
// bytes. It is the trace-replay primitive for recorded bulk events, and
// records like LoadBytes/StoreBytes do.
func (c *Ctx) ChargeBulk(r *mem.Region, off, n uint64, op trace.Op) {
	if off+n > r.Size {
		panic(fmt.Sprintf("kpn: ChargeBulk out of range: %s off=%d len=%d", r.Name, off, n))
	}
	if c.rec != nil && c.recMute == 0 {
		c.rec.RecordBulk(r.ID, off, n, op)
	}
	c.chargeBulk(r, off, n, op)
}

// chargeBulk charges the memory traffic of a bulk transfer: one access
// per 4-byte word (the final word may be shorter), exactly the pattern of
// a memcpy loop. On the line-merged fast path the words of each cache
// line after the first are committed as a single batch — one hierarchy
// walk plus one CommitRepeats per line instead of sixteen walks — while
// yields still land on exactly the word the word-granular loop would
// yield on.
func (c *Ctx) chargeBulk(r *mem.Region, off, n uint64, op trace.Op) {
	write := op == trace.Write
	for done := uint64(0); done < n; {
		sz := n - done
		if sz > 4 {
			sz = 4
		}
		c.access(trace.Access{Addr: r.Base + off + done, Size: uint8(sz), Op: op, Region: r.ID})
		done += sz
		if c.lmem == nil || done >= n {
			continue
		}
		// Batch the following words that lie entirely inside the line the
		// last word touched, if a register covers it. A word straddling
		// the line boundary is left to the next slow-path access.
		cur := r.Base + off + done
		line := cur >> c.shift
		e := c.lookup(line, r.ID, c.packKey(line, r.ID))
		if e == nil {
			continue
		}
		rm := n - done
		space := ((line + 1) << c.shift) - cur
		var m, bytes uint64
		if rm <= space {
			m, bytes = (rm+3)/4, rm
		} else {
			m = space / 4
			bytes = m * 4
		}
		if m == 0 {
			continue
		}
		k := c.bufferOn(e, m, write)
		if k == m {
			done += bytes
		} else {
			// Budget exhausted mid-line: all charged words were full
			// 4-byte words (only the last of m can be short); the rest
			// are re-issued after the resume.
			done += k * 4
		}
		// The word loop tests the budget after every word — including
		// the final one of the transfer — so the yield lands on exactly
		// the same word.
		c.maybeYield()
	}
}
