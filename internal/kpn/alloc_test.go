package kpn

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/mem"
)

// newLeafHierarchy builds a private-L1 + shared-L2 path with the given
// leaf set count, the shape the merged engine's register file keys by.
func newLeafHierarchy(sets int) *cache.Hierarchy {
	l1 := cache.New(cache.Config{Name: "l1", Sets: sets, Ways: 4, LineSize: 64})
	l2 := cache.New(cache.Config{Name: "l2", Sets: 2048, Ways: 4, LineSize: 64})
	return cache.NewTwoLevel(l1, l2, 1, 11, &cache.FixedMem{Latency: 40})
}

// spinProc starts a process whose body streams loads over its heap
// forever; each RunSlice runs it until the slice budget is exhausted.
// The caller must Kill it.
func spinProc(as *mem.AddressSpace, name string) *Process {
	p := &Process{
		Name: name,
		Code: as.MustAlloc(name+".code", mem.KindCode, name, 4096),
		Heap: as.MustAlloc(name+".heap", mem.KindHeap, name, 65536),
	}
	p.Body = func(c *Ctx) {
		for {
			for off := uint64(0); off+4 <= p.Heap.Size; off += 4 {
				c.Load32(p.Heap, off)
			}
		}
	}
	p.Start()
	return p
}

// TestResumeNoReallocAcrossGeometries pins the awaitResume fix: with the
// platform's MaxLeafSets hint, a task migrating between differently-sized
// private leaves re-slices its line-register file instead of reallocating
// it on every resume. Before the fix this measured 2 allocations per
// geometry change (slots + keys); it must now be zero in steady state.
func TestResumeNoReallocAcrossGeometries(t *testing.T) {
	as := mem.NewAddressSpace()
	core := cpu.New(cpu.Config{Name: "p0", BaseCPI: 1.0})
	small := newLeafHierarchy(64)
	big := newLeafHierarchy(128)

	p := spinProc(as, "spin")
	defer p.Kill()
	p.MaxLeafSets = 128 // what platform.AddTask stamps from the tree

	// Warm up both geometries once (first-touch sizing, cache stats
	// growth), then demand steady-state zero.
	p.RunSlice(core, small, 2000)
	p.RunSlice(core, big, 2000)

	allocs := testing.AllocsPerRun(50, func() {
		p.RunSlice(core, small, 2000)
		p.RunSlice(core, big, 2000)
	})
	if allocs != 0 {
		t.Fatalf("resuming across leaf geometries allocates %.1f objects per slice pair, want 0", allocs)
	}
}

// TestMergedHotPathZeroAllocs pins the merged engine's per-access hot
// path — Ctx.charge, Ctx.access (register repeats, slow walks, dirty
// bookkeeping) and Ctx.chargeBulk — at zero allocations per slice. The
// task streams word loads and stores over its heap and bulk transfers
// through LoadBytes/StoreBytes, exercising repeats, fills, evictions,
// writebacks and line-batched bulk traffic; after one warmup slice (the
// register file's first-touch sizing, cache stat growth), steady-state
// slices must not allocate at all.
func TestMergedHotPathZeroAllocs(t *testing.T) {
	as := mem.NewAddressSpace()
	core := cpu.New(cpu.Config{Name: "p0", BaseCPI: 1.0})
	h := newLeafHierarchy(64)

	buf := make([]byte, 256)
	p := &Process{
		Name: "mix",
		Code: as.MustAlloc("mix.code", mem.KindCode, "mix", 4096),
		Heap: as.MustAlloc("mix.heap", mem.KindHeap, "mix", 65536),
	}
	p.Body = func(c *Ctx) {
		for {
			for off := uint64(0); off+4 <= p.Heap.Size; off += 4 {
				c.Store32(p.Heap, off, uint32(off))
				c.Load32(p.Heap, off)
			}
			for off := uint64(0); off+uint64(len(buf)) <= p.Heap.Size; off += uint64(len(buf)) {
				c.LoadBytes(p.Heap, off, buf)
				c.StoreBytes(p.Heap, off, buf)
			}
		}
	}
	p.Start()
	defer p.Kill()

	p.RunSlice(core, h, 5000) // warmup: size the register file, grow stats

	allocs := testing.AllocsPerRun(50, func() {
		p.RunSlice(core, h, 5000)
	})
	if allocs != 0 {
		t.Fatalf("merged-engine hot path allocates %.1f objects per slice, want 0", allocs)
	}
}
