package kpn

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/trace"
)

// stubMem counts accesses by op and charges a constant latency.
type stubMem struct {
	lat     uint64
	fetches uint64
	reads   uint64
	writes  uint64
}

func (m *stubMem) AccessAt(a trace.Access, now uint64) uint64 {
	switch a.Op {
	case trace.Fetch:
		m.fetches++
	case trace.Read:
		m.reads++
	case trace.Write:
		m.writes++
	}
	return m.lat
}

// harness is a minimal round-robin engine over one core.
type harness struct {
	t     *testing.T
	core  *cpu.Core
	mem   *stubMem
	procs []*Process
}

func newHarness(t *testing.T) *harness {
	return &harness{
		t:    t,
		core: cpu.New(cpu.Config{Name: "p0", BaseCPI: 1.0}),
		mem:  &stubMem{lat: 2},
	}
}

func (h *harness) addProc(as *mem.AddressSpace, name string, body func(*Ctx)) *Process {
	p := &Process{
		Name: name,
		Body: body,
		Code: as.MustAlloc(name+".code", mem.KindCode, name, 4096),
		Heap: as.MustAlloc(name+".heap", mem.KindHeap, name, 65536),
	}
	h.procs = append(h.procs, p)
	return p
}

// run drives all processes to completion with the given quantum, failing
// the test on deadlock or task panic. It returns total slices granted.
func (h *harness) run(budget int64) int {
	for _, p := range h.procs {
		p.Start()
	}
	slices := 0
	for {
		progressed := false
		alldone := true
		for _, p := range h.procs {
			if p.State() != Done && p.State() != Failed {
				alldone = false
			}
			if !p.Runnable() {
				continue
			}
			y := p.RunSlice(h.core, h.mem, budget)
			slices++
			progressed = true
			if y.Reason == YieldFailed {
				h.t.Fatalf("process %s failed: %v", p.Name, y.Err)
			}
		}
		if alldone {
			return slices
		}
		if !progressed {
			h.t.Fatal("deadlock: no runnable process")
		}
	}
}

func TestProducerConsumerIntegrity(t *testing.T) {
	as := mem.NewAddressSpace()
	h := newHarness(t)
	f := MustNewFIFO(as, "pc.fifo", 4, 4)
	const n = 100
	var got []uint32
	h.addProc(as, "prod", func(c *Ctx) {
		for i := uint32(0); i < n; i++ {
			f.Write32(c, i*i)
		}
		f.Close(c)
	})
	h.addProc(as, "cons", func(c *Ctx) {
		for {
			v, ok := f.Read32(c)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	h.run(10000)
	if len(got) != n {
		t.Fatalf("consumed %d tokens, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint32(i*i) {
			t.Fatalf("token %d = %d, want %d", i, v, i*i)
		}
	}
	if f.Produced() != n || f.Consumed() != n {
		t.Errorf("produced/consumed = %d/%d", f.Produced(), f.Consumed())
	}
	if f.MaxDepth() < 1 || f.MaxDepth() > 4 {
		t.Errorf("max depth = %d, want in [1,4]", f.MaxDepth())
	}
}

func TestFIFOBlocksWhenFull(t *testing.T) {
	as := mem.NewAddressSpace()
	h := newHarness(t)
	f := MustNewFIFO(as, "f", 4, 2)
	var consumerStarted bool
	h.addProc(as, "prod", func(c *Ctx) {
		for i := uint32(0); i < 10; i++ {
			f.Write32(c, i)
		}
		f.Close(c)
	})
	h.addProc(as, "cons", func(c *Ctx) {
		consumerStarted = true
		for {
			if _, ok := f.Read32(c); !ok {
				return
			}
		}
	})
	h.run(1 << 30) // effectively no quantum: blocking forces the handoff
	if !consumerStarted {
		t.Error("consumer never ran — producer did not block on full FIFO")
	}
	if f.Consumed() != 10 {
		t.Errorf("consumed = %d, want 10", f.Consumed())
	}
}

func TestFIFOEOF(t *testing.T) {
	as := mem.NewAddressSpace()
	h := newHarness(t)
	f := MustNewFIFO(as, "f", 4, 8)
	drained := -1
	h.addProc(as, "prod", func(c *Ctx) {
		f.Write32(c, 1)
		f.Write32(c, 2)
		f.Close(c)
	})
	h.addProc(as, "cons", func(c *Ctx) {
		n := 0
		for {
			if _, ok := f.Read32(c); !ok {
				drained = n
				return
			}
			n++
		}
	})
	h.run(10000)
	if drained != 2 {
		t.Errorf("tokens before EOF = %d, want 2", drained)
	}
	if !f.Closed() {
		t.Error("FIFO should report closed")
	}
}

func TestWriteAfterClosePanics(t *testing.T) {
	as := mem.NewAddressSpace()
	h := newHarness(t)
	f := MustNewFIFO(as, "f", 4, 8)
	p := h.addProc(as, "prod", func(c *Ctx) {
		f.Close(c)
		f.Write32(c, 1)
	})
	p.Start()
	y := p.RunSlice(h.core, h.mem, 1<<30)
	if y.Reason != YieldFailed || y.Err == nil {
		t.Fatalf("yield = %+v, want failure", y)
	}
	if !strings.Contains(y.Err.Error(), "write after close") {
		t.Errorf("err = %v", y.Err)
	}
}

func TestTokenSizeMismatchPanics(t *testing.T) {
	as := mem.NewAddressSpace()
	h := newHarness(t)
	f := MustNewFIFO(as, "f", 8, 2)
	p := h.addProc(as, "prod", func(c *Ctx) {
		f.Write(c, make([]byte, 4)) // wrong size
	})
	p.Start()
	if y := p.RunSlice(h.core, h.mem, 1<<30); y.Reason != YieldFailed {
		t.Fatal("size mismatch not detected")
	}
}

func TestNewFIFOValidation(t *testing.T) {
	as := mem.NewAddressSpace()
	if _, err := NewFIFO(as, "f", 0, 4); err == nil {
		t.Error("zero token size accepted")
	}
	if _, err := NewFIFO(as, "f", 4, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	f, err := NewFIFO(as, "ok", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.Region.Kind != mem.KindFIFO || f.Region.Size != 16 {
		t.Errorf("region = %+v", f.Region)
	}
}

func TestQuantumYields(t *testing.T) {
	as := mem.NewAddressSpace()
	h := newHarness(t)
	h.addProc(as, "worker", func(c *Ctx) {
		c.Exec(10000)
	})
	slices := h.run(100) // 100-cycle quantum, ~10k cycles of work
	if slices < 50 {
		t.Errorf("slices = %d, want many (quantum preemption)", slices)
	}
}

func TestExecIssuesInstructionFetches(t *testing.T) {
	as := mem.NewAddressSpace()
	h := newHarness(t)
	h.addProc(as, "w", func(c *Ctx) {
		c.Exec(64) // 64 instrs / 16 per line = 4 fetches
	})
	h.run(1 << 30)
	if h.mem.fetches != 4 {
		t.Errorf("fetches = %d, want 4", h.mem.fetches)
	}
}

func TestExecHotCodeWraps(t *testing.T) {
	as := mem.NewAddressSpace()
	h := newHarness(t)
	p := h.addProc(as, "w", func(c *Ctx) {
		c.Exec(16 * 4 * 10) // 40 line fetches over a 2-line hot loop
	})
	p.HotCode = 128
	var addrs []uint64
	rec := recordingMem{}
	p.Start()
	for p.State() != Done {
		p.RunSlice(h.core, &rec, 1<<30)
	}
	for _, a := range rec.accesses {
		if a.Op == trace.Fetch {
			addrs = append(addrs, a.Addr)
		}
	}
	if len(addrs) != 40 {
		t.Fatalf("fetches = %d, want 40", len(addrs))
	}
	base := p.Code.Base
	for i, a := range addrs {
		want := base + uint64(i%2)*64
		if a != want {
			t.Fatalf("fetch %d addr = %#x, want %#x (hot wrap)", i, a, want)
		}
	}
}

type recordingMem struct {
	accesses []trace.Access
}

func (m *recordingMem) AccessAt(a trace.Access, now uint64) uint64 {
	m.accesses = append(m.accesses, a)
	return 0
}

func TestCtxLoadStoreRoundTrip(t *testing.T) {
	as := mem.NewAddressSpace()
	h := newHarness(t)
	var got32 uint32
	var got8 byte
	h.addProc(as, "w", func(c *Ctx) {
		heap := c.Heap()
		c.Store32(heap, 16, 0xCAFEBABE)
		got32 = c.Load32(heap, 16)
		c.Store8(heap, 100, 0x5A)
		got8 = c.Load8(heap, 100)
	})
	h.run(1 << 30)
	if got32 != 0xCAFEBABE || got8 != 0x5A {
		t.Errorf("round trip = %#x, %#x", got32, got8)
	}
	if h.mem.reads != 2 || h.mem.writes != 2 {
		t.Errorf("reads/writes = %d/%d, want 2/2", h.mem.reads, h.mem.writes)
	}
}

func TestLoadStoreBytesChargesPerWord(t *testing.T) {
	as := mem.NewAddressSpace()
	h := newHarness(t)
	h.addProc(as, "w", func(c *Ctx) {
		buf := make([]byte, 64)
		c.StoreBytes(c.Heap(), 0, buf)
		c.LoadBytes(c.Heap(), 0, buf)
	})
	h.run(1 << 30)
	if h.mem.writes != 16 || h.mem.reads != 16 {
		t.Errorf("writes/reads = %d/%d, want 16/16", h.mem.writes, h.mem.reads)
	}
}

func TestMemoryStallsAccumulate(t *testing.T) {
	as := mem.NewAddressSpace()
	h := newHarness(t)
	h.mem.lat = 10
	h.addProc(as, "w", func(c *Ctx) {
		for i := uint64(0); i < 8; i++ {
			c.Load32(c.Heap(), i*4)
		}
	})
	h.run(1 << 30)
	if h.core.StallCycles() != 80 {
		t.Errorf("stalls = %d, want 80", h.core.StallCycles())
	}
}

func TestProcessLifecyclePanics(t *testing.T) {
	as := mem.NewAddressSpace()
	t.Run("double start", func(t *testing.T) {
		p := &Process{Name: "x", Body: func(*Ctx) {},
			Code: as.MustAlloc("x.code", mem.KindCode, "x", 64)}
		p.Start()
		defer func() {
			if recover() == nil {
				t.Fatal("double Start did not panic")
			}
		}()
		p.Start()
	})
	t.Run("no body", func(t *testing.T) {
		p := &Process{Name: "y", Code: as.MustAlloc("y.code", mem.KindCode, "y", 64)}
		defer func() {
			if recover() == nil {
				t.Fatal("missing body did not panic")
			}
		}()
		p.Start()
	})
	t.Run("no code", func(t *testing.T) {
		p := &Process{Name: "z", Body: func(*Ctx) {}}
		defer func() {
			if recover() == nil {
				t.Fatal("missing code region did not panic")
			}
		}()
		p.Start()
	})
}

func TestKill(t *testing.T) {
	as := mem.NewAddressSpace()
	h := newHarness(t)
	f := MustNewFIFO(as, "f", 4, 1)
	p := h.addProc(as, "stuck", func(c *Ctx) {
		var b [4]byte
		f.Read(c, b[:]) // blocks forever
	})
	p.Start()
	p.RunSlice(h.core, h.mem, 1<<30) // runs until blocked
	if p.State() != Blocked {
		t.Fatalf("state = %v, want blocked", p.State())
	}
	p.Kill()
	if p.State() != Failed {
		t.Errorf("state after kill = %v", p.State())
	}
	p.Kill() // idempotent on finished process
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Created: "created", Ready: "ready", Blocked: "blocked",
		Running: "running", Done: "done", Failed: "failed",
	} {
		if s.String() != want {
			t.Errorf("State(%d) = %q, want %q", s, s.String(), want)
		}
	}
	if State(99).String() != "state(99)" {
		t.Error("unknown state string")
	}
}

func TestFrameOps(t *testing.T) {
	as := mem.NewAddressSpace()
	h := newHarness(t)
	fr := MustNewFrame(as, "frame", 8, 4, 1)
	var diag []byte
	h.addProc(as, "w", func(c *Ctx) {
		for y := 0; y < 4; y++ {
			for x := 0; x < 8; x++ {
				fr.Store8(c, x, y, byte(x*y))
			}
		}
		for i := 0; i < 4; i++ {
			diag = append(diag, fr.Load8(c, i, i))
		}
		row := make([]byte, 8)
		fr.LoadRow(c, 2, row)
		if row[3] != 6 {
			panic("row mismatch")
		}
		fr.StoreRow(c, 0, row)
	})
	h.run(1 << 30)
	want := []byte{0, 1, 4, 9}
	for i := range want {
		if diag[i] != want[i] {
			t.Errorf("diag[%d] = %d, want %d", i, diag[i], want[i])
		}
	}
}

func TestFrameBoundsPanic(t *testing.T) {
	as := mem.NewAddressSpace()
	h := newHarness(t)
	fr := MustNewFrame(as, "frame", 4, 4, 1)
	p := h.addProc(as, "w", func(c *Ctx) {
		fr.Load8(c, 4, 0)
	})
	p.Start()
	if y := p.RunSlice(h.core, h.mem, 1<<30); y.Reason != YieldFailed {
		t.Fatal("out-of-bounds pixel not detected")
	}
}

func TestNewFrameValidation(t *testing.T) {
	as := mem.NewAddressSpace()
	if _, err := NewFrame(as, "f", 0, 4, 1); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewFrame(as, "f", 4, 4, 0); err == nil {
		t.Error("zero pixel size accepted")
	}
}

func TestFrame32(t *testing.T) {
	as := mem.NewAddressSpace()
	h := newHarness(t)
	fr := MustNewFrame(as, "frame", 4, 4, 4)
	var got uint32
	h.addProc(as, "w", func(c *Ctx) {
		fr.Store32(c, 2, 3, 0x11223344)
		got = fr.Load32(c, 2, 3)
	})
	h.run(1 << 30)
	if got != 0x11223344 {
		t.Errorf("32-bit pixel = %#x", got)
	}
}

// Property: for any sequence of writes, a FIFO delivers exactly the same
// sequence (Kahn determinism: order and values preserved).
func TestFIFOOrderProperty(t *testing.T) {
	f := func(vals []uint32, capRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		capTok := int(capRaw%7) + 1
		as := mem.NewAddressSpace()
		h := newHarness(t)
		fifo := MustNewFIFO(as, "f", 4, capTok)
		var got []uint32
		h.addProc(as, "p", func(c *Ctx) {
			for _, v := range vals {
				fifo.Write32(c, v)
			}
			fifo.Close(c)
		})
		h.addProc(as, "c", func(c *Ctx) {
			for {
				v, ok := fifo.Read32(c)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		h.run(64)
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestChargeBulkOddSizesAndStraddles verifies the word decomposition of
// bulk transfers: 4-byte words from the start offset, a short final word,
// and line-straddling words left intact — the exact stream a memcpy loop
// would issue.
func TestChargeBulkOddSizesAndStraddles(t *testing.T) {
	for _, tc := range []struct {
		off  uint64
		n    int
		want []uint8 // expected access sizes in order
	}{
		{0, 7, []uint8{4, 3}},
		{1, 13, []uint8{4, 4, 4, 1}},
		{62, 8, []uint8{4, 4}}, // words straddle the 64 B line boundary
		{61, 6, []uint8{4, 2}}, // first word straddles
		{0, 1, []uint8{1}},
		{63, 2, []uint8{2}}, // single straddling short word
	} {
		as := mem.NewAddressSpace()
		h := newHarness(t)
		rec := recordingMem{}
		var wrote, read bool
		p := h.addProc(as, "w", func(c *Ctx) {
			buf := make([]byte, tc.n)
			for i := range buf {
				buf[i] = byte(i + 1)
			}
			c.StoreBytes(c.Heap(), tc.off, buf)
			wrote = true
			got := make([]byte, tc.n)
			c.LoadBytes(c.Heap(), tc.off, got)
			read = true
			for i := range got {
				if got[i] != buf[i] {
					panic("bulk round trip mismatch")
				}
			}
		})
		p.Start()
		for p.State() != Done && p.State() != Failed {
			if y := p.RunSlice(h.core, &rec, 1<<30); y.Reason == YieldFailed {
				t.Fatalf("off=%d n=%d: %v", tc.off, tc.n, y.Err)
			}
		}
		if !wrote || !read {
			t.Fatalf("off=%d n=%d: body did not complete", tc.off, tc.n)
		}
		var stores, loads []trace.Access
		for _, a := range rec.accesses {
			switch a.Op {
			case trace.Write:
				stores = append(stores, a)
			case trace.Read:
				loads = append(loads, a)
			}
		}
		check := func(kind string, got []trace.Access) {
			if len(got) != len(tc.want) {
				t.Fatalf("off=%d n=%d: %s accesses = %d, want %d", tc.off, tc.n, kind, len(got), len(tc.want))
			}
			addr := h.procs[len(h.procs)-1].Heap.Base + tc.off
			for i, a := range got {
				if a.Size != tc.want[i] || a.Addr != addr {
					t.Errorf("off=%d n=%d: %s[%d] = addr %#x size %d, want addr %#x size %d",
						tc.off, tc.n, kind, i, a.Addr, a.Size, addr, tc.want[i])
				}
				addr += uint64(a.Size)
			}
		}
		check("store", stores)
		check("load", loads)
	}
}

// TestBulkEnginesBitIdentical drives one task issuing odd-size bulk
// transfers, straddles and byte runs through a real two-level hierarchy
// under both execution engines and requires identical cache statistics,
// stall cycles and consumed cycles.
func TestBulkEnginesBitIdentical(t *testing.T) {
	run := func(wordExact bool) (cache.Stats, cache.Stats, uint64, uint64) {
		as := mem.NewAddressSpace()
		l1 := cache.New(cache.Config{Name: "l1", Sets: 8, Ways: 2, LineSize: 64})
		l2 := cache.New(cache.Config{Name: "l2", Sets: 64, Ways: 4, LineSize: 64})
		h := cache.NewTwoLevel(l1, l2, 1, 8, &cache.FixedMem{Latency: 40})
		core := cpu.New(cpu.Config{Name: "p0", BaseCPI: 1.0})
		p := &Process{
			Name:      "w",
			WordExact: wordExact,
			Code:      as.MustAlloc("w.code", mem.KindCode, "w", 4096),
			Heap:      as.MustAlloc("w.heap", mem.KindHeap, "w", 65536),
			HotCode:   128,
			Body: func(c *Ctx) {
				buf := make([]byte, 200)
				for i := range buf {
					buf[i] = byte(i)
				}
				for it := uint64(0); it < 50; it++ {
					c.StoreBytes(c.Heap(), it*13%1000+1, buf[:7+it%190])
					c.LoadBytes(c.Heap(), it*29%2000, buf[:1+it%200])
					c.Exec(30)
					for j := uint64(0); j < 70; j++ {
						c.Store8(c.Heap(), 4096+it*64+j, byte(j))
					}
				}
			},
		}
		p.Start()
		for p.State() != Done && p.State() != Failed {
			if y := p.RunSlice(core, h, 97); y.Reason == YieldFailed {
				t.Fatal(y.Err)
			}
		}
		return l1.Stats(), l2.Stats(), core.StallCycles(), p.ConsumedCycles()
	}
	l1f, l2f, stallF, consF := run(false)
	l1w, l2w, stallW, consW := run(true)
	if l1f != l1w {
		t.Errorf("L1 stats: merged %+v vs word %+v", l1f, l1w)
	}
	if l2f != l2w {
		t.Errorf("L2 stats: merged %+v vs word %+v", l2f, l2w)
	}
	if stallF != stallW || consF != consW {
		t.Errorf("stall/consumed: merged %d/%d vs word %d/%d", stallF, consF, stallW, consW)
	}
}
