package explore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/scenario"
)

// Checkpoint-directory layout: the self-contained spec next to the
// atomically updated progress log. The spec file makes the directory
// freestanding — `compmem explore -checkpoint dir -resume` needs no
// other input — and the log is rewritten whole after every round via
// the write-temp-then-rename discipline, so a crash at any instant
// leaves either the previous round's log or the new one, never a torn
// file.
const (
	specFile       = "spec.json"
	checkpointFile = "checkpoint.json"
)

// checkpoint is the on-disk progress log.
type checkpoint struct {
	SchemaVersion int           `json:"schema_version"`
	Fingerprint   string        `json:"fingerprint"`
	Round         int           `json:"round"`
	Radius        int           `json:"radius"`
	Quiet         int           `json:"quiet"`
	Converged     bool          `json:"converged,omitempty"`
	Exhausted     bool          `json:"exhausted,omitempty"`
	Visited       []PointRecord `json:"visited"`
}

// saveSpec writes the exploration's canonical spec into the checkpoint
// directory (creating it), making the directory self-describing.
func saveSpec(dir string, ex Explore) error {
	raw, err := ex.SpecJSON()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("explore: creating checkpoint dir: %w", err)
	}
	return atomicWrite(filepath.Join(dir, specFile), raw)
}

// LoadSpec parses the spec a checkpoint directory carries.
func LoadSpec(dir string) (Explore, error) {
	raw, err := os.ReadFile(filepath.Join(dir, specFile))
	if err != nil {
		return Explore{}, fmt.Errorf("explore: reading checkpoint spec: %w", err)
	}
	return Parse(raw, nil, nil)
}

// saveCheckpoint atomically replaces the progress log.
func saveCheckpoint(dir string, cp *checkpoint) error {
	raw, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("explore: encoding checkpoint: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("explore: creating checkpoint dir: %w", err)
	}
	return atomicWrite(filepath.Join(dir, checkpointFile), raw)
}

// loadCheckpoint reads the progress log, verifying it belongs to the
// exploration identified by fp. A missing log is a fresh start (found
// false), not an error — a run killed before its first checkpoint
// resumes from nothing.
func loadCheckpoint(dir, fp string) (*checkpoint, bool, error) {
	raw, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("explore: reading checkpoint: %w", err)
	}
	var cp checkpoint
	if err := scenario.DecodeStrict(raw, &cp); err != nil {
		return nil, false, fmt.Errorf("explore: parsing checkpoint: %w", err)
	}
	if cp.Fingerprint != fp {
		return nil, false, fmt.Errorf("explore: checkpoint belongs to a different exploration (fingerprint %s, spec %s); point -checkpoint at a fresh directory", cp.Fingerprint, fp)
	}
	return &cp, true, nil
}

// atomicWrite lands data at path via a temp file and rename, fsyncing
// the file so the rename never publishes unwritten bytes.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("explore: checkpoint write: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("explore: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("explore: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("explore: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("explore: checkpoint publish: %w", err)
	}
	return nil
}
