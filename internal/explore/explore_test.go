package explore

import (
	"context"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// specJSON is a hand-written wire spec covering the inline-sweep form
// with every strategy knob set.
const specJSON = `{
  "spec_version": 1,
  "name": "l2-hunt",
  "sweep": {
    "name": "l2-grid",
    "base": {"workload": "2jpeg+canny", "scale": "small", "runs": 1},
    "axes": [
      {"name": "l2_kb", "field": "platform.l2.kb", "values": [256, 512, 1024]},
      {"field": "migration", "values": [false, true]}
    ],
    "pareto": [{"x": "l2_bytes", "y": "makespan"}]
  },
  "strategy": {
    "seed": 42,
    "budget": 5,
    "rungs": [1, 2],
    "neighborhood": 2,
    "stable_rounds": 3,
    "max_per_round": 4,
    "samples": 2
  }
}`

func TestParseSpec(t *testing.T) {
	ex, err := Parse([]byte(specJSON), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Name != "l2-hunt" || ex.Sweep.Name != "l2-grid" {
		t.Errorf("names: explore %q sweep %q", ex.Name, ex.Sweep.Name)
	}
	want := Strategy{Seed: 42, Budget: 5, Rungs: []int{1, 2}, Neighborhood: 2, StableRounds: 3, MaxPerRound: 4, Samples: 2}
	if got := ex.Strategy; got.Seed != want.Seed || got.Budget != want.Budget ||
		got.Neighborhood != want.Neighborhood || got.StableRounds != want.StableRounds ||
		got.MaxPerRound != want.MaxPerRound || got.Samples != want.Samples ||
		len(got.Rungs) != 2 || got.Rungs[0] != 1 || got.Rungs[1] != 2 {
		t.Errorf("strategy round-trip: got %+v", got)
	}
	if n, err := ex.Sweep.Total(); err != nil || n != 6 {
		t.Errorf("space size: %d (%v), want 6", n, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name, raw, want string
	}{
		{"bad version", `{"spec_version": 9, "sweep": "paper-grid"}`, "unsupported spec_version"},
		{"no sweep", `{"name": "x"}`, "no \"sweep\""},
		{"unknown field", `{"sweep": "paper-grid", "surprise": 1}`, "unknown field"},
		{"builtin without lookup", `{"sweep": "paper-grid"}`, "not supported here"},
		{"negative budget", `{"sweep": {"base": {"workload": "mpeg2"}, "axes": [{"field": "seed", "values": [1, 2]}]}, "strategy": {"budget": -1}}`, "non-negative"},
		{"descending rungs", `{"sweep": {"base": {"workload": "mpeg2"}, "axes": [{"field": "seed", "values": [1, 2]}]}, "strategy": {"rungs": [3, 2]}}`, "strictly ascending"},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.raw), nil, nil); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestParseBuiltinSweep covers the "sweep is a JSON string" form: the
// name resolves through lookupSweep, and the explore name defaults to
// the sweep's.
func TestParseBuiltinSweep(t *testing.T) {
	cfg := testConfig()
	lookup := func(name string) (sweep.Sweep, bool) { return experiments.BuiltinSweep(cfg, name) }
	ex, err := Parse([]byte(`{"sweep": "paper-grid"}`), nil, lookup)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := ex.Sweep.Total(); err != nil || ex.Name != "paper-grid" || n != 32 {
		t.Errorf("builtin sweep: name %q, total %d (%v)", ex.Name, n, err)
	}
	if _, err := Parse([]byte(`{"sweep": "no-such-grid"}`), nil, lookup); err == nil {
		t.Error("unknown builtin sweep must fail")
	}
}

// TestSpecJSONRoundTrip pins the self-containedness of the canonical
// form: SpecJSON re-parses with nil lookups (base resolved inline) into
// an exploration with an identical canonical form.
func TestSpecJSONRoundTrip(t *testing.T) {
	ex, err := Parse([]byte(specJSON), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ex.SpecJSON()
	if err != nil {
		t.Fatal(err)
	}
	ex2, err := Parse(raw, nil, nil)
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v", err)
	}
	raw2, err := ex2.SpecJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Errorf("canonical form is not a fixed point:\n%s\nvs\n%s", raw, raw2)
	}
}

// TestFingerprint pins the checkpoint-compatibility rule: the budget is
// excluded (a resumed run may extend it), everything else is identity.
func TestFingerprint(t *testing.T) {
	ex, err := Parse([]byte(specJSON), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := ex.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	bigger := ex
	bigger.Strategy.Budget = 500
	if fp2, _ := bigger.Fingerprint(); fp2 != fp {
		t.Error("budget change must not change the fingerprint")
	}

	reseeded := ex
	reseeded.Strategy.Seed = 43
	if fp2, _ := reseeded.Fingerprint(); fp2 == fp {
		t.Error("seed change must change the fingerprint (different trajectory)")
	}

	respaced := ex
	respaced.Sweep.Axes = ex.Sweep.Axes[:1]
	if fp2, _ := respaced.Fingerprint(); fp2 == fp {
		t.Error("axis change must change the fingerprint (different space)")
	}
}

// TestCheckpointRoundTrip covers the directory layout: the spec and the
// progress log round-trip, a missing log is a fresh start, and a log
// from a different exploration is rejected.
func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ex, err := Parse([]byte(specJSON), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := ex.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	if _, found, err := loadCheckpoint(dir, fp); err != nil || found {
		t.Fatalf("missing checkpoint must be a fresh start, got found=%v err=%v", found, err)
	}

	if err := saveSpec(dir, ex); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSpec(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fp2, _ := loaded.Fingerprint(); fp2 != fp {
		t.Errorf("spec round-trip changed the fingerprint: %s vs %s", fp2, fp)
	}

	cp := &checkpoint{
		SchemaVersion: 1,
		Fingerprint:   fp,
		Round:         3,
		Radius:        2,
		Quiet:         1,
		Visited: []PointRecord{
			{PointSummary: sweep.PointSummary{Index: 7, Key: "k7"}, Round: 1},
			{PointSummary: sweep.PointSummary{Index: 2, Key: "k2"}, Round: 2, Rung: 1},
		},
	}
	if err := saveCheckpoint(dir, cp); err != nil {
		t.Fatal(err)
	}
	got, found, err := loadCheckpoint(dir, fp)
	if err != nil || !found {
		t.Fatalf("checkpoint load: found=%v err=%v", found, err)
	}
	if got.Round != 3 || got.Radius != 2 || got.Quiet != 1 || len(got.Visited) != 2 ||
		got.Visited[0].Index != 7 || got.Visited[1].Rung != 1 {
		t.Errorf("checkpoint round-trip: %+v", got)
	}

	if _, _, err := loadCheckpoint(dir, "0000000000000000"); err == nil {
		t.Error("fingerprint mismatch must be rejected")
	}
}

// TestDeterministicTrajectory pins the core reproducibility promise:
// two runs of one spec visit the same points in the same order.
func TestDeterministicTrajectory(t *testing.T) {
	sw := paperGrid(t)
	ex := Explore{Name: "det", Sweep: sw, Strategy: Strategy{Seed: 3, Samples: 2}}

	var logs []string
	for i := 0; i < 2; i++ {
		rn := scenario.NewRunner(2)
		got, err := Run(context.Background(), rn, ex, Options{}, nil)
		rn.Close()
		if err != nil {
			t.Fatal(err)
		}
		logs = append(logs, visitLog(got))
	}
	if logs[0] != logs[1] {
		t.Errorf("trajectories diverge:\n%s\nvs\n%s", logs[0], logs[1])
	}
}

// TestBudgetStopsSearch pins the budget contract: the search visits at
// most Budget distinct points and reports Exhausted, not Converged,
// when the budget cut it short.
func TestBudgetStopsSearch(t *testing.T) {
	sw := paperGrid(t)
	rn := scenario.NewRunner(2)
	defer rn.Close()
	got, err := Run(context.Background(), rn, Explore{Name: "budget", Sweep: sw}, Options{Budget: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Visited > 5 {
		t.Errorf("visited %d points over a budget of 5", got.Visited)
	}
	if !got.Exhausted || got.Converged {
		t.Errorf("budget-cut run must be exhausted, not converged: %+v", got)
	}
	if got.Budget != 5 {
		t.Errorf("reported budget %d, want 5", got.Budget)
	}
}

// TestRungLadder exercises successive halving: with a one-run probe
// rung configured, candidates the full-fidelity front already dominates
// are culled at the rung (recorded with its fidelity, never promoted,
// never on a front).
func TestRungLadder(t *testing.T) {
	sw := paperGrid(t)
	sw.Pareto = []sweep.ParetoPair{{X: "l2_bytes", Y: "makespan"}}
	rn := scenario.NewRunner(2)
	defer rn.Close()
	got, err := Run(context.Background(), rn, Explore{
		Name:     "rungs",
		Sweep:    sw,
		Strategy: Strategy{Rungs: []int{1}},
	}, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	culled := 0
	for _, p := range got.Points {
		if p.Rung != 0 {
			culled++
		}
	}
	if culled == 0 {
		t.Fatal("expected the probe rung to cull at least one dominated candidate")
	}
	if got.FullFidelity+culled != got.Visited {
		t.Errorf("fidelity accounting: %d full + %d culled != %d visited", got.FullFidelity, culled, got.Visited)
	}
	onFront := map[int]bool{}
	for _, f := range got.Pareto {
		for _, idx := range f.Indices {
			onFront[idx] = true
		}
	}
	for _, p := range got.Points {
		if p.Rung != 0 && onFront[p.Index] {
			t.Errorf("culled point %d sits on a front", p.Index)
		}
	}
}
