package explore

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/scenario"
	"repro/internal/store"
)

// diskRunner builds a runner persisting to dir, the way the CLI's
// -store-dir flag wires it.
func diskRunner(t *testing.T, dir string) *scenario.Runner {
	t.Helper()
	ds, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	rn := scenario.NewRunnerWithStore(2, store.NewResilient(ds, store.ResilientOptions{
		Backoff: time.Microsecond,
	}))
	t.Cleanup(func() { rn.Close() })
	return rn
}

// TestCrashResumeReExecutesNothing is the crash-safety acceptance test:
// an exploration killed at the explore.step fault site — after a
// round's points simulated and persisted, before the checkpoint
// recorded them — resumes to the exact final state of an unkilled run,
// and the two halves together execute exactly the stage work of the
// unkilled baseline: zero stages re-executed across the crash.
func TestCrashResumeReExecutesNothing(t *testing.T) {
	sw := paperGrid(t)
	ex := Explore{Name: "crashy", Sweep: sw, Strategy: Strategy{Seed: 5}}

	// Baseline: the same exploration, uninterrupted, on its own store.
	baseline := diskRunner(t, t.TempDir())
	want, err := Run(context.Background(), baseline, ex, Options{CheckpointDir: t.TempDir()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseStats := baseline.Stats()

	// Crash run: same spec, fresh store + checkpoint dir, killed at the
	// second round's crash window (round evaluated, checkpoint not yet
	// written — the worst case: the round's work is only in the store).
	storeDir, cpDir := t.TempDir(), t.TempDir()
	crashed := diskRunner(t, storeDir)
	restore := faults.Activate(faults.New(1).ErrorAt(faults.SiteExploreStep, 1))
	_, err = Run(context.Background(), crashed, ex, Options{CheckpointDir: cpDir}, nil)
	restore()
	var inj *faults.InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("crash run: want injected fault, got %v", err)
	}
	crashedStats := crashed.Stats()
	if crashedStats.StageRuns == 0 {
		t.Fatal("crash run executed nothing — the fault fired too early to prove anything")
	}

	// Resume: same store, same checkpoint dir. The checkpoint restores
	// round one's points without touching the runner; the re-proposed
	// round-two points land as disk hits, not stage runs.
	resumed := diskRunner(t, storeDir)
	got, err := Run(context.Background(), resumed, LoadSpecOrDie(t, cpDir), Options{CheckpointDir: cpDir, Resume: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	resumedStats := resumed.Stats()

	if got.Resumed == 0 {
		t.Error("resumed run restored nothing from the checkpoint")
	}
	if total := crashedStats.StageRuns + resumedStats.StageRuns; total != baseStats.StageRuns {
		t.Errorf("stage executions across the crash: %d crashed + %d resumed = %d, baseline %d — %d stages re-executed",
			crashedStats.StageRuns, resumedStats.StageRuns, total, baseStats.StageRuns,
			int64(total)-int64(baseStats.StageRuns))
	}
	if resumedStats.DiskHits == 0 {
		t.Error("resumed run hit the durable store zero times — the crash window was empty")
	}

	// The resumed trajectory must finish bit-identically to the
	// uninterrupted one: same visit log, same fronts.
	if wantLog, gotLog := visitLog(want), visitLog(got); wantLog != gotLog {
		t.Errorf("resumed trajectory diverges from baseline:%s\nvs baseline:%s", gotLog, wantLog)
	}
	if wantFronts, gotFronts := fmt.Sprintf("%+v", want.Pareto), fmt.Sprintf("%+v", got.Pareto); wantFronts != gotFronts {
		t.Errorf("resumed fronts diverge:\n%s\nvs\n%s", gotFronts, wantFronts)
	}
	if !got.Converged {
		t.Error("resumed run must converge like the baseline")
	}
}

// LoadSpecOrDie reloads the exploration from the checkpoint directory —
// the resume path the CLI takes, proving the directory is freestanding.
func LoadSpecOrDie(t *testing.T, dir string) Explore {
	t.Helper()
	ex, err := LoadSpec(dir)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}
