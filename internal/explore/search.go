package explore

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// Options are the per-run knobs that do not belong to the spec.
type Options struct {
	// Budget overrides the strategy's budget when positive.
	Budget int
	// CheckpointDir, when set, receives the spec and an atomically
	// updated visited-point log after every round; a later run with
	// Resume picks up exactly where the log ends.
	CheckpointDir string
	// Resume loads the checkpoint from CheckpointDir before searching.
	// A missing checkpoint is a fresh start, a fingerprint mismatch an
	// error.
	Resume bool
}

// PointResult is one newly simulated point, streamed through the
// observe callback as it completes (points restored from a checkpoint
// are not re-simulated and not re-streamed).
type PointResult struct {
	Index  int           `json:"index"`
	Coords []sweep.Coord `json:"coords"`
	// Rung is the probe fidelity (a "runs" override) this simulation
	// ran at; 0 is full fidelity.
	Rung   int              `json:"rung,omitempty"`
	Result *scenario.Result `json:"result"`
}

// Envelope wraps the point for the NDJSON stream.
func (p PointResult) Envelope() report.Envelope {
	return report.NewEnvelope(PointKind, p)
}

// PointRecord is one visited point in the exploration log: the same
// compact summary the sweep aggregate carries, plus where and at what
// fidelity the search touched it. A non-zero Rung marks a candidate the
// probe ladder culled before full fidelity; its metrics are the probe's
// and it never joins a front.
type PointRecord struct {
	sweep.PointSummary
	Round int `json:"round"`
	Rung  int `json:"rung,omitempty"`
}

// Result is the versioned aggregate document of one exploration.
type Result struct {
	SchemaVersion int    `json:"schema_version"`
	Name          string `json:"name,omitempty"`
	// TotalPoints is the space size; Visited counts distinct points
	// simulated at any fidelity (including points restored from a
	// checkpoint); FullFidelity counts those promoted all the way.
	TotalPoints  int `json:"total_points"`
	Visited      int `json:"visited"`
	FullFidelity int `json:"full_fidelity"`
	// Resumed counts the visited points restored from the checkpoint
	// log rather than simulated by this run.
	Resumed int `json:"resumed,omitempty"`
	Rounds  int `json:"rounds"`
	Budget  int `json:"budget"`
	Failed  int `json:"failed,omitempty"`
	// Converged means the fronts survived the stability rule;
	// Exhausted means the budget (or the space) ran out first. Both
	// can hold when the last allowed point completed the fronts.
	Converged bool `json:"converged"`
	Exhausted bool `json:"exhausted,omitempty"`
	// Points is the visit log, in visit order (not index order — the
	// order itself is the trajectory the determinism guarantee pins).
	Points []PointRecord `json:"points"`

	Sensitivity []sweep.AxisSensitivity `json:"sensitivity,omitempty"`
	Pareto      []sweep.ParetoFront     `json:"pareto,omitempty"`

	// Stats is the runner-counter delta over this run: on a resumed
	// exploration it proves how little was re-simulated.
	Stats scenario.Stats `json:"runner_stats"`
}

// Envelope wraps the aggregate for the machine-readable surface.
func (r *Result) Envelope() report.Envelope {
	return report.NewEnvelope(FrontKind, r)
}

// strategy defaults.
const (
	defaultNeighborhood = 1
	defaultStableRounds = 2
	defaultMaxPerRound  = 3
)

// searcher is the in-flight state of one exploration.
type searcher struct {
	ex      Explore
	sp      *sweep.Space
	pairs   []sweep.ParetoPair
	rn      *scenario.Runner
	observe func(PointResult)

	seed         uint64
	budget       int
	neighborhood int
	stableRounds int
	maxPerRound  int
	maxRadius    int

	records []PointRecord
	visited map[int]int // point index -> position in records

	round   int
	radius  int
	quiet   int
	prevSig string

	converged bool
	exhausted bool
}

// Run executes the exploration through rn. Every simulation goes
// through the runner's memo, so a durable store shared with an earlier
// (or crashed) run turns repeated evaluations into stage hits. observe,
// when non-nil, fires once per newly simulated point in visit order.
func Run(ctx context.Context, rn *scenario.Runner, ex Explore, opts Options, observe func(PointResult)) (*Result, error) {
	sp, err := ex.Sweep.Index()
	if err != nil {
		return nil, err
	}
	s := &searcher{
		ex:      ex,
		sp:      sp,
		pairs:   ex.pairs(),
		rn:      rn,
		observe: observe,
		seed:    ex.Strategy.Seed,
		visited: map[int]int{},
		radius:  defaultNeighborhood,
	}
	s.neighborhood = ex.Strategy.Neighborhood
	if s.neighborhood == 0 {
		s.neighborhood = defaultNeighborhood
	}
	s.stableRounds = ex.Strategy.StableRounds
	if s.stableRounds == 0 {
		s.stableRounds = defaultStableRounds
	}
	s.maxPerRound = ex.Strategy.MaxPerRound
	if s.maxPerRound == 0 {
		s.maxPerRound = defaultMaxPerRound
	}
	s.maxRadius = s.neighborhood + s.stableRounds
	s.radius = s.neighborhood
	s.budget = ex.Strategy.Budget
	if opts.Budget > 0 {
		s.budget = opts.Budget
	}
	if s.budget <= 0 || s.budget > sp.Total() {
		s.budget = sp.Total()
	}

	fp, err := ex.Fingerprint()
	if err != nil {
		return nil, err
	}
	resumed := 0
	if opts.CheckpointDir != "" {
		if opts.Resume {
			cp, found, err := loadCheckpoint(opts.CheckpointDir, fp)
			if err != nil {
				return nil, err
			}
			if found {
				s.restore(cp)
				resumed = len(s.records)
			}
		}
		if err := saveSpec(opts.CheckpointDir, ex); err != nil {
			return nil, err
		}
	}
	s.prevSig = s.signature()

	before := rn.Stats()
	for !s.converged && !s.exhausted {
		if len(s.records) >= s.budget {
			s.exhausted = true
			break
		}
		var cands []candidate
		if s.round == 0 {
			cands = s.seeds()
		} else {
			cands = s.ringCandidates()
		}
		if len(cands) == 0 {
			if len(s.records) >= s.sp.Total() {
				s.converged, s.exhausted = true, true
				break
			}
			if s.radius < s.maxRadius {
				s.radius++
				continue
			}
			s.converged = true
			break
		}
		if s.round > 0 && len(cands) > s.maxPerRound {
			cands = cands[:s.maxPerRound]
		}
		if room := s.budget - len(s.records); len(cands) > room {
			cands = cands[:room]
		}
		if err := s.evalRound(ctx, cands); err != nil {
			return nil, err
		}
		if ctx.Err() != nil {
			// Canceled mid-round: the round's state is partial, so it
			// neither checkpoints nor counts; report what stands.
			res := s.result(resumed, rn.Stats().Delta(before))
			return res, ctx.Err()
		}
		sig := s.signature()
		if sig != s.prevSig {
			s.prevSig = sig
			s.quiet = 0
			s.radius = s.neighborhood
		} else {
			s.quiet++
			if s.radius < s.maxRadius {
				s.radius++
			}
		}
		s.round++
		if s.quiet >= s.stableRounds && !s.scoredRemain() {
			s.converged = true
		}
		// The crash window the fault suite aims at: the round's points
		// are simulated (and persisted by a durable store) but the
		// checkpoint below has not recorded them yet.
		if err := faults.Point(faults.SiteExploreStep); err != nil {
			return nil, err
		}
		if opts.CheckpointDir != "" {
			if err := saveCheckpoint(opts.CheckpointDir, s.checkpoint(fp)); err != nil {
				return nil, err
			}
		}
	}
	if opts.CheckpointDir != "" {
		if err := saveCheckpoint(opts.CheckpointDir, s.checkpoint(fp)); err != nil {
			return nil, err
		}
	}
	return s.result(resumed, rn.Stats().Delta(before)), nil
}

// result assembles the aggregate from the visit log.
func (s *searcher) result(resumed int, stats scenario.Stats) *Result {
	res := &Result{
		SchemaVersion: report.SchemaVersion,
		Name:          s.ex.Name,
		TotalPoints:   s.sp.Total(),
		Visited:       len(s.records),
		Resumed:       resumed,
		Rounds:        s.round,
		Budget:        s.budget,
		Converged:     s.converged,
		Exhausted:     s.exhausted,
		Points:        s.records,
		Stats:         stats,
	}
	full := s.fullSummaries()
	for _, p := range full {
		res.FullFidelity++
		if p.Error != "" {
			res.Failed++
		}
	}
	for _, rec := range s.records {
		if rec.Rung != 0 && rec.Error != "" {
			res.Failed++
		}
	}
	res.Sensitivity = sweep.ComputeSensitivity(s.ex.Sweep, full)
	for _, pr := range s.pairs {
		res.Pareto = append(res.Pareto, sweep.ComputeParetoFront(full, pr))
	}
	return res
}

// fullSummaries collects the full-fidelity summaries — the only points
// fronts and sensitivity are computed from.
func (s *searcher) fullSummaries() []sweep.PointSummary {
	out := make([]sweep.PointSummary, 0, len(s.records))
	for _, rec := range s.records {
		if rec.Rung == 0 {
			out = append(out, rec.PointSummary)
		}
	}
	return out
}

// signature canonicalizes the current fronts' objective-space values.
func (s *searcher) signature() string {
	full := s.fullSummaries()
	byIndex := map[int]*sweep.PointSummary{}
	for i := range full {
		byIndex[full[i].Index] = &full[i]
	}
	var fronts []sweep.ParetoFront
	for _, pr := range s.pairs {
		fronts = append(fronts, sweep.ComputeParetoFront(full, pr))
	}
	return frontSignature(fronts, byIndex)
}

// frontIndices returns the union, across pairs, of the current fronts'
// point indices — the centers the descent proposes neighbors of. Each
// distinct objective-space position contributes one representative (its
// lowest index): metric-identical twins tying on a front are one place
// in objective space, and letting every twin seed its own neighborhood
// would drag the certificate across the whole tie class.
func (s *searcher) frontIndices() []int {
	full := s.fullSummaries()
	byIndex := map[int]*sweep.Metrics{}
	for i := range full {
		byIndex[full[i].Index] = full[i].Metrics
	}
	seen := map[int]bool{}
	var out []int
	for _, pr := range s.pairs {
		pos := map[string]bool{}
		for _, idx := range sweep.ComputeParetoFront(full, pr).Indices {
			m := byIndex[idx]
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%g,%g", m.Get(pr.X), m.Get(pr.Y))
			if pos[key] {
				continue
			}
			pos[key] = true
			if !seen[idx] {
				seen[idx] = true
				out = append(out, idx)
			}
		}
	}
	sort.Ints(out)
	return out
}

// candidate is one proposed point with its ranking keys.
type candidate struct {
	index int
	dist  int     // L1 distance to the nearest front point
	score float64 // sensitivity mass of the dimensions it changes
}

// seeds proposes the initial coarse grid: the center of the space, a
// one-dimensional star through it (every value of every dimension, so
// the first round measures every axis's marginal effect), the two
// extreme corners, and Strategy.Samples seeded random extras.
func (s *searcher) seeds() []candidate {
	sizes := s.sp.DimSizes()
	center := make([]int, len(sizes))
	lo := make([]int, len(sizes))
	hi := make([]int, len(sizes))
	for d, n := range sizes {
		center[d] = n / 2
		hi[d] = n - 1
	}
	var order []int
	seen := map[int]bool{}
	add := func(coord []int) {
		p := s.sp.IndexOf(coord)
		if p < 0 || seen[p] {
			return
		}
		if _, dup := s.visited[p]; dup {
			return
		}
		seen[p] = true
		order = append(order, p)
	}
	add(center)
	for d, n := range sizes {
		c := append([]int(nil), center...)
		for k := 0; k < n; k++ {
			c[d] = k
			add(c)
		}
	}
	add(lo)
	add(hi)
	for i, n := 0, s.ex.Strategy.Samples; i < n; i++ {
		p := int(splitmix64(s.seed^0x5eed^uint64(i)) % uint64(s.sp.Total()))
		if _, dup := s.visited[p]; !dup && !seen[p] {
			seen[p] = true
			order = append(order, p)
		}
	}
	cands := make([]candidate, len(order))
	for i, p := range order {
		cands[i] = candidate{index: p}
	}
	return cands
}

// ringCandidates proposes the unvisited axis-aligned neighbors of the
// current front — pure coordinate-descent moves, each changing exactly
// one dimension by up to the current radius — ranked by the observed
// sensitivity of the moved dimension first (a migration flip outranks a
// solver flip once the log shows solver moves nothing), nearer moves
// before farther ones among equals, with a seeded hash breaking the
// remaining ties. The list is returned whole and ranked; the caller
// caps it (and reads its head to decide convergence).
func (s *searcher) ringCandidates() []candidate {
	fronts := s.frontIndices()
	if len(fronts) == 0 {
		// Nothing simulated cleanly yet (every point failed): walk the
		// space in index order until something sticks.
		var out []candidate
		for p := 0; p < s.sp.Total() && len(out) < s.maxPerRound; p++ {
			if _, dup := s.visited[p]; !dup {
				out = append(out, candidate{index: p})
			}
		}
		return out
	}
	scores := s.dimScores()
	sizes := s.sp.DimSizes()
	best := map[int]candidate{}
	for _, fi := range fronts {
		center := s.sp.CoordOf(fi)
		coord := append([]int(nil), center...)
		for d := range sizes {
			for off := -s.radius; off <= s.radius; off++ {
				k := center[d] + off
				if off == 0 || k < 0 || k >= sizes[d] {
					continue
				}
				coord[d] = k
				p := s.sp.IndexOf(coord)
				if p < 0 {
					continue
				}
				if _, dup := s.visited[p]; dup {
					continue
				}
				dist := off
				if dist < 0 {
					dist = -dist
				}
				cur, ok := best[p]
				if !ok || scores[d] > cur.score || (scores[d] == cur.score && dist < cur.dist) {
					best[p] = candidate{index: p, dist: dist, score: scores[d]}
				}
			}
			coord[d] = center[d]
		}
	}
	cands := make([]candidate, 0, len(best))
	for _, c := range best {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		if cands[a].dist != cands[b].dist {
			return cands[a].dist < cands[b].dist
		}
		ha := splitmix64(s.seed ^ uint64(s.round)*0x9e3779b97f4a7c15 ^ uint64(cands[a].index))
		hb := splitmix64(s.seed ^ uint64(s.round)*0x9e3779b97f4a7c15 ^ uint64(cands[b].index))
		if ha != hb {
			return ha < hb
		}
		return cands[a].index < cands[b].index
	})
	return cands
}

// dimScores measures each dimension's observed effect from matched
// pairs: visited full-fidelity points that differ only in that
// dimension. The score is the largest relative spread of any headline
// metric within any matched group — exactly 0 for a dimension whose
// every flip left the metrics untouched, which is what demotes
// metric-neutral twins below real moves.
func (s *searcher) dimScores() []float64 {
	sizes := s.sp.DimSizes()
	scores := make([]float64, len(sizes))
	full := s.fullSummaries()
	type span struct{ lo, hi [3]float64 }
	for d := range sizes {
		groups := map[string]*span{}
		for i := range full {
			p := &full[i]
			if p.Metrics == nil {
				continue
			}
			coord := s.sp.CoordOf(p.Index)
			key := groupKey(coord, d)
			m := [3]float64{float64(p.Metrics.Makespan), float64(p.Metrics.Misses), p.Metrics.Energy}
			g := groups[key]
			if g == nil {
				groups[key] = &span{lo: m, hi: m}
				continue
			}
			for j := 0; j < 3; j++ {
				if m[j] < g.lo[j] {
					g.lo[j] = m[j]
				}
				if m[j] > g.hi[j] {
					g.hi[j] = m[j]
				}
			}
		}
		for _, g := range groups {
			for j := 0; j < 3; j++ {
				if g.hi[j] > 0 {
					if rel := (g.hi[j] - g.lo[j]) / g.hi[j]; rel > scores[d] {
						scores[d] = rel
					}
				}
			}
		}
	}
	return scores
}

func groupKey(coord []int, skip int) string {
	b := make([]byte, 0, len(coord)*3)
	for d, k := range coord {
		if d == skip {
			k = -1
		}
		b = append(b, byte(d), byte(k>>8), byte(k))
	}
	return string(b)
}

// scoredRemain reports whether an unvisited axis-aligned neighbor of
// the front, within the maximum radius, still lies along a dimension
// the log has shown to move the metrics. It is the certificate the
// stability rule demands on top of quiet rounds: a front is declared
// stable only once every nearby move that could plausibly improve it
// has been tried. Dimensions whose every observed flip left the metrics
// untouched (solver twins) do not block convergence — that is the
// budget the search saves.
func (s *searcher) scoredRemain() bool {
	saved := s.radius
	s.radius = s.maxRadius
	cands := s.ringCandidates()
	s.radius = saved
	for _, c := range cands {
		if c.score > 0 {
			return true
		}
	}
	return false
}

// evalRound simulates one round's candidates: first through the probe
// ladder (each rung culls candidates the full-fidelity fronts already
// dominate), then the survivors at full fidelity. Every outcome lands
// in the visit log.
func (s *searcher) evalRound(ctx context.Context, cands []candidate) error {
	alive := make([]int, len(cands))
	for i, c := range cands {
		alive[i] = c.index
	}
	for _, rung := range s.ex.Strategy.Rungs {
		if len(alive) == 0 {
			return nil
		}
		summaries, err := s.simulate(ctx, alive, rung)
		if err != nil {
			return err
		}
		var next []int
		for i, sum := range summaries {
			if ctx.Err() == nil && !sum.Canceled && !s.dominated(sum) {
				next = append(next, alive[i])
				continue
			}
			if sum.Canceled {
				continue // not visited: a resumed run retries it
			}
			s.append(PointRecord{PointSummary: sum, Round: s.round, Rung: rung})
		}
		alive = next
	}
	summaries, err := s.simulate(ctx, alive, 0)
	if err != nil {
		return err
	}
	for _, sum := range summaries {
		if sum.Canceled {
			continue
		}
		s.append(PointRecord{PointSummary: sum, Round: s.round})
	}
	return nil
}

// dominated reports whether the full-fidelity fronts dominate the
// probe summary under every Pareto pair — the cull rule of the ladder.
func (s *searcher) dominated(sum sweep.PointSummary) bool {
	if sum.Metrics == nil {
		return false
	}
	full := s.fullSummaries()
	for _, pr := range s.pairs {
		front := sweep.ComputeParetoFront(full, pr)
		x, y := sum.Metrics.Get(pr.X), sum.Metrics.Get(pr.Y)
		dominatedHere := false
		for _, idx := range front.Indices {
			for i := range full {
				if full[i].Index != idx || full[i].Metrics == nil {
					continue
				}
				fx, fy := full[i].Metrics.Get(pr.X), full[i].Metrics.Get(pr.Y)
				if fx <= x && fy <= y && (fx < x || fy < y) {
					dominatedHere = true
				}
			}
		}
		if !dominatedHere {
			return false
		}
	}
	return len(s.pairs) > 0
}

// simulate runs the given points through the runner at the given rung
// fidelity (0 = the point's own spec), returning summaries in the same
// order and streaming each completion to the observer.
func (s *searcher) simulate(ctx context.Context, indices []int, rung int) ([]sweep.PointSummary, error) {
	if len(indices) == 0 {
		return nil, nil
	}
	points := make([]sweep.Point, len(indices))
	specs := make([]scenario.Scenario, len(indices))
	for i, p := range indices {
		pt, err := s.sp.PointAt(p)
		if err != nil {
			return nil, err
		}
		if rung > 0 && (pt.Scenario.Runs == 0 || rung < pt.Scenario.Runs) {
			pt.Scenario.Runs = rung
		}
		points[i] = pt
		specs[i] = pt.Scenario
	}
	results, errs, done := s.rn.RunBatchStream(ctx, specs, func(i int, r *scenario.Result) bool {
		if s.observe != nil {
			s.observe(PointResult{Index: points[i].Index, Coords: points[i].Coords, Rung: rung, Result: r})
		}
		return true
	})
	<-done
	out := make([]sweep.PointSummary, len(indices))
	for i, pt := range points {
		ps := sweep.PointSummary{Index: pt.Index, Coords: pt.Coords}
		switch r := results[i]; {
		case r == nil:
			ps.Canceled = true
		case r.Error != "" && (errors.Is(errs[i], context.Canceled) || errors.Is(errs[i], context.DeadlineExceeded)):
			ps.Key, ps.Error, ps.Canceled = r.Key, r.Error, true
		case r.Error != "":
			ps.Key, ps.Error = r.Key, r.Error
		default:
			ps.Key = r.Key
			ps.Metrics = sweep.MetricsOf(r)
		}
		out[i] = ps
	}
	return out, nil
}

// append logs a visited point.
func (s *searcher) append(rec PointRecord) {
	if _, dup := s.visited[rec.Index]; dup {
		return
	}
	s.visited[rec.Index] = len(s.records)
	s.records = append(s.records, rec)
}

// restore rebuilds the search state from a checkpoint.
func (s *searcher) restore(cp *checkpoint) {
	s.records = cp.Visited
	s.visited = map[int]int{}
	for i, rec := range s.records {
		s.visited[rec.Index] = i
	}
	s.round = cp.Round
	s.radius = cp.Radius
	s.quiet = cp.Quiet
	s.converged = cp.Converged
	// A checkpointed "exhausted" is not restored: the resuming run may
	// carry a larger budget, and the loop re-derives exhaustion from
	// the live one.
}

// checkpoint snapshots the search state.
func (s *searcher) checkpoint(fp string) *checkpoint {
	return &checkpoint{
		SchemaVersion: report.SchemaVersion,
		Fingerprint:   fp,
		Round:         s.round,
		Radius:        s.radius,
		Quiet:         s.quiet,
		Converged:     s.converged,
		Exhausted:     s.exhausted,
		Visited:       s.records,
	}
}

// splitmix64 is the 64-bit finalizer of the splitmix generator — the
// seeded, platform-independent hash behind every tie-break.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// coordLabel renders a point's coordinates as the familiar
// axis=value,... label.
func coordLabel(coords []sweep.Coord) string {
	b := make([]byte, 0, 32)
	for i, c := range coords {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, c.Axis...)
		b = append(b, '=')
		b = append(b, c.Value...)
	}
	return string(b)
}
