package explore

import (
	"fmt"
	"strings"

	"repro/internal/report"
)

// Render produces the terminal form of an exploration aggregate — the
// human-readable shape of `compmem explore`: the coverage summary, the
// memo line, the visit log in trajectory order, and the fronts the
// search converged to.
func Render(r *Result) string {
	var b strings.Builder
	name := r.Name
	if name == "" {
		name = "explore"
	}
	fmt.Fprintf(&b, "explore %s: visited %d of %d points (%.0f%%) in %d rounds, budget %d",
		name, r.Visited, r.TotalPoints, 100*float64(r.Visited)/float64(max(r.TotalPoints, 1)), r.Rounds, r.Budget)
	if r.Resumed > 0 {
		fmt.Fprintf(&b, ", %d restored from checkpoint", r.Resumed)
	}
	if r.Failed > 0 {
		fmt.Fprintf(&b, ", %d failed", r.Failed)
	}
	switch {
	case r.Converged && r.Exhausted:
		b.WriteString(" — space exhausted")
	case r.Converged:
		b.WriteString(" — converged")
	case r.Exhausted:
		b.WriteString(" — budget exhausted")
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "runner: %d stage runs (%d profile, %d optimize, %d measured), %d memo hits\n\n",
		r.Stats.StageRuns, r.Stats.ProfileRuns, r.Stats.OptimizeRuns, r.Stats.RunRuns, r.Stats.MemoHits)

	byIndex := map[int]*PointRecord{}
	pt := &report.Table{
		Title:   "Visited points (in visit order)",
		Headers: []string{"#", "round", "point", "makespan", "misses", "energy"},
	}
	for i := range r.Points {
		p := &r.Points[i]
		byIndex[p.Index] = p
		label := coordLabel(p.Coords)
		if p.Rung != 0 {
			label += fmt.Sprintf(" (culled at rung %d)", p.Rung)
		}
		switch {
		case p.Error != "":
			pt.AddRow(p.Index, p.Round, label, "error: "+p.Error, "", "")
		case p.Metrics == nil:
			pt.AddRow(p.Index, p.Round, label, "-", "-", "-")
		default:
			pt.AddRow(p.Index, p.Round, label, p.Metrics.Makespan, p.Metrics.Misses, p.Metrics.Energy)
		}
	}
	b.WriteString(pt.String())

	for _, f := range r.Pareto {
		if len(f.Indices) == 0 {
			continue
		}
		t := &report.Table{
			Title:   fmt.Sprintf("\nPareto front: %s vs %s (non-dominated, both minimized)", f.X, f.Y),
			Headers: []string{"#", "point", f.X, f.Y},
		}
		for _, idx := range f.Indices {
			p := byIndex[idx]
			if p == nil || p.Metrics == nil {
				continue
			}
			t.AddRow(idx, coordLabel(p.Coords), p.Metrics.Get(f.X), p.Metrics.Get(f.Y))
		}
		b.WriteString(t.String())
	}
	return b.String()
}
