// Package explore is the budgeted, adaptive counterpart of package
// sweep: where a sweep exhaustively simulates a declared cross-product,
// an exploration walks the same space point by point — coarse seeding
// first (a center point, a one-dimensional star through it, the extreme
// corners), then Pareto-guided neighborhood descent that proposes only
// unvisited neighbors of the current front, ranked by per-axis
// sensitivity observed so far — and stops when the front stops moving,
// typically after simulating a fraction of the space.
//
// Explorations are data, exactly like sweeps: a versioned JSON spec
// wraps a sweep spec (axes, zip groups, ranges, Pareto pairs — reused
// verbatim) plus a strategy block (seed, budget, neighborhood, stop
// rule, optional low-fidelity rungs). Identical specs yield identical
// trajectories: every choice the search makes — seeding, candidate
// ranking, tie-breaks — is a deterministic function of the spec and the
// simulated outcomes, so two runs of one spec visit the same points in
// the same order on any machine.
//
// Every evaluation goes through the memoizing scenario.Runner, so an
// exploration resumed over a durable store re-simulates nothing it
// already computed; progress itself checkpoints as spec + visited-point
// log (see Options.CheckpointDir), making a killed exploration
// resumable with zero re-executed points. The exhaustive sweep remains
// the differential oracle: on spaces small enough to expand, the
// explored Pareto fronts must land on exactly the exhaustive fronts'
// objective values.
package explore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/scenario"
	"repro/internal/sweep"
)

// SpecVersion is the current exploration spec version.
const SpecVersion = 1

// Envelope kinds of the exploration surface.
const (
	// PointKind wraps one visited point on the NDJSON stream.
	PointKind = "explore.point"
	// FrontKind wraps the final aggregate document (the fronts the
	// search converged to, plus the visit log).
	FrontKind = "explore.front"
)

// Spec is the wire form of an exploration. Sweep is either a sweep spec
// object (see sweep.Spec) or a JSON string naming a built-in sweep;
// the wrapped sweep's axes, zip groups, ranges and Pareto pairs define
// the space and the objectives, and its base scenario may itself name a
// built-in. Unknown fields anywhere are an error.
type Spec struct {
	SpecVersion int             `json:"spec_version,omitempty"`
	Name        string          `json:"name,omitempty"`
	Sweep       json.RawMessage `json:"sweep"`
	Strategy    Strategy        `json:"strategy,omitzero"`
}

// Strategy is the search-control block of an exploration spec. The zero
// value is a valid strategy: unbounded budget, neighborhood 1, two
// stable rounds, three proposals per round, no rungs.
type Strategy struct {
	// Seed parameterizes every tie-break the search makes (candidate
	// ordering among equals, random samples). Two specs differing only
	// in Seed explore the same space along different trajectories.
	Seed uint64 `json:"seed,omitempty"`
	// Budget caps the number of distinct points simulated at any
	// fidelity; 0 means the whole space. The CLI/API -budget option
	// overrides it per run without changing the spec's identity (the
	// checkpoint fingerprint excludes it, so a resumed run may extend
	// the budget of an exhausted one).
	Budget int `json:"budget,omitempty"`
	// Rungs is an ascending ladder of low-fidelity probe runs
	// (scenario "runs" overrides) for successive halving: a candidate
	// is first simulated at each rung and discarded as soon as the
	// current full-fidelity front dominates it under every Pareto
	// pair; only candidates surviving the ladder are promoted to
	// full-fidelity simulation. Empty means every candidate simulates
	// at full fidelity directly — the default, and the only mode with
	// the exhaustive-oracle guarantee (a rung can misjudge a noisy
	// candidate).
	Rungs []int `json:"rungs,omitempty"`
	// Neighborhood is the search radius (in coordinate steps, L1) the
	// descent resets to after every front improvement; default 1.
	Neighborhood int `json:"neighborhood,omitempty"`
	// StableRounds is how many consecutive non-improving rounds the
	// search tolerates before declaring convergence; default 2. The
	// radius escalates by one per quiet round up to
	// Neighborhood+StableRounds, so the final rounds look farther out.
	StableRounds int `json:"stable_rounds,omitempty"`
	// MaxPerRound caps the candidates simulated per round; default 3.
	// Smaller rounds spend the budget more carefully (each round's
	// outcomes re-rank the next round's candidates) at the cost of
	// more rounds.
	MaxPerRound int `json:"max_per_round,omitempty"`
	// Samples adds this many seeded random unvisited points to the
	// initial seeding round; default 0. Useful on rugged spaces where
	// the center-plus-star seeding can strand the descent.
	Samples int `json:"samples,omitempty"`
}

// Explore is the parsed, base-resolved form ready to run.
type Explore struct {
	Name     string
	Sweep    sweep.Sweep
	Strategy Strategy
}

// Parse decodes an exploration spec strictly. lookupBase resolves
// scenario-level "base" names inside the wrapped sweep spec;
// lookupSweep resolves a built-in sweep when the "sweep" field is a
// JSON string instead of an object. Both may be nil.
func Parse(raw []byte, lookupBase func(string) (scenario.Scenario, bool), lookupSweep func(string) (sweep.Sweep, bool)) (Explore, error) {
	var spec Spec
	if err := scenario.DecodeStrict(raw, &spec); err != nil {
		return Explore{}, fmt.Errorf("explore: parsing spec: %w", err)
	}
	if spec.SpecVersion != 0 && spec.SpecVersion != SpecVersion {
		return Explore{}, fmt.Errorf("explore: unsupported spec_version %d (current %d)", spec.SpecVersion, SpecVersion)
	}
	if len(spec.Sweep) == 0 {
		return Explore{}, fmt.Errorf("explore: spec has no \"sweep\" (an exploration needs a space)")
	}
	ex := Explore{Name: spec.Name, Strategy: spec.Strategy}
	var builtin string
	if err := json.Unmarshal(spec.Sweep, &builtin); err == nil {
		if lookupSweep == nil {
			return Explore{}, fmt.Errorf("explore: built-in sweep %q not supported here", builtin)
		}
		sw, ok := lookupSweep(builtin)
		if !ok {
			return Explore{}, fmt.Errorf("explore: unknown built-in sweep %q", builtin)
		}
		ex.Sweep = sw
	} else {
		sw, err := sweep.Parse(spec.Sweep, lookupBase)
		if err != nil {
			return Explore{}, err
		}
		ex.Sweep = sw
	}
	if err := ex.Strategy.validate(); err != nil {
		return Explore{}, err
	}
	if ex.Name == "" {
		ex.Name = ex.Sweep.Name
	}
	return ex, nil
}

func (st Strategy) validate() error {
	if st.Budget < 0 || st.Neighborhood < 0 || st.StableRounds < 0 || st.MaxPerRound < 0 || st.Samples < 0 {
		return fmt.Errorf("explore: strategy values must be non-negative")
	}
	prev := 0
	for _, r := range st.Rungs {
		if r <= prev {
			return fmt.Errorf("explore: rungs must be positive and strictly ascending, got %v", st.Rungs)
		}
		prev = r
	}
	return nil
}

// SpecJSON renders the exploration back into its canonical wire form,
// with the sweep's base scenario resolved inline — the self-contained
// document a checkpoint directory stores, re-parseable with nil
// lookups.
func (ex Explore) SpecJSON() ([]byte, error) {
	base, err := json.Marshal(ex.Sweep.Base)
	if err != nil {
		return nil, fmt.Errorf("explore: encoding base scenario: %w", err)
	}
	sw, err := json.Marshal(sweep.Spec{
		SpecVersion: sweep.SpecVersion,
		Name:        ex.Sweep.Name,
		Base:        base,
		Axes:        ex.Sweep.Axes,
		MaxPoints:   ex.Sweep.MaxPoints,
		Pareto:      ex.Sweep.Pareto,
	})
	if err != nil {
		return nil, fmt.Errorf("explore: encoding sweep: %w", err)
	}
	return json.MarshalIndent(Spec{
		SpecVersion: SpecVersion,
		Name:        ex.Name,
		Sweep:       sw,
		Strategy:    ex.Strategy,
	}, "", "  ")
}

// Fingerprint identifies the exploration for checkpoint compatibility:
// a hash of the canonical spec with the budget zeroed, so a resumed run
// may raise (or drop) the budget of a checkpointed one but any change
// to the space, the objectives or the search behavior — which would
// make the logged trajectory unreproducible — is rejected.
func (ex Explore) Fingerprint() (string, error) {
	id := ex
	id.Strategy.Budget = 0
	raw, err := id.SpecJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:16]), nil
}

// pairs returns the exploration's Pareto objectives: the wrapped
// sweep's pairs, or the default fronts when it names none.
func (ex Explore) pairs() []sweep.ParetoPair {
	if len(ex.Sweep.Pareto) > 0 {
		return ex.Sweep.Pareto
	}
	return sweep.DefaultPareto()
}

// frontSignature canonicalizes the objective-space positions of a front
// set: per pair, the sorted distinct (x, y) values of the front's
// members. The search detects improvement by comparing signatures
// across rounds — a newly visited point that merely ties an existing
// front member (a solver twin landing on the identical allocation)
// changes the front's index set but not its signature, and must not
// reset convergence.
func frontSignature(fronts []sweep.ParetoFront, byIndex map[int]*sweep.PointSummary) string {
	var b []byte
	for _, f := range fronts {
		b = append(b, f.X...)
		b = append(b, '/')
		b = append(b, f.Y...)
		b = append(b, ':')
		seen := map[string]bool{}
		var vals []string
		for _, idx := range f.Indices {
			p := byIndex[idx]
			if p == nil || p.Metrics == nil {
				continue
			}
			v := fmt.Sprintf("%g,%g", metricValue(p.Metrics, f.X), metricValue(p.Metrics, f.Y))
			if !seen[v] {
				seen[v] = true
				vals = append(vals, v)
			}
		}
		sort.Strings(vals)
		for _, v := range vals {
			b = append(b, v...)
			b = append(b, ';')
		}
		b = append(b, '\n')
	}
	return string(b)
}

func metricValue(m *sweep.Metrics, name string) float64 { return m.Get(name) }
