package explore

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// testConfig is the fast experiment configuration every test here runs
// under (one profiling run keeps the 1-CPU suite quick).
func testConfig() experiments.Config {
	cfg := experiments.Small()
	cfg.ProfileRuns = 1
	return cfg
}

func paperGrid(t *testing.T) sweep.Sweep {
	t.Helper()
	sw, ok := experiments.BuiltinSweep(testConfig(), experiments.SweepPaperGrid)
	if !ok {
		t.Fatal("paper-grid builtin missing")
	}
	return sw
}

// frontValues canonicalizes a front as its sorted distinct objective
// values — the objective-space shape of the front, invariant to which
// of several metric-identical points (solver twins landing on one
// allocation) represent each position.
func frontValues(f sweep.ParetoFront, metrics map[int]*sweep.Metrics) []string {
	seen := map[string]bool{}
	var out []string
	for _, idx := range f.Indices {
		m := metrics[idx]
		if m == nil {
			continue
		}
		v := fmt.Sprintf("%g,%g", m.Get(f.X), m.Get(f.Y))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

func sweepMetrics(res *sweep.Result) map[int]*sweep.Metrics {
	out := map[int]*sweep.Metrics{}
	for i := range res.Points {
		out[res.Points[i].Index] = res.Points[i].Metrics
	}
	return out
}

func exploreMetrics(res *Result) map[int]*sweep.Metrics {
	out := map[int]*sweep.Metrics{}
	for i := range res.Points {
		if res.Points[i].Rung == 0 {
			out[res.Points[i].Index] = res.Points[i].Metrics
		}
	}
	return out
}

// assertOracle checks the exploration against the exhaustive sweep of
// the same space: per Pareto pair, the explored front must land on
// exactly the exhaustive front's objective values (no position missed,
// none invented), and every explored front index must be a member of
// the exhaustive front (no false positives).
func assertOracle(t *testing.T, exact *sweep.Result, got *Result) {
	t.Helper()
	if len(exact.Pareto) != len(got.Pareto) {
		t.Fatalf("front count: exhaustive %d, explore %d", len(exact.Pareto), len(got.Pareto))
	}
	em := sweepMetrics(exact)
	gm := exploreMetrics(got)
	for i, ef := range exact.Pareto {
		gf := got.Pareto[i]
		if ef.X != gf.X || ef.Y != gf.Y {
			t.Fatalf("front %d pair mismatch: %s/%s vs %s/%s", i, ef.X, ef.Y, gf.X, gf.Y)
		}
		want := frontValues(ef, em)
		have := frontValues(gf, gm)
		if fmt.Sprint(want) != fmt.Sprint(have) {
			t.Errorf("front %s/%s objective values diverge:\n  exhaustive: %v\n  explored:   %v\n  visit log: %s",
				ef.X, ef.Y, want, have, visitLog(got))
		}
		exactSet := map[int]bool{}
		for _, idx := range ef.Indices {
			exactSet[idx] = true
		}
		for _, idx := range gf.Indices {
			if !exactSet[idx] {
				t.Errorf("front %s/%s: explored front admits point %d, which the exhaustive front rejects", ef.X, ef.Y, idx)
			}
		}
	}
}

func visitLog(res *Result) string {
	var s string
	for _, p := range res.Points {
		s += fmt.Sprintf("\n    r%d #%d %s", p.Round, p.Index, coordLabel(p.Coords))
	}
	return s
}

// TestOraclePaperGrid is the acceptance differential: on the built-in
// 32-point paper grid the exploration must reproduce the exhaustive
// Pareto fronts exactly (in objective space) while simulating at most
// 60% of the points (19 of 32).
func TestOraclePaperGrid(t *testing.T) {
	sw := paperGrid(t)

	rnExact := scenario.NewRunner(2)
	defer rnExact.Close()
	exact, err := sweep.Execute(context.Background(), rnExact, sw, nil)
	if err != nil {
		t.Fatal(err)
	}

	rn := scenario.NewRunner(2)
	defer rn.Close()
	got, err := Run(context.Background(), rn, Explore{Name: "oracle", Sweep: sw}, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("explore visited %d of %d points in %d rounds (converged=%v)%s",
		got.Visited, got.TotalPoints, got.Rounds, got.Converged, visitLog(got))

	if !got.Converged {
		t.Error("exploration must converge on the paper grid")
	}
	if limit := exact.TotalPoints * 60 / 100; got.Visited > limit {
		t.Errorf("visited %d of %d points; the acceptance bound is %d (60%%)", got.Visited, exact.TotalPoints, limit)
	}
	assertOracle(t, exact, got)
}

// TestOracleSeededRandomGrid runs the same differential on a seeded
// ~128-point grid with a deliberately rugged axis mix (geometry, CPU
// count, migration, solver), pinning the search's generality beyond the
// grid it was tuned on.
func TestOracleSeededRandomGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute grid; run without -short")
	}
	base, ok := experiments.BuiltinScenario(testConfig(), experiments.ScenarioApp2)
	if !ok {
		t.Fatal("app2 builtin missing")
	}
	sw := sweep.Sweep{
		Name: "rand-grid",
		Base: base,
		Axes: []sweep.Axis{
			{Name: "l2_kb", Field: "platform.l2.kb", Values: rawInts(t, 128, 256, 512, 1024)},
			{Field: "platform.num_cpus", Values: rawInts(t, 2, 4)},
			{Field: "migration", Values: rawBools(t, false, true)},
			{Field: "seed", Range: &sweep.Range{From: 1, Count: 4}},
			{Field: "solver", Values: rawStrings(t, "mckp", "ilp")},
		},
		Pareto: []sweep.ParetoPair{{X: "l2_bytes", Y: "makespan"}, {X: "energy", Y: "makespan"}},
	}

	rnExact := scenario.NewRunner(2)
	defer rnExact.Close()
	exact, err := sweep.Execute(context.Background(), rnExact, sw, nil)
	if err != nil {
		t.Fatal(err)
	}

	rn := scenario.NewRunner(2)
	defer rn.Close()
	got, err := Run(context.Background(), rn, Explore{
		Name:     "rand-oracle",
		Sweep:    sw,
		Strategy: Strategy{Seed: 7, Samples: 4},
	}, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("explore visited %d of %d points in %d rounds (converged=%v)",
		got.Visited, got.TotalPoints, got.Rounds, got.Converged)

	if got.Visited >= got.TotalPoints {
		t.Errorf("exploration visited the whole %d-point space — no saving over the exhaustive sweep", got.TotalPoints)
	}
	assertOracle(t, exact, got)
}

func rawInts(t *testing.T, vs ...int) []json.RawMessage       { return rawJSON(t, vs) }
func rawBools(t *testing.T, vs ...bool) []json.RawMessage     { return rawJSON(t, vs) }
func rawStrings(t *testing.T, vs ...string) []json.RawMessage { return rawJSON(t, vs) }

func rawJSON[T any](t *testing.T, vs []T) []json.RawMessage {
	t.Helper()
	out := make([]json.RawMessage, len(vs))
	for i, v := range vs {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}
