package rtos

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/mem"
)

// AllocUnit is the granularity of cache allocation used throughout the
// reproduction: one unit = 8 consecutive L2 sets. With the paper's L2
// geometry (512 KB, 4-way, 64 B lines, 2048 sets) one unit is 2 KB and
// the cache holds 256 units, matching the magnitude of the "allocated L2
// sets" columns of Tables 1 and 2.
const AllocUnit = 8

// AllocEntry requests an exclusive partition of Units allocation units
// for a named entity, covering the given regions (e.g. a task's code,
// stack and heap, or a single FIFO buffer).
type AllocEntry struct {
	Name    string
	Units   int
	Regions []mem.RegionID
}

// CacheAllocation is the OS-level view of a complete L2 partitioning: the
// translation table to install plus the name→partition index for
// reporting (the rows of Tables 1 and 2).
type CacheAllocation struct {
	Table    *cache.PartitionTable
	UnitSets int
	ByName   map[string]int // entity name → partition id
}

// BuildAllocation constructs the partition table for an L2 with l2Sets
// sets. rtUnits is the size of the default partition that isolates the
// run-time system ("there is a run-time operating system that has an
// exclusive cache part allocated such that it does not interfere with the
// application's tasks"). Unit sizes must be positive; they are rounded up
// to the next power of two as required by the index-translation hardware.
func BuildAllocation(l2Sets, rtUnits int, entries []AllocEntry) (*CacheAllocation, error) {
	if rtUnits <= 0 {
		return nil, fmt.Errorf("rtos: rt partition of %d units", rtUnits)
	}
	table, err := cache.NewPartitionTable(l2Sets, "rt", ceilPow2(rtUnits)*AllocUnit)
	if err != nil {
		return nil, err
	}
	alloc := &CacheAllocation{
		Table:    table,
		UnitSets: AllocUnit,
		ByName:   map[string]int{"rt": table.DefaultID()},
	}
	for _, e := range entries {
		if e.Units <= 0 {
			return nil, fmt.Errorf("rtos: entity %q requests %d units", e.Name, e.Units)
		}
		if _, dup := alloc.ByName[e.Name]; dup {
			return nil, fmt.Errorf("rtos: duplicate entity %q", e.Name)
		}
		id, err := table.AddPartition(e.Name, ceilPow2(e.Units)*AllocUnit)
		if err != nil {
			return nil, err
		}
		for _, r := range e.Regions {
			if err := table.Assign(r, id); err != nil {
				return nil, err
			}
		}
		alloc.ByName[e.Name] = id
	}
	if err := table.Validate(); err != nil {
		return nil, err
	}
	return alloc, nil
}

// UnitsOf returns the number of allocation units of a named entity's
// partition, or 0 when unknown.
func (a *CacheAllocation) UnitsOf(name string) int {
	id, ok := a.ByName[name]
	if !ok {
		return 0
	}
	return a.Table.Partition(id).NumSets / a.UnitSets
}

// Names returns all entity names in deterministic (sorted) order.
func (a *CacheAllocation) Names() []string {
	names := make([]string, 0, len(a.ByName))
	for n := range a.ByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalUnits returns the number of units handed out, including the
// run-time system partition.
func (a *CacheAllocation) TotalUnits() int {
	return a.Table.AllocatedSets() / a.UnitSets
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
