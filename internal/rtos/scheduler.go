// Package rtos is the run-time system of the simulated CAKE tile: a
// per-processor round-robin scheduler with static task assignment
// (optionally task migration), quantum preemption, task-switch cost
// accounting, and the operating-system primitives that manage the L2
// cache allocation tables for tasks and shared memory (paper, section
// 4.2: "We have adapted the operating system, such that it manages the
// necessary translation tables for the cache").
package rtos

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/kpn"
)

// SchedConfig parameterizes the scheduler.
type SchedConfig struct {
	Quantum        int64  // cycles per slice
	SwitchCost     uint64 // cycles charged when a CPU switches tasks
	AllowMigration bool   // tasks may run on any CPU (dynamic scheduling)
}

// DefaultSchedConfig returns a multimedia-typical low switching rate:
// 50k-cycle quanta and a 200-cycle switch cost.
func DefaultSchedConfig() SchedConfig {
	return SchedConfig{Quantum: 50_000, SwitchCost: 200}
}

// Validate checks the configuration.
func (c SchedConfig) Validate() error {
	if c.Quantum <= 0 {
		return fmt.Errorf("rtos: quantum %d not positive", c.Quantum)
	}
	return nil
}

// Scheduler tracks task→processor assignment, per-CPU round-robin order,
// and blocked-task wake times. It contains no main loop: the platform
// engine asks it which task a CPU should run next.
type Scheduler struct {
	cfg  SchedConfig
	cpus []*cpu.Core

	tasks    []*kpn.Process
	assigned map[*kpn.Process]int // static CPU, -1 under migration
	rrNext   []int                // per-CPU rotor into tasks
	current  []*kpn.Process       // last task run per CPU
	wake     map[*kpn.Process]uint64
	switches uint64
}

// NewScheduler creates a scheduler over the given cores.
func NewScheduler(cfg SchedConfig, cpus []*cpu.Core) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(cpus) == 0 {
		return nil, fmt.Errorf("rtos: no processors")
	}
	return &Scheduler{
		cfg:      cfg,
		cpus:     cpus,
		assigned: make(map[*kpn.Process]int),
		rrNext:   make([]int, len(cpus)),
		current:  make([]*kpn.Process, len(cpus)),
		wake:     make(map[*kpn.Process]uint64),
	}, nil
}

// Config returns the scheduler configuration.
func (s *Scheduler) Config() SchedConfig { return s.cfg }

// Add registers a task on a CPU. Under migration the cpu argument is the
// initial placement only.
func (s *Scheduler) Add(p *kpn.Process, cpuIdx int) error {
	if cpuIdx < 0 || cpuIdx >= len(s.cpus) {
		return fmt.Errorf("rtos: task %q assigned to CPU %d of %d", p.Name, cpuIdx, len(s.cpus))
	}
	s.tasks = append(s.tasks, p)
	s.assigned[p] = cpuIdx
	return nil
}

// Tasks returns all registered tasks.
func (s *Scheduler) Tasks() []*kpn.Process { return s.tasks }

// AssignmentOf returns the CPU a task is assigned to.
func (s *Scheduler) AssignmentOf(p *kpn.Process) int { return s.assigned[p] }

// Switches returns the number of task switches performed so far.
func (s *Scheduler) Switches() uint64 { return s.switches }

// runnable reports whether p can make progress, honouring wake times.
func (s *Scheduler) runnable(p *kpn.Process) bool {
	switch p.State() {
	case kpn.Ready:
		return true
	case kpn.Blocked:
		return p.Runnable()
	}
	return false
}

// eligible reports whether p may run on cpuIdx.
func (s *Scheduler) eligible(p *kpn.Process, cpuIdx int) bool {
	if s.cfg.AllowMigration {
		return true
	}
	return s.assigned[p] == cpuIdx
}

// HasRunnable reports whether some task could run on the CPU right now,
// without disturbing the round-robin rotor.
func (s *Scheduler) HasRunnable(cpuIdx int) bool {
	for _, p := range s.tasks {
		if s.eligible(p, cpuIdx) && s.runnable(p) {
			return true
		}
	}
	return false
}

// PickNext selects the next task for a CPU (round-robin over its eligible
// runnable tasks) or nil when the CPU has nothing to do. It does not
// charge switch cost; the engine calls NoteRun when it commits.
func (s *Scheduler) PickNext(cpuIdx int) *kpn.Process {
	n := len(s.tasks)
	for i := 0; i < n; i++ {
		p := s.tasks[(s.rrNext[cpuIdx]+i)%n]
		if s.eligible(p, cpuIdx) && s.runnable(p) {
			s.rrNext[cpuIdx] = (s.rrNext[cpuIdx] + i + 1) % n
			return p
		}
	}
	return nil
}

// NoteRun records that p is about to run on cpuIdx, charges the task
// switch cost when the CPU changes tasks, and applies the wake-time rule:
// a task unblocked by an event at time T on another CPU cannot resume
// before T on its own CPU (the gap is idle time).
func (s *Scheduler) NoteRun(p *kpn.Process, cpuIdx int) {
	core := s.cpus[cpuIdx]
	if w, ok := s.wake[p]; ok {
		core.AdvanceTo(w)
		delete(s.wake, p)
	}
	if s.current[cpuIdx] != p {
		if s.current[cpuIdx] != nil {
			core.Switch(s.cfg.SwitchCost)
		}
		s.current[cpuIdx] = p
		s.switches++
	}
	if s.cfg.AllowMigration {
		s.assigned[p] = cpuIdx
	}
}

// NoteYield must be called after every slice, with the core that just
// executed. Any blocked task whose condition has become satisfiable is
// stamped with the current time of that core as its wake time.
func (s *Scheduler) NoteYield(core *cpu.Core) {
	for _, p := range s.tasks {
		if p.State() != kpn.Blocked {
			continue
		}
		if _, stamped := s.wake[p]; stamped {
			continue
		}
		if p.Runnable() {
			s.wake[p] = core.Now()
		}
	}
}

// AllDone reports whether every task finished.
func (s *Scheduler) AllDone() bool {
	for _, p := range s.tasks {
		if st := p.State(); st != kpn.Done && st != kpn.Failed {
			return false
		}
	}
	return true
}

// AnyFailed returns the first failed task, or nil.
func (s *Scheduler) AnyFailed() *kpn.Process {
	for _, p := range s.tasks {
		if p.State() == kpn.Failed {
			return p
		}
	}
	return nil
}

// Deadlocked reports whether unfinished tasks exist but none is runnable —
// with Kahn semantics this indicates an artificial deadlock from bounded
// FIFOs or an application bug.
func (s *Scheduler) Deadlocked() bool {
	if s.AllDone() {
		return false
	}
	for _, p := range s.tasks {
		if s.runnable(p) {
			return false
		}
	}
	return true
}
