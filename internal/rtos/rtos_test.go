package rtos

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/kpn"
	"repro/internal/mem"
	"repro/internal/trace"
)

type flatMem struct{}

func (flatMem) AccessAt(a trace.Access, now uint64) uint64 { return 2 }

func mkCores(n int) []*cpu.Core {
	cores := make([]*cpu.Core, n)
	for i := range cores {
		cores[i] = cpu.New(cpu.Config{ID: i, BaseCPI: 1.0})
	}
	return cores
}

func mkProc(as *mem.AddressSpace, name string, body func(*kpn.Ctx)) *kpn.Process {
	return &kpn.Process{
		Name: name,
		Body: body,
		Code: as.MustAlloc(name+".code", mem.KindCode, name, 4096),
		Heap: as.MustAlloc(name+".heap", mem.KindHeap, name, 4096),
	}
}

// drive is a miniature engine for scheduler tests.
func drive(t *testing.T, s *Scheduler, maxSlices int) {
	t.Helper()
	for _, p := range s.Tasks() {
		p.Start()
	}
	m := flatMem{}
	for n := 0; n < maxSlices; n++ {
		if s.AllDone() {
			return
		}
		if s.Deadlocked() {
			t.Fatal("deadlock")
		}
		ran := false
		for ci := range mkRange(len(s.Tasks())) { // upper bound on CPUs touched
			if ci >= len(sCores(s)) {
				break
			}
			p := s.PickNext(ci)
			if p == nil {
				continue
			}
			s.NoteRun(p, ci)
			p.RunSlice(sCores(s)[ci], m, s.Config().Quantum)
			s.NoteYield(sCores(s)[ci])
			ran = true
		}
		if !ran && !s.AllDone() {
			t.Fatal("no progress")
		}
	}
	if !s.AllDone() {
		t.Fatal("tasks did not finish")
	}
}

func mkRange(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}

// sCores exposes the cores for the test driver.
func sCores(s *Scheduler) []*cpu.Core { return s.cpus }

func TestSchedConfigValidate(t *testing.T) {
	if err := DefaultSchedConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (SchedConfig{Quantum: 0}).Validate(); err == nil {
		t.Error("zero quantum accepted")
	}
}

func TestNewSchedulerErrors(t *testing.T) {
	if _, err := NewScheduler(SchedConfig{Quantum: -1}, mkCores(1)); err == nil {
		t.Error("bad config accepted")
	}
	if _, err := NewScheduler(DefaultSchedConfig(), nil); err == nil {
		t.Error("no cpus accepted")
	}
}

func TestAddRejectsBadCPU(t *testing.T) {
	s, _ := NewScheduler(DefaultSchedConfig(), mkCores(2))
	as := mem.NewAddressSpace()
	p := mkProc(as, "t", func(*kpn.Ctx) {})
	if err := s.Add(p, 5); err == nil {
		t.Error("out-of-range CPU accepted")
	}
	if err := s.Add(p, 1); err != nil {
		t.Fatal(err)
	}
	if s.AssignmentOf(p) != 1 {
		t.Error("assignment not recorded")
	}
}

func TestStaticAssignmentRespected(t *testing.T) {
	cores := mkCores(2)
	s, _ := NewScheduler(SchedConfig{Quantum: 1000, SwitchCost: 10}, cores)
	as := mem.NewAddressSpace()
	p0 := mkProc(as, "a", func(c *kpn.Ctx) { c.Exec(100) })
	p1 := mkProc(as, "b", func(c *kpn.Ctx) { c.Exec(100) })
	s.Add(p0, 0)
	s.Add(p1, 1)
	p0.Start()
	p1.Start()
	if got := s.PickNext(0); got != p0 {
		t.Errorf("CPU0 picked %v", got)
	}
	if got := s.PickNext(1); got != p1 {
		t.Errorf("CPU1 picked %v", got)
	}
	// CPU0 must never pick p1 under static assignment.
	p0.Kill()
	if got := s.PickNext(0); got != nil {
		t.Errorf("CPU0 picked %v after its only task died", got)
	}
	p1.Kill()
}

func TestMigrationAllowsAnyCPU(t *testing.T) {
	cores := mkCores(2)
	s, _ := NewScheduler(SchedConfig{Quantum: 1000, AllowMigration: true}, cores)
	as := mem.NewAddressSpace()
	p := mkProc(as, "a", func(c *kpn.Ctx) { c.Exec(10) })
	s.Add(p, 0)
	p.Start()
	if got := s.PickNext(1); got != p {
		t.Error("migration did not offer the task to CPU1")
	}
	s.NoteRun(p, 1)
	if s.AssignmentOf(p) != 1 {
		t.Error("migration did not update assignment")
	}
	p.Kill()
}

func TestRoundRobinFairness(t *testing.T) {
	cores := mkCores(1)
	s, _ := NewScheduler(SchedConfig{Quantum: 50, SwitchCost: 1}, cores)
	as := mem.NewAddressSpace()
	var order []string
	mk := func(name string) *kpn.Process {
		return mkProc(as, name, func(c *kpn.Ctx) {
			for i := 0; i < 3; i++ {
				order = append(order, name)
				c.Exec(60) // exceeds quantum: forced yield each round
			}
		})
	}
	s.Add(mk("a"), 0)
	s.Add(mk("b"), 0)
	drive(t, s, 1000)
	// Round-robin: a and b interleave rather than run to completion.
	if order[0] == order[1] && order[1] == order[2] {
		t.Errorf("no interleaving: %v", order)
	}
}

func TestSwitchCostCharged(t *testing.T) {
	cores := mkCores(1)
	s, _ := NewScheduler(SchedConfig{Quantum: 50, SwitchCost: 7}, cores)
	as := mem.NewAddressSpace()
	s.Add(mkProc(as, "a", func(c *kpn.Ctx) { c.Exec(120) }), 0)
	s.Add(mkProc(as, "b", func(c *kpn.Ctx) { c.Exec(120) }), 0)
	drive(t, s, 1000)
	if cores[0].SwitchCycles() == 0 {
		t.Error("no switch cycles charged")
	}
	if cores[0].SwitchCycles()%7 != 0 {
		t.Errorf("switch cycles %d not a multiple of cost 7", cores[0].SwitchCycles())
	}
	if s.Switches() < 2 {
		t.Errorf("switches = %d", s.Switches())
	}
}

func TestWakeTimeAdvancesConsumerClock(t *testing.T) {
	cores := mkCores(2)
	s, _ := NewScheduler(SchedConfig{Quantum: 1_000_000, SwitchCost: 0}, cores)
	as := mem.NewAddressSpace()
	f := kpn.MustNewFIFO(as, "f", 4, 4)
	prod := mkProc(as, "prod", func(c *kpn.Ctx) {
		c.Exec(5000) // long compute before producing
		f.Write32(c, 42)
		f.Close(c)
	})
	cons := mkProc(as, "cons", func(c *kpn.Ctx) {
		v, ok := f.Read32(c)
		if !ok || v != 42 {
			panic("bad token")
		}
	})
	s.Add(prod, 0)
	s.Add(cons, 1)
	prod.Start()
	cons.Start()
	m := flatMem{}

	// Consumer runs first and blocks at its local time ~0.
	s.NoteRun(cons, 1)
	cons.RunSlice(cores[1], m, s.Config().Quantum)
	s.NoteYield(cores[1])
	// Producer runs to completion.
	s.NoteRun(prod, 0)
	for prod.State() != kpn.Done {
		prod.RunSlice(cores[0], m, s.Config().Quantum)
		s.NoteYield(cores[0])
	}
	prodTime := cores[0].Now()
	// Consumer resumes: its clock must jump past the production time.
	if !cons.Runnable() {
		t.Fatal("consumer not woken")
	}
	s.NoteRun(cons, 1)
	cons.RunSlice(cores[1], m, s.Config().Quantum)
	if cores[1].Now() < prodTime {
		t.Errorf("consumer time %d earlier than production time %d", cores[1].Now(), prodTime)
	}
	if cores[1].IdleCycles() == 0 {
		t.Error("consumer wait was not accounted as idle time")
	}
}

func TestDeadlockDetection(t *testing.T) {
	cores := mkCores(1)
	s, _ := NewScheduler(SchedConfig{Quantum: 1000}, cores)
	as := mem.NewAddressSpace()
	f := kpn.MustNewFIFO(as, "f", 4, 1)
	p := mkProc(as, "stuck", func(c *kpn.Ctx) {
		var b [4]byte
		f.Read(c, b[:]) // no producer: artificial deadlock
	})
	s.Add(p, 0)
	p.Start()
	s.NoteRun(p, 0)
	p.RunSlice(cores[0], flatMem{}, 1000)
	if !s.Deadlocked() {
		t.Error("deadlock not detected")
	}
	if s.AllDone() {
		t.Error("AllDone on deadlocked system")
	}
	p.Kill()
	if s.AnyFailed() != p {
		t.Error("AnyFailed did not report killed task")
	}
	if s.Deadlocked() {
		t.Error("failed-only system should not be deadlocked")
	}
}

func TestBuildAllocation(t *testing.T) {
	entries := []AllocEntry{
		{Name: "t0", Units: 4, Regions: []mem.RegionID{0, 1}},
		{Name: "t1", Units: 3, Regions: []mem.RegionID{2}}, // rounds to 4
		{Name: "fifo0", Units: 1, Regions: []mem.RegionID{3}},
	}
	a, err := BuildAllocation(2048, 4, entries)
	if err != nil {
		t.Fatal(err)
	}
	if a.UnitsOf("t0") != 4 || a.UnitsOf("fifo0") != 1 {
		t.Errorf("units = %d/%d", a.UnitsOf("t0"), a.UnitsOf("fifo0"))
	}
	if a.UnitsOf("t1") != 4 {
		t.Errorf("t1 units = %d, want 4 (rounded up)", a.UnitsOf("t1"))
	}
	if a.UnitsOf("rt") != 4 {
		t.Errorf("rt units = %d, want 4", a.UnitsOf("rt"))
	}
	if a.UnitsOf("absent") != 0 {
		t.Error("unknown entity should have 0 units")
	}
	// Region→partition wiring.
	if p := a.Table.PartitionOf(0); p != a.ByName["t0"] {
		t.Error("region 0 not in t0's partition")
	}
	if p := a.Table.PartitionOf(99); p != a.Table.DefaultID() {
		t.Error("unassigned region not in rt partition")
	}
	if got := a.TotalUnits(); got != 4+4+4+1 {
		t.Errorf("TotalUnits = %d, want 13", got)
	}
	names := a.Names()
	if len(names) != 4 || names[0] != "fifo0" {
		t.Errorf("names = %v", names)
	}
}

func TestBuildAllocationErrors(t *testing.T) {
	if _, err := BuildAllocation(2048, 0, nil); err == nil {
		t.Error("zero rt units accepted")
	}
	if _, err := BuildAllocation(2048, 1, []AllocEntry{{Name: "x", Units: 0}}); err == nil {
		t.Error("zero entity units accepted")
	}
	if _, err := BuildAllocation(2048, 1, []AllocEntry{
		{Name: "x", Units: 1}, {Name: "x", Units: 1},
	}); err == nil {
		t.Error("duplicate entity accepted")
	}
	// Over-commit: 2048 sets = 256 units.
	if _, err := BuildAllocation(2048, 1, []AllocEntry{{Name: "big", Units: 300}}); err == nil {
		t.Error("over-commit accepted")
	}
	if _, err := BuildAllocation(100, 1, nil); err == nil {
		t.Error("bad set count accepted")
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 17: 32, 128: 128}
	for in, want := range cases {
		if got := ceilPow2(in); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
