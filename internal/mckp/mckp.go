// Package mckp solves the multiple-choice knapsack problem exactly by
// dynamic programming over the budget.
//
// The paper's (M)ILP of section 3.2 — pick exactly one cache size z_p per
// task such that the total allocated cache stays within the available
// capacity and the total number of misses is minimal — has exactly this
// structure: every task is an item group whose choices are the candidate
// cache sizes, weight = allocation units, cost = m̄(z_p) misses. The DP
// is exact and runs in O(items × budget × choices), trivially fast at the
// paper's scale (tens of entities, 256 units), so it is the production
// solver; internal/ilp solves the same program by LP-based branch and
// bound and the two cross-validate in tests.
package mckp

import (
	"errors"
	"fmt"
	"math"
)

// Choice is one admissible allocation for an item.
type Choice struct {
	Weight int     // allocation units
	Cost   float64 // misses at this allocation
}

// Item is one entity (task, buffer, section) with its candidate sizes.
type Item struct {
	Name    string
	Choices []Choice
}

// Solution holds the chosen alternative per item.
type Solution struct {
	Pick   []int // index into Items[i].Choices
	Cost   float64
	Weight int
}

// Errors returned by Solve.
var (
	ErrNoChoices  = errors.New("mckp: item with no choices")
	ErrBadWeight  = errors.New("mckp: choice with negative weight")
	ErrInfeasible = errors.New("mckp: no selection fits the budget")
)

// Solve picks exactly one choice per item minimizing total cost subject
// to total weight ≤ budget.
func Solve(items []Item, budget int) (*Solution, error) {
	n := len(items)
	if budget < 0 {
		return nil, fmt.Errorf("%w: budget %d", ErrInfeasible, budget)
	}
	for _, it := range items {
		if len(it.Choices) == 0 {
			return nil, fmt.Errorf("%w: %q", ErrNoChoices, it.Name)
		}
		for _, c := range it.Choices {
			if c.Weight < 0 {
				return nil, fmt.Errorf("%w: %q", ErrBadWeight, it.Name)
			}
		}
	}
	const inf = math.MaxFloat64
	// dp[b] = min cost using items 0..i with total weight exactly ≤ b
	// (we keep the "≤ b" closure by a final min-scan per item).
	dp := make([]float64, budget+1)
	pick := make([][]int16, n)
	for b := range dp {
		dp[b] = 0
	}
	cur := make([]float64, budget+1)
	for i, it := range items {
		pick[i] = make([]int16, budget+1)
		for b := 0; b <= budget; b++ {
			cur[b] = inf
			pick[i][b] = -1
			for ci, c := range it.Choices {
				if c.Weight > b {
					continue
				}
				prev := dp[b-c.Weight]
				if prev == inf {
					continue
				}
				if v := prev + c.Cost; v < cur[b] {
					cur[b] = v
					pick[i][b] = int16(ci)
				}
			}
		}
		copy(dp, cur)
	}
	// Find the best budget point.
	bestB := -1
	for b := 0; b <= budget; b++ {
		if dp[b] < inf && (bestB < 0 || dp[b] < dp[bestB]) {
			bestB = b
		}
	}
	if bestB < 0 {
		return nil, ErrInfeasible
	}
	sol := &Solution{Pick: make([]int, n), Cost: dp[bestB]}
	b := bestB
	for i := n - 1; i >= 0; i-- {
		ci := int(pick[i][b])
		if ci < 0 {
			return nil, fmt.Errorf("mckp: internal reconstruction failure at item %d", i)
		}
		sol.Pick[i] = ci
		w := items[i].Choices[ci].Weight
		sol.Weight += w
		b -= w
	}
	return sol, nil
}

// BruteForce enumerates all selections; it is exponential and exists only
// to cross-check Solve in tests.
func BruteForce(items []Item, budget int) (*Solution, error) {
	n := len(items)
	for _, it := range items {
		if len(it.Choices) == 0 {
			return nil, fmt.Errorf("%w: %q", ErrNoChoices, it.Name)
		}
	}
	best := &Solution{Cost: math.MaxFloat64}
	pick := make([]int, n)
	var rec func(i, w int, cost float64)
	rec = func(i, w int, cost float64) {
		if w > budget || cost >= best.Cost {
			return
		}
		if i == n {
			best = &Solution{Pick: append([]int(nil), pick...), Cost: cost, Weight: w}
			return
		}
		for ci, c := range items[i].Choices {
			pick[i] = ci
			rec(i+1, w+c.Weight, cost+c.Cost)
		}
	}
	rec(0, 0, 0)
	if best.Pick == nil {
		return nil, ErrInfeasible
	}
	return best, nil
}
