package mckp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTwoItems(t *testing.T) {
	items := []Item{
		{Name: "a", Choices: []Choice{{1, 10}, {2, 4}}},
		{Name: "b", Choices: []Choice{{1, 8}, {2, 2}}},
	}
	s, err := Solve(items, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost != 12 {
		t.Errorf("cost = %v, want 12", s.Cost)
	}
	if s.Weight > 3 {
		t.Errorf("weight = %d exceeds budget", s.Weight)
	}
}

func TestBudgetLoose(t *testing.T) {
	items := []Item{
		{Name: "a", Choices: []Choice{{1, 10}, {4, 1}}},
		{Name: "b", Choices: []Choice{{1, 20}, {8, 2}}},
	}
	s, err := Solve(items, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost != 3 || s.Weight != 12 {
		t.Errorf("cost/weight = %v/%d, want 3/12", s.Cost, s.Weight)
	}
	if s.Pick[0] != 1 || s.Pick[1] != 1 {
		t.Errorf("picks = %v", s.Pick)
	}
}

func TestInfeasible(t *testing.T) {
	items := []Item{{Name: "a", Choices: []Choice{{5, 1}}}}
	if _, err := Solve(items, 4); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want infeasible", err)
	}
	if _, err := Solve(items, -1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("negative budget err = %v", err)
	}
}

func TestNoChoices(t *testing.T) {
	if _, err := Solve([]Item{{Name: "x"}}, 5); !errors.Is(err, ErrNoChoices) {
		t.Fatalf("err = %v, want ErrNoChoices", err)
	}
	if _, err := BruteForce([]Item{{Name: "x"}}, 5); !errors.Is(err, ErrNoChoices) {
		t.Fatalf("brute err = %v", err)
	}
}

func TestNegativeWeight(t *testing.T) {
	items := []Item{{Name: "a", Choices: []Choice{{-1, 1}}}}
	if _, err := Solve(items, 5); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("err = %v, want ErrBadWeight", err)
	}
}

func TestEmptyItems(t *testing.T) {
	s, err := Solve(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost != 0 || s.Weight != 0 || len(s.Pick) != 0 {
		t.Errorf("empty solution = %+v", s)
	}
}

func TestZeroWeightChoice(t *testing.T) {
	items := []Item{
		{Name: "a", Choices: []Choice{{0, 100}, {3, 1}}},
		{Name: "b", Choices: []Choice{{0, 50}, {3, 1}}},
	}
	s, err := Solve(items, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Budget 3 admits only one of the weight-3 picks: 100+1 or 50+1 -> 51.
	if s.Cost != 51 {
		t.Errorf("cost = %v, want 51", s.Cost)
	}
}

func TestTightBudgetPrefersCheaperMisses(t *testing.T) {
	// The paper's scenario: several tasks with convex miss curves
	// compete for limited cache; the DP gives capacity to tasks whose
	// curves fall fastest.
	items := []Item{
		{Name: "streaming", Choices: []Choice{{1, 1000}, {2, 990}, {4, 985}}},
		{Name: "looping", Choices: []Choice{{1, 5000}, {2, 800}, {4, 100}}},
	}
	s, err := Solve(items, 5)
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Choices[s.Pick[0]].Weight != 1 || items[1].Choices[s.Pick[1]].Weight != 4 {
		t.Errorf("picks = %v: cache should go to the looping task", s.Pick)
	}
}

// Property: DP equals brute force on random small instances.
func TestMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5) + 1
		items := make([]Item, n)
		for i := range items {
			k := rng.Intn(4) + 1
			for c := 0; c < k; c++ {
				items[i].Choices = append(items[i].Choices, Choice{
					Weight: rng.Intn(6),
					Cost:   float64(rng.Intn(100)),
				})
			}
		}
		budget := rng.Intn(16)
		a, errA := Solve(items, budget)
		b, errB := BruteForce(items, budget)
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return errors.Is(errA, ErrInfeasible) && errors.Is(errB, ErrInfeasible)
		}
		return math.Abs(a.Cost-b.Cost) < 1e-9 && a.Weight <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the returned picks are consistent with the reported cost and
// weight.
func TestSolutionConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 1
		items := make([]Item, n)
		for i := range items {
			k := rng.Intn(5) + 1
			for c := 0; c < k; c++ {
				items[i].Choices = append(items[i].Choices, Choice{
					Weight: rng.Intn(5) + 1,
					Cost:   rng.Float64() * 50,
				})
			}
		}
		budget := rng.Intn(30) + n // always feasible? not necessarily; skip infeasible
		s, err := Solve(items, budget)
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		var cost float64
		w := 0
		for i, ci := range s.Pick {
			cost += items[i].Choices[ci].Cost
			w += items[i].Choices[ci].Weight
		}
		return math.Abs(cost-s.Cost) < 1e-9 && w == s.Weight && w <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolvePaperScale(b *testing.B) {
	// 30 entities × 9 candidate sizes, 256-unit budget: Table 1/2 scale.
	rng := rand.New(rand.NewSource(7))
	items := make([]Item, 30)
	for i := range items {
		for _, w := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
			items[i].Choices = append(items[i].Choices, Choice{
				Weight: w,
				Cost:   float64(rng.Intn(100000)) / float64(w),
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(items, 256); err != nil {
			b.Fatal(err)
		}
	}
}
