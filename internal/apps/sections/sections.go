// Package sections defines the layout of the shared static sections
// ("appl data" and "appl bss") used by the workloads, mirroring how a
// linked multi-task binary lays out its initialized and uninitialized
// globals. All tasks of one application access these regions, which is
// precisely why the paper gives them exclusive cache partitions (section
// 5: "the application and run time system static allocated data (data and
// bss) is shared between tasks").
package sections

import (
	"repro/internal/apps/synth"
	"repro/internal/kpn"
	"repro/internal/mem"
)

// Offsets into the "appl data" region (initialized shared constants).
const (
	ZigZagOff = 0    // 64 × int32: zigzag scan order
	QuantOff  = 256  // 64 × int32: luminance quantization matrix
	CosOff    = 512  // 64 × int32: DCT basis table
	KernelOff = 768  // 3 kernels × 9 × int32: gaussian, sobel-x, sobel-y
	DataSize  = 4096 // minimum region size
)

// Offsets into the "appl bss" region (shared, zero-initialized state).
const (
	HistOff    = 0    // 256 × int32: global luminance histogram
	CounterOff = 1024 // 64 × int32: per-task progress counters
	BSSSize    = 16 * 1024
)

// Gaussian3 is the 3×3 smoothing kernel (sums to 16).
var Gaussian3 = [9]int32{1, 2, 1, 2, 4, 2, 1, 2, 1}

// SobelX is the horizontal-gradient kernel.
var SobelX = [9]int32{-1, 0, 1, -2, 0, 2, -1, 0, 1}

// SobelY is the vertical-gradient kernel.
var SobelY = [9]int32{-1, -2, -1, 0, 0, 0, 1, 2, 1}

// ProbeTable models a task's lookups into a private heap-resident table —
// Huffman/VLC code books, interpolation LUTs, block reorder maps, dither
// matrices. Real media kernels sweep such state cyclically (scan tables,
// window and strip buffers) with occasional data-dependent jumps. The
// cyclic reuse is exactly what the paper's partitioning protects: an
// exclusive partition at least as large as the table serves every sweep
// after the first from cache, while the interleaved traffic of co-running
// tasks pushes a shared LRU cache into loop-thrashing, missing on every
// touch.
type ProbeTable struct {
	Off   uint64 // offset of the table inside the heap
	Bytes uint64
	rng   *synth.Rand
	cur   uint64 // sweep cursor, in lines
}

// probeLine is the sweep granularity: one L2 line per probe.
const probeLine = 64

// NewProbeTable creates a prober with a deterministic access sequence.
func NewProbeTable(off, bytes, seed uint64) *ProbeTable {
	return &ProbeTable{Off: off, Bytes: bytes, rng: synth.NewRand(seed | 1)}
}

// Probe advances the cyclic sweep by n lines (one word read per line,
// plus a data-dependent jump every 16th probe) and returns a value
// derived from the table contents, so the loads are meaningful.
func (t *ProbeTable) Probe(c *kpn.Ctx, heap *mem.Region, n int) uint32 {
	lines := t.Bytes / probeLine
	var acc uint32
	for i := 0; i < n; i++ {
		if t.rng.Next()%16 == 0 {
			t.cur = (t.cur + t.rng.Next()%lines) % lines
		}
		acc ^= c.Load32(heap, t.Off+t.cur*probeLine)
		t.cur = (t.cur + 1) % lines
		c.Exec(6)
	}
	return acc
}

// FillTable initializes a heap table's backing store deterministically,
// as the task's init phase would.
func FillTable(heap *mem.Region, off, bytes, seed uint64) {
	bs := heap.Bytes()
	rng := synth.NewRand(seed | 1)
	for i := uint64(0); i < bytes; i += 4 {
		v := uint32(rng.Next())
		for k := uint64(0); k < 4 && off+i+k < uint64(len(bs)); k++ {
			bs[off+i+k] = byte(v >> (8 * k))
		}
	}
}

// Bump increments a task-progress counter in the shared bss section — the
// read-modify-write traffic that makes "appl bss" a contended entity.
func Bump(c *kpn.Ctx, bss *mem.Region, slot uint64) {
	off := CounterOff + (slot%64)*4
	v := c.Load32(bss, off)
	c.Store32(bss, off, v+1)
}

// HistAdd increments the shared luminance histogram bucket for value.
func HistAdd(c *kpn.Ctx, bss *mem.Region, value byte) {
	off := HistOff + uint64(value)*4
	v := c.Load32(bss, off)
	c.Store32(bss, off, v+1)
}

func put32(b []byte, off int, v int32) {
	b[off] = byte(v)
	b[off+1] = byte(uint32(v) >> 8)
	b[off+2] = byte(uint32(v) >> 16)
	b[off+3] = byte(uint32(v) >> 24)
}

// PreloadData fills an "appl data" region's backing store with the shared
// constant tables, as the loader would when mapping the .data section.
func PreloadData(r *mem.Region) {
	b := r.Bytes()
	for i, v := range synth.ZigZag {
		put32(b, ZigZagOff+i*4, int32(v))
	}
	for i, v := range synth.QuantLuma {
		put32(b, QuantOff+i*4, v)
	}
	cos := synth.CosTable()
	for i, v := range cos {
		put32(b, CosOff+i*4, v)
	}
	for i, v := range Gaussian3 {
		put32(b, KernelOff+i*4, v)
	}
	for i, v := range SobelX {
		put32(b, KernelOff+36+i*4, v)
	}
	for i, v := range SobelY {
		put32(b, KernelOff+72+i*4, v)
	}
}
