package sections

import (
	"testing"

	"repro/internal/apps/synth"
	"repro/internal/cpu"
	"repro/internal/kpn"
	"repro/internal/mem"
	"repro/internal/trace"
)

// runBody executes a task body to completion on a recording memory.
func runBody(t *testing.T, as *mem.AddressSpace, body func(*kpn.Ctx)) *recMem {
	t.Helper()
	rec := &recMem{}
	p := &kpn.Process{
		Name: "t",
		Body: body,
		Code: as.MustAlloc("t.code", mem.KindCode, "t", 4096),
		Heap: as.MustAlloc("t.heap", mem.KindHeap, "t", 64*1024),
	}
	p.Start()
	core := cpu.New(cpu.Config{BaseCPI: 1})
	for p.State() != kpn.Done && p.State() != kpn.Failed {
		y := p.RunSlice(core, rec, 1<<40)
		if y.Reason == kpn.YieldFailed {
			t.Fatal(y.Err)
		}
	}
	return rec
}

type recMem struct{ accesses []trace.Access }

func (m *recMem) AccessAt(a trace.Access, now uint64) uint64 {
	m.accesses = append(m.accesses, a)
	return 0
}

func TestPreloadData(t *testing.T) {
	as := mem.NewAddressSpace()
	r := as.MustAlloc("appl data", mem.KindData, "", DataSize)
	PreloadData(r)
	// Zigzag at offset 0: second entry is 1, third is 8.
	if v, _ := r.Load32(ZigZagOff + 4); v != 1 {
		t.Errorf("zigzag[1] = %d", v)
	}
	if v, _ := r.Load32(ZigZagOff + 8); v != 8 {
		t.Errorf("zigzag[2] = %d", v)
	}
	// Quant matrix.
	if v, _ := r.Load32(QuantOff); int32(v) != synth.QuantLuma[0] {
		t.Errorf("quant[0] = %d", v)
	}
	// Cos table (may be negative -> compare as int32).
	cos := synth.CosTable()
	if v, _ := r.Load32(CosOff + 9*4); int32(v) != cos[9] {
		t.Errorf("cos[9] = %d, want %d", int32(v), cos[9])
	}
	// Kernels.
	if v, _ := r.Load32(KernelOff + 4*4); int32(v) != Gaussian3[4] {
		t.Errorf("gaussian[4] = %d", int32(v))
	}
	if v, _ := r.Load32(KernelOff + 36); int32(v) != SobelX[0] {
		t.Errorf("sobelx[0] = %d", int32(v))
	}
	if v, _ := r.Load32(KernelOff + 72 + 8*4); int32(v) != SobelY[8] {
		t.Errorf("sobely[8] = %d", int32(v))
	}
}

func TestKernelsSumProperties(t *testing.T) {
	var g, sx, sy int32
	for i := 0; i < 9; i++ {
		g += Gaussian3[i]
		sx += SobelX[i]
		sy += SobelY[i]
	}
	if g != 16 {
		t.Errorf("gaussian sum = %d, want 16", g)
	}
	if sx != 0 || sy != 0 {
		t.Errorf("sobel sums = %d/%d, want 0", sx, sy)
	}
}

func TestProbeTableSweepsCyclically(t *testing.T) {
	as := mem.NewAddressSpace()
	rec := runBody(t, as, func(c *kpn.Ctx) {
		FillTable(c.Heap(), 0, 4096, 7)
		tab := NewProbeTable(0, 4096, 99)
		tab.Probe(c, c.Heap(), 200) // > 64 lines: must wrap
	})
	heapBase := as.ByName("t.heap").Base
	seen := map[uint64]bool{}
	inBounds := 0
	for _, a := range rec.accesses {
		if a.Op != trace.Read || a.Addr < heapBase || a.Addr >= heapBase+4096 {
			continue
		}
		inBounds++
		seen[(a.Addr-heapBase)/64] = true
	}
	if inBounds != 200 {
		t.Fatalf("probe reads = %d, want 200", inBounds)
	}
	// A cyclic sweep of 200 probes over a 64-line table covers nearly
	// every line (the occasional data-dependent jump may skip a few).
	if len(seen) < 56 {
		t.Errorf("lines covered = %d, want >= 56 of 64", len(seen))
	}
}

func TestProbeTableDeterministic(t *testing.T) {
	addrsOf := func() []uint64 {
		as := mem.NewAddressSpace()
		rec := runBody(t, as, func(c *kpn.Ctx) {
			FillTable(c.Heap(), 128, 2048, 3)
			tab := NewProbeTable(128, 2048, 42)
			tab.Probe(c, c.Heap(), 50)
		})
		var out []uint64
		for _, a := range rec.accesses {
			if a.Op == trace.Read {
				out = append(out, a.Addr)
			}
		}
		return out
	}
	a, b := addrsOf(), addrsOf()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("probe sequence not deterministic")
		}
	}
}

func TestFillTableBounded(t *testing.T) {
	as := mem.NewAddressSpace()
	r := as.MustAlloc("h", mem.KindHeap, "t", 1024)
	FillTable(r, 512, 4096, 1) // larger than region: must not panic
	if v, _ := r.Load8(100); v != 0 {
		t.Error("FillTable wrote below its offset")
	}
}

func TestBumpAndHistAdd(t *testing.T) {
	as := mem.NewAddressSpace()
	bss := as.MustAlloc("appl bss", mem.KindBSS, "", BSSSize)
	runBody(t, as, func(c *kpn.Ctx) {
		Bump(c, bss, 3)
		Bump(c, bss, 3)
		Bump(c, bss, 70) // wraps to slot 6
		HistAdd(c, bss, 200)
		HistAdd(c, bss, 200)
		HistAdd(c, bss, 0)
	})
	if v, _ := bss.Load32(CounterOff + 3*4); v != 2 {
		t.Errorf("counter 3 = %d", v)
	}
	if v, _ := bss.Load32(CounterOff + 6*4); v != 1 {
		t.Errorf("counter 70%%64 = %d", v)
	}
	if v, _ := bss.Load32(HistOff + 200*4); v != 2 {
		t.Errorf("hist[200] = %d", v)
	}
	if v, _ := bss.Load32(HistOff); v != 1 {
		t.Errorf("hist[0] = %d", v)
	}
}
