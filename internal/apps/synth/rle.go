package synth

import (
	"errors"
	"fmt"
)

// The byte-oriented run-length entropy code used by the synthetic JPEG
// and MPEG-2 streams. Each non-zero coefficient of a zigzag-scanned block
// is coded as three bytes — run length of preceding zeros, then the
// little-endian int16 value — and every block ends with an EOB marker.
// It carries the same information as JPEG's (run,size)+amplitude coding
// with a stable, compiler-independent layout.

// EOB marks the end of a coded block.
const EOB = 0xFF

// ErrCorrupt is returned when a coded stream cannot be parsed.
var ErrCorrupt = errors.New("synth: corrupt coded stream")

// EncodeBlock appends the code of a quantized block (natural order) to
// dst and returns the extended slice.
func EncodeBlock(dst []byte, b *[64]int32) []byte {
	run := 0
	for i := 0; i < 64; i++ {
		v := b[ZigZag[i]]
		if v == 0 {
			run++
			continue
		}
		for run > 254 {
			dst = append(dst, 254, 0, 0) // long zero runs split
			run -= 254
		}
		dst = append(dst, byte(run), byte(uint16(v)), byte(uint16(v)>>8))
		run = 0
	}
	return append(dst, EOB)
}

// DecodeBlock parses one coded block from src into b (natural order,
// zeros included) and returns the number of bytes consumed.
func DecodeBlock(src []byte, b *[64]int32) (int, error) {
	for i := range b {
		b[i] = 0
	}
	pos := 0
	idx := 0
	for {
		if pos >= len(src) {
			return 0, fmt.Errorf("%w: unterminated block", ErrCorrupt)
		}
		run := src[pos]
		if run == EOB {
			return pos + 1, nil
		}
		if pos+3 > len(src) {
			return 0, fmt.Errorf("%w: truncated symbol", ErrCorrupt)
		}
		v := int32(int16(uint16(src[pos+1]) | uint16(src[pos+2])<<8))
		pos += 3
		idx += int(run)
		if v != 0 {
			if idx >= 64 {
				return 0, fmt.Errorf("%w: coefficient index %d", ErrCorrupt, idx)
			}
			b[ZigZag[idx]] = v
			idx++
		}
	}
}

// CodedBlockLen scans one coded block without decoding and returns its
// length in bytes.
func CodedBlockLen(src []byte) (int, error) {
	pos := 0
	for {
		if pos >= len(src) {
			return 0, fmt.Errorf("%w: unterminated block", ErrCorrupt)
		}
		if src[pos] == EOB {
			return pos + 1, nil
		}
		pos += 3
	}
}
