package synth

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("PRNG not deterministic")
		}
	}
	if NewRand(0).Next() != NewRand(0).Next() {
		t.Error("seed 0 not stable")
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	if NewRand(1).Intn(0) != 0 {
		t.Error("Intn(0) should be 0")
	}
}

func TestImageAtClamps(t *testing.T) {
	im := NewImage(4, 4)
	im.Set(0, 0, 10)
	im.Set(3, 3, 20)
	if im.At(-5, -5) != 10 {
		t.Error("negative clamp failed")
	}
	if im.At(10, 10) != 20 {
		t.Error("positive clamp failed")
	}
	im.Set(-1, 0, 99) // ignored
	if im.At(0, 0) != 10 {
		t.Error("out-of-range Set wrote")
	}
}

func TestGenerateImageDeterministicAndVaried(t *testing.T) {
	a := GenerateImage(64, 48, 1)
	b := GenerateImage(64, 48, 1)
	c := GenerateImage(64, 48, 2)
	same, diff := 0, 0
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same seed produced different images")
		}
		if a.Pix[i] != c.Pix[i] {
			diff++
		} else {
			same++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical images")
	}
	// The image is not flat.
	min, max := a.Pix[0], a.Pix[0]
	for _, p := range a.Pix {
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	if max-min < 50 {
		t.Errorf("image dynamic range too small: %d", max-min)
	}
}

func TestZigZagIsPermutation(t *testing.T) {
	seen := [64]bool{}
	for _, v := range ZigZag {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("zigzag not a permutation at %d", v)
		}
		seen[v] = true
	}
	// Spot-check the canonical prefix.
	want := []int{0, 1, 8, 16, 9, 2}
	for i, w := range want {
		if ZigZag[i] != w {
			t.Errorf("ZigZag[%d] = %d, want %d", i, ZigZag[i], w)
		}
	}
}

func TestCosTableMatchesMath(t *testing.T) {
	tab := CosTable()
	for k := 0; k < 8; k++ {
		for n := 0; n < 8; n++ {
			want := math.Cos(float64(2*n+1)*float64(k)*math.Pi/16) * 4096
			got := float64(tab[k*8+n])
			if math.Abs(got-want) > 1.5 {
				t.Errorf("cos[%d][%d] = %v, want %v", k, n, got, want)
			}
		}
	}
}

func TestDCTRoundTrip(t *testing.T) {
	rng := NewRand(3)
	var worst int32
	for trial := 0; trial < 50; trial++ {
		var orig, b [64]int32
		for i := range b {
			v := int32(rng.Intn(256) - 128)
			orig[i], b[i] = v, v
		}
		FDCT8(&b)
		IDCT8(&b)
		for i := range b {
			d := b[i] - orig[i]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	if worst > 8 {
		t.Errorf("DCT round-trip worst error = %d, want <= 8", worst)
	}
}

func TestDCTDCComponent(t *testing.T) {
	var b [64]int32
	for i := range b {
		b[i] = 100
	}
	FDCT8(&b)
	if b[0] < 700 || b[0] > 900 { // DC = 8*mean = 800
		t.Errorf("DC = %d, want ~800", b[0])
	}
	for i := 1; i < 64; i++ {
		if b[i] > 4 || b[i] < -4 {
			t.Errorf("AC[%d] = %d for flat block", i, b[i])
		}
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	var b [64]int32
	for i := range b {
		b[i] = int32(i*7 - 200)
	}
	orig := b
	Quantize(&b, 1)
	Dequantize(&b, 1)
	for i := range b {
		d := b[i] - orig[i]
		if d < 0 {
			d = -d
		}
		if d > QuantLuma[i]/2+1 {
			t.Errorf("quant error at %d: %d vs step %d", i, d, QuantLuma[i])
		}
	}
}

func TestClamp8(t *testing.T) {
	if Clamp8(-500) != 0 || Clamp8(500) != 255 || Clamp8(0) != 128 || Clamp8(-128) != 0 {
		t.Error("clamp wrong")
	}
}

func TestEncodeDecodeBlock(t *testing.T) {
	var b [64]int32
	b[0] = 100
	b[1] = -3
	b[63] = 7
	code := EncodeBlock(nil, &b)
	var out [64]int32
	n, err := DecodeBlock(code, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(code) {
		t.Errorf("consumed %d of %d", n, len(code))
	}
	if out != b {
		t.Errorf("decode mismatch: %v", out)
	}
	if ln, err := CodedBlockLen(code); err != nil || ln != len(code) {
		t.Errorf("CodedBlockLen = %d,%v", ln, err)
	}
}

func TestDecodeBlockErrors(t *testing.T) {
	var out [64]int32
	if _, err := DecodeBlock(nil, &out); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := DecodeBlock([]byte{3, 1}, &out); err == nil {
		t.Error("truncated symbol accepted")
	}
	// Index overflow: 60 zeros + value, then more.
	bad := []byte{60, 1, 0, 60, 1, 0, EOB}
	if _, err := DecodeBlock(bad, &out); err == nil {
		t.Error("coefficient overflow accepted")
	}
	if _, err := CodedBlockLen([]byte{3, 1, 0}); err == nil {
		t.Error("unterminated block accepted by CodedBlockLen")
	}
}

// Property: encode/decode round-trips arbitrary sparse blocks.
func TestRLERoundTripProperty(t *testing.T) {
	f := func(seed int64, density uint8) bool {
		rng := NewRand(uint64(seed))
		var b [64]int32
		n := int(density % 64)
		for i := 0; i < n; i++ {
			b[rng.Intn(64)] = int32(rng.Intn(4001) - 2000)
		}
		code := EncodeBlock(nil, &b)
		var out [64]int32
		used, err := DecodeBlock(code, &out)
		return err == nil && used == len(code) && out == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: concatenated blocks decode sequentially.
func TestRLEStreamProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRand(uint64(seed))
		var blocks [][64]int32
		var stream []byte
		for k := 0; k < 5; k++ {
			var b [64]int32
			for i := 0; i < rng.Intn(10); i++ {
				b[rng.Intn(64)] = int32(rng.Intn(200) - 100)
			}
			blocks = append(blocks, b)
			stream = EncodeBlock(stream, &b)
		}
		pos := 0
		for _, want := range blocks {
			var out [64]int32
			n, err := DecodeBlock(stream[pos:], &out)
			if err != nil || out != want {
				return false
			}
			pos += n
		}
		return pos == len(stream)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
