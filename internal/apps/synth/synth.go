// Package synth provides the deterministic building blocks shared by the
// workload generators: a seeded PRNG, synthetic test images, the integer
// 8×8 DCT/IDCT pair, zigzag scan order, quantization, and a byte-oriented
// run-length entropy code.
//
// The paper evaluates on real JPEG and MPEG-2 bitstreams that are not
// available; these generators produce deterministic synthetic streams
// with the same structure (DCT blocks, run-length coded coefficients,
// motion-compensated prediction), so the decoder pipelines execute the
// same kinds of work over the same kinds of buffers (DESIGN.md,
// "Substitutions").
package synth

// Rand is a deterministic xorshift64* PRNG, independent of math/rand so
// streams are stable across Go versions.
type Rand struct{ state uint64 }

// NewRand seeds a generator; seed 0 is mapped to 1.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 1
	}
	return &Rand{state: seed}
}

// Next returns the next 64 random bits.
func (r *Rand) Next() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0,n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// Image is a grayscale 8-bit image.
type Image struct {
	Width, Height int
	Pix           []byte
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{Width: w, Height: h, Pix: make([]byte, w*h)}
}

// At returns the pixel at (x,y); out-of-range coordinates clamp to the
// border (convenient for filter windows).
func (im *Image) At(x, y int) byte {
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	if x >= im.Width {
		x = im.Width - 1
	}
	if y >= im.Height {
		y = im.Height - 1
	}
	return im.Pix[y*im.Width+x]
}

// Set writes the pixel at (x,y); out-of-range coordinates are ignored.
func (im *Image) Set(x, y int, v byte) {
	if x < 0 || y < 0 || x >= im.Width || y >= im.Height {
		return
	}
	im.Pix[y*im.Width+x] = v
}

// GenerateImage builds a deterministic synthetic photo-like test pattern:
// smooth gradients plus edges plus seeded noise, so DCT blocks have
// realistic sparse spectra and edge detectors find real edges.
func GenerateImage(w, h int, seed uint64) *Image {
	im := NewImage(w, h)
	rng := NewRand(seed)
	// Random rectangles on a gradient background.
	type rect struct{ x0, y0, x1, y1, v int }
	rects := make([]rect, 12)
	for i := range rects {
		x0, y0 := rng.Intn(w), rng.Intn(h)
		rects[i] = rect{x0, y0, x0 + rng.Intn(w/3+1) + 4, y0 + rng.Intn(h/3+1) + 4, rng.Intn(200) + 30}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 40 + (x*120)/w + (y*60)/h
			for _, rc := range rects {
				if x >= rc.x0 && x < rc.x1 && y >= rc.y0 && y < rc.y1 {
					v = rc.v
				}
			}
			v += int(rng.Next()%25) - 12 // sensor noise and fine texture
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			im.Pix[y*w+x] = byte(v)
		}
	}
	return im
}

// ZigZag is the standard JPEG/MPEG zigzag scan order over an 8×8 block.
var ZigZag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// QuantLuma is a JPEG-flavoured luminance quantization matrix.
var QuantLuma = [64]int32{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// cosTable[k*8+n] = round(cos((2n+1)kπ/16) * 4096), the fixed-point basis
// used by both the forward and inverse transforms.
var cosTable = func() [64]int32 {
	// Values computed from the closed form with integer-only rounding at
	// build time would need math; instead the canonical constants are
	// inlined (12-bit fixed point).
	c := [8]float64{1, 0.980785, 0.923880, 0.831470, 0.707107, 0.555570, 0.382683, 0.195090}
	var t [64]int32
	for k := 0; k < 8; k++ {
		for n := 0; n < 8; n++ {
			// cos((2n+1)kπ/16) expressed via the quarter-wave table.
			idx := (2*n + 1) * k % 32
			sign := int32(1)
			if idx > 16 {
				idx = 32 - idx
			}
			if idx > 8 {
				idx = 16 - idx
				sign = -1
			}
			t[k*8+n] = sign * int32(c[idx%8]*4096+0.5)
			if idx == 8 {
				t[k*8+n] = 0
			}
		}
	}
	return t
}()

// CosTable returns the 12-bit fixed-point DCT basis table; the decoder
// tasks copy it into their simulated heaps so table lookups generate
// memory traffic.
func CosTable() [64]int32 { return cosTable }

// FDCT8 computes the forward 8×8 DCT of a block of centred samples
// (pixel−128), in place, using the naive separable fixed-point transform.
func FDCT8(b *[64]int32) {
	var tmp [64]int32
	for v := 0; v < 8; v++ { // rows
		for u := 0; u < 8; u++ {
			var s int64
			for x := 0; x < 8; x++ {
				s += int64(b[v*8+x]) * int64(cosTable[u*8+x])
			}
			tmp[v*8+u] = int32(s >> 9) // ×8 headroom kept
		}
	}
	for u := 0; u < 8; u++ { // columns
		for v := 0; v < 8; v++ {
			var s int64
			for y := 0; y < 8; y++ {
				s += int64(tmp[y*8+u]) * int64(cosTable[v*8+y])
			}
			// Overall scale: (1/4)·C(u)C(v) in fixed point.
			r := int32(s >> 15)
			if u == 0 {
				r = int32(int64(r) * 2896 >> 12)
			}
			if v == 0 {
				r = int32(int64(r) * 2896 >> 12)
			}
			b[v*8+u] = r / 4
		}
	}
}

// IDCT8 computes the inverse 8×8 DCT in place, the exact integer
// algorithm the decoder tasks execute (so the plain-Go reference decode
// matches the simulated decode bit for bit).
func IDCT8(b *[64]int32) {
	var tmp [64]int32
	for v := 0; v < 8; v++ { // rows: sum over u
		for x := 0; x < 8; x++ {
			var s int64
			for u := 0; u < 8; u++ {
				cu := int64(b[v*8+u])
				if u == 0 {
					cu = cu * 2896 >> 12
				}
				s += cu * int64(cosTable[u*8+x])
			}
			tmp[v*8+x] = int32(s >> 12)
		}
	}
	for x := 0; x < 8; x++ { // columns: sum over v
		for y := 0; y < 8; y++ {
			var s int64
			for v := 0; v < 8; v++ {
				cv := int64(tmp[v*8+x])
				if v == 0 {
					cv = cv * 2896 >> 12
				}
				s += cv * int64(cosTable[v*8+y])
			}
			b[y*8+x] = int32(s >> 14)
		}
	}
}

// Quantize divides by the matrix scaled by quality q (1 = finest).
func Quantize(b *[64]int32, q int32) {
	for i := range b {
		d := QuantLuma[i] * q
		v := b[i]
		if v >= 0 {
			b[i] = (v + d/2) / d
		} else {
			b[i] = -((-v + d/2) / d)
		}
	}
}

// Dequantize multiplies by the matrix scaled by q.
func Dequantize(b *[64]int32, q int32) {
	for i := range b {
		b[i] *= QuantLuma[i] * q
	}
}

// Clamp8 narrows a centred sample back to an 8-bit pixel.
func Clamp8(v int32) byte {
	v += 128
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}
