package mpeg2

import (
	"testing"

	"repro/internal/apps/sections"
	"repro/internal/core"
	"repro/internal/platform"
)

func smallCfg() Config {
	return Config{Width: 64, Height: 48, Pictures: 3, QScale: 2, Seed: 21,
		CPUs: [13]int{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0}}
}

func TestConfigValidate(t *testing.T) {
	if err := smallCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := smallCfg()
	bad.Width = 60
	if err := bad.Validate(); err == nil {
		t.Error("non-multiple-of-16 width accepted")
	}
	bad = smallCfg()
	bad.Pictures = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero pictures accepted")
	}
	bad = smallCfg()
	bad.QScale = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero qscale accepted")
	}
	if err := Default(1).Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
}

func TestMacroblockGeometry(t *testing.T) {
	cfg := smallCfg()
	if cfg.mbCols() != 4 || cfg.mbRows() != 3 || cfg.mbCount() != 12 {
		t.Errorf("geometry = %d/%d/%d", cfg.mbCols(), cfg.mbRows(), cfg.mbCount())
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := pictureHeader{Type: picP, Num: 1234, PayloadLen: 0xABCDEF}
	var b [8]byte
	h.encode(b[:])
	if got := decodeHeader(b[:]); got != h {
		t.Errorf("round trip = %+v", got)
	}
}

func TestMotionBounded(t *testing.T) {
	cfg := smallCfg()
	for pic := 0; pic < 10; pic++ {
		for by := 0; by < cfg.mbRows(); by++ {
			for bx := 0; bx < cfg.mbCols(); bx++ {
				dx, dy := motion(cfg, pic, bx, by)
				if dx < -7 || dx > 7 || dy < -7 || dy > 7 {
					t.Fatalf("motion (%d,%d) out of range", dx, dy)
				}
			}
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	s1, r1 := encode(smallCfg())
	s2, r2 := encode(smallCfg())
	if len(s1) != len(s2) || len(r1) != len(r2) {
		t.Fatal("encode not deterministic in length")
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("stream not deterministic")
		}
	}
	if mp := maxPayloadLen(s1); mp <= 0 {
		t.Errorf("max payload = %d", mp)
	}
}

func buildApp(t *testing.T, cfg Config) (*core.App, *Pipeline) {
	t.Helper()
	b := core.NewBuilder("mpeg2-test")
	b.Sections(sections.DataSize, sections.BSSSize)
	p, err := Build(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sections.PreloadData(b.ApplData())
	app, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return app, p
}

func pcfg() platform.Config {
	pc := platform.Default()
	return pc
}

func TestDecoderMatchesReference(t *testing.T) {
	app, p := buildApp(t, smallCfg())
	res, err := core.RunApp(app, core.RunConfig{Platform: pcfg()})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("display mismatch: %v", err)
	}
	if app.NumTasks() != 13 {
		t.Errorf("tasks = %d, want 13", app.NumTasks())
	}
	for _, task := range []string{"input", "vld", "hdr", "isiq", "memMan", "idct",
		"add", "decMV", "predict", "predictRD", "writeMB", "store", "output"} {
		if res.TaskCycles[task] == 0 {
			t.Errorf("task %q consumed no cycles", task)
		}
	}
}

func TestDecoderSinglePicture(t *testing.T) {
	cfg := smallCfg()
	cfg.Pictures = 1 // intra-only
	app, p := buildApp(t, cfg)
	if _, err := core.RunApp(app, core.RunConfig{Platform: pcfg()}); err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("intra-only decode wrong: %v", err)
	}
}

func TestDecoderPartitioned(t *testing.T) {
	app, p := buildApp(t, smallCfg())
	alloc := core.Allocation{}
	for _, e := range app.Entities() {
		if e.Pinned > 0 {
			alloc[e.Name] = e.Pinned
		} else {
			alloc[e.Name] = 2
		}
	}
	if _, err := core.RunApp(app, core.RunConfig{
		Platform: pcfg(), Strategy: core.Partitioned, Alloc: alloc,
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("partitioned decode wrong: %v", err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	app, p := buildApp(t, smallCfg())
	if _, err := core.RunApp(app, core.RunConfig{Platform: pcfg()}); err != nil {
		t.Fatal(err)
	}
	p.Display.Region.Bytes()[7] ^= 1
	if err := p.Verify(); err == nil {
		t.Fatal("corruption not detected")
	}
}
