package mpeg2

import (
	"repro/internal/apps/sections"
	"repro/internal/apps/synth"
	"repro/internal/core"
	"repro/internal/kpn"
	"repro/internal/mem"
)

// Pipeline is one built decoder plus verification data.
type Pipeline struct {
	Config
	Display   *kpn.Frame
	Reference []byte // expected display content after the last picture
}

type secs struct {
	data *mem.Region
	bss  *mem.Region
}

// MV-token flags.
const (
	mvInter  = 0
	mvIntra  = 1
	mvStartI = 2
	mvStartP = 3
)

const (
	chunkBytes  = 128
	symLUTBytes = 256
	vlcTabWords = 8 * 1024 // 32 KiB VLC side tables

	// Private table footprints of the back-end tasks: sub-pel
	// interpolation LUTs, frame-store page maps and raster maps.
	predictRDTabBytes = 16 * 1024
	memManTabBytes    = 8 * 1024
	writeMBTabBytes   = 8 * 1024
)

// Build adds the thirteen tasks, FIFOs and frame stores to the builder.
func Build(b *core.Builder, cfg Config) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	stream, reference := encode(cfg)
	p := &Pipeline{Config: cfg, Reference: reference}
	sc := secs{data: b.ApplData(), bss: b.ApplBSS()}

	// Frame stores.
	refFrame := b.AddFrame("mpegRef", cfg.Width, cfg.Height, 1)
	decFrame := b.AddFrame("mpegDec", cfg.Width, cfg.Height, 1)
	p.Display = b.AddFrame("mpegDisp", cfg.Width, cfg.Height, 1)

	// FIFOs.
	hdrIn := b.AddFIFO("mpgHdrIn", 8, 4)            // input -> hdr
	chunks := b.AddFIFO("mpgChunks", chunkBytes, 8) // input -> vld
	hdrPic := b.AddFIFO("mpgHdrPic", 8, 4)          // hdr -> vld
	picMM := b.AddFIFO("mpgPicMM", 8, 4)            // hdr -> memMan
	coefF := b.AddFIFO("mpgCoef", 128, 16)          // vld -> isiq
	mvF := b.AddFIFO("mpgMV", 4, 32)                // vld -> decMV
	iqF := b.AddFIFO("mpgIQ", 256, 8)               // isiq -> idct
	resF := b.AddFIFO("mpgRes", 128, 8)             // idct -> add
	mvRecF := b.AddFIFO("mpgMVRec", 4, 32)          // decMV -> predictRD
	predRawF := b.AddFIFO("mpgPredRaw", 256, 4)     // predictRD -> predict
	predF := b.AddFIFO("mpgPred", 256, 4)           // predict -> add
	mbF := b.AddFIFO("mpgMB", 256, 4)               // add -> writeMB
	mmWrite := b.AddFIFO("mpgMMWr", 8, 2)           // memMan -> writeMB
	mmOut := b.AddFIFO("mpgMMOut", 8, 4)            // memMan -> output
	wmDone := b.AddFIFO("mpgWMDone", 4, 2)          // writeMB -> store
	mmStore := b.AddFIFO("mpgMMSt", 8, 4)           // memMan -> store
	refReady := b.AddFIFO("mpgRefRdy", 4, 2)        // store -> predictRD
	storeDone := b.AddFIFO("mpgStDone", 4, 2)       // store -> output
	freeF := b.AddFIFO("mpgFree", 4, 2)             // output -> memMan

	// The coded transport stream and the VBV picture buffer are their
	// own buffer entities; they must not pollute any task's partition.
	inBuf := b.AddBuffer("mpgIn", uint64(len(stream)))
	copy(inBuf.Bytes(), stream)
	maxPayload := maxPayloadLen(stream)
	vbv := b.AddBuffer("mpgVBV", uint64(maxPayload)+chunkBytes)

	// input.
	b.AddTask(core.TaskConfig{
		Name: "input", CPU: cfg.CPUs[0],
		CodeSize: 20 * 1024, HotCode: 7 * 1024,
		HeapSize: 2 * 1024,
		Body:     inputBody(cfg, inBuf, hdrIn, chunks),
	})

	// vld.
	vld := b.AddTask(core.TaskConfig{
		Name: "vld", CPU: cfg.CPUs[1],
		CodeSize: 20 * 1024, HotCode: 7 * 1024,
		HeapSize: symLUTBytes + vlcTabWords*4 + 1024,
		Body:     vldBody(cfg, sc, hdrPic, chunks, coefF, mvF, vbv),
	})
	preloadVLDTables(vld.Heap)

	b.AddTask(core.TaskConfig{
		Name: "hdr", CPU: cfg.CPUs[2],
		CodeSize: 20 * 1024, HotCode: 7 * 1024, HeapSize: 2 * 1024,
		Body: hdrBody(cfg, hdrIn, hdrPic, picMM),
	})
	b.AddTask(core.TaskConfig{
		Name: "isiq", CPU: cfg.CPUs[3],
		CodeSize: 20 * 1024, HotCode: 7 * 1024, HeapSize: 2 * 1024,
		Body: isiqBody(cfg, sc, coefF, iqF),
	})
	mm := b.AddTask(core.TaskConfig{
		Name: "memMan", CPU: cfg.CPUs[4],
		CodeSize: 20 * 1024, HotCode: 7 * 1024, HeapSize: memManTabBytes + 2*1024,
		Body: memManBody(cfg, picMM, mmWrite, mmStore, mmOut, freeF),
	})
	sections.FillTable(mm.Heap, 0, memManTabBytes, cfg.Seed*5+1)
	b.AddTask(core.TaskConfig{
		Name: "idct", CPU: cfg.CPUs[5],
		CodeSize: 20 * 1024, HotCode: 7 * 1024, HeapSize: 1024,
		Body: idctBody(cfg, sc, iqF, resF),
	})
	b.AddTask(core.TaskConfig{
		Name: "add", CPU: cfg.CPUs[6],
		CodeSize: 20 * 1024, HotCode: 7 * 1024, HeapSize: 2 * 1024,
		Body: addBody(cfg, sc, predF, resF, mbF),
	})
	b.AddTask(core.TaskConfig{
		Name: "decMV", CPU: cfg.CPUs[7],
		CodeSize: 20 * 1024, HotCode: 7 * 1024, HeapSize: 2 * 1024,
		Body: decMVBody(cfg, mvF, mvRecF),
	})
	b.AddTask(core.TaskConfig{
		Name: "predict", CPU: cfg.CPUs[8],
		CodeSize: 20 * 1024, HotCode: 7 * 1024, HeapSize: 2 * 1024,
		Body: predictBody(cfg, predRawF, predF),
	})
	prd := b.AddTask(core.TaskConfig{
		Name: "predictRD", CPU: cfg.CPUs[9],
		CodeSize: 20 * 1024, HotCode: 7 * 1024, HeapSize: predictRDTabBytes + 2*1024,
		Body: predictRDBody(cfg, mvRecF, refReady, predRawF, refFrame),
	})
	sections.FillTable(prd.Heap, 0, predictRDTabBytes, cfg.Seed*5+2)
	wmb := b.AddTask(core.TaskConfig{
		Name: "writeMB", CPU: cfg.CPUs[10],
		CodeSize: 20 * 1024, HotCode: 7 * 1024, HeapSize: writeMBTabBytes + 2*1024,
		Body: writeMBBody(cfg, sc, mmWrite, mbF, wmDone, decFrame),
	})
	sections.FillTable(wmb.Heap, 0, writeMBTabBytes, cfg.Seed*5+3)
	b.AddTask(core.TaskConfig{
		Name: "store", CPU: cfg.CPUs[11],
		CodeSize: 20 * 1024, HotCode: 7 * 1024, HeapSize: 2 * 1024,
		Body: storeBody(cfg, mmStore, wmDone, refReady, storeDone, decFrame, refFrame),
	})
	b.AddTask(core.TaskConfig{
		Name: "output", CPU: cfg.CPUs[12],
		CodeSize: 20 * 1024, HotCode: 7 * 1024, HeapSize: 2 * 1024,
		Body: outputBody(cfg, sc, mmOut, storeDone, freeF, decFrame, p.Display),
	})
	return p, nil
}

// maxPayloadLen scans the stream for the largest picture payload.
func maxPayloadLen(stream []byte) int {
	best, pos := 0, 0
	for pos+8 <= len(stream) {
		h := decodeHeader(stream[pos : pos+8])
		if int(h.PayloadLen) > best {
			best = int(h.PayloadLen)
		}
		pos += 8 + int(h.PayloadLen)
	}
	return best
}

// preloadVLDTables fills vld's heap: symbol LUT at 0, VLC code book at
// symLUTBytes.
func preloadVLDTables(heap *mem.Region) {
	bs := heap.Bytes()
	for i := 0; i < symLUTBytes; i++ {
		bs[i] = byte(i * 13)
	}
	rng := synth.NewRand(40961)
	for i := 0; i < vlcTabWords; i++ {
		v := uint32(rng.Next())
		for k := 0; k < 4; k++ {
			bs[symLUTBytes+i*4+k] = byte(v >> (8 * k))
		}
	}
}

func inputBody(cfg Config, inBuf *mem.Region, hdrIn, chunks *kpn.FIFO) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		hdr := make([]byte, 8)
		chunk := make([]byte, chunkBytes)
		pos := uint64(0)
		for pic := 0; pic < cfg.Pictures; pic++ {
			c.LoadBytes(inBuf, pos, hdr)
			pos += 8
			h := decodeHeader(hdr)
			hdrIn.Write(c, hdr)
			c.Exec(64)
			remaining := uint64(h.PayloadLen)
			for remaining > 0 {
				n := uint64(chunkBytes)
				if n > remaining {
					n = remaining
				}
				c.LoadBytes(inBuf, pos, chunk[:n])
				for i := n; i < chunkBytes; i++ {
					chunk[i] = 0
				}
				chunks.Write(c, chunk)
				pos += n
				remaining -= n
				c.Exec(32)
			}
		}
		hdrIn.Close(c)
		chunks.Close(c)
	}
}

func hdrBody(cfg Config, in, toVLD, toMM *kpn.FIFO) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		tok := make([]byte, 8)
		for in.Read(c, tok) {
			c.Exec(128) // header parsing and validation work
			toVLD.Write(c, tok)
			toMM.Write(c, tok)
		}
		toVLD.Close(c)
		toMM.Close(c)
	}
}

func memManBody(cfg Config, in, toWrite, toStore, toOut, free *kpn.FIFO) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		tab := sections.NewProbeTable(0, memManTabBytes, cfg.Seed*5+1)
		tok := make([]byte, 8)
		cred := make([]byte, 4)
		first := true
		for in.Read(c, tok) {
			tab.Probe(c, c.Heap(), 64)
			if !first {
				// Buffer management: wait for the display to release the
				// single decoded-picture buffer.
				if !free.Read(c, cred) {
					break
				}
			}
			first = false
			c.Exec(96)
			toWrite.Write(c, tok)
			toStore.Write(c, tok)
			toOut.Write(c, tok)
		}
		toWrite.Close(c)
		toStore.Close(c)
		toOut.Close(c)
	}
}

func vldBody(cfg Config, sc secs, hdrPic, chunks, coefF, mvF *kpn.FIFO, vbv *mem.Region) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		heap := c.Heap()
		const symOff = uint64(0)
		const vlcOff = uint64(symLUTBytes)
		vlc := sections.NewProbeTable(vlcOff, vlcTabWords*4, cfg.Seed*29+13)
		hdr := make([]byte, 8)
		chunk := make([]byte, chunkBytes)
		coefTok := make([]byte, 128)
		for hdrPic.Read(c, hdr) {
			h := decodeHeader(hdr)
			// Fill the picture buffer (VBV) from the chunk stream.
			filled := uint64(0)
			for filled < uint64(h.PayloadLen) {
				if !chunks.Read(c, chunk) {
					return
				}
				n := uint64(h.PayloadLen) - filled
				if n > chunkBytes {
					n = chunkBytes
				}
				c.StoreBytes(vbv, filled, chunk[:n])
				filled += n
			}
			// Start-of-picture marker to the MV chain.
			start := byte(mvStartI)
			if h.Type == picP {
				start = mvStartP
			}
			mvF.Write(c, []byte{0, 0, start, 0})
			// Parse macroblocks.
			pos := uint64(0)
			for mb := 0; mb < cfg.mbCount(); mb++ {
				if h.Type == picP {
					dx := c.Load8(vbv, pos)
					dy := c.Load8(vbv, pos+1)
					pos += 2
					mvF.Write(c, []byte{dx, dy, mvInter, 0})
				} else {
					mvF.Write(c, []byte{0, 0, mvIntra, 0})
				}
				for blk := 0; blk < 4; blk++ {
					var coef [64]int16 // zigzag order
					idx := 0
					for {
						run := c.Load8(vbv, pos)
						_ = c.Load8(heap, symOff+uint64(run))
						c.Exec(8)
						if run == synth.EOB {
							pos++
							break
						}
						lo := c.Load8(vbv, pos+1)
						hi := c.Load8(vbv, pos+2)
						pos += 3
						v := int16(uint16(lo) | uint16(hi)<<8)
						vlc.Probe(c, heap, 2)
						idx += int(run)
						if v != 0 && idx < 64 {
							coef[idx] = v
							idx++
						}
						c.Exec(12)
					}
					vlc.Probe(c, heap, 20)
					for i := 0; i < 64; i++ {
						coefTok[i*2] = byte(uint16(coef[i]))
						coefTok[i*2+1] = byte(uint16(coef[i]) >> 8)
					}
					coefF.Write(c, coefTok)
				}
				if mb%16 == 0 {
					sections.Bump(c, sc.bss, 10)
				}
			}
		}
		coefF.Close(c)
		mvF.Close(c)
	}
}

func isiqBody(cfg Config, sc secs, in, out *kpn.FIFO) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		tok := make([]byte, 128)
		outTok := make([]byte, 256)
		for in.Read(c, tok) {
			var b [64]int32
			// Inverse scan through the shared zigzag table, then inverse
			// quantization with the shared matrix.
			for i := 0; i < 64; i++ {
				v := int32(int16(uint16(tok[i*2]) | uint16(tok[i*2+1])<<8))
				if v != 0 {
					zz := c.Load32(sc.data, sections.ZigZagOff+uint64(i)*4)
					q := int32(c.Load32(sc.data, sections.QuantOff+uint64(zz)*4))
					b[zz] = v * q * cfg.QScale
				}
				c.Exec(4)
			}
			for i := 0; i < 64; i++ {
				u := uint32(b[i])
				outTok[i*4] = byte(u)
				outTok[i*4+1] = byte(u >> 8)
				outTok[i*4+2] = byte(u >> 16)
				outTok[i*4+3] = byte(u >> 24)
			}
			out.Write(c, outTok)
		}
		out.Close(c)
	}
}

func idctBody(cfg Config, sc secs, in, out *kpn.FIFO) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		tok := make([]byte, 256)
		outTok := make([]byte, 128)
		for in.Read(c, tok) {
			var b [64]int32
			for i := 0; i < 64; i++ {
				b[i] = int32(uint32(tok[i*4]) | uint32(tok[i*4+1])<<8 |
					uint32(tok[i*4+2])<<16 | uint32(tok[i*4+3])<<24)
			}
			for i := 0; i < 64; i++ {
				_ = c.Load32(sc.data, sections.CosOff+uint64(i)*4)
			}
			synth.IDCT8(&b)
			c.Exec(1100)
			for i := 0; i < 64; i++ {
				v := b[i]
				if v > 32767 {
					v = 32767
				}
				if v < -32768 {
					v = -32768
				}
				outTok[i*2] = byte(uint16(int16(v)))
				outTok[i*2+1] = byte(uint16(int16(v)) >> 8)
			}
			out.Write(c, outTok)
		}
		out.Close(c)
	}
}

func decMVBody(cfg Config, in, out *kpn.FIFO) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		tok := make([]byte, 4)
		var px, py int8
		for in.Read(c, tok) {
			switch tok[2] {
			case mvStartI, mvStartP:
				px, py = 0, 0
				out.Write(c, tok)
			case mvIntra:
				px, py = 0, 0
				out.Write(c, tok)
			default:
				px += int8(tok[0])
				py += int8(tok[1])
				out.Write(c, []byte{byte(px), byte(py), mvInter, 0})
			}
			c.Exec(24)
		}
		out.Close(c)
	}
}

func predictRDBody(cfg Config, in, refReady, out *kpn.FIFO, ref *kpn.Frame) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		tab := sections.NewProbeTable(0, predictRDTabBytes, cfg.Seed*5+2)
		tok := make([]byte, 4)
		cred := make([]byte, 4)
		pred := make([]byte, 256)
		mb := 0
		for in.Read(c, tok) {
			switch tok[2] {
			case mvStartI:
				mb = 0
				continue
			case mvStartP:
				mb = 0
				// The reference picture must be stored before we read it.
				if !refReady.Read(c, cred) {
					return
				}
				continue
			}
			bx, by := mb%cfg.mbCols(), mb/cfg.mbCols()
			tab.Probe(c, c.Heap(), 20)
			if tok[2] == mvIntra {
				for i := range pred {
					pred[i] = 128 // neutral level: add reconstructs intra
				}
				c.Exec(64)
			} else {
				dx, dy := int(int8(tok[0])), int(int8(tok[1]))
				px, py := bx*16+dx, by*16+dy
				for y := 0; y < 16; y++ {
					sy := clampI(py+y, cfg.Height-1)
					for x := 0; x < 16; x++ {
						sx := clampI(px+x, cfg.Width-1)
						pred[y*16+x] = ref.Load8(c, sx, sy)
						c.Exec(2)
					}
				}
			}
			out.Write(c, pred)
			mb++
		}
		out.Close(c)
	}
}

func predictBody(cfg Config, in, out *kpn.FIFO) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		tok := make([]byte, 256)
		for in.Read(c, tok) {
			// Full-pel vectors: the interpolation stage is a pass-through
			// with its filter cost (half-pel would average neighbours).
			c.Exec(256)
			out.Write(c, tok)
		}
		out.Close(c)
	}
}

func addBody(cfg Config, sc secs, predIn, resIn, out *kpn.FIFO) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		pred := make([]byte, 256)
		res := make([]byte, 128)
		mb := make([]byte, 256)
		for predIn.Read(c, pred) {
			for blk := 0; blk < 4; blk++ {
				if !resIn.Read(c, res) {
					out.Close(c)
					return
				}
				ox, oy := (blk%2)*8, (blk/2)*8
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						r := int32(int16(uint16(res[(y*8+x)*2]) | uint16(res[(y*8+x)*2+1])<<8))
						v := int32(pred[(oy+y)*16+ox+x]) + r
						if v < 0 {
							v = 0
						}
						if v > 255 {
							v = 255
						}
						mb[(oy+y)*16+ox+x] = byte(v)
						c.Exec(3)
					}
				}
			}
			out.Write(c, mb)
		}
		out.Close(c)
	}
}

func writeMBBody(cfg Config, sc secs, mmIn, mbIn, done *kpn.FIFO, dec *kpn.Frame) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		tab := sections.NewProbeTable(0, writeMBTabBytes, cfg.Seed*5+3)
		pic := make([]byte, 8)
		mb := make([]byte, 256)
		row := make([]byte, 16)
		for mmIn.Read(c, pic) {
			for i := 0; i < cfg.mbCount(); i++ {
				if !mbIn.Read(c, mb) {
					done.Close(c)
					return
				}
				tab.Probe(c, c.Heap(), 10)
				bx, by := i%cfg.mbCols(), i/cfg.mbCols()
				for y := 0; y < 16; y++ {
					copy(row, mb[y*16:(y+1)*16])
					c.StoreBytes(dec.Region, uint64((by*16+y)*cfg.Width+bx*16), row)
					c.Exec(8)
				}
				if i%16 == 0 {
					sections.Bump(c, sc.bss, 20)
				}
			}
			done.Write(c, []byte{1, 0, 0, 0})
		}
		done.Close(c)
	}
}

func storeBody(cfg Config, mmIn, wmDone, refReady, storeDone *kpn.FIFO, dec, ref *kpn.Frame) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		pic := make([]byte, 8)
		tok := make([]byte, 4)
		line := make([]byte, cfg.Width)
		for mmIn.Read(c, pic) {
			if !wmDone.Read(c, tok) {
				break
			}
			// Commit the decoded picture to the reference store.
			for y := 0; y < cfg.Height; y++ {
				dec.LoadRow(c, y, line)
				ref.StoreRow(c, y, line)
				c.Exec(16)
			}
			refReady.Write(c, []byte{1, 0, 0, 0})
			storeDone.Write(c, []byte{1, 0, 0, 0})
		}
		refReady.Close(c)
		storeDone.Close(c)
	}
}

func outputBody(cfg Config, sc secs, mmIn, storeDone, free *kpn.FIFO, dec, disp *kpn.Frame) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		pic := make([]byte, 8)
		tok := make([]byte, 4)
		line := make([]byte, cfg.Width)
		for mmIn.Read(c, pic) {
			if !storeDone.Read(c, tok) {
				break
			}
			for y := 0; y < cfg.Height; y++ {
				dec.LoadRow(c, y, line)
				disp.StoreRow(c, y, line)
				if y%16 == 0 {
					sections.HistAdd(c, sc.bss, line[0])
				}
				c.Exec(16)
			}
			free.Write(c, []byte{1, 0, 0, 0})
		}
		free.Close(c)
	}
}

// Verify compares the display frame against the closed-loop reference.
func (p *Pipeline) Verify() error {
	got := p.Display.Region.Bytes()
	for i := range p.Reference {
		if got[i] != p.Reference[i] {
			return &VerifyError{Offset: i, Got: got[i], Want: p.Reference[i]}
		}
	}
	return nil
}

// VerifyError reports the first display mismatch.
type VerifyError struct {
	Offset int
	Got    byte
	Want   byte
}

// Error implements error.
func (e *VerifyError) Error() string { return "apps: mpeg2: display output mismatch" }
