// Package mpeg2 implements the parallel MPEG-2 video decoder of the
// paper's second application (van der Wolf et al., CODES'99), with the
// thirteen task names of Table 2: input, vld, hdr, isiq, memMan, idct,
// add, decMV, predict, predictRD, writeMB, store and output.
//
// The decoder consumes a synthetic but structurally faithful coded video:
// a GOP of one intra picture followed by predicted pictures, macroblocks
// carrying differentially-coded full-pel motion vectors and run-length
// coded quantized DCT residual blocks, reconstructed by closed-loop
// motion compensation from a reference frame store. All stages move real
// bytes through simulated memory and the display output is verified
// bit-exactly against a plain-Go reference decode.
package mpeg2

import (
	"fmt"

	"repro/internal/apps/synth"
)

// Config describes the decoder workload.
type Config struct {
	Width, Height int // pixels, multiples of 16
	Pictures      int // GOP length: 1 I picture + Pictures-1 P pictures
	QScale        int32
	Seed          uint64
	CPUs          [13]int // static CPU per task, in Table 2 order
}

// Default returns a CIF-sized three-picture decoder.
func Default(seed uint64) Config {
	return Config{Width: 352, Height: 288, Pictures: 3, QScale: 2, Seed: seed}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Width <= 0 || c.Width%16 != 0 || c.Height <= 0 || c.Height%16 != 0 {
		return fmt.Errorf("mpeg2: size %dx%d not a multiple of 16", c.Width, c.Height)
	}
	if c.Pictures <= 0 {
		return fmt.Errorf("mpeg2: %d pictures", c.Pictures)
	}
	if c.QScale < 1 {
		return fmt.Errorf("mpeg2: qscale %d", c.QScale)
	}
	return nil
}

func (c Config) mbCols() int  { return c.Width / 16 }
func (c Config) mbRows() int  { return c.Height / 16 }
func (c Config) mbCount() int { return c.mbCols() * c.mbRows() }

// Picture types.
const (
	picI = 'I'
	picP = 'P'
)

// pictureHeader is the 8-byte picture header token layout.
type pictureHeader struct {
	Type       byte
	Num        uint16
	PayloadLen uint32
}

func (h pictureHeader) encode(dst []byte) {
	dst[0] = h.Type
	dst[1] = 0
	dst[2] = byte(h.Num)
	dst[3] = byte(h.Num >> 8)
	dst[4] = byte(h.PayloadLen)
	dst[5] = byte(h.PayloadLen >> 8)
	dst[6] = byte(h.PayloadLen >> 16)
	dst[7] = byte(h.PayloadLen >> 24)
}

func decodeHeader(src []byte) pictureHeader {
	return pictureHeader{
		Type:       src[0],
		Num:        uint16(src[2]) | uint16(src[3])<<8,
		PayloadLen: uint32(src[4]) | uint32(src[5])<<8 | uint32(src[6])<<16 | uint32(src[7])<<24,
	}
}

// motion returns the deterministic motion vector of macroblock (bx,by) in
// picture pic: global per-picture drift plus a small local perturbation.
func motion(cfg Config, pic, bx, by int) (int8, int8) {
	gdx := int8((pic*3)%5 - 2)
	gdy := int8((pic*2)%3 - 1)
	lx := int8((bx+by+pic)%3 - 1)
	ly := int8((bx*2+by)%3 - 1)
	dx, dy := gdx+lx, gdy+ly
	if dx > 7 {
		dx = 7
	}
	if dx < -7 {
		dx = -7
	}
	if dy > 7 {
		dy = 7
	}
	if dy < -7 {
		dy = -7
	}
	return dx, dy
}

// clampI keeps v in [0,hi].
func clampI(v, hi int) int {
	if v < 0 {
		return 0
	}
	if v > hi {
		return hi
	}
	return v
}

// predictBlock fills pred (16×16) from the reference plane with per-pixel
// border clamping — the exact operation predictRD performs through
// simulated memory.
func predictBlock(ref []byte, w, h, px, py int, pred *[256]byte) {
	for y := 0; y < 16; y++ {
		sy := clampI(py+y, h-1)
		for x := 0; x < 16; x++ {
			sx := clampI(px+x, w-1)
			pred[y*16+x] = ref[sy*w+sx]
		}
	}
}

// encode builds the coded stream and, in the same closed loop, the
// sequence of reconstructed pictures (the reference decode).
func encode(cfg Config) (stream []byte, lastRecon []byte) {
	w, h := cfg.Width, cfg.Height
	ref := make([]byte, w*h) // previous reconstruction
	recon := make([]byte, w*h)
	base := synth.GenerateImage(w, h, cfg.Seed)

	for pic := 0; pic < cfg.Pictures; pic++ {
		cur := currentPicture(cfg, base, pic)
		var payload []byte
		var prevMVx, prevMVy int8
		for by := 0; by < cfg.mbRows(); by++ {
			for bx := 0; bx < cfg.mbCols(); bx++ {
				var pred [256]byte
				if pic > 0 {
					dx, dy := motion(cfg, pic, bx, by)
					payload = append(payload, byte(dx-prevMVx), byte(dy-prevMVy))
					prevMVx, prevMVy = dx, dy
					predictBlock(ref, w, h, bx*16+int(dx), by*16+int(dy), &pred)
				}
				// Four 8×8 residual blocks per macroblock.
				for blk := 0; blk < 4; blk++ {
					ox, oy := (blk%2)*8, (blk/2)*8
					var b [64]int32
					for y := 0; y < 8; y++ {
						for x := 0; x < 8; x++ {
							px, py := bx*16+ox+x, by*16+oy+y
							c := int32(cur[py*w+px])
							if pic == 0 {
								b[y*8+x] = c - 128
							} else {
								b[y*8+x] = c - int32(pred[(oy+y)*16+ox+x])
							}
						}
					}
					synth.FDCT8(&b)
					synth.Quantize(&b, cfg.QScale)
					payload = synth.EncodeBlock(payload, &b)
					// Closed loop: reconstruct exactly as the decoder will.
					synth.Dequantize(&b, cfg.QScale)
					synth.IDCT8(&b)
					for y := 0; y < 8; y++ {
						for x := 0; x < 8; x++ {
							px, py := bx*16+ox+x, by*16+oy+y
							var v int32
							if pic == 0 {
								v = b[y*8+x] + 128
							} else {
								v = int32(pred[(oy+y)*16+ox+x]) + b[y*8+x]
							}
							if v < 0 {
								v = 0
							}
							if v > 255 {
								v = 255
							}
							recon[py*w+px] = byte(v)
						}
					}
				}
			}
		}
		hd := pictureHeader{Type: picI, Num: uint16(pic), PayloadLen: uint32(len(payload))}
		if pic > 0 {
			hd.Type = picP
		}
		var hb [8]byte
		hd.encode(hb[:])
		stream = append(stream, hb[:]...)
		stream = append(stream, payload...)
		copy(ref, recon)
	}
	return stream, append([]byte(nil), recon...)
}

// currentPicture synthesizes picture pic: the base image translated by
// the accumulated global motion plus fresh detail, so P pictures have
// both predictable and innovative content.
func currentPicture(cfg Config, base *synth.Image, pic int) []byte {
	w, h := cfg.Width, cfg.Height
	out := make([]byte, w*h)
	// Accumulated global shift.
	sx, sy := 0, 0
	for p := 1; p <= pic; p++ {
		sx += (p*3)%5 - 2
		sy += (p*2)%3 - 1
	}
	rng := synth.NewRand(cfg.Seed*7 + uint64(pic)*911)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := int(base.At(x-sx, y-sy))
			v += int(rng.Next()%5) - 2
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			out[y*w+x] = byte(v)
		}
	}
	return out
}
