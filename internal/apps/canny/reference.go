package canny

import (
	"repro/internal/apps/sections"
	"repro/internal/apps/synth"
)

// reference computes the expected edge map of the final frame with plain
// Go, using exactly the integer operations of the pipeline tasks.
func reference(cfg Config) []byte {
	img := synth.GenerateImage(cfg.Width, cfg.Height, cfg.Seed+uint64(cfg.Frames-1)*131)
	w, h := cfg.Width, cfg.Height

	conv := func(src []byte, k [9]int32) []int32 {
		out := make([]int32, w*h)
		for y := 0; y < h; y++ {
			ym, yp := clampX(y-1, h), clampX(y+1, h)
			for x := 0; x < w; x++ {
				xm, xp := clampX(x-1, w), clampX(x+1, w)
				s := k[0]*int32(src[ym*w+xm]) + k[1]*int32(src[ym*w+x]) + k[2]*int32(src[ym*w+xp]) +
					k[3]*int32(src[y*w+xm]) + k[4]*int32(src[y*w+x]) + k[5]*int32(src[y*w+xp]) +
					k[6]*int32(src[yp*w+xm]) + k[7]*int32(src[yp*w+x]) + k[8]*int32(src[yp*w+xp])
				out[y*w+x] = s
			}
		}
		return out
	}

	// LowPass.
	smooth := make([]byte, w*h)
	for i, s := range conv(img.Pix, sections.Gaussian3) {
		smooth[i] = byte(s >> 4)
	}
	// Gradients.
	gx := make([]byte, w*h)
	for i, s := range conv(smooth, sections.SobelX) {
		gx[i] = gradMag(s)
	}
	gy := make([]byte, w*h)
	for i, s := range conv(smooth, sections.SobelY) {
		gy[i] = gradMag(s)
	}
	// Horizontal NMS on gx.
	hn := make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := gx[y*w+x]
			left := gx[y*w+clampX(x-1, w)]
			right := gx[y*w+clampX(x+1, w)]
			if v >= left && v > right {
				hn[y*w+x] = v
			}
		}
	}
	// Vertical NMS on gy.
	vn := make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := gy[y*w+x]
			up := gy[clampX(y-1, h)*w+x]
			down := gy[clampX(y+1, h)*w+x]
			if v >= up && v > down {
				vn[y*w+x] = v
			}
		}
	}
	// Threshold.
	out := make([]byte, w*h)
	for i := range out {
		if int32(hn[i])+int32(vn[i]) > cfg.Threshold {
			out[i] = 255
		}
	}
	return out
}

// Verify compares the output frame against the reference edge map.
func (p *Pipeline) Verify() error {
	got := p.Out.Region.Bytes()
	for i := range p.Reference {
		if got[i] != p.Reference[i] {
			return &VerifyError{Offset: i, Got: got[i], Want: p.Reference[i]}
		}
	}
	return nil
}

// VerifyError reports the first output mismatch.
type VerifyError struct {
	Offset int
	Got    byte
	Want   byte
}

// Error implements error.
func (e *VerifyError) Error() string {
	return "apps: canny: edge map mismatch"
}
