// Package canny implements the line-based Canny edge-detection pipeline
// of the paper's first application: Fr.canny (frame source), LowPass
// (Gaussian smoothing), HorizSobel and VertSobel (gradients), HorizNMS
// and VertNMS (non-maximum suppression), and MaxTreshold (edge decision),
// matching the seven task names of Table 1 (including the paper's
// spelling of MaxTreshold).
//
// Every stage consumes and produces whole image lines over FIFOs, keeping
// a sliding window of lines in its private heap — the classic line-based
// streaming structure whose buffers the paper partitions. The output edge
// map is verified bit-exactly against a plain-Go reference.
package canny

import (
	"fmt"

	"repro/internal/apps/sections"
	"repro/internal/apps/synth"
	"repro/internal/core"
	"repro/internal/kpn"
	"repro/internal/mem"
)

// Config describes one edge-detection instance.
type Config struct {
	Width, Height int
	Frames        int
	Threshold     int32  // edge decision threshold on summed NMS output
	Seed          uint64 // input-image seed
	CPUs          [7]int // static CPUs of the 7 tasks in pipeline order
}

// Default returns a 512×384 single-frame detector.
func Default(seed uint64) Config {
	return Config{Width: 512, Height: 384, Frames: 1, Threshold: 60, Seed: seed}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Width < 8 || c.Height < 8 {
		return fmt.Errorf("canny: size %dx%d too small", c.Width, c.Height)
	}
	if c.Frames <= 0 {
		return fmt.Errorf("canny: %d frames", c.Frames)
	}
	if c.Threshold <= 0 {
		return fmt.Errorf("canny: threshold %d", c.Threshold)
	}
	return nil
}

// Pipeline is one built detector plus verification data.
type Pipeline struct {
	Config
	Out       *kpn.Frame
	Reference []byte
}

type secs struct {
	data *mem.Region
	bss  *mem.Region
}

// Per-stage private table sizes: coefficient pyramids, angle LUTs and
// threshold maps that real edge-detection kernels keep resident.
const (
	stageTabBytes = 16 * 1024
	nmsTabBytes   = 8 * 1024
)

// Build adds the seven tasks, their FIFOs and the output frame.
func Build(b *core.Builder, cfg Config) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Pipeline{Config: cfg}
	sc := secs{data: b.ApplData(), bss: b.ApplBSS()}
	w := cfg.Width

	srcF := b.AddFIFO("canSrc", w, 8)
	lpH := b.AddFIFO("canLPH", w, 8) // LowPass -> HorizSobel
	lpV := b.AddFIFO("canLPV", w, 8) // LowPass -> VertSobel
	gxF := b.AddFIFO("canGx", w, 8)
	gyF := b.AddFIFO("canGy", w, 8)
	hnF := b.AddFIFO("canHN", w, 8)
	vnF := b.AddFIFO("canVN", w, 8)
	p.Out = b.AddFrame("canOut", cfg.Width, cfg.Height, 1)

	// Source: the captured frames live in a dedicated capture buffer, as
	// a camera DMA target would; Fr.canny only streams lines out of it.
	inputBytes := uint64(cfg.Width*cfg.Height) * uint64(cfg.Frames)
	inBuf := b.AddBuffer("canIn", inputBytes)
	preloadInput(inBuf, cfg)
	b.AddTask(core.TaskConfig{
		Name: "Fr. canny", CPU: cfg.CPUs[0],
		CodeSize: 20 * 1024, HotCode: 7 * 1024, HeapSize: 2 * 1024,
		Body: sourceBody(cfg, srcF, inBuf),
	})

	lp := b.AddTask(core.TaskConfig{
		Name: "LowPass", CPU: cfg.CPUs[1],
		CodeSize: 20 * 1024, HotCode: 7 * 1024,
		HeapSize: uint64(3*w) + stageTabBytes + 1024,
		Body:     lowPassBody(cfg, sc, srcF, lpH, lpV),
	})
	sections.FillTable(lp.Heap, uint64(3*w), stageTabBytes, cfg.Seed*3+1)
	hs := b.AddTask(core.TaskConfig{
		Name: "HorizSobel", CPU: cfg.CPUs[2],
		CodeSize: 20 * 1024, HotCode: 7 * 1024,
		HeapSize: uint64(3*w) + stageTabBytes + 1024,
		Body:     sobelBody(cfg, sc, lpH, gxF, sections.KernelOff+36, 3),
	})
	sections.FillTable(hs.Heap, uint64(3*w), stageTabBytes, cfg.Seed*3+2)
	vs := b.AddTask(core.TaskConfig{
		Name: "VertSobel", CPU: cfg.CPUs[3],
		CodeSize: 20 * 1024, HotCode: 7 * 1024,
		HeapSize: uint64(3*w) + stageTabBytes + 1024,
		Body:     sobelBody(cfg, sc, lpV, gyF, sections.KernelOff+72, 4),
	})
	sections.FillTable(vs.Heap, uint64(3*w), stageTabBytes, cfg.Seed*3+3)
	hn := b.AddTask(core.TaskConfig{
		Name: "HorizNMS", CPU: cfg.CPUs[4],
		CodeSize: 20 * 1024, HotCode: 7 * 1024,
		HeapSize: uint64(w) + nmsTabBytes + 1024,
		Body:     horizNMSBody(cfg, sc, gxF, hnF),
	})
	sections.FillTable(hn.Heap, uint64(w), nmsTabBytes, cfg.Seed*3+4)
	vn := b.AddTask(core.TaskConfig{
		Name: "VertNMS", CPU: cfg.CPUs[5],
		CodeSize: 20 * 1024, HotCode: 7 * 1024,
		HeapSize: uint64(3*w) + nmsTabBytes + 1024,
		Body:     vertNMSBody(cfg, sc, gyF, vnF),
	})
	sections.FillTable(vn.Heap, uint64(3*w), nmsTabBytes, cfg.Seed*3+5)
	mt := b.AddTask(core.TaskConfig{
		Name: "MaxTreshold", CPU: cfg.CPUs[6],
		CodeSize: 20 * 1024, HotCode: 7 * 1024,
		HeapSize: uint64(w) + nmsTabBytes + 1024,
		Body:     thresholdBody(cfg, sc, hnF, vnF, p.Out),
	})
	sections.FillTable(mt.Heap, uint64(w), nmsTabBytes, cfg.Seed*3+6)

	p.Reference = reference(cfg)
	return p, nil
}

// preloadInput stores the synthetic input frames in the capture buffer.
func preloadInput(buf *mem.Region, cfg Config) {
	bs := buf.Bytes()
	for f := 0; f < cfg.Frames; f++ {
		img := synth.GenerateImage(cfg.Width, cfg.Height, cfg.Seed+uint64(f)*131)
		copy(bs[f*cfg.Width*cfg.Height:], img.Pix)
	}
}

func sourceBody(cfg Config, out *kpn.FIFO, inBuf *mem.Region) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		line := make([]byte, cfg.Width)
		for f := 0; f < cfg.Frames; f++ {
			base := uint64(f * cfg.Width * cfg.Height)
			for y := 0; y < cfg.Height; y++ {
				c.LoadBytes(inBuf, base+uint64(y*cfg.Width), line)
				c.Exec(uint64(cfg.Width / 4))
				out.Write(c, line)
			}
		}
		out.Close(c)
	}
}

// slidingWindow runs a 3-line kernel task: it keeps the last three lines
// in the private heap and calls emit(prev, cur, next) for every output
// line, with replicated borders, for every frame of cfg.Frames.
func slidingWindow(c *kpn.Ctx, cfg Config, in *kpn.FIFO,
	emit func(prev, cur, next uint64)) {
	heap := c.Heap()
	w := uint64(cfg.Width)
	line := make([]byte, cfg.Width)
	rows := [3]uint64{0, w, 2 * w} // heap offsets of the window lines
	for f := 0; f < cfg.Frames; f++ {
		count := 0
		var prev, cur int
		for y := 0; y < cfg.Height; y++ {
			if !in.Read(c, line) {
				return
			}
			slot := y % 3
			c.StoreBytes(heap, rows[slot], line)
			switch count {
			case 0:
				prev, cur = slot, slot
			case 1:
				emit(rows[prev], rows[cur], rows[slot]) // line 0: window [0,0,1]
				prev, cur = cur, slot
			default:
				emit(rows[prev], rows[cur], rows[slot])
				prev, cur = cur, slot
			}
			count++
		}
		emit(rows[prev], rows[cur], rows[cur]) // last line: replicated
	}
}

func lowPassBody(cfg Config, sc secs, in, outH, outV *kpn.FIFO) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		heap := c.Heap()
		out := make([]byte, cfg.Width)
		tab := sections.NewProbeTable(uint64(3*cfg.Width), stageTabBytes, cfg.Seed*3+1)
		var k [9]int32
		for i := range k {
			k[i] = int32(c.Load32(sc.data, sections.KernelOff+uint64(i)*4))
		}
		y := 0
		slidingWindow(c, cfg, in, func(prev, cur, next uint64) {
			tab.Probe(c, heap, 8)
			for x := 0; x < cfg.Width; x++ {
				xm, xp := clampX(x-1, cfg.Width), clampX(x+1, cfg.Width)
				var s int32
				s += k[0]*int32(c.Load8(heap, prev+uint64(xm))) +
					k[1]*int32(c.Load8(heap, prev+uint64(x))) +
					k[2]*int32(c.Load8(heap, prev+uint64(xp)))
				s += k[3]*int32(c.Load8(heap, cur+uint64(xm))) +
					k[4]*int32(c.Load8(heap, cur+uint64(x))) +
					k[5]*int32(c.Load8(heap, cur+uint64(xp)))
				s += k[6]*int32(c.Load8(heap, next+uint64(xm))) +
					k[7]*int32(c.Load8(heap, next+uint64(x))) +
					k[8]*int32(c.Load8(heap, next+uint64(xp)))
				out[x] = byte(s >> 4) // kernel sums to 16
				c.Exec(14)
			}
			outH.Write(c, out)
			outV.Write(c, out)
			y++
			if y%32 == 0 {
				sections.Bump(c, sc.bss, 8)
			}
		})
		outH.Close(c)
		outV.Close(c)
	}
}

// sobelBody builds a gradient task reading its kernel from appl data at
// kernOff; counterSlot distinguishes the two instances' bss counters.
func sobelBody(cfg Config, sc secs, in, out *kpn.FIFO, kernOff uint64, counterSlot uint64) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		heap := c.Heap()
		outLine := make([]byte, cfg.Width)
		tab := sections.NewProbeTable(uint64(3*cfg.Width), stageTabBytes, cfg.Seed*3+counterSlot-1)
		var k [9]int32
		for i := range k {
			k[i] = int32(c.Load32(sc.data, kernOff+uint64(i)*4))
		}
		y := 0
		slidingWindow(c, cfg, in, func(prev, cur, next uint64) {
			tab.Probe(c, heap, 8)
			for x := 0; x < cfg.Width; x++ {
				xm, xp := clampX(x-1, cfg.Width), clampX(x+1, cfg.Width)
				var s int32
				s += k[0]*int32(c.Load8(heap, prev+uint64(xm))) +
					k[1]*int32(c.Load8(heap, prev+uint64(x))) +
					k[2]*int32(c.Load8(heap, prev+uint64(xp)))
				s += k[3]*int32(c.Load8(heap, cur+uint64(xm))) +
					k[4]*int32(c.Load8(heap, cur+uint64(x))) +
					k[5]*int32(c.Load8(heap, cur+uint64(xp)))
				s += k[6]*int32(c.Load8(heap, next+uint64(xm))) +
					k[7]*int32(c.Load8(heap, next+uint64(x))) +
					k[8]*int32(c.Load8(heap, next+uint64(xp)))
				outLine[x] = gradMag(s)
				c.Exec(14)
			}
			out.Write(c, outLine)
			y++
			if y%32 == 0 {
				sections.Bump(c, sc.bss, counterSlot)
			}
		})
		out.Close(c)
	}
}

func horizNMSBody(cfg Config, sc secs, in, out *kpn.FIFO) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		heap := c.Heap()
		line := make([]byte, cfg.Width)
		outLine := make([]byte, cfg.Width)
		tab := sections.NewProbeTable(uint64(cfg.Width), nmsTabBytes, cfg.Seed*3+4)
		lines := 0
		for {
			if !in.Read(c, line) {
				break
			}
			tab.Probe(c, heap, 4)
			c.StoreBytes(heap, 0, line)
			for x := 0; x < cfg.Width; x++ {
				v := c.Load8(heap, uint64(x))
				left := c.Load8(heap, uint64(clampX(x-1, cfg.Width)))
				right := c.Load8(heap, uint64(clampX(x+1, cfg.Width)))
				if v >= left && v > right {
					outLine[x] = v
				} else {
					outLine[x] = 0
				}
				c.Exec(6)
			}
			out.Write(c, outLine)
			lines++
			if lines%32 == 0 {
				sections.Bump(c, sc.bss, 5)
			}
		}
		out.Close(c)
	}
}

func vertNMSBody(cfg Config, sc secs, in, out *kpn.FIFO) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		heap := c.Heap()
		outLine := make([]byte, cfg.Width)
		tab := sections.NewProbeTable(uint64(3*cfg.Width), nmsTabBytes, cfg.Seed*3+5)
		y := 0
		slidingWindow(c, cfg, in, func(prev, cur, next uint64) {
			tab.Probe(c, heap, 4)
			for x := 0; x < cfg.Width; x++ {
				v := c.Load8(heap, cur+uint64(x))
				up := c.Load8(heap, prev+uint64(x))
				down := c.Load8(heap, next+uint64(x))
				if v >= up && v > down {
					outLine[x] = v
				} else {
					outLine[x] = 0
				}
				c.Exec(6)
			}
			out.Write(c, outLine)
			y++
			if y%32 == 0 {
				sections.Bump(c, sc.bss, 6)
			}
		})
		out.Close(c)
	}
}

func thresholdBody(cfg Config, sc secs, inH, inV *kpn.FIFO, outFrame *kpn.Frame) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		heap := c.Heap()
		tab := sections.NewProbeTable(uint64(cfg.Width), nmsTabBytes, cfg.Seed*3+6)
		h := make([]byte, cfg.Width)
		v := make([]byte, cfg.Width)
		outLine := make([]byte, cfg.Width)
		y := 0
		for {
			okH := inH.Read(c, h)
			okV := inV.Read(c, v)
			if !okH || !okV {
				break
			}
			tab.Probe(c, heap, 4)
			for x := 0; x < cfg.Width; x++ {
				if int32(h[x])+int32(v[x]) > cfg.Threshold {
					outLine[x] = 255
				} else {
					outLine[x] = 0
				}
				c.Exec(4)
				if x%32 == 0 {
					sections.HistAdd(c, sc.bss, h[x])
				}
			}
			outFrame.StoreRow(c, y, outLine)
			y++
			if y == cfg.Height {
				y = 0
			}
		}
	}
}

func clampX(x, w int) int {
	if x < 0 {
		return 0
	}
	if x >= w {
		return w - 1
	}
	return x
}

// gradMag scales a signed Sobel response to an 8-bit magnitude.
func gradMag(s int32) byte {
	if s < 0 {
		s = -s
	}
	s >>= 2
	if s > 255 {
		s = 255
	}
	return byte(s)
}
