package canny

import (
	"testing"

	"repro/internal/apps/sections"
	"repro/internal/core"
	"repro/internal/platform"
)

func smallCfg() Config {
	return Config{Width: 48, Height: 32, Frames: 1, Threshold: 60, Seed: 5,
		CPUs: [7]int{0, 1, 0, 1, 0, 1, 0}}
}

func TestConfigValidate(t *testing.T) {
	if err := smallCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := smallCfg()
	bad.Width = 4
	if err := bad.Validate(); err == nil {
		t.Error("tiny width accepted")
	}
	bad = smallCfg()
	bad.Frames = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero frames accepted")
	}
	bad = smallCfg()
	bad.Threshold = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero threshold accepted")
	}
	if err := Default(1).Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
}

func buildApp(t *testing.T, cfg Config) (*core.App, *Pipeline) {
	t.Helper()
	b := core.NewBuilder("canny-test")
	b.Sections(sections.DataSize, sections.BSSSize)
	p, err := Build(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sections.PreloadData(b.ApplData())
	app, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return app, p
}

func pcfg() platform.Config {
	pc := platform.Default()
	pc.NumCPUs = 2
	return pc
}

func TestPipelineMatchesReference(t *testing.T) {
	app, p := buildApp(t, smallCfg())
	res, err := core.RunApp(app, core.RunConfig{Platform: pcfg()})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("edge map wrong: %v", err)
	}
	// The edge map should not be trivial (all 0 or all 255).
	var edges int
	for _, v := range p.Reference {
		if v == 255 {
			edges++
		}
	}
	if edges == 0 || edges == len(p.Reference) {
		t.Errorf("degenerate edge map: %d edges of %d", edges, len(p.Reference))
	}
	for _, task := range []string{"Fr. canny", "LowPass", "HorizSobel", "VertSobel",
		"HorizNMS", "VertNMS", "MaxTreshold"} {
		if res.TaskCycles[task] == 0 {
			t.Errorf("task %q consumed no cycles", task)
		}
	}
}

func TestPipelineMultiFrame(t *testing.T) {
	cfg := smallCfg()
	cfg.Frames = 2
	app, p := buildApp(t, cfg)
	if _, err := core.RunApp(app, core.RunConfig{Platform: pcfg()}); err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("multi-frame edge map wrong: %v", err)
	}
}

func TestPipelinePartitioned(t *testing.T) {
	app, p := buildApp(t, smallCfg())
	alloc := core.Allocation{}
	for _, e := range app.Entities() {
		if e.Pinned > 0 {
			alloc[e.Name] = e.Pinned
		} else {
			alloc[e.Name] = 2
		}
	}
	if _, err := core.RunApp(app, core.RunConfig{
		Platform: pcfg(), Strategy: core.Partitioned, Alloc: alloc,
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("partitioned edge map wrong: %v", err)
	}
}

func TestSevenTasksRegistered(t *testing.T) {
	app, _ := buildApp(t, smallCfg())
	if app.NumTasks() != 7 {
		t.Fatalf("tasks = %d, want 7", app.NumTasks())
	}
	if len(app.FIFOs) != 7 {
		t.Errorf("fifos = %d, want 7", len(app.FIFOs))
	}
	if len(app.Frames) != 1 {
		t.Errorf("frames = %d, want 1", len(app.Frames))
	}
}

func TestGradMag(t *testing.T) {
	if gradMag(0) != 0 || gradMag(-40) != 10 || gradMag(40) != 10 {
		t.Error("gradMag scaling wrong")
	}
	if gradMag(100000) != 255 || gradMag(-100000) != 255 {
		t.Error("gradMag clamp wrong")
	}
}

func TestClampX(t *testing.T) {
	if clampX(-1, 10) != 0 || clampX(10, 10) != 9 || clampX(5, 10) != 5 {
		t.Error("clampX wrong")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	app, p := buildApp(t, smallCfg())
	if _, err := core.RunApp(app, core.RunConfig{Platform: pcfg()}); err != nil {
		t.Fatal(err)
	}
	p.Out.Region.Bytes()[3] ^= 0x80
	if err := p.Verify(); err == nil {
		t.Fatal("corruption not detected")
	}
}
