package jpeg

import (
	"testing"

	"repro/internal/apps/sections"
	"repro/internal/core"
	"repro/internal/platform"
)

func smallCfg() Config {
	return Config{Suffix: "T", Width: 64, Height: 48, Frames: 1, Quality: 2, Seed: 11,
		CPUs: [4]int{0, 1, 0, 1}}
}

func TestConfigValidate(t *testing.T) {
	if err := smallCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := smallCfg()
	bad.Width = 60
	if err := bad.Validate(); err == nil {
		t.Error("non-multiple-of-8 width accepted")
	}
	bad = smallCfg()
	bad.Frames = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero frames accepted")
	}
	bad = smallCfg()
	bad.Quality = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero quality accepted")
	}
	if err := Default("1", 5).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestEncodeDecodeReferenceRoundTrip(t *testing.T) {
	cfg := smallCfg()
	stream, ref := encodeAll(cfg)
	if len(stream) == 0 {
		t.Fatal("empty stream")
	}
	if len(ref) != cfg.Width*cfg.Height {
		t.Fatalf("reference size = %d", len(ref))
	}
	// The reference must be deterministic.
	stream2, ref2 := encodeAll(cfg)
	if len(stream2) != len(stream) {
		t.Fatal("stream not deterministic")
	}
	for i := range ref {
		if ref[i] != ref2[i] {
			t.Fatal("reference not deterministic")
		}
	}
}

func TestGammaLUTMonotone(t *testing.T) {
	prev := gammaLUT(0)
	for v := 1; v < 256; v++ {
		cur := gammaLUT(v)
		if cur < prev {
			t.Fatalf("gamma LUT not monotone at %d", v)
		}
		prev = cur
	}
}

func buildApp(t *testing.T, cfg Config) (*core.App, *Pipeline) {
	t.Helper()
	b := core.NewBuilder("jpeg-test")
	b.Sections(sections.DataSize, sections.BSSSize)
	p, err := Build(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sections.PreloadData(b.ApplData())
	app, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return app, p
}

func runPlatform(t *testing.T) platform.Config {
	t.Helper()
	pc := platform.Default()
	pc.NumCPUs = 2
	return pc
}

func TestPipelineDecodesCorrectly(t *testing.T) {
	app, p := buildApp(t, smallCfg())
	res, err := core.RunApp(app, core.RunConfig{Platform: runPlatform(t)})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("decoded output wrong: %v", err)
	}
	if res.Platform.TotalInstrs == 0 || res.Platform.L2.Accesses == 0 {
		t.Error("no work accounted")
	}
	// Every task consumed cycles.
	for _, task := range []string{"FrontEndT", "IDCTT", "RasterT", "BackEndT"} {
		if res.TaskCycles[task] == 0 {
			t.Errorf("task %s consumed no cycles", task)
		}
	}
}

func TestPipelineMultiFrame(t *testing.T) {
	cfg := smallCfg()
	cfg.Frames = 2
	app, p := buildApp(t, cfg)
	if _, err := core.RunApp(app, core.RunConfig{Platform: runPlatform(t)}); err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("multi-frame decode wrong: %v", err)
	}
}

func TestPipelinePartitionedStillCorrect(t *testing.T) {
	// Functional behaviour must be identical under cache partitioning —
	// only timing may change.
	app, p := buildApp(t, smallCfg())
	alloc := core.Allocation{}
	for _, e := range app.Entities() {
		if e.Pinned > 0 {
			alloc[e.Name] = e.Pinned
		} else {
			alloc[e.Name] = 2
		}
	}
	_, err := core.RunApp(app, core.RunConfig{
		Platform: runPlatform(t),
		Strategy: core.Partitioned,
		Alloc:    alloc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("partitioned decode wrong: %v", err)
	}
}

func TestEntityInventory(t *testing.T) {
	app, _ := buildApp(t, smallCfg())
	es := app.Entities()
	wantNames := []string{
		"FrontEndT", "IDCTT", "RasterT", "BackEndT",
		"jpegCoefT", "jpegPixT", "jpegLineT", "jpegOutT",
		"appl data", "appl bss", "rt data", "rt bss",
	}
	for _, n := range wantNames {
		if core.EntityByName(es, n) == nil {
			t.Errorf("missing entity %q", n)
		}
	}
	// FIFOs are pinned, tasks are not.
	if e := core.EntityByName(es, "jpegCoefT"); e.Pinned == 0 {
		t.Error("FIFO entity not pinned")
	}
	if e := core.EntityByName(es, "FrontEndT"); e.Pinned != 0 {
		t.Error("task entity pinned")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	app, p := buildApp(t, smallCfg())
	if _, err := core.RunApp(app, core.RunConfig{Platform: runPlatform(t)}); err != nil {
		t.Fatal(err)
	}
	p.Out.Region.Bytes()[10] ^= 0xFF
	if err := p.Verify(); err == nil {
		t.Fatal("corruption not detected")
	} else if _, ok := err.(*VerifyError); !ok {
		t.Fatalf("unexpected error type %T", err)
	}
}
