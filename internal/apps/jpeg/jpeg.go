// Package jpeg implements the four-task JPEG decoder pipeline of the
// paper's first application (de Kock, ISSS 2002): FrontEnd (bitstream
// parsing and variable-length decoding), IDCT, Raster (block-to-raster
// conversion) and BackEnd (post-processing and display write-out), the
// task names of Table 1.
//
// The decoder is functionally real: a synthetic image is forward-DCT
// coded at build time, and the pipeline entropy-decodes, dequantizes,
// inverse-transforms and post-processes it through simulated memory, so
// every table lookup, FIFO token and frame-buffer write generates the
// memory traffic the shared L2 sees on the CAKE platform. The decoded
// output is verified bit-exactly against a plain-Go reference decode.
package jpeg

import (
	"fmt"

	"repro/internal/apps/sections"
	"repro/internal/apps/synth"
	"repro/internal/core"
	"repro/internal/kpn"
	"repro/internal/mem"
)

// Config describes one decoder instance.
type Config struct {
	Suffix  string // appended to task names: "1" -> "FrontEnd1"
	Width   int    // pixels, multiple of 8
	Height  int    // pixels, multiple of 8
	Frames  int    // images decoded per application period
	Quality int32  // quantizer scale, >= 1
	Seed    uint64 // input-image seed
	CPUs    [4]int // static CPU of FrontEnd, IDCT, Raster, BackEnd
}

// Default returns a 512×384, single-frame decoder.
func Default(suffix string, seed uint64) Config {
	return Config{Suffix: suffix, Width: 512, Height: 384, Frames: 1, Quality: 2, Seed: seed}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Width <= 0 || c.Width%8 != 0 || c.Height <= 0 || c.Height%8 != 0 {
		return fmt.Errorf("jpeg: size %dx%d not a multiple of 8", c.Width, c.Height)
	}
	if c.Frames <= 0 {
		return fmt.Errorf("jpeg: %d frames", c.Frames)
	}
	if c.Quality < 1 {
		return fmt.Errorf("jpeg: quality %d", c.Quality)
	}
	return nil
}

// Pipeline is one built decoder instance plus its verification data.
type Pipeline struct {
	Config
	Out       *kpn.Frame
	Reference []byte // expected content of Out after the last frame
}

// FrontEnd heap layout: the coded stream, then the VLD tables.
const (
	rasterTabBytes  = 16 * 1024 // block reorder map
	backEndTabBytes = 16 * 1024 // dither matrix
	symLUTBytes     = 256
	vlcTabWords     = 16 * 1024 // 64 KiB of VLC side tables
)

// gammaLUT is BackEnd's post-processing table (mild contrast stretch).
func gammaLUT(v int) byte {
	o := (v*9)/10 + 20
	if o > 255 {
		o = 255
	}
	return byte(o)
}

// Build adds the decoder's tasks, FIFOs and output frame to the builder.
// The application's shared sections must already exist (Builder.Sections
// plus sections.PreloadData), since the decoder reads the zigzag and
// quantization tables from "appl data".
func Build(b *core.Builder, cfg Config) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	stream, reference := encodeAll(cfg)
	p := &Pipeline{Config: cfg, Reference: reference}
	secs := appSections{data: b.ApplData(), bss: b.ApplBSS()}

	coefF := b.AddFIFO("jpegCoef"+cfg.Suffix, 128, 8)
	pixF := b.AddFIFO("jpegPix"+cfg.Suffix, 64, 16)
	lineF := b.AddFIFO("jpegLine"+cfg.Suffix, cfg.Width, 8)
	p.Out = b.AddFrame("jpegOut"+cfg.Suffix, cfg.Width, cfg.Height, 1)

	blocksPerRow := cfg.Width / 8
	blockRows := cfg.Height / 8
	totalBlocks := blocksPerRow * blockRows * cfg.Frames

	// The coded input stream is its own buffer entity, as a real input
	// DMA buffer would be — it must not pollute FrontEnd's partition.
	inBuf := b.AddBuffer("jpegIn"+cfg.Suffix, uint64(len(stream)))
	copy(inBuf.Bytes(), stream)

	// FrontEnd: parse + VLD + dezigzag.
	fe := b.AddTask(core.TaskConfig{
		Name: "FrontEnd" + cfg.Suffix, CPU: cfg.CPUs[0],
		CodeSize: 20 * 1024, HotCode: 7 * 1024,
		HeapSize: symLUTBytes + vlcTabWords*4 + 1024,
		Body:     frontEndBody(cfg, secs, coefF, inBuf, totalBlocks),
	})
	preloadFrontEnd(fe.Heap)

	// IDCT: dequantize + inverse transform. Deliberately tiny footprint
	// (the paper allocates it a single unit).
	idct := b.AddTask(core.TaskConfig{
		Name: "IDCT" + cfg.Suffix, CPU: cfg.CPUs[1],
		CodeSize: 20 * 1024, HotCode: 7 * 1024, HeapSize: 1024,
		Body: idctBody(cfg, secs, coefF, pixF, totalBlocks),
	})
	_ = idct

	// Raster: block-to-line conversion through a strip buffer, plus a
	// block-reorder map probed per block.
	rasterTab := uint64(cfg.Width * 8)
	raster := b.AddTask(core.TaskConfig{
		Name: "Raster" + cfg.Suffix, CPU: cfg.CPUs[2],
		CodeSize: 20 * 1024, HotCode: 7 * 1024,
		HeapSize: rasterTab + rasterTabBytes + 1024,
		Body:     rasterBody(cfg, secs, pixF, lineF, rasterTab),
	})
	sections.FillTable(raster.Heap, rasterTab, rasterTabBytes, cfg.Seed*13+7)

	// BackEnd: post-processing LUT and dither matrix + display write.
	beTab := uint64(256 + cfg.Width)
	be := b.AddTask(core.TaskConfig{
		Name: "BackEnd" + cfg.Suffix, CPU: cfg.CPUs[3],
		CodeSize: 20 * 1024, HotCode: 7 * 1024,
		HeapSize: beTab + backEndTabBytes + 1024,
		Body:     backEndBody(cfg, secs, lineF, p.Out, beTab),
	})
	sections.FillTable(be.Heap, beTab, backEndTabBytes, cfg.Seed*17+3)
	return p, nil
}

// preloadFrontEnd installs the VLD tables in the FrontEnd heap backing
// store, as the loader/init phase would. Layout: symbol LUT at 0, VLC
// code book at symLUTBytes.
func preloadFrontEnd(heap *mem.Region) {
	bs := heap.Bytes()
	for i := 0; i < symLUTBytes; i++ {
		bs[i] = byte(i * 7)
	}
	rng := synth.NewRand(9173)
	for i := 0; i < vlcTabWords; i++ {
		v := uint32(rng.Next())
		for k := 0; k < 4; k++ {
			bs[symLUTBytes+i*4+k] = byte(v >> (8 * k))
		}
	}
}

func frontEndBody(cfg Config, app appSections, out *kpn.FIFO, inBuf *mem.Region, totalBlocks int) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		heap := c.Heap()
		const symOff = uint64(0)
		const vlcOff = uint64(symLUTBytes)
		vlc := sections.NewProbeTable(vlcOff, vlcTabWords*4, cfg.Seed*29+11)
		pos := uint64(0)
		tok := make([]byte, 128)
		for blk := 0; blk < totalBlocks; blk++ {
			var coef [64]int32
			idx := 0
			for {
				run := c.Load8(inBuf, pos)
				_ = c.Load8(heap, symOff+uint64(run)) // symbol class LUT
				c.Exec(8)
				if run == synth.EOB {
					pos++
					break
				}
				lo := c.Load8(inBuf, pos+1)
				hi := c.Load8(inBuf, pos+2)
				pos += 3
				v := int32(int16(uint16(lo) | uint16(hi)<<8))
				// VLC code-book lookup: one table line per symbol.
				vlc.Probe(c, heap, 1)
				idx += int(run)
				if v != 0 && idx < 64 {
					// Dezigzag through the shared appl-data table.
					zz := c.Load32(app.data, sections.ZigZagOff+uint64(idx)*4)
					coef[zz] = v
					idx++
				}
				c.Exec(12)
			}
			// Per-block code-book state refresh (EOB/AC tables).
			vlc.Probe(c, heap, 8)
			for i := 0; i < 64; i++ {
				v := uint16(coef[i])
				tok[i*2] = byte(v)
				tok[i*2+1] = byte(v >> 8)
			}
			out.Write(c, tok)
			sections.Bump(c, app.bss, 0)
		}
		out.Close(c)
	}
}

func idctBody(cfg Config, app appSections, in, out *kpn.FIFO, totalBlocks int) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		tok := make([]byte, 128)
		pix := make([]byte, 64)
		for blk := 0; blk < totalBlocks; blk++ {
			if !in.Read(c, tok) {
				break
			}
			var b [64]int32
			for i := 0; i < 64; i++ {
				b[i] = int32(int16(uint16(tok[i*2]) | uint16(tok[i*2+1])<<8))
			}
			// Dequantize with the shared quantization matrix.
			for i := 0; i < 64; i++ {
				q := int32(c.Load32(app.data, sections.QuantOff+uint64(i)*4))
				b[i] *= q * cfg.Quality
				c.Exec(3)
			}
			// Touch the shared DCT basis table once per row pass, as the
			// inner loops of a table-driven IDCT do.
			for i := 0; i < 64; i++ {
				_ = c.Load32(app.data, sections.CosOff+uint64(i)*4)
			}
			synth.IDCT8(&b)
			c.Exec(1100)
			for i := 0; i < 64; i++ {
				pix[i] = synth.Clamp8(b[i])
			}
			out.Write(c, pix)
			sections.Bump(c, app.bss, 1)
		}
		out.Close(c)
	}
}

func rasterBody(cfg Config, app appSections, in, out *kpn.FIFO, tabOff uint64) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		heap := c.Heap()
		tab := sections.NewProbeTable(tabOff, rasterTabBytes, cfg.Seed*13+7)
		blocksPerRow := cfg.Width / 8
		pix := make([]byte, 64)
		line := make([]byte, cfg.Width)
		bx, rows := 0, 0
		for {
			if !in.Read(c, pix) {
				break
			}
			tab.Probe(c, heap, 6)
			// Scatter the block into the strip buffer.
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					c.Store8(heap, uint64(y*cfg.Width+bx*8+x), pix[y*8+x])
					c.Exec(2)
				}
			}
			bx++
			if bx == blocksPerRow {
				bx = 0
				for y := 0; y < 8; y++ {
					c.LoadBytes(heap, uint64(y*cfg.Width), line)
					out.Write(c, line)
				}
				rows++
				sections.Bump(c, app.bss, 2)
			}
		}
		out.Close(c)
	}
}

func backEndBody(cfg Config, app appSections, in *kpn.FIFO, outFrame *kpn.Frame, tabOff uint64) func(*kpn.Ctx) {
	return func(c *kpn.Ctx) {
		heap := c.Heap()
		tab := sections.NewProbeTable(tabOff, backEndTabBytes, cfg.Seed*17+3)
		// Init: build the post-processing LUT in the private heap.
		for v := 0; v < 256; v++ {
			c.Store8(heap, uint64(v), gammaLUT(v))
		}
		line := make([]byte, cfg.Width)
		outLine := make([]byte, cfg.Width)
		y := 0
		for {
			if !in.Read(c, line) {
				break
			}
			tab.Probe(c, heap, 8)
			for x := 0; x < cfg.Width; x++ {
				outLine[x] = c.Load8(heap, uint64(line[x]))
				c.Exec(4)
				if x%16 == 0 {
					sections.HistAdd(c, app.bss, line[x])
				}
			}
			outFrame.StoreRow(c, y, outLine)
			y++
			if y == cfg.Height {
				y = 0 // next frame overwrites the display buffer
			}
		}
	}
}

// appSections carries the application's shared static sections into the
// task closures.
type appSections struct {
	data *mem.Region
	bss  *mem.Region
}
