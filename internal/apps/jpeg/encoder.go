package jpeg

import "repro/internal/apps/synth"

// encodeAll generates the synthetic input images, forward-codes them into
// one concatenated stream (build-time work standing in for a real JPEG
// file), and computes the reference output: the bit-exact expected content
// of the display frame after the pipeline decodes the final frame.
func encodeAll(cfg Config) (stream []byte, reference []byte) {
	for f := 0; f < cfg.Frames; f++ {
		img := synth.GenerateImage(cfg.Width, cfg.Height, cfg.Seed+uint64(f)*977)
		stream = encodeFrame(stream, img, cfg.Quality)
	}
	// Reference: decode the stream the way the pipeline does and keep the
	// last frame after BackEnd's LUT.
	reference = make([]byte, cfg.Width*cfg.Height)
	pos := 0
	for f := 0; f < cfg.Frames; f++ {
		pos += decodeFrameReference(stream[pos:], cfg, reference)
	}
	return stream, reference
}

// encodeFrame appends one frame's coded blocks in block-row-major order.
func encodeFrame(stream []byte, img *synth.Image, quality int32) []byte {
	for by := 0; by < img.Height/8; by++ {
		for bx := 0; bx < img.Width/8; bx++ {
			var b [64]int32
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					b[y*8+x] = int32(img.At(bx*8+x, by*8+y)) - 128
				}
			}
			synth.FDCT8(&b)
			synth.Quantize(&b, quality)
			stream = synth.EncodeBlock(stream, &b)
		}
	}
	return stream
}

// decodeFrameReference decodes one frame into out using exactly the
// integer operations of the pipeline tasks (dequantize, IDCT8, clamp,
// gamma LUT) and returns the bytes consumed.
func decodeFrameReference(stream []byte, cfg Config, out []byte) int {
	pos := 0
	for by := 0; by < cfg.Height/8; by++ {
		for bx := 0; bx < cfg.Width/8; bx++ {
			var b [64]int32
			n, err := synth.DecodeBlock(stream[pos:], &b)
			if err != nil {
				panic("jpeg: reference decode of self-generated stream failed: " + err.Error())
			}
			pos += n
			synth.Dequantize(&b, cfg.Quality)
			synth.IDCT8(&b)
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					v := synth.Clamp8(b[y*8+x])
					out[(by*8+y)*cfg.Width+bx*8+x] = gammaLUT(int(v))
				}
			}
		}
	}
	return pos
}

// Verify compares the output frame buffer against the reference decode.
// It must be called after the application ran to completion.
func (p *Pipeline) Verify() error {
	got := p.Out.Region.Bytes()
	for i := range p.Reference {
		if got[i] != p.Reference[i] {
			return &VerifyError{Pipeline: "jpeg" + p.Suffix, Offset: i, Got: got[i], Want: p.Reference[i]}
		}
	}
	return nil
}

// VerifyError reports the first decoded-output mismatch.
type VerifyError struct {
	Pipeline string
	Offset   int
	Got      byte
	Want     byte
}

// Error implements error.
func (e *VerifyError) Error() string {
	return "apps: " + e.Pipeline + ": decoded output mismatch"
}
