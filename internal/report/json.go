package report

import "encoding/json"

// SchemaVersion is the version of every machine-readable document the
// harness emits: report envelopes (tables, charts, headline rows) and
// the scenario result documents share it, so one consumer-side check
// covers the whole surface. Bump it on any incompatible field change.
const SchemaVersion = 1

// Envelope is the versioned wrapper around one machine-readable
// artifact. Kind discriminates the payload shape ("table", "barchart",
// "headline", "scenario.result", ...).
type Envelope struct {
	SchemaVersion int         `json:"schema_version"`
	Kind          string      `json:"kind"`
	Payload       interface{} `json:"payload"`
}

// NewEnvelope wraps a payload under the current schema version.
func NewEnvelope(kind string, payload interface{}) Envelope {
	return Envelope{SchemaVersion: SchemaVersion, Kind: kind, Payload: payload}
}

// tableJSON is the wire shape of a Table.
type tableJSON struct {
	Title   string     `json:"title,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// MarshalJSON renders the table as a versioned envelope, so `-json`
// output of any table-producing command is self-describing.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(NewEnvelope("table", tableJSON{
		Title:   t.Title,
		Headers: t.Headers,
		Rows:    rows,
	}))
}

// barPairJSON is the wire shape of one BarPair.
type barPairJSON struct {
	Label string  `json:"label"`
	A     float64 `json:"a"`
	B     float64 `json:"b"`
}

// barChartJSON is the wire shape of a BarChart.
type barChartJSON struct {
	Title  string        `json:"title,omitempty"`
	ALabel string        `json:"a_label"`
	BLabel string        `json:"b_label"`
	Pairs  []barPairJSON `json:"pairs"`
}

// MarshalJSON renders the chart as a versioned envelope.
func (c *BarChart) MarshalJSON() ([]byte, error) {
	pairs := make([]barPairJSON, len(c.Pairs))
	for i, p := range c.Pairs {
		pairs[i] = barPairJSON{Label: p.Label, A: p.A, B: p.B}
	}
	return json.Marshal(NewEnvelope("barchart", barChartJSON{
		Title:  c.Title,
		ALabel: c.ALabel,
		BLabel: c.BLabel,
		Pairs:  pairs,
	}))
}
