package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTableRendersAligned(t *testing.T) {
	tb := &Table{
		Title:   "Table 1",
		Headers: []string{"task", "units"},
	}
	tb.AddRow("FrontEnd1", 4)
	tb.AddRow("IDCT1", 1)
	tb.AddRow("x", 3.14159)
	out := tb.String()
	if !strings.Contains(out, "Table 1") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "FrontEnd1") || !strings.Contains(out, "IDCT1") {
		t.Error("missing rows")
	}
	if !strings.Contains(out, "3.142") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 3 rows
	if len(lines) != 6 {
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	// Header and separator share width.
	if len(lines[1]) != len(lines[2]) {
		t.Error("separator misaligned")
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := &Table{Headers: []string{"a"}}
	tb.AddRow("x", "extra")
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Error("extra cell dropped")
	}
}

func TestBarChart(t *testing.T) {
	c := &BarChart{
		Title:  "Figure 2",
		ALabel: "shared",
		BLabel: "partitioned",
		Pairs: []BarPair{
			{Label: "FrontEnd1", A: 100, B: 20},
			{Label: "IDCT1", A: 0, B: 0},
		},
		Width: 20,
	}
	out := c.String()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "FrontEnd1") {
		t.Error("missing title/labels")
	}
	// The larger bar must be longer than the smaller one.
	var sharedBar, partBar int
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "FrontEnd1") {
			sharedBar = strings.Count(l, "#")
		} else if strings.Contains(l, "~") {
			partBar = strings.Count(l, "~")
		}
	}
	if sharedBar <= partBar {
		t.Errorf("bar lengths wrong: %d vs %d\n%s", sharedBar, partBar, out)
	}
	if sharedBar != 20 {
		t.Errorf("max bar should fill width: %d", sharedBar)
	}
}

func TestBarChartAllZero(t *testing.T) {
	c := &BarChart{Pairs: []BarPair{{Label: "x", A: 0, B: 0}}}
	out := c.String() // must not divide by zero
	if out == "" {
		t.Error("empty render")
	}
}

func TestBarChartTinyValueVisible(t *testing.T) {
	c := &BarChart{Pairs: []BarPair{{Label: "x", A: 1000, B: 1}}, Width: 10}
	out := c.String()
	if !strings.Contains(out, "~") {
		t.Error("nonzero value rendered invisible")
	}
}

func TestTableMarshalJSONEnvelope(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"a", "b"}}
	tab.AddRow(1, 2.5)
	raw, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"schema_version":1,"kind":"table","payload":{"title":"T","headers":["a","b"],"rows":[["1","2.5"]]}}`
	if string(raw) != want {
		t.Errorf("table envelope drifted:\n got %s\nwant %s", raw, want)
	}
	// An empty table still emits rows as [], not null.
	raw, err = json.Marshal(&Table{Headers: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"rows":[]`) {
		t.Errorf("empty table must emit empty rows array: %s", raw)
	}
}

func TestBarChartMarshalJSONEnvelope(t *testing.T) {
	c := &BarChart{Title: "C", ALabel: "l", BLabel: "r", Pairs: []BarPair{{Label: "x", A: 1, B: 2}}}
	raw, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"schema_version":1,"kind":"barchart","payload":{"title":"C","a_label":"l","b_label":"r","pairs":[{"label":"x","a":1,"b":2}]}}`
	if string(raw) != want {
		t.Errorf("chart envelope drifted:\n got %s\nwant %s", raw, want)
	}
}
