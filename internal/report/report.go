// Package report renders the experiment artifacts — the allocation tables
// of Tables 1-2 and the per-entity bar charts of Figures 2-3 — as plain
// text for the command-line harness and EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row (values are formatted with %v).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// BarPair is one entity's pair of bars (e.g. shared vs partitioned
// misses, or expected vs simulated).
type BarPair struct {
	Label string
	A, B  float64
}

// BarChart renders grouped horizontal bars, Figure 2/3 style.
type BarChart struct {
	Title  string
	ALabel string
	BLabel string
	Pairs  []BarPair
	Width  int // bar width in characters; 0 = 40
}

// String renders the chart with both bars scaled to the global maximum.
func (c *BarChart) String() string {
	width := c.Width
	if width == 0 {
		width = 40
	}
	max := 0.0
	labelW := 0
	for _, p := range c.Pairs {
		if p.A > max {
			max = p.A
		}
		if p.B > max {
			max = p.B
		}
		if len(p.Label) > labelW {
			labelW = len(p.Label)
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	fmt.Fprintf(&b, "%*s  %s=#  %s=~\n", labelW, "", c.ALabel, c.BLabel)
	bar := func(v float64, ch byte) string {
		n := int(v / max * float64(width))
		if v > 0 && n == 0 {
			n = 1
		}
		return strings.Repeat(string(ch), n)
	}
	for _, p := range c.Pairs {
		fmt.Fprintf(&b, "%*s |%-*s %12.0f\n", labelW, p.Label, width, bar(p.A, '#'), p.A)
		fmt.Fprintf(&b, "%*s |%-*s %12.0f\n", labelW, "", width, bar(p.B, '~'), p.B)
	}
	return b.String()
}
