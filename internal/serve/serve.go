// Package serve exposes the scenario API over HTTP/JSON — the
// `compmem serve` service mode and the first step toward the serving
// north star. Clients submit scenario batches and receive structured,
// versioned result documents as an NDJSON stream, in submission order,
// each written as soon as it (and its predecessors) complete.
//
// Endpoints:
//
//	GET  /healthz       liveness, readiness and load (inflight, queue, memo, panics)
//	GET  /v1/workloads  registered workload names
//	GET  /v1/scenarios  built-in scenario specs (usable as "base")
//	POST /v1/batch      {"scenarios":[spec,...]} → NDJSON result stream
//	POST /v1/sweep      sweep spec → NDJSON per-point stream + aggregate
//	POST /v1/explore    exploration spec → NDJSON visited-point stream + front aggregate
//
// One Runner is shared across requests, so its content-addressed memo
// acts as a result cache: resubmitting a spec (or submitting a spec
// sharing pipeline stages with an earlier one) is served without
// re-simulation, and results are deterministic under any concurrency.
// Both streaming endpoints thread the request context into execution: a
// dropped connection cancels queued scenarios/points instead of burning
// the worker pool (work already in flight finishes into the shared
// memo, so it is never wasted).
//
// The server is fault-contained and load-shedding: a panicking pipeline
// stage becomes that scenario's structured "error" result (see
// scenario.StagePanicError) while every other request keeps streaming;
// the simulation endpoints pass admission control (a bounded in-flight
// semaphore plus a small wait queue — over-capacity submissions shed
// with 429 and Retry-After, never unbounded queueing) and can be
// deadline-bounded per request; every NDJSON stream is terminated by a
// "stream.end" envelope so clients can distinguish completion from
// truncation.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/explore"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/workloads"
)

// Admission-control and body-size defaults.
const (
	// DefaultMaxBatch bounds the scenarios (or sweep points) of one
	// submission.
	DefaultMaxBatch = 256
	// DefaultMaxInflight bounds the simulation requests admitted
	// concurrently.
	DefaultMaxInflight = 8
	// DefaultQueue bounds the submissions waiting for an in-flight slot
	// before over-capacity shedding begins.
	DefaultQueue = 16
	// maxBodyBytes caps a request body; larger submissions get 413.
	maxBodyBytes = 16 << 20
	// retryAfterSeconds is the Retry-After hint on shed (429/503)
	// responses.
	retryAfterSeconds = 1
)

// maxMemoEntries caps the shared runner's memo between submissions.
const maxMemoEntries = 4096

// Logf is the injectable logging hook of a Server: dropped-client write
// failures, shed decisions and drain progress report through it. nil
// discards.
type Logf func(format string, args ...interface{})

// Options tunes a Server's admission control, deadlines and logging.
// The zero value means all defaults.
type Options struct {
	// MaxBatch bounds one submission's scenarios or sweep points;
	// 0 means DefaultMaxBatch.
	MaxBatch int
	// MaxInflight bounds the simulation requests (batch + sweep)
	// admitted concurrently; 0 means DefaultMaxInflight.
	MaxInflight int
	// Queue bounds the submissions waiting for an in-flight slot beyond
	// MaxInflight; anything more sheds with 429. 0 means DefaultQueue;
	// negative disables the wait queue entirely (immediate shedding).
	Queue int
	// RequestTimeout deadline-bounds each admitted request's simulation
	// work through the scenario layer's context cancellation; 0 means
	// no deadline.
	RequestTimeout time.Duration
	// Logf receives operational log lines; nil discards them.
	Logf Logf
}

// Server handles the scenario-service endpoints.
type Server struct {
	cfg  experiments.Config
	rn   *scenario.Runner
	mux  *http.ServeMux
	opts Options

	slots chan struct{} // in-flight tokens (admission semaphore)
	queue chan struct{} // wait-queue tokens; nil when queueing is disabled

	inflight int64  // gauge: admitted simulation requests
	queued   int64  // gauge: submissions waiting for a slot
	shed     uint64 // counter: submissions shed with 429

	draining  int32 // set once when the drain starts
	drainCh   chan struct{}
	drainOnce sync.Once
}

// New builds a Server over a shared runner with default Options. cfg
// supplies the defaults built-in base scenarios are materialized with
// (scale, engines, solver), exactly like the CLI flags do for commands.
func New(cfg experiments.Config, rn *scenario.Runner) *Server {
	return NewWithOptions(cfg, rn, Options{})
}

// NewWithOptions builds a Server with explicit admission-control,
// deadline and logging options.
func NewWithOptions(cfg experiments.Config, rn *scenario.Runner, opts Options) *Server {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = DefaultMaxInflight
	}
	if opts.Queue == 0 {
		opts.Queue = DefaultQueue
	}
	s := &Server{
		cfg:     cfg,
		rn:      rn,
		mux:     http.NewServeMux(),
		opts:    opts,
		slots:   make(chan struct{}, opts.MaxInflight),
		drainCh: make(chan struct{}),
	}
	if opts.Queue > 0 {
		s.queue = make(chan struct{}, opts.Queue)
	}
	s.mux.HandleFunc("/healthz", s.health)
	s.mux.HandleFunc("/v1/workloads", s.workloads)
	s.mux.HandleFunc("/v1/scenarios", s.scenarios)
	s.mux.HandleFunc("/v1/batch", s.admitted(s.batch))
	s.mux.HandleFunc("/v1/sweep", s.admitted(s.sweep))
	s.mux.HandleFunc("/v1/explore", s.admitted(s.explore))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) logf(format string, args ...interface{}) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Health is the /healthz payload: liveness plus the readiness and load
// signals a fleet router health-routes on. Runner carries the shared
// memo counters, including stage_panics — contained panics are an
// operational signal even though they never crash the process.
type Health struct {
	Status      string `json:"status"` // "ok" or "draining"
	Ready       bool   `json:"ready"`
	Inflight    int64  `json:"inflight"`
	MaxInflight int    `json:"max_inflight"`
	Queued      int64  `json:"queued"`
	QueueLimit  int    `json:"queue_limit"`
	Shed        uint64 `json:"shed"`
	// StoreMode is the runner's persistence mode: "memory" (no durable
	// store), "disk", or "degraded" (a failing disk was disabled; the
	// runner keeps serving memory-only). Runner.store_errors counts the
	// failed store operations that led there.
	StoreMode string         `json:"store_mode"`
	Runner    scenario.Stats `json:"runner_stats"`
}

func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Status:      "ok",
		Ready:       true,
		Inflight:    atomic.LoadInt64(&s.inflight),
		MaxInflight: s.opts.MaxInflight,
		Queued:      atomic.LoadInt64(&s.queued),
		QueueLimit:  max(s.opts.Queue, 0),
		Shed:        atomic.LoadUint64(&s.shed),
		StoreMode:   s.rn.StoreMode(),
		Runner:      s.rn.Stats(),
	}
	code := http.StatusOK
	if s.isDraining() {
		h.Status, h.Ready = "draining", false
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, report.NewEnvelope("health", h))
}

func (s *Server) workloads(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, report.NewEnvelope("workloads", workloads.Names()))
}

func (s *Server) scenarios(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, report.NewEnvelope("scenarios", experiments.BuiltinScenarios(s.cfg)))
}

// admit gates one simulation request through the bounded in-flight
// semaphore. Over capacity, the request takes a wait-queue token and
// blocks for a slot; with the queue full (or disabled) it is shed
// immediately with 429 and a Retry-After hint — submissions never queue
// unboundedly. Queued waiters are released by a client disconnect or a
// drain. The returned release function must be called when the request
// finishes.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.isDraining() {
		s.reject(w, http.StatusServiceUnavailable, fmt.Errorf("server is draining"))
		return nil, false
	}
	acquired := func() func() {
		atomic.AddInt64(&s.inflight, 1)
		return func() {
			atomic.AddInt64(&s.inflight, -1)
			<-s.slots
		}
	}
	select {
	case s.slots <- struct{}{}:
		return acquired(), true
	default:
	}
	if s.queue != nil {
		select {
		case s.queue <- struct{}{}:
			atomic.AddInt64(&s.queued, 1)
			defer func() {
				atomic.AddInt64(&s.queued, -1)
				<-s.queue
			}()
			select {
			case s.slots <- struct{}{}:
				return acquired(), true
			case <-r.Context().Done():
				return nil, false // client gave up while queued
			case <-s.drainCh:
				s.reject(w, http.StatusServiceUnavailable, fmt.Errorf("server is draining"))
				return nil, false
			}
		default:
		}
	}
	atomic.AddUint64(&s.shed, 1)
	s.reject(w, http.StatusTooManyRequests,
		fmt.Errorf("over capacity: %d requests in flight, wait queue full", atomic.LoadInt64(&s.inflight)))
	return nil, false
}

// admitted wraps a simulation handler with admission control and the
// per-request simulation deadline.
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, ok := s.admit(w, r)
		if !ok {
			return
		}
		defer release()
		if s.opts.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}

// isDraining reports whether StartDrain has been called.
func (s *Server) isDraining() bool { return atomic.LoadInt32(&s.draining) == 1 }

// StartDrain flips the server into draining mode: /healthz reports
// not-ready with 503 (so a fleet router stops health-routing here), new
// simulation submissions are refused with 503 + Retry-After, and queued
// waiters are released with the same. Requests already admitted keep
// streaming — the drain owner (Serve) bounds how long. Idempotent.
func (s *Server) StartDrain() {
	s.drainOnce.Do(func() {
		atomic.StoreInt32(&s.draining, 1)
		close(s.drainCh)
	})
}

// readBody reads a request body under the size cap, distinguishing an
// oversized submission (413) from an unreadable one (400).
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, what string) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("%s exceeds the %d-byte request body limit", what, mbe.Limit))
		} else {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("reading %s: %v", what, err))
		}
		return nil, false
	}
	return body, true
}

// StreamEndKind terminates every NDJSON stream: the final envelope of
// /v1/batch and /v1/sweep is always a StreamEnd, so clients can
// distinguish a completed stream from a truncated one.
const StreamEndKind = "stream.end"

// StreamEnd is the terminal envelope payload of the NDJSON endpoints.
// Delivered counts the per-scenario (or per-point) envelopes actually
// written; Expected is how many the submission called for. Reason is
// "complete" (everything delivered; on the sweep endpoint the aggregate
// envelope precedes this one only in this case), "canceled" (the
// request context expired — client disconnect, request deadline, or
// drain), "truncated" (the stream ended early without a cancellation),
// or "error" (a write to the client failed mid-stream).
type StreamEnd struct {
	Delivered int    `json:"delivered"`
	Expected  int    `json:"expected"`
	Reason    string `json:"reason"`
	Error     string `json:"error,omitempty"`
}

// streamEnd classifies how a stream finished.
func streamEnd(delivered, expected int, ctx context.Context, encErr error) StreamEnd {
	end := StreamEnd{Delivered: delivered, Expected: expected}
	switch {
	case encErr != nil:
		end.Reason, end.Error = "error", encErr.Error()
	case ctx.Err() != nil:
		end.Reason, end.Error = "canceled", ctx.Err().Error()
	case delivered < expected:
		end.Reason = "truncated"
	default:
		end.Reason = "complete"
	}
	return end
}

// endStream writes the terminal envelope (best-effort: the client may
// already be gone — that is logged, not fatal).
func (s *Server) endStream(enc *json.Encoder, flusher http.Flusher, end StreamEnd) {
	if err := enc.Encode(report.NewEnvelope(StreamEndKind, end)); err != nil {
		s.logf("serve: writing stream.end (%s, %d/%d): %v", end.Reason, end.Delivered, end.Expected, err)
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) batch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST a scenario batch to this endpoint"))
		return
	}
	body, ok := s.readBody(w, r, "batch")
	if !ok {
		return
	}
	raws, err := scenario.SplitSpecs(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(raws) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(raws) > s.opts.MaxBatch {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d scenarios exceeds the limit of %d", len(raws), s.opts.MaxBatch))
		return
	}

	// Resolve specs (built-in bases allowed) before any simulation, so
	// malformed submissions fail atomically with a 400.
	specs := make([]scenario.Scenario, len(raws))
	for i, raw := range raws {
		spec, err := scenario.Resolve(raw, func(name string) (scenario.Scenario, bool) {
			return experiments.BuiltinScenario(s.cfg, name)
		})
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("scenario %d: %v", i, err))
			return
		}
		specs[i] = spec
	}

	// Bound the long-lived memo before taking on new work; the cap is
	// generous (results are summaries), and trimming never changes
	// results — simulations are deterministic.
	s.rn.TrimMemo(maxMemoEntries)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ctx := r.Context()

	// Fan the batch out over the runner's pool and stream each result in
	// submission order the moment it and its predecessors are done. The
	// request context is threaded all the way into the pipeline stages: a
	// client disconnect or an expired request deadline skips scenarios
	// not yet started AND fails queued stages of scenarios mid-pipeline
	// (an in-flight simulation still finishes — its stages are memoized
	// and shared, so the work is not wasted). A scenario whose pipeline
	// panicked arrives as a result with its "error" field set; the
	// stream, and every other request, keeps going.
	delivered := 0
	var encErr error
	s.rn.RunBatchStream(ctx, specs, func(i int, res *scenario.Result) bool {
		if err := enc.Encode(res.Envelope()); err != nil {
			encErr = err
			s.logf("serve: batch stream: client write failed after %d/%d results: %v", delivered, len(specs), err)
			return false
		}
		delivered++
		if flusher != nil {
			flusher.Flush()
		}
		return true
	})
	s.endStream(enc, flusher, streamEnd(delivered, len(specs), ctx, encErr))
}

// sweep expands and executes a declarative parameter sweep, streaming
// one "sweep.point" envelope per completed point (in point order), a
// final "sweep.result" aggregate envelope, and the terminal
// "stream.end".
func (s *Server) sweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST a sweep spec to this endpoint"))
		return
	}
	body, ok := s.readBody(w, r, "sweep spec")
	if !ok {
		return
	}
	sw, err := sweep.Parse(body, func(name string) (scenario.Scenario, bool) {
		return experiments.BuiltinScenario(s.cfg, name)
	})
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	// Bound one submission exactly like a batch: the spec's own cap
	// applies when tighter, the server's limit otherwise (truncation is
	// recorded in the aggregate, never silent).
	if sw.MaxPoints == 0 || sw.MaxPoints > s.opts.MaxBatch {
		sw.MaxPoints = s.opts.MaxBatch
	}
	// Expand pre-flight: with the cap clamped this is cheap
	// (simulation-free), and it surfaces EVERY expansion error — not
	// just what the parse-time probes catch, e.g. a range whose later
	// values break a field constraint — as a proper 400 before the
	// response header commits.
	points, total, err := sw.Expand()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}

	s.rn.TrimMemo(maxMemoEntries)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ctx := r.Context()
	delivered := 0
	var encErr error
	res, _ := sweep.ExecuteExpanded(ctx, s.rn, sw, points, total, func(p sweep.PointResult) {
		if encErr != nil {
			return
		}
		if err := enc.Encode(p.Envelope()); err != nil {
			encErr = err
			s.logf("serve: sweep stream: client write failed after %d/%d points: %v", delivered, len(points), err)
			return
		}
		delivered++
		if flusher != nil {
			flusher.Flush()
		}
	})
	if res != nil && ctx.Err() == nil && encErr == nil {
		if err := enc.Encode(res.Envelope()); err != nil {
			encErr = err
			s.logf("serve: sweep stream: writing aggregate: %v", err)
		} else if flusher != nil {
			flusher.Flush()
		}
	}
	s.endStream(enc, flusher, streamEnd(delivered, len(points), ctx, encErr))
}

// explore runs a budgeted Pareto-guided exploration of a sweep-defined
// space, streaming one "explore.point" envelope per newly simulated
// point (in visit order; a rung-probed then promoted candidate streams
// once per fidelity), a final "explore.front" aggregate, and the
// terminal "stream.end". The spec's budget is clamped to the server's
// batch limit — the space itself may be far larger (it is indexed
// lazily, never expanded), which is exactly what the adaptive search is
// for. Checkpointing is a CLI concern; the server's continuity story is
// the shared runner memo (and durable store, when configured):
// resubmitting an exploration re-simulates nothing already computed.
func (s *Server) explore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST an exploration spec to this endpoint"))
		return
	}
	body, ok := s.readBody(w, r, "exploration spec")
	if !ok {
		return
	}
	ex, err := explore.Parse(body,
		func(name string) (scenario.Scenario, bool) { return experiments.BuiltinScenario(s.cfg, name) },
		func(name string) (sweep.Sweep, bool) { return experiments.BuiltinSweep(s.cfg, name) },
	)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	// Surface space-definition errors (a range whose later values break
	// a field constraint, dimension overflow) as a 400 before the
	// response header commits; total itself may legitimately be huge.
	if _, err := ex.Sweep.Index(); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	budget := ex.Strategy.Budget
	if budget <= 0 || budget > s.opts.MaxBatch {
		budget = s.opts.MaxBatch
	}

	s.rn.TrimMemo(maxMemoEntries)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ctx := r.Context()
	delivered := 0
	var encErr error
	res, runErr := explore.Run(ctx, s.rn, ex, explore.Options{Budget: budget}, func(p explore.PointResult) {
		if encErr != nil {
			return
		}
		if err := enc.Encode(p.Envelope()); err != nil {
			encErr = err
			s.logf("serve: explore stream: client write failed after %d points: %v", delivered, err)
			return
		}
		delivered++
		if flusher != nil {
			flusher.Flush()
		}
	})
	if res != nil && runErr == nil && ctx.Err() == nil && encErr == nil {
		if err := enc.Encode(res.Envelope()); err != nil {
			encErr = err
			s.logf("serve: explore stream: writing aggregate: %v", err)
		} else if flusher != nil {
			flusher.Flush()
		}
	}
	// An adaptive search's point count is not knowable upfront, so the
	// terminal envelope cannot promise an expected count the way the
	// batch and sweep streams do: expected mirrors delivered, and a
	// search failing mid-run is reported as a truncation.
	end := streamEnd(delivered, delivered, ctx, encErr)
	if runErr != nil && end.Reason == "complete" {
		end.Reason, end.Error = "truncated", runErr.Error()
	}
	s.endStream(enc, flusher, end)
}

// reject writes an over-capacity (or draining) response with the
// Retry-After hint of the load-shedding contract.
func (s *Server) reject(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	s.writeError(w, status, err)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.logf("serve: writing %d response: %v", status, err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, report.NewEnvelope("error", map[string]string{"error": err.Error()}))
}
