// Package serve exposes the scenario API over HTTP/JSON — the
// `compmem serve` service mode and the first step toward the serving
// north star. Clients submit scenario batches and receive structured,
// versioned result documents as an NDJSON stream, in submission order,
// each written as soon as it (and its predecessors) complete.
//
// Endpoints:
//
//	GET  /healthz       liveness
//	GET  /v1/workloads  registered workload names
//	GET  /v1/scenarios  built-in scenario specs (usable as "base")
//	POST /v1/batch      {"scenarios":[spec,...]} → NDJSON result stream
//	POST /v1/sweep      sweep spec → NDJSON per-point stream + aggregate
//
// One Runner is shared across requests, so its content-addressed memo
// acts as a result cache: resubmitting a spec (or submitting a spec
// sharing pipeline stages with an earlier one) is served without
// re-simulation, and results are deterministic under any concurrency.
// Both streaming endpoints thread the request context into execution: a
// dropped connection cancels queued scenarios/points instead of burning
// the worker pool (work already in flight finishes into the shared
// memo, so it is never wasted).
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/workloads"
)

// Server handles the scenario-service endpoints.
type Server struct {
	cfg experiments.Config
	rn  *scenario.Runner
	mux *http.ServeMux
	// maxBatch bounds one submission; 0 means DefaultMaxBatch.
	maxBatch int
}

// DefaultMaxBatch bounds the scenarios of one submission.
const DefaultMaxBatch = 256

// New builds a Server over a shared runner. cfg supplies the defaults
// built-in base scenarios are materialized with (scale, engines,
// solver), exactly like the CLI flags do for commands.
func New(cfg experiments.Config, rn *scenario.Runner) *Server {
	s := &Server{cfg: cfg, rn: rn, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.health)
	s.mux.HandleFunc("/v1/workloads", s.workloads)
	s.mux.HandleFunc("/v1/scenarios", s.scenarios)
	s.mux.HandleFunc("/v1/batch", s.batch)
	s.mux.HandleFunc("/v1/sweep", s.sweep)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, report.NewEnvelope("health", map[string]string{"status": "ok"}))
}

func (s *Server) workloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, report.NewEnvelope("workloads", workloads.Names()))
}

func (s *Server) scenarios(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, report.NewEnvelope("scenarios", experiments.BuiltinScenarios(s.cfg)))
}

func (s *Server) batch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST a scenario batch to this endpoint"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading batch: %v", err))
		return
	}
	raws, err := scenario.SplitSpecs(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	limit := s.maxBatch
	if limit == 0 {
		limit = DefaultMaxBatch
	}
	if len(raws) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(raws) > limit {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d scenarios exceeds the limit of %d", len(raws), limit))
		return
	}

	// Resolve specs (built-in bases allowed) before any simulation, so
	// malformed submissions fail atomically with a 400.
	specs := make([]scenario.Scenario, len(raws))
	for i, raw := range raws {
		spec, err := scenario.Resolve(raw, func(name string) (scenario.Scenario, bool) {
			return experiments.BuiltinScenario(s.cfg, name)
		})
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("scenario %d: %v", i, err))
			return
		}
		specs[i] = spec
	}

	// Bound the long-lived memo before taking on new work; the cap is
	// generous (results are summaries), and trimming never changes
	// results — simulations are deterministic.
	s.rn.TrimMemo(maxMemoEntries)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// Fan the batch out over the runner's pool and stream each result in
	// submission order the moment it and its predecessors are done. The
	// request context is threaded all the way into the pipeline stages: a
	// client disconnect skips scenarios not yet started AND fails queued
	// stages of scenarios mid-pipeline (an in-flight simulation still
	// finishes — its stages are memoized and shared, so the work is not
	// wasted).
	s.rn.RunBatchStream(r.Context(), specs, func(i int, res *scenario.Result) bool {
		if err := enc.Encode(res.Envelope()); err != nil {
			return false // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	})
}

// sweep expands and executes a declarative parameter sweep, streaming
// one "sweep.point" envelope per completed point (in point order) and a
// final "sweep.result" aggregate envelope.
func (s *Server) sweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST a sweep spec to this endpoint"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading sweep spec: %v", err))
		return
	}
	sw, err := sweep.Parse(body, func(name string) (scenario.Scenario, bool) {
		return experiments.BuiltinScenario(s.cfg, name)
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Bound one submission exactly like a batch: the spec's own cap
	// applies when tighter, the server's limit otherwise (truncation is
	// recorded in the aggregate, never silent).
	limit := s.maxBatch
	if limit == 0 {
		limit = DefaultMaxBatch
	}
	if sw.MaxPoints == 0 || sw.MaxPoints > limit {
		sw.MaxPoints = limit
	}
	// Expand pre-flight: with the cap clamped this is cheap
	// (simulation-free), and it surfaces EVERY expansion error — not
	// just what the parse-time probes catch, e.g. a range whose later
	// values break a field constraint — as a proper 400 before the
	// response header commits.
	points, total, err := sw.Expand()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	s.rn.TrimMemo(maxMemoEntries)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	res, _ := sweep.ExecuteExpanded(r.Context(), s.rn, sw, points, total, func(p sweep.PointResult) {
		if enc.Encode(p.Envelope()) == nil && flusher != nil {
			flusher.Flush()
		}
	})
	if res == nil || r.Context().Err() != nil {
		return // client went away; no aggregate to deliver
	}
	enc.Encode(res.Envelope())
	if flusher != nil {
		flusher.Flush()
	}
}

// maxMemoEntries caps the shared runner's memo between batches.
const maxMemoEntries = 4096

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, report.NewEnvelope("error", map[string]string{"error": err.Error()}))
}
