package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/workloads"
)

var registerBlockingOnce sync.Once

var (
	// blockStarted is signaled when the blocking workload's factory is
	// first entered; blockRelease lets it proceed. Only the first factory
	// call blocks — later pipeline stages build the workload again and
	// must pass through.
	blockStarted       = make(chan struct{}, 8)
	blockRelease       = make(chan struct{})
	blockFirst   int32 = 1
	// countedBuilds counts how often the counted workload was built.
	countedBuilds int32
)

// registerCancelWorkloads registers two instrumented wrappers around
// jpeg1-only: one whose first factory call blocks until released (so
// the test controls when the first pipeline stage finishes), and one
// that counts its builds (so the test can prove queued scenarios never
// ran).
func registerCancelWorkloads(t *testing.T) {
	t.Helper()
	registerBlockingOnce.Do(func() {
		base, ok := workloads.Lookup("jpeg1-only")
		if !ok {
			t.Fatal("jpeg1-only not registered")
		}
		workloads.MustRegister("serve-test-blocking", func(bc workloads.BuildConfig) core.Workload {
			w := base(bc)
			inner := w.Factory
			w.Factory = func() (*core.App, error) {
				if atomic.CompareAndSwapInt32(&blockFirst, 1, 0) {
					blockStarted <- struct{}{}
					<-blockRelease
				}
				return inner()
			}
			return w
		})
		workloads.MustRegister("serve-test-counted", func(bc workloads.BuildConfig) core.Workload {
			w := base(bc)
			inner := w.Factory
			w.Factory = func() (*core.App, error) {
				atomic.AddInt32(&countedBuilds, 1)
				return inner()
			}
			return w
		})
	})
}

// TestBatchClientDisconnectCancelsQueuedWork is the regression test for
// the burn-after-disconnect bug: /v1/batch must thread the request
// context all the way into pipeline execution, so a client that drops
// mid-stream cancels BOTH the queued scenarios and the remaining stages
// of the scenario already in flight — only the stage that was actually
// simulating when the client vanished completes (into the shared memo,
// so that work is kept). The dropped connection is modeled by canceling
// the request's context — exactly the signal net/http delivers on a
// real disconnect — which keeps the test deterministic.
func TestBatchClientDisconnectCancelsQueuedWork(t *testing.T) {
	registerCancelWorkloads(t)
	cfg := experiments.Small()
	cfg.ProfileRuns = 1
	cfg.Workers = 1 // single worker: scenario 0 blocks, 1 and 2 stay queued
	rn := scenario.NewRunner(cfg.Workers)
	srv := New(cfg, rn)

	// Scenario 0 is a full study: with one worker its pipeline runs the
	// shared baseline first (the factory blocks inside that run's trace
	// capture), then the profile+optimize leg, then the partitioned run.
	const body = `{"scenarios":[
		{"workload":"serve-test-blocking","scale":"small","runs":1},
		{"workload":"serve-test-counted","scale":"small","runs":1,"partition":"profile"},
		{"workload":"serve-test-counted","scale":"small","runs":1,"seed":7,"partition":"profile"}
	]}`
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/batch", strings.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeHTTP(rec, req)
	}()

	// Wait until scenario 0 is inside its (blocked) shared run, then
	// drop the client and let the in-flight stage finish.
	select {
	case <-blockStarted:
	case <-time.After(30 * time.Second):
		t.Fatal("blocking workload never started")
	}
	cancel()
	close(blockRelease)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("handler did not return after the disconnect")
	}

	if n := atomic.LoadInt32(&countedBuilds); n != 0 {
		t.Errorf("queued scenarios ran after the client disconnected: %d builds", n)
	}
	st := rn.Stats()
	if st.RunRuns != 1 {
		t.Errorf("only the in-flight shared run may complete (no partitioned run into a dead socket), got %+v", st)
	}
	if st.ProfileRuns != 0 || st.OptimizeRuns != 0 {
		t.Errorf("stages after the disconnect must be canceled, not simulated: %+v", st)
	}

	// The in-flight stage completed into the shared memo: a later
	// request for the same scenario reuses it and only simulates the
	// stages the disconnect canceled. 4 memo hits: the shared run plus
	// the captured trace served to the profile, optimize, and
	// partitioned-run closures.
	res, err := rn.Run(scenario.Scenario{Workload: "serve-test-blocking", Scale: "small", Runs: 1})
	if err != nil || res.Shared == nil || res.Partitioned == nil {
		t.Fatalf("later run of the interrupted scenario failed: %v", err)
	}
	if st := rn.Stats(); st.MemoHits != 4 || st.TraceHits != 3 || st.RunRuns != 2 {
		t.Errorf("in-flight work must be reused, not wasted: %+v", st)
	}
}

// TestRunContextCanceledError double-checks the cancellation error shape
// the serve layer relies on.
func TestRunContextCanceledError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rn := scenario.NewRunner(1)
	_, err := rn.RunContext(ctx, scenario.Scenario{Workload: "jpeg1-only", Scale: "small", Runs: 1, Partition: scenario.PartitionProfile})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
