package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/report"
	"repro/internal/scenario"
)

// postExplore submits an exploration spec and returns the status and
// NDJSON body (the sweep helper with a different path).
func postExplore(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/explore", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	return resp.StatusCode, b.String()
}

// TestExploreEndpointStreamShape checks POST /v1/explore: one
// "explore.point" envelope per visited point in visit order, then the
// "explore.front" aggregate, then a complete "stream.end".
func TestExploreEndpointStreamShape(t *testing.T) {
	srv := testServer(t)
	status, body := postExplore(t, srv.URL, `{
		"name": "srv-explore",
		"sweep": {
			"base": {"workload": "jpeg1-only", "scale": "small", "runs": 1},
			"axes": [{"field": "seed", "range": {"from": 0, "count": 4}}],
			"pareto": [{"x": "misses", "y": "makespan"}]
		}
	}`)
	if status != http.StatusOK {
		t.Fatalf("explore: %d\n%s", status, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) < 3 {
		t.Fatalf("want point lines + aggregate + stream.end, got %d:\n%s", len(lines), body)
	}
	points := lines[: len(lines)-2 : len(lines)-2]
	for _, line := range points {
		var env struct {
			SchemaVersion int                 `json:"schema_version"`
			Kind          string              `json:"kind"`
			Payload       explore.PointResult `json:"payload"`
		}
		if err := json.Unmarshal([]byte(line), &env); err != nil {
			t.Fatalf("bad point line %q: %v", line, err)
		}
		if env.Kind != explore.PointKind || env.SchemaVersion != report.SchemaVersion {
			t.Errorf("bad point envelope: kind %q version %d", env.Kind, env.SchemaVersion)
		}
		if env.Payload.Result == nil || env.Payload.Result.Error != "" {
			t.Errorf("point %d failed: %+v", env.Payload.Index, env.Payload.Result)
		}
	}
	var agg struct {
		Kind    string         `json:"kind"`
		Payload explore.Result `json:"payload"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-2]), &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Kind != explore.FrontKind {
		t.Fatalf("second-to-last line must be the front aggregate, got %q", agg.Kind)
	}
	if agg.Payload.TotalPoints != 4 || agg.Payload.Visited != len(points) || agg.Payload.Failed != 0 {
		t.Errorf("bad aggregate: %+v", agg.Payload)
	}
	if len(agg.Payload.Pareto) != 1 || len(agg.Payload.Pareto[0].Indices) == 0 {
		t.Errorf("aggregate must carry a non-empty front: %+v", agg.Payload.Pareto)
	}
	requireStreamEnd(t, lines[len(lines)-1], len(points), len(points), "complete")
}

// TestExploreEndpointRejections covers the explore 4xx paths: strict
// spec decoding, version gating, method gating.
func TestExploreEndpointRejections(t *testing.T) {
	srv := testServer(t)
	for name, c := range map[string]struct {
		body string
		want int
	}{
		"malformed":        {`{"sweep": }`, http.StatusBadRequest},
		"unknown field":    {`{"sweep": "paper-grid", "surprize": 1}`, http.StatusBadRequest},
		"bad version":      {`{"spec_version": 99, "sweep": "paper-grid"}`, http.StatusBadRequest},
		"no sweep":         {`{"name": "empty"}`, http.StatusBadRequest},
		"unknown builtin":  {`{"sweep": "no-such-grid"}`, http.StatusBadRequest},
		"descending rungs": {`{"sweep": "paper-grid", "strategy": {"rungs": [2, 1]}}`, http.StatusBadRequest},
	} {
		if status, body := postExplore(t, srv.URL, c.body); status != c.want {
			t.Errorf("%s: want %d, got %d (%s)", name, c.want, status, body)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/explore")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/explore: want 405, got %d", resp.StatusCode)
	}
}

// TestExploreEndpointBudgetClamp checks the server clamps the search
// budget to its batch limit while leaving the (lazily indexed) space
// unclamped — the exploration of a large space proceeds, bounded.
func TestExploreEndpointBudgetClamp(t *testing.T) {
	s := NewWithOptions(testConfig(), scenario.NewRunner(2), Options{MaxBatch: 3})
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	status, body := postExplore(t, srv.URL, `{
		"sweep": {
			"base": {"workload": "jpeg1-only", "scale": "small", "runs": 1, "partition": "profile"},
			"axes": [{"field": "seed", "range": {"from": 0, "count": 5000}}],
			"max_points": 5000,
			"pareto": [{"x": "misses", "y": "makespan"}]
		},
		"strategy": {"budget": 100}
	}`)
	if status != http.StatusOK {
		t.Fatalf("clamped explore: %d\n%s", status, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	var agg struct {
		Kind    string         `json:"kind"`
		Payload explore.Result `json:"payload"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-2]), &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Kind != explore.FrontKind {
		t.Fatalf("missing front aggregate, got %q", agg.Kind)
	}
	if agg.Payload.TotalPoints != 5000 || agg.Payload.Budget != 3 || agg.Payload.Visited > 3 {
		t.Errorf("budget must clamp to the batch limit over the full space: %+v", agg.Payload)
	}
	if !agg.Payload.Exhausted {
		t.Errorf("a budget-cut exploration must report exhaustion: %+v", agg.Payload)
	}
}
