package serve

import (
	"context"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Hardened http.Server timeouts: a client that never finishes its
// request header, or an idle keep-alive connection, cannot pin a
// connection slot forever. The write side is deliberately unbounded —
// NDJSON streams run as long as the simulation does and are bounded by
// admission control and the per-request simulation deadline instead.
const (
	readHeaderTimeout = 10 * time.Second
	idleTimeout       = 2 * time.Minute
)

// Serve runs the server on l until ctx is canceled, then drains
// gracefully: admission flips to 503 (StartDrain), the listener stops
// accepting, and in-flight streams get up to drainBudget to finish
// before the remaining connections are force-closed. A drainBudget <= 0
// means wait indefinitely for in-flight work. Returns nil after a clean
// (or budget-bounded) drain; any other listener error is returned as-is.
func (s *Server) Serve(ctx context.Context, l net.Listener, drainBudget time.Duration) error {
	hs := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: readHeaderTimeout,
		IdleTimeout:       idleTimeout,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(l) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	s.logf("serve: draining (%d requests in flight, budget %v)", atomic.LoadInt64(&s.inflight), drainBudget)
	s.StartDrain()
	drainCtx := context.Background()
	if drainBudget > 0 {
		var cancel context.CancelFunc
		drainCtx, cancel = context.WithTimeout(drainCtx, drainBudget)
		defer cancel()
	}
	if err := hs.Shutdown(drainCtx); err != nil {
		// Budget exhausted with streams still open: force-close them.
		s.logf("serve: drain budget exhausted, closing remaining connections: %v", err)
		hs.Close()
	} else {
		s.logf("serve: drained cleanly")
	}
	<-errCh // Serve has returned http.ErrServerClosed by now
	return nil
}
