package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/scenario"
	"repro/internal/store"
)

// diskRunner builds a runner persisting to dir exactly as the CLI's
// -store-dir flag wires it, with test-speed retry backoff.
func diskRunner(t *testing.T, dir string) *scenario.Runner {
	t.Helper()
	ds, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	rn := scenario.NewRunnerWithStore(2, store.NewResilient(ds, store.ResilientOptions{
		Backoff: time.Microsecond,
	}))
	t.Cleanup(func() { rn.Close() })
	return rn
}

// storeFaultSpecs are a batch and a sweep over distinct seeds, so every
// scenario needs fresh stages (and therefore live store traffic).
const storeFaultBatch = `{"scenarios":[
	{"workload":"jpeg1-only","scale":"small","runs":1,"seed":300,"partition":"profile"},
	{"workload":"jpeg1-only","scale":"small","runs":1,"seed":301,"partition":"profile"},
	{"workload":"jpeg1-only","scale":"small","runs":1,"seed":302,"partition":"profile"}
]}`
const storeFaultSweep = `{
	"base": {"workload":"jpeg1-only","scale":"small","runs":1,"partition":"profile"},
	"axes": [{"field":"seed","range":{"from":310,"count":3}}]
}`

// submitBatchAndSweep posts the batch and the sweep concurrently and
// returns both bodies.
func submitBatchAndSweep(t *testing.T, url string) []string {
	t.Helper()
	var mu sync.Mutex
	var bodies []string
	var wg sync.WaitGroup
	post := func(path, body string) {
		defer wg.Done()
		status, b := postBatchTo(t, url+path, body)
		if status != http.StatusOK {
			t.Errorf("%s: %d\n%s", path, status, b)
		}
		mu.Lock()
		bodies = append(bodies, b)
		mu.Unlock()
	}
	wg.Add(2)
	go post("/v1/batch", storeFaultBatch)
	go post("/v1/sweep", storeFaultSweep)
	wg.Wait()
	return bodies
}

// requireCleanStreams asserts every stream ended complete with no
// per-scenario error envelopes.
func requireCleanStreams(t *testing.T, bodies []string, when string) {
	t.Helper()
	for _, b := range bodies {
		if !strings.Contains(b, `"reason":"complete"`) {
			t.Errorf("%s: a stream did not end complete:\n%s", when, b)
		}
		if strings.Contains(b, `"kind":"error"`) || strings.Contains(b, `"error":`) {
			t.Errorf("%s: a stream carried an error envelope:\n%s", when, b)
		}
	}
}

// TestServeCompletesUnderDeadDisk is the degradation acceptance test:
// with every durable read AND write failing, concurrent /v1/batch and
// /v1/sweep streams must all end in a complete stream.end — the breaker
// degrades the store to memory-only instead of failing scenarios — and
// /healthz must surface the degradation.
func TestServeCompletesUnderDeadDisk(t *testing.T) {
	rn := diskRunner(t, t.TempDir())
	srv := httptest.NewServer(New(testConfig(), rn))
	t.Cleanup(srv.Close)

	restore := faults.Activate(faults.New(11).
		ErrorAlways(faults.SiteStoreGet).
		ErrorAlways(faults.SiteStorePut))
	bodies := submitBatchAndSweep(t, srv.URL)
	restore()

	requireCleanStreams(t, bodies, "dead disk")
	code, h := getHealth(t, srv.URL)
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if h.StoreMode != "degraded" {
		t.Errorf("healthz store_mode = %q, want degraded", h.StoreMode)
	}
	if h.Runner.StoreErrors == 0 {
		t.Errorf("healthz must count the store failures, got %+v", h.Runner)
	}
}

// TestServeCompletesUnderTornWrites is the torn-write acceptance test:
// every durable write is torn (reports success, leaves a truncated
// record), yet all streams complete; a restarted server over the same
// directory quarantines the torn records, recomputes, completes again,
// and reports the quarantine count in /healthz.
func TestServeCompletesUnderTornWrites(t *testing.T) {
	dir := t.TempDir()
	rn1 := diskRunner(t, dir)
	srv1 := httptest.NewServer(New(testConfig(), rn1))
	t.Cleanup(srv1.Close)

	// Tear every write: profile-only specs over 6 distinct seeds put at
	// most 6 records; tearing the first 32 ordinals covers all of them.
	plan := faults.New(11)
	plan.TruncateAt(faults.SiteStorePut, seq(32)...)
	restore := faults.Activate(plan)
	bodies := submitBatchAndSweep(t, srv1.URL)
	restore()
	requireCleanStreams(t, bodies, "torn writes")
	if fired := plan.Fired(faults.SiteStorePut, faults.Truncate); fired == 0 {
		t.Fatal("the plan never fired a torn write — the test proved nothing")
	}

	// Restart: same directory, fresh runner. Every stored record is
	// torn; the reads must quarantine them and recompute cleanly.
	rn2 := diskRunner(t, dir)
	srv2 := httptest.NewServer(New(testConfig(), rn2))
	t.Cleanup(srv2.Close)
	requireCleanStreams(t, submitBatchAndSweep(t, srv2.URL), "after restart over torn records")

	_, h := getHealth(t, srv2.URL)
	if h.StoreMode != "disk" {
		t.Errorf("store_mode = %q, want disk (torn records are corruption, not medium failure)", h.StoreMode)
	}
	if h.Runner.Quarantined == 0 {
		t.Errorf("healthz must report the quarantined records, got %+v", h.Runner)
	}
	if h.Runner.StageRuns == 0 {
		t.Errorf("torn records must be recomputed, got %+v", h.Runner)
	}
}

// seq returns 0..n-1, for arming a fault at every early ordinal.
func seq(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i)
	}
	return out
}

// TestServeWarmRestartFromDisk is the serve-side restart contract: a
// new server process over a populated -store-dir serves the same batch
// with zero re-executed stages, and /healthz attributes the work to
// disk hits.
func TestServeWarmRestartFromDisk(t *testing.T) {
	dir := t.TempDir()
	rn1 := diskRunner(t, dir)
	srv1 := httptest.NewServer(New(testConfig(), rn1))
	t.Cleanup(srv1.Close)
	first := submitBatchAndSweep(t, srv1.URL)
	requireCleanStreams(t, first, "cold")

	rn2 := diskRunner(t, dir)
	srv2 := httptest.NewServer(New(testConfig(), rn2))
	t.Cleanup(srv2.Close)
	second := submitBatchAndSweep(t, srv2.URL)
	requireCleanStreams(t, second, "warm restart")

	_, h := getHealth(t, srv2.URL)
	if h.Runner.StageRuns != 0 || h.Runner.ProfileRuns != 0 {
		t.Errorf("warm restart must re-execute nothing, got %+v", h.Runner)
	}
	if h.Runner.DiskHits == 0 {
		t.Errorf("warm restart must be served from disk, got %+v", h.Runner)
	}
	if h.StoreMode != "disk" {
		t.Errorf("store_mode = %q, want disk", h.StoreMode)
	}
}
