package serve

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/scenario"
)

// TestServerContainsInjectedPanics is the fault-injection harness's
// headline scenario: a seeded plan panics the first three profile-stage
// executions while nine distinct scenarios arrive over two concurrent
// batch submissions and one sweep. Exactly three per-scenario error
// envelopes come back (whatever the scheduling), every stream still
// terminates complete, the server never crashes, and — because a
// panicked stage is evicted, not memoized — resubmitting everything
// after the plan is lifted succeeds across the board.
func TestServerContainsInjectedPanics(t *testing.T) {
	cfg := testConfig()
	rn := scenario.NewRunner(2)
	srv := httptest.NewServer(New(cfg, rn))
	t.Cleanup(srv.Close)

	// Nine distinct specs: disjoint seed ranges mean no memo sharing, so
	// the profile stage executes once per scenario — nine hits on the
	// "stage.profile" site, of which the first three (in arrival order)
	// panic.
	batchA := `{"scenarios":[
		{"workload":"jpeg1-only","scale":"small","runs":1,"seed":200,"partition":"profile"},
		{"workload":"jpeg1-only","scale":"small","runs":1,"seed":201,"partition":"profile"},
		{"workload":"jpeg1-only","scale":"small","runs":1,"seed":202,"partition":"profile"}
	]}`
	batchB := strings.ReplaceAll(batchA, "20", "21")
	sweepSpec := `{
		"base": {"workload":"jpeg1-only","scale":"small","runs":1,"partition":"profile"},
		"axes": [{"field":"seed","range":{"from":220,"count":3}}]
	}`

	submitAll := func() (bodies []string) {
		var mu sync.Mutex
		var wg sync.WaitGroup
		post := func(path, body string) {
			defer wg.Done()
			status, b := postBatchTo(t, srv.URL+path, body)
			if status != http.StatusOK {
				t.Errorf("%s: %d\n%s", path, status, b)
			}
			mu.Lock()
			bodies = append(bodies, b)
			mu.Unlock()
		}
		wg.Add(3)
		go post("/v1/batch", batchA)
		go post("/v1/batch", batchB)
		go post("/v1/sweep", sweepSpec)
		wg.Wait()
		return bodies
	}

	plan := faults.New(1).PanicAt(faults.SiteStage+"profile", 0, 1, 2)
	restore := faults.Activate(plan)
	bodies := submitAll()
	restore()

	injected := 0
	for _, b := range bodies {
		for _, line := range strings.Split(strings.TrimSpace(b), "\n") {
			if strings.Contains(line, `"kind":"sweep.result"`) {
				continue // the aggregate repeats the points' errors
			}
			injected += strings.Count(line, "faults: injected panic")
			if strings.Contains(line, `"kind":"stream.end"`) && !strings.Contains(line, `"reason":"complete"`) {
				t.Errorf("a contained panic must not truncate its stream:\n%s", line)
			}
		}
	}
	if injected != 3 {
		t.Fatalf("want exactly 3 per-scenario error envelopes from 3 injected panics, got %d:\n%s",
			injected, strings.Join(bodies, "\n---\n"))
	}
	if got := plan.Fired(faults.SiteStage+"profile", faults.Panic); got != 3 {
		t.Fatalf("plan fired %d panics, want 3", got)
	}
	st := rn.Stats()
	if st.StagePanics != 3 {
		t.Errorf("runner must count the contained panics: %+v", st)
	}
	if st.StageErrors != 3 {
		t.Errorf("every panicked stage must be evicted: %+v", st)
	}

	// Round two, plan lifted: the three evicted stages re-run cleanly,
	// the six healthy ones come from the memo. No errors anywhere.
	for _, b := range submitAll() {
		if strings.Contains(b, "injected panic") || strings.Contains(b, `"kind":"error"`) ||
			!strings.Contains(b, `"reason":"complete"`) {
			t.Errorf("resubmission after the plan is lifted must be clean:\n%s", b)
		}
	}
	if st := rn.Stats(); st.StagePanics != 3 {
		t.Errorf("no new panics may occur on retry: %+v", st)
	}
}

// postBatchTo posts to a full endpoint URL and drains the body.
func postBatchTo(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestServeDrainsInflightStream is the SIGTERM-equivalent lifecycle
// test: with a request mid-stream, canceling the serve context (what
// the signal handler does) must let that stream run to a complete
// stream.end before Serve returns cleanly.
func TestServeDrainsInflightStream(t *testing.T) {
	entered, release := registerGatedWorkload(t, "gated-drain")
	cfg := testConfig()
	s := NewWithOptions(cfg, scenario.NewRunner(1), Options{})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, l, 30*time.Second) }()

	body := `{"scenarios":[{"workload":"gated-drain","scale":"small","runs":1,"partition":"profile"}]}`
	streamed := make(chan string, 1)
	go func() {
		_, b := postBatchTo(t, "http://"+l.Addr().String()+"/v1/batch", body)
		streamed <- b
	}()
	waitSignal(t, entered, "in-flight request to start simulating")

	cancel() // SIGTERM
	// Draining now: the in-flight stream must still complete once the
	// simulation is released.
	close(release)

	select {
	case b := <-streamed:
		lines := strings.Split(strings.TrimSpace(b), "\n")
		if len(lines) != 2 || !strings.Contains(lines[0], `"kind":"scenario.result"`) {
			t.Fatalf("drained stream must carry its result:\n%s", b)
		}
		requireStreamEnd(t, lines[1], 1, 1, "complete")
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight stream did not complete under drain")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve must return nil after a clean drain, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after the drain")
	}
}
