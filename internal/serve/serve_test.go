package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/scenario"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	cfg := experiments.Small()
	cfg.ProfileRuns = 1
	srv := httptest.NewServer(New(cfg, scenario.NewRunner(2)))
	t.Cleanup(srv.Close)
	return srv
}

func TestHealthAndListings(t *testing.T) {
	srv := testServer(t)

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	var env struct {
		SchemaVersion int      `json:"schema_version"`
		Kind          string   `json:"kind"`
		Payload       []string `json:"payload"`
	}
	resp, err = http.Get(srv.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.SchemaVersion != report.SchemaVersion || env.Kind != "workloads" {
		t.Errorf("bad envelope: %+v", env)
	}
	found := false
	for _, w := range env.Payload {
		if w == "mpeg2" {
			found = true
		}
	}
	if !found {
		t.Errorf("mpeg2 missing from workloads: %v", env.Payload)
	}

	resp, err = http.Get(srv.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var scen struct {
		Payload map[string]scenario.Scenario `json:"payload"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&scen); err != nil {
		t.Fatal(err)
	}
	if _, ok := scen.Payload[experiments.ScenarioApp1]; !ok {
		t.Errorf("built-in %q missing from /v1/scenarios", experiments.ScenarioApp1)
	}
}

// requireStreamEnd asserts an NDJSON line is the terminal stream.end
// envelope with the given delivery count and reason.
func requireStreamEnd(t *testing.T, line string, delivered, expected int, reason string) {
	t.Helper()
	var env struct {
		SchemaVersion int       `json:"schema_version"`
		Kind          string    `json:"kind"`
		Payload       StreamEnd `json:"payload"`
	}
	if err := json.Unmarshal([]byte(line), &env); err != nil {
		t.Fatalf("bad stream.end line %q: %v", line, err)
	}
	if env.Kind != StreamEndKind || env.SchemaVersion != report.SchemaVersion {
		t.Fatalf("terminal envelope: kind %q version %d", env.Kind, env.SchemaVersion)
	}
	if env.Payload.Delivered != delivered || env.Payload.Expected != expected || env.Payload.Reason != reason {
		t.Fatalf("stream.end: want %d/%d %q, got %+v", delivered, expected, reason, env.Payload)
	}
}

// postBatch submits a batch and returns the raw NDJSON body.
func postBatch(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.String()
}

// TestBatchStreamsResultsInOrder submits a mixed batch — a base
// overlay, an explicit spec, and an invalid spec — and checks the
// stream: one envelope per scenario, in submission order, failures
// embedded without failing the batch.
func TestBatchStreamsResultsInOrder(t *testing.T) {
	srv := testServer(t)
	status, body := postBatch(t, srv.URL, `{"scenarios":[
		{"base":"app1-curves"},
		{"workload":"jpeg1-only","scale":"small","runs":1,"partition":"profile"},
		{"workload":"no-such-workload"}
	]}`)
	if status != http.StatusOK {
		t.Fatalf("batch: %d\n%s", status, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 3 results + stream.end, got %d lines:\n%s", len(lines), body)
	}
	var results []scenario.Result
	for _, line := range lines[:3] {
		var env struct {
			SchemaVersion int             `json:"schema_version"`
			Kind          string          `json:"kind"`
			Payload       scenario.Result `json:"payload"`
		}
		if err := json.Unmarshal([]byte(line), &env); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if env.Kind != scenario.ResultKind || env.SchemaVersion != report.SchemaVersion {
			t.Errorf("bad envelope header: kind %q version %d", env.Kind, env.SchemaVersion)
		}
		results = append(results, env.Payload)
	}
	requireStreamEnd(t, lines[3], 3, 3, "complete")
	if results[0].Scenario.Workload != "2jpeg+canny" || results[0].Error != "" || len(results[0].Curves) == 0 {
		t.Errorf("base-overlay result wrong: %+v", results[0].Scenario)
	}
	if results[1].Scenario.Workload != "jpeg1-only" || results[1].Error != "" {
		t.Errorf("explicit-spec result wrong: %+v", results[1].Scenario)
	}
	if results[2].Error == "" || !strings.Contains(results[2].Error, "unknown workload") {
		t.Errorf("invalid spec must stream its error, got %q", results[2].Error)
	}
}

// TestBatchSingleSpecObject checks a bare spec object is a valid batch
// of one, like the CLI's -scenario files.
func TestBatchSingleSpecObject(t *testing.T) {
	srv := testServer(t)
	status, body := postBatch(t, srv.URL, `{"workload":"jpeg1-only","scale":"small","runs":1,"partition":"profile"}`)
	if status != http.StatusOK {
		t.Fatalf("single-spec batch: %d\n%s", status, body)
	}
	if n := strings.Count(body, `"kind":"scenario.result"`); n != 1 {
		t.Errorf("want 1 result envelope, got %d:\n%s", n, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	requireStreamEnd(t, lines[len(lines)-1], 1, 1, "complete")
}

// TestBatchRejections covers the atomic-rejection paths.
func TestBatchRejections(t *testing.T) {
	srv := testServer(t)
	for name, c := range map[string]struct {
		body string
		want int
	}{
		"malformed":    {`{"scenarios":[{]}`, http.StatusBadRequest},
		"empty":        {`{"scenarios":[]}`, http.StatusBadRequest},
		"unknown base": {`{"scenarios":[{"base":"nope"}]}`, http.StatusBadRequest},
	} {
		if status, body := postBatch(t, srv.URL, c.body); status != c.want {
			t.Errorf("%s: want %d, got %d (%s)", name, c.want, status, body)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/batch: want 405, got %d", resp.StatusCode)
	}
}

// TestConcurrentSubmissionsDeterministic hammers one server with
// concurrent identical batches: every response must be byte-identical
// (the shared runner memoizes, and results are deterministic at any
// concurrency).
func TestConcurrentSubmissionsDeterministic(t *testing.T) {
	srv := testServer(t)
	const body = `{"scenarios":[{"workload":"jpeg1-only","scale":"small","runs":1,"partition":"profile"},{"base":"app1-curves"}]}`
	const clients = 8
	bodies := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			bodies[i] = buf.String()
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("client %d saw a different stream than client 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if !strings.Contains(bodies[0], `"kind":"scenario.result"`) {
		t.Errorf("unexpected stream: %s", bodies[0])
	}
}
