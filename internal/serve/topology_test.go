package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

// TestBatchRunsDeepTopologyBuiltins checks the new hierarchy shapes are
// servable: a batch overlaying the l3-shared and clustered-l2 built-ins
// streams complete result envelopes with no errors.
func TestBatchRunsDeepTopologyBuiltins(t *testing.T) {
	srv := testServer(t)
	body := `{"scenarios":[{"base":"l3-shared","partition":"shared"},{"base":"clustered-l2","partition":"shared"}]}`
	resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	n := 0
	for sc.Scan() {
		var env struct {
			Kind    string          `json:"kind"`
			Payload scenario.Result `json:"payload"`
		}
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if env.Kind == StreamEndKind {
			requireStreamEnd(t, sc.Text(), 2, 2, "complete")
			continue
		}
		if env.Kind != scenario.ResultKind {
			t.Fatalf("line %d: kind %q", n, env.Kind)
		}
		if env.Payload.Error != "" {
			t.Fatalf("scenario %d failed: %s", n, env.Payload.Error)
		}
		if env.Payload.Shared == nil || env.Payload.Shared.TotalMisses == 0 {
			t.Fatalf("scenario %d: empty shared summary", n)
		}
		h := env.Payload.Scenario.Platform.Hierarchy
		if h == nil || len(h.Levels) != 3 || h.Levels[2].Name != "l3" {
			t.Fatalf("scenario %d: result does not echo the 3-level hierarchy: %+v", n, h)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("want 2 envelopes, got %d", n)
	}
}

// TestSweepOverLevelPath checks POST /v1/sweep accepts an axis over a
// hierarchy level path of a 3-level base.
func TestSweepOverLevelPath(t *testing.T) {
	srv := testServer(t)
	body := `{
		"name": "l3kb",
		"base": {"base": "l3-shared", "partition": "shared"},
		"axes": [{"field": "platform.hierarchy.l3.kb", "values": [512, 1024]}]
	}`
	resp, err := http.Post(srv.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var kinds []string
	var aggregate json.RawMessage
	for sc.Scan() {
		var env struct {
			Kind    string          `json:"kind"`
			Payload json.RawMessage `json:"payload"`
		}
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, env.Kind)
		if env.Kind == "sweep.result" {
			aggregate = env.Payload
		}
	}
	if len(kinds) != 4 || kinds[0] != "sweep.point" || kinds[1] != "sweep.point" ||
		kinds[2] != "sweep.result" || kinds[3] != StreamEndKind {
		t.Fatalf("stream shape: %v", kinds)
	}
	var res struct {
		Executed int `json:"executed"`
		Failed   int `json:"failed"`
		Points   []struct {
			Metrics *struct {
				L2Bytes int `json:"l2_bytes"`
			} `json:"metrics"`
		} `json:"points"`
	}
	if err := json.Unmarshal(aggregate, &res); err != nil {
		t.Fatal(err)
	}
	if res.Executed != 2 || res.Failed != 0 {
		t.Fatalf("aggregate: %+v", res)
	}
	for i, want := range []int{512 << 10, 1024 << 10} {
		if res.Points[i].Metrics == nil || res.Points[i].Metrics.L2Bytes != want {
			t.Errorf("point %d capacity metric: %+v, want %d", i, res.Points[i].Metrics, want)
		}
	}
}

// TestScenariosEndpointListsDeepShapes checks the listing surface
// carries the new built-ins.
func TestScenariosEndpointListsDeepShapes(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env struct {
		Payload map[string]scenario.Scenario `json:"payload"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{experiments.ScenarioL3Shared, experiments.ScenarioClusteredL2} {
		s, ok := env.Payload[name]
		if !ok {
			t.Fatalf("listing misses %q", name)
		}
		if s.Platform == nil || s.Platform.Hierarchy == nil || len(s.Platform.Hierarchy.Levels) != 3 {
			t.Errorf("%q does not carry its hierarchy block: %+v", name, s.Platform)
		}
	}
}
