package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

func testConfig() experiments.Config {
	cfg := experiments.Small()
	cfg.ProfileRuns = 1
	return cfg
}

// newCappedServer builds a test server with a custom per-submission
// limit (shared by /v1/batch and /v1/sweep).
func newCappedServer(t *testing.T, cfg experiments.Config, limit int) *httptest.Server {
	t.Helper()
	s := NewWithOptions(cfg, scenario.NewRunner(2), Options{MaxBatch: limit})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

// postSweep submits a sweep spec and returns the status and NDJSON body.
func postSweep(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	return resp.StatusCode, b.String()
}

// TestSweepEndpointStreamsPointsThenAggregate checks POST /v1/sweep:
// one "sweep.point" envelope per point in order, then one final
// "sweep.result" aggregate.
func TestSweepEndpointStreamsPointsThenAggregate(t *testing.T) {
	srv := testServer(t)
	status, body := postSweep(t, srv.URL, `{
		"name": "srv",
		"base": {"workload": "jpeg1-only", "scale": "small", "runs": 1, "partition": "profile"},
		"axes": [{"field": "seed", "range": {"from": 0, "count": 2}}]
	}`)
	if status != http.StatusOK {
		t.Fatalf("sweep: %d\n%s", status, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 2 point lines + aggregate + stream.end, got %d:\n%s", len(lines), body)
	}
	for i, line := range lines[:2] {
		var env struct {
			SchemaVersion int               `json:"schema_version"`
			Kind          string            `json:"kind"`
			Payload       sweep.PointResult `json:"payload"`
		}
		if err := json.Unmarshal([]byte(line), &env); err != nil {
			t.Fatalf("bad point line %q: %v", line, err)
		}
		if env.Kind != sweep.PointKind || env.SchemaVersion != report.SchemaVersion {
			t.Errorf("bad point envelope: kind %q version %d", env.Kind, env.SchemaVersion)
		}
		if env.Payload.Index != i {
			t.Errorf("point %d streamed out of order: %+v", i, env.Payload.Index)
		}
		if env.Payload.Result == nil || env.Payload.Result.Error != "" {
			t.Errorf("point %d failed: %+v", i, env.Payload.Result)
		}
	}
	var agg struct {
		Kind    string       `json:"kind"`
		Payload sweep.Result `json:"payload"`
	}
	if err := json.Unmarshal([]byte(lines[2]), &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Kind != sweep.ResultKind {
		t.Fatalf("last line must be the aggregate, got %q", agg.Kind)
	}
	if agg.Payload.Executed != 2 || agg.Payload.Failed != 0 {
		t.Errorf("bad aggregate: %+v", agg.Payload)
	}
	if agg.Payload.Stats.ProfileRuns != 2 {
		t.Errorf("aggregate must carry the runner-stat delta: %+v", agg.Payload.Stats)
	}
	requireStreamEnd(t, lines[3], 2, 2, "complete")
}

// TestSweepEndpointRejections covers the sweep 4xx paths, including the
// strict-decoding of sweep documents.
func TestSweepEndpointRejections(t *testing.T) {
	srv := testServer(t)
	for name, c := range map[string]struct {
		body string
		want int
	}{
		"malformed":           {`{"axes":[}`, http.StatusBadRequest},
		"unknown sweep field": {`{"axez":[{"field":"seed","values":[1]}]}`, http.StatusBadRequest},
		"typo in base":        {`{"base":{"workload":"mpeg2","migartion":true},"axes":[{"field":"seed","values":[1]}]}`, http.StatusBadRequest},
		"unknown axis field":  {`{"base":{"workload":"mpeg2"},"axes":[{"field":"l2_kb","values":[1]}]}`, http.StatusBadRequest},
		"no axes":             {`{"base":{"workload":"mpeg2"}}`, http.StatusBadRequest},
	} {
		if status, body := postSweep(t, srv.URL, c.body); status != c.want {
			t.Errorf("%s: want %d, got %d (%s)", name, c.want, status, body)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/sweep: want 405, got %d", resp.StatusCode)
	}
}

// TestSweepEndpointServerCap checks the server bounds an uncapped
// expansion at its batch limit and records the truncation.
func TestSweepEndpointServerCap(t *testing.T) {
	cfg := testConfig()
	srv := newCappedServer(t, cfg, 3)
	status, body := postSweep(t, srv.URL, `{
		"base": {"workload": "jpeg1-only", "scale": "small", "runs": 1, "partition": "profile"},
		"axes": [{"field": "seed", "range": {"from": 0, "count": 8}}]
	}`)
	if status != http.StatusOK {
		t.Fatalf("capped sweep: %d\n%s", status, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 5 { // 3 points + aggregate + stream.end
		t.Fatalf("want 3 point lines + aggregate + stream.end under the cap, got %d", len(lines))
	}
	var agg struct {
		Payload sweep.Result `json:"payload"`
	}
	if err := json.Unmarshal([]byte(lines[3]), &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Payload.TotalPoints != 8 || agg.Payload.Executed != 3 || agg.Payload.Truncated != 5 {
		t.Errorf("truncation must be recorded, got %+v", agg.Payload)
	}
	// The stream itself is whole: every expanded (capped) point was
	// delivered, so the terminal envelope says complete — the spec-level
	// truncation lives in the aggregate above.
	requireStreamEnd(t, lines[4], 3, 3, "complete")
}

// TestSweepExpansionErrorIsA400 checks an expansion failure that slips
// past the parse-time probes (a range whose later values are invalid)
// is still caught by the pre-flight expansion and rejected with a
// proper 400 — never a 200 with a broken stream.
func TestSweepExpansionErrorIsA400(t *testing.T) {
	srv := testServer(t)
	status, body := postSweep(t, srv.URL, `{
		"base": {"workload": "jpeg1-only", "scale": "small", "runs": 1, "partition": "profile"},
		"axes": [{"field": "seed", "range": {"from": 0, "count": 3, "step": -1}}]
	}`)
	if status != http.StatusBadRequest {
		t.Fatalf("want 400, got %d:\n%s", status, body)
	}
	if !strings.Contains(body, `\"kind\":\"error\"`) && !strings.Contains(body, `"kind": "error"`) {
		t.Errorf("want an error envelope, got:\n%s", body)
	}
}

// TestSweepWithScenarioBase checks a sweep base may name a built-in
// scenario through the scenario-level "base" overlay.
func TestSweepWithScenarioBase(t *testing.T) {
	srv := testServer(t)
	status, body := postSweep(t, srv.URL, `{
		"base": {"base": "app1-curves"},
		"axes": [{"field": "seed", "values": [1]}]
	}`)
	if status != http.StatusOK {
		t.Fatalf("builtin-base sweep: %d\n%s", status, body)
	}
	if !strings.Contains(body, `"kind":"sweep.result"`) {
		t.Errorf("missing aggregate:\n%s", body)
	}
	if !strings.Contains(body, `"workload":"2jpeg+canny"`) {
		t.Errorf("base scenario fields must resolve:\n%s", body)
	}
}
