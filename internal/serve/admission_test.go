package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/workloads"
)

// registerGatedWorkload registers a jpeg1-only wrapper whose every
// factory call signals entered and then blocks until release is closed
// — the handle admission and drain tests use to hold a request in
// flight deterministically.
func registerGatedWorkload(t *testing.T, name string) (entered chan struct{}, release chan struct{}) {
	t.Helper()
	base, ok := workloads.Lookup("jpeg1-only")
	if !ok {
		t.Fatal("jpeg1-only not registered")
	}
	entered = make(chan struct{}, 64)
	release = make(chan struct{})
	err := workloads.Register(name, func(bc workloads.BuildConfig) core.Workload {
		w := base(bc)
		inner := w.Factory
		w.Factory = func() (*core.App, error) {
			select {
			case entered <- struct{}{}:
			default:
			}
			<-release
			return inner()
		}
		return w
	})
	if err != nil {
		t.Fatal(err)
	}
	return entered, release
}

func waitSignal(t *testing.T, ch <-chan struct{}, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(30 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
	}
}

// getHealth fetches and decodes /healthz.
func getHealth(t *testing.T, url string) (int, Health) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env struct {
		Payload Health `json:"payload"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, env.Payload
}

// TestOverCapacitySheds429 checks the load-shedding contract: with one
// in-flight slot and no wait queue, a second submission is refused
// immediately with 429 and a Retry-After hint — it is never queued —
// while /healthz reports the load and the shed count.
func TestOverCapacitySheds429(t *testing.T) {
	entered, release := registerGatedWorkload(t, "gated-shed")
	cfg := testConfig()
	s := NewWithOptions(cfg, scenario.NewRunner(1), Options{MaxInflight: 1, Queue: -1})
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	body := `{"scenarios":[{"workload":"gated-shed","scale":"small","runs":1,"partition":"profile"}]}`
	first := make(chan string, 1)
	go func() {
		_, b := postBatch(t, srv.URL, body)
		first <- b
	}()
	waitSignal(t, entered, "gated workload to start")

	status, shedBody := postBatch(t, srv.URL, body)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submission: want 429, got %d\n%s", status, shedBody)
	}
	resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Errorf("shed response must carry Retry-After, got %d %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	if code, h := getHealth(t, srv.URL); code != http.StatusOK ||
		h.Inflight != 1 || h.MaxInflight != 1 || h.Shed < 2 || !h.Ready {
		t.Errorf("healthz under load: code %d, %+v", code, h)
	}

	close(release)
	b := <-first
	lines := strings.Split(strings.TrimSpace(b), "\n")
	requireStreamEnd(t, lines[len(lines)-1], 1, 1, "complete")
}

// TestQueueAdmitsThenSheds checks the bounded wait queue: a second
// submission waits for the slot (and eventually completes), a third —
// over both the slot and the queue — sheds with 429.
func TestQueueAdmitsThenSheds(t *testing.T) {
	entered, release := registerGatedWorkload(t, "gated-queue")
	cfg := testConfig()
	s := NewWithOptions(cfg, scenario.NewRunner(1), Options{MaxInflight: 1, Queue: 1})
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	body := `{"scenarios":[{"workload":"gated-queue","scale":"small","runs":1,"partition":"profile"}]}`
	done := make(chan string, 2)
	go func() { _, b := postBatch(t, srv.URL, body); done <- b }()
	waitSignal(t, entered, "first request to start")
	go func() { _, b := postBatch(t, srv.URL, body); done <- b }()

	// Wait until the second submission is actually parked in the queue.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, h := getHealth(t, srv.URL); h.Queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second submission never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if status, b := postBatch(t, srv.URL, body); status != http.StatusTooManyRequests {
		t.Fatalf("third submission must shed past the full queue: want 429, got %d\n%s", status, b)
	}

	close(release)
	for i := 0; i < 2; i++ {
		select {
		case b := <-done:
			lines := strings.Split(strings.TrimSpace(b), "\n")
			requireStreamEnd(t, lines[len(lines)-1], 1, 1, "complete")
		case <-time.After(30 * time.Second):
			t.Fatal("queued submission never completed")
		}
	}
}

// TestOversizedBodyIs413 checks both simulation endpoints reject a body
// over the 16 MiB cap with 413, not a generic 400.
func TestOversizedBodyIs413(t *testing.T) {
	srv := testServer(t)
	huge := `{"pad":"` + strings.Repeat("x", maxBodyBytes+1) + `"}`
	for _, path := range []string{"/v1/batch", "/v1/sweep"} {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: oversized body: want 413, got %d", path, resp.StatusCode)
		}
	}
}

// TestRequestTimeoutCancelsSimulation checks the per-request deadline
// reaches the simulation layer: an already-expired deadline yields an
// honest canceled stream.end, never a hang or a crash.
func TestRequestTimeoutCancelsSimulation(t *testing.T) {
	cfg := testConfig()
	s := NewWithOptions(cfg, scenario.NewRunner(1), Options{RequestTimeout: time.Nanosecond})
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	status, body := postBatch(t, srv.URL, `{"scenarios":[
		{"workload":"jpeg1-only","scale":"small","runs":1,"partition":"profile"},
		{"workload":"jpeg1-only","scale":"small","runs":1,"seed":9,"partition":"profile"}
	]}`)
	if status != http.StatusOK {
		t.Fatalf("deadline-bounded batch: %d\n%s", status, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	requireStreamEnd(t, lines[len(lines)-1], 0, 2, "canceled")
}

// TestDrainRefusesNewWork checks StartDrain flips the server not-ready:
// /healthz answers 503/draining and new submissions are refused with
// 503 + Retry-After while the process winds down.
func TestDrainRefusesNewWork(t *testing.T) {
	cfg := testConfig()
	s := New(cfg, scenario.NewRunner(1))
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	s.StartDrain()
	code, h := getHealth(t, srv.URL)
	if code != http.StatusServiceUnavailable || h.Status != "draining" || h.Ready {
		t.Errorf("draining healthz: code %d, %+v", code, h)
	}
	resp, err := http.Post(srv.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"scenarios":[{"workload":"jpeg1-only","scale":"small","runs":1,"partition":"profile"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("draining submission: want 503 with Retry-After, got %d %q",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}
