// Package bus models the on-tile interconnect and off-chip memory of the
// CAKE platform: a snooping, split-transaction bus shared by all
// processors, in front of a set of interleaved memory banks.
//
// The paper assumes "a fast, high-bandwidth snooping interconnection
// network" whose contention is low; the model here is accordingly
// first-order: a request issued at local time t is granted at
// max(t, busFree), occupies the bus for a fixed transfer time, then
// occupies its (address-interleaved) bank for the memory latency. The
// residual contention this produces is exactly the "neglected effect"
// whose impact Figure 3 of the paper quantifies.
package bus

import "fmt"

// Config describes the interconnect and memory timing.
type Config struct {
	TransferCycles uint64 // bus occupancy per line transfer
	MemLatency     uint64 // bank access time per line
	Banks          int    // number of interleaved memory banks
	LineSize       int    // bytes per line, for bank interleaving
}

// DefaultConfig returns timing in the spirit of a 2005-era embedded tile:
// a few cycles of bus occupancy and tens of cycles of DRAM latency.
func DefaultConfig() Config {
	return Config{TransferCycles: 4, MemLatency: 40, Banks: 4, LineSize: 64}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Banks <= 0 {
		return fmt.Errorf("bus: banks %d not positive", c.Banks)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("bus: line size %d not a positive power of two", c.LineSize)
	}
	return nil
}

// Stats aggregates interconnect activity.
type Stats struct {
	Requests   uint64 // demand line fills
	Posts      uint64 // posted writebacks
	WaitCycles uint64 // total cycles requests waited for the bus
	BusyCycles uint64 // total bus occupancy
}

// Bus is the shared interconnect. It is not safe for concurrent use; the
// platform engine serializes all simulated processors.
type Bus struct {
	cfg      Config
	busFree  uint64
	bankFree []uint64
	stats    Stats
	perBank  []uint64 // accesses per bank
}

// New creates a bus. It panics on an invalid configuration.
func New(cfg Config) *Bus {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Bus{
		cfg:      cfg,
		bankFree: make([]uint64, cfg.Banks),
		perBank:  make([]uint64, cfg.Banks),
	}
}

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

func (b *Bus) bankOf(addr uint64) int {
	return int((addr / uint64(b.cfg.LineSize)) % uint64(b.cfg.Banks))
}

// transfer arbitrates the bus and the bank and returns the completion time.
func (b *Bus) transfer(addr, now uint64) uint64 {
	grant := now
	if b.busFree > grant {
		grant = b.busFree
	}
	b.stats.WaitCycles += grant - now
	b.busFree = grant + b.cfg.TransferCycles
	b.stats.BusyCycles += b.cfg.TransferCycles

	bank := b.bankOf(addr)
	b.perBank[bank]++
	start := grant + b.cfg.TransferCycles
	if b.bankFree[bank] > start {
		start = b.bankFree[bank]
	}
	done := start + b.cfg.MemLatency
	b.bankFree[bank] = done
	return done
}

// Request implements cache.MemPort: a demand line fill. The returned
// latency is charged to the issuing core.
func (b *Bus) Request(addr, now uint64) uint64 {
	b.stats.Requests++
	return b.transfer(addr, now) - now
}

// Post implements cache.MemPort: a posted writeback. It consumes bus and
// bank bandwidth but does not stall the core.
func (b *Bus) Post(addr, now uint64) {
	b.stats.Posts++
	b.transfer(addr, now)
}

// Stats returns the accumulated counters.
func (b *Bus) Stats() Stats { return b.stats }

// BankAccesses returns the per-bank access counts.
func (b *Bus) BankAccesses() []uint64 {
	out := make([]uint64, len(b.perBank))
	copy(out, b.perBank)
	return out
}

// Traffic returns the total number of line transfers (fills + writebacks),
// the memory-traffic term of the paper's power model.
func (b *Bus) Traffic() uint64 { return b.stats.Requests + b.stats.Posts }

// Reset clears both timing state and statistics.
func (b *Bus) Reset() {
	b.busFree = 0
	for i := range b.bankFree {
		b.bankFree[i] = 0
		b.perBank[i] = 0
	}
	b.stats = Stats{}
}
