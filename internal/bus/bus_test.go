package bus

import (
	"testing"
	"testing/quick"
)

func cfg() Config {
	return Config{TransferCycles: 4, MemLatency: 40, Banks: 4, LineSize: 64}
}

func TestConfigValidate(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{Banks: 0, LineSize: 64}).Validate(); err == nil {
		t.Error("zero banks accepted")
	}
	if err := (Config{Banks: 2, LineSize: 48}).Validate(); err == nil {
		t.Error("bad line size accepted")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{Banks: -1, LineSize: 64})
}

func TestUncontendedRequestLatency(t *testing.T) {
	b := New(cfg())
	if lat := b.Request(0, 100); lat != 4+40 {
		t.Errorf("latency = %d, want 44", lat)
	}
}

func TestBusContentionSerializes(t *testing.T) {
	b := New(cfg())
	// Two requests to different banks at the same instant: the second
	// waits for the bus transfer of the first (4 cycles).
	lat1 := b.Request(0, 0)  // bank 0
	lat2 := b.Request(64, 0) // bank 1
	if lat1 != 44 {
		t.Errorf("first latency = %d, want 44", lat1)
	}
	if lat2 != 4+4+40 {
		t.Errorf("second latency = %d, want 48 (waits one bus slot)", lat2)
	}
	if b.Stats().WaitCycles != 4 {
		t.Errorf("wait cycles = %d, want 4", b.Stats().WaitCycles)
	}
}

func TestBankContention(t *testing.T) {
	b := New(cfg())
	// Two requests to the same bank: the second also waits for the bank.
	b.Request(0, 0)
	lat2 := b.Request(256, 0) // 256/64 = line 4 -> bank 0 again
	// grant at 4, bus done at 8, bank busy until 44, done 84 -> 84.
	if lat2 != 84 {
		t.Errorf("same-bank latency = %d, want 84", lat2)
	}
}

func TestBankInterleaving(t *testing.T) {
	b := New(cfg())
	for i := 0; i < 8; i++ {
		b.Request(uint64(i*64), uint64(i*1000))
	}
	for bank, n := range b.BankAccesses() {
		if n != 2 {
			t.Errorf("bank %d accesses = %d, want 2", bank, n)
		}
	}
}

func TestPostConsumesBandwidthNoStall(t *testing.T) {
	b := New(cfg())
	b.Post(0, 0)
	if b.Stats().Posts != 1 {
		t.Error("post not counted")
	}
	// A request right after the post waits for the bus.
	if lat := b.Request(64, 0); lat != 4+4+40 {
		t.Errorf("request after post latency = %d, want 48", lat)
	}
	if b.Traffic() != 2 {
		t.Errorf("traffic = %d, want 2", b.Traffic())
	}
}

func TestIdleBusNoWait(t *testing.T) {
	b := New(cfg())
	b.Request(0, 0)
	// Long after the bus is free again: no wait.
	if lat := b.Request(64, 10_000); lat != 44 {
		t.Errorf("idle-bus latency = %d, want 44", lat)
	}
	if b.Stats().WaitCycles != 0 {
		t.Errorf("wait cycles = %d, want 0", b.Stats().WaitCycles)
	}
}

func TestReset(t *testing.T) {
	b := New(cfg())
	b.Request(0, 0)
	b.Post(64, 0)
	b.Reset()
	s := b.Stats()
	if s.Requests != 0 || s.Posts != 0 || s.WaitCycles != 0 || s.BusyCycles != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
	if lat := b.Request(0, 0); lat != 44 {
		t.Errorf("latency after reset = %d, want 44", lat)
	}
	for _, n := range b.BankAccesses() {
		if n > 1 {
			t.Error("bank counters not reset")
		}
	}
}

// Property: latency is always at least the uncontended minimum, and the
// total wait never decreases.
func TestLatencyLowerBoundProperty(t *testing.T) {
	f := func(addrs []uint32, gaps []uint8) bool {
		b := New(cfg())
		now := uint64(0)
		var lastWait uint64
		for i, a := range addrs {
			if i < len(gaps) {
				now += uint64(gaps[i])
			}
			lat := b.Request(uint64(a), now)
			if lat < 44 {
				return false
			}
			w := b.Stats().WaitCycles
			if w < lastWait {
				return false
			}
			lastWait = w
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: with requests spaced farther apart than the total service
// time, there is never any waiting.
func TestNoContentionWhenSpacedProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		b := New(cfg())
		now := uint64(0)
		for _, a := range addrs {
			b.Request(uint64(a), now)
			now += 1000
		}
		return b.Stats().WaitCycles == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
