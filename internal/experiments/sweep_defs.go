package experiments

import (
	"encoding/json"
	"sort"
	"strconv"

	"repro/internal/sweep"
)

// SweepPaperGrid is the built-in sweep reproducing the paper's
// candidate-size exploration as one command: the full 2×JPEG + Canny
// study swept over the L2 capacity ladder around the section 5 design
// point, crossed with the execution-side knobs (migration, solver,
// execution engine). The execution-side axes share their profile stages
// through the runner's memo — the 32-point grid simulates each distinct
// (geometry, engine) profile exactly once.
const SweepPaperGrid = "paper-grid"

// rawInts, rawBools, rawStrings build literal axis values.
func rawInts(vs ...int) []json.RawMessage {
	out := make([]json.RawMessage, len(vs))
	for i, v := range vs {
		out[i] = json.RawMessage(strconv.Itoa(v))
	}
	return out
}

func rawBools(vs ...bool) []json.RawMessage {
	out := make([]json.RawMessage, len(vs))
	for i, v := range vs {
		out[i] = json.RawMessage(strconv.FormatBool(v))
	}
	return out
}

func rawStrings(vs ...string) []json.RawMessage {
	out := make([]json.RawMessage, len(vs))
	for i, v := range vs {
		b, _ := json.Marshal(v)
		out[i] = b
	}
	return out
}

// BuiltinSweeps returns the named built-in sweep definitions for the
// given harness configuration.
func BuiltinSweeps(cfg Config) map[string]sweep.Sweep {
	base := baseSpec(cfg)
	base.Workload = "2jpeg+canny"
	return map[string]sweep.Sweep{
		SweepPaperGrid: {
			Name: SweepPaperGrid,
			Base: base,
			Axes: []sweep.Axis{
				{Name: "l2_kb", Field: "platform.l2.kb", Values: rawInts(128, 256, 512, 1024)},
				{Name: "migration", Field: "migration", Values: rawBools(false, true)},
				{Name: "solver", Field: "solver", Values: rawStrings("mckp", "ilp")},
				{Name: "exec", Field: "exec_engine", Values: rawStrings("merged", "word")},
			},
			Pareto: []sweep.ParetoPair{
				{X: "l2_bytes", Y: "makespan"},
				{X: "l2_bytes", Y: "misses"},
				{X: "energy", Y: "makespan"},
			},
		},
	}
}

// BuiltinSweep resolves one built-in sweep by name.
func BuiltinSweep(cfg Config, name string) (sweep.Sweep, bool) {
	s, ok := BuiltinSweeps(cfg)[name]
	return s, ok
}

// BuiltinSweepNames lists the built-in sweep names, sorted.
func BuiltinSweepNames() []string {
	defs := BuiltinSweeps(Default())
	names := make([]string, 0, len(defs))
	for n := range defs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
