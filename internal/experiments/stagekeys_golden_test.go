package experiments

import (
	"encoding/json"
	"os"
	"testing"
)

// stagekeys_golden_test.go pins the content addresses of every built-in
// scenario: the spec's own content key and the full store keys
// ("<kind>|<hash>") of each pipeline stage its partition policy runs.
// These hashes are *durable identifiers* — the on-disk result store
// addresses persisted records by them across process restarts — so any
// drift in scenario.Normalize, hashJSON, or the per-stage key
// derivations silently orphans every existing -store-dir (warm results
// all miss and recompute). This test turns that silent cache wipe into
// a loud failure.
//
// Regenerate (only legitimate when a key-schema change is intended and
// explained in the commit — it invalidates every existing store):
//
//	REGEN_STAGE_KEYS=1 go test ./internal/experiments -run TestStageKeysGolden
const stageKeysGoldenPath = "testdata/stage_keys_golden.json"

// stageKeysDoc is one built-in's pinned addresses.
type stageKeysDoc struct {
	Key    string            `json:"key"`
	Stages map[string]string `json:"stages"`
}

func stageKeysNow(t *testing.T) map[string]stageKeysDoc {
	t.Helper()
	out := map[string]stageKeysDoc{}
	for name, s := range BuiltinScenarios(Default()) {
		key, err := s.Key()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		stages, err := s.StageKeys()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = stageKeysDoc{Key: key, Stages: stages}
	}
	return out
}

func TestStageKeysGolden(t *testing.T) {
	got := stageKeysNow(t)
	if os.Getenv("REGEN_STAGE_KEYS") != "" {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(stageKeysGoldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d scenarios)", stageKeysGoldenPath, len(got))
		return
	}
	raw, err := os.ReadFile(stageKeysGoldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with REGEN_STAGE_KEYS=1 to create): %v", err)
	}
	var want map[string]stageKeysDoc
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Errorf("built-in count drifted: %d scenarios, golden has %d", len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("built-in %q disappeared", name)
			continue
		}
		if g.Key != w.Key {
			t.Errorf("%s: content key drifted\n got %s\nwant %s\n(this orphans every persisted result for the scenario)", name, g.Key, w.Key)
		}
		for stage, wantKey := range w.Stages {
			if gotKey := g.Stages[stage]; gotKey != wantKey {
				t.Errorf("%s/%s: stage key drifted\n got %s\nwant %s", name, stage, gotKey, wantKey)
			}
		}
		if len(g.Stages) != len(w.Stages) {
			t.Errorf("%s: stage set drifted: got %v, golden %v", name, g.Stages, w.Stages)
		}
	}
}
