package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/workloads"
)

// legacyArtifacts runs the pre-scenario experiment pipeline once per
// legacy function — exactly the calls the old cmd/compmem made — and
// caches the pieces each command rendered from. Every simulation is
// deterministic (see determinism tests), so sharing a study across the
// commands that re-ran it is output-identical to the old per-command
// runs.
type legacyArtifacts struct {
	cfg    Config
	s1, s2 *Study
}

func newLegacyArtifacts(t *testing.T, cfg Config) *legacyArtifacts {
	t.Helper()
	s1, err := App1(cfg)
	if err != nil {
		t.Fatalf("legacy App1: %v", err)
	}
	s2, err := App2(cfg)
	if err != nil {
		t.Fatalf("legacy App2: %v", err)
	}
	return &legacyArtifacts{cfg: cfg, s1: s1, s2: s2}
}

// legacyText renders one command the way the old cmd/compmem run()
// printed it. The fmt verbs, titles and spacing are copied verbatim
// from the pre-scenario main.go; this is the frozen reference the
// scenario layer must reproduce bit-identically.
func (l *legacyArtifacts) legacyText(t *testing.T, cmd string) string {
	t.Helper()
	cfg := l.cfg
	var b strings.Builder
	println_ := func(v fmt.Stringer) {
		b.WriteString(v.String())
		b.WriteByte('\n')
	}
	switch cmd {
	case "table1":
		println_(AllocationTable(l.s1, "Table 1: allocated L2 units, 2 jpegs & canny"))
	case "table2":
		println_(AllocationTable(l.s2, "Table 2: allocated L2 units, mpeg2"))
	case "fig2":
		for _, s := range []*Study{l.s1, l.s2} {
			println_(Figure2(s))
			fmt.Fprintf(&b, "total: shared %d vs partitioned %d (%.2fx)\n\n",
				s.Shared.TotalMisses(), s.Part.TotalMisses(), s.MissRatio())
		}
	case "fig3":
		for _, s := range []*Study{l.s1, l.s2} {
			chart, rep := Figure3(s)
			println_(chart)
			fmt.Fprintf(&b, "compositional at the paper's 2%% threshold: %v (max %.3f%%, mean %.3f%%)\n\n",
				rep.Compositional(0.02), rep.MaxRelDiff*100, rep.MeanRelDiff*100)
		}
	case "curves":
		for _, app1 := range []bool{true, false} {
			var w core.Workload
			name := "2jpeg+canny"
			if app1 {
				w = workloads.JPEGCanny(cfg.Scale, nil)
			} else {
				w = workloads.MPEG2(cfg.Scale, nil)
				name = "mpeg2"
			}
			curves, err := core.Profile(w, core.OptimizeConfig{
				Platform: cfg.Platform, Runs: cfg.ProfileRuns, Solver: cfg.Solver,
				Engine: cfg.Engine, Workers: cfg.Workers,
			})
			if err != nil {
				t.Fatalf("legacy curves: %v", err)
			}
			fmt.Fprintf(&b, "miss curves m_i(z) for %s (misses at 1..128 units):\n", name)
			for _, c := range curves {
				if c.Accesses == 0 {
					continue
				}
				fmt.Fprintf(&b, "  %-14s acc=%8.0f  ", c.Entity, c.Accesses)
				for k, m := range c.Misses {
					fmt.Fprintf(&b, "%d:%.0f ", c.Sizes[k], m)
				}
				b.WriteByte('\n')
			}
		}
	case "headline":
		tab, _, err := Headline(cfg)
		if err != nil {
			t.Fatalf("legacy Headline: %v", err)
		}
		println_(tab)
	case "compose":
		_, tab, err := Composition(cfg)
		if err != nil {
			t.Fatalf("legacy Composition: %v", err)
		}
		println_(tab)
	case "granularity":
		tab, err := Granularity(cfg)
		if err != nil {
			t.Fatalf("legacy Granularity: %v", err)
		}
		println_(tab)
	case "split":
		tab, err := SplitSections(cfg)
		if err != nil {
			t.Fatalf("legacy SplitSections: %v", err)
		}
		println_(tab)
	case "migration":
		tab, err := Migration(cfg)
		if err != nil {
			t.Fatalf("legacy Migration: %v", err)
		}
		println_(tab)
	case "assign":
		println_(Assignment(l.s1, cfg.Platform.NumCPUs))
		println_(Assignment(l.s2, cfg.Platform.NumCPUs))
	default:
		t.Fatalf("legacy renderer: unknown command %q", cmd)
	}
	return b.String()
}

// TestScenarioLayerMatchesLegacyCommands is the differential proof of
// the API redesign: every legacy CLI command, executed through the
// declarative scenario layer, prints bit-identical output to the
// pre-scenario function-per-figure pipeline.
func TestScenarioLayerMatchesLegacyCommands(t *testing.T) {
	cfg := Small()
	cfg.ProfileRuns = 1
	leg := newLegacyArtifacts(t, cfg)
	rn := scenario.NewRunner(cfg.Workers)

	commands := []string{"table1", "table2", "fig2", "fig3", "headline", "compose", "granularity", "split", "migration", "assign", "curves"}
	legacy := make(map[string]string, len(commands))
	for _, cmd := range commands {
		legacy[cmd] = leg.legacyText(t, cmd)
		out, err := RunCommand(cmd, cfg, rn)
		if err != nil {
			t.Fatalf("RunCommand(%s): %v", cmd, err)
		}
		if out.Text != legacy[cmd] {
			t.Errorf("command %s: scenario output differs from legacy\n--- legacy ---\n%s\n--- scenario ---\n%s", cmd, legacy[cmd], out.Text)
		}
		if len(out.Documents) == 0 {
			t.Errorf("command %s: no machine-readable documents", cmd)
		}
	}

	// `all` is the legacy concatenation in the legacy order.
	var want strings.Builder
	for _, c := range allOrder {
		want.WriteString(legacy[c])
	}
	out, err := RunCommand("all", cfg, rn)
	if err != nil {
		t.Fatalf("RunCommand(all): %v", err)
	}
	if out.Text != want.String() {
		t.Errorf("command all: scenario output differs from legacy concatenation")
	}

	// The shared runner must have deduplicated the studies: far fewer
	// stage executions than stage requests.
	st := rn.Stats()
	if st.MemoHits == 0 {
		t.Errorf("runner memoization never hit (stats %+v)", st)
	}
	t.Logf("runner stats: %+v", st)
}

// TestScenarioRoundTripIdenticalResults is the serialization half of
// the acceptance criteria: a Scenario survives spec → JSON → spec with
// identical simulation results.
func TestScenarioRoundTripIdenticalResults(t *testing.T) {
	cfg := Small()
	cfg.ProfileRuns = 1
	spec, ok := BuiltinScenario(cfg, ScenarioApp1)
	if !ok {
		t.Fatal("missing builtin app1")
	}

	rn := scenario.NewRunner(1)
	direct, err := rn.Run(spec)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}

	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	parsed, err := scenario.Resolve(raw, nil)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	// A fresh runner so nothing is served from the first run's memo.
	rn2 := scenario.NewRunner(1)
	reran, err := rn2.Run(parsed)
	if err != nil {
		t.Fatalf("round-tripped run: %v", err)
	}

	if direct.Key != reran.Key {
		t.Fatalf("content keys differ: %s vs %s", direct.Key, reran.Key)
	}
	a, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(reran)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("round-tripped scenario produced different results\n--- direct ---\n%s\n--- round-tripped ---\n%s", a, b)
	}
}

// TestProfileEngineScenarioEquivalence drives the two profiling engines
// through the scenario layer and expects identical allocations — the
// same guarantee the engine differential tests give the legacy path.
func TestProfileEngineScenarioEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short: skip second engine study")
	}
	cfg := Small()
	cfg.ProfileRuns = 1
	rn := scenario.NewRunner(cfg.Workers)
	spec, _ := BuiltinScenario(cfg, ScenarioApp1)

	spec.ProfileEngine = "stackdist"
	fast, err := rn.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.ProfileEngine = "bank"
	slow, err := rn.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Key == slow.Key {
		t.Fatal("engine choice must be part of the content address")
	}
	af, _ := json.Marshal(fast.Optimize)
	as, _ := json.Marshal(slow.Optimize)
	if string(af) != string(as) {
		t.Errorf("profiling engines disagree through the scenario layer:\n%s\nvs\n%s", af, as)
	}
}
