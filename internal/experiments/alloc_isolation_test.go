package experiments

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/workloads"
)

// smallStudyAllocBudget bounds the heap allocations of one full
// Small-scale study (shared run + profile/optimize + partitioned run).
// The arena-backed platform keeps per-simulation state off the heap, so
// a study's allocation count is dominated by workload construction and
// the profiler, and must stay flat: regressions here mean someone
// reintroduced per-access or per-resume allocation into the hot path.
// Measured ~14k objects per study after the arena refactor; the budget
// leaves ~5x headroom for benign drift before the alarm fires.
const smallStudyAllocBudget = 75_000

// TestSmallStudyBoundedAllocs pins the per-run allocation count of a
// complete Small-scale study. The first study warms the arena pool and
// the interned topology descriptor; steady-state studies must then fit
// the budget.
func TestSmallStudyBoundedAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("full study in -short mode")
	}
	cfg := Small()
	cfg.Workers = 1
	w := workloads.JPEGCanny(workloads.Small, nil)
	if _, err := RunStudy(w, cfg); err != nil { // warmup
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(2, func() {
		if _, err := RunStudy(w, cfg); err != nil {
			t.Error(err)
		}
	})
	if allocs > smallStudyAllocBudget {
		t.Fatalf("full Small study allocates %.0f objects per run, budget %d",
			allocs, smallStudyAllocBudget)
	}
	t.Logf("full Small study: %.0f objects per run (budget %d)", allocs, smallStudyAllocBudget)
}

// miniGrid is a trimmed 4-point sweep over the L2 ladder and both
// execution engines — enough to keep a runner busy while standalone
// simulations run beside it.
func miniGrid(cfg Config) sweep.Sweep {
	base := baseSpec(cfg)
	base.Workload = "mpeg2"
	return sweep.Sweep{
		Name: "mini-grid",
		Base: base,
		Axes: []sweep.Axis{
			{Name: "l2_kb", Field: "platform.l2.kb", Values: rawInts(256, 512)},
			{Name: "exec", Field: "exec_engine", Values: rawStrings("merged", "word")},
		},
	}
}

// TestConcurrentSimulationsBitIdentical is the isolation proof for the
// shared immutable artifacts: two independent simulations that resolve
// the same interned topology descriptor, run concurrently with each
// other AND with a sweep executing on its own runner, must produce
// results bit-identical to the same work run sequentially. Under -race
// this doubles as the data-race check for the descriptor/state split
// and the arena pool.
func TestConcurrentSimulationsBitIdentical(t *testing.T) {
	cfg := Small()
	rc := core.RunConfig{Platform: cfg.Platform}
	wA := workloads.JPEGCanny(workloads.Small, nil)
	wB := workloads.MPEG2(workloads.Small, nil)

	// Both simulations must share one immutable descriptor: interning
	// is keyed by the canonical topology encoding, so equal configs
	// resolve to the same pointer.
	d1, err := cfg.Platform.Topology.Describe(cfg.Platform.NumCPUs)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := cfg.Platform.Topology.Describe(cfg.Platform.NumCPUs)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("equal topologies interned to distinct descriptors: %p vs %p", d1, d2)
	}

	// Sequential reference.
	seqA, err := core.Run(wA, rc)
	if err != nil {
		t.Fatal(err)
	}
	seqB, err := core.Run(wB, rc)
	if err != nil {
		t.Fatal(err)
	}
	seqSweep, err := sweep.Execute(context.Background(), scenario.NewRunner(1), miniGrid(cfg), nil)
	if err != nil {
		t.Fatal(err)
	}

	// The same three workloads, interleaved.
	var (
		conA, conB       *core.Result
		conSweep         *sweep.Result
		errA, errB, errS error
		wg               sync.WaitGroup
	)
	wg.Add(3)
	go func() { defer wg.Done(); conA, errA = core.Run(wA, rc) }()
	go func() { defer wg.Done(); conB, errB = core.Run(wB, rc) }()
	go func() {
		defer wg.Done()
		conSweep, errS = sweep.Execute(context.Background(), scenario.NewRunner(1), miniGrid(cfg), nil)
	}()
	wg.Wait()
	for _, err := range []error{errA, errB, errS} {
		if err != nil {
			t.Fatal(err)
		}
	}

	if !reflect.DeepEqual(seqA, conA) {
		t.Errorf("concurrent %s run differs from sequential", wA.Name)
	}
	if !reflect.DeepEqual(seqB, conB) {
		t.Errorf("concurrent %s run differs from sequential", wB.Name)
	}
	if seqSweep.Executed != conSweep.Executed || seqSweep.Failed != conSweep.Failed {
		t.Errorf("sweep outcome differs: seq %d/%d, concurrent %d/%d",
			seqSweep.Executed, seqSweep.Failed, conSweep.Executed, conSweep.Failed)
	}
	if !reflect.DeepEqual(seqSweep.Points, conSweep.Points) {
		t.Errorf("sweep point summaries differ between sequential and interleaved execution")
	}
}
