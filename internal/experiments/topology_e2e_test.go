package experiments

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// studyPhysics strips a result to its engine observables (the spec echo
// differs by construction across engines).
func studyPhysics(t *testing.T, r *scenario.Result) string {
	t.Helper()
	b, err := json.Marshal(struct {
		Shared      *scenario.RunSummary      `json:"shared"`
		Partitioned *scenario.RunSummary      `json:"partitioned"`
		Optimize    *scenario.OptimizeSummary `json:"optimize"`
		Compose     *scenario.ComposeSummary  `json:"compose"`
	}{r.Shared, r.Partitioned, r.Optimize, r.Compose})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDeepTopologiesEndToEnd runs the new built-in 3-level scenarios —
// l3-shared (private L1+L2 under a shared partitioned L3) and
// clustered-l2 (cluster-of-2 L2s) — through the full scenario pipeline,
// and proves the line-merged engine bit-identical to the word-exact
// oracle on both trees: the FastSpec/ChargeLine/CommitRepeats contract
// holds against any leaf, not just the classic private L1.
func TestDeepTopologiesEndToEnd(t *testing.T) {
	for _, name := range []string{ScenarioL3Shared, ScenarioClusteredL2} {
		t.Run(name, func(t *testing.T) {
			var physics [2]string
			for i, eng := range []platform.Engine{platform.EngineLineMerged, platform.EngineWordExact} {
				cfg := Small()
				cfg.Platform.Engine = eng
				spec, ok := BuiltinScenario(cfg, name)
				if !ok {
					t.Fatalf("no built-in %q", name)
				}
				rn := scenario.NewRunner(0)
				res, err := rn.Run(spec)
				if err != nil {
					t.Fatalf("%s (%v): %v", name, eng, err)
				}
				if res.Shared == nil || res.Partitioned == nil || res.Optimize == nil || res.Compose == nil {
					t.Fatalf("%s (%v): incomplete study: %+v", name, eng, res)
				}
				if res.Shared.Makespan == 0 || res.Shared.TotalMisses == 0 {
					t.Fatalf("%s (%v): empty run summary %+v", name, eng, res.Shared)
				}
				if res.Partitioned.TotalMisses >= res.Shared.TotalMisses {
					t.Errorf("%s (%v): partitioning did not reduce misses (%d -> %d)",
						name, eng, res.Shared.TotalMisses, res.Partitioned.TotalMisses)
				}
				physics[i] = studyPhysics(t, res)
			}
			if physics[0] != physics[1] {
				t.Errorf("%s: merged and word engines diverge on the 3-level tree:\n%s\nvs\n%s",
					name, physics[0], physics[1])
			}
		})
	}
}

// TestL3LevelPathSweepAxis drives a sweep axis over a level path of the
// 3-level tree (platform.hierarchy.l3.kb), the end-to-end check of the
// dynamic axis registry: expansion labels match the simulated geometry
// and the L2Bytes metric tracks the partition level's capacity.
func TestL3LevelPathSweepAxis(t *testing.T) {
	cfg := Small()
	lookup := func(name string) (scenario.Scenario, bool) { return BuiltinScenario(cfg, name) }
	sw, err := sweep.Parse([]byte(`{
		"name": "l3kb",
		"base": {"base": "l3-shared", "partition": "shared"},
		"axes": [{"field": "platform.hierarchy.l3.kb", "values": [512, 1024]}]
	}`), lookup)
	if err != nil {
		t.Fatal(err)
	}
	points, total, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 {
		t.Fatalf("want 2 points, got %d", total)
	}
	for i, wantSets := range []int{2048, 4096} {
		pc, err := points[i].Scenario.Platform.Config()
		if err != nil {
			t.Fatal(err)
		}
		j := pc.Topology.Index("l3")
		if j < 0 || pc.Topology.Levels[j].Sets != wantSets {
			t.Errorf("point %d: l3 sets = %+v, want %d", i, pc.Topology.Levels, wantSets)
		}
		// The leaf levels are untouched by the axis.
		if pc.Topology.Levels[0].Sets != 64 || pc.Topology.Levels[1].Sets != 512 {
			t.Errorf("point %d: leaf levels disturbed: %+v", i, pc.Topology.Levels)
		}
	}
	res, err := sweep.Execute(context.Background(), scenario.NewRunner(0), sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Executed != 2 {
		t.Fatalf("sweep failed: %+v", res.Points)
	}
	for i, wantBytes := range []int{512 << 10, 1024 << 10} {
		if res.Points[i].Metrics == nil || res.Points[i].Metrics.L2Bytes != wantBytes {
			t.Errorf("point %d: L2Bytes metric = %+v, want %d", i, res.Points[i].Metrics, wantBytes)
		}
	}
	// An axis naming a level the base topology lacks fails loudly.
	if _, err := sweep.Parse([]byte(`{
		"base": {"workload": "mpeg2"},
		"axes": [{"field": "platform.hierarchy.l9.kb", "values": [512]}]
	}`), lookup); err == nil || !strings.Contains(err.Error(), `no level "l9"`) {
		t.Errorf("unknown level axis must fail naming the level, got %v", err)
	}
}

// TestProfileLevelSelectsNamedSharedLevel checks the profiler tap moves
// to any named shared level: profiling the l3-shared tree at "l3" (its
// partition level, explicitly named) matches the default tap, and the
// memo keys distinguish the level.
func TestProfileLevelSelectsNamedSharedLevel(t *testing.T) {
	cfg := Small()
	spec, _ := BuiltinScenario(cfg, ScenarioL3Shared)
	spec.Partition = scenario.PartitionProfile

	named := spec
	named.ProfileLevel = "l3"

	rn := scenario.NewRunner(0)
	def, err := rn.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	nm, err := rn.Run(named)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(def.Curves)
	b, _ := json.Marshal(nm.Curves)
	if string(a) != string(b) {
		t.Error("explicitly naming the partition level must profile identical curves")
	}
	if len(def.Curves) == 0 {
		t.Fatal("no curves profiled")
	}
}
