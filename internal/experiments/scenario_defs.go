package experiments

import (
	"sort"

	"repro/internal/rtos"
	"repro/internal/scenario"
)

// Built-in scenario names: every legacy command of the CLI resolves to
// one or more of these, and user specs can overlay any of them through
// the "base" field.
const (
	ScenarioApp1          = "app1"            // full study of 2×JPEG + Canny (Tables 1, Figures 2-3)
	ScenarioApp2          = "app2"            // full study of MPEG-2 (Table 2)
	ScenarioMpeg2Big      = "mpeg2-1mb"       // MPEG-2 on a 1 MB shared L2 (headline variant)
	ScenarioApp1Curves    = "app1-curves"     // miss-curve profile of application 1
	ScenarioApp2Curves    = "app2-curves"     // miss-curve profile of application 2
	ScenarioJPEG1Solo     = "jpeg1-solo"      // X1: solo decoder under the full app's allocation
	ScenarioApp1Split     = "app1-split"      // X4: split instruction/data partitions
	ScenarioApp1Migration = "app1-migration"  // X5: study under task migration
	ScenarioApp1Optimize  = "app1-optimize"   // X2: fine-grained optimize leg (no measured runs)
	ScenarioApp1Column    = "app1-column"     // X2: column-caching optimize leg (one whole way each)
)

// baseSpec maps the harness configuration onto the scenario fields every
// built-in shares.
func baseSpec(cfg Config) scenario.Scenario {
	ps := scenario.PlatformSpecOf(cfg.Platform)
	return scenario.Scenario{
		Scale:         cfg.Scale.String(),
		Platform:      &ps,
		Runs:          cfg.ProfileRuns,
		Solver:        cfg.Solver.String(),
		ProfileEngine: cfg.Engine.String(),
		ExecEngine:    cfg.Platform.Engine.String(),
	}
}

// BuiltinScenarios returns the canonical named scenario definitions for
// the given harness configuration: the paper's tables and figures plus
// the X1–X5 extension studies, as data.
func BuiltinScenarios(cfg Config) map[string]scenario.Scenario {
	defs := make(map[string]scenario.Scenario)
	add := func(name string, mutate func(*scenario.Scenario)) {
		s := baseSpec(cfg)
		s.Name = name
		if mutate != nil {
			mutate(&s)
		}
		defs[name] = s
	}

	add(ScenarioApp1, func(s *scenario.Scenario) {
		s.Workload = "2jpeg+canny"
	})
	add(ScenarioApp2, func(s *scenario.Scenario) {
		s.Workload = "mpeg2"
	})
	add(ScenarioMpeg2Big, func(s *scenario.Scenario) {
		s.Workload = "mpeg2"
		s.Partition = scenario.PartitionShared
		big := cfg.Platform
		big.L2.Sets *= 2
		ps := scenario.PlatformSpecOf(big)
		s.Platform = &ps
	})
	add(ScenarioApp1Curves, func(s *scenario.Scenario) {
		s.Workload = "2jpeg+canny"
		s.Partition = scenario.PartitionProfile
	})
	add(ScenarioApp2Curves, func(s *scenario.Scenario) {
		s.Workload = "mpeg2"
		s.Partition = scenario.PartitionProfile
	})
	add(ScenarioJPEG1Solo, func(s *scenario.Scenario) {
		s.Workload = "jpeg1-only"
		s.AllocWorkload = "2jpeg+canny"
	})
	add(ScenarioApp1Split, func(s *scenario.Scenario) {
		s.Workload = "2jpeg+canny(split i/d)"
	})
	add(ScenarioApp1Migration, func(s *scenario.Scenario) {
		s.Workload = "2jpeg+canny"
		s.Migration = true
	})
	add(ScenarioApp1Optimize, func(s *scenario.Scenario) {
		s.Workload = "2jpeg+canny"
		s.Partition = scenario.PartitionOptimize
	})
	add(ScenarioApp1Column, func(s *scenario.Scenario) {
		s.Workload = "2jpeg+canny"
		s.Partition = scenario.PartitionOptimize
		// One candidate size: a whole cache way (column caching, the
		// related-work granularity of experiment X2).
		totalUnits := cfg.Platform.L2.Sets / rtos.AllocUnit
		s.Sizes = []int{totalUnits / cfg.Platform.L2.Ways}
	})
	return defs
}

// BuiltinScenario resolves one built-in by name.
func BuiltinScenario(cfg Config, name string) (scenario.Scenario, bool) {
	s, ok := BuiltinScenarios(cfg)[name]
	return s, ok
}

// BuiltinNames lists the built-in scenario names, sorted.
func BuiltinNames() []string {
	defs := BuiltinScenarios(Default())
	names := make([]string, 0, len(defs))
	for n := range defs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
