package experiments

import (
	"sort"

	"repro/internal/cache"
	"repro/internal/rtos"
	"repro/internal/scenario"
)

// Built-in scenario names: every legacy command of the CLI resolves to
// one or more of these, and user specs can overlay any of them through
// the "base" field.
const (
	ScenarioApp1          = "app1"           // full study of 2×JPEG + Canny (Tables 1, Figures 2-3)
	ScenarioApp2          = "app2"           // full study of MPEG-2 (Table 2)
	ScenarioMpeg2Big      = "mpeg2-1mb"      // MPEG-2 on a 1 MB shared L2 (headline variant)
	ScenarioApp1Curves    = "app1-curves"    // miss-curve profile of application 1
	ScenarioApp2Curves    = "app2-curves"    // miss-curve profile of application 2
	ScenarioJPEG1Solo     = "jpeg1-solo"     // X1: solo decoder under the full app's allocation
	ScenarioApp1Split     = "app1-split"     // X4: split instruction/data partitions
	ScenarioApp1Migration = "app1-migration" // X5: study under task migration
	ScenarioApp1Optimize  = "app1-optimize"  // X2: fine-grained optimize leg (no measured runs)
	ScenarioApp1Column    = "app1-column"    // X2: column-caching optimize leg (one whole way each)
	ScenarioL3Shared      = "l3-shared"      // 3-level tree: private L1+L2 under a shared partitioned L3
	ScenarioClusteredL2   = "clustered-l2"   // 3-level tree: cluster-of-2 L2s under a shared partitioned L3
)

// baseSpec maps the harness configuration onto the scenario fields every
// built-in shares.
func baseSpec(cfg Config) scenario.Scenario {
	ps := scenario.PlatformSpecOf(cfg.Platform)
	return scenario.Scenario{
		Scale:         cfg.Scale.String(),
		Platform:      &ps,
		Runs:          cfg.ProfileRuns,
		Solver:        cfg.Solver.String(),
		ProfileEngine: cfg.Engine.String(),
		ExecEngine:    cfg.Platform.Engine.String(),
	}
}

// BuiltinScenarios returns the canonical named scenario definitions for
// the given harness configuration: the paper's tables and figures plus
// the X1–X5 extension studies, as data.
func BuiltinScenarios(cfg Config) map[string]scenario.Scenario {
	defs := make(map[string]scenario.Scenario)
	add := func(name string, mutate func(*scenario.Scenario)) {
		s := baseSpec(cfg)
		s.Name = name
		if mutate != nil {
			mutate(&s)
		}
		defs[name] = s
	}

	add(ScenarioApp1, func(s *scenario.Scenario) {
		s.Workload = "2jpeg+canny"
	})
	add(ScenarioApp2, func(s *scenario.Scenario) {
		s.Workload = "mpeg2"
	})
	add(ScenarioMpeg2Big, func(s *scenario.Scenario) {
		s.Workload = "mpeg2"
		s.Partition = scenario.PartitionShared
		big := cfg.Platform
		big.Topology = big.Topology.WithLevel(big.Topology.Partition().Name,
			func(l *cache.LevelSpec) { l.Sets *= 2 })
		ps := scenario.PlatformSpecOf(big)
		s.Platform = &ps
	})
	add(ScenarioApp1Curves, func(s *scenario.Scenario) {
		s.Workload = "2jpeg+canny"
		s.Partition = scenario.PartitionProfile
	})
	add(ScenarioApp2Curves, func(s *scenario.Scenario) {
		s.Workload = "mpeg2"
		s.Partition = scenario.PartitionProfile
	})
	add(ScenarioJPEG1Solo, func(s *scenario.Scenario) {
		s.Workload = "jpeg1-only"
		s.AllocWorkload = "2jpeg+canny"
	})
	add(ScenarioApp1Split, func(s *scenario.Scenario) {
		s.Workload = "2jpeg+canny(split i/d)"
	})
	add(ScenarioApp1Migration, func(s *scenario.Scenario) {
		s.Workload = "2jpeg+canny"
		s.Migration = true
	})
	add(ScenarioApp1Optimize, func(s *scenario.Scenario) {
		s.Workload = "2jpeg+canny"
		s.Partition = scenario.PartitionOptimize
	})
	add(ScenarioApp1Column, func(s *scenario.Scenario) {
		s.Workload = "2jpeg+canny"
		s.Partition = scenario.PartitionOptimize
		// One candidate size: a whole cache way (column caching, the
		// related-work granularity of experiment X2).
		geom := cfg.Platform.PartitionGeom()
		totalUnits := geom.Sets / rtos.AllocUnit
		s.Sizes = []int{totalUnits / geom.Ways}
	})
	add(ScenarioL3Shared, func(s *scenario.Scenario) {
		s.Workload = "2jpeg+canny"
		pc := cfg.Platform
		pc.Topology = L3SharedTopology()
		ps := scenario.PlatformSpecOf(pc)
		s.Platform = &ps
	})
	add(ScenarioClusteredL2, func(s *scenario.Scenario) {
		s.Workload = "2jpeg+canny"
		pc := cfg.Platform
		pc.Topology = ClusteredL2Topology()
		ps := scenario.PlatformSpecOf(pc)
		s.Platform = &ps
	})
	return defs
}

// L3SharedTopology is the built-in 3-level tree: the section 5 private
// L1s, a private 128 KB L2 per CPU, and a shared 1 MB L3 that carries
// the partition tables and the profiler tap.
func L3SharedTopology() cache.Topology {
	return cache.Topology{Levels: []cache.LevelSpec{
		{Name: "l1", Scope: cache.ScopePrivate, Sets: 64, Ways: 4, LineSize: 64, HitLat: 0},
		{Name: "l2", Scope: cache.ScopePrivate, Sets: 512, Ways: 4, LineSize: 64, HitLat: 8},
		{Name: "l3", Scope: cache.ScopeShared, Sets: 4096, Ways: 4, LineSize: 64, HitLat: 24, Partition: true},
	}}
}

// ClusteredL2Topology is the built-in clustered tree: private L1s, one
// 512 KB L2 per cluster of two CPUs, and a shared partitioned 1 MB L3.
func ClusteredL2Topology() cache.Topology {
	return cache.Topology{Levels: []cache.LevelSpec{
		{Name: "l1", Scope: cache.ScopePrivate, Sets: 64, Ways: 4, LineSize: 64, HitLat: 0},
		{Name: "l2", Scope: cache.ClusterScope(2), Sets: 2048, Ways: 4, LineSize: 64, HitLat: 11},
		{Name: "l3", Scope: cache.ScopeShared, Sets: 4096, Ways: 4, LineSize: 64, HitLat: 24, Partition: true},
	}}
}

// BuiltinScenario resolves one built-in by name.
func BuiltinScenario(cfg Config, name string) (scenario.Scenario, bool) {
	s, ok := BuiltinScenarios(cfg)[name]
	return s, ok
}

// BuiltinNames lists the built-in scenario names, sorted.
func BuiltinNames() []string {
	defs := BuiltinScenarios(Default())
	names := make([]string, 0, len(defs))
	for n := range defs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
