package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/workloads"
)

// CompositionResult is experiment X1: the same decoder's miss counts with
// and without co-runners, under both cache strategies.
type CompositionResult struct {
	SharedSolo  uint64 // jpeg1 entity misses, running alone, shared L2
	SharedCorun uint64 // ... co-scheduled with jpeg2 + canny, shared L2
	PartSolo    uint64 // ... alone, partitioned L2 (same allocation)
	PartCorun   uint64 // ... co-scheduled, partitioned L2
}

// SharedShift returns the relative change of the shared-cache miss count
// when co-runners appear; PartShift the same for the partitioned cache.
// Compositionality means PartShift ≈ 0 while SharedShift is large.
func (r *CompositionResult) SharedShift() float64 { return shift(r.SharedSolo, r.SharedCorun) }

// PartShift returns the partitioned-cache relative change.
func (r *CompositionResult) PartShift() float64 { return shift(r.PartSolo, r.PartCorun) }

func shift(solo, corun uint64) float64 {
	if solo == 0 {
		return 0
	}
	d := float64(corun) - float64(solo)
	if d < 0 {
		d = -d
	}
	return d / float64(solo)
}

// jpeg1Entities are the private entities of the first decoder instance.
var jpeg1Entities = []string{"FrontEnd1", "IDCT1", "Raster1", "BackEnd1"}

func sumEntities(res *core.Result, names []string) uint64 {
	var t uint64
	for _, n := range names {
		if e := res.Entity(n); e != nil {
			t += e.Misses
		}
	}
	return t
}

// Composition runs X1. The partitioned runs reuse the full application's
// optimized allocation, restricted to the entities present in each run —
// exactly how a compositional design flow would validate a single task
// before integration.
func Composition(cfg Config) (*CompositionResult, *report.Table, error) {
	full := workloads.JPEGCanny(cfg.Scale, nil)
	solo := workloads.JPEG1Only(cfg.Scale)

	opt, err := core.Optimize(full, cfg.OptimizeConfig())
	if err != nil {
		return nil, nil, err
	}
	run := func(w core.Workload, strat core.Strategy) (*core.Result, error) {
		rc := core.RunConfig{Platform: cfg.Platform, Strategy: strat}
		if strat == core.Partitioned {
			rc.Alloc = opt.Allocation
		}
		return core.Run(w, rc)
	}
	res := &CompositionResult{}
	if r, err := run(solo, core.Shared); err != nil {
		return nil, nil, err
	} else {
		res.SharedSolo = sumEntities(r, jpeg1Entities)
	}
	if r, err := run(full, core.Shared); err != nil {
		return nil, nil, err
	} else {
		res.SharedCorun = sumEntities(r, jpeg1Entities)
	}
	if r, err := run(solo, core.Partitioned); err != nil {
		return nil, nil, err
	} else {
		res.PartSolo = sumEntities(r, jpeg1Entities)
	}
	if r, err := run(full, core.Partitioned); err != nil {
		return nil, nil, err
	} else {
		res.PartCorun = sumEntities(r, jpeg1Entities)
	}

	t := &report.Table{
		Title:   "X1: jpeg1 task misses, alone vs co-scheduled (compositionality stress)",
		Headers: []string{"cache", "alone", "co-scheduled", "shift"},
	}
	t.AddRow("shared", res.SharedSolo, res.SharedCorun, fmt.Sprintf("%.1f%%", res.SharedShift()*100))
	t.AddRow("partitioned", res.PartSolo, res.PartCorun, fmt.Sprintf("%.1f%%", res.PartShift()*100))
	return res, t, nil
}

// Granularity runs X2: the same optimization pipeline with candidate
// partition sizes restricted to whole cache ways (column caching, the
// related-work scheme of Suh et al. and Stone et al.) versus the paper's
// fine-grained set partitioning.
func Granularity(cfg Config) (*report.Table, error) {
	w := workloads.JPEGCanny(cfg.Scale, nil)
	geom := cfg.Platform.PartitionGeom()
	totalUnits := geom.Sets / 8
	wayUnits := totalUnits / geom.Ways

	fine, err := core.Optimize(w, cfg.OptimizeConfig())
	if err != nil {
		return nil, err
	}
	coarseOC := cfg.OptimizeConfig()
	coarseOC.Sizes = []int{wayUnits} // every entity gets exactly one way
	coarse, err := core.Optimize(w, coarseOC)
	if err != nil {
		// Way granularity usually over-commits: with more entities than
		// ways the program is infeasible, which is itself the paper's
		// point ("this partitioning type severely restricts the
		// granularity of cache allocation to the associativity").
		t := &report.Table{
			Title:   "X2: allocation granularity (set partitioning vs column caching)",
			Headers: []string{"scheme", "result"},
		}
		t.AddRow("set partitioning (8-set units)", fmt.Sprintf("feasible, %d units, %.0f expected misses", fine.Allocation.TotalUnits(), totalExpected(fine)))
		t.AddRow(fmt.Sprintf("column caching (%d-unit ways)", wayUnits), "infeasible: more entities than ways")
		return t, nil
	}
	t := &report.Table{
		Title:   "X2: allocation granularity (set partitioning vs column caching)",
		Headers: []string{"scheme", "total units", "expected misses"},
	}
	t.AddRow("set partitioning (8-set units)", fine.Allocation.TotalUnits(), totalExpected(fine))
	t.AddRow(fmt.Sprintf("column caching (%d-unit ways)", wayUnits), coarse.Allocation.TotalUnits(), totalExpected(coarse))
	return t, nil
}

func totalExpected(o *core.OptimizeResult) float64 {
	var t float64
	for _, v := range o.Expected {
		t += v
	}
	return t
}

// Assignment runs X3: the section 3.1 throughput model over measured task
// times, comparing the workload's static assignment against LPT and local
// search (and exhaustive search when the task count permits).
func Assignment(s *Study, numCPUs int) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("X3 (%s): task-to-processor assignment (section 3.1 model)", s.Workload),
		Headers: []string{"assignment", "makespan (cycles)", "throughput (runs/Mcycle)"},
	}
	cycles := s.Part.TaskCycles
	used := core.Assignment{}
	for n, c := range s.Part.TaskCPU {
		used[n] = c
	}
	addRow := func(name string, a core.Assignment) {
		loads, err := core.ProcessorLoads(cycles, a, numCPUs)
		if err != nil {
			t.AddRow(name, "error", err.Error())
			return
		}
		mk := core.Makespan(loads)
		t.AddRow(name, mk, core.Throughput(mk))
	}
	addRow("static (as run)", used)
	lpt := core.AssignLPT(cycles, numCPUs)
	addRow("LPT", lpt)
	addRow("LPT+local search", core.AssignLocalSearch(cycles, numCPUs, lpt))
	if ex, err := core.AssignExhaustive(cycles, numCPUs); err == nil {
		addRow("exhaustive optimum", ex)
	}
	return t
}

// SortedTaskCycles lists measured task times in descending order, for
// reporting.
func SortedTaskCycles(res *core.Result) []string {
	names := make([]string, 0, len(res.TaskCycles))
	for n := range res.TaskCycles {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return res.TaskCycles[names[i]] > res.TaskCycles[names[j]]
	})
	return names
}
