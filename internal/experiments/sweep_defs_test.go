package experiments

import (
	"testing"
)

// TestPaperGridExpansion checks the built-in candidate-size grid: ≥32
// valid points covering the L2 capacity ladder crossed with the
// execution-side knobs, every point a normalizable scenario.
func TestPaperGridExpansion(t *testing.T) {
	sw, ok := BuiltinSweep(Small(), SweepPaperGrid)
	if !ok {
		t.Fatal("paper-grid not defined")
	}
	points, total, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if total < 32 || len(points) != total {
		t.Fatalf("paper-grid must expand to ≥32 points uncapped, got %d of %d", len(points), total)
	}
	sets := map[int]bool{}
	for _, p := range points {
		n, err := p.Scenario.Normalize()
		if err != nil {
			t.Fatalf("point %d (%v) does not normalize: %v", p.Index, p.Coords, err)
		}
		pc, err := n.Platform.Config()
		if err != nil {
			t.Fatalf("point %d: %v", p.Index, err)
		}
		sets[pc.PartitionGeom().Sets] = true
	}
	// 128..1024 KiB over 4 ways × 64 B lines.
	for _, want := range []int{512, 1024, 2048, 4096} {
		if !sets[want] {
			t.Errorf("capacity ladder misses %d sets (have %v)", want, sets)
		}
	}
	// Distinct profile stages: capacity × exec engine; everything else
	// (migration, solver) rides the memo. Documented here as the
	// amplification contract the acceptance run observes via
	// Runner.Stats (each shared profile stage executes exactly once).
	if wantProfiles := 4 * 2; total/wantProfiles != 4 {
		t.Errorf("grid shape changed: %d points / %d profile stages", total, wantProfiles)
	}
}
