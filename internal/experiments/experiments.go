// Package experiments regenerates every table and figure of the paper's
// evaluation (section 5), plus the extension studies listed in DESIGN.md:
//
//	T1/T2  Tables 1-2: optimized L2 allocation per entity
//	F2     Figure 2: shared vs best-partitioned misses per entity
//	F3     Figure 3: expected vs simulated misses (compositionality)
//	H1     headline metrics: miss ratio, miss rate, CPI, mpeg2@1MB
//	X1     compositionality ablation: jpeg1 alone vs co-scheduled
//	X2     granularity ablation: set-partitioning vs way (column) caching
//	X3     task-to-processor assignment search on the section 3.1 model
//	X4     split instruction/data partitions (the section 4.2 variant)
//	X5     schedule sensitivity under task migration
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/platform"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/workloads"
)

// Config parameterizes the harness.
type Config struct {
	Scale       workloads.Scale
	Platform    platform.Config
	ProfileRuns int
	Solver      core.Solver
	// Engine selects the profiling engine (default: the single-pass
	// stack-distance simulator; profile.EngineBank is the reference
	// bank-of-caches oracle).
	Engine profile.Engine
	// Workers bounds the harness's fan-out: the shared/profiled legs of
	// a study, the profiling repetitions, and the headline's per-app
	// studies all run on bounded worker pools. 0 = GOMAXPROCS,
	// 1 = fully sequential. Every simulation owns its platform
	// instance, so the results are identical at any worker count.
	//
	// The bound applies per fan-out stage, and stages nest (headline →
	// study legs → profiling repetitions), so peak concurrency can
	// reach the product of the nested stages' bounds — up to
	// 3×2×Workers simulations for Headline. Use Workers=1 when a
	// strict single-simulation-at-a-time run is needed.
	Workers int
}

// OptimizeConfig translates the harness configuration into the
// profiling/optimization options, so every command honors the engine and
// worker knobs.
func (c Config) OptimizeConfig() core.OptimizeConfig {
	return core.OptimizeConfig{
		Platform: c.Platform,
		Runs:     c.ProfileRuns,
		Solver:   c.Solver,
		Engine:   c.Engine,
		Workers:  c.Workers,
	}
}

// Default returns the paper-scale configuration: the 4-CPU, 512 KB L2
// CAKE instance of section 5.
func Default() Config {
	return Config{Scale: workloads.Paper, Platform: platform.Default(), ProfileRuns: 2}
}

// Small returns a fast configuration for tests.
func Small() Config {
	return Config{Scale: workloads.Small, Platform: platform.Default(), ProfileRuns: 1}
}

// Study is the complete evaluation of one application: shared baseline,
// profiling + optimization, partitioned run, and the Figure 3 comparison.
type Study struct {
	Workload string
	Shared   *core.Result
	Part     *core.Result
	Opt      *core.OptimizeResult
	Compose  *core.ComposeReport
}

// MissRatio returns shared misses / partitioned misses (the paper's "N
// times less misses").
func (s *Study) MissRatio() float64 {
	p := s.Part.TotalMisses()
	if p == 0 {
		return 0
	}
	return float64(s.Shared.TotalMisses()) / float64(p)
}

// RunStudy executes the full pipeline on one workload. The shared
// baseline and the profile+optimize leg are independent simulations and
// run concurrently; the partitioned run needs the optimized allocation
// and follows.
func RunStudy(w core.Workload, cfg Config) (*Study, error) {
	var (
		shared *core.Result
		opt    *core.OptimizeResult
	)
	legs := []func() error{
		func() error {
			var err error
			shared, err = core.Run(w, core.RunConfig{Platform: cfg.Platform})
			if err != nil {
				return fmt.Errorf("experiments: shared run: %w", err)
			}
			return nil
		},
		func() error {
			var err error
			opt, err = core.Optimize(w, cfg.OptimizeConfig())
			if err != nil {
				return fmt.Errorf("experiments: optimize: %w", err)
			}
			return nil
		},
	}
	if err := parallel.Do(parallel.Workers(cfg.Workers), len(legs), func(i int) error { return legs[i]() }); err != nil {
		return nil, err
	}
	part, err := core.Run(w, core.RunConfig{
		Platform: cfg.Platform,
		Strategy: core.Partitioned,
		Alloc:    opt.Allocation,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: partitioned run: %w", err)
	}
	return &Study{
		Workload: w.Name,
		Shared:   shared,
		Part:     part,
		Opt:      opt,
		Compose:  core.CompareExpectedSimulated(opt.Expected, part),
	}, nil
}

// App1 runs the study for the 2×JPEG + Canny application.
func App1(cfg Config) (*Study, error) {
	return RunStudy(workloads.JPEGCanny(cfg.Scale, nil), cfg)
}

// App2 runs the study for the MPEG-2 decoder.
func App2(cfg Config) (*Study, error) {
	return RunStudy(workloads.MPEG2(cfg.Scale, nil), cfg)
}

// AllocationTable renders the study's allocation as the paper's Table 1
// or Table 2: allocated L2 units per task, buffer and shared section.
func AllocationTable(s *Study, title string) *report.Table {
	t := &report.Table{
		Title:   title,
		Headers: []string{"entity", "kind", "alloc units", "expected misses"},
	}
	names := make([]string, 0, len(s.Opt.Allocation))
	for n := range s.Opt.Allocation {
		names = append(names, n)
	}
	sort.Strings(names)
	kind := map[string]core.EntityKind{}
	for _, e := range s.Part.Entities {
		kind[e.Name] = e.Kind
	}
	for _, n := range names {
		t.AddRow(n, kind[n].String(), s.Opt.Allocation[n], s.Opt.Expected[n])
	}
	t.AddRow("TOTAL", "", s.Opt.Allocation.TotalUnits(), "")
	return t
}

// Figure2 renders the shared-vs-partitioned per-entity miss chart.
func Figure2(s *Study) *report.BarChart {
	c := &report.BarChart{
		Title:  fmt.Sprintf("Figure 2 (%s): L2 misses per entity, shared vs best partitioned", s.Workload),
		ALabel: "shared",
		BLabel: "partitioned",
	}
	for _, e := range s.Shared.Entities {
		p := s.Part.Entity(e.Name)
		if p == nil || (e.Misses == 0 && p.Misses == 0) {
			continue
		}
		c.Pairs = append(c.Pairs, report.BarPair{Label: e.Name, A: float64(e.Misses), B: float64(p.Misses)})
	}
	sort.Slice(c.Pairs, func(i, j int) bool { return c.Pairs[i].A > c.Pairs[j].A })
	return c
}

// Figure3 renders the expected-vs-simulated chart plus the paper's
// compositionality metric.
func Figure3(s *Study) (*report.BarChart, *core.ComposeReport) {
	c := &report.BarChart{
		Title: fmt.Sprintf("Figure 3 (%s): expected vs simulated misses per entity (max rel diff %.2f%%)",
			s.Workload, s.Compose.MaxRelDiff*100),
		ALabel: "expected",
		BLabel: "simulated",
	}
	for _, e := range s.Compose.Entries {
		if e.Expected == 0 && e.Simulated == 0 {
			continue
		}
		c.Pairs = append(c.Pairs, report.BarPair{Label: e.Name, A: e.Expected, B: float64(e.Simulated)})
	}
	sort.Slice(c.Pairs, func(i, j int) bool { return c.Pairs[i].A > c.Pairs[j].A })
	return c, s.Compose
}

// HeadlineRow summarizes one study for the headline table. It is part
// of the machine-readable surface (`compmem headline -json` emits the
// rows in a versioned report envelope).
type HeadlineRow struct {
	App        string  `json:"app"`
	SharedMiss uint64  `json:"shared_misses"`
	PartMiss   uint64  `json:"partitioned_misses"`
	Ratio      float64 `json:"ratio"`
	SharedRate float64 `json:"shared_miss_rate"`
	PartRate   float64 `json:"partitioned_miss_rate"`
	SharedCPI  float64 `json:"shared_cpi"`
	PartCPI    float64 `json:"partitioned_cpi"`
	MaxRelDiff float64 `json:"max_rel_diff"`
	// Energy in the arbitrary units of core.PowerModel: the paper's
	// power criterion ("optimizing the overall execution time
	// (respectively the number of misses) gives the most power
	// consumptions reduction").
	SharedEnergy float64 `json:"shared_energy"`
	PartEnergy   float64 `json:"partitioned_energy"`
}

// Headline runs both applications plus the 1 MB shared-L2 MPEG-2 variant
// and renders the in-text headline numbers of section 5. The three legs
// are independent and fan out over the harness worker pool; rows and
// table are assembled in the fixed App1, App2, 1 MB order afterwards, so
// the output is identical to the sequential path.
func Headline(cfg Config) (*report.Table, []HeadlineRow, error) {
	t := &report.Table{
		Title: "Headline (paper: 5x / 6.5x fewer misses; 9.46->2.21% / 5.1->0.8% miss rate; CPI 1.4->1.1 / ~1.75->~1.65)",
		Headers: []string{"app", "shared miss", "part miss", "ratio",
			"shared rate", "part rate", "shared CPI", "part CPI", "maxRelDiff", "energy gain"},
	}
	studies := make([]*Study, 2)
	var bigRes *core.Result
	legs := []func() error{
		func() error { var err error; studies[0], err = App1(cfg); return err },
		func() error { var err error; studies[1], err = App2(cfg); return err },
		func() error {
			// MPEG-2 on a 1 MB shared L2.
			big := cfg.Platform
			big.Topology = big.Topology.WithLevel(big.Topology.Partition().Name,
				func(l *cache.LevelSpec) { l.Sets *= 2 })
			var err error
			bigRes, err = core.Run(workloads.MPEG2(cfg.Scale, nil), core.RunConfig{Platform: big})
			return err
		},
	}
	if err := parallel.Do(parallel.Workers(cfg.Workers), len(legs), func(i int) error { return legs[i]() }); err != nil {
		return nil, nil, err
	}
	var rows []HeadlineRow
	for _, s := range studies {
		r := HeadlineRow{
			App:          s.Workload,
			SharedMiss:   s.Shared.TotalMisses(),
			PartMiss:     s.Part.TotalMisses(),
			Ratio:        s.MissRatio(),
			SharedRate:   s.Shared.L2MissRate,
			PartRate:     s.Part.L2MissRate,
			SharedCPI:    s.Shared.CPIMean,
			PartCPI:      s.Part.CPIMean,
			MaxRelDiff:   s.Compose.MaxRelDiff,
			SharedEnergy: s.Shared.Energy,
			PartEnergy:   s.Part.Energy,
		}
		rows = append(rows, r)
		t.AddRow(r.App, r.SharedMiss, r.PartMiss, r.Ratio, r.SharedRate, r.PartRate,
			r.SharedCPI, r.PartCPI, r.MaxRelDiff,
			fmt.Sprintf("%.1f%%", (1-r.PartEnergy/r.SharedEnergy)*100))
	}
	rows = append(rows, HeadlineRow{
		App:        "mpeg2 @1MB shared",
		SharedMiss: bigRes.TotalMisses(),
		SharedRate: bigRes.L2MissRate,
		SharedCPI:  bigRes.CPIMean,
	})
	t.AddRow("mpeg2 @1MB shared", bigRes.TotalMisses(), "-", "-",
		bigRes.L2MissRate, "-", bigRes.CPIMean, "-", "-", "-")
	return t, rows, nil
}
