package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/rtos"
	"repro/internal/scenario"
)

// This file derives every table and figure of the evaluation from
// scenario.Result documents — the thin report layer over the scenario
// API. Each adapter mirrors its legacy Study-based counterpart exactly;
// the differential test in scenario_diff_test.go holds the rendered
// bytes identical.

// entityKinds maps entity name → kind string from a partitioned run.
// Missing names resolve to "task", matching the legacy zero-value
// EntityKind lookup.
func entityKinds(run *scenario.RunSummary) func(string) string {
	kinds := make(map[string]string, len(run.Entities))
	for _, e := range run.Entities {
		kinds[e.Name] = e.Kind
	}
	return func(name string) string {
		if k, ok := kinds[name]; ok {
			return k
		}
		return core.EntityTask.String()
	}
}

// AllocationTableFromResult renders a study result as the paper's
// Table 1 or Table 2.
func AllocationTableFromResult(r *scenario.Result, title string) *report.Table {
	t := &report.Table{
		Title:   title,
		Headers: []string{"entity", "kind", "alloc units", "expected misses"},
	}
	names := make([]string, 0, len(r.Optimize.Allocation))
	for n := range r.Optimize.Allocation {
		names = append(names, n)
	}
	sort.Strings(names)
	kind := entityKinds(r.Partitioned)
	for _, n := range names {
		t.AddRow(n, kind(n), r.Optimize.Allocation[n], r.Optimize.Expected[n])
	}
	t.AddRow("TOTAL", "", r.Optimize.TotalUnits, "")
	return t
}

// Figure2FromResult renders the shared-vs-partitioned per-entity miss
// chart from a study result.
func Figure2FromResult(r *scenario.Result) *report.BarChart {
	c := &report.BarChart{
		Title:  fmt.Sprintf("Figure 2 (%s): L2 misses per entity, shared vs best partitioned", r.Shared.App),
		ALabel: "shared",
		BLabel: "partitioned",
	}
	for _, e := range r.Shared.Entities {
		p := r.Partitioned.Entity(e.Name)
		if p == nil || (e.Misses == 0 && p.Misses == 0) {
			continue
		}
		c.Pairs = append(c.Pairs, report.BarPair{Label: e.Name, A: float64(e.Misses), B: float64(p.Misses)})
	}
	sort.Slice(c.Pairs, func(i, j int) bool { return c.Pairs[i].A > c.Pairs[j].A })
	return c
}

// Figure3FromResult renders the expected-vs-simulated chart plus the
// compositionality analysis from a study result.
func Figure3FromResult(r *scenario.Result) (*report.BarChart, *scenario.ComposeSummary) {
	c := &report.BarChart{
		Title: fmt.Sprintf("Figure 3 (%s): expected vs simulated misses per entity (max rel diff %.2f%%)",
			r.Shared.App, r.Compose.MaxRelDiff*100),
		ALabel: "expected",
		BLabel: "simulated",
	}
	for _, e := range r.Compose.Entries {
		if e.Expected == 0 && e.Simulated == 0 {
			continue
		}
		c.Pairs = append(c.Pairs, report.BarPair{Label: e.Name, A: e.Expected, B: float64(e.Simulated)})
	}
	sort.Slice(c.Pairs, func(i, j int) bool { return c.Pairs[i].A > c.Pairs[j].A })
	return c, r.Compose
}

// HeadlineFromResults assembles the section 5 headline table from the
// two application studies plus the 1 MB shared-L2 MPEG-2 run.
func HeadlineFromResults(app1, app2, big *scenario.Result) (*report.Table, []HeadlineRow) {
	t := &report.Table{
		Title: "Headline (paper: 5x / 6.5x fewer misses; 9.46->2.21% / 5.1->0.8% miss rate; CPI 1.4->1.1 / ~1.75->~1.65)",
		Headers: []string{"app", "shared miss", "part miss", "ratio",
			"shared rate", "part rate", "shared CPI", "part CPI", "maxRelDiff", "energy gain"},
	}
	var rows []HeadlineRow
	for _, s := range []*scenario.Result{app1, app2} {
		r := HeadlineRow{
			App:          s.Shared.App,
			SharedMiss:   s.Shared.TotalMisses,
			PartMiss:     s.Partitioned.TotalMisses,
			Ratio:        s.MissRatio(),
			SharedRate:   s.Shared.L2MissRate,
			PartRate:     s.Partitioned.L2MissRate,
			SharedCPI:    s.Shared.CPIMean,
			PartCPI:      s.Partitioned.CPIMean,
			MaxRelDiff:   s.Compose.MaxRelDiff,
			SharedEnergy: s.Shared.Energy,
			PartEnergy:   s.Partitioned.Energy,
		}
		rows = append(rows, r)
		t.AddRow(r.App, r.SharedMiss, r.PartMiss, r.Ratio, r.SharedRate, r.PartRate,
			r.SharedCPI, r.PartCPI, r.MaxRelDiff,
			fmt.Sprintf("%.1f%%", (1-r.PartEnergy/r.SharedEnergy)*100))
	}
	rows = append(rows, HeadlineRow{
		App:        "mpeg2 @1MB shared",
		SharedMiss: big.Shared.TotalMisses,
		SharedRate: big.Shared.L2MissRate,
		SharedCPI:  big.Shared.CPIMean,
	})
	t.AddRow("mpeg2 @1MB shared", big.Shared.TotalMisses, "-", "-",
		big.Shared.L2MissRate, "-", big.Shared.CPIMean, "-", "-", "-")
	return t, rows
}

// sumEntitySummaries totals the named entities' misses in a run summary.
func sumEntitySummaries(run *scenario.RunSummary, names []string) uint64 {
	var t uint64
	for _, n := range names {
		if e := run.Entity(n); e != nil {
			t += e.Misses
		}
	}
	return t
}

// CompositionFromResults derives experiment X1 from the solo-decoder
// study (run under the full application's allocation) and the full
// application study.
func CompositionFromResults(solo, full *scenario.Result) (*CompositionResult, *report.Table) {
	res := &CompositionResult{
		SharedSolo:  sumEntitySummaries(solo.Shared, jpeg1Entities),
		SharedCorun: sumEntitySummaries(full.Shared, jpeg1Entities),
		PartSolo:    sumEntitySummaries(solo.Partitioned, jpeg1Entities),
		PartCorun:   sumEntitySummaries(full.Partitioned, jpeg1Entities),
	}
	t := &report.Table{
		Title:   "X1: jpeg1 task misses, alone vs co-scheduled (compositionality stress)",
		Headers: []string{"cache", "alone", "co-scheduled", "shift"},
	}
	t.AddRow("shared", res.SharedSolo, res.SharedCorun, fmt.Sprintf("%.1f%%", res.SharedShift()*100))
	t.AddRow("partitioned", res.PartSolo, res.PartCorun, fmt.Sprintf("%.1f%%", res.PartShift()*100))
	return res, t
}

// sumExpected totals the optimizer's expected misses.
func sumExpected(o *scenario.OptimizeSummary) float64 {
	var t float64
	for _, v := range o.Expected {
		t += v
	}
	return t
}

// GranularityFromResults derives experiment X2 from the fine-grained
// optimize leg and the column-caching leg (whose failure is the
// infeasibility the paper points out).
func GranularityFromResults(cfg Config, fine, coarse *scenario.Result) *report.Table {
	geom := cfg.Platform.PartitionGeom()
	totalUnits := geom.Sets / rtos.AllocUnit
	wayUnits := totalUnits / geom.Ways
	if coarse.Error != "" {
		t := &report.Table{
			Title:   "X2: allocation granularity (set partitioning vs column caching)",
			Headers: []string{"scheme", "result"},
		}
		t.AddRow("set partitioning (8-set units)", fmt.Sprintf("feasible, %d units, %.0f expected misses", fine.Optimize.TotalUnits, sumExpected(fine.Optimize)))
		t.AddRow(fmt.Sprintf("column caching (%d-unit ways)", wayUnits), "infeasible: more entities than ways")
		return t
	}
	t := &report.Table{
		Title:   "X2: allocation granularity (set partitioning vs column caching)",
		Headers: []string{"scheme", "total units", "expected misses"},
	}
	t.AddRow("set partitioning (8-set units)", fine.Optimize.TotalUnits, sumExpected(fine.Optimize))
	t.AddRow(fmt.Sprintf("column caching (%d-unit ways)", wayUnits), coarse.Optimize.TotalUnits, sumExpected(coarse.Optimize))
	return t
}

// SplitFromResults derives experiment X4 from the task-unified and
// split-i/d studies.
func SplitFromResults(unified, split *scenario.Result) *report.Table {
	t := &report.Table{
		Title:   "X4: task-unified vs split instruction/data partitions (section 4.2 variant)",
		Headers: []string{"organization", "entities", "alloc units", "L2 misses", "max rel diff"},
	}
	t.AddRow("shared baseline", "-", "-", unified.Shared.TotalMisses, "-")
	t.AddRow("partitioned, task-unified", len(unified.Partitioned.Entities),
		unified.Optimize.TotalUnits, unified.Partitioned.TotalMisses,
		fmt.Sprintf("%.3f%%", unified.Compose.MaxRelDiff*100))
	t.AddRow("partitioned, split i/d", len(split.Partitioned.Entities),
		split.Optimize.TotalUnits, split.Partitioned.TotalMisses,
		fmt.Sprintf("%.3f%%", split.Compose.MaxRelDiff*100))
	return t
}

// runShift returns the largest per-entity miss shift between two runs,
// normalized by the first run's total misses (the X5 metric).
func runShift(a, b *scenario.RunSummary) float64 {
	total := float64(a.TotalMisses)
	if total == 0 {
		return 0
	}
	worst := 0.0
	for _, e := range a.Entities {
		o := b.Entity(e.Name)
		if o == nil {
			continue
		}
		d := float64(e.Misses) - float64(o.Misses)
		if d < 0 {
			d = -d
		}
		if d/total > worst {
			worst = d / total
		}
	}
	return worst
}

// MigrationFromResults derives experiment X5 from the static study and
// the migrating study.
func MigrationFromResults(static, migrating *scenario.Result) *report.Table {
	t := &report.Table{
		Title:   "X5: schedule sensitivity — static assignment vs task migration",
		Headers: []string{"cache", "static misses", "migrating misses", "max entity shift"},
	}
	t.AddRow("shared", static.Shared.TotalMisses, migrating.Shared.TotalMisses,
		fmt.Sprintf("%.2f%%", runShift(static.Shared, migrating.Shared)*100))
	t.AddRow("partitioned", static.Partitioned.TotalMisses, migrating.Partitioned.TotalMisses,
		fmt.Sprintf("%.2f%%", runShift(static.Partitioned, migrating.Partitioned)*100))
	return t
}

// AssignmentFromResult derives experiment X3 (the section 3.1 assignment
// model) from a study result's measured task times.
func AssignmentFromResult(r *scenario.Result, numCPUs int) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("X3 (%s): task-to-processor assignment (section 3.1 model)", r.Partitioned.App),
		Headers: []string{"assignment", "makespan (cycles)", "throughput (runs/Mcycle)"},
	}
	cycles := r.Partitioned.TaskCycles
	used := core.Assignment{}
	for n, c := range r.Partitioned.TaskCPU {
		used[n] = c
	}
	addRow := func(name string, a core.Assignment) {
		loads, err := core.ProcessorLoads(cycles, a, numCPUs)
		if err != nil {
			t.AddRow(name, "error", err.Error())
			return
		}
		mk := core.Makespan(loads)
		t.AddRow(name, mk, core.Throughput(mk))
	}
	addRow("static (as run)", used)
	lpt := core.AssignLPT(cycles, numCPUs)
	addRow("LPT", lpt)
	addRow("LPT+local search", core.AssignLocalSearch(cycles, numCPUs, lpt))
	if ex, err := core.AssignExhaustive(cycles, numCPUs); err == nil {
		addRow("exhaustive optimum", ex)
	}
	return t
}

// RenderResult renders an arbitrary scenario result for the terminal —
// the human-readable shape of `compmem run -scenario file.json`.
func RenderResult(r *scenario.Result) string {
	var b strings.Builder
	name := r.Scenario.Name
	if name == "" {
		name = r.Scenario.Workload
	}
	fmt.Fprintf(&b, "scenario %s: workload %s, %s scale, partition %s (key %s)\n",
		name, r.Scenario.Workload, r.Scenario.Scale, r.Scenario.Partition, r.Key)
	if r.Error != "" {
		fmt.Fprintf(&b, "  error: %s\n", r.Error)
		return b.String()
	}
	runLine := func(label string, run *scenario.RunSummary) {
		fmt.Fprintf(&b, "%-12s %10d L2 misses, miss rate %.4f, CPI %.3f, energy %.4g\n",
			label, run.TotalMisses, run.L2MissRate, run.CPIMean, run.Energy)
	}
	if r.Shared != nil {
		runLine("shared:", r.Shared)
	}
	if r.Partitioned != nil {
		runLine("partitioned:", r.Partitioned)
		if ratio := r.MissRatio(); ratio != 0 {
			fmt.Fprintf(&b, "%-12s %10.2fx fewer misses than shared\n", "ratio:", ratio)
		}
	}
	if r.Compose != nil {
		fmt.Fprintf(&b, "compositional at the paper's 2%% threshold: %v (max %.3f%%, mean %.3f%%)\n",
			r.Compose.Compositional(0.02), r.Compose.MaxRelDiff*100, r.Compose.MeanRelDiff*100)
	}
	if r.Optimize != nil {
		if r.Partitioned != nil {
			b.WriteString(AllocationTableFromResult(r, fmt.Sprintf("Allocated L2 units (%s, %s solver, budget %d)",
				r.Scenario.Workload, r.Optimize.Solver, r.Optimize.Budget)).String())
		} else {
			t := &report.Table{
				Title:   fmt.Sprintf("Allocated L2 units (%s, %s solver, budget %d)", r.Scenario.Workload, r.Optimize.Solver, r.Optimize.Budget),
				Headers: []string{"entity", "alloc units", "expected misses"},
			}
			names := make([]string, 0, len(r.Optimize.Allocation))
			for n := range r.Optimize.Allocation {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				t.AddRow(n, r.Optimize.Allocation[n], r.Optimize.Expected[n])
			}
			t.AddRow("TOTAL", r.Optimize.TotalUnits, "")
			b.WriteString(t.String())
		}
	}
	if len(r.Curves) > 0 {
		b.WriteString(CurvesText(r.Scenario.Workload, r.Curves))
	}
	return b.String()
}

// CurvesText dumps the per-entity miss curves m_i(z_p), the raw input of
// the section 3.2 optimization, in the CLI's curves format.
func CurvesText(app string, curves []scenario.Curve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "miss curves m_i(z) for %s (misses at 1..128 units):\n", app)
	for _, c := range curves {
		if c.Accesses == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-14s acc=%8.0f  ", c.Entity, c.Accesses)
		for k, m := range c.Misses {
			fmt.Fprintf(&b, "%d:%.0f ", c.Sizes[k], m)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
