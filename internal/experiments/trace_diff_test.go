package experiments

import (
	"encoding/json"
	"testing"

	"repro/internal/scenario"
)

// TestTraceReplayMatchesLive is the end-to-end differential proof of the
// trace subsystem: for both paper applications and both execution
// engines, the full optimized study driven by trace replay is
// bit-identical — per-entity stats, makespans, allocations, the
// compositionality comparison, everything in the result document — to
// the same study re-running the live functional applications at every
// stage. This is what justifies clearing the trace mode from the
// content address (scenario.Key) and sharing stage records between the
// modes.
func TestTraceReplayMatchesLive(t *testing.T) {
	engines := []string{"merged", "word"}
	if testing.Short() {
		engines = engines[:1]
	}
	for _, wl := range []string{"2jpeg+canny", "mpeg2"} {
		for _, engine := range engines {
			t.Run(wl+"/"+engine, func(t *testing.T) {
				spec := scenario.Scenario{Workload: wl, Scale: "small", Runs: 1, ExecEngine: engine}
				live := spec
				live.Trace = scenario.TraceLive

				// Separate runners: replay and live deliberately share every
				// stage content address, so a shared runner would serve the
				// second mode from the first's memo and prove nothing.
				liveRes, err := scenario.NewRunner(2).Run(live)
				if err != nil {
					t.Fatalf("live study: %v", err)
				}
				replayRes, err := scenario.NewRunner(2).Run(spec)
				if err != nil {
					t.Fatalf("replay study: %v", err)
				}

				if liveRes.Key != replayRes.Key {
					t.Fatalf("trace mode leaked into the content address: %s vs %s", liveRes.Key, replayRes.Key)
				}
				// Neutralize the one intentional difference: the normalized
				// spec echoed in the document records the requested mode.
				liveRes.Scenario.Trace = ""
				replayRes.Scenario.Trace = ""
				a, _ := json.Marshal(liveRes)
				b, _ := json.Marshal(replayRes)
				if string(a) != string(b) {
					t.Errorf("replay diverged from live\n--- live ---\n%s\n--- replay ---\n%s", a, b)
				}
			})
		}
	}
}

// TestTraceReplayMatchesLiveCurves extends the differential proof to the
// raw profiling output: the per-entity miss curves (the quantity every
// allocation is solved from) must match between modes, not only the
// summarized study documents.
func TestTraceReplayMatchesLiveCurves(t *testing.T) {
	for _, wl := range []string{"2jpeg+canny", "mpeg2"} {
		spec := scenario.Scenario{Workload: wl, Scale: "small", Runs: 1, Partition: scenario.PartitionProfile}
		live := spec
		live.Trace = scenario.TraceLive
		liveRes, err := scenario.NewRunner(1).Run(live)
		if err != nil {
			t.Fatalf("%s live profile: %v", wl, err)
		}
		replayRes, err := scenario.NewRunner(1).Run(spec)
		if err != nil {
			t.Fatalf("%s replay profile: %v", wl, err)
		}
		a, _ := json.Marshal(liveRes.Curves)
		b, _ := json.Marshal(replayRes.Curves)
		if len(liveRes.Curves) == 0 || string(a) != string(b) {
			t.Errorf("%s: replayed miss curves diverged from live\n%s\nvs\n%s", wl, a, b)
		}
	}
}
