package experiments

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/workloads"
)

// TestEngineEquivalenceSmall is the acceptance check for the
// stack-distance engine: on the real Small-scale JPEGCanny and MPEG2
// profiling runs it must return curves bit-identical to the
// bank-of-caches reference oracle. Runs=1 keeps both passes on the same
// deterministic schedule, so any divergence is an engine bug, not noise.
func TestEngineEquivalenceSmall(t *testing.T) {
	for _, w := range []core.Workload{
		workloads.JPEGCanny(workloads.Small, nil),
		workloads.MPEG2(workloads.Small, nil),
	} {
		oc := core.OptimizeConfig{Platform: Small().Platform, Runs: 1}

		oc.Engine = profile.EngineStackDist
		sd, err := core.Profile(w, oc)
		if err != nil {
			t.Fatalf("%s stackdist: %v", w.Name, err)
		}
		oc.Engine = profile.EngineBank
		bank, err := core.Profile(w, oc)
		if err != nil {
			t.Fatalf("%s bank: %v", w.Name, err)
		}
		if len(sd) != len(bank) {
			t.Fatalf("%s: %d vs %d curves", w.Name, len(sd), len(bank))
		}
		for e := range sd {
			if sd[e].Entity != bank[e].Entity {
				t.Fatalf("%s: entity order %q vs %q", w.Name, sd[e].Entity, bank[e].Entity)
			}
			if sd[e].Accesses != bank[e].Accesses {
				t.Errorf("%s/%s: accesses %v vs %v", w.Name, sd[e].Entity, sd[e].Accesses, bank[e].Accesses)
			}
			for k := range sd[e].Misses {
				if sd[e].Misses[k] != bank[e].Misses[k] {
					t.Errorf("%s/%s at %d units: stackdist %v, bank %v",
						w.Name, sd[e].Entity, sd[e].Sizes[k], sd[e].Misses[k], bank[e].Misses[k])
				}
			}
		}
	}
}

// TestParallelProfileMatchesSequential checks that fanning the jittered
// profiling repetitions over the worker pool changes nothing: runs are
// averaged in repetition order, so the curves must be identical.
// Under -race this doubles as the data-race check for core.Profile.
func TestParallelProfileMatchesSequential(t *testing.T) {
	w := workloads.JPEGCanny(workloads.Small, nil)
	oc := core.OptimizeConfig{Platform: Small().Platform, Runs: 3, Workers: 1}
	seq, err := core.Profile(w, oc)
	if err != nil {
		t.Fatal(err)
	}
	oc.Workers = 4
	par, err := core.Profile(w, oc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel profile differs from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestParallelHeadlineMatchesSequential checks the full harness fan-out:
// the headline table (both apps plus the 1 MB variant, each with its own
// study pipeline) must produce identical rows at any worker count. Every
// simulation owns its platform instance, so under -race this is the
// data-race check for the whole parallel harness.
func TestParallelHeadlineMatchesSequential(t *testing.T) {
	seqCfg := Small()
	seqCfg.Workers = 1
	seqTab, seqRows, err := Headline(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	parCfg := Small()
	parCfg.Workers = 4
	parTab, parRows, err := Headline(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRows, parRows) {
		t.Errorf("parallel headline rows differ:\nseq: %+v\npar: %+v", seqRows, parRows)
	}
	if seqTab.String() != parTab.String() {
		t.Error("parallel headline table rendering differs")
	}
}

// TestRunStudyParallelLegs checks that the shared/profiled legs of one
// study agree with the sequential path at the study level too.
func TestRunStudyParallelLegs(t *testing.T) {
	w := workloads.MPEG2(workloads.Small, nil)
	seqCfg := Small()
	seqCfg.Workers = 1
	seq, err := RunStudy(w, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	parCfg := Small()
	parCfg.Workers = 4
	par, err := RunStudy(w, parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Shared.TotalMisses() != par.Shared.TotalMisses() ||
		seq.Part.TotalMisses() != par.Part.TotalMisses() {
		t.Errorf("parallel study differs: shared %d/%d part %d/%d",
			seq.Shared.TotalMisses(), par.Shared.TotalMisses(),
			seq.Part.TotalMisses(), par.Part.TotalMisses())
	}
	if !reflect.DeepEqual(seq.Opt.Allocation, par.Opt.Allocation) {
		t.Errorf("allocations differ: %v vs %v", seq.Opt.Allocation, par.Opt.Allocation)
	}
}

// TestBankEngineStudySmall keeps the reference-oracle path wired through
// the full study pipeline.
func TestBankEngineStudySmall(t *testing.T) {
	cfg := Small()
	cfg.Engine = profile.EngineBank
	s, err := App1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shared.TotalMisses() == 0 || s.Part.TotalMisses() == 0 {
		t.Fatal("no misses measured")
	}
	if s.Compose.MaxRelDiff > 0.10 {
		t.Errorf("max rel diff %.3f too large", s.Compose.MaxRelDiff)
	}
}
