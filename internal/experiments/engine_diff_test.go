package experiments

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/workloads"
)

// diffResults fails the test if two Results differ in any observable:
// aggregate L2 statistics, per-entity accesses and misses, makespan,
// instruction count, CPI, switches, bus traffic, energy and per-task
// cycles.
func diffResults(t *testing.T, label string, merged, word *core.Result) {
	t.Helper()
	if merged.Platform.Makespan != word.Platform.Makespan {
		t.Errorf("%s: makespan %d (merged) vs %d (word)", label, merged.Platform.Makespan, word.Platform.Makespan)
	}
	if merged.Platform.TotalInstrs != word.Platform.TotalInstrs {
		t.Errorf("%s: instrs %d vs %d", label, merged.Platform.TotalInstrs, word.Platform.TotalInstrs)
	}
	if merged.Platform.L2 != word.Platform.L2 {
		t.Errorf("%s: L2 stats %+v vs %+v", label, merged.Platform.L2, word.Platform.L2)
	}
	if merged.Platform.BusStats != word.Platform.BusStats {
		t.Errorf("%s: bus stats %+v vs %+v", label, merged.Platform.BusStats, word.Platform.BusStats)
	}
	if merged.Platform.Switches != word.Platform.Switches {
		t.Errorf("%s: switches %d vs %d", label, merged.Platform.Switches, word.Platform.Switches)
	}
	if !reflect.DeepEqual(merged.Platform.CPIs, word.Platform.CPIs) {
		t.Errorf("%s: CPIs %v vs %v", label, merged.Platform.CPIs, word.Platform.CPIs)
	}
	if !reflect.DeepEqual(merged.Entities, word.Entities) {
		t.Errorf("%s: entity results differ:\nmerged: %+v\nword:   %+v", label, merged.Entities, word.Entities)
	}
	if merged.L2MissRate != word.L2MissRate || merged.CPIMean != word.CPIMean {
		t.Errorf("%s: rate/CPI %v/%v vs %v/%v", label, merged.L2MissRate, merged.CPIMean, word.L2MissRate, word.CPIMean)
	}
	if merged.Energy != word.Energy {
		t.Errorf("%s: energy %v vs %v", label, merged.Energy, word.Energy)
	}
	if !reflect.DeepEqual(merged.TaskCycles, word.TaskCycles) {
		t.Errorf("%s: task cycles %v vs %v", label, merged.TaskCycles, word.TaskCycles)
	}
}

// TestEngineDifferentialStudies is the acceptance oracle of the
// line-merged fast path on the real workloads: for Small-scale JPEGCanny
// and MPEG-2, the full study — shared baseline, profiled miss curves,
// optimized allocation, partitioned run, compositionality comparison —
// must be bit-identical under both execution engines, at the default
// worker fan-out (run under -race in CI).
func TestEngineDifferentialStudies(t *testing.T) {
	for _, w := range []core.Workload{
		workloads.JPEGCanny(workloads.Small, nil),
		workloads.MPEG2(workloads.Small, nil),
	} {
		t.Run(w.Name, func(t *testing.T) {
			cfg := Small()
			cfg.Platform.Engine = platform.EngineLineMerged
			merged, err := RunStudy(w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Platform.Engine = platform.EngineWordExact
			word, err := RunStudy(w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			diffResults(t, "shared", merged.Shared, word.Shared)
			diffResults(t, "partitioned", merged.Part, word.Part)
			if !reflect.DeepEqual(merged.Opt.Allocation, word.Opt.Allocation) {
				t.Errorf("allocations differ: %v vs %v", merged.Opt.Allocation, word.Opt.Allocation)
			}
			if !reflect.DeepEqual(merged.Opt.Expected, word.Opt.Expected) {
				t.Errorf("expected misses differ: %v vs %v", merged.Opt.Expected, word.Opt.Expected)
			}
			if merged.Compose.MaxRelDiff != word.Compose.MaxRelDiff {
				t.Errorf("compositionality %v vs %v", merged.Compose.MaxRelDiff, word.Compose.MaxRelDiff)
			}
		})
	}
}
