package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// The experiment tests run at Small scale; the paper-scale shape
// assertions live in the root-level bench harness and EXPERIMENTS.md.

func TestApp1StudySmall(t *testing.T) {
	s, err := App1(Small())
	if err != nil {
		t.Fatal(err)
	}
	if s.Shared.TotalMisses() == 0 || s.Part.TotalMisses() == 0 {
		t.Fatal("no misses measured")
	}
	if s.MissRatio() <= 0 {
		t.Error("no ratio")
	}
	// Even the small workload must be compositional.
	if s.Compose.MaxRelDiff > 0.10 {
		t.Errorf("max rel diff %.3f too large", s.Compose.MaxRelDiff)
	}
	// Tables and figures render.
	tab := AllocationTable(s, "Table 1")
	if !strings.Contains(tab.String(), "FrontEnd1") {
		t.Error("allocation table missing task row")
	}
	if !strings.Contains(tab.String(), "TOTAL") {
		t.Error("allocation table missing total")
	}
	f2 := Figure2(s)
	if len(f2.Pairs) == 0 {
		t.Error("figure 2 empty")
	}
	f3, rep := Figure3(s)
	if len(f3.Pairs) == 0 || rep == nil {
		t.Error("figure 3 empty")
	}
	// X3 renders for 4 CPUs.
	x3 := Assignment(s, 4)
	if !strings.Contains(x3.String(), "LPT") {
		t.Error("assignment table missing LPT row")
	}
}

func TestApp2StudySmall(t *testing.T) {
	s, err := App2(Small())
	if err != nil {
		t.Fatal(err)
	}
	if s.Shared.TotalMisses() == 0 {
		t.Fatal("no misses measured")
	}
	tab := AllocationTable(s, "Table 2")
	for _, name := range []string{"vld", "memMan", "predictRD"} {
		if !strings.Contains(tab.String(), name) {
			t.Errorf("table 2 missing %q", name)
		}
	}
	if s.Compose.MaxRelDiff > 0.10 {
		t.Errorf("max rel diff %.3f too large", s.Compose.MaxRelDiff)
	}
}

func TestHeadlineSmall(t *testing.T) {
	tab, rows, err := Headline(Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 2 apps + 1MB variant", len(rows))
	}
	out := tab.String()
	for _, want := range []string{"2jpeg+canny", "mpeg2", "1MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("headline missing %q", want)
		}
	}
	// The 1 MB shared cache must not be worse than the 512 KB shared.
	if rows[2].SharedMiss > rows[1].SharedMiss {
		t.Errorf("1MB shared misses %d > 512KB shared %d", rows[2].SharedMiss, rows[1].SharedMiss)
	}
}

func TestCompositionSmall(t *testing.T) {
	res, tab, err := Composition(Small())
	if err != nil {
		t.Fatal(err)
	}
	if res.SharedSolo == 0 || res.PartSolo == 0 {
		t.Fatal("no solo misses measured")
	}
	// The partitioned system must be far more compositional than the
	// shared one: adding co-runners barely changes jpeg1's misses.
	if res.PartShift() > 0.05 {
		t.Errorf("partitioned shift %.3f, want < 0.05", res.PartShift())
	}
	if res.SharedShift() < 2*res.PartShift() {
		t.Errorf("shared shift %.3f not clearly larger than partitioned %.3f",
			res.SharedShift(), res.PartShift())
	}
	if !strings.Contains(tab.String(), "co-scheduled") {
		t.Error("table malformed")
	}
}

func TestGranularitySmall(t *testing.T) {
	tab, err := Granularity(Small())
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "column caching") || !strings.Contains(out, "set partitioning") {
		t.Errorf("granularity table malformed:\n%s", out)
	}
}

func TestStudyMissRatioZeroSafe(t *testing.T) {
	s := &Study{Shared: &core.Result{}, Part: &core.Result{}}
	if s.MissRatio() != 0 {
		t.Error("zero-division in MissRatio")
	}
}

func TestSortedTaskCycles(t *testing.T) {
	res := &core.Result{TaskCycles: map[string]uint64{"a": 5, "b": 50, "c": 20}}
	got := SortedTaskCycles(res)
	if len(got) != 3 || got[0] != "b" || got[2] != "a" {
		t.Errorf("order = %v", got)
	}
}
