package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/platform"
	"repro/internal/scenario"
)

// topology_golden_test.go is the differential proof of the composable
// memory-hierarchy redesign: the digests in testdata/topology_golden.json
// were captured on the hard-coded L1+L2 implementation (before
// cache.Topology existed), over every legacy CLI command and the full
// JPEGCanny + MPEG2 study documents — per-entity statistics, makespans,
// task cycles, allocations, curves — under BOTH execution engines. The
// default two-level topology must reproduce them bit-identically.
//
// Regenerate (only legitimate when a simulation-semantics change is
// intended and explained in the commit):
//
//	REGEN_TOPOLOGY_GOLDEN=1 go test ./internal/experiments -run TestDefaultTopologyGolden
const topologyGoldenPath = "testdata/topology_golden.json"

// goldenCommands are the legacy CLI commands whose rendered text is
// pinned ("all" is their concatenation and adds no coverage).
var goldenCommands = []string{
	"table1", "table2", "fig2", "fig3", "headline", "compose",
	"granularity", "split", "migration", "assign", "curves",
}

// studyDoc is the physics of a scenario result — everything except the
// spec echo, whose wire shape the topology redesign legitimately extends.
type studyDoc struct {
	Shared      *scenario.RunSummary      `json:"shared"`
	Partitioned *scenario.RunSummary      `json:"partitioned"`
	Optimize    *scenario.OptimizeSummary `json:"optimize"`
	Compose     *scenario.ComposeSummary  `json:"compose"`
	Curves      []scenario.Curve          `json:"curves"`
}

func sha(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:])
}

// topologyDigests runs the whole legacy surface at small scale under
// both engines and digests every observable.
func topologyDigests(t *testing.T) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, eng := range []string{"merged", "word"} {
		cfg := Small()
		ee, err := platform.ParseEngine(eng)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Platform.Engine = ee
		rn := scenario.NewRunner(0)
		for _, cmd := range goldenCommands {
			res, err := RunCommand(cmd, cfg, rn)
			if err != nil {
				t.Fatalf("%s (%s): %v", cmd, eng, err)
			}
			out["cmd:"+cmd+"|"+eng] = sha([]byte(res.Text))
		}
		for _, name := range []string{ScenarioApp1, ScenarioApp2} {
			spec, ok := BuiltinScenario(cfg, name)
			if !ok {
				t.Fatalf("no built-in %q", name)
			}
			r, err := rn.Run(spec)
			if err != nil {
				t.Fatalf("study %s (%s): %v", name, eng, err)
			}
			doc, err := json.Marshal(studyDoc{
				Shared:      r.Shared,
				Partitioned: r.Partitioned,
				Optimize:    r.Optimize,
				Compose:     r.Compose,
				Curves:      r.Curves,
			})
			if err != nil {
				t.Fatal(err)
			}
			out["study:"+name+"|"+eng] = sha(doc)
		}
	}
	return out
}

// TestDefaultTopologyGolden proves the default two-level topology
// bit-identical to the pre-redesign memory system for all 11 legacy
// commands and both full application studies, under both the merged and
// the word-exact execution engines.
func TestDefaultTopologyGolden(t *testing.T) {
	got := topologyDigests(t)
	if os.Getenv("REGEN_TOPOLOGY_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(topologyGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(topologyGoldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s with %d digests", topologyGoldenPath, len(got))
		return
	}
	raw, err := os.ReadFile(topologyGoldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with REGEN_TOPOLOGY_GOLDEN=1 on a pre-redesign tree): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got[k] != want[k] {
			t.Errorf("%s: digest %s, want %s (default topology no longer bit-identical to the pre-redesign engine)", k, got[k], want[k])
		}
	}
	if len(got) != len(want) {
		t.Errorf("digest count %d, want %d", len(got), len(want))
	}
}
