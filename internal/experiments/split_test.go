package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

func TestSplitSectionsSmall(t *testing.T) {
	tab, err := SplitSections(Small())
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "split i/d") || !strings.Contains(out, "task-unified") {
		t.Errorf("table malformed:\n%s", out)
	}
}

func TestSplitEntitiesModel(t *testing.T) {
	w := workloads.JPEGCanny(workloads.Small, nil)
	app, err := w.Factory()
	if err != nil {
		t.Fatal(err)
	}
	unified := len(app.Entities())
	app.SplitTaskSections = true
	split := app.Entities()
	// 15 tasks: one extra entity each.
	if len(split) != unified+15 {
		t.Fatalf("split entities = %d, want %d", len(split), unified+15)
	}
	if core.EntityByName(split, "FrontEnd1.text") == nil ||
		core.EntityByName(split, "FrontEnd1.data") == nil {
		t.Error("split entity names missing")
	}
	if core.EntityByName(split, "FrontEnd1") != nil {
		t.Error("unified entity still present after split")
	}
	// Region coverage must be preserved.
	covered := map[int32]bool{}
	for _, e := range split {
		for _, r := range e.Regions {
			covered[int32(r)] = true
		}
	}
	for _, r := range app.AS.Regions() {
		if !covered[int32(r.ID)] {
			t.Errorf("region %s not covered after split", r.Name)
		}
	}
}

func TestMigrationSmall(t *testing.T) {
	tab, err := Migration(Small())
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "migrating misses") {
		t.Errorf("table malformed:\n%s", out)
	}
	// The partitioned row's shift must be tiny — compositionality holds
	// under dynamic scheduling. Parse is brittle; re-derive directly.
	cfg := Small()
	w := workloads.JPEGCanny(cfg.Scale, nil)
	opt, err := core.Optimize(w, core.OptimizeConfig{Platform: cfg.Platform, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	pcMig := cfg.Platform
	pcMig.Sched.AllowMigration = true
	static, err := core.Run(w, core.RunConfig{
		Platform: cfg.Platform, Strategy: core.Partitioned, Alloc: opt.Allocation,
	})
	if err != nil {
		t.Fatal(err)
	}
	mig, err := core.Run(w, core.RunConfig{
		Platform: pcMig, Strategy: core.Partitioned, Alloc: opt.Allocation,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := float64(static.TotalMisses())
	for _, e := range static.Entities {
		o := mig.Entity(e.Name)
		if o == nil {
			continue
		}
		d := float64(e.Misses) - float64(o.Misses)
		if d < 0 {
			d = -d
		}
		if d/total > 0.02 {
			t.Errorf("entity %s shifted %.2f%% under migration (partitioned should be schedule-insensitive)",
				e.Name, d/total*100)
		}
	}
}
