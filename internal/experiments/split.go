package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/workloads"
)

// SplitSections runs experiment X4: the alternative cache organization
// the paper's interval-table scheme "easily allows" (section 4.2) —
// every task's instructions and data in separate exclusive partitions —
// against the baseline task-unified partitioning, both fully optimized.
func SplitSections(cfg Config) (*report.Table, error) {
	unified, err := RunStudy(workloads.JPEGCanny(cfg.Scale, nil), cfg)
	if err != nil {
		return nil, err
	}

	splitWorkload := workloads.JPEGCanny(cfg.Scale, nil)
	base := splitWorkload.Factory
	splitWorkload.Name = "2jpeg+canny(split i/d)"
	splitWorkload.Factory = func() (*core.App, error) {
		app, err := base()
		if err != nil {
			return nil, err
		}
		app.SplitTaskSections = true
		return app, nil
	}
	split, err := RunStudy(splitWorkload, cfg)
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:   "X4: task-unified vs split instruction/data partitions (section 4.2 variant)",
		Headers: []string{"organization", "entities", "alloc units", "L2 misses", "max rel diff"},
	}
	t.AddRow("shared baseline", "-", "-", unified.Shared.TotalMisses(), "-")
	t.AddRow("partitioned, task-unified", len(unified.Part.Entities),
		unified.Opt.Allocation.TotalUnits(), unified.Part.TotalMisses(),
		fmt.Sprintf("%.3f%%", unified.Compose.MaxRelDiff*100))
	t.AddRow("partitioned, split i/d", len(split.Part.Entities),
		split.Opt.Allocation.TotalUnits(), split.Part.TotalMisses(),
		fmt.Sprintf("%.3f%%", split.Compose.MaxRelDiff*100))
	return t, nil
}

// Migration runs experiment X5: the compositionality of both cache
// organizations under dynamic scheduling with task migration, the regime
// the paper's analytical model cannot cover ("in an environment which
// allows task migration ... Y(P_k) cannot be accurately computed") but
// its cache mechanism still serves. Per-entity misses of the partitioned
// system must stay where the static run put them; the shared system's
// move with the schedule.
func Migration(cfg Config) (*report.Table, error) {
	w := workloads.JPEGCanny(cfg.Scale, nil)

	opt, err := core.Optimize(w, cfg.OptimizeConfig())
	if err != nil {
		return nil, err
	}
	run := func(strat core.Strategy, migrate bool) (*core.Result, error) {
		pc := cfg.Platform
		pc.Sched.AllowMigration = migrate
		rc := core.RunConfig{Platform: pc, Strategy: strat}
		if strat == core.Partitioned {
			rc.Alloc = opt.Allocation
		}
		return core.Run(w, rc)
	}
	shStatic, err := run(core.Shared, false)
	if err != nil {
		return nil, err
	}
	shMig, err := run(core.Shared, true)
	if err != nil {
		return nil, err
	}
	ptStatic, err := run(core.Partitioned, false)
	if err != nil {
		return nil, err
	}
	ptMig, err := run(core.Partitioned, true)
	if err != nil {
		return nil, err
	}

	// Largest per-entity relative shift between static and migrating
	// schedules, normalized by total misses (Figure 3's metric applied
	// across schedules instead of against the model).
	shift := func(a, b *core.Result) float64 {
		total := float64(a.TotalMisses())
		if total == 0 {
			return 0
		}
		worst := 0.0
		for _, e := range a.Entities {
			o := b.Entity(e.Name)
			if o == nil {
				continue
			}
			d := float64(e.Misses) - float64(o.Misses)
			if d < 0 {
				d = -d
			}
			if d/total > worst {
				worst = d / total
			}
		}
		return worst
	}

	t := &report.Table{
		Title:   "X5: schedule sensitivity — static assignment vs task migration",
		Headers: []string{"cache", "static misses", "migrating misses", "max entity shift"},
	}
	t.AddRow("shared", shStatic.TotalMisses(), shMig.TotalMisses(),
		fmt.Sprintf("%.2f%%", shift(shStatic, shMig)*100))
	t.AddRow("partitioned", ptStatic.TotalMisses(), ptMig.TotalMisses(),
		fmt.Sprintf("%.2f%%", shift(ptStatic, ptMig)*100))
	return t, nil
}
