package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/scenario"
)

// Flags bundles the CLI knobs that select a harness configuration.
type Flags struct {
	Small         bool
	Runs          int
	Solver        string // mckp | ilp
	ProfileEngine string // stackdist | bank
	ExecEngine    string // merged | word
	Workers       int
}

// ConfigFromFlags resolves the flag spellings into a Config in one
// place. Unknown spellings fail with the valid values spelled out.
func ConfigFromFlags(f Flags) (Config, error) {
	cfg := Default()
	if f.Small {
		cfg = Small()
	}
	if f.Runs != 0 {
		cfg.ProfileRuns = f.Runs
	}
	cfg.Workers = f.Workers
	solver, err := core.ParseSolver(f.Solver)
	if err != nil {
		return cfg, err
	}
	cfg.Solver = solver
	pe, err := profile.ParseEngine(f.ProfileEngine)
	if err != nil {
		return cfg, err
	}
	cfg.Engine = pe
	ee, err := platform.ParseEngine(f.ExecEngine)
	if err != nil {
		return cfg, err
	}
	cfg.Platform.Engine = ee
	return cfg, nil
}

// CommandOutput is one CLI command's rendered artifacts: the exact text
// the legacy command printed, plus the machine-readable documents the
// -json mode emits (each marshals to a versioned report envelope).
type CommandOutput struct {
	Text      string
	Documents []interface{}
}

// commandScenarios names the built-in scenarios each command consumes.
// With a shared Runner the scenarios memoize across commands, so `all`
// simulates each study once no matter how many commands reuse it.
var commandScenarios = map[string][]string{
	"table1":      {ScenarioApp1},
	"table2":      {ScenarioApp2},
	"fig2":        {ScenarioApp1, ScenarioApp2},
	"fig3":        {ScenarioApp1, ScenarioApp2},
	"headline":    {ScenarioApp1, ScenarioApp2, ScenarioMpeg2Big},
	"compose":     {ScenarioJPEG1Solo, ScenarioApp1},
	"granularity": {ScenarioApp1Optimize, ScenarioApp1Column},
	"split":       {ScenarioApp1, ScenarioApp1Split},
	"migration":   {ScenarioApp1, ScenarioApp1Migration},
	"assign":      {ScenarioApp1, ScenarioApp2},
	"curves":      {ScenarioApp1Curves, ScenarioApp2Curves},
}

// allOrder is the command sequence of `compmem all`.
var allOrder = []string{"headline", "table1", "table2", "fig2", "fig3", "compose", "granularity", "split", "migration", "assign"}

// CommandNames lists the scenario-backed CLI commands in usage order.
func CommandNames() []string {
	return []string{"table1", "table2", "fig2", "fig3", "headline", "compose", "granularity", "split", "migration", "assign", "curves", "all"}
}

// RunCommand executes a legacy CLI command through the scenario layer:
// it resolves the command to its built-in scenarios, runs them on the
// Runner (memoized, batched over the worker pool), and renders the
// bit-identical legacy text plus the structured documents.
func RunCommand(cmd string, cfg Config, rn *scenario.Runner) (CommandOutput, error) {
	if cmd == "all" {
		var out CommandOutput
		var b strings.Builder
		for _, c := range allOrder {
			sub, err := RunCommand(c, cfg, rn)
			if err != nil {
				return out, fmt.Errorf("%s: %w", c, err)
			}
			b.WriteString(sub.Text)
			out.Documents = append(out.Documents, sub.Documents...)
		}
		out.Text = b.String()
		return out, nil
	}
	names, ok := commandScenarios[cmd]
	if !ok {
		return CommandOutput{}, fmt.Errorf("unknown command %q", cmd)
	}
	defs := BuiltinScenarios(cfg)
	specs := make([]scenario.Scenario, len(names))
	for i, n := range names {
		specs[i] = defs[n]
	}
	results := rn.RunBatch(specs)
	byName := make(map[string]*scenario.Result, len(results))
	for i, r := range results {
		// The column-caching leg of X2 is expected to fail (the paper's
		// infeasibility point); every other scenario failure fails the
		// command.
		if r.Error != "" && !(cmd == "granularity" && names[i] == ScenarioApp1Column) {
			return CommandOutput{}, fmt.Errorf("scenario %s: %s", names[i], r.Error)
		}
		byName[names[i]] = r
	}
	return renderCommand(cmd, cfg, byName)
}

// renderCommand produces the exact legacy stdout text of one command
// from its scenario results, plus the structured documents.
func renderCommand(cmd string, cfg Config, res map[string]*scenario.Result) (CommandOutput, error) {
	var out CommandOutput
	var b strings.Builder
	println_ := func(v fmt.Stringer) { // fmt.Println(v) equivalent
		b.WriteString(v.String())
		b.WriteByte('\n')
	}
	switch cmd {
	case "table1":
		t := AllocationTableFromResult(res[ScenarioApp1], "Table 1: allocated L2 units, 2 jpegs & canny")
		println_(t)
		out.Documents = append(out.Documents, t)
	case "table2":
		t := AllocationTableFromResult(res[ScenarioApp2], "Table 2: allocated L2 units, mpeg2")
		println_(t)
		out.Documents = append(out.Documents, t)
	case "fig2":
		for _, name := range []string{ScenarioApp1, ScenarioApp2} {
			r := res[name]
			chart := Figure2FromResult(r)
			println_(chart)
			fmt.Fprintf(&b, "total: shared %d vs partitioned %d (%.2fx)\n\n",
				r.Shared.TotalMisses, r.Partitioned.TotalMisses, r.MissRatio())
			out.Documents = append(out.Documents, chart, report.NewEnvelope("figure2.totals", map[string]interface{}{
				"app":         r.Shared.App,
				"shared":      r.Shared.TotalMisses,
				"partitioned": r.Partitioned.TotalMisses,
				"ratio":       r.MissRatio(),
			}))
		}
	case "fig3":
		for _, name := range []string{ScenarioApp1, ScenarioApp2} {
			chart, rep := Figure3FromResult(res[name])
			println_(chart)
			fmt.Fprintf(&b, "compositional at the paper's 2%% threshold: %v (max %.3f%%, mean %.3f%%)\n\n",
				rep.Compositional(0.02), rep.MaxRelDiff*100, rep.MeanRelDiff*100)
			out.Documents = append(out.Documents, chart, report.NewEnvelope("figure3.compose", rep))
		}
	case "headline":
		t, rows := HeadlineFromResults(res[ScenarioApp1], res[ScenarioApp2], res[ScenarioMpeg2Big])
		println_(t)
		out.Documents = append(out.Documents, t, report.NewEnvelope("headline", rows))
	case "compose":
		cr, t := CompositionFromResults(res[ScenarioJPEG1Solo], res[ScenarioApp1])
		println_(t)
		out.Documents = append(out.Documents, t, report.NewEnvelope("composition", cr))
	case "granularity":
		t := GranularityFromResults(cfg, res[ScenarioApp1Optimize], res[ScenarioApp1Column])
		println_(t)
		out.Documents = append(out.Documents, t)
	case "split":
		t := SplitFromResults(res[ScenarioApp1], res[ScenarioApp1Split])
		println_(t)
		out.Documents = append(out.Documents, t)
	case "migration":
		t := MigrationFromResults(res[ScenarioApp1], res[ScenarioApp1Migration])
		println_(t)
		out.Documents = append(out.Documents, t)
	case "assign":
		for _, name := range []string{ScenarioApp1, ScenarioApp2} {
			t := AssignmentFromResult(res[name], cfg.Platform.NumCPUs)
			println_(t)
			out.Documents = append(out.Documents, t)
		}
	case "curves":
		for _, name := range []string{ScenarioApp1Curves, ScenarioApp2Curves} {
			r := res[name]
			b.WriteString(CurvesText(r.Scenario.Workload, r.Curves))
			out.Documents = append(out.Documents, report.NewEnvelope("curves", map[string]interface{}{
				"app":    r.Scenario.Workload,
				"curves": r.Curves,
			}))
		}
	default:
		return out, fmt.Errorf("unknown command %q", cmd)
	}
	out.Text = b.String()
	return out, nil
}
