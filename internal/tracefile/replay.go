package tracefile

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/kpn"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// App reconstructs one fresh, runnable application instance from the
// trace: the exact address-space layout (rebuilt with AllocAt so every
// region keeps its captured base, and therefore its cache-index
// behavior), the exact task/FIFO/frame topology, and task bodies that
// interpret the recorded streams instead of running the functional apps.
//
// Replay is bit-identical to live execution. Each body re-issues the
// same Ctx-level operations in the same program order; FIFO operations
// go through the real FIFO (with scratch tokens — payload bytes don't
// affect timing), regenerating the identical blocking conditions,
// ring-buffer traffic and channel statistics; and Exec calls are
// replayed per recorded call, so slice-budget yields and the fractional
// CPI accumulator land on the same cycle. Everything an engine observes
// from a replayed app is therefore exactly what the live app produced.
func (t *Trace) App() (*core.App, error) {
	h := &t.Header
	as := mem.NewAddressSpace()
	regs := make([]*mem.Region, len(h.Regions))
	for i, ri := range h.Regions {
		r, err := as.AllocAt(ri.Name, mem.Kind(ri.Kind), ri.Owner, ri.Base, ri.Size)
		if err != nil {
			return nil, fmt.Errorf("tracefile: rebuilding address space: %w", err)
		}
		regs[i] = r
	}
	section := func(id int) *mem.Region {
		if id < 0 {
			return nil
		}
		return regs[id]
	}
	app := &core.App{
		Name:              h.App,
		AS:                as,
		SplitTaskSections: h.SplitTaskSections,
		ApplData:          section(h.ApplData),
		ApplBSS:           section(h.ApplBSS),
		RTData:            section(h.RTData),
		RTBSS:             section(h.RTBSS),
	}
	fifos := make([]*kpn.FIFO, len(h.FIFOs))
	for i, fi := range h.FIFOs {
		fifos[i] = &kpn.FIFO{
			Name: fi.Name, Region: regs[fi.Region], TokenBytes: fi.TokenBytes, Cap: fi.Cap,
		}
	}
	app.FIFOs = fifos
	for _, fi := range h.Frames {
		app.Frames = append(app.Frames, &kpn.Frame{
			Name: fi.Name, Region: regs[fi.Region], Width: fi.Width, Height: fi.Height, Pixel: fi.Pixel,
		})
	}
	for _, id := range h.Buffers {
		app.Buffers = append(app.Buffers, regs[id])
	}
	for i, ti := range h.Tasks {
		p := &kpn.Process{
			Name:    ti.Name,
			Body:    replayBody(t.streams[i], regs, fifos),
			Code:    regs[ti.Code],
			Stack:   section(ti.Stack),
			Heap:    section(ti.Heap),
			HotCode: ti.HotCode,
		}
		app.Tasks = append(app.Tasks, &core.Task{Proc: p, CPU: ti.CPU})
	}
	return app, nil
}

// replayUvarint decodes a uvarint from a pre-validated stream with
// inline fast paths for the 1- and 2-byte encodings that dominate real
// traces (region indices and small address deltas). A varint that fails
// to decode means the validated stream was corrupted in memory: panic
// (surfacing as a task failure).
func replayUvarint(data []byte, pos int) (uint64, int) {
	b0 := data[pos]
	if b0 < 0x80 {
		return uint64(b0), 1
	}
	// A continuation bit on a validated stream guarantees another byte.
	if b1 := data[pos+1]; b1 < 0x80 {
		return uint64(b0&0x7f) | uint64(b1)<<7, 2
	}
	v, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		panic(fmt.Sprintf("tracefile: validated stream corrupt during replay: bad uvarint at offset %d", pos))
	}
	return v, n
}

// replayVarint is replayUvarint with zigzag decoding.
func replayVarint(data []byte, pos int) (int64, int) {
	u, n := replayUvarint(data, pos)
	v := int64(u >> 1)
	if u&1 != 0 {
		v = ^v
	}
	return v, n
}

// replayBody returns a task body that interprets one recorded stream.
// This is the hot loop of every warm (trace-hit) profiling or execution
// run, decoding tens of millions of events per paper-scale app, so it
// decodes inline instead of going through the generic walker: the
// stream was fully validated at decode time, which lets the loop skip
// per-event error handling and bounds rechecks (corruption panics,
// surfacing as a task failure). The differential replay ≡ live tests
// pin this loop's equivalence with the recorded semantics.
func replayBody(stream []byte, regs []*mem.Region, fifos []*kpn.FIFO) func(*kpn.Ctx) {
	regionIDs := make([]mem.RegionID, len(regs))
	for i, r := range regs {
		regionIDs[i] = r.ID
	}
	return func(c *kpn.Ctx) {
		toks := make([][]byte, len(fifos))
		tok := func(i int) []byte {
			if toks[i] == nil {
				toks[i] = make([]byte, fifos[i].TokenBytes)
			}
			return toks[i]
		}
		var prev uint64
		for pos := 0; pos < len(stream); {
			op := stream[pos]
			pos++
			switch op {
			case evExec:
				n, sz := replayUvarint(stream, pos)
				pos += sz
				c.Exec(n)
			case evRead4, evWrite4, evRead1, evWrite1:
				r, sz := replayUvarint(stream, pos)
				pos += sz
				d, sz2 := replayVarint(stream, pos)
				pos += sz2
				addr := uint64(int64(prev) + d)
				prev = addr
				aop, size := accessClass(op)
				c.ChargeAccess(trace.Access{Addr: addr, Size: size, Op: aop, Region: regionIDs[r]})
			case evBulkRead, evBulkWrite:
				r, sz := replayUvarint(stream, pos)
				pos += sz
				off, sz2 := replayUvarint(stream, pos)
				pos += sz2
				n, sz3 := replayUvarint(stream, pos)
				pos += sz3
				bop := trace.Read
				if op == evBulkWrite {
					bop = trace.Write
				}
				c.ChargeBulk(regs[r], off, n, bop)
			case evFifoWrite, evFifoRdOK, evFifoRdEOF, evFifoClose:
				f, sz := replayUvarint(stream, pos)
				pos += sz
				switch op {
				case evFifoWrite:
					fifos[f].Write(c, tok(int(f)))
				case evFifoRdOK:
					if !fifos[f].Read(c, tok(int(f))) {
						panic(fmt.Sprintf("tracefile: replay divergence: EOF on %q where a token was recorded", fifos[f].Name))
					}
				case evFifoRdEOF:
					if fifos[f].Read(c, tok(int(f))) {
						panic(fmt.Sprintf("tracefile: replay divergence: token on %q where EOF was recorded", fifos[f].Name))
					}
				default:
					fifos[f].Close(c)
				}
			default:
				panic(fmt.Sprintf("tracefile: validated stream corrupt during replay: opcode %#x at offset %d", op, pos-1))
			}
		}
	}
}

// Workload wraps the trace as a core.Workload whose Factory yields a
// fresh replay instance per call — a drop-in substitute for the live
// functional workload in the profiler and both engines.
func (t *Trace) Workload(name string) core.Workload {
	if name == "" {
		name = t.Header.App
	}
	return core.Workload{Name: name, Factory: t.App}
}

// RegisterWorkload registers the trace in the workload registry under
// name, making it addressable from scenario specs and the serve API like
// any built-in workload. This is the importer path for external traces:
// scale and seed in the build config are ignored — a trace is one
// concrete recording.
func RegisterWorkload(name string, t *Trace) error {
	return workloads.Register(name, func(workloads.BuildConfig) core.Workload {
		return t.Workload(name)
	})
}
