// Package tracefile implements the CMTR trace container: a compact,
// versioned binary format that records the complete Ctx-level operation
// stream of every task in a workload, plus the application topology
// needed to replay that stream through the stack-distance profiler and
// both execution engines without re-running the functional apps.
//
// A trace is a complete substitute for live functional execution because
// the system is deterministic at the Ctx API boundary: tasks run in
// strict handoff (exactly one executes at any instant), FIFO blocking
// conditions depend only on token counts, and every charged cycle is a
// pure function of the operation stream, the memory topology and the
// schedule. Recording the stream once therefore reproduces — bit for bit
// — the per-entity statistics, makespans and miss curves of the original
// run under ANY platform configuration, engine or partitioning strategy.
//
// Wire layout (all integers big-endian):
//
//	offset  size  field
//	0       4     magic "CMTR"
//	4       2     format version (currently 1)
//	6       2     flags (must be 0)
//	8       4     header length H
//	12      H     header, canonical JSON (Header)
//	12+H    ...   per-task event streams, concatenated in task order
//	end-4   4     CRC-32C (Castagnoli) over all preceding bytes
//
// Each event stream is a byte-oriented opcode sequence. Word accesses
// carry their address as a signed varint delta from the previous word
// access of the same stream (bulk transfers do not update the delta
// base), which compresses the strided pixel walks of the multimedia
// kernels to 2-3 bytes per access. The container is mmap-friendly:
// decoding slices the streams out of the input buffer without copying.
package tracefile

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/mem"
	"repro/internal/trace"
)

// Magic identifies a CMTR trace container.
const Magic = "CMTR"

// Version is the current wire-format version.
const Version = 1

// Event stream opcodes. The four word-access opcodes fold the
// (op, size) pair of a trace.Access into the opcode byte; exec and bulk
// carry uvarint operands; FIFO events carry the fifo's index in the
// header table. FIFO reads record the observed outcome (token vs EOF) so
// replay can verify it reproduces the recorded dataflow exactly.
const (
	evExec      = 0x00 // uvarint n            — Ctx.Exec(n)
	evRead4     = 0x01 // uvarint region, svarint Δaddr — Load32
	evWrite4    = 0x02 // uvarint region, svarint Δaddr — Store32
	evRead1     = 0x03 // uvarint region, svarint Δaddr — Load8
	evWrite1    = 0x04 // uvarint region, svarint Δaddr — Store8
	evBulkRead  = 0x05 // uvarint region, off, len — LoadBytes
	evBulkWrite = 0x06 // uvarint region, off, len — StoreBytes
	evFifoWrite = 0x07 // uvarint fifo — FIFO.Write (one token)
	evFifoRdOK  = 0x08 // uvarint fifo — FIFO.Read returning a token
	evFifoRdEOF = 0x09 // uvarint fifo — FIFO.Read returning EOF
	evFifoClose = 0x0a // uvarint fifo — FIFO.Close
	evCount     = 0x0b
)

// maxExecRun bounds a single evExec operand; it is far above anything a
// real capture produces and exists only so a corrupt trace cannot demand
// an absurd replay.
const maxExecRun = 1 << 40

// RegionInfo describes one region of the captured address space, in
// allocation (= address) order; its index in Header.Regions is its dense
// mem.RegionID.
type RegionInfo struct {
	Name  string `json:"name"`
	Kind  uint8  `json:"kind"`
	Owner string `json:"owner,omitempty"`
	Base  uint64 `json:"base"`
	Size  uint64 `json:"size"`
}

// TaskInfo describes one task. Region references are indices into
// Header.Regions; -1 means absent (no stack/heap).
type TaskInfo struct {
	Name    string `json:"name"`
	CPU     int    `json:"cpu"`
	Code    int    `json:"code"`
	Stack   int    `json:"stack"`
	Heap    int    `json:"heap"`
	HotCode uint64 `json:"hot_code,omitempty"`
}

// FIFOInfo describes one FIFO channel; Region indexes Header.Regions.
type FIFOInfo struct {
	Name       string `json:"name"`
	Region     int    `json:"region"`
	TokenBytes int    `json:"token_bytes"`
	Cap        int    `json:"cap"`
}

// FrameInfo describes one frame buffer; Region indexes Header.Regions.
type FrameInfo struct {
	Name   string `json:"name"`
	Region int    `json:"region"`
	Width  int    `json:"width"`
	Height int    `json:"height"`
	Pixel  int    `json:"pixel"`
}

// StreamInfo frames one task's event stream within the payload.
type StreamInfo struct {
	Events uint64 `json:"events"`
	Bytes  uint64 `json:"bytes"`
}

// Meta identifies what was captured. Workload/Scale/Seed are the trace
// stage's content key; imported traces may carry foreign names.
type Meta struct {
	Workload string `json:"workload"`
	Scale    string `json:"scale"`
	Seed     uint64 `json:"seed"`
}

// Header is the JSON-encoded topology and framing block of a trace.
type Header struct {
	Meta Meta `json:"meta"`

	App               string       `json:"app"`
	SplitTaskSections bool         `json:"split_task_sections,omitempty"`
	Regions           []RegionInfo `json:"regions"`
	Tasks             []TaskInfo   `json:"tasks"`
	FIFOs             []FIFOInfo   `json:"fifos,omitempty"`
	Frames            []FrameInfo  `json:"frames,omitempty"`
	Buffers           []int        `json:"buffers,omitempty"`
	ApplData          int          `json:"appl_data"`
	ApplBSS           int          `json:"appl_bss"`
	RTData            int          `json:"rt_data"`
	RTBSS             int          `json:"rt_bss"`

	// Totals over all streams, cross-checked against the streams on
	// decode.
	Events  uint64       `json:"events"`
	Instrs  uint64       `json:"instrs"`
	Streams []StreamInfo `json:"streams"`
}

// Totals tallies the event classes of a validated trace.
type Totals struct {
	Events    uint64
	Instrs    uint64
	Accesses  uint64 // word-granular access events
	BulkOps   uint64
	BulkBytes uint64
	FIFOOps   uint64
}

// Trace is a decoded, validated trace. The stream slices alias the
// encoded buffer, which callers must not mutate.
type Trace struct {
	Header  Header
	Totals  Totals
	data    []byte
	streams [][]byte
}

// Bytes returns the encoded container, suitable for WriteFile or the
// content-addressed store. The caller must not mutate it.
func (t *Trace) Bytes() []byte { return t.data }

// Size returns the encoded container size in bytes.
func (t *Trace) Size() int { return len(t.data) }

// Stream returns task i's encoded event stream (aliasing the container;
// the caller must not mutate it).
func (t *Trace) Stream(i int) []byte { return t.streams[i] }

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	frameLen   = 12 // magic + version + flags + header length
	trailerLen = 4  // CRC-32C
)

// addressSpaceBase mirrors mem.NewAddressSpace's first valid address.
const addressSpaceBase = 0x1000

// addressSpaceLimit mirrors the 4 GiB limit of mem.NewAddressSpace.
const addressSpaceLimit = 1 << 32

// maxCPUID bounds the per-task CPU index accepted from a trace header; a
// platform with more processors than this is not representable anyway.
const maxCPUID = 1 << 16

func (h *Header) validate() error {
	if h.App == "" {
		return fmt.Errorf("tracefile: header has empty app name")
	}
	if len(h.Regions) == 0 {
		return fmt.Errorf("tracefile: header has no regions")
	}
	next := uint64(addressSpaceBase)
	for i, ri := range h.Regions {
		if ri.Name == "" {
			return fmt.Errorf("tracefile: region %d has empty name", i)
		}
		if ri.Kind >= uint8(mem.KindRTBSS)+1 {
			return fmt.Errorf("tracefile: region %q has unknown kind %d", ri.Name, ri.Kind)
		}
		if ri.Size == 0 {
			return fmt.Errorf("tracefile: region %q has zero size", ri.Name)
		}
		if ri.Base < next {
			return fmt.Errorf("tracefile: region %q at %#x overlaps previous region or address-space base", ri.Name, ri.Base)
		}
		if ri.Base+ri.Size < ri.Base || ri.Base+ri.Size > addressSpaceLimit {
			return fmt.Errorf("tracefile: region %q (%#x+%#x) exceeds the 32-bit address space", ri.Name, ri.Base, ri.Size)
		}
		next = ri.Base + ri.Size
	}
	regionOK := func(id int) bool { return id >= 0 && id < len(h.Regions) }
	sectionOK := func(id int) bool { return id == -1 || regionOK(id) }
	if len(h.Tasks) == 0 {
		return fmt.Errorf("tracefile: header has no tasks")
	}
	names := make(map[string]bool, len(h.Tasks))
	for i, ti := range h.Tasks {
		if ti.Name == "" {
			return fmt.Errorf("tracefile: task %d has empty name", i)
		}
		if names[ti.Name] {
			return fmt.Errorf("tracefile: duplicate task name %q", ti.Name)
		}
		names[ti.Name] = true
		if ti.CPU < 0 || ti.CPU >= maxCPUID {
			return fmt.Errorf("tracefile: task %q has invalid cpu %d", ti.Name, ti.CPU)
		}
		if !regionOK(ti.Code) {
			return fmt.Errorf("tracefile: task %q has invalid code region %d", ti.Name, ti.Code)
		}
		if !sectionOK(ti.Stack) || !sectionOK(ti.Heap) {
			return fmt.Errorf("tracefile: task %q has invalid stack/heap region", ti.Name)
		}
	}
	for _, fi := range h.FIFOs {
		if !regionOK(fi.Region) {
			return fmt.Errorf("tracefile: fifo %q has invalid region %d", fi.Name, fi.Region)
		}
		if fi.TokenBytes <= 0 || fi.Cap <= 0 {
			return fmt.Errorf("tracefile: fifo %q has invalid geometry %dB x %d", fi.Name, fi.TokenBytes, fi.Cap)
		}
		need := uint64(fi.TokenBytes) * uint64(fi.Cap)
		if need > h.Regions[fi.Region].Size {
			return fmt.Errorf("tracefile: fifo %q (%d bytes) exceeds its region", fi.Name, need)
		}
	}
	for _, fi := range h.Frames {
		if !regionOK(fi.Region) {
			return fmt.Errorf("tracefile: frame %q has invalid region %d", fi.Name, fi.Region)
		}
		if fi.Width <= 0 || fi.Height <= 0 || fi.Pixel <= 0 {
			return fmt.Errorf("tracefile: frame %q has invalid geometry %dx%dx%d", fi.Name, fi.Width, fi.Height, fi.Pixel)
		}
		need := uint64(fi.Width) * uint64(fi.Height) * uint64(fi.Pixel)
		if need > h.Regions[fi.Region].Size {
			return fmt.Errorf("tracefile: frame %q (%d bytes) exceeds its region", fi.Name, need)
		}
	}
	for _, id := range h.Buffers {
		if !regionOK(id) {
			return fmt.Errorf("tracefile: buffer references invalid region %d", id)
		}
	}
	for _, id := range []int{h.ApplData, h.ApplBSS, h.RTData, h.RTBSS} {
		if !sectionOK(id) {
			return fmt.Errorf("tracefile: section references invalid region %d", id)
		}
	}
	if len(h.Streams) != len(h.Tasks) {
		return fmt.Errorf("tracefile: %d streams for %d tasks", len(h.Streams), len(h.Tasks))
	}
	return nil
}

// event is one decoded stream event.
type event struct {
	op     byte
	n      uint64 // exec count / bulk length
	region int
	addr   uint64 // absolute word-access address
	off    uint64 // bulk offset
	fifo   int
}

// walker decodes one event stream sequentially, tracking the delta base.
// It validates framing (opcodes, varints, table indices); deep semantic
// bounds are the caller's job.
type walker struct {
	data    []byte
	pos     int
	prev    uint64
	regions int
	fifos   int
}

func (w *walker) more() bool { return w.pos < len(w.data) }

func (w *walker) uvarint() (uint64, error) {
	v, n := binary.Uvarint(w.data[w.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("tracefile: bad uvarint at stream offset %d", w.pos)
	}
	w.pos += n
	return v, nil
}

func (w *walker) svarint() (int64, error) {
	v, n := binary.Varint(w.data[w.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("tracefile: bad varint at stream offset %d", w.pos)
	}
	w.pos += n
	return v, nil
}

func (w *walker) next() (event, error) {
	var ev event
	ev.op = w.data[w.pos]
	w.pos++
	switch ev.op {
	case evExec:
		n, err := w.uvarint()
		if err != nil {
			return ev, err
		}
		if n > maxExecRun {
			return ev, fmt.Errorf("tracefile: exec run of %d instructions out of range", n)
		}
		ev.n = n
	case evRead4, evWrite4, evRead1, evWrite1:
		r, err := w.uvarint()
		if err != nil {
			return ev, err
		}
		if r >= uint64(w.regions) {
			return ev, fmt.Errorf("tracefile: access references region %d of %d", r, w.regions)
		}
		d, err := w.svarint()
		if err != nil {
			return ev, err
		}
		ev.region = int(r)
		ev.addr = uint64(int64(w.prev) + d)
		w.prev = ev.addr
	case evBulkRead, evBulkWrite:
		r, err := w.uvarint()
		if err != nil {
			return ev, err
		}
		if r >= uint64(w.regions) {
			return ev, fmt.Errorf("tracefile: bulk references region %d of %d", r, w.regions)
		}
		off, err := w.uvarint()
		if err != nil {
			return ev, err
		}
		n, err := w.uvarint()
		if err != nil {
			return ev, err
		}
		ev.region, ev.off, ev.n = int(r), off, n
	case evFifoWrite, evFifoRdOK, evFifoRdEOF, evFifoClose:
		f, err := w.uvarint()
		if err != nil {
			return ev, err
		}
		if f >= uint64(w.fifos) {
			return ev, fmt.Errorf("tracefile: fifo event references fifo %d of %d", f, w.fifos)
		}
		ev.fifo = int(f)
	default:
		return ev, fmt.Errorf("tracefile: unknown opcode %#x at stream offset %d", ev.op, w.pos-1)
	}
	return ev, nil
}

// accessClass maps a word-access opcode back to (op, size).
func accessClass(op byte) (trace.Op, uint8) {
	switch op {
	case evRead4:
		return trace.Read, 4
	case evWrite4:
		return trace.Write, 4
	case evRead1:
		return trace.Read, 1
	default:
		return trace.Write, 1
	}
}

// validateStreams walks every stream, checking deep bounds (addresses
// and bulk ranges inside their regions) and the header's event/instr
// totals, and accumulates Totals. No allocation is proportional to any
// count declared in the header.
func (t *Trace) validateStreams() error {
	h := &t.Header
	var tot Totals
	for si, stream := range t.streams {
		w := walker{data: stream, regions: len(h.Regions), fifos: len(h.FIFOs)}
		var events uint64
		for w.more() {
			ev, err := w.next()
			if err != nil {
				return fmt.Errorf("%w (task %q)", err, h.Tasks[si].Name)
			}
			events++
			switch ev.op {
			case evExec:
				tot.Instrs += ev.n
			case evRead4, evWrite4, evRead1, evWrite1:
				_, size := accessClass(ev.op)
				ri := h.Regions[ev.region]
				if ev.addr < ri.Base || ev.addr+uint64(size) > ri.Base+ri.Size {
					return fmt.Errorf("tracefile: task %q: access at %#x outside region %q", h.Tasks[si].Name, ev.addr, ri.Name)
				}
				tot.Accesses++
			case evBulkRead, evBulkWrite:
				ri := h.Regions[ev.region]
				if ev.n == 0 || ev.off+ev.n < ev.off || ev.off+ev.n > ri.Size {
					return fmt.Errorf("tracefile: task %q: bulk %d@%d outside region %q", h.Tasks[si].Name, ev.n, ev.off, ri.Name)
				}
				tot.BulkOps++
				tot.BulkBytes += ev.n
			default:
				tot.FIFOOps++
			}
		}
		if events != h.Streams[si].Events {
			return fmt.Errorf("tracefile: task %q: %d events, header declares %d", h.Tasks[si].Name, events, h.Streams[si].Events)
		}
		tot.Events += events
	}
	if tot.Events != h.Events {
		return fmt.Errorf("tracefile: %d events, header declares %d", tot.Events, h.Events)
	}
	if tot.Instrs != h.Instrs {
		return fmt.Errorf("tracefile: %d instructions, header declares %d", tot.Instrs, h.Instrs)
	}
	t.Totals = tot
	return nil
}

// Decode parses and fully validates an encoded trace container. The
// returned Trace aliases data; the caller must not mutate it. Corruption
// anywhere in the container — flipped bits, truncation, bad framing,
// out-of-range references — yields an error, never a panic, and never an
// allocation proportional to a corrupt declared size.
func Decode(data []byte) (*Trace, error) {
	if len(data) < frameLen+trailerLen {
		return nil, fmt.Errorf("tracefile: %d bytes is too short for a trace container", len(data))
	}
	if string(data[:4]) != Magic {
		return nil, fmt.Errorf("tracefile: bad magic %q", data[:4])
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != Version {
		return nil, fmt.Errorf("tracefile: unsupported version %d (want %d)", v, Version)
	}
	if f := binary.BigEndian.Uint16(data[6:8]); f != 0 {
		return nil, fmt.Errorf("tracefile: unsupported flags %#x", f)
	}
	body := data[:len(data)-trailerLen]
	want := binary.BigEndian.Uint32(data[len(data)-trailerLen:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, fmt.Errorf("tracefile: checksum mismatch: %#08x != %#08x", got, want)
	}
	hl := binary.BigEndian.Uint32(data[8:12])
	if uint64(hl) > uint64(len(body)-frameLen) {
		return nil, fmt.Errorf("tracefile: header length %d exceeds container", hl)
	}
	t := &Trace{data: data}
	if err := json.Unmarshal(body[frameLen:frameLen+int(hl)], &t.Header); err != nil {
		return nil, fmt.Errorf("tracefile: decoding header: %w", err)
	}
	if err := t.Header.validate(); err != nil {
		return nil, err
	}
	payload := body[frameLen+int(hl):]
	t.streams = make([][]byte, len(t.Header.Streams))
	var off uint64
	for i, si := range t.Header.Streams {
		if si.Bytes > uint64(len(payload))-off {
			return nil, fmt.Errorf("tracefile: stream %d (%d bytes) exceeds payload", i, si.Bytes)
		}
		t.streams[i] = payload[off : off+si.Bytes]
		off += si.Bytes
	}
	if off != uint64(len(payload)) {
		return nil, fmt.Errorf("tracefile: %d trailing payload bytes after streams", uint64(len(payload))-off)
	}
	if err := t.validateStreams(); err != nil {
		return nil, err
	}
	return t, nil
}

// assemble encodes a header and streams into a container and round-trips
// it through Decode, so every trace ever handed out has passed full
// validation.
func assemble(h Header, streams [][]byte) (*Trace, error) {
	hb, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("tracefile: encoding header: %w", err)
	}
	total := frameLen + len(hb)
	for _, s := range streams {
		total += len(s)
	}
	total += trailerLen
	buf := make([]byte, 0, total)
	buf = append(buf, Magic...)
	buf = binary.BigEndian.AppendUint16(buf, Version)
	buf = binary.BigEndian.AppendUint16(buf, 0)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(hb)))
	buf = append(buf, hb...)
	for _, s := range streams {
		buf = append(buf, s...)
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return Decode(buf)
}

// ReadFile loads and validates a trace container from disk.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// WriteFile writes the encoded container to path.
func (t *Trace) WriteFile(path string) error {
	return os.WriteFile(path, t.data, 0o644)
}
