package tracefile

import (
	"bytes"
	"testing"
)

// FuzzDecode hardens the trace decoder against arbitrary input: corrupt
// containers — truncated, bit-flipped, bad magic, hostile headers or
// event streams — must return an error, never panic, and never allocate
// proportionally to a forged declared size. A trace that does decode
// must be self-consistent: its encoded form is the input, and it decodes
// again to the same totals.
func FuzzDecode(f *testing.F) {
	tr, err := Capture(miniWorkload(), Meta{Workload: "mini", Scale: "small", Seed: 0})
	if err != nil {
		f.Fatal(err)
	}
	data := tr.Bytes()
	f.Add(data)
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(data[:len(data)/2])
	for _, off := range []int{5, 9, 20, len(data) / 2, len(data) - 2} {
		mut := bytes.Clone(data)
		mut[off] ^= 0x41
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, in []byte) {
		tr, err := Decode(in)
		if err != nil {
			return
		}
		if !bytes.Equal(tr.Bytes(), in) {
			t.Fatal("decoded trace does not round-trip its input")
		}
		again, err := Decode(tr.Bytes())
		if err != nil {
			t.Fatalf("re-decode of valid trace failed: %v", err)
		}
		if again.Totals != tr.Totals {
			t.Fatalf("re-decode totals drifted: %+v vs %+v", again.Totals, tr.Totals)
		}
	})
}
