package tracefile

import (
	"bytes"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
)

// TestWireFormatGolden pins the trace container byte for byte. Traces
// persisted by one build (durable store records, exported .ctr files,
// external importers) must be readable by every later build of the same
// Version, so any drift in the frame layout, header JSON, event opcodes,
// varint encoding or CRC must fail here — and must come with a Version
// bump. Regenerate with REGEN_TRACE_GOLDEN=1 after an intentional
// format change.
func TestWireFormatGolden(t *testing.T) {
	tr := captureMini(t)
	data := tr.Bytes()

	// Frame prefix, pinned inline: magic, version 1, flags 0.
	const wantPrefix = "434d5452" + "0001" + "0000"
	if got := hex.EncodeToString(data[:8]); got != wantPrefix {
		t.Fatalf("frame prefix drifted:\n got %s\nwant %s", got, wantPrefix)
	}

	path := filepath.Join("testdata", "mini_golden.ctr")
	if os.Getenv("REGEN_TRACE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", path, len(data))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with REGEN_TRACE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(data, want) {
		i := 0
		for i < len(data) && i < len(want) && data[i] == want[i] {
			i++
		}
		t.Fatalf("trace wire format drifted: %d vs %d bytes, first difference at offset %d; "+
			"if intentional, bump Version and run REGEN_TRACE_GOLDEN=1 go test ./internal/tracefile/",
			len(data), len(want), i)
	}
	// The golden file itself must decode (guards against a stale regen).
	if _, err := Decode(want); err != nil {
		t.Fatalf("golden file does not decode: %v", err)
	}
}
