package tracefile

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/kpn"
	"repro/internal/mem"
	"repro/internal/trace"
)

// taskRecorder accumulates one task's encoded event stream. It
// implements kpn.Recorder; the kpn layer guarantees calls arrive in the
// task's program order with FIFO-internal traffic suppressed.
type taskRecorder struct {
	fifos  map[*kpn.FIFO]int
	buf    []byte
	events uint64
	instrs uint64
	prev   uint64
	err    error
}

func (r *taskRecorder) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// reserve guarantees room for one maximal event record. Paper-scale
// streams reach tens of megabytes; explicit doubling keeps total realloc
// copy traffic at ~1x the final size, where append's large-slice growth
// factor would make it ~4x.
func (r *taskRecorder) reserve() {
	const maxEvent = 1 + 3*binary.MaxVarintLen64
	if cap(r.buf)-len(r.buf) >= maxEvent {
		return
	}
	next := make([]byte, len(r.buf), max(4096, 2*cap(r.buf)))
	copy(next, r.buf)
	r.buf = next
}

func (r *taskRecorder) RecordExec(n uint64) {
	r.reserve()
	r.buf = append(r.buf, evExec)
	r.buf = binary.AppendUvarint(r.buf, n)
	r.events++
	r.instrs += n
}

func (r *taskRecorder) RecordAccess(a trace.Access) {
	var op byte
	switch {
	case a.Op == trace.Read && a.Size == 4:
		op = evRead4
	case a.Op == trace.Write && a.Size == 4:
		op = evWrite4
	case a.Op == trace.Read && a.Size == 1:
		op = evRead1
	case a.Op == trace.Write && a.Size == 1:
		op = evWrite1
	default:
		r.fail(fmt.Errorf("tracefile: unencodable access op=%d size=%d", a.Op, a.Size))
		return
	}
	r.reserve()
	r.buf = append(r.buf, op)
	r.buf = binary.AppendUvarint(r.buf, uint64(a.Region))
	r.buf = binary.AppendVarint(r.buf, int64(a.Addr)-int64(r.prev))
	r.prev = a.Addr
	r.events++
}

func (r *taskRecorder) RecordBulk(region mem.RegionID, off, n uint64, op trace.Op) {
	code := byte(evBulkRead)
	if op == trace.Write {
		code = evBulkWrite
	}
	r.reserve()
	r.buf = append(r.buf, code)
	r.buf = binary.AppendUvarint(r.buf, uint64(region))
	r.buf = binary.AppendUvarint(r.buf, off)
	r.buf = binary.AppendUvarint(r.buf, n)
	r.events++
}

func (r *taskRecorder) fifoEvent(code byte, f *kpn.FIFO) {
	idx, ok := r.fifos[f]
	if !ok {
		r.fail(fmt.Errorf("tracefile: fifo %q is not part of the captured app", f.Name))
		return
	}
	r.reserve()
	r.buf = append(r.buf, code)
	r.buf = binary.AppendUvarint(r.buf, uint64(idx))
	r.events++
}

func (r *taskRecorder) RecordFIFOWrite(f *kpn.FIFO) { r.fifoEvent(evFifoWrite, f) }

func (r *taskRecorder) RecordFIFORead(f *kpn.FIFO, ok bool) {
	if ok {
		r.fifoEvent(evFifoRdOK, f)
	} else {
		r.fifoEvent(evFifoRdEOF, f)
	}
}

func (r *taskRecorder) RecordFIFOClose(f *kpn.FIFO) { r.fifoEvent(evFifoClose, f) }

// zeroMemory is the free memory system of the capture run: the recorded
// stream is timing-independent, so capture only needs the functional
// side effects, not a cache model. It is deliberately not a
// kpn.LineMemory, which drives the Ctx word-granularly.
type zeroMemory struct{}

func (zeroMemory) AccessAt(trace.Access, uint64) uint64 { return 0 }

const (
	// captureSliceBudget is the per-RunSlice cycle budget; effectively
	// unbounded so tasks only yield on FIFO blocking or completion.
	captureSliceBudget = 1 << 40
	// captureMaxCycles aborts a runaway functional app.
	captureMaxCycles = 1 << 50
)

// Capture builds one fresh instance of the workload and records it.
func Capture(w core.Workload, meta Meta) (*Trace, error) {
	app, err := w.Factory()
	if err != nil {
		return nil, fmt.Errorf("tracefile: building %q for capture: %w", w.Name, err)
	}
	return CaptureApp(app, meta)
}

// CaptureApp runs app functionally to completion — one core, free
// memory, unbounded slices — recording every task's Ctx-level operation
// stream, and returns the encoded trace. The app is consumed (apps run
// exactly once).
//
// The recorded stream is independent of everything this runner chooses:
// capture scheduling cannot reorder a task's own operations (program
// order), and FIFO data flow is deterministic by Kahn semantics, so the
// same streams emerge under any fair schedule and any memory timing.
func CaptureApp(app *core.App, meta Meta) (*Trace, error) {
	fifoIdx := make(map[*kpn.FIFO]int, len(app.FIFOs))
	for i, f := range app.FIFOs {
		fifoIdx[f] = i
	}
	procs := make([]*kpn.Process, len(app.Tasks))
	recs := make([]*taskRecorder, len(app.Tasks))
	for i, t := range app.Tasks {
		rec := &taskRecorder{fifos: fifoIdx}
		t.Proc.Recorder = rec
		procs[i], recs[i] = t.Proc, rec
	}
	kill := func() {
		for _, p := range procs {
			p.Kill()
		}
	}
	c := cpu.New(cpu.Config{ID: 0, Name: "capture", BaseCPI: 1})
	for _, p := range procs {
		p.Start()
	}
	for {
		alive, progress := false, false
		for _, p := range procs {
			if s := p.State(); s == kpn.Done || s == kpn.Failed {
				continue
			}
			alive = true
			if !p.Runnable() {
				continue
			}
			y := p.RunSlice(c, zeroMemory{}, captureSliceBudget)
			progress = true
			if y.Reason == kpn.YieldFailed {
				kill()
				return nil, fmt.Errorf("tracefile: capturing %q: task %q failed: %w", app.Name, p.Name, y.Err)
			}
			if c.Now() > captureMaxCycles {
				kill()
				return nil, fmt.Errorf("tracefile: capturing %q: runaway after %d cycles", app.Name, c.Now())
			}
		}
		if !alive {
			break
		}
		if !progress {
			blocked := make([]string, 0, len(procs))
			for _, p := range procs {
				if p.State() != kpn.Done {
					blocked = append(blocked, p.Name)
				}
			}
			kill()
			return nil, fmt.Errorf("tracefile: capturing %q: deadlock, blocked tasks: %s", app.Name, strings.Join(blocked, ", "))
		}
	}
	for i, rec := range recs {
		if rec.err != nil {
			return nil, fmt.Errorf("tracefile: capturing %q task %q: %w", app.Name, app.Tasks[i].Proc.Name, rec.err)
		}
	}
	return encodeApp(app, recs, meta)
}

// encodeApp assembles the container from the finished app's topology and
// the recorded streams.
func encodeApp(app *core.App, recs []*taskRecorder, meta Meta) (*Trace, error) {
	sectionID := func(r *mem.Region) int {
		if r == nil {
			return -1
		}
		return int(r.ID)
	}
	h := Header{
		Meta:              meta,
		App:               app.Name,
		SplitTaskSections: app.SplitTaskSections,
		ApplData:          sectionID(app.ApplData),
		ApplBSS:           sectionID(app.ApplBSS),
		RTData:            sectionID(app.RTData),
		RTBSS:             sectionID(app.RTBSS),
	}
	for _, r := range app.AS.Regions() {
		h.Regions = append(h.Regions, RegionInfo{
			Name: r.Name, Kind: uint8(r.Kind), Owner: r.Owner, Base: r.Base, Size: r.Size,
		})
	}
	for _, t := range app.Tasks {
		h.Tasks = append(h.Tasks, TaskInfo{
			Name:    t.Proc.Name,
			CPU:     t.CPU,
			Code:    sectionID(t.Proc.Code),
			Stack:   sectionID(t.Proc.Stack),
			Heap:    sectionID(t.Proc.Heap),
			HotCode: t.Proc.HotCode,
		})
	}
	for _, f := range app.FIFOs {
		h.FIFOs = append(h.FIFOs, FIFOInfo{
			Name: f.Name, Region: int(f.Region.ID), TokenBytes: f.TokenBytes, Cap: f.Cap,
		})
	}
	for _, f := range app.Frames {
		h.Frames = append(h.Frames, FrameInfo{
			Name: f.Name, Region: int(f.Region.ID), Width: f.Width, Height: f.Height, Pixel: f.Pixel,
		})
	}
	for _, b := range app.Buffers {
		h.Buffers = append(h.Buffers, int(b.ID))
	}
	streams := make([][]byte, len(recs))
	for i, rec := range recs {
		streams[i] = rec.buf
		h.Streams = append(h.Streams, StreamInfo{Events: rec.events, Bytes: uint64(len(rec.buf))})
		h.Events += rec.events
		h.Instrs += rec.instrs
	}
	return assemble(h, streams)
}
