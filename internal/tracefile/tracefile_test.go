package tracefile

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kpn"
	"repro/internal/workloads"
)

// miniWorkload is a tiny deterministic two-task pipeline exercising
// every recordable operation class: exec runs, word accesses of both
// sizes and directions, bulk transfers, frame pixels, FIFO tokens, EOF
// and close.
func miniWorkload() core.Workload {
	return core.Workload{Name: "mini", Factory: func() (*core.App, error) {
		b := core.NewBuilder("mini")
		fifo := b.AddFIFO("pc", 16, 4)
		frame := b.AddFrame("fr", 8, 8, 1)
		buf := b.AddBuffer("in", 256)
		b.AddTask(core.TaskConfig{Name: "prod", CPU: 0, Body: func(c *kpn.Ctx) {
			tok := make([]byte, 16)
			for i := 0; i < 8; i++ {
				c.Exec(50)
				c.LoadBytes(buf, uint64(i*16), tok)
				c.Store32(c.Heap(), uint64(i*4), uint32(i*3+1))
				c.Store8(c.Heap(), uint64(64+i), byte(i))
				fifo.Write(c, tok)
			}
			fifo.Close(c)
		}})
		b.AddTask(core.TaskConfig{Name: "cons", CPU: 1, Body: func(c *kpn.Ctx) {
			tok := make([]byte, 16)
			row := make([]byte, 8)
			for i := 0; fifo.Read(c, tok); i++ {
				c.Exec(30)
				v := c.Load32(c.Heap(), 0)
				frame.Store8(c, i%8, i/8, byte(v)+c.Load8(c.Heap(), 4)+tok[0])
				c.StoreBytes(c.Heap(), 128, row)
			}
			frame.LoadRow(c, 0, row)
		}})
		return b.Build()
	}}
}

func captureMini(t *testing.T) *Trace {
	t.Helper()
	tr, err := Capture(miniWorkload(), Meta{Workload: "mini", Scale: "small", Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCaptureRoundtrip(t *testing.T) {
	tr := captureMini(t)
	if tr.Header.App != "mini" || len(tr.Header.Tasks) != 2 {
		t.Fatalf("unexpected header: %+v", tr.Header)
	}
	if tr.Totals.Instrs != 8*50+8*30 {
		t.Errorf("instrs = %d, want %d", tr.Totals.Instrs, 8*50+8*30)
	}
	// 9 reads (8 tokens + EOF), 8 writes, 1 close.
	if tr.Totals.FIFOOps != 18 {
		t.Errorf("fifo ops = %d, want 18", tr.Totals.FIFOOps)
	}
	if tr.Totals.Accesses == 0 || tr.Totals.BulkOps == 0 {
		t.Errorf("missing event classes: %+v", tr.Totals)
	}
	back, err := Decode(tr.Bytes())
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if back.Totals != tr.Totals || back.Header.Events != tr.Header.Events {
		t.Fatalf("re-decode drifted: %+v vs %+v", back.Totals, tr.Totals)
	}

	path := filepath.Join(t.TempDir(), "mini.ctr")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	fromDisk, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromDisk.Bytes(), tr.Bytes()) {
		t.Fatal("file roundtrip drifted")
	}
}

func TestCaptureDeterministic(t *testing.T) {
	a, b := captureMini(t), captureMini(t)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two captures of the same workload differ")
	}
}

// TestCaptureOfReplayIsIdentity proves the replay body re-issues the
// exact recorded operation stream: recording a replayed instance yields
// a byte-identical container. This is the Ctx-level half of the
// replay ≡ live argument (the engine-output half lives in
// internal/experiments).
func TestCaptureOfReplayIsIdentity(t *testing.T) {
	tr := captureMini(t)
	app, err := tr.App()
	if err != nil {
		t.Fatal(err)
	}
	again, err := CaptureApp(app, tr.Header.Meta)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), tr.Bytes()) {
		t.Fatal("capture(replay(trace)) != trace")
	}
}

func TestReplayRebuildsTopology(t *testing.T) {
	tr := captureMini(t)
	app, err := tr.App()
	if err != nil {
		t.Fatal(err)
	}
	live, err := miniWorkload().Factory()
	if err != nil {
		t.Fatal(err)
	}
	if app.AS.NumRegions() != live.AS.NumRegions() {
		t.Fatalf("regions: %d vs %d", app.AS.NumRegions(), live.AS.NumRegions())
	}
	for i, r := range live.AS.Regions() {
		g := app.AS.Regions()[i]
		if g.Name != r.Name || g.Kind != r.Kind || g.Owner != r.Owner || g.Base != r.Base || g.Size != r.Size {
			t.Errorf("region %d: %v vs %v", i, g, r)
		}
	}
	if len(app.FIFOs) != 1 || app.FIFOs[0].TokenBytes != 16 || app.FIFOs[0].Cap != 4 {
		t.Fatalf("fifo topology lost: %+v", app.FIFOs)
	}
	if len(app.Frames) != 1 || app.Frames[0].Width != 8 {
		t.Fatalf("frame topology lost: %+v", app.Frames)
	}
	if app.Tasks[0].CPU != 0 || app.Tasks[1].CPU != 1 {
		t.Fatalf("task placement lost")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	tr := captureMini(t)
	data := tr.Bytes()

	for _, n := range []int{0, 1, 4, 11, 15, len(data) / 2, len(data) - 1} {
		if n >= len(data) {
			continue
		}
		if _, err := Decode(data[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded", n)
		}
	}
	// Flip one bit at a spread of offsets; the CRC must catch each.
	for off := 0; off < len(data); off += 7 {
		mut := bytes.Clone(data)
		mut[off] ^= 0x10
		if _, err := Decode(mut); err == nil {
			t.Errorf("bit flip at offset %d decoded", off)
		}
	}
	bad := bytes.Clone(data)
	copy(bad, "XXXX")
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: %v", err)
	}
}

func TestRegisterWorkload(t *testing.T) {
	tr := captureMini(t)
	if err := RegisterWorkload("mini-trace-test", tr); err != nil {
		t.Fatal(err)
	}
	b, ok := workloads.Lookup("mini-trace-test")
	if !ok {
		t.Fatal("registered trace workload not found")
	}
	w := b(workloads.BuildConfig{Scale: workloads.Paper, Seed: 99})
	if w.Name != "mini-trace-test" {
		t.Fatalf("workload name = %q", w.Name)
	}
	app, err := w.Factory()
	if err != nil {
		t.Fatal(err)
	}
	if app.Name != "mini" {
		t.Fatalf("app name = %q", app.Name)
	}
}
