package trace

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" || Fetch.String() != "F" {
		t.Error("op strings wrong")
	}
	if Op(9).String() != "Op(9)" {
		t.Errorf("unknown op string = %q", Op(9).String())
	}
}

func TestCountingSink(t *testing.T) {
	c := &CountingSink{Latency: 3}
	if lat := c.Access(Access{Op: Read}); lat != 3 {
		t.Errorf("latency = %d, want 3", lat)
	}
	c.Access(Access{Op: Write})
	c.Access(Access{Op: Write})
	c.Access(Access{Op: Fetch})
	if c.Reads != 1 || c.Writes != 2 || c.Fetches != 1 {
		t.Errorf("counts = %d/%d/%d", c.Reads, c.Writes, c.Fetches)
	}
	if c.Total() != 4 {
		t.Errorf("Total = %d, want 4", c.Total())
	}
}

func TestSinkFunc(t *testing.T) {
	var got Access
	s := SinkFunc(func(a Access) uint64 { got = a; return 7 })
	if lat := s.Access(Access{Addr: 0x100}); lat != 7 || got.Addr != 0x100 {
		t.Error("SinkFunc did not forward")
	}
}

func TestTeeSink(t *testing.T) {
	p := &CountingSink{Latency: 5}
	o1, o2 := &CountingSink{}, &CountingSink{}
	tee := &TeeSink{Primary: p, Observers: []Sink{o1, o2}}
	if lat := tee.Access(Access{Op: Read}); lat != 5 {
		t.Errorf("tee latency = %d, want primary's 5", lat)
	}
	if p.Total() != 1 || o1.Total() != 1 || o2.Total() != 1 {
		t.Error("tee did not forward to all sinks")
	}
}

func TestStrideGen(t *testing.T) {
	g := &StrideGen{Base: 0x1000, Stride: 64, Count: 4, Op: Write}
	want := []uint64{0x1000, 0x1040, 0x1080, 0x10C0}
	for i, w := range want {
		a, ok := g.Next()
		if !ok {
			t.Fatalf("exhausted at %d", i)
		}
		if a.Addr != w || a.Op != Write || a.Size != 4 {
			t.Errorf("access %d = %+v, want addr %#x", i, a, w)
		}
	}
	if _, ok := g.Next(); ok {
		t.Error("generator not exhausted after Count accesses")
	}
}

func TestLoopGenWraps(t *testing.T) {
	g := &LoopGen{Base: 0, WorkingSet: 16, Stride: 4, Iters: 2}
	var addrs []uint64
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		addrs = append(addrs, a.Addr)
	}
	want := []uint64{0, 4, 8, 12, 0, 4, 8, 12}
	if len(addrs) != len(want) {
		t.Fatalf("got %d accesses, want %d", len(addrs), len(want))
	}
	for i := range want {
		if addrs[i] != want[i] {
			t.Errorf("addr %d = %d, want %d", i, addrs[i], want[i])
		}
	}
}

func TestLoopGenDefaultStride(t *testing.T) {
	g := &LoopGen{Base: 0, WorkingSet: 8, Iters: 1}
	a, ok := g.Next()
	if !ok || a.Addr != 0 {
		t.Fatal("first access wrong")
	}
	a, ok = g.Next()
	if !ok || a.Addr != 4 {
		t.Fatalf("default stride not 4: addr %d", a.Addr)
	}
}

func TestRandomGenDeterministicAndBounded(t *testing.T) {
	mk := func() *RandomGen {
		return &RandomGen{Base: 0x1000, WorkingSet: 256, Count: 500, Seed: 42}
	}
	g1, g2 := mk(), mk()
	for i := 0; i < 500; i++ {
		a1, ok1 := g1.Next()
		a2, ok2 := g2.Next()
		if !ok1 || !ok2 {
			t.Fatal("premature exhaustion")
		}
		if a1.Addr != a2.Addr {
			t.Fatalf("not deterministic at %d: %#x vs %#x", i, a1.Addr, a2.Addr)
		}
		if a1.Addr < 0x1000 || a1.Addr >= 0x1000+256 {
			t.Fatalf("address %#x out of working set", a1.Addr)
		}
		if a1.Addr%4 != 0 {
			t.Fatalf("address %#x not word aligned", a1.Addr)
		}
	}
	if _, ok := g1.Next(); ok {
		t.Error("not exhausted")
	}
}

func TestInterleaveRoundRobin(t *testing.T) {
	g := &Interleave{Gens: []Generator{
		&StrideGen{Base: 0x0, Stride: 4, Count: 2},
		&StrideGen{Base: 0x1000, Stride: 4, Count: 4},
	}}
	var addrs []uint64
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		addrs = append(addrs, a.Addr)
	}
	want := []uint64{0x0, 0x1000, 0x4, 0x1004, 0x1008, 0x100C}
	if len(addrs) != len(want) {
		t.Fatalf("got %v, want %v", addrs, want)
	}
	for i := range want {
		if addrs[i] != want[i] {
			t.Fatalf("got %v, want %v", addrs, want)
		}
	}
}

func TestDrain(t *testing.T) {
	g := &StrideGen{Base: 0, Stride: 8, Count: 10}
	s := &CountingSink{Latency: 2}
	n, cycles := Drain(g, s)
	if n != 10 || cycles != 20 {
		t.Errorf("Drain = %d accesses, %d cycles; want 10, 20", n, cycles)
	}
}

// Property: StrideGen emits exactly Count accesses, strictly increasing
// when stride > 0.
func TestStrideGenProperty(t *testing.T) {
	f := func(base uint32, stride uint8, count uint8) bool {
		st := uint64(stride%63) + 1
		g := &StrideGen{Base: uint64(base), Stride: st, Count: uint64(count)}
		var n uint64
		last := uint64(0)
		for {
			a, ok := g.Next()
			if !ok {
				break
			}
			if n > 0 && a.Addr <= last {
				return false
			}
			last = a.Addr
			n++
		}
		return n == uint64(count)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Interleave preserves the union of the streams.
func TestInterleaveConservationProperty(t *testing.T) {
	f := func(c1, c2, c3 uint8) bool {
		total := uint64(c1) + uint64(c2) + uint64(c3)
		g := &Interleave{Gens: []Generator{
			&StrideGen{Base: 0, Stride: 4, Count: uint64(c1)},
			&StrideGen{Base: 1 << 20, Stride: 4, Count: uint64(c2)},
			&StrideGen{Base: 2 << 20, Stride: 4, Count: uint64(c3)},
		}}
		var n uint64
		for {
			if _, ok := g.Next(); !ok {
				break
			}
			n++
		}
		return n == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
