// Package trace defines the memory access record exchanged between the
// cores, the cache hierarchy and the profiler, plus deterministic
// synthetic access-stream generators used by tests and micro-benchmarks.
package trace

import (
	"fmt"

	"repro/internal/mem"
)

// Op is the type of a memory access.
type Op uint8

// Access operations. Fetch models instruction fetch; the L2 of the CAKE
// tile is unified, so code competes for the same sets as data.
const (
	Read Op = iota
	Write
	Fetch
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Read:
		return "R"
	case Write:
		return "W"
	case Fetch:
		return "F"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Access is one memory reference as seen by the cache hierarchy.
type Access struct {
	Addr   uint64
	Size   uint8
	Op     Op
	Region mem.RegionID // owning entity, resolved at issue time
}

// Sink consumes a stream of accesses. Cache levels, the profiler and the
// statistics collectors all implement Sink.
type Sink interface {
	// Access processes one memory reference and returns its latency
	// in cycles as seen by the issuing core.
	Access(a Access) uint64
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Access) uint64

// Access implements Sink.
func (f SinkFunc) Access(a Access) uint64 { return f(a) }

// CountingSink counts accesses by operation; its latency is constant.
// It is the "functional-only" memory system used when an application is
// executed purely for its output or for trace capture.
type CountingSink struct {
	Latency uint64
	Reads   uint64
	Writes  uint64
	Fetches uint64
}

// Access implements Sink.
func (c *CountingSink) Access(a Access) uint64 {
	switch a.Op {
	case Read:
		c.Reads++
	case Write:
		c.Writes++
	case Fetch:
		c.Fetches++
	}
	return c.Latency
}

// Total returns the total number of accesses seen.
func (c *CountingSink) Total() uint64 { return c.Reads + c.Writes + c.Fetches }

// TeeSink forwards every access to all children and returns the latency
// of the first one (the "real" hierarchy); the rest are observers.
type TeeSink struct {
	Primary   Sink
	Observers []Sink
}

// Access implements Sink.
func (t *TeeSink) Access(a Access) uint64 {
	lat := t.Primary.Access(a)
	for _, o := range t.Observers {
		o.Access(a)
	}
	return lat
}

// Generator produces a deterministic stream of accesses. Generators model
// archetypal multimedia access patterns and are used to unit-test cache
// behaviour independently of the full applications.
type Generator interface {
	// Next returns the next access and true, or a zero Access and
	// false when the stream is exhausted.
	Next() (Access, bool)
}

// Drain feeds the whole generator stream into the sink and returns the
// number of accesses and the summed latency.
func Drain(g Generator, s Sink) (n, cycles uint64) {
	for {
		a, ok := g.Next()
		if !ok {
			return n, cycles
		}
		cycles += s.Access(a)
		n++
	}
}

// StrideGen emits Count accesses starting at Base with the given stride,
// the pattern of sequential streaming through a buffer.
type StrideGen struct {
	Base   uint64
	Stride uint64
	Count  uint64
	Op     Op
	Size   uint8
	Region mem.RegionID

	i uint64
}

// Next implements Generator.
func (g *StrideGen) Next() (Access, bool) {
	if g.i >= g.Count {
		return Access{}, false
	}
	a := Access{
		Addr:   g.Base + g.i*g.Stride,
		Size:   g.sizeOrDefault(),
		Op:     g.Op,
		Region: g.Region,
	}
	g.i++
	return a, true
}

func (g *StrideGen) sizeOrDefault() uint8 {
	if g.Size == 0 {
		return 4
	}
	return g.Size
}

// LoopGen sweeps a working set of WorkingSet bytes from Base, Iters times,
// with the given stride — the pattern of a filter kernel re-reading its
// coefficient table and line buffers.
type LoopGen struct {
	Base       uint64
	WorkingSet uint64
	Stride     uint64
	Iters      uint64
	Op         Op
	Region     mem.RegionID

	iter, off uint64
}

// Next implements Generator.
func (g *LoopGen) Next() (Access, bool) {
	if g.Stride == 0 {
		g.Stride = 4
	}
	if g.iter >= g.Iters {
		return Access{}, false
	}
	a := Access{Addr: g.Base + g.off, Size: 4, Op: g.Op, Region: g.Region}
	g.off += g.Stride
	if g.off >= g.WorkingSet {
		g.off = 0
		g.iter++
	}
	return a, true
}

// RandomGen emits Count accesses uniformly distributed over a working set,
// using a deterministic xorshift PRNG — the pattern of irregular table
// lookups (e.g. VLD code books).
type RandomGen struct {
	Base       uint64
	WorkingSet uint64
	Count      uint64
	Seed       uint64
	Op         Op
	Region     mem.RegionID

	i     uint64
	state uint64
}

// Next implements Generator.
func (g *RandomGen) Next() (Access, bool) {
	if g.i >= g.Count {
		return Access{}, false
	}
	if g.state == 0 {
		g.state = g.Seed | 1
	}
	// xorshift64*
	g.state ^= g.state >> 12
	g.state ^= g.state << 25
	g.state ^= g.state >> 27
	r := g.state * 0x2545F4914F6CDD1D
	off := (r % (g.WorkingSet / 4)) * 4
	g.i++
	return Access{Addr: g.Base + off, Size: 4, Op: g.Op, Region: g.Region}, true
}

// Interleave round-robins over several generators, modelling the
// interleaving of independent tasks in a shared cache; exhausted
// generators are skipped.
type Interleave struct {
	Gens []Generator

	next int
}

// Next implements Generator.
func (g *Interleave) Next() (Access, bool) {
	for tries := 0; tries < len(g.Gens); tries++ {
		i := (g.next + tries) % len(g.Gens)
		if g.Gens[i] == nil {
			continue
		}
		a, ok := g.Gens[i].Next()
		if ok {
			g.next = (i + 1) % len(g.Gens)
			return a, true
		}
		g.Gens[i] = nil
	}
	return Access{}, false
}
