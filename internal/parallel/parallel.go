// Package parallel provides the bounded fan-out primitive used by the
// experiment harness. Every simulation owns its platform instance, so
// independent legs (profiling repetitions, shared vs profiled runs, the
// per-application studies of the headline table) are safe to run
// concurrently by construction; this package only supplies the bounded
// worker pool and deterministic error selection.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: n itself when positive, otherwise
// GOMAXPROCS. A knob of 1 forces sequential execution.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs fn(0), ..., fn(n-1) on at most workers goroutines and waits for
// all of them. Every index runs even if an earlier one fails; the
// returned error is the lowest-index failure, so the caller sees the same
// error regardless of scheduling. With workers <= 1 the calls run
// sequentially on the calling goroutine.
func Do(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
