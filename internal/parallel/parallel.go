// Package parallel provides the bounded fan-out primitive used by the
// experiment harness. Every simulation owns its platform instance, so
// independent legs (profiling repetitions, shared vs profiled runs, the
// per-application studies of the headline table) are safe to run
// concurrently by construction; this package only supplies the bounded
// worker pool, deterministic error selection, and panic containment —
// a crashing task is reported as that task's error, never as a process
// abort from a worker goroutine.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/faults"
)

// PanicError reports a panic recovered from a pool task: the task's
// index, the recovered value and the stack captured at recovery. Do
// converts every task panic into one of these so that a single failing
// simulation stage cannot take down the process (and, in serve mode,
// every concurrent request) — the serving north star's first
// crash-containment boundary.
type PanicError struct {
	Index int
	Value interface{}
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v", e.Index, e.Value)
}

// Workers resolves a worker-count knob: n itself when positive, otherwise
// GOMAXPROCS. A knob of 1 forces sequential execution.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// call dispatches one task with panic containment. The fault-injection
// point fires once per dispatch (a no-op outside the fault suite); an
// injected panic exercises exactly the recovery path a real one takes.
func call(fn func(i int) error, i int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	if err := faults.Point(faults.SiteWorker); err != nil {
		return err
	}
	return fn(i)
}

// Do runs fn(0), ..., fn(n-1) on at most workers goroutines and waits for
// all of them. Every index runs even if an earlier one fails; the
// returned error is the lowest-index failure, so the caller sees the same
// error regardless of scheduling. A panicking fn is recovered and
// reported as that index's *PanicError. With workers <= 1 the calls run
// sequentially on the calling goroutine.
func Do(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := call(fn, i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = call(fn, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
