package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/faults"
)

func TestDoRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		var hits [50]int32
		err := Do(workers, len(hits), func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestDoReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 4} {
		err := Do(workers, 10, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Errorf("workers=%d: err = %v, want lowest-index %v", workers, err, errA)
		}
	}
}

func TestDoZeroTasks(t *testing.T) {
	if err := Do(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestDoBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak int32
	err := Do(workers, 64, func(i int) error {
		n := atomic.AddInt32(&inFlight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		runtime.Gosched()
		atomic.AddInt32(&inFlight, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Errorf("observed %d concurrent tasks, want <= %d", peak, workers)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(5) != 5 {
		t.Error("explicit knob ignored")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Error("default not GOMAXPROCS")
	}
	if Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Error("negative not defaulted")
	}
}

// TestDoContainsPanics checks a panicking task is recovered into a
// *PanicError carrying the index, value and stack — sequentially and
// concurrently — while every other index still runs.
func TestDoContainsPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran int32
		err := Do(workers, 8, func(i int) error {
			if i == 3 {
				panic("boom 3")
			}
			atomic.AddInt32(&ran, 1)
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want *PanicError, got %v", workers, err)
		}
		if pe.Index != 3 || pe.Value != "boom 3" {
			t.Errorf("workers=%d: bad panic error %+v", workers, pe)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: panic error must carry the stack", workers)
		}
		if ran != 7 {
			t.Errorf("workers=%d: panic must not stop other tasks, ran %d of 7", workers, ran)
		}
	}
}

// TestDoLowestIndexPanicWins checks deterministic error selection also
// holds for panics: the lowest failing index is reported regardless of
// scheduling.
func TestDoLowestIndexPanicWins(t *testing.T) {
	err := Do(4, 20, func(i int) error {
		if i == 5 || i == 11 {
			panic(i)
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 5 {
		t.Fatalf("want the lowest-index panic (5), got %v", err)
	}
}

// TestDoWorkerFaultInjection checks the dispatch-level injection point:
// an armed worker fault fails exactly that dispatch (the task never
// runs) and surfaces as the task's error.
func TestDoWorkerFaultInjection(t *testing.T) {
	plan := faults.New(3).ErrorAt(faults.SiteWorker, 2).PanicAt(faults.SiteWorker, 4)
	defer faults.Activate(plan)()
	var ran [6]int32
	err := Do(1, len(ran), func(i int) error { // sequential: ordinal == index
		atomic.AddInt32(&ran[i], 1)
		return nil
	})
	var ie *faults.InjectedError
	if !errors.As(err, &ie) || ie.Ordinal != 2 {
		t.Fatalf("want the injected error at ordinal 2 (lowest failing index), got %v", err)
	}
	for i, n := range ran {
		want := int32(1)
		if i == 2 || i == 4 {
			want = 0 // faulted dispatches never reach the task
		}
		if n != want {
			t.Errorf("task %d ran %d times, want %d", i, n, want)
		}
	}
	if plan.Fired(faults.SiteWorker, faults.Panic) != 1 {
		t.Error("armed worker panic did not fire")
	}
}
