package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDoRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		var hits [50]int32
		err := Do(workers, len(hits), func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestDoReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 4} {
		err := Do(workers, 10, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Errorf("workers=%d: err = %v, want lowest-index %v", workers, err, errA)
		}
	}
}

func TestDoZeroTasks(t *testing.T) {
	if err := Do(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestDoBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak int32
	err := Do(workers, 64, func(i int) error {
		n := atomic.AddInt32(&inFlight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		runtime.Gosched()
		atomic.AddInt32(&inFlight, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Errorf("observed %d concurrent tasks, want <= %d", peak, workers)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(5) != 5 {
		t.Error("explicit knob ignored")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Error("default not GOMAXPROCS")
	}
	if Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Error("negative not defaulted")
	}
}
