package faults

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestPointWithoutPlanIsNoOp: production fast path — no plan, no fault.
func TestPointWithoutPlanIsNoOp(t *testing.T) {
	for i := 0; i < 100; i++ {
		if err := Point(SiteWorker); err != nil {
			t.Fatalf("no active plan must mean no fault, got %v", err)
		}
	}
}

// TestOrdinalFiring checks rules fire at exactly their armed ordinals
// and the hit counter advances on every Point call.
func TestOrdinalFiring(t *testing.T) {
	p := New(7).ErrorAt(SiteWorker, 1, 3)
	defer Activate(p)()
	for i := uint64(0); i < 5; i++ {
		err := Point(SiteWorker)
		if want := i == 1 || i == 3; (err != nil) != want {
			t.Errorf("hit %d: err=%v, want fault=%v", i, err, want)
		}
		if err != nil {
			var ie *InjectedError
			if !errors.As(err, &ie) || ie.Site != SiteWorker || ie.Ordinal != i {
				t.Errorf("hit %d: wrong injected error %v", i, err)
			}
		}
	}
	if got := p.Hits(SiteWorker); got != 5 {
		t.Errorf("hits: want 5, got %d", got)
	}
	if got := p.Fired(SiteWorker, Error); got != 2 {
		t.Errorf("fired errors: want 2, got %d", got)
	}
}

// TestPanicCarriesValue checks injected panics carry a recognizable
// PanicValue naming site, ordinal and seed.
func TestPanicCarriesValue(t *testing.T) {
	p := New(42).PanicAt("stage.profile", 0)
	defer Activate(p)()
	defer func() {
		v, ok := recover().(PanicValue)
		if !ok {
			t.Fatalf("want a PanicValue, got %v", v)
		}
		if v.Site != "stage.profile" || v.Ordinal != 0 || v.Seed != 42 {
			t.Errorf("bad panic value: %+v", v)
		}
	}()
	Point("stage.profile")
	t.Fatal("armed panic did not fire")
}

// TestDelayAt checks a delay rule sleeps and then proceeds normally.
func TestDelayAt(t *testing.T) {
	p := New(1).DelayAt(SiteWorker, 20*time.Millisecond, 0)
	defer Activate(p)()
	start := time.Now()
	if err := Point(SiteWorker); err != nil {
		t.Fatalf("delay must not error: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("delay rule returned after %v", d)
	}
}

// TestPickDeterministic checks ordinal selection is a pure function of
// the seed: same seed same ordinals, distinct, sorted, in range.
func TestPickDeterministic(t *testing.T) {
	a := New(99).Pick(20, 5)
	b := New(99).Pick(20, 5)
	if len(a) != 5 {
		t.Fatalf("want 5 ordinals, got %v", a)
	}
	seen := map[uint64]bool{}
	for i, v := range a {
		if v != b[i] {
			t.Fatalf("same seed must pick the same ordinals: %v vs %v", a, b)
		}
		if v >= 20 || seen[v] {
			t.Fatalf("ordinals must be distinct and in range: %v", a)
		}
		seen[v] = true
		if i > 0 && a[i-1] >= v {
			t.Fatalf("ordinals must be sorted: %v", a)
		}
	}
	if c := New(100).Pick(20, 5); equalU64(a, c) {
		t.Errorf("different seeds should (generically) differ: %v vs %v", a, c)
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestActivateExclusive checks double activation panics and restore
// reopens the slot.
func TestActivateExclusive(t *testing.T) {
	restore := Activate(New(1))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("activating over an active plan must panic")
			}
		}()
		Activate(New(2))
	}()
	restore()
	Activate(New(3))()
}

// TestConcurrentHitsAreCounted hammers one site from many goroutines:
// every hit is counted exactly once and exactly the armed ordinals fire.
func TestConcurrentHitsAreCounted(t *testing.T) {
	p := New(5).ErrorAt(SiteWorker, p5(t)...)
	restore := Activate(p)
	defer restore()
	const hits = 200
	var wg sync.WaitGroup
	var faults int64
	errCh := make(chan error, hits)
	for i := 0; i < hits; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errCh <- Point(SiteWorker)
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			faults++
		}
	}
	if p.Hits(SiteWorker) != hits {
		t.Errorf("want %d hits, got %d", hits, p.Hits(SiteWorker))
	}
	if faults != 5 || p.Fired(SiteWorker, Error) != 5 {
		t.Errorf("want exactly 5 fired faults, got %d (plan says %d)", faults, p.Fired(SiteWorker, Error))
	}
}

func p5(t *testing.T) []uint64 {
	t.Helper()
	return New(5).Pick(200, 5)
}
