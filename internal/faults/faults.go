// Package faults provides deterministic, test-only fault injection for
// the execution pipeline. Production code is instrumented with named
// injection points (Point calls) at stage boundaries and worker
// dispatch; with no active Plan a point is a single atomic load and a
// nil return, so the instrumentation is free in normal operation.
//
// A Plan is seeded and fully deterministic: every site keeps a hit
// counter, and a rule fires a fault (panic, error or delay) at exact,
// pre-chosen hit ordinals. The seed parameterizes ordinal selection
// (Pick) and is embedded in every injected panic/error value, so a
// failing fault-suite run names the plan that produced it. Tests
// activate a plan with Activate and must restore before finishing;
// exactly one plan can be active at a time.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Injection-site names. Stage sites are SiteStage + the stage kind
// ("stage.profile", "stage.optimize", "stage.run"); SiteWorker is hit
// once per task dispatched on the parallel worker pool; SiteStoreGet
// and SiteStorePut are hit once per durable-store read and write (the
// disk store honors Error and Delay on both, and Truncate on put — a
// torn write that frames a deliberately short record through the same
// atomic path, simulating a crash between rename and data flush).
// SiteTraceRead is hit once per trace-stage document decode, so corrupt
// recorded traces are provable to read as misses and recapture.
// SiteExploreStep is hit once per exploration round, after the round's
// points are evaluated but before its checkpoint is written — an
// injected error there models a crash at the worst moment (work done,
// progress not yet durable), which the resume path must absorb without
// re-executing any completed stage.
const (
	SiteStage       = "stage."
	SiteWorker      = "parallel.worker"
	SiteStoreGet    = "store.get"
	SiteStorePut    = "store.put"
	SiteTraceRead   = "trace.read"
	SiteExploreStep = "explore.step"
)

// Kind selects what an injection rule does when it fires.
type Kind int

const (
	// None is the zero Kind; it never fires.
	None Kind = iota
	// Panic panics with a PanicValue at the injection point.
	Panic
	// Error returns an *InjectedError from the injection point.
	Error
	// Delay sleeps for the rule's duration, then proceeds normally.
	Delay
	// Truncate returns an *InjectedError with Kind Truncate; the site
	// interprets it (the disk store's put path writes a torn record and
	// reports success). Sites that cannot interpret it treat it as Error.
	Truncate
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Error:
		return "error"
	case Delay:
		return "delay"
	case Truncate:
		return "truncate"
	}
	return "none"
}

// PanicValue is the value injected panics carry, so containment layers
// and tests can recognize (and pretty-print) an injected panic.
type PanicValue struct {
	Site    string
	Ordinal uint64
	Seed    uint64
}

// String implements fmt.Stringer; recovered values print through %v.
func (v PanicValue) String() string {
	return fmt.Sprintf("faults: injected panic at %s[#%d] (seed %d)", v.Site, v.Ordinal, v.Seed)
}

// InjectedError is the error returned by Error- and Truncate-kind
// rules. Kind distinguishes them (the zero Kind reads as a plain
// error, so existing constructions are unchanged).
type InjectedError struct {
	Site    string
	Ordinal uint64
	Kind    Kind
}

// Error implements error.
func (e *InjectedError) Error() string {
	if e.Kind == Truncate {
		return fmt.Sprintf("faults: injected torn write at %s[#%d]", e.Site, e.Ordinal)
	}
	return fmt.Sprintf("faults: injected error at %s[#%d]", e.Site, e.Ordinal)
}

// IsTruncate reports whether err is an injected Truncate fault, which
// the disk store's put path turns into a torn-but-"successful" write.
func IsTruncate(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie) && ie.Kind == Truncate
}

// action is one armed fault at one ordinal of a site.
type action struct {
	kind  Kind
	delay time.Duration
}

// site tracks one injection point's hit counter and armed actions.
// always, when non-nil, fires on every hit without an exact-ordinal
// action — the "broken volume" rules of the degradation tests.
type site struct {
	hits    uint64
	actions map[uint64]action
	always  *action
	fired   map[Kind]uint64
}

// Plan is a deterministic fault schedule: per-site rules firing at
// exact hit ordinals. Safe for concurrent use once activated.
type Plan struct {
	// Seed parameterizes ordinal selection and labels injected values.
	Seed uint64

	mu    sync.Mutex
	sites map[string]*site
}

// New returns an empty plan with the given seed.
func New(seed uint64) *Plan {
	return &Plan{Seed: seed, sites: map[string]*site{}}
}

func (p *Plan) site(name string) *site {
	s := p.sites[name]
	if s == nil {
		s = &site{actions: map[uint64]action{}, fired: map[Kind]uint64{}}
		p.sites[name] = s
	}
	return s
}

func (p *Plan) arm(name string, a action, ordinals []uint64) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.site(name)
	for _, o := range ordinals {
		s.actions[o] = a
	}
	return p
}

// PanicAt arms a panic at the given hit ordinals of a site.
func (p *Plan) PanicAt(siteName string, ordinals ...uint64) *Plan {
	return p.arm(siteName, action{kind: Panic}, ordinals)
}

// ErrorAt arms an error return at the given hit ordinals of a site.
func (p *Plan) ErrorAt(siteName string, ordinals ...uint64) *Plan {
	return p.arm(siteName, action{kind: Error}, ordinals)
}

// DelayAt arms a sleep of d at the given hit ordinals of a site.
func (p *Plan) DelayAt(siteName string, d time.Duration, ordinals ...uint64) *Plan {
	return p.arm(siteName, action{kind: Delay, delay: d}, ordinals)
}

// TruncateAt arms a torn write at the given hit ordinals of a site
// (meaningful on store.put, where the disk store frames a deliberately
// truncated record and reports success).
func (p *Plan) TruncateAt(siteName string, ordinals ...uint64) *Plan {
	return p.arm(siteName, action{kind: Truncate}, ordinals)
}

// ErrorAlways arms an error return on every hit of a site — the
// always-failing-disk rule of the degradation tests. Exact-ordinal
// rules, if any, take precedence at their ordinals.
func (p *Plan) ErrorAlways(siteName string) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	a := action{kind: Error}
	p.site(siteName).always = &a
	return p
}

// Pick deterministically selects k distinct ordinals from [0, n),
// sorted ascending, from the plan's seed — the "random but
// reproducible" placement the fault suite uses.
func (p *Plan) Pick(n, k int) []uint64 {
	if k > n {
		k = n
	}
	r := rand.New(rand.NewSource(int64(p.Seed)))
	perm := r.Perm(n)[:k]
	out := make([]uint64, k)
	for i, v := range perm {
		out[i] = uint64(v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Hits returns how many times a site has been hit under this plan.
func (p *Plan) Hits(siteName string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s := p.sites[siteName]; s != nil {
		return s.hits
	}
	return 0
}

// Fired returns how many faults of the given kind a site has injected.
func (p *Plan) Fired(siteName string, k Kind) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s := p.sites[siteName]; s != nil {
		return s.fired[k]
	}
	return 0
}

// hit advances the site's counter and fires any armed action.
func (p *Plan) hit(name string) error {
	p.mu.Lock()
	s := p.site(name)
	ord := s.hits
	s.hits++
	a, armed := s.actions[ord]
	if !armed && s.always != nil {
		a, armed = *s.always, true
	}
	if armed {
		s.fired[a.kind]++
	}
	p.mu.Unlock()
	if !armed {
		return nil
	}
	switch a.kind {
	case Panic:
		panic(PanicValue{Site: name, Ordinal: ord, Seed: p.Seed})
	case Error:
		return &InjectedError{Site: name, Ordinal: ord}
	case Truncate:
		return &InjectedError{Site: name, Ordinal: ord, Kind: Truncate}
	case Delay:
		time.Sleep(a.delay)
	}
	return nil
}

// active is the installed plan; nil in production.
var active atomic.Pointer[Plan]

// Activate installs the plan globally and returns the restore function
// that deactivates it. Exactly one plan may be active; activating over
// another is a test-harness bug and panics.
func Activate(p *Plan) (restore func()) {
	if !active.CompareAndSwap(nil, p) {
		panic("faults: a plan is already active")
	}
	return func() { active.CompareAndSwap(p, nil) }
}

// Point is the injection hook production code calls at a named site.
// With no active plan it returns nil at the cost of one atomic load;
// under a plan it may panic, return an *InjectedError, or sleep,
// exactly as the plan's rules for the site dictate.
func Point(siteName string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.hit(siteName)
}
