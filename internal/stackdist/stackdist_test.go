package stackdist

import (
	"testing"

	"repro/internal/cache"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Sizes: []int{1, 2, 4}, UnitSets: 8, Ways: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{Sizes: nil, UnitSets: 8, Ways: 4},
		{Sizes: []int{3}, UnitSets: 8, Ways: 4},
		{Sizes: []int{0}, UnitSets: 8, Ways: 4},
		{Sizes: []int{1}, UnitSets: 0, Ways: 4},
		{Sizes: []int{1}, UnitSets: 3, Ways: 4},
		{Sizes: []int{1}, UnitSets: 8, Ways: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestNewSortsAndDeduplicates(t *testing.T) {
	s, err := New(Config{Sizes: []int{4, 1, 2, 4, 1}, UnitSets: 8, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4}
	got := s.Sizes()
	if len(got) != len(want) {
		t.Fatalf("sizes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", got, want)
		}
	}
}

func TestColdMissesOnly(t *testing.T) {
	// A working set that fits the smallest candidate leaves only cold
	// misses everywhere.
	s, _ := New(Config{Sizes: []int{1, 2, 4}, UnitSets: 8, Ways: 4})
	for iter := 0; iter < 20; iter++ {
		for i := uint64(0); i < 8; i++ {
			s.Access(i)
		}
	}
	if s.Accesses() != 160 {
		t.Fatalf("accesses = %d", s.Accesses())
	}
	for k, m := range s.Misses() {
		if m != 8 {
			t.Errorf("misses at size %d = %d, want 8 cold", s.Sizes()[k], m)
		}
	}
}

func TestStreamMissesEverywhere(t *testing.T) {
	s, _ := New(Config{Sizes: []int{1, 2, 4}, UnitSets: 8, Ways: 4})
	for i := uint64(0); i < 2000; i++ {
		s.Access(1000 + i)
	}
	for k, m := range s.Misses() {
		if m != 2000 {
			t.Errorf("misses at size %d = %d, want 2000", s.Sizes()[k], m)
		}
	}
}

func TestCurveMonotoneForLoops(t *testing.T) {
	s, _ := New(Config{Sizes: []int{1, 2, 4, 8}, UnitSets: 8, Ways: 4})
	// Loop over 100 lines: fits 4 units (128 lines) but not 1 unit (32).
	for iter := 0; iter < 30; iter++ {
		for i := uint64(0); i < 100; i++ {
			s.Access(i)
		}
	}
	m := s.Misses()
	for k := 1; k < len(m); k++ {
		if m[k] > m[k-1] {
			t.Errorf("curve not non-increasing at %d: %v", k, m)
		}
	}
	if m[len(m)-1] != 100 {
		t.Errorf("largest size should leave only cold misses, got %v", m)
	}
	if m[0] <= 100 {
		t.Errorf("smallest size should thrash, got %v", m[0])
	}
}

// xorshift64* — deterministic PRNG so the differential test is stable.
type rng uint64

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 0x2545F4914F6CDD1D
}

// oracle is the bank-of-caches reference: one real cache.Cache per
// candidate size, fed the same line stream.
type oracle struct {
	sizes []int
	banks []*cache.Cache
}

func newOracle(cfg Config) *oracle {
	o := &oracle{sizes: append([]int(nil), cfg.Sizes...)}
	for _, s := range cfg.Sizes {
		o.banks = append(o.banks, cache.New(cache.Config{
			Name:     "oracle",
			Sets:     s * cfg.UnitSets,
			Ways:     cfg.Ways,
			LineSize: 64,
		}))
	}
	return o
}

func (o *oracle) access(line uint64) {
	for _, c := range o.banks {
		c.AccessLine(line, false, 0)
	}
}

func (o *oracle) misses() []uint64 {
	out := make([]uint64, len(o.banks))
	for k, c := range o.banks {
		out[k] = c.Stats().Misses
	}
	return out
}

func diffTest(t *testing.T, cfg Config, stream []uint64) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := newOracle(cfg)
	for _, line := range stream {
		s.Access(line)
		o.access(line)
	}
	want := o.misses()
	got := s.Misses()
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("size %d: stackdist %d misses, bank-of-caches %d",
				s.Sizes()[k], got[k], want[k])
		}
	}
}

// TestMatchesBankOfCachesRandom is the core exactness claim: on random
// streams with assorted locality profiles, the single-pass simulator
// returns bit-identical miss counts to real LRU caches of every
// candidate geometry.
func TestMatchesBankOfCachesRandom(t *testing.T) {
	cfgs := []Config{
		{Sizes: []int{1, 2, 4, 8, 16, 32, 64, 128}, UnitSets: 8, Ways: 4},
		{Sizes: []int{1, 2, 4}, UnitSets: 8, Ways: 1},
		{Sizes: []int{1, 4, 16}, UnitSets: 16, Ways: 8},
		{Sizes: []int{2}, UnitSets: 4, Ways: 2},
	}
	for ci, cfg := range cfgs {
		r := rng(0x9E3779B97F4A7C15 + uint64(ci))
		var stream []uint64
		for i := 0; i < 50000; i++ {
			x := r.next()
			var line uint64
			switch x % 4 {
			case 0: // tight working set: mostly hits
				line = x % 64
			case 1: // medium working set around the candidate capacities
				line = x % 4096
			case 2: // streaming, no reuse
				line = 1 << 20 << (x % 8) // spread across high tags
				line += x % (1 << 18)
			default: // sequential bursts
				line = uint64(i/7) % 8192
			}
			stream = append(stream, line)
		}
		diffTest(t, cfg, stream)
	}
}

// TestMatchesBankOfCachesTruncation stresses stack truncation: a
// footprint far beyond the largest candidate's capacity, with
// re-references after gaps of every length, so lines are constantly
// dropped from the stacks and later re-accessed.
func TestMatchesBankOfCachesTruncation(t *testing.T) {
	cfg := Config{Sizes: []int{1, 2, 4}, UnitSets: 4, Ways: 2}
	// Largest candidate: 16 sets x 2 ways = 32 lines. Touch thousands.
	r := rng(42)
	var stream []uint64
	for i := 0; i < 60000; i++ {
		x := r.next()
		switch x % 3 {
		case 0: // huge streaming footprint
			stream = append(stream, x%8192)
		case 1: // medium set, revisited across truncations
			stream = append(stream, x%128)
		default: // small hot set
			stream = append(stream, x%16)
		}
	}
	diffTest(t, cfg, stream)
}

// TestMatchesBankOfCachesAdversarial exercises the early-exit path: long
// reuse distances where the largest candidate accumulates a full set of
// conflicts before the walk finds the line.
func TestMatchesBankOfCachesAdversarial(t *testing.T) {
	cfg := Config{Sizes: []int{1, 2, 4, 8}, UnitSets: 8, Ways: 2}
	var stream []uint64
	// Repeatedly touch a victim line, then a sweep mapping to its set in
	// every candidate (same low bits), then the victim again.
	const victim = 0x40
	sets := uint64(8 * 8)
	for round := 0; round < 50; round++ {
		stream = append(stream, victim)
		for j := uint64(1); j <= uint64(round%7)+1; j++ {
			stream = append(stream, victim+j*sets)
		}
	}
	// And a pure conflict storm on one set.
	for i := uint64(0); i < 3000; i++ {
		stream = append(stream, (i%97)*sets)
	}
	diffTest(t, cfg, stream)
}
