// Package stackdist implements a single-pass, multi-configuration LRU
// cache simulator based on Mattson's stack algorithm.
//
// The profiler in internal/profile needs the miss count of one entity's
// L2-bound reference stream at every candidate partition size — the
// paper's m_i(z_p), "obtained by simulation". Simulating a bank of
// independent caches pays for each candidate separately. Mattson's
// inclusion property makes that redundant: under LRU with bit-selection
// indexing, the content of a set in a cache of S sets and W ways is
// exactly the W most recently referenced distinct lines mapping to that
// set, and the set mapping of a larger power-of-two candidate refines
// the mapping of every smaller one. So a line's hit/miss verdict in
// candidate k is decided by its stack distance counted over same-set
// lines, and one MRU-to-LRU walk of a shared recency stack yields that
// distance at every candidate set count at once — Mattson's classic
// result specialized to set-associative caches (Hill & Smith's
// all-associativity simulation, restricted to the power-of-two set
// counts the allocator can actually grant).
//
// Four further observations make the pass fast:
//
//  1. Tiered grouping. Two lines can conflict in a candidate only if
//     they share a set there, so recency stacks are kept per set of the
//     smallest candidate a tier resolves, and a walk never looks
//     outside the accessed line's group. Candidates split into two
//     tiers — small candidates walk coarse-grouped stacks, large ones
//     finer-grouped stacks — so the walk for a large candidate never
//     pays for lines that merely collide in the smallest.
//  2. Truncation. A line that has fallen out of a tier's largest
//     candidate misses in every candidate of that tier, exactly as if
//     it had never been referenced, so compaction drops every slot
//     beyond that candidate's resident set (its W most recent lines per
//     set). Stacks and walks are therefore bounded by roughly
//     ways x sets_tierTop/sets_tierFirst slots, everything stays
//     cache-resident for arbitrarily long streams — and membership
//     needs no index: the walk itself finds the line or proves, within
//     the bound, that the whole tier misses.
//  3. Compact stacks. Each stack is a flat array with the MRU end last;
//     a re-referenced line tombstones its old slot and is appended
//     afresh, so the walk is a sequential backward scan (no pointer
//     chasing) and the LRU update is O(1).
//  4. Packed conflict counters. The candidates a walked line still
//     conflicts in follow from the trailing zeros of the XOR of the two
//     (tagged) slot values, and the per-candidate conflict counters
//     live as bit-fields of one register, so the per-slot cost is an
//     XOR, a compare, a trailing-zeros count, a table load and an add —
//     independent of how many candidates the tier resolves.
package stackdist

import (
	"fmt"
	"math/bits"
	"sort"
)

// Config describes the family of candidate caches simulated in one pass.
// All candidates share the associativity and the line-granular,
// bit-selection set indexing of the real L2; they differ only in their
// number of sets (Sizes[k] * UnitSets).
type Config struct {
	Sizes    []int // candidate sizes in allocation units; positive powers of two
	UnitSets int   // sets per allocation unit (rtos.AllocUnit); power of two
	Ways     int   // associativity shared by all candidates
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Sizes) == 0 {
		return fmt.Errorf("stackdist: no candidate sizes")
	}
	for _, s := range c.Sizes {
		if s <= 0 || s&(s-1) != 0 {
			return fmt.Errorf("stackdist: candidate size %d not a positive power of two", s)
		}
	}
	if c.UnitSets <= 0 || c.UnitSets&(c.UnitSets-1) != 0 {
		return fmt.Errorf("stackdist: unit sets %d not a positive power of two", c.UnitSets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("stackdist: ways %d not positive", c.Ways)
	}
	return nil
}

// tier resolves a contiguous run of candidates [first, first+n) out of
// one family of per-set recency stacks grouped by the sets of candidate
// first and truncated at the residency of candidate first+n-1.
//
// Stack slots store line<<1|1 ("tagged" lines); a tombstone is 0. The
// XOR of two tagged lines is the lines' XOR shifted up by one, and the
// XOR of a tagged line with a tombstone has bit 0 set, so one
// trailing-zeros count classifies both: tz 0 is the tombstone trash
// lane, tz t>=1 maps to the lane of the largest tier candidate the two
// lines still share a set in (capped at the tier's top lane; lanes are
// shifted up by one for the trash lane).
type tier struct {
	first, n int    // candidate range [first, first+n)
	mask     uint64 // set mask of candidate first: the group key
	tierTop  uint64 // set mask of candidate first+n-1: truncation key
	bits     uint   // log2 of the group key's sets
	capLimit int    // stack length that forces compaction

	packed    bool // packed-accumulator walk usable
	fieldBits uint
	fieldMask uint64
	laneInc   [65]uint64 // tz of tagged XOR -> packed lane increment
	lanes     [65]uint8  // tz of tagged XOR -> lane (fallback walk)
	counts    []uint32   // fallback scratch, n+1 lanes

	// Group stacks live in one flat backing array at fixed strides.
	// Group g occupies slots[g*stride : (g+1)*stride], laid out as
	//
	//	[ header | MRU copy | presence signatures | recency stack, MRU last ]
	//
	// The header word packs the stack length (low 32 bits) and the
	// tombstone count (high 32). The next topSets words hold one 64-bit
	// presence signature per set of the tier's largest candidate:
	// truncation keeps at most W lines per such set, so the signatures
	// stay sparse and a clear bit proves the line is absent from the
	// whole tier — every candidate misses without any walk. Bits are
	// set on append and recomputed on compaction. The MRU copy mirrors
	// the stack's last tagged line so the most common outcome — an
	// immediate re-reference — is decided entirely within the header's
	// cache line. Keeping header, MRU copy, signatures and stack
	// adjacent means one access touches one or two cache lines of
	// metadata instead of three scattered arrays.
	slots      []uint64
	stride     int
	topSets    int      // sets of the tier's largest candidate per group
	topScratch []uint32 // per truncation-set counters for compaction
}

// Sim simulates every candidate cache for one entity's line stream.
// It is not safe for concurrent use; the parallel harness gives each
// goroutine its own Sim.
type Sim struct {
	sizes  []int    // ascending, deduplicated
	ways   uint64   // shared associativity
	tiers  []*tier  // one or two, covering all candidates
	misses []uint64 // per candidate

	keepScratch []uint64 // survivor buffer for compaction
	accesses    uint64
}

// New builds a simulator. The candidate list is sorted and deduplicated;
// Sizes reports the order in which Misses returns counts.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sizes := append([]int(nil), cfg.Sizes...)
	sort.Ints(sizes)
	uniq := sizes[:1]
	for _, s := range sizes[1:] {
		if s != uniq[len(uniq)-1] {
			uniq = append(uniq, s)
		}
	}
	sizes = uniq

	setBits := make([]uint, len(sizes))
	for k, sz := range sizes {
		setBits[k] = uint(bits.Len(uint(sz*cfg.UnitSets)) - 1)
	}
	s := &Sim{
		sizes:  sizes,
		ways:   uint64(cfg.Ways),
		misses: make([]uint64, len(sizes)),
	}
	// Two tiers once there are enough candidates for the split to pay:
	// each tier's stacks are bounded by its own largest candidate, so
	// splitting shrinks the coarse tier's bound by the ratio of the two
	// halves' capacities.
	ranges := [][2]int{{0, len(sizes)}}
	if len(sizes) >= 4 {
		split := len(sizes) / 2
		ranges = [][2]int{{0, split}, {split, len(sizes)}}
	}
	for _, r := range ranges {
		first, end := r[0], r[1]
		t := &tier{
			first:   first,
			n:       end - first,
			mask:    uint64(sizes[first]*cfg.UnitSets - 1),
			tierTop: uint64(sizes[end-1]*cfg.UnitSets - 1),
			bits:    setBits[first],
			counts:  make([]uint32, end-first+1),
		}
		topSetsPerGroup := int((t.tierTop + 1) >> t.bits)
		t.topSets = topSetsPerGroup
		t.capLimit = cfg.Ways*topSetsPerGroup*2 + 32
		t.fieldBits = 63 / uint(t.n+1)
		t.fieldMask = 1<<t.fieldBits - 1
		if t.capLimit < 48 {
			t.capLimit = 48
		}
		t.stride = 2 + topSetsPerGroup + t.capLimit + 4
		t.packed = uint64(t.stride+8) < 1<<t.fieldBits
		// tz 0 stays zero: tombstones land in the trash lane.
		for tz := 1; tz <= 64; tz++ {
			lane := 0
			for k := first; k < end; k++ {
				if setBits[k] <= uint(tz-1) {
					lane = k - first + 1
				}
			}
			t.lanes[tz] = uint8(lane)
			t.laneInc[tz] = 1 << (uint(lane) * t.fieldBits)
		}
		t.slots = make([]uint64, (int(t.mask)+1)*t.stride)
		t.topScratch = make([]uint32, topSetsPerGroup)
		s.tiers = append(s.tiers, t)
	}
	return s, nil
}

// Sizes returns the candidate sizes in the order Misses uses.
func (s *Sim) Sizes() []int { return s.sizes }

// Accesses returns the number of observed line references.
func (s *Sim) Accesses() uint64 { return s.accesses }

// Misses returns the miss count of every candidate cache, in Sizes order.
// The returned slice aliases internal state; callers must not modify it.
func (s *Sim) Misses() []uint64 { return s.misses }

// Access observes one line reference and charges a miss to every
// candidate whose simulated cache would miss it. Writes need no special
// treatment: dirtiness affects writebacks, never hit/miss under LRU.
func (s *Sim) Access(line uint64) {
	s.accesses++
	for _, t := range s.tiers {
		t.access(s, line)
	}
}

// access runs one tier's walk, verdicts and LRU update.
func (t *tier) access(s *Sim, line uint64) {
	g := line & t.mask
	base := int(g) * t.stride
	tagged := line<<1 | 1
	if t.slots[base+1] == tagged {
		// MRU of this tier's group: zero stack distance, every tier
		// candidate hits, recency order already right — decided from
		// the header's cache line alone.
		return
	}
	hdr := t.slots[base]
	n := int(uint32(hdr))
	dead := int(hdr >> 32)
	bit := sigBit(line)
	sigAt := base + 2 + int((line&t.tierTop)>>t.bits)
	stackBase := base + 2 + t.topSets
	if t.slots[sigAt]&bit == 0 {
		// Provably absent from the tier: cold, or truncated away (and
		// so resident in none of its candidates). Miss everywhere,
		// nothing to tombstone, no walk.
		for k := t.first; k < t.first+t.n; k++ {
			s.misses[k]++
		}
	} else {
		st := t.slots[stackBase : stackBase+n]
		var tombstoned bool
		if t.packed {
			tombstoned = t.walkPacked(s, tagged, st)
		} else {
			tombstoned = t.walkSlow(s, tagged, st)
		}
		if tombstoned {
			dead++
		}
	}
	t.slots[sigAt] |= bit
	t.slots[stackBase+n] = tagged
	t.slots[base+1] = tagged
	n++
	t.slots[base] = uint64(n) | uint64(dead)<<32
	if dead*2 > n || n > t.capLimit {
		s.compact(t, g)
	}
}

// sigBit hashes a line to its presence-signature bit.
func sigBit(line uint64) uint64 {
	return 1 << (line * 0x9E3779B97F4A7C15 >> 58)
}

// walkPacked scans the stack MRU to LRU, accumulating per-lane conflict
// counts in one register, until it finds the line or proves every tier
// candidate misses. Chunking keeps the inner loop tight: between
// chunks, the walk bails out once the tier's largest candidate is
// saturated — from there every tier candidate misses, and over-counting
// past saturation cannot change a verdict (counts only grow and
// verdicts compare against the fixed associativity). If the line was
// seen but not reached (saturation), a plain scan finds and tombstones
// it; if it is absent altogether (cold or truncated, which means
// resident nowhere in the tier), every candidate misses too, so the
// verdict needs no membership index.
func (t *tier) walkPacked(s *Sim, tagged uint64, st []uint64) bool {
	exitShift := uint(t.n) * t.fieldBits
	var cnt uint64
	i := len(st) - 1
	found := false
scan:
	for i >= 0 && cnt>>exitShift&t.fieldMask < s.ways {
		lo := i - 64
		if lo < -1 {
			lo = -1
		}
		for ; i > lo; i-- {
			v := st[i]
			if v == tagged {
				found = true
				break scan
			}
			cnt += t.laneInc[bits.TrailingZeros64(tagged^v)]
		}
	}
	if found {
		if cnt&^t.fieldMask != 0 {
			// count for candidate first+j-1 = conflicts in lanes >= j,
			// accumulated top-down. (All-zero conflict lanes — only
			// tombstones seen — skip straight to all-hit.)
			cum := uint64(0)
			for j := t.n; j >= 1; j-- {
				cum += cnt >> (uint(j) * t.fieldBits) & t.fieldMask
				if cum >= s.ways {
					s.misses[t.first+j-1]++
				}
			}
		}
	} else {
		for k := t.first; k < t.first+t.n; k++ {
			s.misses[k]++
		}
		// Saturation stopped the walk: the line may still sit deeper in
		// the stack and must be tombstoned before its fresh append.
		for ; i >= 0; i-- {
			if st[i] == tagged {
				break
			}
		}
	}
	if i >= 0 {
		st[i] = 0
		return true
	}
	return false
}

// walkSlow is the flat-counter variant for geometries whose stack bound
// exceeds the packed bit-field range.
func (t *tier) walkSlow(s *Sim, tagged uint64, st []uint64) bool {
	counts := t.counts
	for k := range counts {
		counts[k] = 0
	}
	top := t.n
	i := len(st) - 1
	found := false
scan:
	for i >= 0 && uint64(counts[top]) < s.ways {
		lo := i - 64
		if lo < -1 {
			lo = -1
		}
		for ; i > lo; i-- {
			v := st[i]
			if v == tagged {
				found = true
				break scan
			}
			counts[t.lanes[bits.TrailingZeros64(tagged^v)]]++
		}
	}
	if found {
		cum := uint64(0)
		for j := top; j >= 1; j-- {
			cum += uint64(counts[j])
			if cum >= s.ways {
				s.misses[t.first+j-1]++
			}
		}
	} else {
		for k := t.first; k < t.first+t.n; k++ {
			s.misses[k]++
		}
		for ; i >= 0; i-- {
			if st[i] == tagged {
				break
			}
		}
	}
	if i >= 0 {
		st[i] = 0
		return true
	}
	return false
}

// compact rewrites one group without tombstones and truncates it to the
// tier's largest candidate's resident lines: a dropped line is resident
// in none of the tier's candidates, so forgetting it preserves every
// future verdict — its next reference walks the whole (bounded) stack,
// concludes absent, and misses everywhere in the tier, exactly like a
// cold line.
func (s *Sim) compact(t *tier, g uint64) {
	base := int(g) * t.stride
	stackBase := base + 2 + t.topSets
	n := int(uint32(t.slots[base]))
	st := t.slots[stackBase : stackBase+n]
	tsc := t.topScratch
	for i := range tsc {
		tsc[i] = 0
	}
	kept := s.keepScratch[:0]
	for i := len(st) - 1; i >= 0; i-- {
		v := st[i]
		if v == 0 {
			continue
		}
		ts := (v >> 1 & t.tierTop) >> t.bits
		if uint64(tsc[ts]) >= s.ways {
			continue
		}
		tsc[ts]++
		kept = append(kept, v)
	}
	// kept is MRU-first; the stack stores MRU last. Rebuild the
	// presence signatures from the survivors, clearing the bits of
	// everything dropped.
	for i := 0; i < t.topSets; i++ {
		t.slots[base+2+i] = 0
	}
	for i, v := range kept {
		st[len(kept)-1-i] = v
		line := v >> 1
		t.slots[base+2+int((line&t.tierTop)>>t.bits)] |= sigBit(line)
	}
	t.slots[base] = uint64(len(kept))
	if len(kept) > 0 {
		t.slots[base+1] = kept[0]
	} else {
		t.slots[base+1] = 0
	}
	s.keepScratch = kept[:0]
}
