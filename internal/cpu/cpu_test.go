package cpu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := (Config{BaseCPI: 1.0}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{BaseCPI: 0}).Validate(); err == nil {
		t.Error("zero CPI accepted")
	}
	if err := (Config{BaseCPI: -1}).Validate(); err == nil {
		t.Error("negative CPI accepted")
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{BaseCPI: 0})
}

func TestExecIntegerCPI(t *testing.T) {
	c := New(Config{BaseCPI: 1.0})
	if cyc := c.Exec(100); cyc != 100 {
		t.Errorf("Exec(100) = %d cycles, want 100", cyc)
	}
	if c.Now() != 100 || c.Instructions() != 100 {
		t.Errorf("now=%d instr=%d", c.Now(), c.Instructions())
	}
}

func TestExecFractionalCPI(t *testing.T) {
	c := New(Config{BaseCPI: 1.5})
	var total uint64
	for i := 0; i < 1000; i++ {
		total += c.Exec(1)
	}
	if total < 1499 || total > 1501 {
		t.Errorf("1000 instrs at CPI 1.5 = %d cycles, want ~1500", total)
	}
	if c.Now() != total {
		t.Error("clock diverged from returned cycles")
	}
}

func TestStallSwitchIdle(t *testing.T) {
	c := New(Config{BaseCPI: 1.0})
	c.Exec(10)
	c.Stall(40)
	c.Switch(5)
	c.Idle(100)
	if c.Now() != 155 {
		t.Errorf("now = %d, want 155", c.Now())
	}
	if c.StallCycles() != 40 || c.SwitchCycles() != 5 || c.IdleCycles() != 100 {
		t.Errorf("breakdown = %d/%d/%d", c.StallCycles(), c.SwitchCycles(), c.IdleCycles())
	}
	if c.BusyCycles() != 50 {
		t.Errorf("busy = %d, want 50", c.BusyCycles())
	}
}

func TestCPIIncludesStallsExcludesIdle(t *testing.T) {
	c := New(Config{BaseCPI: 1.0})
	c.Exec(100)
	c.Stall(40)
	c.Idle(1000)
	if got := c.CPI(); math.Abs(got-1.4) > 1e-9 {
		t.Errorf("CPI = %v, want 1.4", got)
	}
}

func TestCPIIdleCore(t *testing.T) {
	c := New(Config{BaseCPI: 1.0})
	if c.CPI() != 0 {
		t.Error("CPI of idle core should be 0")
	}
}

func TestAdvanceTo(t *testing.T) {
	c := New(Config{BaseCPI: 1.0})
	c.Exec(10)
	c.AdvanceTo(50)
	if c.Now() != 50 || c.IdleCycles() != 40 {
		t.Errorf("now=%d idle=%d", c.Now(), c.IdleCycles())
	}
	c.AdvanceTo(20) // past: no-op
	if c.Now() != 50 {
		t.Error("AdvanceTo moved time backwards")
	}
}

func TestReset(t *testing.T) {
	c := New(Config{BaseCPI: 1.3})
	c.Exec(100)
	c.Stall(10)
	c.Reset()
	if c.Now() != 0 || c.Instructions() != 0 || c.CPI() != 0 {
		t.Error("reset incomplete")
	}
}

// Property: total cycles from Exec equals round(n*CPI) within one cycle,
// for any split of n into chunks.
func TestExecFractionProperty(t *testing.T) {
	f := func(chunks []uint8, cpiRaw uint8) bool {
		cpi := 0.5 + float64(cpiRaw%32)/16 // 0.5 .. 2.44
		c := New(Config{BaseCPI: cpi})
		var n uint64
		for _, ch := range chunks {
			n += uint64(ch)
			c.Exec(uint64(ch))
		}
		want := float64(n) * float64(uint64(cpi*1024+0.5)) / 1024
		return math.Abs(float64(c.Now())-want) <= 1.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
