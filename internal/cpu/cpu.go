// Package cpu models the processors of the CAKE tile: in-order VLIW cores
// (TriMedia-class) characterized by a base CPI achieved with a perfect
// memory system, on top of which memory stalls and task-switch overheads
// accumulate. The model is deliberately first-order — the paper's results
// are driven by L2 behaviour, not by pipeline microarchitecture.
package cpu

import "fmt"

// Config describes one core.
type Config struct {
	ID      int
	Name    string
	BaseCPI float64 // cycles per instruction with a perfect memory system
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BaseCPI <= 0 {
		return fmt.Errorf("cpu %q: base CPI %v not positive", c.Name, c.BaseCPI)
	}
	return nil
}

// Core tracks one processor's local time and utilization breakdown.
// The platform engine advances cores in minimum-local-time order.
type Core struct {
	cfg Config

	cycles       uint64 // local clock
	instructions uint64
	stallCycles  uint64 // memory stalls
	switchCycles uint64 // task-switch overhead (paper's t_switch)
	idleCycles   uint64 // no runnable task (paper's t_idle)

	cpiMilli  uint64 // BaseCPI in 1/1024 cycle units
	fracAccum uint64 // fractional cycle accumulator, 1/1024 units
}

// New creates a core. It panics on invalid configuration.
func New(cfg Config) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Core{cfg: cfg, cpiMilli: uint64(cfg.BaseCPI*1024 + 0.5)}
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Now returns the core's local time in cycles.
func (c *Core) Now() uint64 { return c.cycles }

// Exec retires n instructions, advancing local time by n*BaseCPI with
// exact fractional accumulation, and returns the cycles consumed.
func (c *Core) Exec(n uint64) uint64 {
	c.instructions += n
	c.fracAccum += n * c.cpiMilli
	cyc := c.fracAccum >> 10
	c.fracAccum &= 1023
	c.cycles += cyc
	return cyc
}

// Stall advances local time by cycles of memory stall.
func (c *Core) Stall(cycles uint64) {
	c.stallCycles += cycles
	c.cycles += cycles
}

// Switch advances local time by cycles of task-switch overhead.
func (c *Core) Switch(cycles uint64) {
	c.switchCycles += cycles
	c.cycles += cycles
}

// Idle advances local time by cycles with no work.
func (c *Core) Idle(cycles uint64) {
	c.idleCycles += cycles
	c.cycles += cycles
}

// AdvanceTo moves local time forward to at least t, accounting the gap as
// idle time. It is a no-op if t is in the past.
func (c *Core) AdvanceTo(t uint64) {
	if t > c.cycles {
		c.idleCycles += t - c.cycles
		c.cycles = t
	}
}

// Instructions returns the number of retired instructions.
func (c *Core) Instructions() uint64 { return c.instructions }

// StallCycles returns accumulated memory-stall cycles.
func (c *Core) StallCycles() uint64 { return c.stallCycles }

// SwitchCycles returns accumulated task-switch cycles.
func (c *Core) SwitchCycles() uint64 { return c.switchCycles }

// IdleCycles returns accumulated idle cycles.
func (c *Core) IdleCycles() uint64 { return c.idleCycles }

// BusyCycles returns cycles spent on useful work plus stalls.
func (c *Core) BusyCycles() uint64 { return c.cycles - c.idleCycles - c.switchCycles }

// CPI returns the effective cycles per instruction including stalls and
// switches but excluding idle time, the metric quoted in the paper
// ("the number of cycles per instruction of every processor").
func (c *Core) CPI() float64 {
	if c.instructions == 0 {
		return 0
	}
	return float64(c.cycles-c.idleCycles) / float64(c.instructions)
}

// Reset clears all counters and the local clock.
func (c *Core) Reset() {
	c.cycles, c.instructions, c.stallCycles = 0, 0, 0
	c.switchCycles, c.idleCycles, c.fracAccum = 0, 0, 0
}
