package sweep

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// deref unwraps an optional int spec field (nil → 0).
func deref(p *int) int {
	if p == nil {
		return 0
	}
	return *p
}

// mustParse parses a spec with no base lookup.
func mustParse(t *testing.T, raw string) Sweep {
	t.Helper()
	sw, err := Parse([]byte(raw), nil)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

// TestExpandGolden pins the expansion order: dimension-major over the
// axes (zip groups count as one dimension), last dimension fastest, so
// the point list is a deterministic function of the spec alone.
func TestExpandGolden(t *testing.T) {
	sw := mustParse(t, `{
		"name": "g",
		"base": {"workload": "mpeg2", "scale": "small"},
		"axes": [
			{"field": "platform.l2.sets", "values": [1024, 2048]},
			{"field": "seed", "range": {"from": 0, "count": 2}, "zip": "s"},
			{"field": "migration", "values": [false, true], "zip": "s"}
		]
	}`)
	points, total, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if total != 4 || len(points) != 4 {
		t.Fatalf("want 4 points, got %d of %d", len(points), total)
	}
	coords, _ := json.Marshal(func() (out [][]Coord) {
		for _, p := range points {
			out = append(out, p.Coords)
		}
		return
	}())
	const golden = `[` +
		`[{"axis":"platform.l2.sets","value":"1024"},{"axis":"seed","value":"0"},{"axis":"migration","value":"false"}],` +
		`[{"axis":"platform.l2.sets","value":"1024"},{"axis":"seed","value":"1"},{"axis":"migration","value":"true"}],` +
		`[{"axis":"platform.l2.sets","value":"2048"},{"axis":"seed","value":"0"},{"axis":"migration","value":"false"}],` +
		`[{"axis":"platform.l2.sets","value":"2048"},{"axis":"seed","value":"1"},{"axis":"migration","value":"true"}]]`
	if string(coords) != golden {
		t.Errorf("expansion order changed:\n got %s\nwant %s", coords, golden)
	}
	// The axis values actually landed on the scenarios.
	p3 := points[3].Scenario
	if p3.Platform == nil || deref(p3.Platform.L2.Sets) != 2048 || p3.Seed != 1 || !p3.Migration {
		t.Errorf("point 3 scenario wrong: %+v", p3)
	}
	if deref(points[0].Scenario.Platform.L2.Sets) != 1024 {
		t.Errorf("point 0 scenario wrong: %+v", points[0].Scenario)
	}
	if p3.Workload != "mpeg2" || p3.Scale != "small" {
		t.Errorf("base fields must carry over: %+v", p3)
	}
	// Point names encode the coordinates.
	if points[1].Scenario.Name != "g[platform.l2.sets=1024,seed=1,migration=true]" {
		t.Errorf("point name: %q", points[1].Scenario.Name)
	}
}

// TestExpandDoesNotAliasPlatform guards the subtle sharing bug: the base
// scenario's Platform is a pointer, so every point must get its own
// copy before a geometry axis writes through it.
func TestExpandDoesNotAliasPlatform(t *testing.T) {
	eight := 8
	base := scenario.Scenario{Workload: "mpeg2", Platform: &scenario.PlatformSpec{NumCPUs: &eight}}
	sw := Sweep{
		Name: "alias",
		Base: base,
		Axes: []Axis{{Field: "platform.l2.sets", Values: rawVals(t, 1024, 2048)}},
	}
	points, _, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Scenario.Platform == points[1].Scenario.Platform {
		t.Fatal("points share one PlatformSpec")
	}
	if deref(points[0].Scenario.Platform.L2.Sets) != 1024 || deref(points[1].Scenario.Platform.L2.Sets) != 2048 {
		t.Errorf("geometry values clobbered each other: %+v vs %+v",
			points[0].Scenario.Platform, points[1].Scenario.Platform)
	}
	if base.Platform.L2.Sets != nil {
		t.Errorf("expansion mutated the base platform: %+v", base.Platform)
	}
	if deref(points[0].Scenario.Platform.NumCPUs) != 8 {
		t.Error("base platform overrides must carry into points")
	}
}

func rawVals(t *testing.T, vs ...interface{}) []json.RawMessage {
	t.Helper()
	out := make([]json.RawMessage, len(vs))
	for i, v := range vs {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

// kbSets reads the effective partition-level set count of a point's
// scenario (the kb axis writes the hierarchy block).
func kbSets(t *testing.T, s scenario.Scenario) int {
	t.Helper()
	pc, err := s.Platform.Config()
	if err != nil {
		t.Fatal(err)
	}
	return pc.PartitionGeom().Sets
}

// TestL2KBAxis checks the capacity convenience derives the set count
// from the effective associativity and line size.
func TestL2KBAxis(t *testing.T) {
	sw := mustParse(t, `{
		"base": {"workload": "mpeg2"},
		"axes": [{"field": "platform.l2.kb", "values": [256, 1024]}]
	}`)
	points, _, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Section 5 defaults: 4 ways × 64 B lines → 256 B per set of ways.
	if kbSets(t, points[0].Scenario) != 1024 || kbSets(t, points[1].Scenario) != 4096 {
		t.Errorf("kb→sets derivation wrong: %d, %d",
			kbSets(t, points[0].Scenario), kbSets(t, points[1].Scenario))
	}

	// A ways axis declared BEFORE kb participates in the derivation: the
	// labeled capacity holds for every associativity.
	sw = mustParse(t, `{
		"base": {"workload": "mpeg2"},
		"axes": [{"field": "platform.l2.ways", "values": [2, 4]},
		         {"field": "platform.l2.kb", "values": [256]}]
	}`)
	points, _, err = sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if kbSets(t, points[0].Scenario) != 2048 || kbSets(t, points[1].Scenario) != 1024 {
		t.Errorf("kb must derive from the swept ways: %d, %d",
			kbSets(t, points[0].Scenario), kbSets(t, points[1].Scenario))
	}

	// Declared AFTER kb, a geometry axis would silently change the
	// capacity the points are labeled with — rejected at validation.
	if _, err := Parse([]byte(`{
		"base": {"workload": "mpeg2"},
		"axes": [{"field": "platform.l2.kb", "values": [256]},
		         {"field": "platform.l2.ways", "values": [2, 4]}]
	}`), nil); err == nil || !strings.Contains(err.Error(), "before the l2.kb axis") {
		t.Errorf("ways-after-kb must be rejected, got %v", err)
	}
}

// TestPointCap checks the cap truncates deterministically and reports
// the full product size, and that an uncapped oversized expansion errors
// instead of truncating silently.
func TestPointCap(t *testing.T) {
	sw := mustParse(t, `{
		"base": {"workload": "mpeg2"},
		"axes": [{"field": "seed", "range": {"from": 0, "count": 10}},
		         {"field": "migration", "values": [false, true]}],
		"max_points": 7
	}`)
	points, total, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if total != 20 || len(points) != 7 {
		t.Errorf("want 7 of 20 points, got %d of %d", len(points), total)
	}
	// The capped prefix is the same points the uncapped expansion starts with.
	sw.MaxPoints = 0
	full, _, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		a, _ := json.Marshal(points[i])
		b, _ := json.Marshal(full[i])
		if string(a) != string(b) {
			t.Fatalf("cap changed point %d:\n%s\nvs\n%s", i, a, b)
		}
	}

	big := mustParse(t, `{
		"base": {"workload": "mpeg2"},
		"axes": [{"field": "seed", "range": {"from": 0, "count": 5000}},
		         {"field": "migration", "values": [false, true]}]
	}`)
	if _, _, err := big.Expand(); err == nil || !strings.Contains(err.Error(), "max_points") {
		t.Errorf("oversized uncapped expansion must error mentioning max_points, got %v", err)
	}
}

// TestParseRejections enumerates the spec validation errors.
func TestParseRejections(t *testing.T) {
	cases := []struct {
		name, raw, want string
	}{
		{"unknown top-level field", `{"bse": {}, "axes": [{"field":"seed","values":[1]}]}`, `"bse"`},
		{"unknown axis object field", `{"base":{"workload":"mpeg2"},"axes":[{"feild":"seed","values":[1]}]}`, `"feild"`},
		{"unknown sweep field", `{"base":{"workload":"mpeg2"},"axes":[{"field":"l2_kb","values":[1]}]}`, "unknown field \"l2_kb\" (sweepable:"},
		{"typo in base spec", `{"base":{"workload":"mpeg2","sede":1},"axes":[{"field":"seed","values":[1]}]}`, `"sede"`},
		{"no axes", `{"base":{"workload":"mpeg2"}}`, "no axes"},
		{"no values", `{"base":{"workload":"mpeg2"},"axes":[{"field":"seed"}]}`, "no values and no range"},
		{"values and range", `{"base":{"workload":"mpeg2"},"axes":[{"field":"seed","values":[1],"range":{"from":0,"count":2}}]}`, "both values and a range"},
		{"range on a string field", `{"base":{"workload":"mpeg2"},"axes":[{"field":"solver","range":{"from":0,"count":2}}]}`, "explicit values, not a range"},
		{"bad value type", `{"base":{"workload":"mpeg2"},"axes":[{"field":"seed","values":["three"]}]}`, "decoding value"},
		{"zip length mismatch", `{"base":{"workload":"mpeg2"},"axes":[{"field":"seed","values":[1,2],"zip":"z"},{"field":"migration","values":[true],"zip":"z"}]}`, "different lengths"},
		{"duplicate axis", `{"base":{"workload":"mpeg2"},"axes":[{"field":"seed","values":[1]},{"field":"seed","values":[2]}]}`, "duplicate axis"},
		{"same field twice under different names", `{"base":{"workload":"mpeg2"},"axes":[{"name":"a","field":"seed","values":[1]},{"name":"b","field":"seed","values":[2]}]}`, `both set seed`},
		{"kb then sets", `{"base":{"workload":"mpeg2"},"axes":[{"field":"platform.l2.kb","values":[512]},{"name":"sets","field":"platform.l2.sets","values":[256,2048]}]}`, "both set platform.hierarchy.l2.sets"},
		{"sets then kb", `{"base":{"workload":"mpeg2"},"axes":[{"name":"sets","field":"platform.l2.sets","values":[256]},{"field":"platform.l2.kb","values":[512]}]}`, "both set platform.hierarchy.l2.sets"},
		{"no workload anywhere", `{"axes":[{"field":"seed","values":[1]}]}`, "names no workload"},
		{"bad pareto metric", `{"base":{"workload":"mpeg2"},"axes":[{"field":"seed","values":[1]}],"pareto":[{"x":"latency","y":"makespan"}]}`, `unknown pareto metric "latency"`},
		{"future version", `{"spec_version":9,"base":{"workload":"mpeg2"},"axes":[{"field":"seed","values":[1]}]}`, "unsupported spec_version"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.raw), nil)
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}

	// A sweep whose only workload comes from an axis is valid.
	if _, err := Parse([]byte(`{"axes":[{"field":"workload","values":["mpeg2"]}]}`), nil); err != nil {
		t.Errorf("workload-axis-only sweep rejected: %v", err)
	}
}

// profileSweep is a cheap sweep: profile-only small-scale points.
func profileSweep(t *testing.T) Sweep {
	return mustParse(t, `{
		"name": "prof",
		"base": {"workload": "jpeg1-only", "scale": "small", "runs": 1, "partition": "profile"},
		"axes": [{"field": "seed", "range": {"from": 0, "count": 2}},
		         {"field": "solver", "values": ["mckp", "ilp"]}]
	}`)
}

// TestExecuteProfileSharing checks execution-side axes share their
// profile stages: the solver axis doubles the points but not the
// profiling work (4 points, 2 profile stages).
func TestExecuteProfileSharing(t *testing.T) {
	rn := scenario.NewRunner(2)
	res, err := Execute(context.Background(), rn, profileSweep(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 4 || res.Failed != 0 {
		t.Fatalf("want 4 clean points, got %+v", res)
	}
	if res.Stats.ProfileRuns != 2 {
		t.Errorf("4 points over 2 seeds must run 2 profile stages, got %+v", res.Stats)
	}
	if res.Stats.MemoHits != 2 {
		t.Errorf("want 2 memo hits, got %+v", res.Stats)
	}
}

// TestExecuteMemoAmplification is the headline assertion: an N-point
// sweep whose axes only vary execution-side fields (migration, solver)
// runs the shared profile stage exactly once.
func TestExecuteMemoAmplification(t *testing.T) {
	sw := mustParse(t, `{
		"name": "amp",
		"base": {"workload": "jpeg1-only", "scale": "small", "runs": 1},
		"axes": [{"field": "migration", "values": [false, true]},
		         {"field": "solver", "values": ["mckp", "ilp"]}]
	}`)
	rn := scenario.NewRunner(2)
	res, err := Execute(context.Background(), rn, sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 4 || res.Failed != 0 {
		t.Fatalf("want 4 clean points, got failed=%d canceled=%d", res.Failed, res.Canceled)
	}
	if res.Stats.ProfileRuns != 1 {
		t.Errorf("execution-side axes must share ONE profile stage, got %+v", res.Stats)
	}
	// Distinct work that must not be shared: 2 optimizes (solver), 2
	// shared runs (migration), 4 partitioned runs (migration × alloc).
	if res.Stats.OptimizeRuns != 2 || res.Stats.RunRuns != 6 {
		t.Errorf("unexpected stage sharing: %+v", res.Stats)
	}
	if res.Stats.MemoHits == 0 {
		t.Error("amplified sweep must serve memo hits")
	}

	// Aggregates exist for measured points: extremes and fronts.
	if len(res.Extremes) != 3 {
		t.Errorf("want extremes for makespan/misses/energy, got %+v", res.Extremes)
	}
	if len(res.Pareto) != len(DefaultPareto()) {
		t.Errorf("want the default pareto fronts, got %+v", res.Pareto)
	}
	for _, f := range res.Pareto {
		if len(f.Indices) == 0 {
			t.Errorf("front %s/%s is empty", f.X, f.Y)
		}
	}
	for _, s := range res.Sensitivity {
		if len(s.Rows) != 2 {
			t.Errorf("axis %s: want 2 sensitivity rows, got %+v", s.Axis, s.Rows)
		}
		for _, row := range s.Rows {
			if row.N != 2 {
				t.Errorf("axis %s value %s: want 2 points, got %d", s.Axis, row.Value, row.N)
			}
		}
	}
	// The rendered form covers every section without panicking.
	text := Render(res)
	for _, want := range []string{"sweep amp: 4 points", "1 profile", "Sensitivity to migration", "Pareto front"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered sweep missing %q:\n%s", want, text)
		}
	}
}

// TestExecuteWorkerInvariance checks the aggregate document is
// bit-identical at any worker-pool bound.
func TestExecuteWorkerInvariance(t *testing.T) {
	seq, err := Execute(context.Background(), scenario.NewRunner(1), profileSweep(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Execute(context.Background(), scenario.NewRunner(4), profileSweep(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(seq)
	b, _ := json.Marshal(par)
	if string(a) != string(b) {
		t.Errorf("worker count changed the sweep aggregate:\n%s\nvs\n%s", a, b)
	}
}

// TestExecuteEmbedsPointFailures checks a failing point is recorded
// without sinking the sweep.
func TestExecuteEmbedsPointFailures(t *testing.T) {
	sw := mustParse(t, `{
		"base": {"scale": "small", "runs": 1, "partition": "profile"},
		"axes": [{"field": "workload", "values": ["jpeg1-only", "no-such-workload"]}]
	}`)
	var streamed []int
	res, err := Execute(context.Background(), scenario.NewRunner(1), sw, func(p PointResult) {
		streamed = append(streamed, p.Index)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Executed != 2 {
		t.Fatalf("want 1 failure of 2, got %+v", res)
	}
	if res.Points[1].Error == "" || !strings.Contains(res.Points[1].Error, "unknown workload") {
		t.Errorf("failure not recorded: %+v", res.Points[1])
	}
	if len(streamed) != 2 || streamed[0] != 0 || streamed[1] != 1 {
		t.Errorf("observe must see every point in order, got %v", streamed)
	}
}

// TestParetoFrontTies checks exact (x, y) ties are both admitted —
// neither point dominates the other — while a strictly worse point on
// the same y is not.
func TestParetoFrontTies(t *testing.T) {
	mk := func(idx int, x, y float64) PointSummary {
		return PointSummary{Index: idx, Metrics: &Metrics{Energy: x, Makespan: uint64(y)}}
	}
	front := paretoFront([]PointSummary{
		mk(0, 1, 5), mk(1, 1, 5), // tied optimum: both on the front
		mk(2, 2, 5), // dominated by the x=1 points
		mk(3, 3, 2), // improves y: on the front
	}, ParetoPair{X: "energy", Y: "makespan"})
	if len(front.Indices) != 3 || front.Indices[0] != 0 || front.Indices[1] != 1 || front.Indices[2] != 3 {
		t.Errorf("want front [0 1 3], got %v", front.Indices)
	}
}

// TestHugeRangeCappedSweep guards the DoS shape: an axis whose declared
// range is astronomically larger than the cap must cost only the capped
// points — in expansion, execution AND aggregation (sensitivity once
// iterated the full value domain). Completing at all is the assertion;
// an O(domain) regression would time the test out by itself.
func TestHugeRangeCappedSweep(t *testing.T) {
	sw := mustParse(t, `{
		"base": {"workload": "jpeg1-only", "scale": "small", "runs": 1, "partition": "profile"},
		"axes": [{"field": "seed", "range": {"from": 0, "count": 100000000}}],
		"max_points": 2
	}`)
	if executed, total, err := sw.Size(); err != nil || executed != 2 || total != 100000000 {
		t.Fatalf("Size = %d of %d, %v", executed, total, err)
	}
	res, err := Execute(context.Background(), scenario.NewRunner(1), sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 2 || res.Truncated != 100000000-2 {
		t.Fatalf("bad cap accounting: %+v", res)
	}
	if len(res.Sensitivity) != 1 || len(res.Sensitivity[0].Rows) != 2 {
		t.Fatalf("sensitivity must cover only executed values, got %+v", res.Sensitivity)
	}
}

// TestExecuteCanceled checks a canceled context marks unstarted points
// canceled instead of executing them.
func TestExecuteCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rn := scenario.NewRunner(1)
	res, err := Execute(ctx, rn, profileSweep(t), func(p PointResult) {
		t.Errorf("canceled sweep must not observe points, saw %d", p.Index)
	})
	if err == nil {
		t.Error("canceled sweep must return the context error")
	}
	if res == nil || res.Canceled != res.Executed || res.Executed != 4 {
		t.Fatalf("want 4 canceled points, got %+v", res)
	}
	if rn.Stats().StageRuns != 0 {
		t.Errorf("canceled sweep must not simulate: %+v", rn.Stats())
	}
}
