package sweep

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/report"
	"repro/internal/scenario"
)

// Envelope kinds of the sweep surface.
const (
	// PointKind wraps one PointResult on the NDJSON stream.
	PointKind = "sweep.point"
	// ResultKind wraps the final aggregate document.
	ResultKind = "sweep.result"
)

// Metrics are the per-point outcome numbers the aggregation works on.
// They come from the point's primary measured run — the partitioned run
// when the policy produced one, else the shared run; profile/optimize
// policies yield no metrics. L2Bytes is the point's L2 capacity, the
// "area" coordinate of the paper's size/performance trade-off.
type Metrics struct {
	Makespan   uint64  `json:"makespan"`
	Misses     uint64  `json:"misses"`
	Energy     float64 `json:"energy"`
	L2MissRate float64 `json:"l2_miss_rate"`
	CPIMean    float64 `json:"cpi_mean"`
	L2Bytes    int     `json:"l2_bytes"`
	// MissRatio is shared/partitioned misses when both runs exist.
	MissRatio float64 `json:"miss_ratio,omitempty"`
}

// metricNames lists the metrics addressable by Pareto pairs and the
// extremes tables.
var metricNames = []string{"makespan", "misses", "energy", "l2_miss_rate", "cpi", "l2_bytes"}

// MetricNames lists the addressable metric names.
func MetricNames() []string { return append([]string(nil), metricNames...) }

func validMetric(name string) bool {
	for _, m := range metricNames {
		if m == name {
			return true
		}
	}
	return false
}

// Get extracts a metric by name (see MetricNames); unknown names read
// as 0 — Pareto pairs are validated against the registry long before
// any lookup.
func (m *Metrics) Get(name string) float64 { return m.get(name) }

// get extracts a metric by name.
func (m *Metrics) get(name string) float64 {
	switch name {
	case "makespan":
		return float64(m.Makespan)
	case "misses":
		return float64(m.Misses)
	case "energy":
		return m.Energy
	case "l2_miss_rate":
		return m.L2MissRate
	case "cpi":
		return m.CPIMean
	case "l2_bytes":
		return float64(m.L2Bytes)
	}
	return 0
}

// MetricsOf derives a point's metrics from its scenario result — nil
// when the result carries no measured run (profile/optimize policies,
// failures). The exploration layer summarizes its visited points
// through exactly this derivation, so explore and sweep fronts are
// computed from identical numbers.
func MetricsOf(r *scenario.Result) *Metrics { return metricsOf(r) }

// metricsOf derives a point's metrics from its scenario result.
func metricsOf(r *scenario.Result) *Metrics {
	run := r.Partitioned
	if run == nil {
		run = r.Shared
	}
	if run == nil {
		return nil
	}
	m := &Metrics{
		Makespan:   run.Makespan,
		Misses:     run.TotalMisses,
		Energy:     run.Energy,
		L2MissRate: run.L2MissRate,
		CPIMean:    run.CPIMean,
		MissRatio:  r.MissRatio(),
	}
	if p := r.Scenario.Platform; p != nil {
		if pc, err := p.Config(); err == nil {
			geom := pc.PartitionGeom()
			m.L2Bytes = geom.SizeBytes()
		}
	}
	return m
}

// PointResult is one completed point: its coordinates plus the full
// scenario result document. The serve mode streams these as
// "sweep.point" envelopes before the final aggregate.
type PointResult struct {
	Index  int              `json:"index"`
	Coords []Coord          `json:"coords"`
	Result *scenario.Result `json:"result"`
}

// Envelope wraps the point for the NDJSON stream.
func (p PointResult) Envelope() report.Envelope {
	return report.NewEnvelope(PointKind, p)
}

// PointSummary is the compact per-point record embedded in the
// aggregate (the full result documents are streamed separately).
type PointSummary struct {
	Index    int      `json:"index"`
	Coords   []Coord  `json:"coords"`
	Key      string   `json:"key,omitempty"`
	Error    string   `json:"error,omitempty"`
	Canceled bool     `json:"canceled,omitempty"`
	Metrics  *Metrics `json:"metrics,omitempty"`
}

// SensitivityRow aggregates all points sharing one value of an axis.
type SensitivityRow struct {
	Value        string  `json:"value"`
	N            int     `json:"n"`
	MeanMakespan float64 `json:"mean_makespan"`
	MeanMisses   float64 `json:"mean_misses"`
	MeanEnergy   float64 `json:"mean_energy"`
}

// AxisSensitivity is one axis's sensitivity table: how the mean
// outcomes move as the axis's value changes, marginalized over every
// other axis.
type AxisSensitivity struct {
	Axis string           `json:"axis"`
	Rows []SensitivityRow `json:"rows"`
}

// MetricExtremes records the best (minimum) and worst (maximum) point
// of one metric.
type MetricExtremes struct {
	Metric     string  `json:"metric"`
	BestIndex  int     `json:"best_index"`
	BestValue  float64 `json:"best_value"`
	WorstIndex int     `json:"worst_index"`
	WorstValue float64 `json:"worst_value"`
}

// ParetoFront is the set of points not dominated under minimization of
// the (X, Y) metric pair, as indices into Points sorted by ascending X.
type ParetoFront struct {
	X       string `json:"x"`
	Y       string `json:"y"`
	Indices []int  `json:"indices"`
}

// Result is the versioned aggregate document of one sweep.
type Result struct {
	SchemaVersion int    `json:"schema_version"`
	Name          string `json:"name,omitempty"`
	// TotalPoints is the full cross-product size; Executed counts the
	// points actually submitted (TotalPoints - Truncated).
	TotalPoints int            `json:"total_points"`
	Executed    int            `json:"executed"`
	Truncated   int            `json:"truncated,omitempty"`
	Failed      int            `json:"failed,omitempty"`
	Canceled    int            `json:"canceled,omitempty"`
	Points      []PointSummary `json:"points"`

	Sensitivity []AxisSensitivity `json:"sensitivity,omitempty"`
	Extremes    []MetricExtremes  `json:"extremes,omitempty"`
	Pareto      []ParetoFront     `json:"pareto,omitempty"`

	// Stats is the runner-counter delta observed over this sweep's
	// execution: the memo-amplification evidence (ProfileRuns is the
	// number of distinct profile stages actually simulated). On a
	// dedicated runner (the CLI) the delta is exactly this sweep's work;
	// on the serve mode's shared runner, stage work of requests running
	// concurrently with the sweep lands in the same window.
	Stats scenario.Stats `json:"runner_stats"`
}

// Envelope wraps the aggregate for the machine-readable surface.
func (r *Result) Envelope() report.Envelope {
	return report.NewEnvelope(ResultKind, r)
}

// DefaultPareto is the front pair set used when a spec names none: the
// paper's size/performance trade-off and the energy criterion.
func DefaultPareto() []ParetoPair {
	return []ParetoPair{{X: "l2_bytes", Y: "makespan"}, {X: "energy", Y: "makespan"}}
}

// Execute expands the sweep and runs every point through rn, sharing
// the runner's content-addressed stage memo across the whole batch.
// observe (optional) is called once per executed point, in index order,
// as soon as the point and all its predecessors are done — the serve
// mode streams from exactly this callback. A canceled ctx skips points
// not yet started (they are marked Canceled and not observed) and fails
// the pending stages of points mid-pipeline (also counted Canceled);
// stages already simulating finish into the shared memo.
func Execute(ctx context.Context, rn *scenario.Runner, sw Sweep, observe func(PointResult)) (*Result, error) {
	points, total, err := sw.Expand()
	if err != nil {
		return nil, err
	}
	return ExecuteExpanded(ctx, rn, sw, points, total, observe)
}

// ExecuteExpanded is Execute over an already-expanded point list (from
// sw.Expand) — the serve mode expands once pre-flight, so every
// expansion error is a proper 400 before the response header commits,
// and the points are not materialized twice. The only error it returns
// is ctx's.
func ExecuteExpanded(ctx context.Context, rn *scenario.Runner, sw Sweep, points []Point, total int, observe func(PointResult)) (*Result, error) {
	before := rn.Stats()

	specs := make([]scenario.Scenario, len(points))
	for i, p := range points {
		specs[i] = p.Scenario
	}
	results, errs, done := rn.RunBatchStream(ctx, specs, func(i int, r *scenario.Result) bool {
		if observe != nil {
			observe(PointResult{Index: i, Coords: points[i].Coords, Result: r})
		}
		return true
	})
	<-done

	res := &Result{
		SchemaVersion: report.SchemaVersion,
		Name:          sw.Name,
		TotalPoints:   total,
		Executed:      len(points),
		Truncated:     total - len(points),
		Points:        make([]PointSummary, len(points)),
	}
	res.Stats = rn.Stats().Delta(before)
	for i, p := range points {
		ps := PointSummary{Index: i, Coords: p.Coords}
		switch r := results[i]; {
		case r == nil:
			ps.Canceled = true
			res.Canceled++
		case r.Error != "" && (errors.Is(errs[i], context.Canceled) || errors.Is(errs[i], context.DeadlineExceeded)):
			// The point started but ctx expired before its remaining
			// stages: a cancellation, not an experiment failure.
			ps.Key, ps.Error, ps.Canceled = r.Key, r.Error, true
			res.Canceled++
		case r.Error != "":
			ps.Key, ps.Error = r.Key, r.Error
			res.Failed++
		default:
			ps.Key = r.Key
			ps.Metrics = metricsOf(r)
		}
		res.Points[i] = ps
	}
	res.Sensitivity = sensitivity(sw, res.Points)
	res.Extremes = extremes(res.Points)
	pairs := sw.Pareto
	if len(pairs) == 0 {
		pairs = DefaultPareto()
	}
	for _, pr := range pairs {
		res.Pareto = append(res.Pareto, paretoFront(res.Points, pr))
	}
	return res, ctx.Err()
}

// ComputeSensitivity builds the per-axis marginal tables over an
// arbitrary point-summary set — the aggregation Execute applies to a
// full expansion, exposed so the exploration layer can marginalize over
// exactly the points it visited.
func ComputeSensitivity(sw Sweep, points []PointSummary) []AxisSensitivity {
	return sensitivity(sw, points)
}

// ComputeParetoFront computes the non-dominated set of a point-summary
// set under minimization of the metric pair (see ParetoFront). Indices
// refer to the summaries' own Index fields, so fronts over explored
// subsets and over full expansions are directly comparable.
func ComputeParetoFront(points []PointSummary, pair ParetoPair) ParetoFront {
	return paretoFront(points, pair)
}

// sensitivity builds one marginal table per axis over the executed
// points (one pass per axis — never over the axis's declared value
// domain, which a range axis can make astronomically larger than the
// capped point set). Rows appear in first-appearance order, which for
// the dimension-major expansion is exactly the axis's value order.
func sensitivity(sw Sweep, points []PointSummary) []AxisSensitivity {
	var out []AxisSensitivity
	for _, ax := range sw.Axes {
		label := ax.label()
		var order []string
		rows := map[string]*SensitivityRow{}
		for _, p := range points {
			v, ok := coordValue(p.Coords, label)
			if !ok {
				continue
			}
			r := rows[v]
			if r == nil {
				r = &SensitivityRow{Value: v}
				rows[v] = r
				order = append(order, v)
			}
			if p.Metrics == nil {
				continue
			}
			r.N++
			r.MeanMakespan += float64(p.Metrics.Makespan)
			r.MeanMisses += float64(p.Metrics.Misses)
			r.MeanEnergy += p.Metrics.Energy
		}
		table := AxisSensitivity{Axis: label, Rows: make([]SensitivityRow, 0, len(order))}
		for _, v := range order {
			r := rows[v]
			if r.N > 0 {
				r.MeanMakespan /= float64(r.N)
				r.MeanMisses /= float64(r.N)
				r.MeanEnergy /= float64(r.N)
			}
			table.Rows = append(table.Rows, *r)
		}
		out = append(out, table)
	}
	return out
}

func coordValue(coords []Coord, axis string) (string, bool) {
	for _, c := range coords {
		if c.Axis == axis {
			return c.Value, true
		}
	}
	return "", false
}

// extremes finds the best/worst point per headline metric.
func extremes(points []PointSummary) []MetricExtremes {
	var out []MetricExtremes
	for _, m := range []string{"makespan", "misses", "energy"} {
		e := MetricExtremes{Metric: m, BestIndex: -1, WorstIndex: -1}
		for _, p := range points {
			if p.Metrics == nil {
				continue
			}
			v := p.Metrics.get(m)
			if e.BestIndex < 0 || v < e.BestValue {
				e.BestIndex, e.BestValue = p.Index, v
			}
			if e.WorstIndex < 0 || v > e.WorstValue {
				e.WorstIndex, e.WorstValue = p.Index, v
			}
		}
		if e.BestIndex >= 0 {
			out = append(out, e)
		}
	}
	return out
}

// paretoFront computes the non-dominated set under minimization of the
// metric pair, stably ordered by ascending (x, y, index).
func paretoFront(points []PointSummary, pair ParetoPair) ParetoFront {
	front := ParetoFront{X: pair.X, Y: pair.Y}
	type cand struct {
		idx  int
		x, y float64
	}
	var cs []cand
	for _, p := range points {
		if p.Metrics == nil {
			continue
		}
		cs = append(cs, cand{idx: p.Index, x: p.Metrics.get(pair.X), y: p.Metrics.get(pair.Y)})
	}
	sort.Slice(cs, func(a, b int) bool {
		if cs[a].x != cs[b].x {
			return cs[a].x < cs[b].x
		}
		if cs[a].y != cs[b].y {
			return cs[a].y < cs[b].y
		}
		return cs[a].idx < cs[b].idx
	})
	// Walk in (x, y) order: a point joins the front when it strictly
	// improves y, or exactly ties the last admitted point on both
	// coordinates (neither dominates the other, e.g. two solvers landing
	// on the same allocation).
	bestX, bestY := 0.0, 0.0
	for i, c := range cs {
		if i == 0 || c.y < bestY || (c.y == bestY && c.x == bestX) {
			front.Indices = append(front.Indices, c.idx)
			bestX, bestY = c.x, c.y
		}
	}
	return front
}

// RunnerStatsLine renders the memo-amplification line of a sweep.
func (r *Result) RunnerStatsLine() string {
	return fmt.Sprintf("runner: %d stage runs (%d profile, %d optimize, %d measured), %d memo hits",
		r.Stats.StageRuns, r.Stats.ProfileRuns, r.Stats.OptimizeRuns, r.Stats.RunRuns, r.Stats.MemoHits)
}
