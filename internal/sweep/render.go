package sweep

import (
	"fmt"
	"strings"

	"repro/internal/report"
)

// Render produces the terminal form of a sweep aggregate — the
// human-readable shape of `compmem sweep`: the expansion summary, the
// memo-amplification line, the per-point outcomes, the per-axis
// sensitivity tables, the metric extremes and the Pareto fronts, all as
// internal/report tables.
func Render(r *Result) string {
	var b strings.Builder
	name := r.Name
	if name == "" {
		name = "sweep"
	}
	fmt.Fprintf(&b, "sweep %s: %d points", name, r.TotalPoints)
	if r.Truncated > 0 {
		fmt.Fprintf(&b, " (%d executed, %d truncated by the point cap)", r.Executed, r.Truncated)
	}
	if r.Failed > 0 {
		fmt.Fprintf(&b, ", %d failed", r.Failed)
	}
	if r.Canceled > 0 {
		fmt.Fprintf(&b, ", %d canceled", r.Canceled)
	}
	b.WriteByte('\n')
	b.WriteString(r.RunnerStatsLine())
	b.WriteString("\n\n")

	pt := &report.Table{
		Title:   "Points",
		Headers: []string{"#", "point", "makespan", "misses", "energy", "CPI"},
	}
	for _, p := range r.Points {
		label := coordString(p.Coords)
		switch {
		case p.Canceled:
			pt.AddRow(p.Index, label, "canceled", "", "", "")
		case p.Error != "":
			pt.AddRow(p.Index, label, "error: "+p.Error, "", "", "")
		case p.Metrics == nil:
			pt.AddRow(p.Index, label, "-", "-", "-", "-")
		default:
			pt.AddRow(p.Index, label, p.Metrics.Makespan, p.Metrics.Misses, p.Metrics.Energy, p.Metrics.CPIMean)
		}
	}
	b.WriteString(pt.String())

	for _, s := range r.Sensitivity {
		if !sensitivityHasData(s) {
			continue
		}
		t := &report.Table{
			Title:   fmt.Sprintf("\nSensitivity to %s (means over all other axes)", s.Axis),
			Headers: []string{s.Axis, "points", "mean makespan", "mean misses", "mean energy"},
		}
		for _, row := range s.Rows {
			t.AddRow(row.Value, row.N, row.MeanMakespan, row.MeanMisses, row.MeanEnergy)
		}
		b.WriteString(t.String())
	}

	if len(r.Extremes) > 0 {
		t := &report.Table{
			Title:   "\nBest / worst points per metric",
			Headers: []string{"metric", "best point", "best value", "worst point", "worst value"},
		}
		for _, e := range r.Extremes {
			t.AddRow(e.Metric, pointLabel(r, e.BestIndex), e.BestValue, pointLabel(r, e.WorstIndex), e.WorstValue)
		}
		b.WriteString(t.String())
	}

	for _, f := range r.Pareto {
		if len(f.Indices) == 0 {
			continue
		}
		t := &report.Table{
			Title:   fmt.Sprintf("\nPareto front: %s vs %s (non-dominated, both minimized)", f.X, f.Y),
			Headers: []string{"#", "point", f.X, f.Y},
		}
		for _, idx := range f.Indices {
			p := r.Points[idx]
			t.AddRow(idx, coordString(p.Coords), p.Metrics.get(f.X), p.Metrics.get(f.Y))
		}
		b.WriteString(t.String())
	}
	return b.String()
}

func sensitivityHasData(s AxisSensitivity) bool {
	for _, row := range s.Rows {
		if row.N > 0 {
			return true
		}
	}
	return false
}

func pointLabel(r *Result, idx int) string {
	if idx < 0 || idx >= len(r.Points) {
		return "-"
	}
	return fmt.Sprintf("[%d] %s", idx, coordString(r.Points[idx].Coords))
}
