// Package sweep is the declarative parameter-exploration layer on top
// of the scenario API: a Sweep is a JSON-(de)serializable spec that
// expands one base Scenario over named axes — cache geometry, CPU
// count, workload, scale, seed ranges, solver, partition policy,
// engines, migration — into a deterministic cross-product of scenario
// points (with optional axis zips and a point cap), executes the batch
// through the memoizing scenario.Runner (points that only vary
// execution-side fields share their profile stages, so an N-point
// geometry/policy grid simulates far less than N pipelines), and
// aggregates the outcomes into a versioned Result: per-axis sensitivity
// tables, best/worst points per metric, and Pareto fronts such as L2
// area vs. makespan.
//
// Sweeps are data, exactly like scenarios: the CLI runs them from JSON
// files (`compmem sweep -spec file.json`), the serve mode exposes them
// at POST /v1/sweep, and the built-in "paper-grid" sweep reproduces the
// paper's candidate-size exploration as one command.
package sweep

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/scenario"
)

// SpecVersion is the current sweep spec version.
const SpecVersion = 1

// DefaultMaxPoints bounds an expansion that sets no explicit cap. A
// cross-product larger than this is almost always a spec mistake; the
// expansion fails with an error telling the author to set max_points
// (which truncates deterministically and records how much was dropped —
// never silently).
const DefaultMaxPoints = 4096

// Spec is the wire form of a sweep. Base is a scenario spec object and
// may itself name a built-in scenario through its "base" field; it is
// resolved by Parse. Unknown fields anywhere in the document are an
// error (scenario.DecodeStrict).
type Spec struct {
	SpecVersion int             `json:"spec_version,omitempty"`
	Name        string          `json:"name,omitempty"`
	Base        json.RawMessage `json:"base,omitempty"`
	Axes        []Axis          `json:"axes"`
	// MaxPoints caps the expansion: the first MaxPoints points of the
	// cross-product run, and the aggregate records the truncation. 0
	// means uncapped, in which case an expansion beyond DefaultMaxPoints
	// is an error.
	MaxPoints int `json:"max_points,omitempty"`
	// Pareto selects the Pareto fronts to compute; empty means the
	// default fronts (l2_bytes/makespan and energy/makespan).
	Pareto []ParetoPair `json:"pareto,omitempty"`
}

// Axis is one swept dimension: a scenario field and the values it takes.
// Axes sharing a non-empty Zip group advance in lockstep (they must have
// equal lengths) and together form one dimension of the cross-product.
type Axis struct {
	// Name labels the axis in coordinates and sensitivity tables;
	// defaults to Field.
	Name string `json:"name,omitempty"`
	// Field names the swept scenario field; see Fields().
	Field string `json:"field"`
	// Values are the field's values, decoded per the field's type.
	Values []json.RawMessage `json:"values,omitempty"`
	// Range generates integer values From, From+Step, ... (Count of
	// them); integer-valued fields only. Exactly one of Values and Range
	// must be set.
	Range *Range `json:"range,omitempty"`
	// Zip names the axis's zip group; empty means a standalone axis.
	Zip string `json:"zip,omitempty"`
}

// Range generates an arithmetic progression of integer axis values.
type Range struct {
	From  int64 `json:"from"`
	Count int   `json:"count"`
	Step  int64 `json:"step,omitempty"` // default 1
}

// ParetoPair names two point metrics; the front contains the points not
// dominated under minimization of both.
type ParetoPair struct {
	X string `json:"x"`
	Y string `json:"y"`
}

// Sweep is the parsed, base-resolved form ready to expand and execute.
// Construct it via Parse (from JSON) or literally (built-in sweeps),
// then Validate.
type Sweep struct {
	Name      string
	Base      scenario.Scenario
	Axes      []Axis
	MaxPoints int
	Pareto    []ParetoPair
}

// Parse decodes a sweep spec strictly and resolves its base scenario
// (lookupBase resolves the scenario-level "base" name, exactly as in
// scenario.Resolve; it may be nil).
func Parse(raw []byte, lookupBase func(string) (scenario.Scenario, bool)) (Sweep, error) {
	var spec Spec
	if err := scenario.DecodeStrict(raw, &spec); err != nil {
		return Sweep{}, fmt.Errorf("sweep: parsing spec: %w", err)
	}
	if spec.SpecVersion != 0 && spec.SpecVersion != SpecVersion {
		return Sweep{}, fmt.Errorf("sweep: unsupported spec_version %d (current %d)", spec.SpecVersion, SpecVersion)
	}
	sw := Sweep{
		Name:      spec.Name,
		Axes:      spec.Axes,
		MaxPoints: spec.MaxPoints,
		Pareto:    spec.Pareto,
	}
	if len(spec.Base) > 0 {
		base, err := scenario.Resolve(spec.Base, lookupBase)
		if err != nil {
			return Sweep{}, fmt.Errorf("sweep: base: %w", err)
		}
		sw.Base = base
	}
	if err := sw.Validate(); err != nil {
		return Sweep{}, err
	}
	return sw, nil
}

// Validate checks the axes against the field registry, the zip-group
// lengths, and the Pareto metric names. Expansion size is checked by
// Expand (it depends on the cap).
func (sw Sweep) Validate() error {
	if len(sw.Axes) == 0 {
		return fmt.Errorf("sweep: no axes (a sweep needs at least one)")
	}
	sweepsWorkload := false
	zipLen := map[string]int{}
	labels := map[string]bool{}
	targetAxis := map[string]string{}
	kbSeen := map[string]bool{} // per hierarchy level
	for i, ax := range sw.Axes {
		if labels[ax.label()] {
			return fmt.Errorf("sweep: duplicate axis %q (give one a distinct name)", ax.label())
		}
		labels[ax.label()] = true
		fd, ok := lookupField(ax.Field)
		if !ok {
			return fmt.Errorf("sweep: axis %d: unknown field %q (sweepable: %v)", i, ax.Field, Fields())
		}
		// Two axes writing the same scenario path would overwrite each
		// other in declaration order, leaving the earlier axis's
		// coordinate labels lying about the simulated spec — this also
		// catches a level's kb vs sets axes (both set the set count) and
		// the legacy platform.l2.* spellings vs platform.hierarchy.l2.*.
		if prev, clash := targetAxis[targetOf(ax.Field)]; clash {
			return fmt.Errorf("sweep: axes %q and %q both set %s", prev, ax.label(), targetOf(ax.Field))
		}
		targetAxis[targetOf(ax.Field)] = ax.label()
		// A kb axis derives its level's set count from the associativity
		// and line size in effect when it applies (declaration order), so
		// a later ways/line_size axis on the same level would silently
		// change the capacity a point is labeled with — reject the
		// ordering outright.
		if level, prop, ok := levelProp(ax.Field); ok {
			if kbSeen[level] && (prop == "ways" || prop == "line_size") {
				return fmt.Errorf("sweep: axis %d (%s): list ways/line_size axes before the %s.kb axis (the capacity derives its set count from them)", i, ax.label(), level)
			}
			if prop == "kb" {
				kbSeen[level] = true
			}
		}
		if ax.Field == "workload" {
			sweepsWorkload = true
		}
		n, err := ax.len()
		if err != nil {
			return fmt.Errorf("sweep: axis %d (%s): %w", i, ax.label(), err)
		}
		if ax.Range != nil && !fd.rangeable {
			return fmt.Errorf("sweep: axis %d (%s): field %q takes explicit values, not a range", i, ax.label(), ax.Field)
		}
		// Decode every explicit value now against the base scenario, so a
		// bad value fails the whole sweep before any simulation (and
		// regardless of the point cap). Range axes generate uniform
		// integers: probe only the first — probing all of them would let
		// a single huge count burn unbounded CPU here, before Expand's
		// size checks ever run. Later range values (and interactions with
		// earlier axes, e.g. a ways axis ahead of an l2.kb axis) are
		// re-validated per point at expansion, under the cap.
		probes := n
		if ax.Range != nil {
			probes = 1
		}
		for k := 0; k < probes; k++ {
			probe := sw.Base // apply clones Platform before writing
			if err := ax.apply(&probe, k); err != nil {
				return fmt.Errorf("sweep: axis %d (%s) value %d: %w", i, ax.label(), k, err)
			}
		}
		if ax.Zip != "" {
			if prev, ok := zipLen[ax.Zip]; ok && prev != n {
				return fmt.Errorf("sweep: zip group %q has axes of different lengths (%d vs %d)", ax.Zip, prev, n)
			}
			zipLen[ax.Zip] = n
		}
	}
	if sw.Base.Workload == "" && sw.Base.Base == "" && !sweepsWorkload {
		return fmt.Errorf("sweep: base names no workload and no axis sweeps \"workload\"")
	}
	for _, p := range sw.Pareto {
		for _, m := range []string{p.X, p.Y} {
			if !validMetric(m) {
				return fmt.Errorf("sweep: unknown pareto metric %q (metrics: %v)", m, MetricNames())
			}
		}
	}
	if sw.MaxPoints < 0 {
		return fmt.Errorf("sweep: negative max_points %d", sw.MaxPoints)
	}
	return nil
}

// label returns the axis's display name.
func (ax Axis) label() string {
	if ax.Name != "" {
		return ax.Name
	}
	return ax.Field
}

// len returns the axis's value count.
func (ax Axis) len() (int, error) {
	switch {
	case ax.Range != nil && len(ax.Values) > 0:
		return 0, fmt.Errorf("both values and a range given (want exactly one)")
	case ax.Range != nil:
		if ax.Range.Count <= 0 {
			return 0, fmt.Errorf("range count %d not positive", ax.Range.Count)
		}
		return ax.Range.Count, nil
	case len(ax.Values) > 0:
		return len(ax.Values), nil
	}
	return 0, fmt.Errorf("no values and no range")
}

// value returns the k-th raw value of the axis (ranges materialize to
// decimal JSON numbers).
func (ax Axis) value(k int) json.RawMessage {
	if ax.Range != nil {
		step := ax.Range.Step
		if step == 0 {
			step = 1
		}
		return json.RawMessage(strconv.FormatInt(ax.Range.From+int64(k)*step, 10))
	}
	return ax.Values[k]
}

// valueLabel renders the k-th value for coordinates and tables: strings
// unquoted, everything else as its compact JSON text.
func (ax Axis) valueLabel(k int) string {
	raw := ax.value(k)
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		return s
	}
	return string(raw)
}

// apply sets the axis's k-th value on the scenario.
func (ax Axis) apply(s *scenario.Scenario, k int) error {
	fd, ok := lookupField(ax.Field)
	if !ok {
		return fmt.Errorf("unknown field %q", ax.Field)
	}
	return fd.apply(s, ax.value(k))
}

// Coord is one axis coordinate of a point.
type Coord struct {
	Axis  string `json:"axis"`
	Value string `json:"value"`
}

// Point is one expanded scenario of the sweep.
type Point struct {
	Index    int
	Coords   []Coord
	Scenario scenario.Scenario
}

// coordString renders "axis=value,axis=value" for point names.
func coordString(coords []Coord) string {
	parts := make([]string, len(coords))
	for i, c := range coords {
		parts[i] = c.Axis + "=" + c.Value
	}
	return strings.Join(parts, ",")
}

// dim is one dimension of the cross-product: a standalone axis or a
// whole zip group advancing in lockstep.
type dim struct {
	axes []int
	n    int
}

// dims validates the sweep and groups its axes into cross-product
// dimensions (a zip group is one dimension, ordered by its first
// appearance), returning them with the full product size. Only the
// computability bound applies here — the expansion caps belong to plan,
// so index-addressed consumers (Index/PointAt) can walk spaces far
// beyond the exhaustive-expansion limit.
func (sw Sweep) dims() ([]dim, int, error) {
	if err := sw.Validate(); err != nil {
		return nil, 0, err
	}
	var dims []dim
	zipDim := map[string]int{}
	for i, ax := range sw.Axes {
		n, _ := ax.len()
		if ax.Zip == "" {
			dims = append(dims, dim{axes: []int{i}, n: n})
			continue
		}
		if d, ok := zipDim[ax.Zip]; ok {
			dims[d].axes = append(dims[d].axes, i)
			continue
		}
		zipDim[ax.Zip] = len(dims)
		dims = append(dims, dim{axes: []int{i}, n: n})
	}
	// hardMax bounds the computable product outright (overflow guard and
	// sanity limit — even a capped sweep reports the true product size).
	const hardMax = 1 << 30
	total := 1
	for _, d := range dims {
		if d.n > hardMax/total {
			return nil, 0, fmt.Errorf("sweep: cross-product exceeds %d points", hardMax)
		}
		total *= d.n
	}
	return dims, total, nil
}

// plan validates the sweep and computes its dimensions, full product
// size and capped point count — everything Expand needs short of
// materializing the points.
func (sw Sweep) plan() ([]dim, int, int, error) {
	dims, total, err := sw.dims()
	if err != nil {
		return nil, 0, 0, err
	}
	limit := total
	if sw.MaxPoints > 0 && limit > sw.MaxPoints {
		limit = sw.MaxPoints
	}
	if sw.MaxPoints == 0 && total > DefaultMaxPoints {
		return nil, 0, 0, fmt.Errorf("sweep: expansion has %d points (over the %d default cap); set max_points to run a truncated prefix deliberately", total, DefaultMaxPoints)
	}
	return dims, total, limit, nil
}

// Size reports the capped point count and the full cross-product size
// without materializing any point — the cheap pre-flight check the
// serve mode runs before committing to a 200 response.
func (sw Sweep) Size() (executed, total int, err error) {
	_, total, limit, err := sw.plan()
	return limit, total, err
}

// Expand materializes the cross-product (zip groups count as one
// dimension; within a dimension-major, last-dimension-fastest order,
// so the first axis varies slowest). It returns the points actually to
// run — the first MaxPoints of the product when capped — and the full
// product size. The order is a function of the spec alone, so sweep
// results are stable across runs, platforms and worker counts.
func (sw Sweep) Expand() ([]Point, int, error) {
	_, total, limit, err := sw.plan()
	if err != nil {
		return nil, 0, err
	}
	sp, err := sw.Index()
	if err != nil {
		return nil, 0, err
	}
	points := make([]Point, limit)
	for p := 0; p < limit; p++ {
		pt, err := sp.PointAt(p)
		if err != nil {
			return nil, 0, err
		}
		points[p] = pt
	}
	return points, total, nil
}

// Space is the index-addressed view of a sweep's cross-product: points
// are materialized one at a time by PointAt in exactly Expand's
// dimension-major order, without building (or bounding) the whole
// expansion — the adaptive-exploration layer addresses million-point
// spaces through it. The exhaustive-expansion caps (MaxPoints,
// DefaultMaxPoints) deliberately do not apply; only the computability
// bound on the product size does.
type Space struct {
	sw      Sweep
	name    string
	dims    []dim
	axisDim []int
	total   int
}

// Index validates the sweep once and returns its index-addressed space.
func (sw Sweep) Index() (*Space, error) {
	dims, total, err := sw.dims()
	if err != nil {
		return nil, err
	}
	name := sw.Name
	if name == "" {
		name = "sweep"
	}
	// Map each axis to its dimension, so values apply in declaration
	// order (zip grouping affects indexing only, never apply order —
	// platform.l2.kb's derivation depends on what applied before it).
	axisDim := make([]int, len(sw.Axes))
	for d, dm := range dims {
		for _, ai := range dm.axes {
			axisDim[ai] = d
		}
	}
	return &Space{sw: sw, name: name, dims: dims, axisDim: axisDim, total: total}, nil
}

// Total reports the full cross-product size.
func (sp *Space) Total() int { return sp.total }

// DimSizes returns the value count of each cross-product dimension (a
// zip group counts as one dimension), in index order: the shape
// coordinate-wise searches walk.
func (sp *Space) DimSizes() []int {
	sizes := make([]int, len(sp.dims))
	for d, dm := range sp.dims {
		sizes[d] = dm.n
	}
	return sizes
}

// DimOf returns the dimension index of the named axis (its label), or
// -1 when no axis carries that label.
func (sp *Space) DimOf(axis string) int {
	for i, ax := range sp.sw.Axes {
		if ax.label() == axis {
			return sp.axisDim[i]
		}
	}
	return -1
}

// CoordOf decodes a point index into its per-dimension value indices
// (last dimension fastest, exactly Expand's order).
func (sp *Space) CoordOf(p int) []int {
	idx := make([]int, len(sp.dims))
	rem := p
	for d := len(sp.dims) - 1; d >= 0; d-- {
		idx[d] = rem % sp.dims[d].n
		rem /= sp.dims[d].n
	}
	return idx
}

// IndexOf is CoordOf's inverse: the point index at the given
// per-dimension value indices. It returns -1 when any coordinate is out
// of its dimension's range.
func (sp *Space) IndexOf(coord []int) int {
	if len(coord) != len(sp.dims) {
		return -1
	}
	p := 0
	for d, k := range coord {
		if k < 0 || k >= sp.dims[d].n {
			return -1
		}
		p = p*sp.dims[d].n + k
	}
	return p
}

// PointAt materializes the p-th point of the cross-product, identical
// to Expand's points[p] whenever the latter exists.
func (sp *Space) PointAt(p int) (Point, error) {
	if p < 0 || p >= sp.total {
		return Point{}, fmt.Errorf("sweep: point index %d out of range [0, %d)", p, sp.total)
	}
	idx := sp.CoordOf(p)
	s := sp.sw.Base
	s.Base = ""
	coords := make([]Coord, 0, len(sp.sw.Axes))
	for i, ax := range sp.sw.Axes {
		k := idx[sp.axisDim[i]]
		if err := ax.apply(&s, k); err != nil {
			return Point{}, fmt.Errorf("sweep: point %d, axis %s: %w", p, ax.label(), err)
		}
		coords = append(coords, Coord{Axis: ax.label(), Value: ax.valueLabel(k)})
	}
	s.Name = fmt.Sprintf("%s[%s]", sp.name, coordString(coords))
	return Point{Index: p, Coords: coords, Scenario: s}, nil
}

// Total reports the full cross-product size without materializing any
// point and without the exhaustive-expansion caps — the index-addressed
// counterpart of Size.
func (sw Sweep) Total() (int, error) {
	_, total, err := sw.dims()
	return total, err
}

// PointAt materializes one point of the cross-product by index. For
// repeated addressing, build the Space once with Index instead (this
// convenience re-validates the sweep per call).
func (sw Sweep) PointAt(p int) (Point, error) {
	sp, err := sw.Index()
	if err != nil {
		return Point{}, err
	}
	return sp.PointAt(p)
}
