package sweep

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/scenario"
)

// fieldDef describes one sweepable scenario field: how to decode an
// axis value and set it on a spec. rangeable marks integer fields that
// accept an Axis.Range. target names the scenario path the field
// writes (defaults to the field name itself); two axes sharing a
// target would overwrite each other and are rejected by Validate —
// platform.l2.kb targets platform.l2.sets, so sweeping both at once
// cannot silently mislabel the geometry.
type fieldDef struct {
	rangeable bool
	target    string
	apply     func(*scenario.Scenario, json.RawMessage) error
}

// targetOf resolves the scenario path an axis field writes.
func targetOf(field string) string {
	if t := fields[field].target; t != "" {
		return t
	}
	return field
}

// decodeTo strictly decodes one axis value into the field's Go type.
func decodeTo(raw json.RawMessage, v interface{}) error {
	if err := scenario.DecodeStrict(raw, v); err != nil {
		return fmt.Errorf("decoding value %s: %w", raw, err)
	}
	return nil
}

func stringField(set func(*scenario.Scenario, string)) fieldDef {
	return fieldDef{apply: func(s *scenario.Scenario, raw json.RawMessage) error {
		var v string
		if err := decodeTo(raw, &v); err != nil {
			return err
		}
		set(s, v)
		return nil
	}}
}

func boolField(set func(*scenario.Scenario, bool)) fieldDef {
	return fieldDef{apply: func(s *scenario.Scenario, raw json.RawMessage) error {
		var v bool
		if err := decodeTo(raw, &v); err != nil {
			return err
		}
		set(s, v)
		return nil
	}}
}

func intField(set func(*scenario.Scenario, int)) fieldDef {
	return fieldDef{rangeable: true, apply: func(s *scenario.Scenario, raw json.RawMessage) error {
		var v int
		if err := decodeTo(raw, &v); err != nil {
			return err
		}
		set(s, v)
		return nil
	}}
}

func uintField(set func(*scenario.Scenario, uint64)) fieldDef {
	return fieldDef{rangeable: true, apply: func(s *scenario.Scenario, raw json.RawMessage) error {
		var v uint64
		if err := decodeTo(raw, &v); err != nil {
			return err
		}
		set(s, v)
		return nil
	}}
}

func floatField(set func(*scenario.Scenario, float64)) fieldDef {
	return fieldDef{apply: func(s *scenario.Scenario, raw json.RawMessage) error {
		var v float64
		if err := decodeTo(raw, &v); err != nil {
			return err
		}
		set(s, v)
		return nil
	}}
}

// platformOf gives an axis its own writable platform spec: points share
// the base scenario by value, but Platform is a pointer — without the
// copy every point of the sweep would scribble on the same geometry.
func platformOf(s *scenario.Scenario) *scenario.PlatformSpec {
	var p scenario.PlatformSpec
	if s.Platform != nil {
		p = *s.Platform
	}
	s.Platform = &p
	return s.Platform
}

func platformIntField(set func(*scenario.PlatformSpec, int)) fieldDef {
	return fieldDef{rangeable: true, apply: func(s *scenario.Scenario, raw json.RawMessage) error {
		var v int
		if err := decodeTo(raw, &v); err != nil {
			return err
		}
		set(platformOf(s), v)
		return nil
	}}
}

// fields is the sweepable-field registry. Keys are the axis "field"
// spellings; dotted paths mirror the scenario spec's JSON nesting.
var fields = map[string]fieldDef{
	"workload":       stringField(func(s *scenario.Scenario, v string) { s.Workload = v }),
	"scale":          stringField(func(s *scenario.Scenario, v string) { s.Scale = v }),
	"solver":         stringField(func(s *scenario.Scenario, v string) { s.Solver = v }),
	"partition":      stringField(func(s *scenario.Scenario, v string) { s.Partition = v }),
	"profile_engine": stringField(func(s *scenario.Scenario, v string) { s.ProfileEngine = v }),
	"exec_engine":    stringField(func(s *scenario.Scenario, v string) { s.ExecEngine = v }),
	"alloc_workload": stringField(func(s *scenario.Scenario, v string) { s.AllocWorkload = v }),
	"migration":      boolField(func(s *scenario.Scenario, v bool) { s.Migration = v }),
	"seed":           uintField(func(s *scenario.Scenario, v uint64) { s.Seed = v }),
	"runs":           intField(func(s *scenario.Scenario, v int) { s.Runs = v }),
	"sizes": {apply: func(s *scenario.Scenario, raw json.RawMessage) error {
		var v []int
		if err := decodeTo(raw, &v); err != nil {
			return err
		}
		s.Sizes = v
		return nil
	}},

	"platform.num_cpus":     platformIntField(func(p *scenario.PlatformSpec, v int) { p.NumCPUs = v }),
	"platform.base_cpi":     floatField(func(s *scenario.Scenario, v float64) { platformOf(s).BaseCPI = v }),
	"platform.l1.sets":      platformIntField(func(p *scenario.PlatformSpec, v int) { p.L1.Sets = v }),
	"platform.l1.ways":      platformIntField(func(p *scenario.PlatformSpec, v int) { p.L1.Ways = v }),
	"platform.l1.line_size": platformIntField(func(p *scenario.PlatformSpec, v int) { p.L1.LineSize = v }),
	"platform.l2.sets":      platformIntField(func(p *scenario.PlatformSpec, v int) { p.L2.Sets = v }),
	"platform.l2.ways":      platformIntField(func(p *scenario.PlatformSpec, v int) { p.L2.Ways = v }),
	"platform.l2.line_size": platformIntField(func(p *scenario.PlatformSpec, v int) { p.L2.LineSize = v }),
	"platform.l2_hit_latency": {rangeable: true, apply: func(s *scenario.Scenario, raw json.RawMessage) error {
		var v uint64
		if err := decodeTo(raw, &v); err != nil {
			return err
		}
		platformOf(s).L2HitLatency = v
		return nil
	}},

	// platform.l2.kb sets the total L2 capacity in KiB, deriving the set
	// count from the spec's effective associativity and line size (the
	// section 5 defaults unless the base or an earlier axis overrode
	// them) — the natural spelling of the paper's candidate-size
	// exploration. Axes apply in declaration order, and Validate rejects
	// a ways/line_size axis declared after a kb axis, so the derivation
	// can never silently disagree with the label.
	"platform.l2.kb": {rangeable: true, target: "platform.l2.sets", apply: func(s *scenario.Scenario, raw json.RawMessage) error {
		var kb int
		if err := decodeTo(raw, &kb); err != nil {
			return err
		}
		if kb <= 0 {
			return fmt.Errorf("l2 capacity %d KiB not positive", kb)
		}
		p := platformOf(s)
		pc := p.Config() // materializes the defaults under the overrides
		lineBytes := pc.L2.Ways * pc.L2.LineSize
		bytes := kb << 10
		if bytes%lineBytes != 0 {
			return fmt.Errorf("l2 capacity %d KiB not divisible by ways×line_size = %d bytes", kb, lineBytes)
		}
		p.L2.Sets = bytes / lineBytes
		return nil
	}},
}

// Fields lists the sweepable field names, sorted.
func Fields() []string {
	names := make([]string, 0, len(fields))
	for n := range fields {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
