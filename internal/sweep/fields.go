package sweep

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/scenario"
)

// fieldDef describes one sweepable scenario field: how to decode an
// axis value and set it on a spec. rangeable marks integer fields that
// accept an Axis.Range. target names the scenario path the field
// writes (defaults to the field name itself); two axes sharing a
// target would overwrite each other and are rejected by Validate —
// the legacy platform.l2.* spellings target the same hierarchy paths
// as platform.hierarchy.l2.*, and a kb axis targets its level's sets,
// so sweeping any aliased pair at once cannot silently mislabel the
// geometry.
type fieldDef struct {
	rangeable bool
	target    string
	apply     func(*scenario.Scenario, json.RawMessage) error
}

// lookupField resolves an axis field name: the static registry first,
// then the dynamic platform.hierarchy.<level>.<prop> paths.
func lookupField(name string) (fieldDef, bool) {
	if fd, ok := fields[name]; ok {
		return fd, true
	}
	return hierarchyField(name)
}

// targetOf resolves the scenario path an axis field writes.
func targetOf(field string) string {
	if fd, ok := lookupField(field); ok && fd.target != "" {
		return fd.target
	}
	return field
}

// levelProp splits a geometry axis into its hierarchy level and
// property, accepting both the legacy platform.l{1,2}.<prop> spelling
// and the generic platform.hierarchy.<level>.<prop> one. ok is false
// for non-geometry axes.
func levelProp(field string) (level, prop string, ok bool) {
	var rest string
	switch {
	case strings.HasPrefix(field, "platform.hierarchy."):
		rest = field[len("platform.hierarchy."):]
	case strings.HasPrefix(field, "platform.l"):
		rest = field[len("platform."):]
	default:
		return "", "", false
	}
	i := strings.IndexByte(rest, '.')
	if i <= 0 || i == len(rest)-1 {
		return "", "", false
	}
	return rest[:i], rest[i+1:], true
}

// decodeTo strictly decodes one axis value into the field's Go type.
func decodeTo(raw json.RawMessage, v interface{}) error {
	if err := scenario.DecodeStrict(raw, v); err != nil {
		return fmt.Errorf("decoding value %s: %w", raw, err)
	}
	return nil
}

func stringField(set func(*scenario.Scenario, string)) fieldDef {
	return fieldDef{apply: func(s *scenario.Scenario, raw json.RawMessage) error {
		var v string
		if err := decodeTo(raw, &v); err != nil {
			return err
		}
		set(s, v)
		return nil
	}}
}

func boolField(set func(*scenario.Scenario, bool)) fieldDef {
	return fieldDef{apply: func(s *scenario.Scenario, raw json.RawMessage) error {
		var v bool
		if err := decodeTo(raw, &v); err != nil {
			return err
		}
		set(s, v)
		return nil
	}}
}

func intField(set func(*scenario.Scenario, int)) fieldDef {
	return fieldDef{rangeable: true, apply: func(s *scenario.Scenario, raw json.RawMessage) error {
		var v int
		if err := decodeTo(raw, &v); err != nil {
			return err
		}
		set(s, v)
		return nil
	}}
}

func uintField(set func(*scenario.Scenario, uint64)) fieldDef {
	return fieldDef{rangeable: true, apply: func(s *scenario.Scenario, raw json.RawMessage) error {
		var v uint64
		if err := decodeTo(raw, &v); err != nil {
			return err
		}
		set(s, v)
		return nil
	}}
}

func floatField(set func(*scenario.Scenario, float64)) fieldDef {
	return fieldDef{apply: func(s *scenario.Scenario, raw json.RawMessage) error {
		var v float64
		if err := decodeTo(raw, &v); err != nil {
			return err
		}
		set(s, v)
		return nil
	}}
}

// platformOf gives an axis its own writable platform spec: points share
// the base scenario by value, but Platform is a pointer — without the
// copy every point of the sweep would scribble on the same geometry.
func platformOf(s *scenario.Scenario) *scenario.PlatformSpec {
	var p scenario.PlatformSpec
	if s.Platform != nil {
		p = *s.Platform
	}
	s.Platform = &p
	return s.Platform
}

// hierarchyOf gives an axis a writable hierarchy block, materialized
// fully explicit from the spec's implied topology (defaults, the block
// if any, and the l1/l2 alias overlays — which are then cleared, having
// been baked in: the aliases are the outermost overlay at
// materialization time, so leaving them set would silently override the
// axis's writes). The block's level slice is fresh — points never share
// it.
func hierarchyOf(p *scenario.PlatformSpec) (*scenario.HierarchySpec, error) {
	pc, err := p.Config()
	if err != nil {
		return nil, err
	}
	full := scenario.PlatformSpecOf(pc)
	p.Hierarchy = full.Hierarchy
	p.L1, p.L2 = scenario.CacheSpec{}, scenario.CacheSpec{}
	p.L1HitLatency, p.L2HitLatency = nil, nil
	return p.Hierarchy, nil
}

// levelOf finds a named level in the (materialized) hierarchy block.
func levelOf(p *scenario.PlatformSpec, name string) (*scenario.LevelSpec, error) {
	hs, err := hierarchyOf(p)
	if err != nil {
		return nil, err
	}
	for i := range hs.Levels {
		if hs.Levels[i].Name == name {
			return &hs.Levels[i], nil
		}
	}
	names := make([]string, len(hs.Levels))
	for i := range hs.Levels {
		names[i] = hs.Levels[i].Name
	}
	return nil, fmt.Errorf("hierarchy has no level %q (levels: %v)", name, names)
}

// hierarchyField builds the dynamic fieldDef for a level-path axis:
// platform.hierarchy.<level>.{sets,ways,line_size,hit_latency,kb}.
// Legacy platform.l1/l2 axes resolve to the same targets through the
// static registry.
func hierarchyField(name string) (fieldDef, bool) {
	if !strings.HasPrefix(name, "platform.hierarchy.") {
		return fieldDef{}, false
	}
	level, prop, ok := levelProp(name)
	if !ok {
		return fieldDef{}, false
	}
	target := "platform.hierarchy." + level + "." + prop
	setInt := func(assign func(*scenario.LevelSpec, int)) fieldDef {
		return fieldDef{rangeable: true, target: target, apply: func(s *scenario.Scenario, raw json.RawMessage) error {
			var v int
			if err := decodeTo(raw, &v); err != nil {
				return err
			}
			l, err := levelOf(platformOf(s), level)
			if err != nil {
				return err
			}
			assign(l, v)
			return nil
		}}
	}
	switch prop {
	case "sets":
		return setInt(func(l *scenario.LevelSpec, v int) { l.Sets = &v }), true
	case "ways":
		return setInt(func(l *scenario.LevelSpec, v int) { l.Ways = &v }), true
	case "line_size":
		return setInt(func(l *scenario.LevelSpec, v int) { l.LineSize = &v }), true
	case "hit_latency":
		return fieldDef{rangeable: true, target: target, apply: func(s *scenario.Scenario, raw json.RawMessage) error {
			var v uint64
			if err := decodeTo(raw, &v); err != nil {
				return err
			}
			l, err := levelOf(platformOf(s), level)
			if err != nil {
				return err
			}
			l.HitLatency = &v
			return nil
		}}, true
	case "kb":
		return fieldDef{rangeable: true, target: "platform.hierarchy." + level + ".sets", apply: func(s *scenario.Scenario, raw json.RawMessage) error {
			var kb int
			if err := decodeTo(raw, &kb); err != nil {
				return err
			}
			return applyKB(s, level, kb)
		}}, true
	}
	return fieldDef{}, false
}

// applyKB sets a level's total capacity in KiB, deriving the set count
// from the level's effective associativity and line size (the defaults
// unless the base or an earlier axis overrode them) — the natural
// spelling of the paper's candidate-size exploration. Axes apply in
// declaration order, and Validate rejects a ways/line_size axis of the
// same level declared after its kb axis, so the derivation can never
// silently disagree with the label.
func applyKB(s *scenario.Scenario, level string, kb int) error {
	if kb <= 0 {
		return fmt.Errorf("%s capacity %d KiB not positive", level, kb)
	}
	p := platformOf(s)
	l, err := levelOf(p, level)
	if err != nil {
		return err
	}
	// levelOf materializes the block fully explicit (hierarchyOf), so
	// the effective geometry is right on the level spec.
	ways, line := *l.Ways, *l.LineSize
	lineBytes := ways * line
	bytes := kb << 10
	if lineBytes <= 0 || bytes%lineBytes != 0 {
		return fmt.Errorf("%s capacity %d KiB not divisible by ways×line_size = %d bytes", level, kb, lineBytes)
	}
	sets := bytes / lineBytes
	l.Sets = &sets
	return nil
}

// fields is the static sweepable-field registry. Keys are the axis
// "field" spellings; dotted paths mirror the scenario spec's JSON
// nesting. The platform.l1/l2 entries are the legacy aliases of the
// platform.hierarchy.* paths and share their targets.
var fields = map[string]fieldDef{
	"workload":       stringField(func(s *scenario.Scenario, v string) { s.Workload = v }),
	"scale":          stringField(func(s *scenario.Scenario, v string) { s.Scale = v }),
	"solver":         stringField(func(s *scenario.Scenario, v string) { s.Solver = v }),
	"partition":      stringField(func(s *scenario.Scenario, v string) { s.Partition = v }),
	"profile_engine": stringField(func(s *scenario.Scenario, v string) { s.ProfileEngine = v }),
	"profile_level":  stringField(func(s *scenario.Scenario, v string) { s.ProfileLevel = v }),
	"exec_engine":    stringField(func(s *scenario.Scenario, v string) { s.ExecEngine = v }),
	"alloc_workload": stringField(func(s *scenario.Scenario, v string) { s.AllocWorkload = v }),
	"migration":      boolField(func(s *scenario.Scenario, v bool) { s.Migration = v }),
	"seed":           uintField(func(s *scenario.Scenario, v uint64) { s.Seed = v }),
	"runs":           intField(func(s *scenario.Scenario, v int) { s.Runs = v }),
	"sizes": {apply: func(s *scenario.Scenario, raw json.RawMessage) error {
		var v []int
		if err := decodeTo(raw, &v); err != nil {
			return err
		}
		s.Sizes = v
		return nil
	}},

	"platform.num_cpus": {rangeable: true, apply: func(s *scenario.Scenario, raw json.RawMessage) error {
		var v int
		if err := decodeTo(raw, &v); err != nil {
			return err
		}
		platformOf(s).NumCPUs = &v
		return nil
	}},
	"platform.base_cpi": floatField(func(s *scenario.Scenario, v float64) { platformOf(s).BaseCPI = &v }),

	"platform.l1.sets":      aliasLevelInt("l1", "sets", func(c *scenario.CacheSpec, v *int) { c.Sets = v }),
	"platform.l1.ways":      aliasLevelInt("l1", "ways", func(c *scenario.CacheSpec, v *int) { c.Ways = v }),
	"platform.l1.line_size": aliasLevelInt("l1", "line_size", func(c *scenario.CacheSpec, v *int) { c.LineSize = v }),
	"platform.l2.sets":      aliasLevelInt("l2", "sets", func(c *scenario.CacheSpec, v *int) { c.Sets = v }),
	"platform.l2.ways":      aliasLevelInt("l2", "ways", func(c *scenario.CacheSpec, v *int) { c.Ways = v }),
	"platform.l2.line_size": aliasLevelInt("l2", "line_size", func(c *scenario.CacheSpec, v *int) { c.LineSize = v }),
	"platform.l2_hit_latency": {rangeable: true, target: "platform.hierarchy.l2.hit_latency", apply: func(s *scenario.Scenario, raw json.RawMessage) error {
		var v uint64
		if err := decodeTo(raw, &v); err != nil {
			return err
		}
		platformOf(s).L2HitLatency = &v
		return nil
	}},

	// platform.l2.kb is the legacy spelling of the shared level's
	// capacity; platform.hierarchy.<level>.kb generalizes it to any
	// level of any topology.
	"platform.l2.kb": {rangeable: true, target: "platform.hierarchy.l2.sets", apply: func(s *scenario.Scenario, raw json.RawMessage) error {
		var kb int
		if err := decodeTo(raw, &kb); err != nil {
			return err
		}
		return applyKB(s, "l2", kb)
	}},
}

// aliasLevelInt builds the legacy l1/l2 alias setter: it writes the
// legacy CacheSpec field (which overlays the equally-named hierarchy
// level) and shares the hierarchy path's conflict target.
func aliasLevelInt(level, prop string, set func(*scenario.CacheSpec, *int)) fieldDef {
	return fieldDef{rangeable: true, target: "platform.hierarchy." + level + "." + prop, apply: func(s *scenario.Scenario, raw json.RawMessage) error {
		var v int
		if err := decodeTo(raw, &v); err != nil {
			return err
		}
		p := platformOf(s)
		cs := &p.L1
		if level == "l2" {
			cs = &p.L2
		}
		set(cs, &v)
		return nil
	}}
}

// Fields lists the sweepable field names, sorted, with the dynamic
// level-path pattern appended.
func Fields() []string {
	names := make([]string, 0, len(fields)+1)
	for n := range fields {
		names = append(names, n)
	}
	sort.Strings(names)
	return append(names, "platform.hierarchy.<level>.{sets,ways,line_size,hit_latency,kb}")
}
