package sweep

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/scenario"
)

func baseScenario() scenario.Scenario {
	return scenario.Scenario{Workload: "mpeg2", Scale: "small"}
}

// spaceSweep is a 3-dimension sweep with a zip group, small enough to
// cross-check PointAt against Expand point by point.
func spaceSweep() Sweep {
	return Sweep{
		Name: "space",
		Base: baseScenario(),
		Axes: []Axis{
			{Field: "seed", Range: &Range{From: 0, Count: 3}},
			{Name: "l2_kb", Field: "platform.l2.kb", Values: rawValues(t128, t256)},
			{Field: "runs", Values: rawValues("1", "2"), Zip: "g"},
			{Field: "solver", Values: rawValues(`"mckp"`, `"ilp"`), Zip: "g"},
		},
	}
}

const (
	t128 = "128"
	t256 = "256"
)

func rawValues(vs ...string) []json.RawMessage {
	out := make([]json.RawMessage, len(vs))
	for i, v := range vs {
		out[i] = json.RawMessage(v)
	}
	return out
}

// TestSpaceMatchesExpand pins the index-addressed view to the
// exhaustive expansion: same total, and PointAt(i) bit-identical to
// points[i] for every index, including coordinate labels and the
// derived scenario name.
func TestSpaceMatchesExpand(t *testing.T) {
	sw := spaceSweep()
	points, total, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sw.Index()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Total() != total || len(points) != total {
		t.Fatalf("total mismatch: space %d, expand %d (%d points)", sp.Total(), total, len(points))
	}
	for i := range points {
		pt, err := sp.PointAt(i)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(points[i])
		got, _ := json.Marshal(pt)
		if string(want) != string(got) {
			t.Errorf("point %d: PointAt diverges from Expand:\n  expand: %s\n  space:  %s", i, want, got)
		}
	}
	if _, err := sp.PointAt(total); err == nil {
		t.Error("PointAt past the end must fail")
	}
	if _, err := sp.PointAt(-1); err == nil {
		t.Error("PointAt(-1) must fail")
	}
}

// TestSpaceCoordRoundTrip checks CoordOf/IndexOf are inverses over the
// whole space and that DimSizes reflects zip grouping (two zipped axes
// are one dimension).
func TestSpaceCoordRoundTrip(t *testing.T) {
	sp, err := spaceSweep().Index()
	if err != nil {
		t.Fatal(err)
	}
	sizes := sp.DimSizes()
	if len(sizes) != 3 || sizes[0] != 3 || sizes[1] != 2 || sizes[2] != 2 {
		t.Fatalf("want dims [3 2 2], got %v", sizes)
	}
	for p := 0; p < sp.Total(); p++ {
		if got := sp.IndexOf(sp.CoordOf(p)); got != p {
			t.Fatalf("IndexOf(CoordOf(%d)) = %d", p, got)
		}
	}
	if sp.IndexOf([]int{0, 0, 2}) != -1 || sp.IndexOf([]int{0, 0}) != -1 {
		t.Error("out-of-range coordinates must map to -1")
	}
	if sp.DimOf("seed") != 0 || sp.DimOf("l2_kb") != 1 || sp.DimOf("runs") != 2 || sp.DimOf("solver") != 2 {
		t.Errorf("axis-to-dimension mapping wrong: seed=%d l2_kb=%d runs=%d solver=%d",
			sp.DimOf("seed"), sp.DimOf("l2_kb"), sp.DimOf("runs"), sp.DimOf("solver"))
	}
	if sp.DimOf("nope") != -1 {
		t.Error("unknown axis must map to -1")
	}
}

// TestHugeSpaceExplorableNotExpandable is the regression test for the
// lazy-indexing contract: a space beyond the 4096-point exhaustive cap
// stays addressable point by point (Total, PointAt), while Expand and
// Size keep refusing it — exploration scales, exhaustive expansion
// stays bounded.
func TestHugeSpaceExplorableNotExpandable(t *testing.T) {
	sw := Sweep{
		Base: baseScenario(),
		Axes: []Axis{
			{Field: "seed", Range: &Range{From: 0, Count: 1 << 16}},
			{Name: "l2_kb", Field: "platform.l2.kb", Values: rawValues(t128, t256)},
		},
	}
	total, err := sw.Total()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 << 16; total != want {
		t.Fatalf("Total() = %d, want %d", total, want)
	}
	sp, err := sw.Index()
	if err != nil {
		t.Fatal(err)
	}
	// A point deep past the exhaustive cap materializes fine.
	deep := 5*4096 + 3
	pt, err := sp.PointAt(deep)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Index != deep || pt.Scenario.Seed != uint64(deep/2) {
		t.Errorf("deep point wrong: index %d seed %d coords %v", pt.Index, pt.Scenario.Seed, pt.Coords)
	}
	if _, _, err := sw.Expand(); err == nil || !strings.Contains(err.Error(), "default cap") {
		t.Errorf("uncapped Expand of a %d-point space must fail with the default-cap error, got %v", total, err)
	}
	if _, _, err := sw.Size(); err == nil {
		t.Error("Size must keep refusing an uncapped over-limit expansion")
	}
}
