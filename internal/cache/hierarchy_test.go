package cache

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

func newHier() (*Hierarchy, *Cache, *Cache, *FixedMem) {
	l1 := New(Config{Name: "l1", Sets: 8, Ways: 2, LineSize: 64})
	l2 := New(Config{Name: "l2", Sets: 64, Ways: 4, LineSize: 64})
	m := &FixedMem{Latency: 50}
	h := NewTwoLevel(l1, l2, 1, 8, m)
	return h, l1, l2, m
}

func TestHierarchyLatencies(t *testing.T) {
	h, _, _, _ := newHier()
	a := trace.Access{Addr: 0x1000, Size: 4, Op: trace.Read}
	// Cold: L1 miss + L2 miss + memory.
	if lat := h.AccessAt(a, 0); lat != 1+8+50 {
		t.Errorf("cold latency = %d, want 59", lat)
	}
	// Warm: L1 hit.
	if lat := h.AccessAt(a, 100); lat != 1 {
		t.Errorf("L1 hit latency = %d, want 1", lat)
	}
}

func TestHierarchyL2HitAfterL1Evict(t *testing.T) {
	h, l1, _, _ := newHier()
	// Fill a line, then evict it from L1 (2 ways, 8 sets -> same set every
	// 512 bytes) with two more lines; L2 keeps it.
	h.AccessAt(trace.Access{Addr: 0, Size: 4}, 0)
	h.AccessAt(trace.Access{Addr: 512, Size: 4}, 0)
	h.AccessAt(trace.Access{Addr: 1024, Size: 4}, 0)
	if l1.Probe(0, -1) {
		t.Fatal("line 0 still in L1")
	}
	if lat := h.AccessAt(trace.Access{Addr: 0, Size: 4}, 0); lat != 1+8 {
		t.Errorf("L2 hit latency = %d, want 9", lat)
	}
}

func TestHierarchyFillCounting(t *testing.T) {
	h, _, _, m := newHier()
	h.AccessAt(trace.Access{Addr: 0, Size: 4}, 0)
	if h.DemandFills != 1 {
		t.Errorf("demand fills = %d, want 1", h.DemandFills)
	}
	if m.Reads != 1 {
		t.Errorf("memory reads = %d, want 1", m.Reads)
	}
}

func TestHierarchyL1WritebackGoesToL2(t *testing.T) {
	h, _, l2, _ := newHier()
	// Dirty line 0 in L1, then evict it via two conflicting fills.
	h.AccessAt(trace.Access{Addr: 0, Size: 4, Op: trace.Write}, 0)
	h.AccessAt(trace.Access{Addr: 512, Size: 4}, 0)
	before := l2.OpStats(trace.Write).Accesses
	h.AccessAt(trace.Access{Addr: 1024, Size: 4}, 0)
	if h.WritebacksToL2 != 1 {
		t.Fatalf("writebacks to L2 = %d, want 1", h.WritebacksToL2)
	}
	if l2.OpStats(trace.Write).Accesses != before+1 {
		t.Error("L1 victim did not reach L2 as a write")
	}
}

func TestHierarchyL2WritebackPostsToMemory(t *testing.T) {
	l2 := New(Config{Name: "l2", Sets: 1, Ways: 1, LineSize: 64})
	m := &FixedMem{Latency: 50}
	h := NewTwoLevel(nil, l2, 0, 8, m) // no L1
	h.AccessAt(trace.Access{Addr: 0, Size: 4, Op: trace.Write}, 0)
	h.AccessAt(trace.Access{Addr: 64, Size: 4, Op: trace.Read}, 0) // evicts dirty 0
	if h.WritebacksToMem != 1 {
		t.Errorf("writebacks to mem = %d, want 1", h.WritebacksToMem)
	}
	if m.Writes != 1 {
		t.Errorf("posted writes = %d, want 1", m.Writes)
	}
}

func TestHierarchyBypassSharedRegions(t *testing.T) {
	h, l1, l2, _ := newHier()
	const fifoRegion = mem.RegionID(4)
	h.PrivCacheable = func(r mem.RegionID) bool { return r != fifoRegion }

	a := trace.Access{Addr: 0x2000, Size: 4, Op: trace.Write, Region: fifoRegion}
	lat := h.AccessAt(a, 0)
	if lat != 1+8+50 {
		t.Errorf("bypass cold latency = %d, want 59", lat)
	}
	if l1.OccupiedLines() != 0 {
		t.Error("bypassed access was cached in L1")
	}
	if l2.OpStats(trace.Write).Accesses != 1 {
		t.Error("bypassed write should reach L2 as a write")
	}
	// Second touch of the same line: merged into the outstanding burst.
	if lat := h.AccessAt(a, 0); lat != 1+1 {
		t.Errorf("bypass burst latency = %d, want 2", lat)
	}
	if h.MergedBursts != 1 {
		t.Errorf("merged bursts = %d, want 1", h.MergedBursts)
	}
	// A different line is a fresh L2 access (hit, since nothing evicted).
	b := a
	b.Addr += 64
	h.AccessAt(b, 0)
	if lat := h.AccessAt(a, 0); lat != 1+8 {
		t.Errorf("bypass re-access latency = %d, want 9 (L2 hit)", lat)
	}
}

func TestHierarchyWithoutL1(t *testing.T) {
	l2 := New(Config{Name: "l2", Sets: 64, Ways: 4, LineSize: 64})
	h := NewTwoLevel(nil, l2, 0, 8, &FixedMem{Latency: 50})
	if lat := h.AccessAt(trace.Access{Addr: 0, Size: 4}, 0); lat != 8+50 {
		t.Errorf("no-L1 cold latency = %d, want 58", lat)
	}
	// Same line again: burst-merged.
	if lat := h.AccessAt(trace.Access{Addr: 0, Size: 4}, 0); lat != 1 {
		t.Errorf("no-L1 burst latency = %d, want 1", lat)
	}
	// Different line, then back: a real L2 hit.
	h.AccessAt(trace.Access{Addr: 64, Size: 4}, 0)
	if lat := h.AccessAt(trace.Access{Addr: 0, Size: 4}, 0); lat != 8 {
		t.Errorf("no-L1 warm latency = %d, want 8", lat)
	}
}

func TestHierarchyStraddle(t *testing.T) {
	h, _, _, _ := newHier()
	lat := h.AccessAt(trace.Access{Addr: 60, Size: 8}, 0)
	if lat != 2*(1+8+50) {
		t.Errorf("straddle latency = %d, want %d", lat, 2*59)
	}
}

func TestHierarchySharedL2BetweenCores(t *testing.T) {
	// Two hierarchies (cores) share one L2, like the CAKE tile.
	l2 := New(Config{Name: "l2", Sets: 64, Ways: 4, LineSize: 64})
	mk := func() *Hierarchy {
		l1 := New(Config{Name: "l1", Sets: 8, Ways: 2, LineSize: 64})
		return NewTwoLevel(l1, l2, 1, 8, &FixedMem{Latency: 50})
	}
	h0, h1 := mk(), mk()
	h0.AccessAt(trace.Access{Addr: 0x4000, Size: 4}, 0)
	// Core 1 misses its own L1 but hits the shared L2.
	if lat := h1.AccessAt(trace.Access{Addr: 0x4000, Size: 4}, 0); lat != 1+8 {
		t.Errorf("cross-core L2 hit latency = %d, want 9", lat)
	}
}

func TestFixedMemCounters(t *testing.T) {
	m := &FixedMem{Latency: 7}
	if m.Request(0, 0) != 7 {
		t.Error("latency wrong")
	}
	m.Post(0, 0)
	if m.Reads != 1 || m.Writes != 1 {
		t.Errorf("counters = %d/%d", m.Reads, m.Writes)
	}
}
