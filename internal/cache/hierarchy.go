package cache

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/trace"
)

// MemPort is the interface to whatever lies below the last cache level —
// in the CAKE tile, the snooping interconnect plus off-chip memory
// (internal/bus). Request is a demand line fill whose latency stalls the
// core; Post is a posted writeback that occupies bandwidth but does not
// stall the issuing core. addr is the byte address of the line, used for
// memory-bank interleaving.
type MemPort interface {
	Request(addr, now uint64) uint64
	Post(addr, now uint64)
}

// FixedMem is a MemPort with constant latency and no contention, used in
// unit tests and in isolated (single-entity) profiling runs.
type FixedMem struct {
	Latency uint64
	Reads   uint64
	Writes  uint64
}

// Request implements MemPort.
func (m *FixedMem) Request(addr, now uint64) uint64 {
	m.Reads++
	return m.Latency
}

// Post implements MemPort.
func (m *FixedMem) Post(addr, now uint64) { m.Writes++ }

// Hierarchy interprets one CPU's path through a cache Topology: the
// ordered cache levels from the CPU-side leaf to the memory-side root,
// terminating in the memory port, with an inclusive walk charging
// latencies and cascading victim writebacks at every level. It is the
// per-CPU view of a Tree (Tree.Hierarchy); CPUs sharing a level (a
// shared L2 or L3, a cluster cache) pass the same *Cache in their paths,
// exactly as the CAKE tile of Figure 1 shares its L2.
//
// Shared regions (FIFOs, frame buffers, data/bss) bypass every level
// before the first shared-scope one: their lines live only in caches
// visible to all processors. This stands in for coherence — on the real
// platform the snooping protocol keeps shared lines effectively out of
// the private (and cluster) caches, and the paper's analysis (section 3)
// likewise places all inter-task interaction in the shared cache. The
// substitution is recorded in DESIGN.md.
//
// Latency model: the leaf level's hit latency is charged on every access
// (it covers address generation and the leaf tag probe, even when the
// access then bypasses the leaf); every deeper level accessed adds its
// own hit latency; a miss at the root adds the memory port's demand
// latency. With no sub-shared level there is no probe charge — the
// walk's first level carries the full cost of reaching it.
type Hierarchy struct {
	levels      []*Cache
	hitLat      []uint64
	shifts      []uint
	firstShared int    // index of the first shared-scope level
	probeLat    uint64 // hitLat[0] when a sub-shared leaf exists, else 0

	Mem MemPort

	// PrivCacheable decides whether a region's lines may live in the
	// levels before the first shared one (the leaf private/cluster
	// caches). nil means everything may (single-task unit tests).
	PrivCacheable func(mem.RegionID) bool

	// RegionOf resolves a line address back to its owning entity, for
	// attributing writeback traffic. nil disables attribution.
	RegionOf func(addr uint64) mem.RegionID

	// DemandFills counts fills into the leaf level (an access that
	// missed there and walked deeper); WritebacksToL2 counts dirty leaf
	// victims written into the next level; WritebacksToMem counts dirty
	// root victims posted to the memory port. Victim traffic between
	// intermediate levels shows up in each level's own Stats.
	DemandFills     uint64
	WritebacksToL2  uint64
	WritebacksToMem uint64

	// Burst merging on the bypass path: word-by-word streaming through a
	// FIFO or frame buffer touches the same shared-level line many times
	// in a row; the hardware serves those from the line buffer of the
	// outstanding transaction. Only the first touch of a line is a cache
	// access; subsequent touches cost one cycle. (The leaf cache performs
	// the equivalent merging for cacheable regions.)
	lastBypassLine uint64
	haveBypassLine bool
	MergedBursts   uint64
}

// NewHierarchy wires one CPU's leaf-to-root path. levels runs from the
// CPU-side leaf to the memory-side root; firstShared is the index of the
// first shared-scope level — the root must be shared (Topology.Validate
// enforces the same), so firstShared < len(levels); hitLats are the
// per-level hit latencies. It panics on a malformed path: paths are
// fixed by the platform description, so a bad one is a programming
// error.
func NewHierarchy(levels []*Cache, firstShared int, hitLats []uint64, memPort MemPort) *Hierarchy {
	if len(levels) == 0 {
		panic("cache: hierarchy with no levels")
	}
	if len(hitLats) != len(levels) {
		panic(fmt.Sprintf("cache: %d hit latencies for %d levels", len(hitLats), len(levels)))
	}
	if firstShared < 0 || firstShared >= len(levels) {
		panic(fmt.Sprintf("cache: firstShared %d out of range for %d levels (the root level must be shared)", firstShared, len(levels)))
	}
	h := &Hierarchy{
		levels:      levels,
		hitLat:      append([]uint64(nil), hitLats...),
		firstShared: firstShared,
		Mem:         memPort,
	}
	for _, c := range levels {
		h.shifts = append(h.shifts, c.lineShift)
	}
	if firstShared > 0 {
		h.probeLat = h.hitLat[0]
	}
	return h
}

// NewTwoLevel is the compatibility constructor for the classic private
// L1 + shared L2 pair (l1 may be nil for the L1-less single-level
// system), preserving the legacy latency semantics: l1HitLat charged on
// every access, l2HitLat added per L2 access.
func NewTwoLevel(l1, l2 *Cache, l1HitLat, l2HitLat uint64, memPort MemPort) *Hierarchy {
	if l1 == nil {
		return NewHierarchy([]*Cache{l2}, 0, []uint64{l2HitLat}, memPort)
	}
	return NewHierarchy([]*Cache{l1, l2}, 1, []uint64{l1HitLat, l2HitLat}, memPort)
}

// Level returns the k-th level's cache (0 = leaf).
func (h *Hierarchy) Level(k int) *Cache { return h.levels[k] }

// NumLevels returns the path depth.
func (h *Hierarchy) NumLevels() int { return len(h.levels) }

// Leaf returns the leaf-side private/cluster cache, or nil when the
// first level is already shared.
func (h *Hierarchy) Leaf() *Cache {
	if h.firstShared == 0 {
		return nil
	}
	return h.levels[0]
}

// levelLine converts a line address between two levels' line sizes.
func levelLine(line uint64, fromShift, toShift uint) uint64 {
	if toShift >= fromShift {
		return line >> (toShift - fromShift)
	}
	return line << (fromShift - toShift)
}

// AccessAt performs one access at local time now and returns the latency
// charged to the core. Accesses that straddle a line boundary are split.
func (h *Hierarchy) AccessAt(a trace.Access, now uint64) uint64 {
	size := uint64(a.Size)
	if size == 0 {
		size = 1
	}
	shift := h.shifts[0]
	first := a.Addr >> shift
	last := (a.Addr + size - 1) >> shift
	var lat uint64
	for ln := first; ln <= last; ln++ {
		lat += h.accessLine(ln, shift, a.Op == trace.Write, a.Region, now+lat)
	}
	return lat
}

func (h *Hierarchy) accessLine(lineAddr uint64, shift uint, write bool, region mem.RegionID, now uint64) uint64 {
	lat, _, _ := h.accessLineRes(lineAddr, shift, write, region, now)
	return lat
}

// accessLineRes is accessLine plus the leaf outcome, which the fast
// path's register file uses to track residency (priv false on the bypass
// path, where r0 is meaningless).
func (h *Hierarchy) accessLineRes(lineAddr uint64, shift uint, write bool, region mem.RegionID, now uint64) (lat uint64, priv bool, r0 Result) {
	lat = h.probeLat
	priv = h.firstShared > 0 && (h.PrivCacheable == nil || h.PrivCacheable(region))
	start := 0
	if !priv {
		if h.haveBypassLine && h.lastBypassLine == lineAddr {
			h.MergedBursts++
			return lat + 1, false, r0
		}
		h.lastBypassLine = lineAddr
		h.haveBypassLine = true
		start = h.firstShared
	}
	for k := start; k < len(h.levels); k++ {
		if k > 0 || h.firstShared == 0 {
			lat += h.hitLat[k]
		}
		// The first accessed level sees the access's own operation; any
		// level below sees a read fill (write-allocate above it).
		opWrite := write && k == start
		line := levelLine(lineAddr, shift, h.shifts[k])
		r := h.levels[k].AccessLine(line, opWrite, region)
		if k == 0 {
			r0 = r
		}
		if r.Writeback {
			// A dirty victim cascades into the next level as a posted
			// write, before this level's demand walk descends. A private
			// leaf's victim is inserted at the access's issue time (the
			// store buffer drains in parallel); deeper victims — including
			// a shared leaf's, matching the legacy L1-less hierarchy —
			// surface after the latency accumulated so far.
			wbNow := now + lat
			if k == 0 && h.firstShared > 0 {
				h.WritebacksToL2++
				wbNow = now
			}
			h.writebackInto(k+1, r.VictimTag, h.shifts[k], wbNow)
		}
		if r.Hit {
			if priv && k > 0 {
				h.DemandFills++
			}
			return lat, priv, r0
		}
		if k == len(h.levels)-1 {
			if h.Mem != nil {
				lat += h.Mem.Request(line<<h.shifts[k], now+lat)
			}
		}
	}
	if priv {
		h.DemandFills++
	}
	return lat, priv, r0
}

// writebackInto inserts a victim line evicted from the level above dest
// as a posted write; dirty victims it displaces cascade further down,
// and a dirty root victim is posted to the memory port.
func (h *Hierarchy) writebackInto(dest int, victimTag uint64, fromShift uint, now uint64) {
	if dest == len(h.levels) {
		h.WritebacksToMem++
		if h.Mem != nil {
			h.Mem.Post(victimTag<<fromShift, now)
		}
		return
	}
	region := mem.NoRegion
	if h.RegionOf != nil {
		region = h.RegionOf(victimTag << fromShift)
	}
	line := levelLine(victimTag, fromShift, h.shifts[dest])
	r := h.levels[dest].AccessLine(line, true, region)
	if r.Writeback {
		h.writebackInto(dest+1, r.VictimTag, h.shifts[dest], now)
	}
}

// ChargeLine walks the hierarchy for one single-line access — the
// slow-path primitive of the execution engine's line-register file — and
// reports, besides the latency, what the register file needs to track
// leaf residency exactly: whether the line is cacheable (false = bypass
// class), whether the leaf filled (a leaf miss brought the line in), and
// which valid line the fill evicted (evicted is the victim's line address
// plus one; 0 = no valid line was displaced).
func (h *Hierarchy) ChargeLine(lineAddr uint64, write bool, region mem.RegionID, now uint64) (lat uint64, cacheable, filled bool, evicted uint64) {
	lat, priv, r0 := h.accessLineRes(lineAddr, h.shifts[0], write, region, now)
	if !priv {
		return lat, false, false, 0
	}
	if r0.Hit {
		return lat, true, false, 0
	}
	if r0.Evicted {
		evicted = r0.VictimTag + 1
	}
	return lat, true, true, evicted
}

// LineShift returns log2 of the line-register granularity of the exact
// fast path: the leaf level's line size. It matches the split granularity
// of AccessAt, so a single-line access at this shift never spans
// hierarchy lines.
func (h *Hierarchy) LineShift() uint { return h.shifts[0] }

// FastSpec returns the line-register geometry of the exact fast path:
// the line shift, the number of leaf-cache sets to key cacheable line
// registers by (0 disables cacheable batching — no sub-shared leaf, or
// one that is observed or partitioned and therefore needs the
// word-granular walk), and the per-repeat latency of each repeat class.
//
// The exactness argument: tasks execute in strict handoff — exactly one
// task runs at any instant across the whole tile — so between two
// accesses of one task to the same leaf line, the leaf cache on the
// task's path (private, or shared by its cluster) can only be touched by
// the task's own accesses; OS switch traffic and other tasks run only
// between slices, and the engine invalidates every register at each
// resume. A registered line stays resident — and every re-reference is a
// guaranteed hit at hitLat — until a walk reaches its set (only a fill
// into the set can evict it), which is when the engine retires the
// register. A bypassed line re-referenced immediately is still in the
// outstanding transaction's line buffer (merged burst at mergeLat),
// until any other bypass access moves the buffer. The engine samples
// this spec whenever a slice resume hands the task a different Memory
// than its previous slice used.
func (h *Hierarchy) FastSpec() (shift uint, sets int, hitLat, mergeLat uint64) {
	shift = h.shifts[0]
	if h.firstShared > 0 && h.levels[0].Observer == nil && h.levels[0].table == nil {
		sets = h.levels[0].cfg.Sets
	}
	return shift, sets, h.probeLat, h.probeLat + 1
}

// CacheableLine reports whether the region's lines may live in the leaf
// cache; false selects the bypass burst-merge repeat class.
func (h *Hierarchy) CacheableLine(region mem.RegionID) bool {
	return h.firstShared > 0 && (h.PrivCacheable == nil || h.PrivCacheable(region))
}

// CommitRepeats commits a batch of reads+writes coalesced repeat
// references of one line, classified by CacheableLine. On the merge path
// it credits the burst-merge counter; on the cacheable path it
// batch-commits guaranteed leaf hits. Latency is charged by the caller
// (repeats never reach the deeper levels or the memory port on either
// path, matching the word-granular walk).
func (h *Hierarchy) CommitRepeats(lineAddr uint64, region mem.RegionID, reads, writes uint64, merge bool) {
	if merge {
		if !h.haveBypassLine || h.lastBypassLine != lineAddr {
			panic(fmt.Sprintf("cache: CommitRepeats merge of line %#x, bypass buffer holds %#x (fast-path burst proof violated)",
				lineAddr, h.lastBypassLine))
		}
		h.MergedBursts += reads + writes
		return
	}
	h.levels[0].CommitHits(lineAddr, region, reads, writes)
}
