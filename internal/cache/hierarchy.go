package cache

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/trace"
)

// MemPort is the interface to whatever lies below the last cache level —
// in the CAKE tile, the snooping interconnect plus off-chip memory
// (internal/bus). Request is a demand line fill whose latency stalls the
// core; Post is a posted writeback that occupies bandwidth but does not
// stall the issuing core. addr is the byte address of the line, used for
// memory-bank interleaving.
type MemPort interface {
	Request(addr, now uint64) uint64
	Post(addr, now uint64)
}

// FixedMem is a MemPort with constant latency and no contention, used in
// unit tests and in isolated (single-entity) profiling runs.
type FixedMem struct {
	Latency uint64
	Reads   uint64
	Writes  uint64
}

// Request implements MemPort.
func (m *FixedMem) Request(addr, now uint64) uint64 {
	m.Reads++
	return m.Latency
}

// Post implements MemPort.
func (m *FixedMem) Post(addr, now uint64) { m.Writes++ }

// Hierarchy wires one core's private L1 to the shared L2 and the memory
// port, and charges latencies. It mirrors the CAKE tile of Figure 1: the
// L1 is private to a processor, the L2 is shared between all processors
// (pass the same *Cache to every Hierarchy), and below the L2 sits the
// interconnect.
//
// Shared regions (FIFOs, frame buffers, data/bss) bypass the L1: their
// lines live only in the L2. This stands in for L1 coherence — on the
// real platform the snooping protocol keeps shared lines effectively out
// of the private caches, and the paper's analysis (section 3) likewise
// places all inter-task interaction in the shared L2. The substitution is
// recorded in DESIGN.md.
type Hierarchy struct {
	L1 *Cache // may be nil: two-level systems without private caches
	L2 *Cache

	L1HitLat uint64 // total L1 hit latency (cycles)
	L2HitLat uint64 // additional latency of an L2 hit after an L1 miss
	Mem      MemPort

	// L1Cacheable decides whether a region's lines may live in the L1.
	// nil means everything is L1-cacheable (single-task unit tests).
	L1Cacheable func(mem.RegionID) bool

	// RegionOf resolves a line address back to its owning entity, for
	// attributing writeback traffic. nil disables attribution.
	RegionOf func(addr uint64) mem.RegionID

	// DemandFills counts L2->L1 fills; WritebacksToL2/Mem count victim
	// traffic, for the power model (traffic-proportional energy).
	DemandFills     uint64
	WritebacksToL2  uint64
	WritebacksToMem uint64

	// Burst merging on the L1-bypass path: word-by-word streaming
	// through a FIFO or frame buffer touches the same L2 line many
	// times in a row; the hardware serves those from the line buffer of
	// the outstanding transaction. Only the first touch of a line is an
	// L2 access; subsequent touches cost one cycle. (The L1 performs
	// the equivalent merging for cacheable regions.)
	lastBypassLine uint64
	haveBypassLine bool
	MergedBursts   uint64
}

// AccessAt performs one access at local time now and returns the latency
// charged to the core. Accesses that straddle a line boundary are split.
func (h *Hierarchy) AccessAt(a trace.Access, now uint64) uint64 {
	size := uint64(a.Size)
	if size == 0 {
		size = 1
	}
	shift := h.L2.lineShift
	if h.L1 != nil {
		shift = h.L1.lineShift
	}
	first := a.Addr >> shift
	last := (a.Addr + size - 1) >> shift
	var lat uint64
	for ln := first; ln <= last; ln++ {
		lat += h.accessLine(ln, shift, a.Op == trace.Write, a.Region, now+lat)
	}
	return lat
}

func (h *Hierarchy) accessLine(lineAddr uint64, shift uint, write bool, region mem.RegionID, now uint64) uint64 {
	lat, _, _ := h.accessLineRes(lineAddr, shift, write, region, now)
	return lat
}

// accessLineRes is accessLine plus the L1 outcome, which the fast path's
// register file uses to track residency (useL1 false on the bypass path,
// where r1 is meaningless).
func (h *Hierarchy) accessLineRes(lineAddr uint64, shift uint, write bool, region mem.RegionID, now uint64) (lat uint64, useL1 bool, r1 Result) {
	lat = h.L1HitLat
	useL1 = h.L1 != nil && (h.L1Cacheable == nil || h.L1Cacheable(region))
	if !useL1 {
		if h.haveBypassLine && h.lastBypassLine == lineAddr {
			h.MergedBursts++
			return lat + 1, false, r1
		}
		h.lastBypassLine = lineAddr
		h.haveBypassLine = true
	}
	if useL1 {
		r1 = h.L1.AccessLine(lineAddr, write, region)
		if r1.Writeback {
			h.WritebacksToL2++
			h.writebackToL2(r1.VictimTag, shift, now)
		}
		if r1.Hit {
			return lat, true, r1
		}
	}
	// L1 miss (or bypass): go to the shared L2. When the L1 holds the
	// line, the L2 sees a read fill even for stores (write-allocate in
	// L1); on the bypass path the L2 sees the access's own operation.
	l2Write := write && !useL1
	l2Line := lineAddr >> (h.L2.lineShift - shift)
	if shift > h.L2.lineShift {
		l2Line = lineAddr << (shift - h.L2.lineShift)
	}
	r2 := h.L2.AccessLine(l2Line, l2Write, region)
	lat += h.L2HitLat
	if r2.Writeback {
		h.WritebacksToMem++
		if h.Mem != nil {
			h.Mem.Post(r2.VictimTag<<h.L2.lineShift, now+lat)
		}
	}
	if !r2.Hit {
		if h.Mem != nil {
			lat += h.Mem.Request(l2Line<<h.L2.lineShift, now+lat)
		}
	}
	if useL1 {
		h.DemandFills++
	}
	return lat, useL1, r1
}

// ChargeLine walks the hierarchy for one single-line access — the
// slow-path primitive of the execution engine's line-register file — and
// reports, besides the latency, what the register file needs to track L1
// residency exactly: whether the line is cacheable (false = bypass
// class), whether the L1 filled (an L1 miss brought the line in), and
// which valid line the fill evicted (evicted is the victim's line address
// plus one; 0 = no valid line was displaced).
func (h *Hierarchy) ChargeLine(lineAddr uint64, write bool, region mem.RegionID, now uint64) (lat uint64, cacheable, filled bool, evicted uint64) {
	lat, useL1, r1 := h.accessLineRes(lineAddr, h.LineShift(), write, region, now)
	if !useL1 {
		return lat, false, false, 0
	}
	if r1.Hit {
		return lat, true, false, 0
	}
	if r1.Evicted {
		evicted = r1.VictimTag + 1
	}
	return lat, true, true, evicted
}

// LineShift returns log2 of the line-register granularity of the exact
// fast path: the L1's line size when a private cache is present, else the
// L2's. It matches the split granularity of AccessAt, so a single-line
// access at this shift never spans hierarchy lines.
func (h *Hierarchy) LineShift() uint {
	if h.L1 != nil {
		return h.L1.lineShift
	}
	return h.L2.lineShift
}

// FastSpec returns the line-register geometry of the exact fast path:
// the line shift, the number of private-cache sets to key cacheable line
// registers by (0 disables cacheable batching — no private cache, or one
// that is observed or partitioned and therefore needs the word-granular
// walk), and the per-repeat latency of each repeat class.
//
// The exactness argument: tasks execute in strict handoff, so between two
// accesses of one task to the same L1 line, that core's private L1 can
// only be touched by the task's own accesses. A registered line stays
// resident — and every re-reference is a guaranteed hit at hitLat — until
// a walk reaches its set (only a fill into the set can evict it), which
// is when the engine retires the register. A bypassed line re-referenced
// immediately is still in the outstanding transaction's line buffer
// (merged burst at mergeLat), until any other bypass access moves the
// buffer. The engine samples this spec whenever a slice resume hands the
// task a different Memory than its previous slice used.
func (h *Hierarchy) FastSpec() (shift uint, sets int, hitLat, mergeLat uint64) {
	shift = h.LineShift()
	if h.L1 != nil && h.L1.Observer == nil && h.L1.table == nil {
		sets = h.L1.cfg.Sets
	}
	return shift, sets, h.L1HitLat, h.L1HitLat + 1
}

// CacheableLine reports whether the region's lines may live in the
// private cache; false selects the bypass burst-merge repeat class.
func (h *Hierarchy) CacheableLine(region mem.RegionID) bool {
	return h.L1 != nil && (h.L1Cacheable == nil || h.L1Cacheable(region))
}

// CommitRepeats commits a batch of reads+writes coalesced repeat
// references of one line, classified by CacheableLine. On the merge path it
// credits the burst-merge counter; on the cacheable path it batch-commits
// guaranteed L1 hits. Latency is charged by the caller (repeats never
// reach the L2 or the memory port on either path, matching the
// word-granular walk).
func (h *Hierarchy) CommitRepeats(lineAddr uint64, region mem.RegionID, reads, writes uint64, merge bool) {
	if merge {
		if !h.haveBypassLine || h.lastBypassLine != lineAddr {
			panic(fmt.Sprintf("cache: CommitRepeats merge of line %#x, bypass buffer holds %#x (fast-path burst proof violated)",
				lineAddr, h.lastBypassLine))
		}
		h.MergedBursts += reads + writes
		return
	}
	h.L1.CommitHits(lineAddr, region, reads, writes)
}

// writebackToL2 inserts an L1 victim into the L2 as a posted write.
func (h *Hierarchy) writebackToL2(victimTag uint64, shift uint, now uint64) {
	region := mem.NoRegion
	if h.RegionOf != nil {
		region = h.RegionOf(victimTag << shift)
	}
	l2Line := victimTag
	if shift < h.L2.lineShift {
		l2Line = victimTag >> (h.L2.lineShift - shift)
	} else if shift > h.L2.lineShift {
		l2Line = victimTag << (shift - h.L2.lineShift)
	}
	r := h.L2.AccessLine(l2Line, true, region)
	if r.Writeback {
		h.WritebacksToMem++
		if h.Mem != nil {
			h.Mem.Post(r.VictimTag<<h.L2.lineShift, now)
		}
	}
}
