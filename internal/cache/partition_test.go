package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/trace"
)

func mustTable(t *testing.T, totalSets, defSets int) *PartitionTable {
	t.Helper()
	tab, err := NewPartitionTable(totalSets, "rt", defSets)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewPartitionTableErrors(t *testing.T) {
	if _, err := NewPartitionTable(100, "d", 4); err == nil {
		t.Error("non-power-of-two totalSets accepted")
	}
	if _, err := NewPartitionTable(0, "d", 4); err == nil {
		t.Error("zero totalSets accepted")
	}
	if _, err := NewPartitionTable(64, "d", 3); err == nil {
		t.Error("non-power-of-two default accepted")
	}
	if _, err := NewPartitionTable(64, "d", 128); err == nil {
		t.Error("oversized default accepted")
	}
}

func TestAddPartitionPacking(t *testing.T) {
	tab := mustTable(t, 64, 4)
	id1, err := tab.AddPartition("t0", 8)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := tab.AddPartition("t1", 16)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := tab.Partition(id1), tab.Partition(id2)
	if p1.BaseSet != 4 || p1.NumSets != 8 {
		t.Errorf("p1 = %+v", p1)
	}
	if p2.BaseSet != 12 || p2.NumSets != 16 {
		t.Errorf("p2 = %+v", p2)
	}
	if tab.AllocatedSets() != 28 || tab.FreeSets() != 36 {
		t.Errorf("allocated/free = %d/%d", tab.AllocatedSets(), tab.FreeSets())
	}
	if err := tab.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if len(tab.Partitions()) != 3 {
		t.Errorf("partitions = %d, want 3", len(tab.Partitions()))
	}
}

func TestAddPartitionOvercommit(t *testing.T) {
	tab := mustTable(t, 16, 8)
	if _, err := tab.AddPartition("big", 16); err == nil {
		t.Error("over-commit accepted")
	}
	if _, err := tab.AddPartition("bad", 3); err == nil {
		t.Error("non-power-of-two partition accepted")
	}
	if _, err := tab.AddPartition("ok", 8); err != nil {
		t.Errorf("exact fill rejected: %v", err)
	}
}

func TestAssignAndPartitionOf(t *testing.T) {
	tab := mustTable(t, 64, 4)
	id, _ := tab.AddPartition("t0", 8)
	if err := tab.Assign(5, id); err != nil {
		t.Fatal(err)
	}
	if tab.PartitionOf(5) != id {
		t.Error("assigned region maps to wrong partition")
	}
	if tab.PartitionOf(99) != tab.DefaultID() {
		t.Error("unassigned region should map to default partition")
	}
	if err := tab.Assign(1, 42); err == nil {
		t.Error("assign to unknown partition accepted")
	}
}

func TestMapSetWithinPartition(t *testing.T) {
	tab := mustTable(t, 64, 4)
	id, _ := tab.AddPartition("t0", 8) // base 4, size 8
	tab.Assign(7, id)
	for set := uint64(0); set < 64; set++ {
		got, part := tab.MapSet(set, 7)
		if part != id {
			t.Fatalf("partition = %d, want %d", part, id)
		}
		if got < 4 || got >= 12 {
			t.Fatalf("MapSet(%d) = %d outside [4,12)", set, got)
		}
		if got != 4+(set&7) {
			t.Fatalf("MapSet(%d) = %d, want %d", set, got, 4+(set&7))
		}
	}
}

func TestPartitionIsolation(t *testing.T) {
	// Two entities hammering the same conventional sets must not evict
	// each other once partitioned — the core claim of the paper.
	cfg := Config{Name: "l2", Sets: 64, Ways: 2, LineSize: 64}

	runMisses := func(partitioned bool) (uint64, uint64) {
		c := New(cfg)
		if partitioned {
			tab := mustTable(t, 64, 4)
			pA, _ := tab.AddPartition("A", 16)
			pB, _ := tab.AddPartition("B", 16)
			tab.Assign(0, pA)
			tab.Assign(1, pB)
			c.SetPartitionTable(tab)
		}
		// Entity A: loops over a small working set (16 lines).
		// Entity B: streams over a large range, trashing every set.
		for iter := 0; iter < 50; iter++ {
			for i := 0; i < 16; i++ {
				c.Access(trace.Access{Addr: uint64(i * 64), Size: 4, Region: 0})
			}
			for i := 0; i < 256; i++ {
				c.Access(trace.Access{Addr: 1 << 20, Size: 4, Region: 1})
				c.Access(trace.Access{Addr: uint64(1<<20 + iter*256*64 + i*64), Size: 4, Region: 1})
			}
		}
		return c.RegionStats(0).Misses, c.RegionStats(1).Misses
	}

	sharedA, _ := runMisses(false)
	partA, _ := runMisses(true)
	if partA > 16 {
		t.Errorf("partitioned entity A misses = %d, want only cold misses (<=16)", partA)
	}
	if sharedA < 10*partA {
		t.Errorf("shared entity A misses = %d, expected heavy interference vs %d", sharedA, partA)
	}
}

func TestSetPartitionTableFlushesAndChecksGeometry(t *testing.T) {
	c := New(Config{Name: "l2", Sets: 64, Ways: 2, LineSize: 64})
	c.Access(trace.Access{Addr: 0, Size: 4})
	tab := mustTable(t, 64, 4)
	c.SetPartitionTable(tab)
	if c.OccupiedLines() != 0 {
		t.Error("installing a table must flush the cache")
	}
	if c.PartitionTable() != tab {
		t.Error("PartitionTable accessor mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched table geometry accepted")
		}
	}()
	bad := mustTable(t, 128, 4)
	c.SetPartitionTable(bad)
}

func TestPartitionStats(t *testing.T) {
	c := New(Config{Name: "l2", Sets: 64, Ways: 2, LineSize: 64})
	tab := mustTable(t, 64, 4)
	pA, _ := tab.AddPartition("A", 8)
	tab.Assign(0, pA)
	c.SetPartitionTable(tab)

	c.Access(trace.Access{Addr: 0, Size: 4, Region: 0})
	c.Access(trace.Access{Addr: 0, Size: 4, Region: 0})
	c.Access(trace.Access{Addr: 4096, Size: 4, Region: 9}) // default part

	if ps := c.PartitionStats(pA); ps.Accesses != 2 || ps.Misses != 1 || ps.Hits != 1 {
		t.Errorf("partition A stats = %+v", ps)
	}
	if ps := c.PartitionStats(tab.DefaultID()); ps.Accesses != 1 {
		t.Errorf("default partition stats = %+v", ps)
	}
	if ps := c.PartitionStats(99); ps.Accesses != 0 {
		t.Error("out-of-range partition stats should be zero")
	}
}

// Property: the partition mapper is confined (every mapped set lies inside
// the owning partition) and surjective onto the partition for conventional
// set indices 0..NumSets-1.
func TestMapSetConfinementProperty(t *testing.T) {
	f := func(seedSets uint8, regionRaw uint8) bool {
		tab, err := NewPartitionTable(256, "d", 4)
		if err != nil {
			return false
		}
		sizes := []int{1, 2, 4, 8, 16, 32}
		ids := make([]int, 0, 6)
		for i, s := range sizes {
			id, err := tab.AddPartition("p", s)
			if err != nil {
				return false
			}
			ids = append(ids, id)
			tab.Assign(mem.RegionID(i), id)
		}
		region := mem.RegionID(int(regionRaw) % len(ids))
		p := tab.Partition(ids[region])
		seen := make(map[uint64]bool)
		for set := uint64(0); set < 256; set++ {
			got, id := tab.MapSet(set, region)
			if id != ids[region] {
				return false
			}
			if got < uint64(p.BaseSet) || got >= uint64(p.BaseSet+p.NumSets) {
				return false
			}
			seen[got] = true
		}
		return len(seen) == p.NumSets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: with a partition table installed, an entity's miss count
// equals the miss count of a standalone cache of the partition's size fed
// the same stream — the compositionality property the optimizer relies on.
func TestPartitionEqualsIsolatedCacheProperty(t *testing.T) {
	f := func(seed int64, szExp uint8) bool {
		numSets := 1 << (szExp%4 + 1) // 2..16 sets
		tab, err := NewPartitionTable(64, "d", 4)
		if err != nil {
			return false
		}
		pid, err := tab.AddPartition("A", numSets)
		if err != nil {
			return false
		}
		tab.Assign(0, pid)

		big := New(Config{Name: "l2", Sets: 64, Ways: 2, LineSize: 64})
		big.SetPartitionTable(tab)
		iso := New(Config{Name: "iso", Sets: numSets, Ways: 2, LineSize: 64})

		gA := &trace.RandomGen{Base: 0, WorkingSet: 1 << 14, Count: 5000, Seed: uint64(seed) | 1, Region: 0}
		gB := &trace.RandomGen{Base: 1 << 20, WorkingSet: 1 << 16, Count: 5000, Seed: uint64(seed)*7 | 1, Region: 1}
		inter := &trace.Interleave{Gens: []trace.Generator{gA, gB}}
		for {
			a, ok := inter.Next()
			if !ok {
				break
			}
			big.Access(a)
			if a.Region == 0 {
				iso.Access(a)
			}
		}
		return big.RegionStats(0).Misses == iso.Stats().Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestAccessTwoLineSplitUnderPartition verifies that an access straddling
// a line boundary references both lines, each translated through the
// owning entity's partition — counted as two accesses in that partition,
// landing in its exclusive set range.
func TestAccessTwoLineSplitUnderPartition(t *testing.T) {
	table, err := NewPartitionTable(64, "rt", 4)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := table.AddPartition("a", 8)
	if err != nil {
		t.Fatal(err)
	}
	const regionA = mem.RegionID(7)
	if err := table.Assign(regionA, pa); err != nil {
		t.Fatal(err)
	}
	c := New(Config{Name: "l2", Sets: 64, Ways: 2, LineSize: 64})
	c.SetPartitionTable(table)

	// 8-byte access at line end: lines 0x10 and 0x11, both owned by A.
	hit := c.Access(trace.Access{Addr: 0x10*64 + 60, Size: 8, Op: trace.Write, Region: regionA})
	if hit {
		t.Error("cold straddling access reported as hit")
	}
	ps := c.PartitionStats(pa)
	if ps.Accesses != 2 || ps.Misses != 2 {
		t.Errorf("partition stats after straddle = %+v, want 2 accesses, 2 misses", ps)
	}
	if es := c.RegionStats(regionA); es.Accesses != 2 || es.Misses != 2 {
		t.Errorf("region stats after straddle = %+v", es)
	}
	// Both lines must live inside partition A's set range [4, 12).
	base := table.Partition(pa).BaseSet
	for _, line := range []uint64{0x10, 0x11} {
		set, part := table.MapSet(line&c.Config().SetMask(), regionA)
		if part != pa || set < uint64(base) || set >= uint64(base+8) {
			t.Errorf("line %#x mapped to set %d partition %d", line, set, part)
		}
		if !c.Probe(line*64, regionA) {
			t.Errorf("line %#x not resident after fill", line)
		}
	}
	// Warm re-access: both lines hit, in the same partition.
	if !c.Access(trace.Access{Addr: 0x10*64 + 60, Size: 8, Op: trace.Read, Region: regionA}) {
		t.Error("warm straddling access missed")
	}
	ps = c.PartitionStats(pa)
	if ps.Accesses != 4 || ps.Hits != 2 {
		t.Errorf("partition stats after warm straddle = %+v, want 4 accesses, 2 hits", ps)
	}
}
