package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/trace"
)

func small() Config { return Config{Name: "t", Sets: 4, Ways: 2, LineSize: 64} }

func TestConfigValidate(t *testing.T) {
	good := small()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "s", Sets: 3, Ways: 2, LineSize: 64},
		{Name: "s", Sets: 0, Ways: 2, LineSize: 64},
		{Name: "w", Sets: 4, Ways: 0, LineSize: 64},
		{Name: "l", Sets: 4, Ways: 2, LineSize: 48},
		{Name: "l", Sets: 4, Ways: 2, LineSize: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v validated", c)
		}
	}
}

func TestConfigSizeBytes(t *testing.T) {
	c := Config{Sets: 2048, Ways: 4, LineSize: 64}
	if c.SizeBytes() != 512*1024 {
		t.Errorf("SizeBytes = %d, want 512KiB", c.SizeBytes())
	}
}

func TestConfigGeometryHelpers(t *testing.T) {
	c := Config{Sets: 2048, Ways: 4, LineSize: 64}
	if c.SetMask() != 2047 {
		t.Errorf("SetMask = %#x, want 0x7ff", c.SetMask())
	}
	if c.LineShift() != 6 {
		t.Errorf("LineShift = %d, want 6", c.LineShift())
	}
	// The helpers must agree with how the cache itself indexes.
	cc := New(c)
	if cc.setMask != c.SetMask() || cc.lineShift != c.LineShift() {
		t.Error("cache indexing disagrees with Config helpers")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New did not panic")
		}
	}()
	New(Config{Sets: 3, Ways: 1, LineSize: 64})
}

func TestColdMissThenHit(t *testing.T) {
	c := New(small())
	a := trace.Access{Addr: 0x1000, Size: 4, Op: trace.Read}
	if c.Access(a) {
		t.Error("cold access hit")
	}
	if !c.Access(a) {
		t.Error("second access missed")
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSameSetDifferentTags(t *testing.T) {
	c := New(small()) // 4 sets * 64B lines -> set stride 256B
	a1 := trace.Access{Addr: 0x0000, Size: 4}
	a2 := trace.Access{Addr: 0x0100, Size: 4} // same set, different tag
	c.Access(a1)
	c.Access(a2)
	if !c.Access(a1) || !c.Access(a2) {
		t.Error("both lines should fit in a 2-way set")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(small()) // 2 ways
	mk := func(i int) trace.Access {
		return trace.Access{Addr: uint64(i) * 256, Size: 4} // all map to set 0
	}
	c.Access(mk(0)) // miss, fill way A
	c.Access(mk(1)) // miss, fill way B
	c.Access(mk(0)) // hit: 0 is now MRU
	c.Access(mk(2)) // miss: evicts 1 (LRU)
	if !c.Probe(0, -1) {
		t.Error("line 0 (MRU) was evicted")
	}
	if c.Probe(256, -1) {
		t.Error("line 1 (LRU) survived")
	}
	if !c.Probe(512, -1) {
		t.Error("line 2 missing after fill")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestDirtyWritebackOnEviction(t *testing.T) {
	c := New(small())
	w := trace.Access{Addr: 0, Size: 4, Op: trace.Write}
	c.Access(w)                                    // dirty line in set 0
	c.Access(trace.Access{Addr: 256, Size: 4})     // fills other way
	r := c.AccessLine(512/64, false, mem.NoRegion) // evicts line 0
	if !r.Writeback {
		t.Fatal("expected writeback of dirty victim")
	}
	if r.VictimTag != 0 {
		t.Errorf("victim tag = %#x, want 0", r.VictimTag)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := New(small())
	c.Access(trace.Access{Addr: 0, Size: 4, Op: trace.Read})
	c.Access(trace.Access{Addr: 256, Size: 4, Op: trace.Read})
	r := c.AccessLine(512/64, false, mem.NoRegion)
	if r.Writeback {
		t.Error("clean victim triggered writeback")
	}
}

func TestWriteHitSetsDirty(t *testing.T) {
	c := New(small())
	c.Access(trace.Access{Addr: 0, Size: 4, Op: trace.Read})  // clean fill
	c.Access(trace.Access{Addr: 0, Size: 4, Op: trace.Write}) // dirty it
	c.Access(trace.Access{Addr: 256, Size: 4})
	r := c.AccessLine(512/64, false, mem.NoRegion)
	if !r.Writeback {
		t.Error("write-hit did not mark line dirty")
	}
}

func TestStraddlingAccessTouchesTwoLines(t *testing.T) {
	c := New(small())
	a := trace.Access{Addr: 62, Size: 8, Op: trace.Read} // spans lines 0 and 1
	c.Access(a)
	if !c.Probe(0, -1) || !c.Probe(64, -1) {
		t.Error("straddling access did not fill both lines")
	}
	if c.Stats().Accesses != 2 {
		t.Errorf("straddling access recorded %d line refs, want 2", c.Stats().Accesses)
	}
}

func TestZeroSizeAccessTreatedAsOneByte(t *testing.T) {
	c := New(small())
	c.Access(trace.Access{Addr: 10, Size: 0})
	if c.Stats().Accesses != 1 {
		t.Errorf("accesses = %d, want 1", c.Stats().Accesses)
	}
}

func TestRegionStats(t *testing.T) {
	c := New(small())
	c.Access(trace.Access{Addr: 0, Size: 4, Region: 3})
	c.Access(trace.Access{Addr: 0, Size: 4, Region: 3})
	c.Access(trace.Access{Addr: 64, Size: 4, Region: 1})
	if rs := c.RegionStats(3); rs.Accesses != 2 || rs.Misses != 1 {
		t.Errorf("region 3 stats = %+v", rs)
	}
	if rs := c.RegionStats(1); rs.Accesses != 1 || rs.Misses != 1 {
		t.Errorf("region 1 stats = %+v", rs)
	}
	if rs := c.RegionStats(99); rs.Accesses != 0 {
		t.Error("unknown region should have zero stats")
	}
	if rs := c.RegionStats(mem.NoRegion); rs.Accesses != 0 {
		t.Error("NoRegion should have zero stats")
	}
	if c.NumTrackedRegions() != 4 {
		t.Errorf("NumTrackedRegions = %d, want 4", c.NumTrackedRegions())
	}
}

func TestOpStats(t *testing.T) {
	c := New(small())
	c.Access(trace.Access{Addr: 0, Size: 4, Op: trace.Read})
	c.Access(trace.Access{Addr: 64, Size: 4, Op: trace.Write})
	c.Access(trace.Access{Addr: 64, Size: 4, Op: trace.Write})
	if r := c.OpStats(trace.Read); r.Accesses != 1 || r.Misses != 1 {
		t.Errorf("read stats = %+v", r)
	}
	if w := c.OpStats(trace.Write); w.Accesses != 2 || w.Hits != 1 {
		t.Errorf("write stats = %+v", w)
	}
}

func TestFlushAndResetStats(t *testing.T) {
	c := New(small())
	c.Access(trace.Access{Addr: 0, Size: 4})
	if c.OccupiedLines() != 1 {
		t.Fatalf("occupied = %d", c.OccupiedLines())
	}
	c.Flush()
	if c.OccupiedLines() != 0 {
		t.Error("flush left valid lines")
	}
	if c.Stats().Accesses != 1 {
		t.Error("flush should not clear stats")
	}
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Error("ResetStats did not clear stats")
	}
}

func TestStatsAddAndMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("idle miss rate should be 0")
	}
	s.Add(Stats{Accesses: 10, Hits: 7, Misses: 3, Evictions: 1, Writebacks: 2})
	s.Add(Stats{Accesses: 10, Hits: 8, Misses: 2})
	if s.Accesses != 20 || s.Misses != 5 || s.Evictions != 1 || s.Writebacks != 2 {
		t.Errorf("sum = %+v", s)
	}
	if got := s.MissRate(); got != 0.25 {
		t.Errorf("miss rate = %v, want 0.25", got)
	}
}

// Property: miss count of an LRU cache never exceeds the reference count,
// hits+misses == accesses, and a working set that fits entirely in the
// cache produces only cold misses.
func TestWorkingSetFitsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Config{Name: "p", Sets: 16, Ways: 4, LineSize: 64})
		// Working set: exactly the cache capacity in distinct lines.
		lines := make([]uint64, 16*4)
		for i := range lines {
			// one line per (set,way): set i%16, tag varies
			lines[i] = uint64(i%16)*64 + uint64(i/16)*16*64
		}
		for n := 0; n < 4000; n++ {
			addr := lines[rng.Intn(len(lines))]
			c.Access(trace.Access{Addr: addr, Size: 4})
		}
		s := c.Stats()
		if s.Hits+s.Misses != s.Accesses {
			return false
		}
		// With LRU and a fitting working set there are only cold misses.
		return s.Misses <= uint64(len(lines))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: LRU inclusion — a cache with more ways never misses more than
// one with fewer ways on the same trace (same number of sets).
func TestLRUInclusionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c2 := New(Config{Name: "a", Sets: 8, Ways: 2, LineSize: 64})
		c4 := New(Config{Name: "b", Sets: 8, Ways: 4, LineSize: 64})
		for n := 0; n < 3000; n++ {
			addr := uint64(rng.Intn(1 << 14))
			a := trace.Access{Addr: addr, Size: 1}
			c2.Access(a)
			c4.Access(a)
		}
		return c4.Stats().Misses <= c2.Stats().Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := New(Config{Name: "l2", Sets: 2048, Ways: 4, LineSize: 64})
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 8192)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 22))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(trace.Access{Addr: addrs[i%len(addrs)], Size: 4})
	}
}
