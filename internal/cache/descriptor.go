package cache

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/arena"
)

// Descriptor is the immutable half of an instantiated topology: the
// validated level specs, group assignment, resolved partition/shared
// indices and per-instance geometries — everything about a (topology,
// CPU count) pair that never changes during simulation. Descriptors are
// interned: every concurrent simulation of the same spec shares one
// read-only Descriptor, and only the compact mutable state block (the
// caches' tag/LRU/dirty arrays) is built per simulation by Instantiate.
type Descriptor struct {
	// Topo is the validated topology (a private deep copy; callers must
	// treat it as read-only — it is shared by every Tree instantiated
	// from this descriptor).
	Topo    Topology
	NumCPUs int

	levels      []levelDesc
	firstShared int
	partLevel   int
	maxLeafSets int
}

// levelDesc is one level's instantiation plan: the CPUs-per-instance
// group size and the resolved config of every instance.
type levelDesc struct {
	group int
	cfgs  []Config
}

// interned maps descriptor keys to *Descriptor. The key is the
// canonical JSON of the topology plus the CPU count; encoding/json
// emits map keys (the PerCPU overrides) sorted, so equal topologies
// always produce equal keys.
var interned sync.Map

func descriptorKey(t Topology, numCPUs int) (string, error) {
	b, err := json.Marshal(t)
	if err != nil {
		return "", fmt.Errorf("cache: canonicalizing topology: %w", err)
	}
	return fmt.Sprintf("%d|%s", numCPUs, b), nil
}

// Describe validates the topology for a CPU count and returns its
// interned immutable descriptor: repeated calls with an equal topology
// return the same *Descriptor, so concurrent simulations of one spec
// share a single copy of the geometry instead of each rebuilding it.
func (t Topology) Describe(numCPUs int) (*Descriptor, error) {
	key, err := descriptorKey(t, numCPUs)
	if err != nil {
		return nil, err
	}
	if d, ok := interned.Load(key); ok {
		return d.(*Descriptor), nil
	}
	if err := t.Validate(numCPUs); err != nil {
		return nil, err
	}
	d := &Descriptor{
		Topo:        t.Clone(),
		NumCPUs:     numCPUs,
		firstShared: t.FirstShared(),
		partLevel:   t.PartitionIndex(),
	}
	for _, l := range d.Topo.Levels {
		g, _ := GroupSize(l.Scope, numCPUs)
		n := numCPUs / g
		ld := levelDesc{group: g, cfgs: make([]Config, n)}
		for i := range ld.cfgs {
			cfg := l.ConfigFor(i * g) // identity for non-private scopes
			if n > 1 {
				cfg.Name = fmt.Sprintf("%s.%d", l.Name, i)
			}
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			ld.cfgs[i] = cfg
		}
		d.levels = append(d.levels, ld)
	}
	if d.firstShared > 0 {
		for _, cfg := range d.levels[0].cfgs {
			if cfg.Sets > d.maxLeafSets {
				d.maxLeafSets = cfg.Sets
			}
		}
	}
	actual, _ := interned.LoadOrStore(key, d)
	return actual.(*Descriptor), nil
}

// MaxLeafSets returns the largest set count among the leaf level's
// instances when the leaf lies below the first shared level (the
// geometry the execution engine's line-register files are keyed by), or
// 0 when the leaf is already shared (no cacheable batching).
func (d *Descriptor) MaxLeafSets() int { return d.maxLeafSets }

// Instantiate builds the per-simulation mutable state block over the
// shared descriptor: every cache instance of every level, their line
// state drawn from the arena (heap-allocated when a is nil). The
// returned Tree shares the descriptor's Topology read-only.
func (d *Descriptor) Instantiate(a *arena.Arena) *Tree {
	tr := &Tree{
		Topo:        d.Topo,
		NumCPUs:     d.NumCPUs,
		desc:        d,
		firstShared: d.firstShared,
		partLevel:   d.partLevel,
	}
	tr.groups = make([]int, len(d.levels))
	tr.caches = make([][]*Cache, len(d.levels))
	for li, ld := range d.levels {
		tr.groups[li] = ld.group
		row := make([]*Cache, len(ld.cfgs))
		for i, cfg := range ld.cfgs {
			row[i] = newIn(cfg, a)
		}
		tr.caches[li] = row
	}
	return tr
}
