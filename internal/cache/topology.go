package cache

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Sharing scopes of a cache level. A scope is the string form used in
// specs and JSON: "private" (one cache per CPU), "shared" (one cache for
// the whole tile), or "cluster:N" (one cache per group of N consecutive
// CPUs).
const (
	ScopePrivate = "private"
	ScopeShared  = "shared"
	scopeCluster = "cluster" // spelled "cluster:N"
)

// ClusterScope spells the cluster-of-N scope string.
func ClusterScope(n int) string { return fmt.Sprintf("%s:%d", scopeCluster, n) }

// GroupSize resolves a scope string to the number of CPUs sharing one
// cache instance: 1 for private, numCPUs for shared, N for "cluster:N".
func GroupSize(scope string, numCPUs int) (int, error) {
	switch {
	case scope == ScopePrivate:
		return 1, nil
	case scope == ScopeShared:
		return numCPUs, nil
	case strings.HasPrefix(scope, scopeCluster+":"):
		n, err := strconv.Atoi(scope[len(scopeCluster)+1:])
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("cache: bad cluster scope %q (want %q)", scope, "cluster:N")
		}
		return n, nil
	}
	return 0, fmt.Errorf("cache: unknown scope %q (want %q, %q or %q)", scope, ScopePrivate, ScopeShared, "cluster:N")
}

// Geometry is a partial cache geometry: zero fields inherit. It is the
// per-CPU override shape of heterogeneous private levels.
type Geometry struct {
	Sets     int `json:"sets,omitempty"`
	Ways     int `json:"ways,omitempty"`
	LineSize int `json:"line_size,omitempty"`
}

// LevelSpec describes one level of a memory-hierarchy topology.
type LevelSpec struct {
	// Name identifies the level ("l1", "l2", "l3", ...); unique within a
	// topology and addressable from scenario specs and sweep axes.
	Name string
	// Scope is the sharing scope: ScopePrivate, ScopeShared or
	// ClusterScope(N).
	Scope string
	// Sets/Ways/LineSize is the level's default geometry (per instance).
	Sets     int
	Ways     int
	LineSize int
	// HitLat is the level's hit latency in cycles. The leaf level's
	// HitLat is charged on every access (it hides the address generation
	// and tag probe); each deeper level accessed adds its own.
	HitLat uint64
	// Partition marks the level the OS partition tables install at and
	// the profiler taps by default. At most one level may be marked and
	// it must be shared; when none is marked the root (last) level is it.
	Partition bool
	// PerCPU overrides the geometry of individual CPUs' instances;
	// private-scope levels only (a shared instance has no owning CPU).
	PerCPU map[int]Geometry
}

// Config returns the level's default geometry as a cache configuration.
func (l LevelSpec) Config() Config {
	return Config{Name: l.Name, Sets: l.Sets, Ways: l.Ways, LineSize: l.LineSize}
}

// ConfigFor returns the geometry of the instance serving the given CPU,
// with any per-CPU override applied.
func (l LevelSpec) ConfigFor(cpu int) Config {
	c := l.Config()
	if o, ok := l.PerCPU[cpu]; ok {
		if o.Sets != 0 {
			c.Sets = o.Sets
		}
		if o.Ways != 0 {
			c.Ways = o.Ways
		}
		if o.LineSize != 0 {
			c.LineSize = o.LineSize
		}
	}
	return c
}

// Topology is a declarative memory-hierarchy tree: an ordered list of
// cache levels from the CPU-side leaf to the memory-side root, each with
// its own geometry, sharing scope and hit latency, terminating in the
// memory port. Today's hard-wired private-L1 + shared-L2 pair is the
// TwoLevel instance; SingleLevel, deeper trees (shared L3 under private
// or clustered L2s) and heterogeneous per-CPU geometries are all just
// other values of the same type.
type Topology struct {
	Levels []LevelSpec
}

// TwoLevel is the compatibility constructor: the classic private-L1 +
// shared-partitioned-L2 tile the paper evaluates. Level names default to
// "l1"/"l2" when the configs carry none.
func TwoLevel(l1, l2 Config, l1HitLat, l2HitLat uint64) Topology {
	n1, n2 := l1.Name, l2.Name
	if n1 == "" {
		n1 = "l1"
	}
	if n2 == "" {
		n2 = "l2"
	}
	return Topology{Levels: []LevelSpec{
		{Name: n1, Scope: ScopePrivate, Sets: l1.Sets, Ways: l1.Ways, LineSize: l1.LineSize, HitLat: l1HitLat},
		{Name: n2, Scope: ScopeShared, Sets: l2.Sets, Ways: l2.Ways, LineSize: l2.LineSize, HitLat: l2HitLat, Partition: true},
	}}
}

// SingleLevel is a topology with one shared cache between the CPUs and
// memory (no private caches; every access takes the burst-merged path,
// exactly like the legacy L1-less hierarchy).
func SingleLevel(shared Config, hitLat uint64) Topology {
	name := shared.Name
	if name == "" {
		name = "l2"
	}
	return Topology{Levels: []LevelSpec{
		{Name: name, Scope: ScopeShared, Sets: shared.Sets, Ways: shared.Ways, LineSize: shared.LineSize, HitLat: hitLat, Partition: true},
	}}
}

// Clone returns a deep copy (LevelSpec carries a map).
func (t Topology) Clone() Topology {
	out := Topology{Levels: make([]LevelSpec, len(t.Levels))}
	copy(out.Levels, t.Levels)
	for i := range out.Levels {
		if src := out.Levels[i].PerCPU; src != nil {
			dst := make(map[int]Geometry, len(src))
			for k, v := range src {
				dst[k] = v
			}
			out.Levels[i].PerCPU = dst
		}
	}
	return out
}

// Index returns the position of the named level, or -1.
func (t Topology) Index(name string) int {
	for i := range t.Levels {
		if t.Levels[i].Name == name {
			return i
		}
	}
	return -1
}

// LevelNames lists the level names, leaf to root.
func (t Topology) LevelNames() []string {
	names := make([]string, len(t.Levels))
	for i := range t.Levels {
		names[i] = t.Levels[i].Name
	}
	return names
}

// WithLevel returns a deep copy with the named level mutated — the
// config-construction idiom for geometry variants (e.g. doubling the
// shared level's sets). It panics on an unknown name: topologies are
// fixed by the platform description, so a bad name is a programming
// error, exactly like New on an invalid Config.
func (t Topology) WithLevel(name string, mutate func(*LevelSpec)) Topology {
	out := t.Clone()
	i := out.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("cache: topology has no level %q (levels: %v)", name, t.LevelNames()))
	}
	mutate(&out.Levels[i])
	return out
}

// PartitionIndex resolves the level partition tables install at and the
// profiler taps by default: the level marked Partition, else the root.
// -1 when the topology is empty or more than one level is marked.
func (t Topology) PartitionIndex() int {
	idx := -1
	for i := range t.Levels {
		if t.Levels[i].Partition {
			if idx >= 0 {
				return -1
			}
			idx = i
		}
	}
	if idx < 0 && len(t.Levels) > 0 {
		idx = len(t.Levels) - 1
	}
	return idx
}

// Partition returns the resolved partition level's spec (the zero
// LevelSpec for an invalid topology).
func (t Topology) Partition() LevelSpec {
	i := t.PartitionIndex()
	if i < 0 {
		return LevelSpec{}
	}
	return t.Levels[i]
}

// FirstShared returns the index of the innermost shared-scope level —
// the level shared regions (FIFOs, frames, static sections) live at;
// every level before it is bypassed by them (the model's stand-in for
// coherence, see Hierarchy). len(Levels) when no level is shared.
func (t Topology) FirstShared() int {
	for i := range t.Levels {
		if t.Levels[i].Scope == ScopeShared {
			return i
		}
	}
	return len(t.Levels)
}

// Validate checks the topology against a CPU count: at least one level,
// unique names, valid per-instance geometries, resolvable scopes whose
// group sizes divide the CPU count and nest (each level's sharing group
// must contain the previous level's), a shared root, and a unique,
// shared partition level.
func (t Topology) Validate(numCPUs int) error {
	if numCPUs <= 0 {
		return fmt.Errorf("cache: topology for %d CPUs", numCPUs)
	}
	if len(t.Levels) == 0 {
		return fmt.Errorf("cache: topology has no levels (at least one shared level is required)")
	}
	seen := map[string]bool{}
	prevGroup := 1
	for i, l := range t.Levels {
		if l.Name == "" {
			return fmt.Errorf("cache: level %d has no name", i)
		}
		if seen[l.Name] {
			return fmt.Errorf("cache: duplicate level name %q", l.Name)
		}
		seen[l.Name] = true
		g, err := GroupSize(l.Scope, numCPUs)
		if err != nil {
			return fmt.Errorf("cache: level %q: %w", l.Name, err)
		}
		if numCPUs%g != 0 {
			return fmt.Errorf("cache: level %q: %d CPUs not divisible by cluster size %d", l.Name, numCPUs, g)
		}
		if g < prevGroup || g%prevGroup != 0 {
			return fmt.Errorf("cache: level %q: sharing group of %d CPUs does not nest over the previous level's %d (scopes must widen from leaf to root)", l.Name, g, prevGroup)
		}
		prevGroup = g
		if err := l.Config().Validate(); err != nil {
			return err
		}
		if len(l.PerCPU) > 0 {
			if l.Scope != ScopePrivate {
				return fmt.Errorf("cache: level %q: per-CPU geometry overrides require the %q scope (got %q)", l.Name, ScopePrivate, l.Scope)
			}
			cpus := make([]int, 0, len(l.PerCPU))
			for c := range l.PerCPU {
				cpus = append(cpus, c)
			}
			sort.Ints(cpus)
			for _, c := range cpus {
				if c < 0 || c >= numCPUs {
					return fmt.Errorf("cache: level %q: per-CPU override for cpu %d out of range [0,%d)", l.Name, c, numCPUs)
				}
				if err := l.ConfigFor(c).Validate(); err != nil {
					return fmt.Errorf("cache: level %q cpu %d: %w", l.Name, c, err)
				}
			}
		}
	}
	if t.Levels[len(t.Levels)-1].Scope != ScopeShared {
		return fmt.Errorf("cache: root level %q must be shared (scope %q)", t.Levels[len(t.Levels)-1].Name, t.Levels[len(t.Levels)-1].Scope)
	}
	marked := 0
	for _, l := range t.Levels {
		if l.Partition {
			marked++
			if l.Scope != ScopeShared {
				return fmt.Errorf("cache: partition level %q must be shared (scope %q)", l.Name, l.Scope)
			}
		}
	}
	if marked > 1 {
		return fmt.Errorf("cache: %d levels marked as the partition level (want at most one)", marked)
	}
	return nil
}

// Tree is a Topology instantiated for a CPU count: the concrete cache
// instances of every level, group-assigned, plus the per-CPU hierarchy
// paths the execution engine charges through.
type Tree struct {
	// Topo is shared read-only with the interned Descriptor the tree
	// was instantiated from; it must not be mutated.
	Topo    Topology
	NumCPUs int

	desc        *Descriptor
	caches      [][]*Cache // [level][group]
	groups      []int      // CPUs per instance, per level
	firstShared int
	partLevel   int
}

// Build instantiates the topology's caches. Shared levels get one
// instance, cluster:N levels one per N CPUs, private levels one per CPU
// (named "<level>.<cpu>"; per-CPU geometry overrides apply there).
// It is Describe (interned, shared across equal topologies) followed by
// a heap-allocated Instantiate.
func (t Topology) Build(numCPUs int) (*Tree, error) {
	d, err := t.Describe(numCPUs)
	if err != nil {
		return nil, err
	}
	return d.Instantiate(nil), nil
}

// NumLevels returns the level count.
func (tr *Tree) NumLevels() int { return len(tr.caches) }

// Cache returns the instance of the given level serving the given CPU.
func (tr *Tree) Cache(level, cpu int) *Cache {
	return tr.caches[level][cpu/tr.groups[level]]
}

// LevelCaches returns every instance of one level (shared levels have
// exactly one). The slice must not be modified.
func (tr *Tree) LevelCaches(level int) []*Cache { return tr.caches[level] }

// MaxLeafSets returns the largest set count among the leaf level's
// instances when the leaf lies below the first shared level (the
// geometry the execution engine's line-register files are keyed by), or
// 0 when the leaf is already shared (no cacheable batching).
func (tr *Tree) MaxLeafSets() int {
	if tr.desc != nil {
		return tr.desc.MaxLeafSets()
	}
	if tr.firstShared == 0 {
		return 0
	}
	most := 0
	for _, c := range tr.caches[0] {
		if c.cfg.Sets > most {
			most = c.cfg.Sets
		}
	}
	return most
}

// Descriptor returns the interned immutable descriptor the tree was
// instantiated from, or nil for a hand-assembled tree.
func (tr *Tree) Descriptor() *Descriptor { return tr.desc }

// PartitionCache returns the partition level's (single, shared) cache.
func (tr *Tree) PartitionCache() *Cache { return tr.caches[tr.partLevel][0] }

// PartitionLevel returns the resolved partition level's spec.
func (tr *Tree) PartitionLevel() LevelSpec { return tr.Topo.Levels[tr.partLevel] }

// SharedCache returns the single instance of the named shared-scope
// level, or an error (the profiler may tap any shared level by name; an
// empty name selects the partition level).
func (tr *Tree) SharedCache(name string) (*Cache, error) {
	if name == "" {
		return tr.PartitionCache(), nil
	}
	i := tr.Topo.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("cache: no level %q (levels: %v)", name, tr.Topo.LevelNames())
	}
	if tr.Topo.Levels[i].Scope != ScopeShared {
		return nil, fmt.Errorf("cache: level %q is %s, not shared", name, tr.Topo.Levels[i].Scope)
	}
	return tr.caches[i][0], nil
}

// Hierarchy wires CPU cpu's leaf-to-root path over the memory port.
func (tr *Tree) Hierarchy(cpu int, mem MemPort) *Hierarchy {
	path := make([]*Cache, len(tr.caches))
	lats := make([]uint64, len(tr.caches))
	for k := range tr.caches {
		path[k] = tr.Cache(k, cpu)
		lats[k] = tr.Topo.Levels[k].HitLat
	}
	return NewHierarchy(path, tr.firstShared, lats, mem)
}
