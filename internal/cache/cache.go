// Package cache implements the set-associative, partitionable cache model
// at the heart of the reproduction.
//
// A Cache is a conventional write-back, write-allocate, LRU
// set-associative cache. Compositionality is induced exactly as in the
// paper (section 4.2): the conventional set index of every access can be
// translated through a PartitionTable that maps the access's owning
// entity (task or communication buffer, identified by its mem.RegionID)
// to an exclusive, power-of-two-sized range of sets. With a nil
// PartitionTable the cache behaves as an ordinary shared cache — the
// baseline of the paper's evaluation.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/arena"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Config describes the geometry of one cache.
type Config struct {
	Name     string
	Sets     int // number of sets; power of two
	Ways     int // associativity
	LineSize int // bytes per line; power of two
}

// SizeBytes returns the capacity of a cache with this geometry.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * c.LineSize }

// SetMask returns the mask selecting the set index from a line address.
// Exported so geometry consumers (tests, the profiling engines' oracles)
// index exactly like the cache itself; New uses it internally.
func (c Config) SetMask() uint64 { return uint64(c.Sets - 1) }

// LineShift returns log2(LineSize), the shift turning a byte address
// into a line address. Exported for the same reason as SetMask.
func (c Config) LineShift() uint { return uint(bits.TrailingZeros(uint(c.LineSize))) }

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %q: sets %d not a positive power of two", c.Name, c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %q: ways %d not positive", c.Name, c.Ways)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a positive power of two", c.Name, c.LineSize)
	}
	return nil
}

// Stats aggregates access outcomes for a cache or a partition of it.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// MissRate returns Misses/Accesses, or 0 for an idle cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.Writebacks += other.Writebacks
}

// EntityStats are the per-entity (per-region) counters that Figures 2 and
// 3 of the paper are drawn from.
type EntityStats struct {
	Accesses uint64
	Misses   uint64
}

// Cache is one level of the memory hierarchy. Line state is kept in
// parallel arrays (set-major, sets*ways each) so the per-access tag scan
// of a 4-way set reads one 32-byte block: tags holds the full line
// address plus one (0 = invalid way; line addresses fit 58 bits, so the
// +1 cannot overflow), last the LRU stamps, dirty the write-back bits.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	tags      []uint64
	last      []uint64
	dirty     []bool
	table     *PartitionTable

	clock   uint64
	stats   Stats
	byOp    [3]Stats
	regions []EntityStats // indexed by mem.RegionID, grown on demand
	parts   []Stats       // indexed by partition id when table != nil

	// Observer, when non-nil, sees every line reference before it is
	// performed. The profiler taps the L2-bound stream this way.
	Observer func(lineAddr uint64, write bool, region mem.RegionID)
}

// New builds a cache with the given geometry. It panics on an invalid
// configuration: geometry is fixed by the platform description and a bad
// one is a programming error.
func New(cfg Config) *Cache { return newIn(cfg, nil) }

// newIn is New with the line-state arrays — the per-simulation mutable
// state block — drawn from the arena (heap when a is nil).
func newIn(cfg Config, a *arena.Arena) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.Sets * cfg.Ways
	return &Cache{
		cfg:       cfg,
		lineShift: cfg.LineShift(),
		setMask:   cfg.SetMask(),
		tags:      arena.Make[uint64](a, n),
		last:      arena.Make[uint64](a, n),
		dirty:     arena.Make[bool](a, n),
	}
}

// PresizeRegions grows the per-entity counter table to cover n region
// ids up front (from the arena when a is non-nil), so the recording hot
// path never reallocates it mid-run. The platform calls this at
// assembly time, when the address space's region population is known.
func (c *Cache) PresizeRegions(n int, a *arena.Arena) {
	if n <= len(c.regions) {
		return
	}
	grown := arena.Make[EntityStats](a, n)
	copy(grown, c.regions)
	c.regions = grown
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// SetPartitionTable installs (or removes, with nil) the index-translation
// table. Installing a table flushes the cache: the translation changes
// where lines live, as it would on real hardware when the OS reloads the
// interval table.
func (c *Cache) SetPartitionTable(t *PartitionTable) {
	if t != nil && t.totalSets != c.cfg.Sets {
		panic(fmt.Sprintf("cache %q: partition table covers %d sets, cache has %d",
			c.cfg.Name, t.totalSets, c.cfg.Sets))
	}
	c.table = t
	c.Flush()
	if t != nil {
		c.parts = make([]Stats, len(t.parts))
	} else {
		c.parts = nil
	}
}

// PartitionTable returns the installed table, or nil for a shared cache.
func (c *Cache) PartitionTable() *PartitionTable { return c.table }

// Flush invalidates every line without counting writebacks or evictions.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.last[i] = 0
		c.dirty[i] = false
	}
}

// ResetStats zeroes all counters (but keeps cache contents), so that
// warm-up can be excluded from measurements.
func (c *Cache) ResetStats() {
	c.stats = Stats{}
	c.byOp = [3]Stats{}
	for i := range c.regions {
		c.regions[i] = EntityStats{}
	}
	for i := range c.parts {
		c.parts[i] = Stats{}
	}
}

// Result describes the outcome of one line reference.
type Result struct {
	Hit       bool
	Evicted   bool   // a valid line was evicted to make room
	Writeback bool   // the evicted victim was dirty
	VictimTag uint64 // line address of the evicted victim, valid when Evicted
}

// Access performs one memory access, possibly split over two lines, and
// returns true if every referenced line hit. This is the trace.Sink shape
// used by tests; the hierarchy uses AccessLine for latency accounting.
func (c *Cache) Access(a trace.Access) bool {
	size := uint64(a.Size)
	if size == 0 {
		size = 1
	}
	first := a.Addr >> c.lineShift
	last := (a.Addr + size - 1) >> c.lineShift
	hit := true
	for ln := first; ln <= last; ln++ {
		r := c.AccessLine(ln, a.Op == trace.Write, a.Region)
		hit = hit && r.Hit
	}
	return hit
}

// AccessLine references one line (identified by Addr>>lineShift) and
// returns the outcome. The region id selects the partition when a
// PartitionTable is installed.
func (c *Cache) AccessLine(lineAddr uint64, write bool, region mem.RegionID) Result {
	if c.Observer != nil {
		c.Observer(lineAddr, write, region)
	}
	c.clock++
	set := lineAddr & c.setMask
	part := 0
	if c.table != nil {
		set, part = c.table.mapSet(set, region)
	}
	base := int(set) * c.cfg.Ways
	end := base + c.cfg.Ways
	tags := c.tags[base:end:end]
	tag := lineAddr + 1

	var res Result
	// Hit path: one scan over the packed tag block.
	for i := range tags {
		if tags[i] == tag {
			c.last[base+i] = c.clock
			if write {
				c.dirty[base+i] = true
			}
			res.Hit = true
			c.record(region, part, res, write)
			return res
		}
	}
	// Miss: pick invalid way or LRU victim.
	victim := 0
	for i := range tags {
		if tags[i] == 0 {
			victim = i
			goto fill
		}
		if c.last[base+i] < c.last[base+victim] {
			victim = i
		}
	}
	c.stats.Evictions++
	if c.table != nil {
		c.parts[part].Evictions++
	}
	res.Evicted = true
	res.VictimTag = tags[victim] - 1
	if c.dirty[base+victim] {
		res.Writeback = true
	}
fill:
	tags[victim] = tag
	c.last[base+victim] = c.clock
	c.dirty[base+victim] = write
	c.record(region, part, res, write)
	return res
}

// record credits one access outcome to every counter family. Hit, miss
// and writeback are folded into 0/1 increments so the per-access cost is
// a fixed run of adds instead of a branch tree (this path remains hot for
// every first-of-line access and every miss on the line-merged engine).
func (c *Cache) record(region mem.RegionID, part int, res Result, write bool) {
	hit := uint64(0)
	if res.Hit {
		hit = 1
	}
	wb := uint64(0)
	if res.Writeback {
		wb = 1
	}
	op := trace.Read
	if write {
		op = trace.Write
	}
	c.stats.Accesses++
	c.stats.Hits += hit
	c.stats.Misses += 1 - hit
	c.stats.Writebacks += wb
	o := &c.byOp[op]
	o.Accesses++
	o.Hits += hit
	o.Misses += 1 - hit
	if region >= 0 {
		if int(region) >= len(c.regions) {
			grown := make([]EntityStats, region+1)
			copy(grown, c.regions)
			c.regions = grown
		}
		r := &c.regions[region]
		r.Accesses++
		r.Misses += 1 - hit
	}
	if c.table != nil {
		p := &c.parts[part]
		p.Accesses++
		p.Hits += hit
		p.Misses += 1 - hit
		p.Writebacks += wb
	}
}

// CommitHits credits reads+writes guaranteed hits on a line that is known
// to be resident — the batched commit of the exact line-merged fast path.
// The caller (the execution engine's per-task line register) proves
// residency from strict handoff: the line was referenced by the previous
// access of the same task and nothing else has touched this cache since.
//
// State and statistics end up exactly as reads+writes individual
// AccessLine hits would leave them: the clock advances by the batch size,
// the line's LRU stamp becomes the final clock value, the dirty bit is set
// when the batch contains a write, and every counter family (aggregate,
// per-op, per-region, per-partition) is credited per access. The Observer
// is NOT invoked; callers coalescing on an observed cache must take the
// word-granular path instead (Hierarchy.FastSpec disables cacheable
// batching, returning sets=0, when the L1 has an Observer).
//
// CommitHits panics if the line is absent: that means the residency proof
// was violated, which is a programming error in the fast path, and the
// differential oracle tests exist to keep it impossible.
func (c *Cache) CommitHits(lineAddr uint64, region mem.RegionID, reads, writes uint64) {
	n := reads + writes
	if n == 0 {
		return
	}
	set := lineAddr & c.setMask
	part := 0
	if c.table != nil {
		set, part = c.table.mapSet(set, region)
	}
	base := int(set) * c.cfg.Ways
	end := base + c.cfg.Ways
	tags := c.tags[base:end:end]
	tag := lineAddr + 1
	c.clock += n
	found := false
	for i := range tags {
		if tags[i] == tag {
			c.last[base+i] = c.clock
			if writes > 0 {
				c.dirty[base+i] = true
			}
			found = true
			break
		}
	}
	if !found {
		panic(fmt.Sprintf("cache %q: CommitHits on absent line %#x (fast-path residency proof violated)",
			c.cfg.Name, lineAddr))
	}
	c.stats.Accesses += n
	c.stats.Hits += n
	c.byOp[trace.Read].Accesses += reads
	c.byOp[trace.Read].Hits += reads
	c.byOp[trace.Write].Accesses += writes
	c.byOp[trace.Write].Hits += writes
	if region >= 0 {
		if int(region) >= len(c.regions) {
			grown := make([]EntityStats, region+1)
			copy(grown, c.regions)
			c.regions = grown
		}
		c.regions[region].Accesses += n
	}
	if c.table != nil {
		p := &c.parts[part]
		p.Accesses += n
		p.Hits += n
	}
}

// Probe reports whether the line containing addr is present, without
// touching LRU state or statistics. Region selects the partition.
func (c *Cache) Probe(addr uint64, region mem.RegionID) bool {
	lineAddr := addr >> c.lineShift
	set := lineAddr & c.setMask
	if c.table != nil {
		set, _ = c.table.mapSet(set, region)
	}
	base := int(set) * c.cfg.Ways
	for _, t := range c.tags[base : base+c.cfg.Ways] {
		if t == lineAddr+1 {
			return true
		}
	}
	return false
}

// Stats returns the aggregate counters.
func (c *Cache) Stats() Stats { return c.stats }

// OpStats returns the counters for one access operation (reads or writes;
// fetches are recorded as reads at the cache level).
func (c *Cache) OpStats(op trace.Op) Stats { return c.byOp[op] }

// RegionStats returns the counters for one entity.
func (c *Cache) RegionStats(id mem.RegionID) EntityStats {
	if id < 0 || int(id) >= len(c.regions) {
		return EntityStats{}
	}
	return c.regions[id]
}

// NumTrackedRegions returns how many region ids have been observed.
func (c *Cache) NumTrackedRegions() int { return len(c.regions) }

// PartitionStats returns the counters for one partition; zero Stats when
// no table is installed or the id is out of range.
func (c *Cache) PartitionStats(part int) Stats {
	if part < 0 || part >= len(c.parts) {
		return Stats{}
	}
	return c.parts[part]
}

// OccupiedLines counts currently valid lines (test/diagnostic helper).
func (c *Cache) OccupiedLines() int {
	n := 0
	for _, t := range c.tags {
		if t != 0 {
			n++
		}
	}
	return n
}
