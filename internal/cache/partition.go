package cache

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// PartitionTable is the index-translation table of the paper's third
// implementation alternative: the operating system loads intervals of
// shared memory (here: region ids, which the address space resolves from
// intervals) and the cache looks up, for every access, the exclusive set
// range of the owning entity. The effective set index becomes
//
//	base + (conventionalSet mod partitionSize)
//
// with partitionSize a power of two, so the translation is a mask and an
// add, as cheap as the hardware scheme the paper sketches.
type PartitionTable struct {
	totalSets int
	parts     []Partition
	byRegion  map[mem.RegionID]int
	defaultID int
	allocated int
}

// Partition is one exclusive range of cache sets.
type Partition struct {
	ID      int
	Name    string
	BaseSet int
	NumSets int // power of two
}

// NewPartitionTable creates a table for a cache with totalSets sets.
// A default partition named defaultName of defaultSets sets is created at
// the bottom of the cache; entities that were never assigned fall into it
// (in the paper this is the partition of the run-time system).
func NewPartitionTable(totalSets int, defaultName string, defaultSets int) (*PartitionTable, error) {
	if totalSets <= 0 || totalSets&(totalSets-1) != 0 {
		return nil, fmt.Errorf("cache: total sets %d not a positive power of two", totalSets)
	}
	t := &PartitionTable{
		totalSets: totalSets,
		byRegion:  make(map[mem.RegionID]int),
		defaultID: -1,
	}
	id, err := t.AddPartition(defaultName, defaultSets)
	if err != nil {
		return nil, err
	}
	t.defaultID = id
	return t, nil
}

// AddPartition appends a new exclusive partition of numSets sets (a power
// of two) and returns its id. Partitions are packed contiguously from set
// 0 upward; an error is returned when the cache is over-committed.
func (t *PartitionTable) AddPartition(name string, numSets int) (int, error) {
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		return 0, fmt.Errorf("cache: partition %q size %d not a positive power of two", name, numSets)
	}
	if t.allocated+numSets > t.totalSets {
		return 0, fmt.Errorf("cache: partition %q (%d sets) over-commits cache: %d of %d sets already allocated",
			name, numSets, t.allocated, t.totalSets)
	}
	p := Partition{ID: len(t.parts), Name: name, BaseSet: t.allocated, NumSets: numSets}
	t.parts = append(t.parts, p)
	t.allocated += numSets
	return p.ID, nil
}

// Assign maps an entity (region) to a partition. Several regions may
// share one partition (e.g. a task's code, stack and heap all live in the
// task's partition).
func (t *PartitionTable) Assign(region mem.RegionID, part int) error {
	if part < 0 || part >= len(t.parts) {
		return fmt.Errorf("cache: assign region %d to unknown partition %d", region, part)
	}
	t.byRegion[region] = part
	return nil
}

// PartitionOf returns the partition id an entity maps to.
func (t *PartitionTable) PartitionOf(region mem.RegionID) int {
	if p, ok := t.byRegion[region]; ok {
		return p
	}
	return t.defaultID
}

// Partition returns the descriptor for one partition id.
func (t *PartitionTable) Partition(id int) Partition {
	return t.parts[id]
}

// Partitions returns all partitions in creation order. The slice must not
// be modified.
func (t *PartitionTable) Partitions() []Partition { return t.parts }

// DefaultID returns the id of the default (run-time system) partition.
func (t *PartitionTable) DefaultID() int { return t.defaultID }

// AllocatedSets returns the number of sets already handed out.
func (t *PartitionTable) AllocatedSets() int { return t.allocated }

// FreeSets returns the number of sets still unassigned.
func (t *PartitionTable) FreeSets() int { return t.totalSets - t.allocated }

func (t *PartitionTable) mapSet(set uint64, region mem.RegionID) (uint64, int) {
	id := t.defaultID
	if p, ok := t.byRegion[region]; ok {
		id = p
	}
	p := &t.parts[id]
	return uint64(p.BaseSet) + (set & uint64(p.NumSets-1)), id
}

// MapSet is the exported form of the translation, used by tests and by
// diagnostic tooling.
func (t *PartitionTable) MapSet(set uint64, region mem.RegionID) (uint64, int) {
	return t.mapSet(set, region)
}

// Validate checks the structural invariants: partitions within bounds,
// pairwise disjoint, power-of-two sized.
func (t *PartitionTable) Validate() error {
	ps := make([]Partition, len(t.parts))
	copy(ps, t.parts)
	sort.Slice(ps, func(i, j int) bool { return ps[i].BaseSet < ps[j].BaseSet })
	end := 0
	for _, p := range ps {
		if p.NumSets <= 0 || p.NumSets&(p.NumSets-1) != 0 {
			return fmt.Errorf("cache: partition %q size %d not a power of two", p.Name, p.NumSets)
		}
		if p.BaseSet < end {
			return fmt.Errorf("cache: partition %q overlaps previous partition", p.Name)
		}
		end = p.BaseSet + p.NumSets
		if end > t.totalSets {
			return fmt.Errorf("cache: partition %q exceeds cache sets", p.Name)
		}
	}
	return nil
}
