package cache

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestConfigValidateNamesFieldAndValue pins the validation contract: a
// non-power-of-two geometry is rejected with an error naming the field
// and the offending value (a bad set count or line size would otherwise
// produce wrong index masks downstream).
func TestConfigValidateNamesFieldAndValue(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"sets not pow2", Config{Name: "l2", Sets: 3, Ways: 4, LineSize: 64}, "sets 3"},
		{"sets zero", Config{Name: "l2", Sets: 0, Ways: 4, LineSize: 64}, "sets 0"},
		{"line size not pow2", Config{Name: "l2", Sets: 64, Ways: 4, LineSize: 48}, "line size 48"},
		{"line size zero", Config{Name: "l2", Sets: 64, Ways: 4, LineSize: 0}, "line size 0"},
		{"ways zero", Config{Name: "l2", Sets: 64, Ways: 0, LineSize: 64}, "ways 0"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if err == nil {
				t.Fatalf("Validate(%+v) = nil, want error naming %q", c.cfg, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not name the field and value %q", err, c.want)
			}
			if !strings.Contains(err.Error(), c.cfg.Name) {
				t.Errorf("error %q does not name the cache %q", err, c.cfg.Name)
			}
		})
	}
	if err := (Config{Name: "ok", Sets: 64, Ways: 3, LineSize: 64}).Validate(); err != nil {
		t.Errorf("non-power-of-two WAYS are legal (victim scan is linear): %v", err)
	}
}

func l1Spec() LevelSpec {
	return LevelSpec{Name: "l1", Scope: ScopePrivate, Sets: 8, Ways: 2, LineSize: 64}
}
func l2PrivSpec() LevelSpec {
	return LevelSpec{Name: "l2", Scope: ScopePrivate, Sets: 16, Ways: 2, LineSize: 64, HitLat: 8}
}
func l3Spec() LevelSpec {
	return LevelSpec{Name: "l3", Scope: ScopeShared, Sets: 64, Ways: 4, LineSize: 64, HitLat: 20, Partition: true}
}

// TestTopologyValidate enumerates the structural rejections.
func TestTopologyValidate(t *testing.T) {
	cluster := func(n int) LevelSpec {
		return LevelSpec{Name: "lc", Scope: ClusterScope(n), Sets: 16, Ways: 2, LineSize: 64}
	}
	cases := []struct {
		name string
		topo Topology
		cpus int
		want string
	}{
		{"no levels", Topology{}, 4, "no levels"},
		{"unnamed level", Topology{Levels: []LevelSpec{{Scope: ScopeShared, Sets: 8, Ways: 1, LineSize: 64}}}, 4, "no name"},
		{"duplicate names", Topology{Levels: []LevelSpec{l1Spec(), func() LevelSpec { l := l3Spec(); l.Name = "l1"; return l }()}}, 4, "duplicate level name"},
		{"cluster does not divide cpus", Topology{Levels: []LevelSpec{l1Spec(), cluster(2), l3Spec()}}, 3, "3 CPUs not divisible by cluster size 2"},
		{"bad scope", Topology{Levels: []LevelSpec{{Name: "x", Scope: "sharedish", Sets: 8, Ways: 1, LineSize: 64}}}, 4, "unknown scope"},
		{"non-nesting scopes", Topology{Levels: []LevelSpec{func() LevelSpec { c := cluster(2); c.Name = "a"; return c }(), func() LevelSpec { c := cluster(3); c.Name = "b"; return c }(), func() LevelSpec { l := l3Spec(); return l }()}}, 6, "does not nest"},
		{"narrowing scopes", Topology{Levels: []LevelSpec{func() LevelSpec { l := l3Spec(); l.Name = "s"; l.Partition = false; return l }(), func() LevelSpec { l := l1Spec(); l.Name = "p"; return l }(), l3Spec()}}, 4, "does not nest"},
		{"private root", Topology{Levels: []LevelSpec{l1Spec()}}, 4, "must be shared"},
		{"partition on private level", Topology{Levels: []LevelSpec{func() LevelSpec { l := l1Spec(); l.Partition = true; return l }(), l3Spec()}}, 4, `partition level "l1" must be shared`},
		{"two partition levels", Topology{Levels: []LevelSpec{func() LevelSpec { l := l3Spec(); l.Name = "s0"; return l }(), l3Spec()}}, 4, ""},
		{"per-cpu on shared level", Topology{Levels: []LevelSpec{func() LevelSpec { l := l3Spec(); l.PerCPU = map[int]Geometry{0: {Sets: 8}}; return l }()}}, 4, "per-CPU geometry"},
		{"per-cpu out of range", Topology{Levels: []LevelSpec{func() LevelSpec { l := l1Spec(); l.PerCPU = map[int]Geometry{7: {Sets: 16}}; return l }(), l3Spec()}}, 4, "out of range"},
		{"per-cpu bad geometry", Topology{Levels: []LevelSpec{func() LevelSpec { l := l1Spec(); l.PerCPU = map[int]Geometry{0: {Sets: 3}}; return l }(), l3Spec()}}, 4, "sets 3"},
		{"bad level geometry", Topology{Levels: []LevelSpec{func() LevelSpec { l := l3Spec(); l.Sets = 5; return l }()}}, 4, "sets 5"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.topo.Validate(c.cpus)
			if err == nil {
				t.Fatalf("Validate = nil, want error about %q", c.name)
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}

	good := []Topology{
		{Levels: []LevelSpec{l3Spec()}},                         // single shared level
		{Levels: []LevelSpec{l1Spec(), l3Spec()}},               // classic
		{Levels: []LevelSpec{l1Spec(), l2PrivSpec(), l3Spec()}}, // 3-level private
		{Levels: []LevelSpec{l1Spec(), cluster(2), l3Spec()}},   // clustered
		TwoLevel(Config{Sets: 8, Ways: 2, LineSize: 64}, Config{Sets: 64, Ways: 4, LineSize: 64}, 1, 8),
	}
	for i, topo := range good {
		if err := topo.Validate(4); err != nil {
			t.Errorf("good topology %d rejected: %v", i, err)
		}
	}
}

// TestSingleLevelTopology is the "CPUs straight to one shared cache,
// then memory" edge: every access takes the burst-merged bypass class,
// exactly like the legacy L1-less hierarchy.
func TestSingleLevelTopology(t *testing.T) {
	topo := Topology{Levels: []LevelSpec{{Name: "l2", Scope: ScopeShared, Sets: 64, Ways: 4, LineSize: 64, HitLat: 8}}}
	tr, err := topo.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cache(0, 0) != tr.Cache(0, 1) {
		t.Fatal("shared level must be one instance")
	}
	m := &FixedMem{Latency: 50}
	h := tr.Hierarchy(0, m)
	if h.Leaf() != nil {
		t.Error("single shared level has no private leaf")
	}
	if lat := h.AccessAt(trace.Access{Addr: 0, Size: 4}, 0); lat != 8+50 {
		t.Errorf("cold latency = %d, want 58", lat)
	}
	if lat := h.AccessAt(trace.Access{Addr: 0, Size: 4}, 0); lat != 1 {
		t.Errorf("burst latency = %d, want 1", lat)
	}
	h.AccessAt(trace.Access{Addr: 64, Size: 4}, 0)
	if lat := h.AccessAt(trace.Access{Addr: 0, Size: 4}, 0); lat != 8 {
		t.Errorf("warm latency = %d, want 8", lat)
	}
	if _, sets, _, mergeLat := h.FastSpec(); sets != 0 || mergeLat != 1 {
		t.Errorf("FastSpec = sets %d mergeLat %d, want 0/1 (no cacheable batching)", sets, mergeLat)
	}

	// A dirty eviction from the (shared) leaf is a root writeback, not a
	// leaf-to-next one: it posts to memory and must not count as a
	// private-leaf writeback (the legacy L1-less hierarchy's semantics).
	tiny, err := Topology{Levels: []LevelSpec{{Name: "l2", Scope: ScopeShared, Sets: 1, Ways: 1, LineSize: 64, HitLat: 8}}}.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	m2 := &FixedMem{Latency: 50}
	h2 := tiny.Hierarchy(0, m2)
	h2.AccessAt(trace.Access{Addr: 0, Size: 4, Op: trace.Write}, 0)
	h2.AccessAt(trace.Access{Addr: 64, Size: 4, Op: trace.Read}, 0)
	if h2.WritebacksToL2 != 0 || h2.WritebacksToMem != 1 || m2.Writes != 1 {
		t.Errorf("single-level dirty eviction: wbL2=%d wbMem=%d posted=%d, want 0/1/1",
			h2.WritebacksToL2, h2.WritebacksToMem, m2.Writes)
	}
}

// TestThreeLevelWalkAndVictimOrdering drives a 3-level path with
// single-line levels so every eviction is forced, and checks the
// inclusive walk's latency accumulation plus the victim cascade order:
// a dirty leaf victim is written into L2 BEFORE the demand access
// displaces it again, so it ripples L2→L3→memory exactly once per
// level, in order.
func TestThreeLevelWalkAndVictimOrdering(t *testing.T) {
	l1 := New(Config{Name: "l1", Sets: 1, Ways: 1, LineSize: 64})
	l2 := New(Config{Name: "l2", Sets: 1, Ways: 1, LineSize: 64})
	l3 := New(Config{Name: "l3", Sets: 1, Ways: 1, LineSize: 64})
	m := &FixedMem{Latency: 50}
	h := NewHierarchy([]*Cache{l1, l2, l3}, 2, []uint64{1, 8, 20}, m)

	// Cold write of line A: misses all three levels, fills all three.
	if lat := h.AccessAt(trace.Access{Addr: 0, Size: 4, Op: trace.Write}, 0); lat != 1+8+20+50 {
		t.Errorf("cold 3-level latency = %d, want 79", lat)
	}
	if h.DemandFills != 1 || m.Reads != 1 {
		t.Errorf("fills=%d reads=%d, want 1/1", h.DemandFills, m.Reads)
	}
	// Read of line B (same sets everywhere): the dirty A is evicted from
	// L1 and written back into L2 (hit: L2 still holds A) BEFORE B's
	// demand walk displaces A from L2 — that eviction finds A dirty and
	// cascades it into L3, whose own eviction finds A dirty again and
	// posts it to memory. One writeback at every boundary.
	if lat := h.AccessAt(trace.Access{Addr: 64, Size: 4, Op: trace.Read}, 100); lat != 1+8+20+50 {
		t.Errorf("conflict 3-level latency = %d, want 79", lat)
	}
	if h.WritebacksToL2 != 1 {
		t.Errorf("leaf writebacks = %d, want 1", h.WritebacksToL2)
	}
	if h.WritebacksToMem != 1 || m.Writes != 1 {
		t.Errorf("root writebacks = %d (posted %d), want 1", h.WritebacksToMem, m.Writes)
	}
	// The L2 saw: A's fill (read), A's writeback (write hit), B's fill
	// (read). Had the demand access come first, the writeback would have
	// missed and allocated A again.
	if s := l2.OpStats(trace.Write); s.Accesses != 1 || s.Hits != 1 {
		t.Errorf("L2 writeback insertion = %+v, want 1 write hit", s)
	}
	if l3.Stats().Evictions != 1 || l3.Stats().Writebacks != 1 {
		t.Errorf("L3 stats = %+v, want the cascaded dirty eviction", l3.Stats())
	}
	// B now resident everywhere: an L1 hit costs only the probe.
	if lat := h.AccessAt(trace.Access{Addr: 64, Size: 4}, 200); lat != 1 {
		t.Errorf("leaf hit latency = %d, want 1", lat)
	}
	// A is only in memory: a re-read walks all levels again.
	if lat := h.AccessAt(trace.Access{Addr: 0, Size: 4}, 300); lat != 1+8+20+50 {
		t.Errorf("re-read latency = %d, want 79", lat)
	}
}

// TestClusterTreeSharing checks cluster-scope instantiation: one cache
// per N CPUs, shared within the cluster, distinct across clusters.
func TestClusterTreeSharing(t *testing.T) {
	topo := Topology{Levels: []LevelSpec{
		l1Spec(),
		{Name: "l2", Scope: ClusterScope(2), Sets: 16, Ways: 2, LineSize: 64, HitLat: 8},
		l3Spec(),
	}}
	tr, err := topo.Build(4)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cache(0, 0) == tr.Cache(0, 1) {
		t.Error("private leaves must be distinct")
	}
	if tr.Cache(1, 0) != tr.Cache(1, 1) || tr.Cache(1, 2) != tr.Cache(1, 3) {
		t.Error("cluster mates must share one L2")
	}
	if tr.Cache(1, 1) == tr.Cache(1, 2) {
		t.Error("clusters must not share L2s")
	}
	if tr.Cache(2, 0) != tr.Cache(2, 3) {
		t.Error("root must be shared by all")
	}
	if tr.PartitionCache() != tr.Cache(2, 0) {
		t.Error("partition cache must be the marked shared level")
	}
	// A line loaded through CPU0 is a cluster-L2 hit for CPU1 but not
	// for CPU2 (each hierarchy walks its own path).
	h0 := tr.Hierarchy(0, &FixedMem{Latency: 50})
	h1 := tr.Hierarchy(1, &FixedMem{Latency: 50})
	h2 := tr.Hierarchy(2, &FixedMem{Latency: 50})
	h0.AccessAt(trace.Access{Addr: 0x4000, Size: 4}, 0)
	if lat := h1.AccessAt(trace.Access{Addr: 0x4000, Size: 4}, 0); lat != 0+8 {
		t.Errorf("cluster-mate hit latency = %d, want 8", lat)
	}
	if lat := h2.AccessAt(trace.Access{Addr: 0x4000, Size: 4}, 0); lat != 0+8+20 {
		t.Errorf("cross-cluster latency = %d, want 28 (cluster miss, shared L3 hit)", lat)
	}
}

// TestPerCPUHeterogeneousGeometry checks per-CPU overrides build
// distinct leaf geometries, visible through each CPU's FastSpec.
func TestPerCPUHeterogeneousGeometry(t *testing.T) {
	l1 := l1Spec()
	l1.PerCPU = map[int]Geometry{1: {Sets: 32, Ways: 4}}
	topo := Topology{Levels: []LevelSpec{l1, l3Spec()}}
	tr, err := topo.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	if g := tr.Cache(0, 0).Config(); g.Sets != 8 || g.Ways != 2 {
		t.Errorf("cpu0 leaf = %+v, want the level default", g)
	}
	if g := tr.Cache(0, 1).Config(); g.Sets != 32 || g.Ways != 4 || g.LineSize != 64 {
		t.Errorf("cpu1 leaf = %+v, want the 32×4 override with inherited line size", g)
	}
	_, sets0, _, _ := tr.Hierarchy(0, nil).FastSpec()
	_, sets1, _, _ := tr.Hierarchy(1, nil).FastSpec()
	if sets0 != 8 || sets1 != 32 {
		t.Errorf("FastSpec sets = %d/%d, want 8/32", sets0, sets1)
	}
}

// TestWithLevelDeepCopies guards the config-mutation idiom: WithLevel
// must not alias the source topology.
func TestWithLevelDeepCopies(t *testing.T) {
	base := Topology{Levels: []LevelSpec{l1Spec(), l3Spec()}}
	big := base.WithLevel("l3", func(l *LevelSpec) { l.Sets *= 2 })
	if base.Levels[1].Sets != 64 || big.Levels[1].Sets != 128 {
		t.Errorf("WithLevel aliased its source: base %d, derived %d", base.Levels[1].Sets, big.Levels[1].Sets)
	}
	defer func() {
		if recover() == nil {
			t.Error("WithLevel on an unknown level must panic")
		}
	}()
	base.WithLevel("l9", func(l *LevelSpec) {})
}
