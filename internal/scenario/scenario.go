// Package scenario is the declarative experiment surface of the
// reproduction: a Scenario is a JSON-(de)serializable spec naming a
// registered workload, a platform geometry, engines, a solver and a
// partition policy; a Runner validates specs and executes batches over
// the bounded worker pool with content-addressed memoization (identical
// specs — and identical pipeline stages across different specs —
// simulate once); a Result is the structured, versioned document every
// table and figure of the evaluation is derived from.
//
// Scenarios are data, not Go functions: new workload mixes, geometries
// and policies are defined in JSON (or constructed programmatically),
// batched through Runner.RunBatch, and served over HTTP by the
// `compmem serve` mode, without touching the harness.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/profile"
	"repro/internal/workloads"
)

// SpecVersion is the current Scenario spec version.
const SpecVersion = 1

// Partition policies: how far down the paper's pipeline a scenario runs.
const (
	// PartitionOptimized is the full study (the default): shared
	// baseline run, profile + optimize, partitioned run, and the
	// expected-vs-simulated compositionality comparison.
	PartitionOptimized = "optimized"
	// PartitionShared runs only the shared-cache baseline.
	PartitionShared = "shared"
	// PartitionOptimize profiles and solves for an allocation but runs
	// no measured executions (the granularity ablation needs exactly
	// this).
	PartitionOptimize = "optimize"
	// PartitionProfile only profiles the per-entity miss curves.
	PartitionProfile = "profile"
)

var partitionPolicies = []string{PartitionOptimized, PartitionShared, PartitionOptimize, PartitionProfile}

// Scenario is one serializable experiment spec. The zero value of every
// optional field means "the harness default", so minimal specs stay
// minimal; Normalize fills the canonical values in.
type Scenario struct {
	// SpecVersion is the spec schema version; 0 means current.
	SpecVersion int `json:"spec_version,omitempty"`
	// Name labels the scenario in listings and results. It does not
	// affect the simulation (two scenarios differing only in Name share
	// one content address).
	Name string `json:"name,omitempty"`
	// Base names a built-in scenario this spec overlays: omitted fields
	// inherit the base's values. Resolved by Resolve before Normalize.
	Base string `json:"base,omitempty"`

	// Workload names a registered workload (see internal/workloads
	// Register/Names).
	Workload string `json:"workload"`
	// Scale is "small" or "paper" (default).
	Scale string `json:"scale,omitempty"`
	// Seed perturbs the workload's synthetic input data; 0 is the
	// canonical paper workload.
	Seed uint64 `json:"seed,omitempty"`
	// Platform overrides the section 5 tile geometry; nil keeps it.
	Platform *PlatformSpec `json:"platform,omitempty"`

	// Partition selects the pipeline policy: "optimized" (default),
	// "shared", "optimize" or "profile".
	Partition string `json:"partition,omitempty"`
	// Runs is the number of jittered profiling repetitions averaged
	// into the miss curves; default 2.
	Runs int `json:"runs,omitempty"`
	// Solver is "mckp" (default) or "ilp".
	Solver string `json:"solver,omitempty"`
	// ProfileEngine is "stackdist" (default) or "bank".
	ProfileEngine string `json:"profile_engine,omitempty"`
	// ProfileLevel names the shared hierarchy level whose miss curves
	// the profiler measures; empty means the partition level. The
	// allocation budget always comes from the partition level.
	ProfileLevel string `json:"profile_level,omitempty"`
	// ExecEngine is "merged" (default) or "word".
	ExecEngine string `json:"exec_engine,omitempty"`
	// Sizes restricts the candidate partition sizes (allocation units,
	// powers of two); nil means the default 1..128 ladder.
	Sizes []int `json:"sizes,omitempty"`
	// Migration enables dynamic scheduling with task migration for the
	// measured shared/partitioned executions. Profiling runs always use
	// static scheduling — the regime the paper's model covers.
	Migration bool `json:"migration,omitempty"`
	// AllocWorkload, for the "optimized" policy, borrows the partitioned
	// run's allocation from optimizing this workload instead of the
	// scenario's own — the compositionality ablation validates a solo
	// task under the full application's allocation this way.
	AllocWorkload string `json:"alloc_workload,omitempty"`
	// Trace selects the functional-execution source for the pipeline
	// stages: "replay" (the default; canonicalized to empty) drives the
	// profiler and the measured executions from the workload's recorded
	// access-stream trace, captured once per (workload, scale, seed) by
	// the trace stage and persisted through the store layers; "live"
	// re-runs the functional apps for every stage. Replay is proven
	// bit-identical to live (see internal/tracefile), so the choice
	// cannot affect results and is cleared from the content address —
	// both modes share every stage key.
	Trace string `json:"trace,omitempty"`
}

// Trace modes (Scenario.Trace).
const (
	// TraceReplay drives pipeline stages from the recorded trace
	// (default; normalizes to the empty string).
	TraceReplay = "replay"
	// TraceLive re-runs the functional applications for every stage.
	TraceLive = "live"
)

// CacheSpec overrides a cache geometry. Fields are pointers so that an
// explicit zero is distinguishable from "field absent": absent (nil)
// keeps the default, while a deliberate `"ways": 0` is applied verbatim
// and fails validation naming the field — it no longer silently means
// "default".
type CacheSpec struct {
	Sets     *int `json:"sets,omitempty"`
	Ways     *int `json:"ways,omitempty"`
	LineSize *int `json:"line_size,omitempty"`
}

func (c CacheSpec) empty() bool { return c.Sets == nil && c.Ways == nil && c.LineSize == nil }

func (c CacheSpec) apply(base cache.Config) cache.Config {
	if c.Sets != nil {
		base.Sets = *c.Sets
	}
	if c.Ways != nil {
		base.Ways = *c.Ways
	}
	if c.LineSize != nil {
		base.LineSize = *c.LineSize
	}
	return base
}

// BusSpec overrides the interconnect; absent (nil) fields keep the
// default.
type BusSpec struct {
	TransferCycles *uint64 `json:"transfer_cycles,omitempty"`
	MemLatency     *uint64 `json:"mem_latency,omitempty"`
	Banks          *int    `json:"banks,omitempty"`
	LineSize       *int    `json:"line_size,omitempty"`
}

func (b BusSpec) apply(base bus.Config) bus.Config {
	if b.TransferCycles != nil {
		base.TransferCycles = *b.TransferCycles
	}
	if b.MemLatency != nil {
		base.MemLatency = *b.MemLatency
	}
	if b.Banks != nil {
		base.Banks = *b.Banks
	}
	if b.LineSize != nil {
		base.LineSize = *b.LineSize
	}
	return base
}

// SchedSpec overrides the scheduler; absent (nil) fields keep the
// default (an explicit 0 switch_cost is a real zero-cost switch).
type SchedSpec struct {
	Quantum    *int64  `json:"quantum,omitempty"`
	SwitchCost *uint64 `json:"switch_cost,omitempty"`
}

// HierarchyVersion is the current version of the hierarchy block.
const HierarchyVersion = 1

// LevelSpec is one level of a declarative memory-hierarchy block, leaf
// to root. Absent fields inherit a seed: a level named "l1" or "l2"
// seeds from the section 5 default of that name; any other level seeds
// from the default L1 (private scope) or L2 (shared/cluster scope)
// geometry. The legacy top-level "l1"/"l2" alias specs overlay the
// equally-named levels before the level's own fields apply.
type LevelSpec struct {
	Name string `json:"name"`
	// Scope is "private", "shared" or "cluster:N"; it defaults to
	// "shared" for the last (root) level and "private" otherwise.
	Scope      string  `json:"scope,omitempty"`
	Sets       *int    `json:"sets,omitempty"`
	Ways       *int    `json:"ways,omitempty"`
	LineSize   *int    `json:"line_size,omitempty"`
	HitLatency *uint64 `json:"hit_latency,omitempty"`
	// Partition marks the level partition tables install at and the
	// profiler taps by default (at most one; default: the root).
	Partition *bool `json:"partition,omitempty"`
	// PerCPU overrides individual CPUs' instance geometries on
	// private-scope levels; keys are decimal CPU indices.
	PerCPU map[string]CacheSpec `json:"per_cpu,omitempty"`
}

// HierarchySpec is the versioned memory-hierarchy block of a platform
// spec: an N-level, topology-aware cache tree replacing the hard-coded
// L1+L2 pair. When absent, the platform keeps the default two-level
// tree (overlaid by the legacy l1/l2 alias fields).
type HierarchySpec struct {
	Version int         `json:"version,omitempty"`
	Levels  []LevelSpec `json:"levels"`
}

// PlatformSpec is the serializable platform geometry. Absent fields
// keep the section 5 default (platform.Default()), so a custom geometry
// only names what it changes — e.g. {"num_cpus": 8}; explicit zeros are
// applied verbatim and rejected by validation naming the field.
type PlatformSpec struct {
	NumCPUs *int     `json:"num_cpus,omitempty"`
	BaseCPI *float64 `json:"base_cpi,omitempty"`
	// Hierarchy declares an arbitrary cache topology; nil keeps the
	// default private-L1 + shared-L2 pair.
	Hierarchy *HierarchySpec `json:"hierarchy,omitempty"`
	// L1/L2 and the hit latencies are the legacy two-level spelling,
	// kept as aliases: they overlay the hierarchy levels named "l1" and
	// "l2" (whether from the default tree or a hierarchy block).
	L1            CacheSpec `json:"l1,omitzero"`
	L2            CacheSpec `json:"l2,omitzero"`
	L1HitLatency  *uint64   `json:"l1_hit_latency,omitempty"`
	L2HitLatency  *uint64   `json:"l2_hit_latency,omitempty"`
	Bus           BusSpec   `json:"bus,omitzero"`
	Sched         SchedSpec `json:"sched,omitzero"`
	SwitchTouches *int      `json:"switch_touches,omitempty"`
}

// applyAlias overlays the legacy l1/l2 alias fields onto the levels of
// the same name.
func (p PlatformSpec) applyAlias(l *cache.LevelSpec) {
	switch l.Name {
	case "l1":
		g := p.L1.apply(l.Config())
		l.Sets, l.Ways, l.LineSize = g.Sets, g.Ways, g.LineSize
		if p.L1HitLatency != nil {
			l.HitLat = *p.L1HitLatency
		}
	case "l2":
		g := p.L2.apply(l.Config())
		l.Sets, l.Ways, l.LineSize = g.Sets, g.Ways, g.LineSize
		if p.L2HitLatency != nil {
			l.HitLat = *p.L2HitLatency
		}
	}
}

// materializeLevel resolves one hierarchy-block level: seed defaults,
// the level's own fields, then the legacy alias overlay (the aliases
// are the outermost override, so a spec overlaying a base's canonical —
// fully explicit — hierarchy block through the l1/l2 shorthand still
// takes effect).
func (p PlatformSpec) materializeLevel(ls LevelSpec, last bool, def cache.Topology) (cache.LevelSpec, error) {
	if ls.Name == "" {
		return cache.LevelSpec{}, fmt.Errorf("scenario: hierarchy level without a name")
	}
	scope := ls.Scope
	if scope == "" {
		scope = cache.ScopePrivate
		if last {
			scope = cache.ScopeShared
		}
	}
	var seed cache.LevelSpec
	if i := def.Index(ls.Name); i >= 0 {
		seed = def.Levels[i]
	} else if scope == cache.ScopePrivate {
		seed = def.Levels[0]
	} else {
		seed = def.Levels[len(def.Levels)-1]
	}
	lvl := cache.LevelSpec{
		Name: ls.Name, Scope: scope,
		Sets: seed.Sets, Ways: seed.Ways, LineSize: seed.LineSize, HitLat: seed.HitLat,
	}
	if ls.Sets != nil {
		lvl.Sets = *ls.Sets
	}
	if ls.Ways != nil {
		lvl.Ways = *ls.Ways
	}
	if ls.LineSize != nil {
		lvl.LineSize = *ls.LineSize
	}
	if ls.HitLatency != nil {
		lvl.HitLat = *ls.HitLatency
	}
	if ls.Partition != nil {
		lvl.Partition = *ls.Partition
	}
	p.applyAlias(&lvl)
	if len(ls.PerCPU) > 0 {
		lvl.PerCPU = make(map[int]cache.Geometry, len(ls.PerCPU))
		for key, cs := range ls.PerCPU {
			cpu, err := strconv.Atoi(key)
			if err != nil || cpu < 0 {
				return lvl, fmt.Errorf("scenario: level %q: per_cpu key %q is not a CPU index", ls.Name, key)
			}
			var g cache.Geometry
			for _, f := range []struct {
				name string
				src  *int
				dst  *int
			}{{"sets", cs.Sets, &g.Sets}, {"ways", cs.Ways, &g.Ways}, {"line_size", cs.LineSize, &g.LineSize}} {
				if f.src == nil {
					continue
				}
				if *f.src <= 0 {
					return lvl, fmt.Errorf("scenario: level %q per_cpu %d: %s %d not positive", ls.Name, cpu, f.name, *f.src)
				}
				*f.dst = *f.src
			}
			lvl.PerCPU[cpu] = g
		}
	}
	return lvl, nil
}

// topology materializes the spec's memory hierarchy.
func (p PlatformSpec) topology() (cache.Topology, error) {
	def := platform.Default().Topology
	if p.Hierarchy == nil {
		t := def.Clone()
		for i := range t.Levels {
			p.applyAlias(&t.Levels[i])
		}
		return t, nil
	}
	hs := p.Hierarchy
	if hs.Version != 0 && hs.Version != HierarchyVersion {
		return cache.Topology{}, fmt.Errorf("scenario: unsupported hierarchy version %d (current %d)", hs.Version, HierarchyVersion)
	}
	if len(hs.Levels) == 0 {
		return cache.Topology{}, fmt.Errorf("scenario: hierarchy block declares no levels")
	}
	var t cache.Topology
	for i, ls := range hs.Levels {
		lvl, err := p.materializeLevel(ls, i == len(hs.Levels)-1, def)
		if err != nil {
			return t, err
		}
		t.Levels = append(t.Levels, lvl)
	}
	// A legacy alias that names no level of the block would silently
	// vanish — and sweep axes built on the aliases would label points
	// with geometry that never ran. Fail loudly instead.
	if (!p.L1.empty() || p.L1HitLatency != nil) && t.Index("l1") < 0 {
		return t, fmt.Errorf("scenario: l1 alias override set, but the hierarchy block has no level named \"l1\" (levels: %v)", t.LevelNames())
	}
	if (!p.L2.empty() || p.L2HitLatency != nil) && t.Index("l2") < 0 {
		return t, fmt.Errorf("scenario: l2 alias override set, but the hierarchy block has no level named \"l2\" (levels: %v)", t.LevelNames())
	}
	return t, nil
}

// Config materializes the spec over the default tile.
func (p PlatformSpec) Config() (platform.Config, error) {
	pc := platform.Default()
	if p.NumCPUs != nil {
		pc.NumCPUs = *p.NumCPUs
	}
	if p.BaseCPI != nil {
		pc.BaseCPI = *p.BaseCPI
	}
	topo, err := p.topology()
	if err != nil {
		return pc, err
	}
	pc.Topology = topo
	pc.Bus = p.Bus.apply(pc.Bus)
	if p.Sched.Quantum != nil {
		pc.Sched.Quantum = *p.Sched.Quantum
	}
	if p.Sched.SwitchCost != nil {
		pc.Sched.SwitchCost = *p.Sched.SwitchCost
	}
	if p.SwitchTouches != nil {
		pc.SwitchTouches = *p.SwitchTouches
	}
	return pc, nil
}

func iptr(v int) *int           { return &v }
func u64ptr(v uint64) *uint64   { return &v }
func f64ptr(v float64) *float64 { return &v }
func bptr(v bool) *bool         { return &v }

// PlatformSpecOf captures an assembled platform.Config as a spec — the
// inverse of PlatformSpec.Config. Every field is written explicitly
// (the topology as a fully-resolved hierarchy block), so the round trip
// is exact for any valid configuration; this is the canonical form
// Normalize stores and the content addresses hash.
func PlatformSpecOf(pc platform.Config) PlatformSpec {
	hs := &HierarchySpec{Version: HierarchyVersion}
	for _, l := range pc.Topology.Levels {
		ls := LevelSpec{
			Name:       l.Name,
			Scope:      l.Scope,
			Sets:       iptr(l.Sets),
			Ways:       iptr(l.Ways),
			LineSize:   iptr(l.LineSize),
			HitLatency: u64ptr(l.HitLat),
			Partition:  bptr(l.Partition),
		}
		if len(l.PerCPU) > 0 {
			ls.PerCPU = make(map[string]CacheSpec, len(l.PerCPU))
			for cpu, g := range l.PerCPU {
				var cs CacheSpec
				if g.Sets != 0 {
					cs.Sets = iptr(g.Sets)
				}
				if g.Ways != 0 {
					cs.Ways = iptr(g.Ways)
				}
				if g.LineSize != 0 {
					cs.LineSize = iptr(g.LineSize)
				}
				ls.PerCPU[strconv.Itoa(cpu)] = cs
			}
		}
		hs.Levels = append(hs.Levels, ls)
	}
	return PlatformSpec{
		NumCPUs:   iptr(pc.NumCPUs),
		BaseCPI:   f64ptr(pc.BaseCPI),
		Hierarchy: hs,
		Bus: BusSpec{
			TransferCycles: u64ptr(pc.Bus.TransferCycles),
			MemLatency:     u64ptr(pc.Bus.MemLatency),
			Banks:          iptr(pc.Bus.Banks),
			LineSize:       iptr(pc.Bus.LineSize),
		},
		Sched:         SchedSpec{Quantum: &pc.Sched.Quantum, SwitchCost: &pc.Sched.SwitchCost},
		SwitchTouches: iptr(pc.SwitchTouches),
	}
}

// Normalize validates the spec and returns its canonical form: every
// defaultable field filled with its canonical value, enum spellings
// canonicalized, sizes sorted. Two specs describing the same experiment
// normalize identically, which is what makes content addressing work.
func (s Scenario) Normalize() (Scenario, error) {
	n := s
	switch n.SpecVersion {
	case 0:
		n.SpecVersion = SpecVersion
	case SpecVersion:
	default:
		return n, fmt.Errorf("scenario: unsupported spec_version %d (current %d)", n.SpecVersion, SpecVersion)
	}
	if n.Base != "" {
		return n, fmt.Errorf("scenario: unresolved base %q (resolve built-in bases before Normalize)", n.Base)
	}
	if n.Workload == "" {
		return n, fmt.Errorf("scenario: missing workload (registered: %v)", workloads.Names())
	}
	if _, ok := workloads.Lookup(n.Workload); !ok {
		return n, fmt.Errorf("scenario: unknown workload %q (registered: %v)", n.Workload, workloads.Names())
	}
	scale, err := workloads.ParseScale(n.Scale)
	if err != nil {
		return n, err
	}
	n.Scale = scale.String()

	if n.Partition == "" {
		n.Partition = PartitionOptimized
	}
	valid := false
	for _, p := range partitionPolicies {
		if n.Partition == p {
			valid = true
			break
		}
	}
	if !valid {
		return n, fmt.Errorf("scenario: unknown partition policy %q (want one of %v)", n.Partition, partitionPolicies)
	}
	if n.AllocWorkload != "" {
		if n.Partition != PartitionOptimized {
			return n, fmt.Errorf("scenario: alloc_workload only applies to the %q partition policy (got %q)", PartitionOptimized, n.Partition)
		}
		if _, ok := workloads.Lookup(n.AllocWorkload); !ok {
			return n, fmt.Errorf("scenario: unknown alloc_workload %q (registered: %v)", n.AllocWorkload, workloads.Names())
		}
	}

	switch n.Trace {
	case "", TraceReplay:
		n.Trace = "" // replay is the canonical default
	case TraceLive:
	default:
		return n, fmt.Errorf("scenario: unknown trace mode %q (want %q or %q)", n.Trace, TraceReplay, TraceLive)
	}

	if n.Runs == 0 {
		n.Runs = 2
	}
	if n.Runs < 0 {
		return n, fmt.Errorf("scenario: runs %d not positive", n.Runs)
	}
	solver, err := core.ParseSolver(n.Solver)
	if err != nil {
		return n, err
	}
	n.Solver = solver.String()
	pe, err := profile.ParseEngine(n.ProfileEngine)
	if err != nil {
		return n, err
	}
	n.ProfileEngine = pe.String()
	ee, err := platform.ParseEngine(n.ExecEngine)
	if err != nil {
		return n, err
	}
	n.ExecEngine = ee.String()

	if n.Sizes == nil {
		n.Sizes = []int{1, 2, 4, 8, 16, 32, 64, 128}
	} else {
		n.Sizes = append([]int(nil), n.Sizes...)
		sort.Ints(n.Sizes)
		for _, v := range n.Sizes {
			if v <= 0 || v&(v-1) != 0 {
				return n, fmt.Errorf("scenario: candidate size %d not a positive power of two", v)
			}
		}
	}

	if n.Platform == nil {
		n.Platform = &PlatformSpec{}
	}
	base, err := n.Platform.Config()
	if err != nil {
		return n, err
	}
	full := PlatformSpecOf(base)
	n.Platform = &full
	pc, err := n.platformConfig()
	if err != nil {
		return n, err
	}
	if err := pc.Validate(); err != nil {
		return n, err
	}
	if n.ProfileLevel != "" {
		i := pc.Topology.Index(n.ProfileLevel)
		if i < 0 {
			return n, fmt.Errorf("scenario: profile_level %q not in the hierarchy (levels: %v)", n.ProfileLevel, pc.Topology.LevelNames())
		}
		if pc.Topology.Levels[i].Scope != cache.ScopeShared {
			return n, fmt.Errorf("scenario: profile_level %q is %s, not shared", n.ProfileLevel, pc.Topology.Levels[i].Scope)
		}
	}
	return n, nil
}

// Key returns the scenario's content address: a hash of the canonical
// JSON of the normalized spec with the non-semantic Name cleared. Two
// scenarios with equal keys simulate identically.
func (s Scenario) Key() (string, error) {
	n, err := s.Normalize()
	if err != nil {
		return "", err
	}
	n.Name = ""
	n.Trace = "" // replay ≡ live, so the mode is non-semantic
	return hashJSON(n), nil
}

// hashJSON content-addresses any JSON-marshalable value.
func hashJSON(v interface{}) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Every hashed value is a plain struct of scalars, slices and
		// string-keyed maps; marshaling cannot fail.
		panic(fmt.Sprintf("scenario: hashing: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// DecodeStrict unmarshals raw into v, rejecting unknown fields (the
// error names the offending field) and trailing data. Every spec
// surface of the harness — scenario specs, batch documents, sweep specs
// — decodes through this, so a typo like "migartion" or "l2_kb" fails
// loudly instead of silently running the wrong experiment.
func DecodeStrict(raw []byte, v interface{}) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("unexpected data after the JSON document")
	}
	return nil
}

// SplitSpecs splits a scenario document into its raw specs. Accepted
// shapes: {"scenarios":[spec,...]}, a bare array of specs, or one spec
// object. Both the CLI's -scenario files and the serve batch endpoint
// accept exactly these. A batch document may carry nothing besides
// "scenarios"; the specs themselves are validated strictly by Resolve.
func SplitSpecs(raw []byte) ([]json.RawMessage, error) {
	trimmed := bytes.TrimLeft(raw, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var arr []json.RawMessage
		if err := json.Unmarshal(raw, &arr); err != nil {
			return nil, fmt.Errorf("scenario: parsing spec array: %w", err)
		}
		if len(arr) == 0 {
			return nil, fmt.Errorf("scenario: empty spec array")
		}
		return arr, nil
	}
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(raw, &obj); err != nil {
		return nil, fmt.Errorf("scenario: document is neither a spec object, an array of specs, nor {\"scenarios\":[...]}: %w", err)
	}
	if scen, ok := obj["scenarios"]; ok {
		for k := range obj {
			if k != "scenarios" {
				return nil, fmt.Errorf("scenario: unknown field %q in batch document (a batch carries only \"scenarios\")", k)
			}
		}
		var arr []json.RawMessage
		if err := json.Unmarshal(scen, &arr); err != nil {
			return nil, fmt.Errorf("scenario: parsing \"scenarios\": %w", err)
		}
		// null or [] must fail loudly here: `compmem run` on such a
		// document would otherwise succeed having simulated nothing.
		if len(arr) == 0 {
			return nil, fmt.Errorf("scenario: batch document carries no scenarios")
		}
		return arr, nil
	}
	return []json.RawMessage{raw}, nil
}

// Resolve parses a raw JSON spec, first overlaying it on the built-in
// base it names (if any): fields present in raw override the base,
// omitted fields inherit it. lookupBase maps a base name to its spec and
// may be nil when bases are not supported by the caller. Unknown fields
// in the spec are an error (see DecodeStrict): a typo'd field name must
// not silently decode to a default-valued spec.
func Resolve(raw []byte, lookupBase func(string) (Scenario, bool)) (Scenario, error) {
	var peek struct {
		Base string `json:"base"`
	}
	if err := json.Unmarshal(raw, &peek); err != nil {
		return Scenario{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	var s Scenario
	if peek.Base != "" {
		if lookupBase == nil {
			return Scenario{}, fmt.Errorf("scenario: base %q not supported here", peek.Base)
		}
		base, ok := lookupBase(peek.Base)
		if !ok {
			return Scenario{}, fmt.Errorf("scenario: unknown base scenario %q", peek.Base)
		}
		s = base
	}
	if err := DecodeStrict(raw, &s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	s.Base = ""
	return s, nil
}

// scale returns the parsed workload scale of a normalized spec.
func (s Scenario) scale() workloads.Scale {
	sc, _ := workloads.ParseScale(s.Scale)
	return sc
}

// buildConfig returns the workload build configuration.
func (s Scenario) buildConfig() workloads.BuildConfig {
	return workloads.BuildConfig{Scale: s.scale(), Seed: s.Seed}
}

// platformConfig materializes the platform with the exec engine set.
func (s Scenario) platformConfig() (platform.Config, error) {
	pc, err := s.Platform.Config()
	if err != nil {
		return pc, err
	}
	ee, err := platform.ParseEngine(s.ExecEngine)
	if err != nil {
		return pc, err
	}
	pc.Engine = ee
	return pc, nil
}

// optimizeConfig translates a normalized spec into the profiling and
// optimization options. workers bounds the profiling fan-out.
func (s Scenario) optimizeConfig(workers int) (core.OptimizeConfig, error) {
	pc, err := s.platformConfig()
	if err != nil {
		return core.OptimizeConfig{}, err
	}
	solver, err := core.ParseSolver(s.Solver)
	if err != nil {
		return core.OptimizeConfig{}, err
	}
	pe, err := profile.ParseEngine(s.ProfileEngine)
	if err != nil {
		return core.OptimizeConfig{}, err
	}
	return core.OptimizeConfig{
		Platform:     pc,
		Sizes:        s.Sizes,
		Runs:         s.Runs,
		Solver:       solver,
		Engine:       pe,
		Workers:      workers,
		ProfileLevel: s.ProfileLevel,
	}, nil
}
