// Package scenario is the declarative experiment surface of the
// reproduction: a Scenario is a JSON-(de)serializable spec naming a
// registered workload, a platform geometry, engines, a solver and a
// partition policy; a Runner validates specs and executes batches over
// the bounded worker pool with content-addressed memoization (identical
// specs — and identical pipeline stages across different specs —
// simulate once); a Result is the structured, versioned document every
// table and figure of the evaluation is derived from.
//
// Scenarios are data, not Go functions: new workload mixes, geometries
// and policies are defined in JSON (or constructed programmatically),
// batched through Runner.RunBatch, and served over HTTP by the
// `compmem serve` mode, without touching the harness.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/profile"
	"repro/internal/workloads"
)

// SpecVersion is the current Scenario spec version.
const SpecVersion = 1

// Partition policies: how far down the paper's pipeline a scenario runs.
const (
	// PartitionOptimized is the full study (the default): shared
	// baseline run, profile + optimize, partitioned run, and the
	// expected-vs-simulated compositionality comparison.
	PartitionOptimized = "optimized"
	// PartitionShared runs only the shared-cache baseline.
	PartitionShared = "shared"
	// PartitionOptimize profiles and solves for an allocation but runs
	// no measured executions (the granularity ablation needs exactly
	// this).
	PartitionOptimize = "optimize"
	// PartitionProfile only profiles the per-entity miss curves.
	PartitionProfile = "profile"
)

var partitionPolicies = []string{PartitionOptimized, PartitionShared, PartitionOptimize, PartitionProfile}

// Scenario is one serializable experiment spec. The zero value of every
// optional field means "the harness default", so minimal specs stay
// minimal; Normalize fills the canonical values in.
type Scenario struct {
	// SpecVersion is the spec schema version; 0 means current.
	SpecVersion int `json:"spec_version,omitempty"`
	// Name labels the scenario in listings and results. It does not
	// affect the simulation (two scenarios differing only in Name share
	// one content address).
	Name string `json:"name,omitempty"`
	// Base names a built-in scenario this spec overlays: omitted fields
	// inherit the base's values. Resolved by Resolve before Normalize.
	Base string `json:"base,omitempty"`

	// Workload names a registered workload (see internal/workloads
	// Register/Names).
	Workload string `json:"workload"`
	// Scale is "small" or "paper" (default).
	Scale string `json:"scale,omitempty"`
	// Seed perturbs the workload's synthetic input data; 0 is the
	// canonical paper workload.
	Seed uint64 `json:"seed,omitempty"`
	// Platform overrides the section 5 tile geometry; nil keeps it.
	Platform *PlatformSpec `json:"platform,omitempty"`

	// Partition selects the pipeline policy: "optimized" (default),
	// "shared", "optimize" or "profile".
	Partition string `json:"partition,omitempty"`
	// Runs is the number of jittered profiling repetitions averaged
	// into the miss curves; default 2.
	Runs int `json:"runs,omitempty"`
	// Solver is "mckp" (default) or "ilp".
	Solver string `json:"solver,omitempty"`
	// ProfileEngine is "stackdist" (default) or "bank".
	ProfileEngine string `json:"profile_engine,omitempty"`
	// ExecEngine is "merged" (default) or "word".
	ExecEngine string `json:"exec_engine,omitempty"`
	// Sizes restricts the candidate partition sizes (allocation units,
	// powers of two); nil means the default 1..128 ladder.
	Sizes []int `json:"sizes,omitempty"`
	// Migration enables dynamic scheduling with task migration for the
	// measured shared/partitioned executions. Profiling runs always use
	// static scheduling — the regime the paper's model covers.
	Migration bool `json:"migration,omitempty"`
	// AllocWorkload, for the "optimized" policy, borrows the partitioned
	// run's allocation from optimizing this workload instead of the
	// scenario's own — the compositionality ablation validates a solo
	// task under the full application's allocation this way.
	AllocWorkload string `json:"alloc_workload,omitempty"`
}

// CacheSpec overrides a cache geometry; zero fields keep the default.
type CacheSpec struct {
	Sets     int `json:"sets,omitempty"`
	Ways     int `json:"ways,omitempty"`
	LineSize int `json:"line_size,omitempty"`
}

func (c CacheSpec) apply(base cache.Config) cache.Config {
	if c.Sets != 0 {
		base.Sets = c.Sets
	}
	if c.Ways != 0 {
		base.Ways = c.Ways
	}
	if c.LineSize != 0 {
		base.LineSize = c.LineSize
	}
	return base
}

// BusSpec overrides the interconnect; zero fields keep the default.
type BusSpec struct {
	TransferCycles uint64 `json:"transfer_cycles,omitempty"`
	MemLatency     uint64 `json:"mem_latency,omitempty"`
	Banks          int    `json:"banks,omitempty"`
	LineSize       int    `json:"line_size,omitempty"`
}

func (b BusSpec) apply(base bus.Config) bus.Config {
	if b.TransferCycles != 0 {
		base.TransferCycles = b.TransferCycles
	}
	if b.MemLatency != 0 {
		base.MemLatency = b.MemLatency
	}
	if b.Banks != 0 {
		base.Banks = b.Banks
	}
	if b.LineSize != 0 {
		base.LineSize = b.LineSize
	}
	return base
}

// SchedSpec overrides the scheduler; zero fields keep the default.
type SchedSpec struct {
	Quantum    int64  `json:"quantum,omitempty"`
	SwitchCost uint64 `json:"switch_cost,omitempty"`
}

// PlatformSpec is the serializable platform geometry. Zero-valued fields
// keep the section 5 default (platform.Default()), so a custom geometry
// only names what it changes — e.g. {"num_cpus": 8}.
type PlatformSpec struct {
	NumCPUs       int       `json:"num_cpus,omitempty"`
	BaseCPI       float64   `json:"base_cpi,omitempty"`
	L1            CacheSpec `json:"l1,omitempty"`
	L2            CacheSpec `json:"l2,omitempty"`
	L1HitLatency  uint64    `json:"l1_hit_latency,omitempty"`
	L2HitLatency  uint64    `json:"l2_hit_latency,omitempty"`
	Bus           BusSpec   `json:"bus,omitempty"`
	Sched         SchedSpec `json:"sched,omitempty"`
	SwitchTouches int       `json:"switch_touches,omitempty"`
}

// Config materializes the spec over the default tile.
func (p PlatformSpec) Config() platform.Config {
	pc := platform.Default()
	if p.NumCPUs != 0 {
		pc.NumCPUs = p.NumCPUs
	}
	if p.BaseCPI != 0 {
		pc.BaseCPI = p.BaseCPI
	}
	pc.L1 = p.L1.apply(pc.L1)
	pc.L2 = p.L2.apply(pc.L2)
	if p.L1HitLatency != 0 {
		pc.L1HitLat = p.L1HitLatency
	}
	if p.L2HitLatency != 0 {
		pc.L2HitLat = p.L2HitLatency
	}
	pc.Bus = p.Bus.apply(pc.Bus)
	if p.Sched.Quantum != 0 {
		pc.Sched.Quantum = p.Sched.Quantum
	}
	if p.Sched.SwitchCost != 0 {
		pc.Sched.SwitchCost = p.Sched.SwitchCost
	}
	if p.SwitchTouches != 0 {
		pc.SwitchTouches = p.SwitchTouches
	}
	return pc
}

// PlatformSpecOf captures an assembled platform.Config as a spec — the
// inverse of PlatformSpec.Config for configurations reachable from the
// default (every field is written explicitly, so the round trip is
// exact whenever no meaningful field is zero while its default is not).
func PlatformSpecOf(pc platform.Config) PlatformSpec {
	return PlatformSpec{
		NumCPUs:       pc.NumCPUs,
		BaseCPI:       pc.BaseCPI,
		L1:            CacheSpec{Sets: pc.L1.Sets, Ways: pc.L1.Ways, LineSize: pc.L1.LineSize},
		L2:            CacheSpec{Sets: pc.L2.Sets, Ways: pc.L2.Ways, LineSize: pc.L2.LineSize},
		L1HitLatency:  pc.L1HitLat,
		L2HitLatency:  pc.L2HitLat,
		Bus:           BusSpec{TransferCycles: pc.Bus.TransferCycles, MemLatency: pc.Bus.MemLatency, Banks: pc.Bus.Banks, LineSize: pc.Bus.LineSize},
		Sched:         SchedSpec{Quantum: pc.Sched.Quantum, SwitchCost: pc.Sched.SwitchCost},
		SwitchTouches: pc.SwitchTouches,
	}
}

// Normalize validates the spec and returns its canonical form: every
// defaultable field filled with its canonical value, enum spellings
// canonicalized, sizes sorted. Two specs describing the same experiment
// normalize identically, which is what makes content addressing work.
func (s Scenario) Normalize() (Scenario, error) {
	n := s
	switch n.SpecVersion {
	case 0:
		n.SpecVersion = SpecVersion
	case SpecVersion:
	default:
		return n, fmt.Errorf("scenario: unsupported spec_version %d (current %d)", n.SpecVersion, SpecVersion)
	}
	if n.Base != "" {
		return n, fmt.Errorf("scenario: unresolved base %q (resolve built-in bases before Normalize)", n.Base)
	}
	if n.Workload == "" {
		return n, fmt.Errorf("scenario: missing workload (registered: %v)", workloads.Names())
	}
	if _, ok := workloads.Lookup(n.Workload); !ok {
		return n, fmt.Errorf("scenario: unknown workload %q (registered: %v)", n.Workload, workloads.Names())
	}
	scale, err := workloads.ParseScale(n.Scale)
	if err != nil {
		return n, err
	}
	n.Scale = scale.String()

	if n.Partition == "" {
		n.Partition = PartitionOptimized
	}
	valid := false
	for _, p := range partitionPolicies {
		if n.Partition == p {
			valid = true
			break
		}
	}
	if !valid {
		return n, fmt.Errorf("scenario: unknown partition policy %q (want one of %v)", n.Partition, partitionPolicies)
	}
	if n.AllocWorkload != "" {
		if n.Partition != PartitionOptimized {
			return n, fmt.Errorf("scenario: alloc_workload only applies to the %q partition policy (got %q)", PartitionOptimized, n.Partition)
		}
		if _, ok := workloads.Lookup(n.AllocWorkload); !ok {
			return n, fmt.Errorf("scenario: unknown alloc_workload %q (registered: %v)", n.AllocWorkload, workloads.Names())
		}
	}

	if n.Runs == 0 {
		n.Runs = 2
	}
	if n.Runs < 0 {
		return n, fmt.Errorf("scenario: runs %d not positive", n.Runs)
	}
	solver, err := core.ParseSolver(n.Solver)
	if err != nil {
		return n, err
	}
	n.Solver = solver.String()
	pe, err := profile.ParseEngine(n.ProfileEngine)
	if err != nil {
		return n, err
	}
	n.ProfileEngine = pe.String()
	ee, err := platform.ParseEngine(n.ExecEngine)
	if err != nil {
		return n, err
	}
	n.ExecEngine = ee.String()

	if n.Sizes == nil {
		n.Sizes = []int{1, 2, 4, 8, 16, 32, 64, 128}
	} else {
		n.Sizes = append([]int(nil), n.Sizes...)
		sort.Ints(n.Sizes)
		for _, v := range n.Sizes {
			if v <= 0 || v&(v-1) != 0 {
				return n, fmt.Errorf("scenario: candidate size %d not a positive power of two", v)
			}
		}
	}

	if n.Platform == nil {
		n.Platform = &PlatformSpec{}
	}
	full := PlatformSpecOf(n.Platform.Config())
	n.Platform = &full
	pc, err := n.platformConfig()
	if err != nil {
		return n, err
	}
	if err := pc.Validate(); err != nil {
		return n, err
	}
	return n, nil
}

// Key returns the scenario's content address: a hash of the canonical
// JSON of the normalized spec with the non-semantic Name cleared. Two
// scenarios with equal keys simulate identically.
func (s Scenario) Key() (string, error) {
	n, err := s.Normalize()
	if err != nil {
		return "", err
	}
	n.Name = ""
	return hashJSON(n), nil
}

// hashJSON content-addresses any JSON-marshalable value.
func hashJSON(v interface{}) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Every hashed value is a plain struct of scalars, slices and
		// string-keyed maps; marshaling cannot fail.
		panic(fmt.Sprintf("scenario: hashing: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// DecodeStrict unmarshals raw into v, rejecting unknown fields (the
// error names the offending field) and trailing data. Every spec
// surface of the harness — scenario specs, batch documents, sweep specs
// — decodes through this, so a typo like "migartion" or "l2_kb" fails
// loudly instead of silently running the wrong experiment.
func DecodeStrict(raw []byte, v interface{}) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("unexpected data after the JSON document")
	}
	return nil
}

// SplitSpecs splits a scenario document into its raw specs. Accepted
// shapes: {"scenarios":[spec,...]}, a bare array of specs, or one spec
// object. Both the CLI's -scenario files and the serve batch endpoint
// accept exactly these. A batch document may carry nothing besides
// "scenarios"; the specs themselves are validated strictly by Resolve.
func SplitSpecs(raw []byte) ([]json.RawMessage, error) {
	trimmed := bytes.TrimLeft(raw, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var arr []json.RawMessage
		if err := json.Unmarshal(raw, &arr); err != nil {
			return nil, fmt.Errorf("scenario: parsing spec array: %w", err)
		}
		if len(arr) == 0 {
			return nil, fmt.Errorf("scenario: empty spec array")
		}
		return arr, nil
	}
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(raw, &obj); err != nil {
		return nil, fmt.Errorf("scenario: document is neither a spec object, an array of specs, nor {\"scenarios\":[...]}: %w", err)
	}
	if scen, ok := obj["scenarios"]; ok {
		for k := range obj {
			if k != "scenarios" {
				return nil, fmt.Errorf("scenario: unknown field %q in batch document (a batch carries only \"scenarios\")", k)
			}
		}
		var arr []json.RawMessage
		if err := json.Unmarshal(scen, &arr); err != nil {
			return nil, fmt.Errorf("scenario: parsing \"scenarios\": %w", err)
		}
		// null or [] must fail loudly here: `compmem run` on such a
		// document would otherwise succeed having simulated nothing.
		if len(arr) == 0 {
			return nil, fmt.Errorf("scenario: batch document carries no scenarios")
		}
		return arr, nil
	}
	return []json.RawMessage{raw}, nil
}

// Resolve parses a raw JSON spec, first overlaying it on the built-in
// base it names (if any): fields present in raw override the base,
// omitted fields inherit it. lookupBase maps a base name to its spec and
// may be nil when bases are not supported by the caller. Unknown fields
// in the spec are an error (see DecodeStrict): a typo'd field name must
// not silently decode to a default-valued spec.
func Resolve(raw []byte, lookupBase func(string) (Scenario, bool)) (Scenario, error) {
	var peek struct {
		Base string `json:"base"`
	}
	if err := json.Unmarshal(raw, &peek); err != nil {
		return Scenario{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	var s Scenario
	if peek.Base != "" {
		if lookupBase == nil {
			return Scenario{}, fmt.Errorf("scenario: base %q not supported here", peek.Base)
		}
		base, ok := lookupBase(peek.Base)
		if !ok {
			return Scenario{}, fmt.Errorf("scenario: unknown base scenario %q", peek.Base)
		}
		s = base
	}
	if err := DecodeStrict(raw, &s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	s.Base = ""
	return s, nil
}

// scale returns the parsed workload scale of a normalized spec.
func (s Scenario) scale() workloads.Scale {
	sc, _ := workloads.ParseScale(s.Scale)
	return sc
}

// buildConfig returns the workload build configuration.
func (s Scenario) buildConfig() workloads.BuildConfig {
	return workloads.BuildConfig{Scale: s.scale(), Seed: s.Seed}
}

// platformConfig materializes the platform with the exec engine set.
func (s Scenario) platformConfig() (platform.Config, error) {
	pc := s.Platform.Config()
	ee, err := platform.ParseEngine(s.ExecEngine)
	if err != nil {
		return pc, err
	}
	pc.Engine = ee
	return pc, nil
}

// optimizeConfig translates a normalized spec into the profiling and
// optimization options. workers bounds the profiling fan-out.
func (s Scenario) optimizeConfig(workers int) (core.OptimizeConfig, error) {
	pc, err := s.platformConfig()
	if err != nil {
		return core.OptimizeConfig{}, err
	}
	solver, err := core.ParseSolver(s.Solver)
	if err != nil {
		return core.OptimizeConfig{}, err
	}
	pe, err := profile.ParseEngine(s.ProfileEngine)
	if err != nil {
		return core.OptimizeConfig{}, err
	}
	return core.OptimizeConfig{
		Platform: pc,
		Sizes:    s.Sizes,
		Runs:     s.Runs,
		Solver:   solver,
		Engine:   pe,
		Workers:  workers,
	}, nil
}
