package scenario

import (
	"strings"
	"testing"
)

// TestResolveRejectsUnknownFields is the regression test for the
// silent-typo bug: a misspelled field must fail loudly (naming the
// offending field) instead of decoding to a default-valued spec that
// runs the wrong experiment.
func TestResolveRejectsUnknownFields(t *testing.T) {
	cases := []struct {
		name  string
		raw   string
		field string
	}{
		{"top-level typo", `{"workload":"mpeg2","migartion":true}`, `"migartion"`},
		{"geometry shorthand that does not exist", `{"workload":"mpeg2","platform":{"l2_kb":512}}`, `"l2_kb"`},
		{"nested cache typo", `{"workload":"mpeg2","platform":{"l2":{"szets":4096}}}`, `"szets"`},
		{"typo on a base overlay", `{"base":"app1","sede":7}`, `"sede"`},
	}
	lookup := func(name string) (Scenario, bool) {
		if name == "app1" {
			return Scenario{Workload: "2jpeg+canny"}, true
		}
		return Scenario{}, false
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Resolve([]byte(c.raw), lookup)
			if err == nil {
				t.Fatalf("typo'd spec %s must not decode", c.raw)
			}
			if !strings.Contains(err.Error(), c.field) {
				t.Errorf("error %q does not name the offending field %s", err, c.field)
			}
		})
	}

	// Valid specs still decode, with and without a base.
	if s, err := Resolve([]byte(`{"workload":"mpeg2","migration":true}`), nil); err != nil || !s.Migration {
		t.Errorf("valid spec rejected: %+v, %v", s, err)
	}
}

// TestResolveRejectsTrailingData checks concatenated documents fail
// instead of silently dropping everything after the first.
func TestResolveRejectsTrailingData(t *testing.T) {
	if _, err := Resolve([]byte(`{"workload":"mpeg2"} {"workload":"jpeg1-only"}`), nil); err == nil {
		t.Error("trailing data after the spec must error")
	}
}

// TestSplitSpecsStrictBatchDocument checks the batch wrapper itself is
// strict: a typo'd "scenarios" sibling must error, not vanish.
func TestSplitSpecsStrictBatchDocument(t *testing.T) {
	if _, err := SplitSpecs([]byte(`{"scenarios":[{"workload":"mpeg2"}],"workres":4}`)); err == nil ||
		!strings.Contains(err.Error(), `"workres"`) {
		t.Errorf("unknown batch-document field must error naming the field, got %v", err)
	}

	// A batch that names no scenarios must fail loudly, not run nothing.
	for _, doc := range []string{`{"scenarios":null}`, `{"scenarios":[]}`, `[]`} {
		if _, err := SplitSpecs([]byte(doc)); err == nil {
			t.Errorf("empty batch document %s must error", doc)
		}
	}

	raws, err := SplitSpecs([]byte(`{"scenarios":[{"workload":"mpeg2"},{"workload":"jpeg1-only"}]}`))
	if err != nil || len(raws) != 2 {
		t.Errorf("valid batch document rejected: %d specs, %v", len(raws), err)
	}
	raws, err = SplitSpecs([]byte(` [{"workload":"mpeg2"}]`))
	if err != nil || len(raws) != 1 {
		t.Errorf("bare array rejected: %d specs, %v", len(raws), err)
	}
	raws, err = SplitSpecs([]byte(`{"workload":"mpeg2"}`))
	if err != nil || len(raws) != 1 {
		t.Errorf("single spec rejected: %d specs, %v", len(raws), err)
	}
	// A typo'd single spec splits fine (it is one spec) — Resolve is
	// where its fields are validated.
	if _, err := SplitSpecs([]byte(`{"scenarois":[{"workload":"mpeg2"}]}`)); err == nil {
		// "scenarois" is not a Scenario field either, so this document
		// must die in Resolve; SplitSpecs may pass it through.
		if _, err := Resolve([]byte(`{"scenarois":[{"workload":"mpeg2"}]}`), nil); err == nil ||
			!strings.Contains(err.Error(), `"scenarois"`) {
			t.Errorf("typo'd batch key must fail somewhere with the field named, got %v", err)
		}
	}
}
