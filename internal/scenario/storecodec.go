package scenario

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/profile"
	"repro/internal/tracefile"
)

// Stage results are persisted as versioned documents: a small envelope
// naming the stage kind and wire version around the stage value's
// canonical JSON. The envelope travels through any store.Store — the
// in-memory LRU and the on-disk CAS hold exactly the same bytes, so a
// result computed by one process is byte-identical to the same result
// reloaded by another (encoding/json round-trips float64 exactly and
// orders map keys deterministically).
//
// StageDocVersion is bumped on any incompatible change to the stage
// value types below; documents of another version decode with an error,
// which the runner treats as a miss — old records are recomputed and
// overwritten, never misread.
const StageDocVersion = 1

// stageDoc is the persisted stage-result envelope.
type stageDoc struct {
	Version int             `json:"v"`
	Kind    string          `json:"kind"`
	Data    json.RawMessage `json:"data"`
}

// encodeStage serializes one completed stage value ([]profile.Curve,
// *core.OptimizeResult, *core.Result or *tracefile.Trace, per kind)
// into its document. A trace is persisted as its own self-validating
// CMTR container (base64 inside the JSON envelope), not as a JSON view
// of the struct — the wire golden in internal/tracefile pins it.
func encodeStage(kind string, v interface{}) ([]byte, error) {
	var data []byte
	var err error
	if kind == stageTrace {
		t, ok := v.(*tracefile.Trace)
		if !ok {
			return nil, fmt.Errorf("scenario: encoding trace stage: unexpected value %T", v)
		}
		data, err = json.Marshal(t.Bytes())
	} else {
		data, err = json.Marshal(v)
	}
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding %s stage: %w", kind, err)
	}
	doc, err := json.Marshal(stageDoc{Version: StageDocVersion, Kind: kind, Data: data})
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding %s stage: %w", kind, err)
	}
	return doc, nil
}

// decodeStage deserializes a stage document back into the live value
// the memo serves. The kind and version must match: a version or kind
// mismatch is an error the runner treats as a cache miss, not as
// corruption (the store layer already verified the bytes' integrity).
func decodeStage(kind string, b []byte) (interface{}, error) {
	var doc stageDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("scenario: decoding %s stage: %w", kind, err)
	}
	if doc.Version != StageDocVersion {
		return nil, fmt.Errorf("scenario: %s stage document version %d (want %d)", kind, doc.Version, StageDocVersion)
	}
	if doc.Kind != kind {
		return nil, fmt.Errorf("scenario: stage document is %q, not %q", doc.Kind, kind)
	}
	var v interface{}
	switch kind {
	case stageProfile:
		var curves []profile.Curve
		if err := json.Unmarshal(doc.Data, &curves); err != nil {
			return nil, fmt.Errorf("scenario: decoding %s stage: %w", kind, err)
		}
		v = curves
	case stageOptimize:
		opt := &core.OptimizeResult{}
		if err := json.Unmarshal(doc.Data, opt); err != nil {
			return nil, fmt.Errorf("scenario: decoding %s stage: %w", kind, err)
		}
		v = opt
	case stageRun:
		res := &core.Result{}
		if err := json.Unmarshal(doc.Data, res); err != nil {
			return nil, fmt.Errorf("scenario: decoding %s stage: %w", kind, err)
		}
		v = res
	case stageTrace:
		// The injection point makes corrupt-trace handling provable: an
		// injected error here must read as a miss and recapture, exactly
		// like a real CRC failure below.
		if err := faults.Point(faults.SiteTraceRead); err != nil {
			return nil, fmt.Errorf("scenario: decoding trace stage: %w", err)
		}
		var raw []byte
		if err := json.Unmarshal(doc.Data, &raw); err != nil {
			return nil, fmt.Errorf("scenario: decoding trace stage: %w", err)
		}
		t, err := tracefile.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("scenario: decoding trace stage: %w", err)
		}
		v = t
	default:
		return nil, fmt.Errorf("scenario: unknown stage kind %q", kind)
	}
	return v, nil
}
