package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cache"
)

// TestExplicitZeroOverrideIsNotDefault is the regression for the old
// zero-means-default trap: a deliberate `"ways": 0` used to silently
// mean "keep the default 4 ways"; with pointer spec fields it is an
// explicit (invalid) zero and must fail naming the field — while an
// absent field still inherits the default.
func TestExplicitZeroOverrideIsNotDefault(t *testing.T) {
	spec, err := Resolve([]byte(`{"workload":"mpeg2","platform":{"l2":{"ways":0}}}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Normalize(); err == nil || !strings.Contains(err.Error(), "ways 0") {
		t.Errorf(`explicit "ways": 0 must fail naming the field, got %v`, err)
	}

	spec, err = Resolve([]byte(`{"workload":"mpeg2","platform":{"l2":{"sets":1024}}}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	pc, err := n.Platform.Config()
	if err != nil {
		t.Fatal(err)
	}
	if g := pc.PartitionGeom(); g.Sets != 1024 || g.Ways != 4 {
		t.Errorf("absent fields must keep defaults: %+v", g)
	}

	// An explicit zero switch-cost / switch-touches is a real zero, not
	// "default" (the old int fields could not express it).
	spec, err = Resolve([]byte(`{"workload":"mpeg2","platform":{"switch_touches":0,"sched":{"switch_cost":0}}}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, err = spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	if pc, err = n.Platform.Config(); err != nil {
		t.Fatal(err)
	}
	if pc.SwitchTouches != 0 || pc.Sched.SwitchCost != 0 {
		t.Errorf("explicit zeros must be applied verbatim: touches=%d cost=%d", pc.SwitchTouches, pc.Sched.SwitchCost)
	}
}

// TestHierarchyBlockMaterialization checks the zero-means-default
// overlay of the hierarchy block: sparse levels seed from the section 5
// defaults by name and scope, the last level defaults to shared and
// carries the partition, and middle levels default to private.
func TestHierarchyBlockMaterialization(t *testing.T) {
	spec, err := Resolve([]byte(`{
		"workload": "2jpeg+canny",
		"platform": {"hierarchy": {"levels": [
			{"name": "l1"},
			{"name": "l2", "sets": 512, "hit_latency": 8},
			{"name": "l3", "sets": 4096, "hit_latency": 24}
		]}}
	}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	pc, err := n.Platform.Config()
	if err != nil {
		t.Fatal(err)
	}
	topo := pc.Topology
	if len(topo.Levels) != 3 {
		t.Fatalf("want 3 levels, got %+v", topo.LevelNames())
	}
	l1, l2, l3 := topo.Levels[0], topo.Levels[1], topo.Levels[2]
	if l1.Scope != cache.ScopePrivate || l1.Sets != 64 || l1.Ways != 4 || l1.HitLat != 0 {
		t.Errorf("l1 must seed from the default L1: %+v", l1)
	}
	if l2.Scope != cache.ScopePrivate || l2.Sets != 512 || l2.HitLat != 8 {
		t.Errorf("middle level must default to private with its overrides: %+v", l2)
	}
	if l3.Scope != cache.ScopeShared || l3.Sets != 4096 || l3.Ways != 4 || l3.HitLat != 24 {
		t.Errorf("root must default to shared seeding the L2 geometry: %+v", l3)
	}
	if topo.PartitionIndex() != 2 {
		t.Errorf("partition must default to the root, got %d", topo.PartitionIndex())
	}
	if g := pc.PartitionGeom(); g.SizeBytes() != 4096*4*64 {
		t.Errorf("partition capacity = %d", g.SizeBytes())
	}
}

// TestLegacyAliasOverlaysHierarchy checks the compatibility mapping:
// the old l1/l2 spec fields remain accepted as aliases for the
// equally-named hierarchy levels, as the outermost overlay — including
// over a base's canonical (fully explicit) hierarchy block.
func TestLegacyAliasOverlaysHierarchy(t *testing.T) {
	base := Scenario{Workload: "2jpeg+canny", Platform: &PlatformSpec{Hierarchy: &HierarchySpec{Levels: []LevelSpec{
		{Name: "l1"},
		{Name: "l2", Sets: iptr(512), HitLatency: u64ptr(8)},
		{Name: "l3", Sets: iptr(4096), HitLatency: u64ptr(24)},
	}}}}
	nb, err := base.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	// The normalized base is fully explicit; overlay it with the legacy
	// shorthand, exactly as a "base"-referencing user spec would.
	spec := nb
	spec.Platform = &PlatformSpec{}
	*spec.Platform = *nb.Platform
	spec.Platform.L2 = CacheSpec{Sets: iptr(1024)}
	n, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	pc, err := n.Platform.Config()
	if err != nil {
		t.Fatal(err)
	}
	i := pc.Topology.Index("l2")
	if i < 0 || pc.Topology.Levels[i].Sets != 1024 {
		t.Errorf("legacy l2 alias must override the hierarchy level, got %+v", pc.Topology.Levels)
	}
	// And the untouched levels keep the base's values.
	if j := pc.Topology.Index("l3"); pc.Topology.Levels[j].Sets != 4096 {
		t.Errorf("alias overlay must not disturb other levels: %+v", pc.Topology.Levels)
	}

	// An alias against a block with no level of that name must fail
	// loudly — it would otherwise vanish, and sweep axes built on the
	// aliases would label points with geometry that never ran.
	if _, err := (Scenario{Workload: "mpeg2", Platform: &PlatformSpec{
		Hierarchy: &HierarchySpec{Levels: []LevelSpec{{Name: "llc"}}},
		L2:        CacheSpec{Sets: iptr(1024)},
	}}).Normalize(); err == nil || !strings.Contains(err.Error(), `no level named "l2"`) {
		t.Errorf("dangling l2 alias must error, got %v", err)
	}
}

// TestPerCPUGeometryJSONRoundTrip checks a heterogeneous per-CPU
// geometry survives spec → JSON → spec → Normalize with an identical
// platform and content key.
func TestPerCPUGeometryJSONRoundTrip(t *testing.T) {
	spec, err := Resolve([]byte(`{
		"workload": "mpeg2",
		"platform": {"hierarchy": {"levels": [
			{"name": "l1", "per_cpu": {"1": {"sets": 128, "ways": 2}, "3": {"sets": 32}}},
			{"name": "l2"}
		]}}
	}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(n1)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Resolve(raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := back.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	pc1, err := n1.Platform.Config()
	if err != nil {
		t.Fatal(err)
	}
	pc2, err := n2.Platform.Config()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pc1, pc2) {
		t.Errorf("per-CPU geometry drifted through JSON:\n%+v\nvs\n%+v", pc1, pc2)
	}
	k1, err := n1.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := n2.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("content key drifted through JSON: %s vs %s", k1, k2)
	}
	// The override actually lands on the built tree.
	tr, err := pc1.Topology.Build(pc1.NumCPUs)
	if err != nil {
		t.Fatal(err)
	}
	if g := tr.Cache(0, 1).Config(); g.Sets != 128 || g.Ways != 2 {
		t.Errorf("cpu1 leaf = %+v", g)
	}
	if g := tr.Cache(0, 3).Config(); g.Sets != 32 || g.Ways != 4 {
		t.Errorf("cpu3 leaf = %+v", g)
	}
	if g := tr.Cache(0, 0).Config(); g.Sets != 64 {
		t.Errorf("cpu0 leaf = %+v", g)
	}

	// Rejections: a non-numeric CPU key and an explicit zero geometry.
	if _, err := (Scenario{Workload: "mpeg2", Platform: &PlatformSpec{Hierarchy: &HierarchySpec{Levels: []LevelSpec{
		{Name: "l1", PerCPU: map[string]CacheSpec{"x": {}}},
		{Name: "l2"},
	}}}}).Normalize(); err == nil || !strings.Contains(err.Error(), `per_cpu key "x"`) {
		t.Errorf("bad per_cpu key must error, got %v", err)
	}
	if _, err := (Scenario{Workload: "mpeg2", Platform: &PlatformSpec{Hierarchy: &HierarchySpec{Levels: []LevelSpec{
		{Name: "l1", PerCPU: map[string]CacheSpec{"0": {Ways: iptr(0)}}},
		{Name: "l2"},
	}}}}).Normalize(); err == nil || !strings.Contains(err.Error(), "ways 0") {
		t.Errorf("explicit zero per_cpu geometry must error, got %v", err)
	}
}

// TestHierarchyVersioning pins the hierarchy block's version gate.
func TestHierarchyVersioning(t *testing.T) {
	_, err := Scenario{Workload: "mpeg2", Platform: &PlatformSpec{Hierarchy: &HierarchySpec{
		Version: 9,
		Levels:  []LevelSpec{{Name: "l2"}},
	}}}.Normalize()
	if err == nil || !strings.Contains(err.Error(), "hierarchy version 9") {
		t.Errorf("future hierarchy version must be rejected, got %v", err)
	}
	n, err := Scenario{Workload: "mpeg2", Platform: &PlatformSpec{Hierarchy: &HierarchySpec{
		Levels: []LevelSpec{{Name: "l2"}},
	}}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Platform.Hierarchy.Version != HierarchyVersion {
		t.Errorf("canonical form must stamp version %d, got %d", HierarchyVersion, n.Platform.Hierarchy.Version)
	}
}
