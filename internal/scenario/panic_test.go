package scenario

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// registerPanicking registers a workload whose factory panics the first
// `panics` times it is built, then behaves like jpeg1-only — the
// build-panic vector of the fault suite.
func registerPanicking(t *testing.T, name string, panics int) {
	t.Helper()
	base, ok := workloads.Lookup("jpeg1-only")
	if !ok {
		t.Fatal("jpeg1-only not registered")
	}
	remaining := panics
	err := workloads.Register(name, func(bc workloads.BuildConfig) core.Workload {
		w := base(bc)
		inner := w.Factory
		w.Factory = func() (*core.App, error) {
			if remaining > 0 {
				remaining--
				panic("workload build exploded")
			}
			return inner()
		}
		return w
	})
	if err != nil {
		t.Fatal(err)
	}
}

// registerBadPlatform registers a workload whose factory trips a
// platform-construction panic that no spec-level validation can catch:
// a non-power-of-two address-space alignment, exactly the class of
// config error that panics by design deep inside the memory model.
func registerBadPlatform(t *testing.T, name string) {
	t.Helper()
	base, ok := workloads.Lookup("jpeg1-only")
	if !ok {
		t.Fatal("jpeg1-only not registered")
	}
	err := workloads.Register(name, func(bc workloads.BuildConfig) core.Workload {
		w := base(bc)
		w.Factory = func() (*core.App, error) {
			as := mem.NewAddressSpace()
			as.SetAlign(3) // panics: not a power of two
			return nil, nil
		}
		return w
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStagePanicIsContainedAndEvicted is the heart of the panic
// containment contract: a stage that panics surfaces as a structured
// *StagePanicError (never an unwound goroutine), the memo entry is
// evicted (a retry re-runs and succeeds), and the panic is counted.
func TestStagePanicIsContainedAndEvicted(t *testing.T) {
	registerPanicking(t, "panic-once", 1)
	rn := NewRunner(1)
	spec := Scenario{Workload: "panic-once", Scale: "small", Runs: 1, Partition: PartitionProfile}

	res, err := rn.Run(spec)
	var pe *StagePanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *StagePanicError, got %v", err)
	}
	// The workload factory's first execution is the trace capture, so
	// the build panic is attributed to the trace stage; the profile
	// stage observes it as an ordinary nested-stage error.
	if pe.Stage != "trace" || pe.Value != "workload build exploded" {
		t.Errorf("bad panic error: %+v", pe)
	}
	if pe.Stack == "" {
		t.Error("panic error must carry the stack")
	}
	if res == nil || res.Error == "" || !strings.Contains(res.Error, "panic in trace stage") {
		t.Errorf("panic must be embedded in the result document, got %+v", res)
	}

	// The panicked stage must not be memoized: the retry re-runs and
	// succeeds.
	res, err = rn.Run(spec)
	if err != nil {
		t.Fatalf("retry after a contained panic must succeed, got %v", err)
	}
	if len(res.Curves) == 0 {
		t.Error("retried run produced no curves")
	}
	st := rn.Stats()
	if st.StagePanics != 1 {
		t.Errorf("want 1 counted stage panic, got %+v", st)
	}
	// Both the panicked trace stage and the profile stage that was
	// waiting on it are evicted for retry.
	if st.StageErrors != 2 {
		t.Errorf("a panicked stage must be evicted like an errored one, got %+v", st)
	}
}

// TestPlatformPanicPastSpecChecks checks a platform-construction panic
// that spec validation cannot catch (it fires inside the workload
// factory, deep in the memory model) still comes back as a structured
// per-scenario error.
func TestPlatformPanicPastSpecChecks(t *testing.T) {
	registerBadPlatform(t, "bad-align")
	rn := NewRunner(2)
	// partition "shared" exercises the run stage; runs > 1 exercises the
	// nested parallel fan-out, so the panic crosses a worker boundary
	// (*parallel.PanicError) before the stage reshapes it. Trace mode
	// "live" keeps the factory build inside the run stage (the default
	// replay mode would surface it in the trace capture instead).
	spec := Scenario{Workload: "bad-align", Scale: "small", Runs: 2, Partition: PartitionShared, Trace: TraceLive}

	res, err := rn.RunContext(context.Background(), spec)
	var pe *StagePanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *StagePanicError, got %v", err)
	}
	if pe.Stage != "run" {
		t.Errorf("panic must be attributed to the run stage, got %q", pe.Stage)
	}
	if !strings.Contains(res.Error, "panic in run stage") {
		t.Errorf("result must embed the structured panic, got %q", res.Error)
	}
	if st := rn.Stats(); st.StagePanics == 0 {
		t.Errorf("platform panic must be counted: %+v", st)
	}
}

// TestBatchIsolatesPanickingScenario checks one panicking scenario in a
// batch yields exactly one error result; its neighbors complete
// normally, in order.
func TestBatchIsolatesPanickingScenario(t *testing.T) {
	registerPanicking(t, "panic-mid", 1)
	rn := NewRunner(2)
	good := Scenario{Workload: "jpeg1-only", Scale: "small", Runs: 1, Partition: PartitionProfile}
	bad := Scenario{Workload: "panic-mid", Scale: "small", Runs: 1, Partition: PartitionProfile}

	results := rn.RunBatch([]Scenario{good, bad, good})
	if len(results) != 3 {
		t.Fatalf("want 3 results, got %d", len(results))
	}
	for i, want := range []bool{false, true, false} {
		if results[i] == nil {
			t.Fatalf("result %d is nil", i)
		}
		if got := results[i].Error != ""; got != want {
			t.Errorf("result %d: error=%q, want failure=%v", i, results[i].Error, want)
		}
	}
	if !strings.Contains(results[1].Error, "panic in trace stage") {
		t.Errorf("panicking scenario must carry the structured panic, got %q", results[1].Error)
	}
	if len(results[0].Curves) == 0 || len(results[2].Curves) == 0 {
		t.Error("neighbors of a panicking scenario must complete")
	}
}

// TestWorkerDispatchFaultSynthesizesResult checks the batch stream
// survives a fault at the worker-dispatch boundary itself (before the
// scenario's own containment even starts): the dead slot becomes a
// synthesized error result, the walk does not deadlock, and the other
// scenarios stream normally.
func TestWorkerDispatchFaultSynthesizesResult(t *testing.T) {
	for _, kind := range []string{"error", "panic"} {
		t.Run(kind, func(t *testing.T) {
			plan := faults.New(11)
			if kind == "error" {
				plan.ErrorAt(faults.SiteWorker, 0)
			} else {
				plan.PanicAt(faults.SiteWorker, 0)
			}
			restore := faults.Activate(plan)
			defer restore()

			rn := NewRunner(1) // sequential: dispatch ordinal == batch index
			spec := Scenario{Workload: "jpeg1-only", Scale: "small", Runs: 1, Partition: PartitionProfile}
			var seen []int
			results, errs, done := rn.RunBatchStream(context.Background(), []Scenario{spec, spec},
				func(i int, res *Result) bool {
					seen = append(seen, i)
					return true
				})
			<-done
			restore()

			if len(seen) != 2 {
				t.Fatalf("walk must visit both slots in order, saw %v", seen)
			}
			if results[0] == nil || results[0].Error == "" {
				t.Fatalf("faulted dispatch must synthesize an error result, got %+v", results[0])
			}
			if errs[0] == nil {
				t.Error("faulted dispatch must record an error")
			}
			if results[1] == nil || results[1].Error != "" {
				t.Errorf("the surviving scenario must complete, got %+v", results[1])
			}
		})
	}
}

// TestInjectedStageFaultsAreDeterministic checks the seeded plan fires
// at exact stage ordinals: with the first profile execution armed, the
// first distinct spec fails with the injected error and the second
// succeeds — and after restore, the failed spec retries cleanly off the
// evicted memo entry.
func TestInjectedStageFaultsAreDeterministic(t *testing.T) {
	plan := faults.New(17).ErrorAt(faults.SiteStage+"profile", 0)
	restore := faults.Activate(plan)

	rn := NewRunner(1)
	a := Scenario{Workload: "jpeg1-only", Scale: "small", Runs: 1, Seed: 100, Partition: PartitionProfile}
	b := Scenario{Workload: "jpeg1-only", Scale: "small", Runs: 1, Seed: 101, Partition: PartitionProfile}

	_, errA := rn.Run(a)
	var ie *faults.InjectedError
	if !errors.As(errA, &ie) || ie.Ordinal != 0 {
		t.Fatalf("first profile execution must carry the injected error, got %v", errA)
	}
	if _, err := rn.Run(b); err != nil {
		t.Fatalf("unarmed ordinal must succeed, got %v", err)
	}
	restore()

	if _, err := rn.Run(a); err != nil {
		t.Fatalf("injected error must be evicted, not memoized: %v", err)
	}
	if st := rn.Stats(); st.StageErrors != 1 {
		t.Errorf("want exactly 1 evicted stage error, got %+v", st)
	}
}
