package scenario

import (
	"encoding/json"
	"testing"

	"repro/internal/faults"
)

// TestTraceReadFaultRecaptures proves the corrupt-trace contract:
// a recorded trace that fails to decode (the trace.read fault site
// models bit rot in either store layer) is treated as a miss — the
// record is evicted, the stage recaptures from a live functional run,
// and the scenario still succeeds with bit-identical results. Corruption
// costs a re-run, never a failed scenario.
func TestTraceReadFaultRecaptures(t *testing.T) {
	rn := NewRunner(1)
	first := smallSpec()
	if _, err := rn.Run(first); err != nil {
		t.Fatal(err)
	}
	if st := rn.Stats(); st.TraceRuns != 1 || st.StoreErrors != 0 {
		t.Fatalf("setup: want exactly the cold capture, got %+v", st)
	}

	// A second spec sharing the workload but not the profile key forces
	// a fresh profile stage, whose trace lookup is the first *decode* of
	// the recorded trace (the capture itself never decodes). Arm that
	// decode to fail.
	second := smallSpec()
	second.Runs = 3
	restore := faults.Activate(faults.New(5).ErrorAt(faults.SiteTraceRead, 0))
	res, err := rn.Run(second)
	restore()
	if err != nil {
		t.Fatalf("a corrupt trace must recapture, not fail the scenario: %v", err)
	}
	st := rn.Stats()
	if st.TraceRuns != 2 {
		t.Errorf("corrupt trace must be recaptured from a live run, got %+v", st)
	}
	if st.StoreErrors != 1 {
		t.Errorf("the failed decode must be counted as a store error, got %+v", st)
	}

	// Capture is deterministic: the recaptured trace drives the exact
	// result a clean runner computes.
	clean, err := NewRunner(1).Run(second)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(res.Curves)
	b, _ := json.Marshal(clean.Curves)
	if len(res.Curves) == 0 || string(a) != string(b) {
		t.Errorf("recaptured trace produced different curves\n%s\nvs\n%s", a, b)
	}
}

// TestTraceSharedAcrossEngines pins the point of keying traces by
// (workload, scale, seed) alone: the two execution engines profile from
// one recorded trace — the second engine's pipeline performs zero
// functional runs.
func TestTraceSharedAcrossEngines(t *testing.T) {
	rn := NewRunner(1)
	merged := smallSpec()
	merged.ExecEngine = "merged"
	word := smallSpec()
	word.ExecEngine = "word"

	if _, err := rn.Run(merged); err != nil {
		t.Fatal(err)
	}
	if _, err := rn.Run(word); err != nil {
		t.Fatal(err)
	}
	st := rn.Stats()
	// 3 stage runs: one capture + two per-engine profile stages.
	if st.StageRuns != 3 || st.ProfileRuns != 2 {
		t.Errorf("engines must profile separately over one trace, got %+v", st)
	}
	if st.TraceRuns != 1 {
		t.Errorf("the trace must be captured exactly once across engines, got %+v", st)
	}
	if st.TraceHits != 1 {
		t.Errorf("the second engine must replay the recorded trace, got %+v", st)
	}
	if st.TraceBytes == 0 {
		t.Errorf("the capture must account its encoded size, got %+v", st)
	}
}
